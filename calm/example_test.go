package calm_test

import (
	"fmt"

	"repro/calm"
)

// The README quick start: distribute the non-monotone win-move query
// over three nodes under a domain-guided policy.
func Example() {
	q := calm.WinMove()
	net := calm.MustNetwork("n1", "n2", "n3")
	pol := calm.DomainGuided(calm.HashAssignment(net))
	in := calm.MustParseInstance(`Move(a,b) Move(b,c)`)

	res, err := calm.Compute(calm.DomainRequest, q, net, pol, in, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Output)

	ok, err := calm.VerifyCoordinationFree(calm.DomainRequest, q, net, in)
	if err != nil {
		panic(err)
	}
	fmt.Println("coordination-free:", ok)
	// Output:
	// {O(b)}
	// coordination-free: true
}

// Classify programs into the paper's Datalog fragments and shrink a
// monotonicity counterexample to its minimal core.
func Example_classifyAndShrink() {
	prog := calm.MustParseProgram(`
		T(x,y)  :- E(x,y).
		T(x,z)  :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y)  :- Adom(x), Adom(y), !T(x,y).
	`)
	fmt.Println(prog.Classify())

	q := calm.ComplementTC()
	w, err := calm.CheckPair(q,
		calm.MustParseInstance(`E(a,a) E(b,b) E(z,z)`),
		calm.MustParseInstance(`E(a,c) E(c,b) E(c,d)`))
	if err != nil {
		panic(err)
	}
	small, err := calm.ShrinkWitness(q, calm.MDistinct, w)
	if err != nil {
		panic(err)
	}
	fmt.Println("minimal J:", small.J)
	// Output:
	// semicon-Datalog¬
	// minimal J: {E(a,c), E(c,b)}
}

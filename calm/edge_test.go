package calm_test

import (
	"strings"
	"testing"

	"repro/calm"
)

// Edge cases of the public facade: empty inputs, set-semantics
// idempotence, and degenerate (single-node) networks.

func TestEmptyInstance(t *testing.T) {
	empty := calm.NewInstance()
	if !empty.Empty() || empty.Len() != 0 {
		t.Fatalf("NewInstance() not empty: %v", empty)
	}

	// Central evaluation of TC on nothing derives nothing.
	out, err := calm.TC().Eval(empty)
	if err != nil {
		t.Fatalf("TC on empty instance: %v", err)
	}
	if !out.Empty() {
		t.Fatalf("TC(∅) = %v, want empty", out)
	}

	// Distributed evaluation agrees.
	net := calm.MustNetwork("n1", "n2")
	res, err := calm.Compute(calm.Broadcast, calm.TC(), net, calm.HashPolicy(net), empty, 0)
	if err != nil {
		t.Fatalf("Compute on empty instance: %v", err)
	}
	if !res.Output.Empty() {
		t.Fatalf("distributed TC(∅) = %v, want empty", res.Output)
	}

	// Incremental maintenance of an empty base holds an empty
	// materialization that still accepts deltas.
	m, err := calm.NewMaterialization(calm.MustParseProgram("T(x,y) :- E(x,y).\n"), empty, calm.IncrOptions{})
	if err != nil {
		t.Fatalf("NewMaterialization: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty materialization holds %d facts", m.Len())
	}
	if _, err := m.Apply(calm.Delta{Insert: []calm.Fact{calm.MustParseFact("E(a,b)")}}); err != nil {
		t.Fatalf("Apply on empty-based materialization: %v", err)
	}
	if !m.Has(calm.MustParseFact("T(a,b)")) {
		t.Fatal("T(a,b) not derived after first delta")
	}
}

func TestDuplicateFactIdempotence(t *testing.T) {
	i := calm.NewInstance()
	f := calm.NewFact("E", "a", "b")
	if !i.Add(f) {
		t.Fatal("first Add reported not-new")
	}
	if i.Add(f) {
		t.Fatal("second Add reported new")
	}
	if i.Len() != 1 {
		t.Fatalf("instance has %d facts after duplicate Add, want 1", i.Len())
	}

	// Parsing tolerates duplicates the same way.
	dup := calm.MustParseInstance(`E(a,b) E(a,b) E(a,b)`)
	if dup.Len() != 1 {
		t.Fatalf("parsed duplicate instance has %d facts, want 1", dup.Len())
	}

	// Equal instances regardless of how the duplicates arrived.
	if !i.Equal(dup) {
		t.Fatalf("%v != %v", i, dup)
	}

	// Evaluation output is unaffected by duplicated input mention.
	a, err := calm.TC().Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	b, err := calm.TC().Eval(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("TC differs across duplicate encodings: %v vs %v", a, b)
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	net := calm.MustNetwork("solo")
	if len(net) != 1 {
		t.Fatalf("network size %d, want 1", len(net))
	}
	in := calm.MustParseInstance(`E(a,b) E(b,c)`)
	want, err := calm.TC().Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	// All three strategies must still compute the query when there is
	// nobody to coordinate with.
	for _, s := range []calm.Strategy{calm.Broadcast, calm.Absence, calm.DomainRequest} {
		res, err := calm.Compute(s, calm.TC(), net, calm.HashPolicy(net), in, 0)
		if err != nil {
			t.Fatalf("strategy %v on single node: %v", s, err)
		}
		if !res.Output.Equal(want) {
			t.Errorf("strategy %v: single-node output %v != central %v", s, res.Output, want)
		}
	}
}

// TestIncrementalFacadeRoundTrip drives the incremental engine purely
// through the facade: maintain, snapshot, restore, keep maintaining.
func TestIncrementalFacadeRoundTrip(t *testing.T) {
	prog := calm.MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,y) :- E(x,z), T(z,y).
	`)
	m, err := calm.NewMaterialization(prog, calm.MustParseInstance(`E(a,b) E(b,c)`), calm.IncrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(calm.Delta{
		Insert:  []calm.Fact{calm.MustParseFact("E(c,d)")},
		Retract: []calm.Fact{calm.MustParseFact("E(a,b)")},
	}); err != nil {
		t.Fatal(err)
	}
	if m.Has(calm.MustParseFact("T(a,c)")) || !m.Has(calm.MustParseFact("T(b,d)")) {
		t.Fatalf("materialization wrong after mixed delta: %v", m.Instance())
	}

	var b strings.Builder
	if err := m.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	m2, err := calm.RestoreMaterialization(strings.NewReader(b.String()), calm.IncrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Instance().Equal(m.Instance()) {
		t.Fatalf("restored materialization differs: %v vs %v", m2.Instance(), m.Instance())
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("restored Verify: %v", err)
	}
}

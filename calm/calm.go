// Package calm is the public API of this repository: a reproduction of
// "Weaker Forms of Monotonicity for Declarative Networking: a More
// Fine-grained Answer to the CALM-conjecture" (Ameloot, Ketsman,
// Neven, Zinn; PODS 2014).
//
// It re-exports, in one place, the building blocks a user needs:
//
//   - the relational data model (facts, instances, schemas);
//   - the Datalog¬ engine with stratified semantics and the fragment
//     classifier (SP-Datalog, con-Datalog¬, semicon-Datalog¬, ...);
//   - the wILOG¬ engine with value invention;
//   - the monotonicity framework (M, Mdistinct, Mdisjoint and the
//     bounded variants) with violation search;
//   - the paper's query library (QTC, Q^k_clique, Q^k_star,
//     Q^j_duplicate, win-move under the well-founded semantics);
//   - the relational transducer network simulator (original,
//     policy-aware, and domain-guided models, with or without All);
//   - the three coordination-free evaluation strategies from the
//     proofs of Theorems 4.3 and 4.4.
//
// Quick start:
//
//	q := calm.WinMove()
//	net := calm.MustNetwork("n1", "n2", "n3")
//	pol := calm.DomainGuided(calm.HashAssignment(net))
//	in := calm.MustParseInstance(`Move(a,b) Move(b,c)`)
//	res, err := calm.Compute(calm.DomainRequest, q, net, pol, in, 0)
//	// res.Output == the positions won under the well-founded semantics,
//	// computed coordination-free on three nodes.
package calm

import (
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/ilog"
	"repro/internal/incr"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Relational data model (internal/fact).
type (
	// Value is a domain value.
	Value = fact.Value
	// Fact is a ground atom R(d1..dk).
	Fact = fact.Fact
	// Instance is a finite set of facts.
	Instance = fact.Instance
	// Schema maps relation names to arities.
	Schema = fact.Schema
	// ValueSet is a set of domain values.
	ValueSet = fact.ValueSet
)

// Data model constructors and predicates.
var (
	NewFact           = fact.New
	NewInstance       = fact.NewInstance
	ParseFact         = fact.ParseFact
	MustParseFact     = fact.MustParseFact
	ParseInstance     = fact.ParseInstance
	MustParseInstance = fact.MustParseInstance
	NewSchema         = fact.NewSchema
	MustSchema        = fact.MustSchema
	GraphSchema       = fact.GraphSchema
	DomainDistinct    = fact.DomainDistinct
	DomainDisjoint    = fact.DomainDisjoint
	Components        = fact.Components
)

// Datalog¬ engine (internal/datalog).
type (
	// Program is a Datalog¬ program.
	Program = datalog.Program
	// Rule is a Datalog¬ rule (head, pos, neg, ineq).
	Rule = datalog.Rule
	// Fragment names a Datalog fragment of Figure 2.
	Fragment = datalog.Fragment
	// DatalogQuery is a program restricted to output relations.
	DatalogQuery = datalog.Query
)

// Datalog¬ constructors and evaluation.
var (
	ParseProgram     = datalog.ParseProgram
	MustParseProgram = datalog.MustParseProgram
	NewDatalogQuery  = datalog.NewQuery
	WithAdomRules    = datalog.WithAdomRules
)

// Fragment labels.
const (
	FragDatalog        = datalog.FragDatalog
	FragDatalogNeq     = datalog.FragDatalogNeq
	FragSPDatalog      = datalog.FragSPDatalog
	FragConDatalog     = datalog.FragConDatalog
	FragSemiconDatalog = datalog.FragSemiconDatalog
	FragStratified     = datalog.FragStratified
	FragUnstratifiable = datalog.FragUnstratifiable
)

// wILOG¬ engine (internal/ilog).
type (
	// ILOGProgram is an ILOG¬ program with value invention.
	ILOGProgram = ilog.Program
	// ILOGRule is an ILOG¬ rule; set Invents for invention heads.
	ILOGRule = ilog.Rule
)

// Monotonicity framework (internal/monotone).
type (
	// Query is a generic mapping from instances to instances.
	Query = monotone.Query
	// Class identifies a monotonicity class.
	Class = monotone.Class
	// Witness records a monotonicity violation.
	Witness = monotone.Witness
)

// The monotonicity classes of Definition 1.
var (
	M          = monotone.M
	MDistinct  = monotone.MDistinct
	MDisjoint  = monotone.MDisjoint
	Mi         = monotone.Mi
	MiDistinct = monotone.MiDistinct
	MiDisjoint = monotone.MiDisjoint
)

// Monotonicity checking.
var (
	CheckPair     = monotone.CheckPair
	FindViolation = monotone.FindViolation
	ShrinkWitness = monotone.ShrinkWitness
	NewFuncQuery  = monotone.NewFunc
)

// wILOG¬ parsing and the doubled-program well-founded evaluation
// (Section 5.2 and the Section 7 remark).
var (
	ParseILOGProgram      = ilog.ParseProgram
	MustParseILOGProgram  = ilog.MustParseProgram
	DoubledProgram        = queries.DoubledProgram
	WellFoundedViaDoubled = queries.WellFoundedViaDoubled
)

// Query library (internal/queries).
var (
	TC                         = queries.TC
	ComplementTC               = queries.ComplementTC
	NoLoop                     = queries.NoLoop
	KClique                    = queries.KClique
	KStar                      = queries.KStar
	Duplicate                  = queries.Duplicate
	TrianglesUnlessTwoDisjoint = queries.TrianglesUnlessTwoDisjoint
	WinMove                    = queries.WinMove
	WinMoveThreeValued         = queries.WinMoveThreeValued
	WinMoveClassified          = queries.WinMoveClassified
	WellFounded                = queries.WellFounded
)

// Transducer networks (internal/transducer).
type (
	// NodeID identifies a computing node.
	NodeID = transducer.NodeID
	// Network is a set of nodes.
	Network = transducer.Network
	// Policy is a distribution policy.
	Policy = transducer.Policy
	// Transducer is a relational transducer.
	Transducer = transducer.Transducer
	// Simulation is a running transducer network.
	Simulation = transducer.Simulation
	// Model selects the visible system relations.
	Model = transducer.Model
)

// Network and policy constructors.
var (
	NewNetwork       = transducer.NewNetwork
	MustNetwork      = transducer.MustNetwork
	HashPolicy       = transducer.HashPolicy
	DomainGuided     = transducer.DomainGuided
	HashAssignment   = transducer.HashAssignment
	RandomPolicy     = transducer.RandomPolicy
	RandomAssignment = transducer.RandomAssignment
	AllToNode        = transducer.AllToNode
	ReplicateAll     = transducer.ReplicateAll
	NewSimulation    = transducer.NewSimulation
	CheckComputes    = transducer.CheckComputes
	ExploreSchedules = transducer.Explore
)

// Transducer models.
var (
	Original         = transducer.Original
	PolicyAware      = transducer.PolicyAware
	PolicyAwareNoAll = transducer.PolicyAwareNoAll
	Oblivious        = transducer.Oblivious
)

// Coordination-free strategies (internal/core — the paper's primary
// contribution).
type (
	// Strategy selects an evaluation strategy.
	Strategy = core.Strategy
	// Result is a distributed evaluation result with metrics.
	Result = core.Result
)

// The three strategies.
const (
	Broadcast     = core.Broadcast
	Absence       = core.Absence
	DomainRequest = core.DomainRequest
)

// Strategy construction and execution.
var (
	BuildStrategy          = core.Build
	Compute                = core.Compute
	ComputeRandom          = core.ComputeRandom
	VerifyCoordinationFree = core.VerifyCoordinationFree
)

// Incremental view maintenance (internal/incr): counting-based delta
// propagation for insertions, delete–rederive for retractions and
// stratified negation — the paper's monotone fragments maintained
// without recomputation. cmd/calmd serves this engine over NDJSON.
type (
	// Materialization is an incrementally maintained stratified fixpoint.
	Materialization = incr.Materialization
	// Delta is a batch of base-fact insertions and retractions.
	Delta = incr.Delta
	// ApplyStats reports the work one Delta application did.
	ApplyStats = incr.ApplyStats
	// IncrOptions configures incremental maintenance (mode, workers,
	// instrumentation).
	IncrOptions = incr.Options
)

// Incremental maintenance construction.
var (
	NewMaterialization     = incr.New
	RestoreMaterialization = incr.Restore
)

package calm_test

import (
	"testing"

	"repro/calm"
)

// The facade smoke test doubles as end-to-end documentation: it walks
// the README quick-start and a few more public entry points.
func TestQuickstartFlow(t *testing.T) {
	q := calm.WinMove()
	net := calm.MustNetwork("n1", "n2", "n3")
	pol := calm.DomainGuided(calm.HashAssignment(net))
	in := calm.MustParseInstance(`Move(a,b) Move(b,c)`)

	res, err := calm.Compute(calm.DomainRequest, q, net, pol, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("distributed %v != central %v", res.Output, want)
	}
	ok, err := calm.VerifyCoordinationFree(calm.DomainRequest, q, net, in)
	if err != nil || !ok {
		t.Errorf("coordination-free witness: ok=%v err=%v", ok, err)
	}
}

func TestDatalogFlow(t *testing.T) {
	prog, err := calm.ParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Classify(); got != calm.FragDatalog {
		t.Errorf("Classify = %v", got)
	}
	q, err := calm.NewDatalogQuery(prog, "T")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Eval(calm.MustParseInstance(`E(a,b) E(b,c)`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("TC size = %d", out.Len())
	}
}

func TestMonotonicityFlow(t *testing.T) {
	q := calm.NoLoop()
	i := calm.MustParseInstance(`E(a,b)`)
	j := calm.MustParseInstance(`E(a,a)`)
	w, err := calm.CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("NoLoop should violate M")
	}
	if !calm.MDistinct.Allows(calm.MustParseInstance(`E(a,c)`), i) {
		t.Error("Allows misbehaves through the facade")
	}
}

func TestWellFoundedFlow(t *testing.T) {
	won, lost, drawn, err := calm.WinMoveClassified(calm.MustParseInstance(`Move(a,b) Move(b,a)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(won) != 0 || len(lost) != 0 || len(drawn) != 2 {
		t.Errorf("cycle classification: won=%v lost=%v drawn=%v", won, lost, drawn)
	}
	// Doubled-program route agrees.
	prog := calm.MustParseProgram(`Win(x) :- Move(x,y), !Win(y).`)
	res, err := calm.WellFoundedViaDoubled(prog, calm.MustParseInstance(`Move(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.True.Has(calm.NewFact("Win", "a")) {
		t.Errorf("doubled WFS: %v", res.True)
	}
}

func TestILOGFlow(t *testing.T) {
	p, err := calm.ParseILOGProgram(`
		Id(*, x, y) :- E(x,y).
		O(x,y)      :- Id(i, x, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsWeaklySafe("O") {
		t.Error("edge-id program should be weakly safe")
	}
}

func TestComponentsFlow(t *testing.T) {
	i := calm.MustParseInstance(`E(a,b) E(x,y)`)
	if got := len(calm.Components(i)); got != 2 {
		t.Errorf("components = %d", got)
	}
	if !calm.DomainDisjoint(calm.MustParseInstance(`E(p,q)`), i) {
		t.Error("DomainDisjoint misbehaves through the facade")
	}
}

# Convenience targets; `make check` is the gate new changes must pass.

GO ?= go

.PHONY: build test race vet bench check cover

cover:
	$(GO) test -cover ./internal/transducer/ ./internal/core/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Mode-ablation benchmarks (naive vs semi-naive vs parallel). Use
# -cpu to size the worker pool, e.g. make bench BENCHFLAGS='-cpu 4'.
BENCHFLAGS ?=
bench:
	$(GO) test -run '^$$' -bench 'NaiveVsSemiNaive|ParallelTC|WFSModes|WinMove' -benchmem $(BENCHFLAGS) .

check:
	sh scripts/check.sh

# Convenience targets; `make check` is the gate new changes must pass.

GO ?= go

.PHONY: build test race vet bench bench-quick check smoke admin-smoke trace-demo ci cover

cover:
	$(GO) test -cover ./internal/transducer/ ./internal/core/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark snapshot rendered to JSON (scripts/bench.sh). Pass
# OUT= to name the file and BENCHTIME= to trade time for stability,
# e.g. make bench OUT=BENCH_PR5.json BENCHTIME=5x.
OUT ?= BENCH.json
bench:
	BENCHTIME=$(BENCHTIME) sh scripts/bench.sh $(OUT)

# Quick mode-ablation benchmarks (naive vs semi-naive vs parallel).
# Use -cpu to size the worker pool, e.g. make bench-quick BENCHFLAGS='-cpu 4'.
BENCHFLAGS ?=
bench-quick:
	$(GO) test -run '^$$' -bench 'NaiveVsSemiNaive|ParallelTC|WFSModes|WinMove' -benchmem $(BENCHFLAGS) .

check:
	sh scripts/check.sh

# smoke boots an in-process calmd, drives it with the seeded load
# generator over real TCP (serial baseline + pipelined run), and fails
# unless both runs complete with nonzero throughput and zero protocol
# errors.
smoke:
	$(GO) run ./cmd/calmload -smoke -compare -duration 500ms -read-frac 0.98

# admin-smoke boots a sharded calmd with -admin, drives traffic, and
# asserts /metrics exposes every srv_*/cluster_*/coord_* family,
# /healthz reports per-shard watermarks and epoch age, and /trace
# returns spans (scripts/admin_smoke.sh).
admin-smoke:
	sh scripts/admin_smoke.sh

# trace-demo is a quick tour of the tracing plane: boot a sharded
# daemon, push a write/read mix, print the span stream, live health,
# and the coordination budget (scripts/trace_demo.sh).
trace-demo:
	sh scripts/trace_demo.sh

# ci is the entry point GitHub Actions runs (.github/workflows/ci.yml);
# it is deliberately the same gate as `make check` plus the calmload
# and admin-endpoint smoke stages.
ci: check smoke admin-smoke

// Experiment suite regenerating the paper's results: every edge of
// Figure 1 (the monotonicity hierarchy, Theorem 3.1) and Figure 2 (the
// fragment inclusions and the transducer-network equalities), plus
// Lemma 3.2, Lemma 5.2, Theorem 5.3 and Example 5.1. Strict
// separations use the paper's explicit counterexample constructions
// (exact); memberships in universally quantified classes are checked
// by seeded randomized violation search (evidence, recorded in
// EXPERIMENTS.md).
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/ilog"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// expectViolation asserts that the pair (i, j) — which must be allowed
// by the class — violates the monotonicity condition for q.
func expectViolation(t *testing.T, q monotone.Query, c monotone.Class, i, j *fact.Instance) {
	t.Helper()
	if !c.Allows(j, i) {
		t.Fatalf("%s: counterexample pair not allowed by %v: I=%v J=%v", q.Name(), c, i, j)
	}
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Errorf("%s expected to violate %v on I=%v J=%v", q.Name(), c, i, j)
	}
}

// expectMember asserts (by randomized search over the sampler) that no
// violation of the class condition is found for q.
func expectMember(t *testing.T, q monotone.Query, c monotone.Class, s monotone.Sampler, trials int) {
	t.Helper()
	w, err := monotone.FindViolation(q, c, monotone.ClassSampler(c, s), 97, trials)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("%s expected in %v; violation found: %v", q.Name(), c, w)
	}
}

// graphSampler samples (I, J) pairs of random graphs, J over a fresh
// value namespace (so all classes get candidates after restriction).
func graphSampler(n, mi, mj int) monotone.Sampler {
	return func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", n, mi)
		pool := append(generate.Values("v", n), generate.Values("w", n)...)
		j := generate.Random(rng, fact.GraphSchema(), pool, mj)
		return i, j
	}
}

// ---------------------------------------------------------------------------
// Figure 1 / Theorem 3.1
// ---------------------------------------------------------------------------

// Theorem 3.1(1): M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C.
func TestTheorem31_1(t *testing.T) {
	// NoLoop ∈ Mdistinct \ M (SP-Datalog ⊆ Mdistinct edge).
	noLoop := queries.NoLoop()
	expectViolation(t, noLoop, monotone.M,
		fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(a,a)`))
	expectMember(t, noLoop, monotone.MDistinct, graphSampler(4, 5, 4), 400)

	// QTC ∈ Mdisjoint \ Mdistinct: adding a path through a NEW vertex
	// c (each added fact contains c, so J is domain distinct) connects
	// a to b (the paper's construction).
	qtc := queries.ComplementTC()
	expectViolation(t, qtc, monotone.MDistinct,
		fact.MustParseInstance(`E(a,a) E(b,b)`), fact.MustParseInstance(`E(a,c) E(c,b)`))
	expectMember(t, qtc, monotone.MDisjoint, graphSampler(4, 4, 4), 400)

	// Q_triangles ∈ C \ Mdisjoint.
	tri := queries.TrianglesUnlessTwoDisjoint()
	expectViolation(t, tri, monotone.MDisjoint,
		generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
}

// Theorem 3.1(2): M = Mⁱ — every monotonicity violation shrinks to a
// single-fact violation, so already M¹ rejects the non-monotone
// queries; and queries in M are (by definition scope) in every Mⁱ.
func TestTheorem31_2(t *testing.T) {
	// Single-fact violations for the non-monotone queries.
	expectViolation(t, queries.NoLoop(), monotone.Mi(1),
		fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(a,a)`))
	expectViolation(t, queries.ComplementTC(), monotone.Mi(1),
		fact.MustParseInstance(`E(a,x) E(y,b)`), fact.MustParseInstance(`E(x,y)`))

	// TC ∈ M stays violation-free in every bounded class.
	for i := 1; i <= 3; i++ {
		expectMember(t, queries.TC(), monotone.Mi(i), graphSampler(4, 5, 3), 200)
	}
}

// Theorem 3.1(3): Q^{i+2}_clique ∈ Mⁱdistinct \ M^{i+1}distinct.
func TestTheorem31_3(t *testing.T) {
	for _, i := range []int{1, 2} {
		q := queries.KClique(i + 2)
		// Counterexample: I is an (i+1)-clique; J is a star from a new
		// center to all clique vertices (|J| = i+1, domain distinct).
		iInst := generate.Clique("v", i+1)
		j := fact.NewInstance()
		for _, v := range generate.Values("v", i+1) {
			j.Add(fact.New("E", "center", v))
		}
		expectViolation(t, q, monotone.MiDistinct(i+1), iInst, j)
		// Membership in Mⁱdistinct by randomized search.
		expectMember(t, q, monotone.MiDistinct(i), graphSampler(4, 5, 4), 400)
	}
}

// Theorem 3.1(4): Q^{i+1}_star ∈ Mⁱdisjoint \ M^{i+1}disjoint.
func TestTheorem31_4(t *testing.T) {
	for _, i := range []int{1, 2} {
		q := queries.KStar(i + 1)
		// i+1 domain-disjoint edges create a brand-new (i+1)-spoke star.
		iInst := fact.MustParseInstance(`E(a,b)`)
		j := generate.Star("c", "s", i+1)
		expectViolation(t, q, monotone.MiDisjoint(i+1), iInst, j)
		expectMember(t, q, monotone.MiDisjoint(i), graphSampler(4, 4, 4), 400)
	}
}

// Theorem 3.1(5): Q^{i+1}_clique ∈ Mⁱdisjoint \ Mⁱdistinct.
func TestTheorem31_5(t *testing.T) {
	for _, i := range []int{2, 3} {
		q := queries.KClique(i + 1)
		// Extend an i-clique with one new vertex: |J| = i, distinct.
		iInst := generate.Clique("v", i)
		j := fact.NewInstance()
		for _, v := range generate.Values("v", i) {
			j.Add(fact.New("E", "center", v))
		}
		expectViolation(t, q, monotone.MiDistinct(i), iInst, j)
		expectMember(t, q, monotone.MiDisjoint(i), graphSampler(4, 4, 4), 400)
	}
}

// Theorem 3.1(6): Q^{j+1}_star ∈ Mʲdisjoint \ Mⁱdistinct.
func TestTheorem31_6(t *testing.T) {
	j := 2
	q := queries.KStar(j + 1)
	// One domain-distinct edge from the old center adds the extra spoke.
	iInst := generate.Star("c", "s", j)
	add := fact.MustParseInstance(`E(c,new)`)
	expectViolation(t, q, monotone.MiDistinct(1), iInst, add)
	expectMember(t, q, monotone.MiDisjoint(j), graphSampler(4, 4, 4), 400)
}

// Theorem 3.1(7): Q^j_duplicate ∈ Mⁱdistinct \ Mʲdisjoint for i < j.
func TestTheorem31_7(t *testing.T) {
	j := 3
	q := queries.Duplicate(j)
	// j domain-disjoint facts replicate one new tuple over all relations.
	iInst := fact.MustParseInstance(`R1(a,b)`)
	dup := fact.NewInstance()
	for n := 1; n <= j; n++ {
		dup.Add(fact.New(fmt.Sprintf("R%d", n), "x", "y"))
	}
	expectViolation(t, q, monotone.MiDisjoint(j), iInst, dup)

	// Membership in Mⁱdistinct for i < j by randomized search.
	schema := queries.DuplicateSchema(j)
	sampler := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.Random(rng, schema, generate.Values("v", 4), 5)
		pool := append(generate.Values("v", 4), generate.Values("w", 3)...)
		return i, generate.Random(rng, schema, pool, 4)
	}
	for i := 1; i < j; i++ {
		expectMember(t, q, monotone.MiDistinct(i), sampler, 400)
	}
}

// ---------------------------------------------------------------------------
// Lemma 3.2: H ⊊ Hinj = M ⊊ E = Mdistinct
// ---------------------------------------------------------------------------

func TestLemma32(t *testing.T) {
	// H ⊊ Hinj: the ≠-query survives injective homomorphisms but not
	// collapses.
	neq := datalog.MustQuery(datalog.MustParseProgram(`O(x,y) :- E(x,y), x != y.`), "O")
	i := fact.MustParseInstance(`E(a,b)`)
	collapse := fact.Hom{"a": "c", "b": "c"}
	w, err := monotone.CheckHomPair(neq, i, i.Map(collapse), collapse)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("≠-query should witness H ⊊ Hinj")
	}

	// Hinj = M, one direction on a non-monotone query: NoLoop violates
	// injective-homomorphism preservation into a proper superset.
	noLoop := queries.NoLoop()
	id := fact.Hom{"a": "a", "b": "b"}
	w, err = monotone.CheckHomPair(noLoop, i, fact.MustParseInstance(`E(a,b) E(a,a)`), id)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("NoLoop ∉ M must also fall outside Hinj (Lemma 3.2)")
	}
	// ... and the other direction on a monotone query: TC is preserved.
	hv, err := monotone.FindHomViolation(queries.TC(), func(rng *rand.Rand) *fact.Instance {
		return generate.RandomGraph(rng, "v", 4, 5)
	}, true, 11, 200)
	if err != nil {
		t.Fatal(err)
	}
	if hv != nil {
		t.Errorf("TC ∈ M must be preserved under injective homomorphisms: %v", hv)
	}

	// E = Mdistinct: QTC ∉ Mdistinct must violate extension
	// preservation, with the explicit pair from Section 3.2.
	qtc := queries.ComplementTC()
	iFull := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a)`)
	jInd := fact.MustParseInstance(`E(a,b)`)
	ew, err := monotone.CheckExtensionPair(qtc, jInd, iFull)
	if err != nil {
		t.Fatal(err)
	}
	if ew == nil {
		t.Error("QTC ∉ Mdistinct must violate extension preservation (E = Mdistinct)")
	}
	// NoLoop ∈ Mdistinct must be preserved under extensions.
	xv, err := monotone.FindExtensionViolation(queries.NoLoop(), func(rng *rand.Rand) *fact.Instance {
		return generate.RandomGraph(rng, "v", 5, 6)
	}, 13, 300)
	if err != nil {
		t.Fatal(err)
	}
	if xv != nil {
		t.Errorf("NoLoop ∈ Mdistinct = E must be preserved under extensions: %v", xv)
	}
}

// ---------------------------------------------------------------------------
// Figure 2, left column: fragments vs classes
// ---------------------------------------------------------------------------

// Datalog(≠) ⊆ M, checked on the ≠-restricted edge query and TC.
func TestFig2_DatalogNeqInM(t *testing.T) {
	progs := []string{
		`O(x,y) :- E(x,y), x != y.`,
		`O(x,y) :- E(x,y). O(x,z) :- O(x,y), E(y,z).`,
	}
	for _, src := range progs {
		p := datalog.MustParseProgram(src)
		if !p.IsPositive() {
			t.Fatalf("test program not positive: %s", src)
		}
		q := datalog.MustQuery(p, "O")
		expectMember(t, q, monotone.M, graphSampler(4, 5, 4), 300)
	}
}

// SP-Datalog ⊆ Mdistinct (= E), checked on NoLoop and a second SP query.
func TestFig2_SPDatalogInMdistinct(t *testing.T) {
	progs := []*datalog.Program{
		queries.NoLoopProgram(),
		datalog.MustParseProgram(`
			Adom(x) :- E(x,y).
			Adom(y) :- E(x,y).
			O(x,y) :- Adom(x), Adom(y), !E(x,y), !E(y,x), x != y.
		`),
	}
	for _, p := range progs {
		if !p.IsSemiPositive() {
			t.Fatalf("test program not SP:\n%s", p)
		}
		q := datalog.MustQuery(p, "O")
		expectMember(t, q, monotone.MDistinct, graphSampler(4, 5, 4), 300)
	}
}

// Theorem 5.3: semicon-Datalog¬ ⊆ Mdisjoint, checked on the
// classifier-verified semicon programs; and a non-semicon program
// (Q^3_clique) indeed falls outside Mdisjoint.
func TestTheorem53(t *testing.T) {
	semicon := []*datalog.Program{
		queries.ComplementTCProgram(),
		queries.Example51P1(),
		queries.NoLoopProgram(),
	}
	for _, p := range semicon {
		if !p.IsSemiConnected() {
			t.Fatalf("program expected semicon:\n%s", p)
		}
		q := datalog.MustQuery(p, "O")
		expectMember(t, q, monotone.MDisjoint, graphSampler(4, 4, 4), 300)
	}

	// Q^3_clique's program is not semicon, and the query is not in
	// Mdisjoint: a fully new triangle kills the output.
	p := queries.KCliqueProgram(3)
	if p.IsSemiConnected() {
		t.Error("Q^3_clique program should not be semicon")
	}
	expectViolation(t, queries.KClique(3), monotone.MDisjoint,
		fact.MustParseInstance(`E(a,b)`), generate.Triangle("x", "y", "z"))
}

// Lemma 5.2: con-Datalog¬ queries distribute over components.
func TestLemma52(t *testing.T) {
	p := queries.Example51P1()
	if !p.IsConnectedProgram() {
		t.Fatal("P1 expected in con-Datalog¬")
	}
	q := datalog.MustQuery(p, "O")
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		i := generate.DisjointUnion(
			generate.RandomGraph(rng, "v", 3, 3),
			generate.RandomGraph(rng, "w", 3, 3),
			generate.RandomGraph(rng, "u", 2, 2),
		)
		whole, err := q.Eval(i)
		if err != nil {
			t.Fatal(err)
		}
		parts := fact.NewInstance()
		comps := fact.Components(i)
		for _, c := range comps {
			pc, err := q.Eval(c)
			if err != nil {
				t.Fatal(err)
			}
			// Output adoms of distinct components stay disjoint.
			if !pc.ADom().Minus(c.ADom()).Equal(fact.NewValueSet()) {
				t.Fatalf("component output %v escapes component adom %v", pc, c)
			}
			parts.AddAll(pc)
		}
		if !whole.Equal(parts) {
			t.Fatalf("P1 did not distribute over components on %v:\nwhole = %v\nparts = %v", i, whole, parts)
		}
	}
}

// Example 5.1, complete: P1 ∈ con-Datalog¬ \ Mdistinct;
// P2 ∉ semicon-Datalog¬ and its query ∉ Mdisjoint.
func TestExample51(t *testing.T) {
	p1 := queries.Example51P1()
	if got := p1.Classify(); got != datalog.FragConDatalog {
		t.Errorf("Classify(P1) = %v", got)
	}
	q1 := datalog.MustQuery(p1, "O")
	expectViolation(t, q1, monotone.MDistinct,
		fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(b,c) E(c,a)`))

	p2 := queries.Example51P2()
	if p2.IsSemiConnected() {
		t.Error("P2 should not be semicon")
	}
	q2 := datalog.MustQuery(p2, "O")
	expectViolation(t, q2, monotone.MDisjoint,
		generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
}

// ---------------------------------------------------------------------------
// Figure 2, right columns: F0 = A0 = M, F1 = A1 = Mdistinct,
// F2 = A2 = Mdisjoint (Theorems 4.3, 4.4, 4.5, Corollary 4.6)
// ---------------------------------------------------------------------------

// The compact network-side check: each strategy computes its class's
// queries on a 3-node network under a general (resp. domain-guided)
// policy, and has a Definition 3 heartbeat witness. The exhaustive
// version lives in internal/core's tests.
func TestFig2_TransducerEqualities(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2", "n3")
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d)`)
	cases := []struct {
		s   core.Strategy
		q   monotone.Query
		pol transducer.Policy
	}{
		{core.Broadcast, queries.TC(), transducer.HashPolicy(net)},
		{core.Absence, queries.NoLoop(), transducer.HashPolicy(net)},
		{core.DomainRequest, queries.ComplementTC(), transducer.DomainGuided(transducer.HashAssignment(net))},
	}
	for _, c := range cases {
		want, err := c.q.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compute(c.s, c.q, net, c.pol, in, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.s, err)
		}
		if !res.Output.Equal(want) {
			t.Errorf("%v: distributed %v != central %v", c.s, res.Output, want)
		}
		ok, err := core.VerifyCoordinationFree(c.s, c.q, net, in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%v: no coordination-freeness witness", c.s)
		}
	}
}

// Theorem 4.5 / Corollary 4.6: the strategies run in All-free models
// (A0/A1/A2); the win-move headline runs end-to-end under domain
// guidance without All.
func TestTheorem45_WinMoveWithoutAll(t *testing.T) {
	for _, s := range []core.Strategy{core.Broadcast, core.Absence, core.DomainRequest} {
		if s.RequiredModel().ShowAll {
			t.Errorf("%v requires All", s)
		}
	}
	q := queries.WinMove()
	in := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`)
	want, err := q.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	res, err := core.Compute(core.DomainRequest, q, net, transducer.DomainGuided(transducer.HashAssignment(net)), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("win-move distributed = %v, want %v", res.Output, want)
	}
}

// ---------------------------------------------------------------------------
// Theorem 5.4 (checked direction): semicon wILOG¬ programs stay in
// Mdisjoint; invention works end-to-end.
// ---------------------------------------------------------------------------

func TestTheorem54_Examples(t *testing.T) {
	// A connected wILOG program: invent an id per edge, then join ids
	// back to edges of a path of length 2 — output O(x,z).
	p := ilog.NewProgram(
		ilog.Rule{Head: datalog.AtomV("Id", "x", "y"), Invents: true,
			Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}},
		ilog.Rule{Head: datalog.AtomV("O", "x", "z"),
			Pos: []datalog.Atom{datalog.AtomV("Id", "i", "x", "y"), datalog.AtomV("Id", "j", "y", "z")}},
	)
	if !p.IsSemiConnected() {
		t.Fatal("example wILOG program expected semicon")
	}
	if !p.IsWeaklySafe("O") {
		t.Fatal("example wILOG program expected weakly safe for O")
	}
	q := monotone.NewGraphFunc("wILOG-path2", fact.MustSchema(map[string]int{"O": 2}),
		func(i *fact.Instance) (*fact.Instance, error) {
			return p.EvalQuery(i, []string{"O"}, ilog.Options{})
		})
	// Semantics check.
	out, err := q.Eval(fact.MustParseInstance(`E(a,b) E(b,c)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a,c)`)) {
		t.Errorf("wILOG path2 = %v", out)
	}
	// Theorem 5.4's ⊆ direction evidence: no Mdisjoint violation.
	expectMember(t, q, monotone.MDisjoint, graphSampler(4, 4, 4), 300)
}

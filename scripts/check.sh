#!/bin/sh
# check.sh runs the full local gate: vet, build, and the test suite
# under the race detector (the parallel fixpoint engine and the
# simulation determinism tests are the main race-sensitive surfaces).
# Usage: scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo "check: OK"

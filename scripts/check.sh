#!/bin/sh
# check.sh runs the full local gate: vet, build, and the test suite
# under the race detector (the parallel fixpoint engine and the
# simulation determinism tests are the main race-sensitive surfaces).
# The fault-injection and explorer packages additionally run twice
# under -race (-count=2 defeats the test cache and catches
# order-dependent state), and internal/transducer coverage is gated at
# its pre-fault-layer baseline (84.0%) so the simulator never loses
# test coverage as it grows.
# Usage: scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test -race -count=2 ./internal/transducer/... ./internal/core/..."
go test -race -count=2 ./internal/transducer/... ./internal/core/...

echo ">> coverage gate: internal/transducer >= 84.0%"
cov=$(go test -cover ./internal/transducer/ | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub("%", "", $i); print $i}}')
if [ -z "$cov" ]; then
    echo "check: FAILED to read internal/transducer coverage"
    exit 1
fi
if ! awk -v c="$cov" 'BEGIN { exit !(c >= 84.0) }'; then
    echo "check: internal/transducer coverage ${cov}% dropped below the 84.0% baseline"
    exit 1
fi
echo "   internal/transducer coverage: ${cov}%"

echo "check: OK"

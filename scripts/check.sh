#!/bin/sh
# check.sh runs the full local gate: vet, build, and the test suite
# under the race detector (the parallel fixpoint engine, the epoch-
# pinned serving core, and the simulation determinism tests are the
# main race-sensitive surfaces). The fault-injection, explorer,
# serving, cluster, and event-scheduler packages additionally run
# twice under -race
# (-count=2 defeats the test cache and catches order-dependent state),
# internal/transducer coverage is gated at its pre-fault-layer
# baseline (84.0%), internal/netsim, internal/generate, internal/obs,
# internal/serve, internal/cluster,
# and internal/admin at 80.0%, and the
# instrumentation's disabled (nil) fast path is benchmarked against a
# bare workload so "tracing off" stays ~free.
# Usage: scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo ">> go test -race -count=2 ./internal/transducer/... ./internal/core/... ./internal/serve/... ./internal/cluster/..."
go test -race -count=2 ./internal/transducer/... ./internal/core/... ./internal/serve/... ./internal/cluster/...

# The event scheduler's determinism battery runs twice under -race in
# -short mode: the thousand-node acceptance run already executes once
# under -race in the full sweep above, and repeating it doubles the
# gate's wall time for no extra order-dependence coverage.
echo ">> go test -race -count=2 -short ./internal/netsim/..."
go test -race -count=2 -short ./internal/netsim/...

coverage_gate() {
    pkg="$1"
    floor="$2"
    echo ">> coverage gate: $pkg >= ${floor}%"
    cov=$(go test -cover "$pkg" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub("%", "", $i); print $i}}')
    if [ -z "$cov" ]; then
        echo "check: FAILED to read $pkg coverage"
        exit 1
    fi
    if ! awk -v c="$cov" -v f="$floor" 'BEGIN { exit !(c >= f) }'; then
        echo "check: $pkg coverage ${cov}% dropped below the ${floor}% baseline"
        exit 1
    fi
    echo "   $pkg coverage: ${cov}%"
}

coverage_gate ./internal/transducer/ 84.0
coverage_gate ./internal/netsim/ 80.0
coverage_gate ./internal/generate/ 80.0
coverage_gate ./internal/obs/ 80.0
coverage_gate ./internal/serve/ 80.0
coverage_gate ./internal/cluster/ 80.0
coverage_gate ./internal/admin/ 80.0

# Disabled-instrumentation overhead gate: the nil-receiver/nil-sink
# fast path must stay within noise of the bare workload. "disabled"
# adds the exact call shapes the engines use per inner-loop iteration;
# it may cost at most 1.5x baseline + 5ns.
echo ">> disabled-overhead gate: internal/obs nil fast path"
bench=$(go test -run '^$' -bench BenchmarkDisabledOverhead -benchtime 0.3s -count 3 ./internal/obs/)
base=$(echo "$bench" | awk '/baseline/ { s += $3; n++ } END { if (n) print s/n }')
disd=$(echo "$bench" | awk '/disabled/ { s += $3; n++ } END { if (n) print s/n }')
if [ -z "$base" ] || [ -z "$disd" ]; then
    echo "check: FAILED to read BenchmarkDisabledOverhead results"
    exit 1
fi
if ! awk -v b="$base" -v d="$disd" 'BEGIN { exit !(d <= 1.5*b + 5) }'; then
    echo "check: disabled instrumentation costs ${disd} ns/op vs ${base} ns/op baseline (limit 1.5x + 5ns)"
    exit 1
fi
echo "   baseline ${base} ns/op, disabled ${disd} ns/op"

# Parallel-vs-seminaive gate: the PR6 interned/columnar refactor fixed
# a perf inversion where the parallel engine lost to serial semi-naive
# (grid8x8 in BENCH_PR4.json); this keeps it fixed. Parallel must not
# be slower than seminaive on any BenchmarkParallelTC topology, up to
# a noise allowance: we take the best of 3 runs per configuration and
# allow 15% — on single-CPU boxes the parallel engine degenerates to
# the semi-naive path, so the two times differ only by scheduler and
# allocator noise, and a real inversion regression shows up far above
# the tolerance.
echo ">> parallel-vs-seminaive gate: BenchmarkParallelTC"
bench=$(go test -run '^$' -bench BenchmarkParallelTC -benchtime 30x -count 3 .)
echo "$bench" | awk '
/^BenchmarkParallelTC\// {
    split($1, parts, "/")
    topo = parts[2]; mode = parts[3]; sub(/-[0-9]+$/, "", mode)
    key = topo SUBSEP mode
    if (!(key in best) || $3 + 0 < best[key]) best[key] = $3 + 0
    topos[topo] = 1
}
END {
    bad = 0; n = 0
    for (topo in topos) {
        n++
        sn = best[topo SUBSEP "seminaive"]; par = best[topo SUBSEP "parallel"]
        if (sn == "" || par == "") { print "check: missing BenchmarkParallelTC results for " topo; bad = 1; continue }
        printf "   %s: seminaive %d ns/op, parallel %d ns/op\n", topo, sn, par
        if (par > 1.15 * sn) {
            printf "check: parallel is %.2fx seminaive on %s (limit 1.15x)\n", par / sn, topo
            bad = 1
        }
    }
    if (n == 0) { print "check: FAILED to read BenchmarkParallelTC results"; bad = 1 }
    exit bad
}'

echo "check: OK"

#!/bin/sh
# bench.sh runs the instrumented benchmark suite and renders the
# results as JSON: one row per benchmark carrying ns/op plus every
# custom metric the benchmarks report (derivations/op, rounds/op,
# msgs/run, msgs/tick, ...), so performance and work-profile changes
# are diffable in review. Committed snapshots are named after the PR
# that produced them (BENCH_PR<n>.json); BENCH_PR7.json is the
# concurrent-serving snapshot, whose CalmloadSerial/CalmloadPipelined
# rows carry the pipelined-vs-serial speedup gate (EXPERIMENTS.md
# PERF.7), BENCH_PR8.json is the sharded-cluster snapshot, whose
# CalmloadShards<n> rows carry the shard-scaling gate (EXPERIMENTS.md
# PERF.8), BENCH_PR9.json is the observability snapshot, whose
# GatherPhases/GatherBaseline rows attribute the router-gather
# slowdown into fanout/merge/render phases (EXPERIMENTS.md PERF.9),
# and BENCH_PR10.json is the event-scheduler snapshot, whose
# NetsimEvent/NetsimTick rows carry the sched-ops gate — the event
# engine must spend >= 10x fewer scheduler operations than the
# tick-walk baseline on the sparse-activity workload at 10^3 nodes
# (EXPERIMENTS.md PERF.10):
#
#	scripts/bench.sh BENCH_PR10.json
#
# Usage: scripts/bench.sh [out.json]   (default: stdout)
# Env:   BENCHTIME          per-benchmark time or count (default 0.5s)
#        CALMLOAD_DURATION  calmload send window per run (default 1500ms)
set -eu

cd "$(dirname "$0")/.."
out="${1:--}"
benchtime="${BENCHTIME:-0.5s}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkNaiveVsSemiNaive|BenchmarkParallelTC|BenchmarkStrategyMessages|BenchmarkNetworkScaling|BenchmarkInputScaling' \
    -benchtime "$benchtime" . >>"$tmp"
go test -run '^$' -bench 'BenchmarkDisabledOverhead|BenchmarkEnabled' \
    -benchtime "$benchtime" ./internal/obs/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkIncr' \
    -benchtime "$benchtime" ./internal/incr/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkPinnedReads|BenchmarkColdReads|BenchmarkWriteCommit|BenchmarkEpochPublish' \
    -benchtime "$benchtime" ./internal/serve/ >>"$tmp"

# Event-scheduler node-count sweep (EXPERIMENTS.md PERF.10): the
# sparse-activity gossip workload (5 scattered facts, neighbor
# routing, one long stall window) at 10^2/10^3/10^4 nodes on the
# event-driven engine — events/op, events/s, schedops/op, heapmax —
# against the tick-walk RunFair baseline at 10^2/10^3, whose
# schedops/op row is the denominator of the >= 10x PR-10 gate.
go test -run '^$' -bench 'BenchmarkNetsimEvent|BenchmarkNetsimTick' \
    -benchtime "$benchtime" ./internal/netsim/ >>"$tmp"

# Gather-phase rows (EXPERIMENTS.md PERF.9): the partitioned
# scatter/gather read path through the router wire loop, with mean
# per-phase attribution (fanout-ns, merge-ns, render-ns) reported from
# the cluster's latency histograms, against the single-shard baseline
# on the same chain and query.
go test -run '^$' -bench 'BenchmarkGatherPhases|BenchmarkGatherBaseline' \
    -benchtime "$benchtime" ./internal/cluster/ >>"$tmp"

# calmload end-to-end rows: the serial single-connection ping-pong
# baseline and the pipelined multi-connection run on the read-heavy
# mix, emitted in go-bench line format so the renderer folds them in.
# Pipelined ops/s >= 2x serial ops/s is the PR-7 acceptance gate.
calmload_duration="${CALMLOAD_DURATION:-1500ms}"
go run ./cmd/calmload -compare -format gobench \
    -duration "$calmload_duration" -read-frac 0.98 -conns 4 -window 32 >>"$tmp"

# Shard-scaling rows (EXPERIMENTS.md PERF.8): the same read-heavy
# monotone mix against an in-process cluster of N=1,2,4 shards, a
# 128-edge chain workload split into N disjoint co(I) components so
# each shard serves a 1/N segment whose closure is ~1/N^2 the size
# (Theorem 5.3 locality — the chain is long enough that query-T
# rendering dominates per-op cost). Clients drive the per-shard
# endpoints directly — coordination-free, no gather — plus one N=4
# row through the scatter/gather router for contrast.
# Shards4 ops/s >= 2.5x Shards1 ops/s is the PR-8 acceptance gate.
for n in 1 2 4; do
    go run ./cmd/calmload -self-shards "$n" -self-chain 128 -format gobench \
        -bench-name "BenchmarkCalmloadShards$n" \
        -duration "$calmload_duration" -read-frac 0.98 -conns 4 -window 32 >>"$tmp"
done
go run ./cmd/calmload -self-shards 4 -self-chain 128 -via-router -format gobench \
    -bench-name BenchmarkCalmloadShards4Router \
    -duration "$calmload_duration" -read-frac 0.98 -conns 4 -window 32 >>"$tmp"

render() {
    awk '
    BEGIN { print "{"; printf "  \"benchmarks\": [" ; sep="" }
    /^goos: /   { goos=$2 }
    /^goarch: / { goarch=$2 }
    /^pkg: /    { pkg=$2 }
    /^Benchmark/ {
        name=$1; sub(/-[0-9]+$/, "", name)
        printf "%s\n    {\"pkg\":\"%s\",\"name\":\"%s\",\"iters\":%s", sep, pkg, name, $2
        for (i = 3; i < NF; i += 2) printf ",\"%s\":%s", $(i+1), $i
        printf "}"
        sep=","
    }
    END {
        print ""
        print "  ],"
        printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\"\n", goos, goarch
        print "}"
    }
    ' "$tmp"
}

if [ "$out" = "-" ]; then
    render
else
    render >"$out"
    echo "bench: wrote $out"
fi

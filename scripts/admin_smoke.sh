#!/bin/sh
# admin_smoke.sh boots a sharded calmd with the admin endpoint on a
# loopback port, pushes a few protocol lines through it, then curls
# /metrics, /healthz, and /trace and greps for the metric families the
# observability stack must expose: srv_* serving-core phases,
# cluster_* gather/pump telemetry, coord_* coordination-budget
# counters, and the epoch-age scrape gauge. Exits non-zero if the
# daemon fails to come up, an endpoint misbehaves, or a family is
# missing — the CI-enforced contract for the admin surface.
# Usage: scripts/admin_smoke.sh  (or: make admin-smoke)
set -eu

cd "$(dirname "$0")/.."

port=14471
admin_port=14472
log=$(mktemp)
pidfile=$(mktemp)
trap 'kill "$(cat "$pidfile")" 2>/dev/null || true; rm -f "$log" "$pidfile"' EXIT

go build -o /tmp/calmd-smoke ./cmd/calmd
/tmp/calmd-smoke -program testdata/qtc.dl -input testdata/graph.facts \
    -shards 2 -listen "127.0.0.1:$port" -admin "127.0.0.1:$admin_port" \
    >"$log" 2>&1 &
echo $! >"$pidfile"

# Wait for both listeners.
i=0
until curl -sf "http://127.0.0.1:$admin_port/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "admin_smoke: daemon did not come up; log:"
        cat "$log"
        exit 1
    fi
    sleep 0.1
done

# Drive a little traffic so phase histograms and spans have data:
# writes (log append + pump delivery), reads, and the cluster op.
python3 - "$port" <<'EOF'
import json, socket, sys
port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=5)
lines = [
    {"op": "insert", "facts": ["E(s1,s2)", "E(s2,s3)"]},
    {"op": "query", "rel": "T"},
    {"op": "stats"},
    {"op": "cluster"},
]
payload = "".join(json.dumps(l) + "\n" for l in lines)
s.sendall(payload.encode())
s.shutdown(socket.SHUT_WR)
resp = b""
while True:
    b = s.recv(65536)
    if not b:
        break
    resp += b
got = [json.loads(l) for l in resp.decode().splitlines() if l]
assert len(got) == len(lines), f"{len(got)} responses for {len(lines)} requests: {resp!r}"
assert all(r.get("ok") for r in got), f"error response: {got}"
cl = got[-1]["cluster"]
for key in ("applied", "held", "lag", "watermarks"):
    assert key in cl and len(cl[key]) == cl["shards"], f"cluster body missing live {key}: {cl}"
print("admin_smoke: protocol + cluster body OK")
EOF

metrics=$(curl -sf "http://127.0.0.1:$admin_port/metrics")
for family in \
    srv_requests srv_read_ns srv_write_ns srv_queue_wait_ns srv_apply_ns \
    srv_commit_ns srv_render_ns srv_epoch_age_ns \
    cluster_writes cluster_log_append_ns cluster_delivery_lag_ns \
    cluster_pump_lag cluster_held_deliveries \
    coord_fence_waits coord_hold_flushes coord_migrations coord_fenced_reads; do
    if ! printf '%s\n' "$metrics" | grep -q "^$family"; then
        echo "admin_smoke: /metrics missing family $family; got:"
        printf '%s\n' "$metrics" | head -60
        exit 1
    fi
done
# Quantile gauges from the latency-histogram plane.
if ! printf '%s\n' "$metrics" | grep -q 'srv_read_ns_quantile{q="0.99"}'; then
    echo "admin_smoke: /metrics missing srv_read_ns quantiles"
    exit 1
fi
echo "admin_smoke: /metrics families OK"

health=$(curl -sf "http://127.0.0.1:$admin_port/healthz")
for key in '"ok":true' '"mode":"cluster"' '"shards":2' '"health":' '"epoch_age_ns"'; do
    if ! printf '%s' "$health" | grep -q "$key"; then
        echo "admin_smoke: /healthz missing $key: $health"
        exit 1
    fi
done
echo "admin_smoke: /healthz OK ($health)"

traces=$(curl -sf "http://127.0.0.1:$admin_port/trace?n=200")
for span in srv.req cluster.log_append cluster.deliver; do
    if ! printf '%s\n' "$traces" | grep -q "\"span\":\"$span\""; then
        echo "admin_smoke: /trace missing span $span; got:"
        printf '%s\n' "$traces" | head -20
        exit 1
    fi
done
echo "admin_smoke: /trace spans OK"

curl -sf "http://127.0.0.1:$admin_port/debug/pprof/cmdline" >/dev/null
echo "admin_smoke: /debug/pprof OK"

echo "admin_smoke: PASS"

#!/bin/sh
# trace_demo.sh is a 10-second tour of the tracing plane: it boots a
# sharded calmd with -admin, pushes a small write/read mix through the
# router, and prints the resulting spans from /trace — one JSONL line
# per finished span, showing trace ids (c<conn>-<seq>, positional, not
# random), parent/child nesting (srv.req → cluster.log_append,
# cluster.gather → fanout/merge), logical timestamps (epoch/seq/shard),
# and the coord.* spans that mark coordination events.
# Usage: scripts/trace_demo.sh  (or: make trace-demo)
set -eu

cd "$(dirname "$0")/.."

port=14481
admin_port=14482
log=$(mktemp)
pidfile=$(mktemp)
trap 'kill "$(cat "$pidfile")" 2>/dev/null || true; rm -f "$log" "$pidfile"' EXIT

go build -o /tmp/calmd-demo ./cmd/calmd
/tmp/calmd-demo -program testdata/qtc.dl -input testdata/graph.facts \
    -shards 2 -listen "127.0.0.1:$port" -admin "127.0.0.1:$admin_port" \
    >"$log" 2>&1 &
echo $! >"$pidfile"

i=0
until curl -sf "http://127.0.0.1:$admin_port/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "trace_demo: daemon did not come up"; cat "$log"; exit 1; }
    sleep 0.1
done

python3 - "$port" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5)
for l in [
    {"op": "insert", "facts": ["E(d1,d2)", "E(d2,d3)"]},
    {"op": "query", "rel": "T"},
    {"op": "retract", "facts": ["E(d1,d2)"]},
    {"op": "stats"},
]:
    s.sendall((json.dumps(l) + "\n").encode())
s.shutdown(socket.SHUT_WR)
while s.recv(65536):
    pass
EOF

echo "== spans from /trace?n=40 (newest-first ring, JSONL) =="
curl -sf "http://127.0.0.1:$admin_port/trace?n=40"
echo "== live health =="
curl -sf "http://127.0.0.1:$admin_port/healthz"
echo
echo "== coordination budget =="
curl -sf "http://127.0.0.1:$admin_port/metrics" | grep '^coord_' || true

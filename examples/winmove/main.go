// Winmove: the paper's headline application. The win-move query —
// which positions of a game graph are won under the well-founded
// semantics of Win(x) :- Move(x,y), ¬Win(y) — is not monotone, yet it
// is domain-disjoint-monotone, so the domain-request strategy computes
// it coordination-free on any network under any domain-guided
// distribution policy (Theorem 4.4; Zinn et al.'s result reproved by
// this paper's connectedness argument).
package main

import (
	"fmt"
	"log"

	"repro/calm"
)

func main() {
	// A small game: a ⇄ b with an escape b → c, plus a separate
	// component d → e. Winning means moving to a lost position.
	game := calm.MustParseInstance(`
		Move(a,b) Move(b,a) Move(b,c)
		Move(d,e)
	`)

	won, lost, drawn, err := calm.WinMoveClassified(game)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("game       : %v\n", game)
	fmt.Printf("won        : %v\n", won.Sorted())
	fmt.Printf("lost       : %v\n", lost.Sorted())
	fmt.Printf("drawn      : %v\n\n", drawn.Sorted())

	// Distribute the game over three nodes, domain-guided: every value
	// is assigned to a node by hash, and each Move fact is replicated
	// to the nodes of both its endpoints.
	net := calm.MustNetwork("n1", "n2", "n3")
	pol := calm.DomainGuided(calm.HashAssignment(net))
	q := calm.WinMove()

	res, err := calm.Compute(calm.DomainRequest, q, net, pol, game, 0)
	if err != nil {
		log.Fatal(err)
	}
	central, err := q.Eval(game)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed output on %v: %v\n", net, res.Output)
	fmt.Printf("centralized output      : %v\n", central)
	fmt.Printf("consistent              : %v\n", res.Output.Equal(central))
	fmt.Printf("transitions=%d heartbeats=%d messages=%d\n\n",
		res.Metrics.Transitions, res.Metrics.Heartbeats, res.Metrics.MessagesSent)

	// Definition 3: under an ideal domain assignment (all values at
	// one node) the answer appears in a heartbeat-only prefix — no
	// communication is read, hence no coordination.
	ok, err := calm.VerifyCoordinationFree(calm.DomainRequest, q, net, game)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordination-free witness (heartbeat-only prefix): %v\n", ok)
}

// Declarative: the Theorem 4.3 evaluation strategy written entirely in
// stratified Datalog¬ — a "relational transducer" in the literal sense.
// The four transducer components (output, memory insertion, memory
// deletion, send) are Datalog¬ programs over the visible schema, which
// includes the system relations Id, MyAdom and Policy_E of the
// policy-aware model. The transducer computes the NoLoop query
// (∈ Mdistinct \ M) on every network and policy, coordination-free,
// without ever reading the All relation.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fact"
	"repro/internal/transducer"
)

func main() {
	schema := transducer.Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 1}),
		Msg: fact.MustSchema(map[string]int{"F": 2, "A": 2, "H": 1}),
		Mem: fact.MustSchema(map[string]int{
			"GotF": 2, "GotA": 2, "GotH": 1,
			"SentF": 2, "SentA": 2, "SentH": 1,
		}),
	}
	tr, err := transducer.DatalogTransducer(schema,
		// Qout: NoLoop over the known fragment, gated on completeness.
		// Bad(w) marks everything while some pair over MyAdom is
		// neither known present (Kn) nor known absent (Ab) — the
		// proof's "MyAdom is complete at x" as a stratified rule.
		`Kn(x,y)  :- E(x,y).
		 Kn(x,y)  :- F(x,y).
		 Kn(x,y)  :- GotF(x,y).
		 Ab(x,y)  :- A(x,y).
		 Ab(x,y)  :- GotA(x,y).
		 Ab(x,y)  :- Policy_E(x,y), !E(x,y).
		 Res(x,y) :- Kn(x,y).
		 Res(x,y) :- Ab(x,y).
		 Bad(w)   :- MyAdom(a), MyAdom(b), !Res(a,b), MyAdom(w).
		 Val(x)   :- Kn(x,y).
		 Val(y)   :- Kn(x,y).
		 Loop(x)  :- Kn(x,x).
		 O(x)     :- Val(x), !Loop(x), !Bad(x).`,
		// Qins: persist deliveries and detections, mark sends.
		`GotF(x,y)  :- F(x,y).
		 GotA(x,y)  :- A(x,y).
		 GotA(x,y)  :- Policy_E(x,y), !E(x,y).
		 GotH(v)    :- H(v).
		 SentF(x,y) :- E(x,y).
		 SentA(x,y) :- Policy_E(x,y), !E(x,y).
		 SentH(n)   :- Id(n).`,
		``,
		// Qsnd: forward facts, announce absences and own identifier.
		`F(x,y) :- E(x,y), !SentF(x,y).
		 A(x,y) :- Policy_E(x,y), !E(x,y), !SentA(x,y).
		 H(n)   :- Id(n), !SentH(n).`,
	)
	if err != nil {
		log.Fatal(err)
	}

	net := transducer.MustNetwork("n1", "n2")
	input := fact.MustParseInstance(`E(a,b) E(b,c) E(c,c)`)
	pol := transducer.HashPolicy(net)

	fmt.Println("input:", input)
	for _, x := range net {
		fmt.Printf("fragment at %s: %v\n", x, transducer.Dist(pol, net, input)[x])
	}
	fmt.Println("\ntrace (policy-aware model, no All):")

	sim, err := transducer.NewSimulation(net, tr, pol, transducer.PolicyAwareNoAll, input)
	if err != nil {
		log.Fatal(err)
	}
	sim.TraceTo(os.Stdout)
	out, err := sim.RunToQuiescence(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed NoLoop output: %v  (c has a self-loop)\n", out)
	fmt.Printf("messages sent: %d\n", sim.Metrics.MessagesSent)
}

// Fragments: classify Datalog¬ programs into the fragments of
// Figure 2 — Datalog, Datalog(≠), SP-Datalog, con-Datalog¬,
// semicon-Datalog¬, general stratified Datalog¬ — including the two
// programs of Example 5.1, and show a semi-connectedness witness
// stratification.
package main

import (
	"fmt"
	"log"

	"repro/calm"
)

func main() {
	programs := []struct {
		name string
		src  string
	}{
		{"transitive closure", `
			T(x,y) :- E(x,y).
			T(x,z) :- T(x,y), E(y,z).
		`},
		{"distinct edges", `
			O(x,y) :- E(x,y), x != y.
		`},
		{"non-edges (SP)", `
			Adom(x) :- E(x,y).
			Adom(y) :- E(x,y).
			O(x,y)  :- Adom(x), Adom(y), !E(x,y).
		`},
		{"Example 5.1 P1 (no-triangle values)", `
			T(x)    :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
			O(x)    :- ¬T(x), Adom(x).
			Adom(x) :- E(x,y).
			Adom(y) :- E(x,y).
		`},
		{"complement of TC (QTC)", `
			T(x,y)  :- E(x,y).
			T(x,z)  :- T(x,y), E(y,z).
			Adom(x) :- E(x,y).
			Adom(y) :- E(x,y).
			O(x,y)  :- Adom(x), Adom(y), !T(x,y).
		`},
		{"Example 5.1 P2 (two disjoint triangles)", `
			T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
			D(x1)    :- T(x1,x2,x3), T(y1,y2,y3),
			            x1 != y1, x1 != y2, x1 != y3,
			            x2 != y1, x2 != y2, x2 != y3,
			            x3 != y1, x3 != y2, x3 != y3.
			O(x)     :- ¬D(x), Adom(x).
			Adom(x)  :- E(x,y).
			Adom(y)  :- E(x,y).
		`},
		{"win-move", `
			Win(x) :- Move(x,y), !Win(y).
		`},
	}

	fmt.Println("Datalog¬ fragment classification (Figure 2):")
	fmt.Println()
	for _, p := range programs {
		prog, err := calm.ParseProgram(p.src)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-40s → %s\n", p.name, prog.Classify())
	}

	fmt.Println()
	fmt.Println("Semi-connectedness witness for QTC: the disconnected O-rule is")
	fmt.Println("pushed into the final stratum, all earlier strata are connected:")
	qtc := calm.MustParseProgram(programs[4].src)
	rho, ok := qtc.SemiConnectedStratification()
	if !ok {
		log.Fatal("QTC should be semi-connected")
	}
	for rel, stratum := range rho {
		fmt.Printf("  ρ(%s) = %d\n", rel, stratum)
	}
}

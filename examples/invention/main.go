// Invention: wILOG¬ value invention (Section 5.2 of the paper).
// ILOG¬ extends Datalog¬ with invention relations whose first position
// is filled by a fresh Skolem value per satisfying valuation; weakly
// safe programs never leak invented values into the output. Cabibbo's
// results place SP-wILOG at Mdistinct (= E) and — this paper's
// Theorem 5.4 — semicon-wILOG¬ exactly at Mdisjoint.
package main

import (
	"fmt"
	"log"

	"repro/internal/fact"
	"repro/internal/ilog"
)

func main() {
	// Give every edge an invented identifier, then chain identifiers
	// to report two-step reachability. The invented ids stay internal.
	p, err := ilog.ParseProgram(`
		Id(*, x, y) :- E(x,y).
		O(x,z)      :- Id(i, x, y), Id(j, y, z).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program:")
	fmt.Println(p)

	fmt.Printf("\nweakly safe for O : %v\n", p.IsWeaklySafe("O"))
	fmt.Printf("semi-connected    : %v\n", p.IsSemiConnected())
	fmt.Printf("unsafe positions  : %v\n", p.UnsafePositions())

	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`)
	full, err := p.Eval(in, ilog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninvented id facts:\n")
	for _, f := range full.Rel("Id") {
		fmt.Printf("  %s\n", f)
	}

	out, err := p.EvalQuery(in, []string{"O"}, ilog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutput (no invented values): %v\n", out)

	// Divergence detection: an invention relation feeding itself makes
	// the output undefined; the evaluator reports it rather than loop.
	diverging := ilog.MustParseProgram(`
		N(*, x) :- E(x,y).
		N(*, n) :- N(n, x).
	`)
	_, err = diverging.Eval(fact.MustParseInstance(`E(a,b)`), ilog.Options{MaxRounds: 50, MaxFacts: 500})
	fmt.Printf("\nself-feeding invention: %v\n", err)
}

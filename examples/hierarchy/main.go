// Hierarchy: walk the monotonicity hierarchy of Figure 1 bottom-up,
// showing for each level a query that belongs there and the concrete
// instance pair that expels it from the level below (Theorem 3.1's
// separating examples, executed).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/calm"
	"repro/internal/generate"
	"repro/internal/monotone"
)

func main() {
	type level struct {
		query         calm.Query
		inClass       calm.Class
		hasIn, hasOut bool
		notIn         calm.Class
		i, j          *calm.Instance
		comments      string
	}
	levels := []level{
		{
			query:    calm.TC(),
			inClass:  calm.M,
			hasIn:    true,
			comments: "positive Datalog: fully monotone",
		},
		{
			query:    calm.NoLoop(),
			inClass:  calm.MDistinct,
			hasIn:    true,
			hasOut:   true,
			notIn:    calm.M,
			i:        calm.MustParseInstance(`E(a,b)`),
			j:        calm.MustParseInstance(`E(a,a)`),
			comments: "SP-Datalog: survives additions that bring new values",
		},
		{
			query:    calm.ComplementTC(),
			inClass:  calm.MDisjoint,
			hasIn:    true,
			hasOut:   true,
			notIn:    calm.MDistinct,
			i:        calm.MustParseInstance(`E(a,a) E(b,b)`),
			j:        calm.MustParseInstance(`E(a,c) E(c,b)`),
			comments: "semicon-Datalog¬: survives additions sharing no value",
		},
		{
			query:    calm.TrianglesUnlessTwoDisjoint(),
			hasOut:   true,
			notIn:    calm.MDisjoint,
			i:        generate.Triangle("a", "b", "c"),
			j:        generate.Triangle("x", "y", "z"),
			comments: "computable but outside every weakened class",
		},
	}

	sampler := monotone.ClassSampler(calm.MDisjoint, func(rng *rand.Rand) (*calm.Instance, *calm.Instance) {
		i := generate.RandomGraph(rng, "v", 4, 5)
		j := generate.RandomGraph(rng, "w", 4, 4)
		return i, j
	})

	fmt.Println("The monotonicity hierarchy M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C (Figure 1):")
	fmt.Println()
	for _, l := range levels {
		fmt.Printf("%-14s — %s\n", l.query.Name(), l.comments)
		if l.hasOut {
			w, err := calm.CheckPair(l.query, l.i, l.j)
			if err != nil {
				log.Fatal(err)
			}
			if w == nil {
				log.Fatalf("expected %s to violate %v", l.query.Name(), l.notIn)
			}
			fmt.Printf("  ∉ %-12v I=%v + J=%v loses %v\n", l.notIn, l.i, l.j, w.Missing)
		}
		if l.hasIn {
			w, err := calm.FindViolation(l.query, l.inClass, sampler, 5, 200)
			if err != nil {
				log.Fatal(err)
			}
			if w != nil {
				log.Fatalf("unexpected violation of %v by %s: %v", l.inClass, l.query.Name(), w)
			}
			fmt.Printf("  ∈ %-12v no violation in 200 sampled pairs\n", l.inClass)
		}
		fmt.Println()
	}

	// The bounded classes: one edge from the old center is enough to
	// grow a star, but disjoint additions need all spokes at once.
	fmt.Println("Bounded classes (Theorem 3.1(6)): Q³star ∈ M²disjoint \\ M¹distinct")
	star := generate.Star("c", "s", 2)
	add := calm.MustParseInstance(`E(c,new)`)
	w, err := calm.CheckPair(calm.KStar(3), star, add)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  star %v + single distinct edge %v loses %v\n", star, add, w.Missing)
}

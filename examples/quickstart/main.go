// Quickstart: parse a Datalog¬ program, evaluate it on a small graph,
// and ask the classifier where it sits in the paper's Figure 2.
package main

import (
	"fmt"
	"log"

	"repro/calm"
)

func main() {
	// The complement of transitive closure — the paper's QTC, the
	// canonical query that is domain-disjoint-monotone but not
	// domain-distinct-monotone.
	prog, err := calm.ParseProgram(`
		T(x,y)  :- E(x,y).
		T(x,z)  :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y)  :- Adom(x), Adom(y), !T(x,y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program:")
	fmt.Println(prog)
	fmt.Printf("\nfragment: %s (semi-connected: the only disconnected rule sits in the last stratum)\n", prog.Classify())

	input := calm.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d)`)
	fmt.Printf("\ninput: %v\n", input)

	q, err := calm.NewDatalogQuery(prog, "O")
	if err != nil {
		log.Fatal(err)
	}
	out, err := q.Eval(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQTC(input) — pairs with no directed path: %v\n", out)

	// The paper's point: this non-monotone query still has a
	// coordination-free distributed evaluation, because it is
	// domain-disjoint-monotone. Verify both halves empirically.
	i := calm.MustParseInstance(`E(a,a) E(b,b)`)
	j := calm.MustParseInstance(`E(a,c) E(c,b)`) // domain-distinct: c is new
	w, err := calm.CheckPair(q, i, j)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndomain-distinct addition %v breaks monotonicity: lost %v\n", j, w.Missing)

	jDisjoint := calm.MustParseInstance(`E(x,y) E(y,z)`)
	w, err = calm.CheckPair(q, i, jDisjoint)
	if err != nil {
		log.Fatal(err)
	}
	if w == nil {
		fmt.Printf("domain-disjoint addition %v preserves all outputs (QTC ∈ Mdisjoint)\n", jDisjoint)
	}
}

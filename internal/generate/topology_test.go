package generate

import (
	"testing"

	"repro/internal/fact"
)

// reachable BFS-counts the nodes reachable from 0 — every generated
// topology must be connected or the simulator's convergence claims die.
func reachable(t *Topology) int {
	seen := make([]bool, t.Len())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range t.Neighbors(i) {
			if !seen[j] {
				seen[j] = true
				count++
				queue = append(queue, int(j))
			}
		}
	}
	return count
}

func TestTopologyShapes(t *testing.T) {
	const n = 64
	for _, kind := range []TopoKind{TopoRing, TopoStar, TopoTree, TopoPowerLaw, TopoWAN} {
		topo := MustTopology(kind, n, 7)
		if topo.Len() != n {
			t.Fatalf("%v: Len=%d", kind, topo.Len())
		}
		if got := reachable(topo); got != n {
			t.Errorf("%v: only %d of %d nodes reachable", kind, got, n)
		}
		for i := 0; i < n; i++ {
			if topo.Degree(i) == 0 {
				t.Errorf("%v: node %d isolated", kind, i)
			}
		}
	}

	ring := MustTopology(TopoRing, n, 0)
	for i := 0; i < n; i++ {
		if ring.Degree(i) != 2 {
			t.Errorf("ring node %d degree %d, want 2", i, ring.Degree(i))
		}
	}
	star := MustTopology(TopoStar, n, 0)
	if star.Degree(0) != n-1 {
		t.Errorf("star hub degree %d, want %d", star.Degree(0), n-1)
	}
	for i := 1; i < n; i++ {
		if star.Degree(i) != 1 {
			t.Errorf("star leaf %d degree %d, want 1", i, star.Degree(i))
		}
	}
	tree := MustTopology(TopoTree, n, 0)
	if tree.NumEdges() != n-1 {
		t.Errorf("tree has %d edges, want %d", tree.NumEdges(), n-1)
	}
	pl := MustTopology(TopoPowerLaw, 256, 11)
	maxDeg := 0
	for i := 0; i < pl.Len(); i++ {
		if d := pl.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Errorf("power-law max degree %d suspiciously flat", maxDeg)
	}
}

func TestTopologyNodeOrder(t *testing.T) {
	topo := MustTopology(TopoRing, 100, 0)
	nodes := topo.Nodes()
	if nodes[0] != "n001" || nodes[99] != "n100" {
		t.Fatalf("zero-padded ids broken: %s .. %s", nodes[0], nodes[99])
	}
	for i := 1; i < len(nodes); i++ {
		if !(nodes[i-1] < nodes[i]) {
			t.Fatalf("node ids not sorted at %d: %s >= %s", i, nodes[i-1], nodes[i])
		}
	}
	for i, x := range nodes {
		if topo.Index(x) != i {
			t.Errorf("Index(%s)=%d, want %d", x, topo.Index(x), i)
		}
	}
	if topo.Index("zz") != -1 {
		t.Error("Index of unknown id should be -1")
	}
}

func TestTopologyDeterminism(t *testing.T) {
	for _, kind := range []TopoKind{TopoPowerLaw, TopoWAN} {
		a := MustTopology(kind, 200, 42)
		b := MustTopology(kind, 200, 42)
		c := MustTopology(kind, 200, 43)
		same, diff := true, false
		for i := 0; i < 200; i++ {
			an, bn, cn := a.Neighbors(i), b.Neighbors(i), c.Neighbors(i)
			if len(an) != len(bn) {
				same = false
				break
			}
			for k := range an {
				if an[k] != bn[k] {
					same = false
				}
			}
			if len(an) != len(cn) {
				diff = true
			} else {
				for k := range an {
					if an[k] != cn[k] {
						diff = true
					}
				}
			}
		}
		if !same {
			t.Errorf("%v: same seed produced different graphs", kind)
		}
		if !diff {
			t.Errorf("%v: different seeds produced identical graphs", kind)
		}
	}
}

func TestWANClustersAndLatency(t *testing.T) {
	topo := MustTopology(TopoWAN, 256, 3)
	if topo.Clusters() < 2 {
		t.Fatalf("WAN has %d clusters, want >= 2", topo.Clusters())
	}
	intra, inter := false, false
	for i := 0; i < topo.Len() && !(intra && inter); i++ {
		for _, j := range topo.Neighbors(i) {
			if topo.Cluster(i) == topo.Cluster(int(j)) {
				if topo.Latency(i, int(j)) != 1 {
					t.Fatalf("intra-cluster latency %d, want 1", topo.Latency(i, int(j)))
				}
				intra = true
			} else {
				if topo.Latency(i, int(j)) != WANInterLatency {
					t.Fatalf("inter-cluster latency %d, want %d", topo.Latency(i, int(j)), WANInterLatency)
				}
				inter = true
			}
		}
	}
	if !intra || !inter {
		t.Fatalf("WAN missing edge kinds: intra=%v inter=%v", intra, inter)
	}
	ring := MustTopology(TopoRing, 16, 0)
	if ring.Clusters() != 1 || ring.Latency(0, 8) != 1 {
		t.Error("non-WAN topologies must be single-cluster with unit latency")
	}
}

func TestTopologyCut(t *testing.T) {
	for _, kind := range []TopoKind{TopoRing, TopoPowerLaw, TopoWAN} {
		topo := MustTopology(kind, 128, 5)
		for seed := int64(0); seed < 8; seed++ {
			cut := topo.Cut(seed)
			if len(cut) == 0 || len(cut) >= topo.Len() {
				t.Fatalf("%v: cut size %d not a strict nonempty subset of %d", kind, len(cut), topo.Len())
			}
			for i := 1; i < len(cut); i++ {
				if !(cut[i-1] < cut[i]) {
					t.Fatalf("%v: cut not sorted", kind)
				}
			}
		}
		a, b := topo.Cut(9), topo.Cut(9)
		if len(a) != len(b) {
			t.Fatalf("%v: Cut not deterministic", kind)
		}
	}
	wan := MustTopology(TopoWAN, 128, 5)
	cut := wan.Cut(2)
	cl := wan.Cluster(wan.Index(cut[0]))
	for _, x := range cut {
		if wan.Cluster(wan.Index(x)) != cl {
			t.Fatal("WAN cut spans clusters")
		}
	}
}

func TestEdgeInstance(t *testing.T) {
	topo := MustTopology(TopoRing, 8, 0)
	in := topo.EdgeInstance("E")
	if in.Len() != topo.NumEdges() {
		t.Fatalf("EdgeInstance has %d facts, want %d", in.Len(), topo.NumEdges())
	}
	if !in.Has(fact.New("E", "n1", "n2")) {
		t.Error("missing ring edge E(n1,n2)")
	}
}

func TestParseTopoKindRoundTrip(t *testing.T) {
	for _, kind := range []TopoKind{TopoRing, TopoStar, TopoTree, TopoPowerLaw, TopoWAN} {
		got, err := ParseTopoKind(kind.String())
		if err != nil || got != kind {
			t.Errorf("round trip %v: got %v, err %v", kind, got, err)
		}
	}
	if _, err := ParseTopoKind("mesh"); err == nil {
		t.Error("ParseTopoKind accepted an unknown name")
	}
	if _, err := NewTopology(TopoRing, 1, 0); err == nil {
		t.Error("NewTopology accepted n=1")
	}
	if _, err := NewTopology(TopoKind(99), 4, 0); err == nil {
		t.Error("NewTopology accepted an unknown kind")
	}
}

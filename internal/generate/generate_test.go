package generate

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
)

func TestValues(t *testing.T) {
	vs := Values("x", 3)
	if len(vs) != 3 || vs[0] != "x0" || vs[2] != "x2" {
		t.Errorf("Values = %v", vs)
	}
}

func TestPath(t *testing.T) {
	p := Path("v", 3)
	if p.Len() != 3 {
		t.Errorf("Path(3) has %d edges", p.Len())
	}
	if !p.Has(fact.New("E", "v0", "v1")) || !p.Has(fact.New("E", "v2", "v3")) {
		t.Errorf("Path edges wrong: %v", p)
	}
}

func TestCycle(t *testing.T) {
	c := Cycle("v", 4)
	if c.Len() != 4 || !c.Has(fact.New("E", "v3", "v0")) {
		t.Errorf("Cycle = %v", c)
	}
}

func TestClique(t *testing.T) {
	k := Clique("v", 4)
	if k.Len() != 12 { // n(n-1) directed edges
		t.Errorf("Clique(4) has %d edges, want 12", k.Len())
	}
	if k.Has(fact.New("E", "v0", "v0")) {
		t.Error("Clique should be loop-free")
	}
}

func TestStar(t *testing.T) {
	s := Star("c", "s", 5)
	if s.Len() != 5 {
		t.Errorf("Star(5) has %d edges", s.Len())
	}
	for _, f := range s.Facts() {
		if f.Arg(0) != "c" {
			t.Errorf("non-center edge %v", f)
		}
	}
}

func TestTriangle(t *testing.T) {
	tr := Triangle("a", "b", "c")
	if tr.Len() != 3 || !tr.Has(fact.New("E", "c", "a")) {
		t.Errorf("Triangle = %v", tr)
	}
}

func TestDisjointUnion(t *testing.T) {
	u := DisjointUnion(Path("a", 2), Path("b", 2))
	if u.Len() != 4 {
		t.Errorf("DisjointUnion size = %d", u.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("overlapping DisjointUnion should panic")
		}
	}()
	DisjointUnion(Path("a", 2), Path("a", 2))
}

func TestBipartite(t *testing.T) {
	b := Bipartite("l", 2, "r", 3)
	if b.Len() != 6 {
		t.Errorf("Bipartite(2,3) has %d edges, want 6", b.Len())
	}
	for _, f := range b.Facts() {
		if f.Arg(0)[0] != 'l' || f.Arg(1)[0] != 'r' {
			t.Errorf("edge %v crosses the wrong way", f)
		}
	}
}

func TestTournament(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tour := Tournament(rng, "v", 5)
	if tour.Len() != 10 { // C(5,2)
		t.Errorf("Tournament(5) has %d edges, want 10", tour.Len())
	}
	// Exactly one orientation per pair.
	for _, f := range tour.Facts() {
		if tour.Has(fact.New("E", f.Arg(1), f.Arg(0))) {
			t.Errorf("both orientations present for %v", f)
		}
	}
	// Deterministic under the seed.
	again := Tournament(rand.New(rand.NewSource(3)), "v", 5)
	if !tour.Equal(again) {
		t.Error("Tournament not deterministic for a fixed seed")
	}
}

func TestGrid(t *testing.T) {
	g := Grid("g", 3, 2)
	// Horizontal: 2 per row × 2 rows; vertical: 1 per column × 3 columns.
	if g.Len() != 7 {
		t.Errorf("Grid(3,2) has %d edges, want 7", g.Len())
	}
	if !g.Has(fact.New("E", "g0_0", "g1_0")) || !g.Has(fact.New("E", "g0_0", "g0_1")) {
		t.Errorf("grid edges missing: %v", g)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := RandomGraph(rand.New(rand.NewSource(5)), "v", 4, 6)
	b := RandomGraph(rand.New(rand.NewSource(5)), "v", 4, 6)
	if !a.Equal(b) {
		t.Error("same seed should give same instance")
	}
	for _, f := range a.Facts() {
		if f.Rel() != "E" || f.Arity() != 2 {
			t.Errorf("bad fact %v", f)
		}
	}
}

func TestAllGraphsCount(t *testing.T) {
	count := 0
	AllGraphs(Values("v", 2), func(g *fact.Instance) bool {
		count++
		return true
	})
	if count != 16 { // 2^(2*2)
		t.Errorf("AllGraphs(2) visited %d graphs, want 16", count)
	}
	// Early stop.
	count = 0
	AllGraphs(Values("v", 2), func(g *fact.Instance) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSubsets(t *testing.T) {
	i := Path("v", 3)
	count := 0
	seen := make(map[string]bool)
	Subsets(i, func(s *fact.Instance) bool {
		count++
		if !s.SubsetOf(i) {
			t.Errorf("non-subset %v", s)
		}
		seen[s.String()] = true
		return true
	})
	if count != 8 || len(seen) != 8 {
		t.Errorf("Subsets visited %d (%d unique), want 8", count, len(seen))
	}
}

// Every generated random program must parse and validate (safety is by
// construction), and a healthy fraction must be stratifiable so the
// cross-mode differential tests have material to work with.
func TestRandomProgramAlwaysSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stratifiable := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		src := RandomProgram(rng, 1+rng.Intn(5))
		p, err := datalog.ParseProgram(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated program unsafe: %v\n%s", err, src)
		}
		if p.IsStratifiable() {
			stratifiable++
		}
	}
	if stratifiable < trials/2 {
		t.Errorf("only %d/%d generated programs stratifiable", stratifiable, trials)
	}
}

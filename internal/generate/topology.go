package generate

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fact"
)

// This file is the seeded topology catalog for the event-driven
// network simulator (internal/netsim): deterministic generators for
// the communication graphs the large-network scenarios run on —
// rings, stars, trees, power-law graphs and partitioned WANs at
// 10^2–10^4 nodes. A Topology fixes three things the simulator
// consumes: the node set (zero-padded ids, so lexicographic network
// order equals index order), the undirected adjacency (neighbor
// routing), and a latency/cluster structure (WAN inter-cluster hops,
// topology-aware partition cuts for fault plans).

// TopoKind enumerates the catalog.
type TopoKind int

const (
	// TopoRing is a cycle: node i connects to i±1 (mod n).
	TopoRing TopoKind = iota
	// TopoStar is a hub and n-1 leaves.
	TopoStar
	// TopoTree is a complete binary tree.
	TopoTree
	// TopoPowerLaw is a Barabási–Albert preferential-attachment graph
	// (each new node attaches to 2 existing nodes chosen proportional
	// to degree).
	TopoPowerLaw
	// TopoWAN is a partitioned wide-area network: clusters of nodes
	// (ring plus seeded chords inside each cluster), bridged into a
	// ring of clusters, with higher inter-cluster latency.
	TopoWAN
)

// String names the kind in the form ParseTopoKind accepts.
func (k TopoKind) String() string {
	switch k {
	case TopoRing:
		return "ring"
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoPowerLaw:
		return "powerlaw"
	case TopoWAN:
		return "wan"
	default:
		return fmt.Sprintf("topology(%d)", int(k))
	}
}

// ParseTopoKind parses a topology name (the -topology CLI flag).
func ParseTopoKind(s string) (TopoKind, error) {
	switch s {
	case "ring":
		return TopoRing, nil
	case "star":
		return TopoStar, nil
	case "tree":
		return TopoTree, nil
	case "powerlaw":
		return TopoPowerLaw, nil
	case "wan":
		return TopoWAN, nil
	default:
		return 0, fmt.Errorf("generate: unknown topology %q (want ring|star|tree|powerlaw|wan)", s)
	}
}

// WANInterLatency is the logical-time cost of an edge crossing WAN
// clusters; every other hop costs 1.
const WANInterLatency = 4

// Topology is one generated communication graph. Instances are
// immutable after NewTopology.
type Topology struct {
	Kind TopoKind
	// Seed is the generator seed (ignored by the deterministic kinds).
	Seed int64

	nodes    []fact.Value // sorted ascending; index == network order
	adj      [][]int32    // undirected adjacency, neighbor lists sorted
	cluster  []int32      // cluster id per node (all 0 outside TopoWAN)
	clusters int
}

// NewTopology generates the topology of the given kind over n nodes.
// The same (kind, n, seed) always yields the same graph.
func NewTopology(kind TopoKind, n int, seed int64) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("generate: topology needs at least 2 nodes, got %d", n)
	}
	t := &Topology{Kind: kind, Seed: seed, adj: make([][]int32, n), cluster: make([]int32, n), clusters: 1}
	// Zero-padded ids: "n001".."n100" sort lexicographically in index
	// order, so transducer.NewNetwork (which sorts) preserves it.
	width := len(fmt.Sprint(n))
	t.nodes = make([]fact.Value, n)
	for i := 0; i < n; i++ {
		t.nodes[i] = fact.Value(fmt.Sprintf("n%0*d", width, i+1))
	}
	switch kind {
	case TopoRing:
		for i := 0; i < n; i++ {
			t.edge(i, (i+1)%n)
		}
	case TopoStar:
		for i := 1; i < n; i++ {
			t.edge(0, i)
		}
	case TopoTree:
		for i := 1; i < n; i++ {
			t.edge(i, (i-1)/2)
		}
	case TopoPowerLaw:
		t.powerLaw(n, seed)
	case TopoWAN:
		t.wan(n, seed)
	default:
		return nil, fmt.Errorf("generate: unknown topology kind %v", kind)
	}
	for i := range t.adj {
		sort.Slice(t.adj[i], func(a, b int) bool { return t.adj[i][a] < t.adj[i][b] })
	}
	return t, nil
}

// MustTopology is NewTopology, panicking on error (tests, benches).
func MustTopology(kind TopoKind, n int, seed int64) *Topology {
	t, err := NewTopology(kind, n, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// edge adds the undirected edge i—j (callers never add duplicates
// except powerLaw, which deduplicates itself).
func (t *Topology) edge(i, j int) {
	t.adj[i] = append(t.adj[i], int32(j))
	t.adj[j] = append(t.adj[j], int32(i))
}

// hasEdge reports whether i—j exists (pre-sort: linear scan).
func (t *Topology) hasEdge(i, j int) bool {
	for _, k := range t.adj[i] {
		if int(k) == j {
			return true
		}
	}
	return false
}

// powerLaw grows a Barabási–Albert graph: seed triangle, then each
// new node attaches to m=2 distinct existing nodes sampled
// proportional to degree (the classic repeated-endpoint trick: a
// uniform draw from the list of all edge endpoints is a
// degree-proportional draw from the nodes).
func (t *Topology) powerLaw(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	endpoints := make([]int32, 0, 4*n)
	t.edge(0, 1)
	endpoints = append(endpoints, 0, 1)
	if n > 2 {
		t.edge(1, 2)
		t.edge(2, 0)
		endpoints = append(endpoints, 1, 2, 2, 0)
	}
	const m = 2
	for i := 3; i < n; i++ {
		attached := 0
		for tries := 0; attached < m && tries < 32; tries++ {
			j := int(endpoints[rng.Intn(len(endpoints))])
			if j == i || t.hasEdge(i, j) {
				continue
			}
			t.edge(i, j)
			endpoints = append(endpoints, int32(i), int32(j))
			attached++
		}
		if attached == 0 {
			// Degenerate fallback keeps the graph connected.
			t.edge(i, i-1)
			endpoints = append(endpoints, int32(i), int32(i-1))
		}
	}
}

// wan partitions n nodes into clusters (ring inside each cluster plus
// a few seeded chords) and bridges consecutive clusters into a ring of
// clusters. Inter-cluster edges cost WANInterLatency.
func (t *Topology) wan(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	k := n / 32
	if k < 2 {
		k = 2
	}
	if k > 16 {
		k = 16
	}
	t.clusters = k
	bounds := make([]int, k+1)
	for c := 0; c <= k; c++ {
		bounds[c] = c * n / k
	}
	for c := 0; c < k; c++ {
		lo, hi := bounds[c], bounds[c+1]
		size := hi - lo
		for i := lo; i < hi; i++ {
			t.cluster[i] = int32(c)
			if size > 1 {
				t.edge(i, lo+(i-lo+1)%size)
			}
		}
		// A few chords make the cluster more than a fragile ring.
		for x := 0; x < size/8; x++ {
			i, j := lo+rng.Intn(size), lo+rng.Intn(size)
			if i != j && !t.hasEdge(i, j) {
				t.edge(i, j)
			}
		}
	}
	// Bridge consecutive clusters (ring of clusters) through seeded
	// gateway nodes.
	for c := 0; c < k; c++ {
		d := (c + 1) % k
		i := bounds[c] + rng.Intn(bounds[c+1]-bounds[c])
		j := bounds[d] + rng.Intn(bounds[d+1]-bounds[d])
		if !t.hasEdge(i, j) {
			t.edge(i, j)
		}
	}
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.nodes) }

// Nodes returns a copy of the node ids, sorted ascending (the network
// order).
func (t *Topology) Nodes() []fact.Value { return append([]fact.Value(nil), t.nodes...) }

// Node returns the id of node i.
func (t *Topology) Node(i int) fact.Value { return t.nodes[i] }

// Index returns the index of node id v, or -1.
func (t *Topology) Index(v fact.Value) int {
	i := sort.Search(len(t.nodes), func(k int) bool { return t.nodes[k] >= v })
	if i < len(t.nodes) && t.nodes[i] == v {
		return i
	}
	return -1
}

// Neighbors returns node i's neighbor indices, sorted. The slice is
// shared — callers must not mutate it.
func (t *Topology) Neighbors(i int) []int32 { return t.adj[i] }

// Degree returns node i's degree.
func (t *Topology) Degree(i int) int { return len(t.adj[i]) }

// NumEdges returns the number of undirected edges.
func (t *Topology) NumEdges() int {
	total := 0
	for _, a := range t.adj {
		total += len(a)
	}
	return total / 2
}

// Clusters returns the number of WAN clusters (1 outside TopoWAN).
func (t *Topology) Clusters() int { return t.clusters }

// Cluster returns node i's cluster id.
func (t *Topology) Cluster(i int) int { return int(t.cluster[i]) }

// Latency returns the logical-time cost of delivering a message from
// node i to node j: 1 inside a cluster, WANInterLatency across WAN
// clusters.
func (t *Topology) Latency(i, j int) int {
	if t.clusters > 1 && t.cluster[i] != t.cluster[j] {
		return WANInterLatency
	}
	return 1
}

// EdgeInstance renders the topology's edges as facts rel(u, v) — one
// fact per undirected edge, in canonical low-index→high-index
// direction. This gives every topology a ready-made graph workload
// over its own node ids.
func (t *Topology) EdgeInstance(rel string) *fact.Instance {
	in := fact.NewInstance()
	for i, adj := range t.adj {
		for _, j := range adj {
			if i < int(j) {
				in.Add(fact.New(rel, t.nodes[i], t.nodes[j]))
			}
		}
	}
	return in
}

// Cut returns a seeded topology-aware partition group: on a WAN one
// whole cluster (the partitions that actually happen to WANs); on
// every other kind a contiguous index block of half the nodes. The
// group is returned in node-id order and is always a strict non-empty
// subset, so it is directly usable as a transducer.Partition group.
func (t *Topology) Cut(seed int64) []fact.Value {
	n := len(t.nodes)
	var members []fact.Value
	if t.clusters > 1 {
		c := int32(uint64(seed) % uint64(t.clusters))
		for i, cl := range t.cluster {
			if cl == c {
				members = append(members, t.nodes[i])
			}
		}
	} else {
		size := n / 2
		if size == 0 {
			size = 1
		}
		off := int(uint64(seed) % uint64(n))
		for k := 0; k < size; k++ {
			members = append(members, t.nodes[(off+k)%n])
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

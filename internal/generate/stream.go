package generate

import (
	"math/rand"

	"repro/internal/fact"
)

// Update is one step of a generated update stream: a batch of facts to
// insert and a batch to retract, disjoint by construction.
type Update struct {
	Insert  []fact.Fact
	Retract []fact.Fact
}

// UpdateStream generates a seeded random sequence of update batches
// over the schema: each step inserts up to maxBatch random facts (in
// the style of Random) and retracts up to maxBatch facts drawn from
// the set currently present, tracking presence from the given start
// instance (which is not mutated). Inserts of present facts and
// mixed insert+retract of the same fact within a batch are avoided,
// so every generated change is effective — the shape incremental
// maintenance property tests want to replay.
func UpdateStream(rng *rand.Rand, schema fact.Schema, pool []fact.Value, start *fact.Instance, steps, maxBatch int) []Update {
	cur := fact.NewInstance()
	if start != nil {
		cur.AddAll(start)
	}
	names := schema.Names()
	out := make([]Update, 0, steps)
	for s := 0; s < steps; s++ {
		var u Update
		batch := make(map[string]bool)
		if len(names) > 0 && len(pool) > 0 {
			for k := rng.Intn(maxBatch + 1); k > 0; k-- {
				rel := names[rng.Intn(len(names))]
				ar, _ := schema.Arity(rel)
				args := make([]fact.Value, ar)
				for i := range args {
					args[i] = pool[rng.Intn(len(pool))]
				}
				f := fact.New(rel, args...)
				if cur.Has(f) || batch[f.Key()] {
					continue
				}
				batch[f.Key()] = true
				u.Insert = append(u.Insert, f)
			}
		}
		if present := cur.Facts(); len(present) > 0 {
			for k := rng.Intn(maxBatch + 1); k > 0; k-- {
				f := present[rng.Intn(len(present))]
				if batch[f.Key()] {
					continue
				}
				batch[f.Key()] = true
				u.Retract = append(u.Retract, f)
			}
		}
		for _, f := range u.Insert {
			cur.Add(f)
		}
		for _, f := range u.Retract {
			cur.Remove(f)
		}
		out = append(out, u)
	}
	return out
}

// Package generate produces database instances for tests, experiments
// and benchmarks: deterministic seeded random instances over arbitrary
// schemas, the structured graph families the paper's separating
// examples are built from (paths, cycles, cliques, stars), and
// exhaustive enumerations of all small graphs for exhaustive checks of
// universally quantified claims.
package generate

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fact"
)

// Values returns n distinct values named prefix0..prefix(n-1).
func Values(prefix string, n int) []fact.Value {
	out := make([]fact.Value, n)
	for i := range out {
		out[i] = fact.Value(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Random builds a random instance over the schema using the given
// value pool: for each relation, count facts with uniformly chosen
// arguments (duplicates fold by set semantics).
func Random(rng *rand.Rand, schema fact.Schema, pool []fact.Value, count int) *fact.Instance {
	out := fact.NewInstance()
	names := schema.Names()
	if len(names) == 0 || len(pool) == 0 {
		return out
	}
	for k := 0; k < count; k++ {
		rel := names[rng.Intn(len(names))]
		ar, _ := schema.Arity(rel)
		args := make([]fact.Value, ar)
		for i := range args {
			args[i] = pool[rng.Intn(len(pool))]
		}
		out.Add(fact.New(rel, args...))
	}
	return out
}

// RandomGraph builds a random directed graph over n values with m
// random edges (an Erdős–Rényi-style G(n, m) sample with possible
// self-loops), using the single binary relation E.
func RandomGraph(rng *rand.Rand, prefix string, n, m int) *fact.Instance {
	return Random(rng, fact.GraphSchema(), Values(prefix, n), m)
}

// Path returns the directed path v0 -> v1 -> ... -> v(n) with n edges.
func Path(prefix string, n int) *fact.Instance {
	out := fact.NewInstance()
	vs := Values(prefix, n+1)
	for i := 0; i < n; i++ {
		out.Add(fact.New("E", vs[i], vs[i+1]))
	}
	return out
}

// Cycle returns the directed cycle v0 -> v1 -> ... -> v(n-1) -> v0.
func Cycle(prefix string, n int) *fact.Instance {
	out := fact.NewInstance()
	vs := Values(prefix, n)
	for i := 0; i < n; i++ {
		out.Add(fact.New("E", vs[i], vs[(i+1)%n]))
	}
	return out
}

// Clique returns the complete loop-free digraph on n values: both
// directions of every pair, matching the paper's clique queries which
// ignore edge direction.
func Clique(prefix string, n int) *fact.Instance {
	out := fact.NewInstance()
	vs := Values(prefix, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out.Add(fact.New("E", vs[i], vs[j]))
			}
		}
	}
	return out
}

// Star returns a star with the given center value and k spokes
// center -> prefix0..prefix(k-1).
func Star(center fact.Value, prefix string, k int) *fact.Instance {
	out := fact.NewInstance()
	for _, v := range Values(prefix, k) {
		out.Add(fact.New("E", center, v))
	}
	return out
}

// Triangle returns the directed triangle a -> b -> c -> a over the
// given three values.
func Triangle(a, b, c fact.Value) *fact.Instance {
	return fact.NewInstance(
		fact.New("E", a, b),
		fact.New("E", b, c),
		fact.New("E", c, a),
	)
}

// DisjointUnion unions the instances after checking they are pairwise
// domain-disjoint; it panics otherwise (programming error in a test).
func DisjointUnion(parts ...*fact.Instance) *fact.Instance {
	out := fact.NewInstance()
	for _, p := range parts {
		if !fact.DomainDisjoint(p, out) {
			panic(fmt.Sprintf("generate: DisjointUnion parts share values: %v vs %v", p, out))
		}
		out.AddAll(p)
	}
	return out
}

// Bipartite returns the complete directed bipartite graph from n left
// values to m right values.
func Bipartite(leftPrefix string, n int, rightPrefix string, m int) *fact.Instance {
	out := fact.NewInstance()
	for _, l := range Values(leftPrefix, n) {
		for _, r := range Values(rightPrefix, m) {
			out.Add(fact.New("E", l, r))
		}
	}
	return out
}

// Tournament returns a random tournament on n values: exactly one
// directed edge between every pair, orientation chosen by the rng.
func Tournament(rng *rand.Rand, prefix string, n int) *fact.Instance {
	out := fact.NewInstance()
	vs := Values(prefix, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				out.Add(fact.New("E", vs[i], vs[j]))
			} else {
				out.Add(fact.New("E", vs[j], vs[i]))
			}
		}
	}
	return out
}

// Grid returns the directed w×h grid: edges rightward and downward.
func Grid(prefix string, w, h int) *fact.Instance {
	out := fact.NewInstance()
	at := func(x, y int) fact.Value {
		return fact.Value(fmt.Sprintf("%s%d_%d", prefix, x, y))
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				out.Add(fact.New("E", at(x, y), at(x+1, y)))
			}
			if y+1 < h {
				out.Add(fact.New("E", at(x, y), at(x, y+1)))
			}
		}
	}
	return out
}

// AllGraphs enumerates every directed graph (edge set over E) on the
// given values, invoking visit for each; 2^(n²) instances, so keep n
// tiny (n=2 → 16, n=3 → 512). If visit returns false the enumeration
// stops early.
func AllGraphs(values []fact.Value, visit func(*fact.Instance) bool) {
	n := len(values)
	type edge struct{ a, b fact.Value }
	var edges []edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			edges = append(edges, edge{values[i], values[j]})
		}
	}
	total := 1 << len(edges)
	for mask := 0; mask < total; mask++ {
		inst := fact.NewInstance()
		for b, e := range edges {
			if mask&(1<<b) != 0 {
				inst.Add(fact.New("E", e.a, e.b))
			}
		}
		if !visit(inst) {
			return
		}
	}
}

// RandomProgram returns the source text of a random safe Datalog¬
// program with the given number of rules, for cross-mode differential
// testing of the fixpoint engines. The program is safe by
// construction — every head, negated and inequality variable occurs in
// the positive body — and draws from a fixed schema: edb relations
// E/2 and A/1 (so instances from RandomGraph plus unary A facts are
// valid inputs) and idb relations P0/1, P1/2, P2/2, P3/1. Recursion
// through positive atoms and negation are both generated, so the
// result is not always stratifiable; callers that need stratified
// programs must filter.
func RandomProgram(rng *rand.Rand, numRules int) string {
	type relSig struct {
		name  string
		arity int
	}
	edb := []relSig{{"E", 2}, {"A", 1}}
	idb := []relSig{{"P0", 1}, {"P1", 2}, {"P2", 2}, {"P3", 1}}
	body := append(append([]relSig{}, edb...), idb...)
	vars := []string{"x", "y", "z", "w"}

	var b strings.Builder
	for r := 0; r < numRules; r++ {
		head := idb[rng.Intn(len(idb))]

		// Positive body: 1-3 atoms over random relations and variables.
		nPos := 1 + rng.Intn(3)
		var posVars []string
		seen := map[string]bool{}
		atoms := make([]string, 0, nPos)
		for i := 0; i < nPos; i++ {
			rel := body[rng.Intn(len(body))]
			args := make([]string, rel.arity)
			for j := range args {
				v := vars[rng.Intn(len(vars))]
				args[j] = v
				if !seen[v] {
					seen[v] = true
					posVars = append(posVars, v)
				}
			}
			atoms = append(atoms, rel.name+"("+strings.Join(args, ",")+")")
		}

		// Head arguments come from the positive variables (safety).
		headArgs := make([]string, head.arity)
		for j := range headArgs {
			headArgs[j] = posVars[rng.Intn(len(posVars))]
		}

		// Optional negated atom over positive variables.
		if rng.Intn(3) == 0 {
			rel := body[rng.Intn(len(body))]
			args := make([]string, rel.arity)
			for j := range args {
				args[j] = posVars[rng.Intn(len(posVars))]
			}
			atoms = append(atoms, "!"+rel.name+"("+strings.Join(args, ",")+")")
		}

		// Optional inequality between two positive variables.
		if len(posVars) >= 2 && rng.Intn(3) == 0 {
			a := posVars[rng.Intn(len(posVars))]
			c := posVars[rng.Intn(len(posVars))]
			if a != c {
				atoms = append(atoms, a+" != "+c)
			}
		}

		fmt.Fprintf(&b, "%s(%s) :- %s.\n", head.name, strings.Join(headArgs, ","), strings.Join(atoms, ", "))
	}
	return b.String()
}

// Subsets enumerates every subinstance of I, invoking visit for each;
// 2^|I| instances. If visit returns false the enumeration stops early.
func Subsets(i *fact.Instance, visit func(*fact.Instance) bool) {
	facts := i.Facts()
	total := 1 << len(facts)
	for mask := 0; mask < total; mask++ {
		inst := fact.NewInstance()
		for b, f := range facts {
			if mask&(1<<b) != 0 {
				inst.Add(f)
			}
		}
		if !visit(inst) {
			return
		}
	}
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestLatBucketBoundaries pins the bucket function at every boundary:
// each bucket's inclusive lower bound maps into that bucket, and the
// value one below maps into the previous one.
func TestLatBucketBoundaries(t *testing.T) {
	for idx := 0; idx < latBuckets-1; idx++ {
		lo := latBound(idx)
		if got := latBucket(lo); got != idx {
			t.Fatalf("latBucket(%d) = %d, want %d", lo, got, idx)
		}
		if idx > 0 {
			if got := latBucket(lo - 1); got != idx-1 {
				t.Fatalf("latBucket(%d) = %d, want %d", lo-1, got, idx-1)
			}
		}
	}
	// Bounds are strictly increasing, so buckets partition the range.
	for idx := 1; idx < latBuckets; idx++ {
		if latBound(idx) <= latBound(idx-1) {
			t.Fatalf("latBound not increasing at %d: %d <= %d", idx, latBound(idx), latBound(idx-1))
		}
	}
	// Bucket width never exceeds lower/latSub for log-range buckets —
	// the 12.5% relative-resolution contract.
	for idx := latSub; idx < latBuckets-1; idx++ {
		lo, hi := latBound(idx), latBound(idx+1)
		if width := hi - lo; width > lo/latSub+1 {
			t.Fatalf("bucket %d too wide: [%d,%d) width %d > %d", idx, lo, hi, width, lo/latSub)
		}
	}
}

// TestLatBucketOverflow pins overflow and clamp behaviour: huge values
// land in the last bucket, negatives clamp to bucket 0.
func TestLatBucketOverflow(t *testing.T) {
	if got := latBucket(math.MaxInt64); got != latBuckets-1 {
		t.Fatalf("latBucket(MaxInt64) = %d, want %d", got, latBuckets-1)
	}
	if got := latBucket(latBound(latBuckets - 1)); got != latBuckets-1 {
		t.Fatalf("overflow lower bound lands in %d, want %d", got, latBuckets-1)
	}
	if got := latBucket(-5); got != 0 {
		t.Fatalf("latBucket(-5) = %d, want 0", got)
	}

	var h LatencyHist
	h.Observe(math.MaxInt64)
	h.Observe(-1) // clamps to 0
	if h.Count() != 2 || h.Min() != 0 || h.Max() != math.MaxInt64 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// The overflow quantile answers the overflow bucket's lower bound
	// (clamped to max, which is larger here).
	if q := h.Quantile(1.0); q != latBound(latBuckets-1) {
		t.Fatalf("overflow quantile = %d, want %d", q, latBound(latBuckets-1))
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 2 {
		t.Fatalf("want 2 non-empty buckets, got %+v", snap.Buckets)
	}
	if snap.Buckets[len(snap.Buckets)-1].Le != math.MaxInt64 {
		t.Fatalf("overflow bucket Le = %d, want MaxInt64", snap.Buckets[len(snap.Buckets)-1].Le)
	}
}

// TestLatencyHistMergeAssociative checks Merge is exact: (a⊎b)⊎c and
// a⊎(b⊎c) produce identical snapshots, equal to observing the union.
func TestLatencyHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	obs := make([][]int64, 3)
	for i := range obs {
		for j := 0; j < 500; j++ {
			obs[i] = append(obs[i], rng.Int63n(1<<uint(rng.Intn(40))))
		}
	}
	fill := func(sets ...[]int64) *LatencyHist {
		h := &LatencyHist{}
		for _, s := range sets {
			for _, v := range s {
				h.Observe(v)
			}
		}
		return h
	}
	left := fill(obs[0])
	ab := fill(obs[1])
	left.Merge(ab)
	left.Merge(fill(obs[2]))

	right := fill(obs[1])
	right.Merge(fill(obs[2]))
	r0 := fill(obs[0])
	r0.Merge(right)

	direct := fill(obs[0], obs[1], obs[2])

	snapEq := func(a, b LatencySnapshot) bool {
		if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max ||
			a.P50 != b.P50 || a.P99 != b.P99 || len(a.Buckets) != len(b.Buckets) {
			return false
		}
		for i := range a.Buckets {
			if a.Buckets[i] != b.Buckets[i] {
				return false
			}
		}
		return true
	}
	if !snapEq(left.Snapshot(), r0.Snapshot()) {
		t.Fatalf("merge not associative:\n(a+b)+c %+v\na+(b+c) %+v", left.Snapshot(), r0.Snapshot())
	}
	if !snapEq(left.Snapshot(), direct.Snapshot()) {
		t.Fatalf("merge != direct observation:\nmerged %+v\ndirect %+v", left.Snapshot(), direct.Snapshot())
	}
}

// TestLatencyHistQuantileError bounds the quantile estimate: for a
// random dataset the estimated quantile must be within 1/(2·latSub) +
// rounding of the true order statistic.
func TestLatencyHistQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var h LatencyHist
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~9 decades, the shape of real latencies.
		v := int64(math.Exp(rng.Float64() * 20))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(vals))))
		truth := vals[rank-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(truth)) / float64(truth)
		if relErr > 1.0/(2*latSub)+0.01 {
			t.Fatalf("q=%v: got %d truth %d relErr %.4f > %.4f", q, got, truth, relErr, 1.0/(2*latSub)+0.01)
		}
	}
	// Degenerate inputs.
	if h.Quantile(math.NaN()) != 0 {
		t.Fatal("NaN quantile must be 0")
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 must clamp: %d vs %d", got, h.Quantile(0))
	}
	var empty *LatencyHist
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 || empty.Sum() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("nil hist must answer zeros")
	}
	empty.Observe(1) // no-op, must not panic
	empty.Merge(&h)  // no-op
	(&h).Merge(nil)  // no-op
	if empty.Snapshot().Count != 0 {
		t.Fatal("nil snapshot must be zero")
	}
}

// TestLatencyHistConcurrent hammers one histogram from many
// goroutines; run under -race this is the lock-free-correctness test,
// and the final aggregate totals must be exact.
func TestLatencyHistConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	var h LatencyHist
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1 << 30))
				if i%1000 == 0 {
					_ = h.Quantile(0.99) // concurrent reads must be safe
					_ = h.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	var bucketTotal int64
	for _, b := range h.Snapshot().Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count())
	}
	if h.Min() < 0 || h.Max() >= 1<<30 {
		t.Fatalf("min/max out of range: %d %d", h.Min(), h.Max())
	}
}

// TestLatencyHistMean sanity-checks sum bookkeeping through the
// registry accessor and snapshot plumbing.
func TestLatencyHistRegistry(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("x.ns")
	for i := int64(1); i <= 100; i++ {
		l.Observe(i)
	}
	if same := r.Latency("x.ns"); same != l {
		t.Fatal("Latency must return the shared instrument")
	}
	snap := r.Snapshot()
	ls, ok := snap.Latencies["x.ns"]
	if !ok {
		t.Fatal("snapshot missing latency plane")
	}
	if ls.Count != 100 || ls.Sum != 5050 || ls.Min != 1 || ls.Max != 100 {
		t.Fatalf("bad snapshot %+v", ls)
	}
	if ls.P50 < 40 || ls.P50 > 60 {
		t.Fatalf("p50 = %d, want ~50", ls.P50)
	}
	var nilReg *Registry
	if nilReg.Latency("y") != nil {
		t.Fatal("nil registry must hand out nil latency hist")
	}
}

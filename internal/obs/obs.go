// Package obs is the repository-wide instrumentation substrate:
// counters, gauges, histograms and span timers collected in a
// Registry, plus a structured event Sink (sink.go) that renders typed
// events as JSONL. It has no dependencies outside the standard
// library and, crucially, a nil fast path: every method is a no-op on
// a nil receiver, so disabled instrumentation costs one predictable
// branch per call site (gated by the BenchmarkDisabledOverhead check
// in scripts/check.sh). Engines hold possibly-nil handles and never
// need an "is instrumentation on?" flag.
//
// Two observability planes with different determinism contracts:
//
//   - Events (Sink) are part of a run's observable record: for a fixed
//     seed they must be byte-identical across runs and across worker
//     counts. Events therefore never carry wall-clock times or
//     scheduling-dependent values.
//   - Metrics (Registry) are aggregates for humans and dashboards:
//     span timers and worker-utilization counters live here, and the
//     snapshot is allowed to vary run to run.
//
// The canonical metric and event names shared by all packages are in
// names.go and documented in DESIGN.md §8.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter ignores all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. No-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins atomic gauge. A nil *Gauge ignores all
// updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates an int64 distribution: count, sum, min, max.
// Observations are cheap (one mutex, four updates); percentile sketches
// are deliberately out of scope for a reproduction harness. A nil
// *Histogram ignores all observations.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is the JSON-marshalable summary of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / h.count
	}
	return s
}

// Registry names and owns a process's metrics. Instruments are created
// on first use and shared afterwards; all methods are safe for
// concurrent use. A nil *Registry hands out nil instruments, which in
// turn ignore all updates — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	lats     map[string]*LatencyHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		lats:     make(map[string]*LatencyHist),
	}
}

// Counter returns the named counter, creating it if needed. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Latency returns the named log-scale latency histogram, creating it
// if needed. Returns nil on a nil registry.
func (r *Registry) Latency(name string) *LatencyHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.lats[name]
	if !ok {
		h = &LatencyHist{}
		r.lats[name] = h
	}
	return h
}

var nopStop = func() {}

// Span starts a wall-clock span timer; the returned stop function
// records the elapsed nanoseconds into the named histogram. Use as
//
//	defer reg.Span(obs.DlFixpointNs)()
//
// On a nil registry the returned function does nothing and no clock is
// read. Span durations live only in the Registry plane — never emit
// them as events, or same-seed event streams stop being
// byte-identical.
func (r *Registry) Span(name string) func() {
	if r == nil {
		return nopStop
	}
	h := r.Histogram(name)
	start := time.Now()
	return func() { h.Observe(time.Since(start).Nanoseconds()) }
}

// Snapshot is a point-in-time copy of a registry, marshalable with
// encoding/json (map keys are emitted in sorted order, so the JSON is
// deterministic for deterministic values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Latencies  map[string]LatencySnapshot   `json:"latencies,omitempty"`
}

// Snapshot copies the registry's current values. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	lats := make(map[string]*LatencyHist, len(r.lats))
	for k, v := range r.lats {
		lats[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(lats) > 0 {
		s.Latencies = make(map[string]LatencySnapshot, len(lats))
		for k, h := range lats {
			s.Latencies[k] = h.Snapshot()
		}
	}
	return s
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot as indented JSON. Safe on a
// nil registry (writes an empty snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

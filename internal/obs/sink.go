package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Field is one ordered key/value pair of an event. Field order is part
// of the trace format: renderers emit fields in the order given, so a
// fixed emission site produces a byte-stable line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one typed trace record: a kind (see the Ev* constants in
// names.go) plus ordered fields.
type Event struct {
	Kind   string
	Fields []Field
}

// Get returns the value of the named field.
func (e *Event) Get(key string) (any, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// Int returns the named field as an int64 (0 when absent or not an
// integer type).
func (e *Event) Int(key string) int64 {
	v, _ := e.Get(key)
	switch n := v.(type) {
	case int:
		return int64(n)
	case int64:
		return n
	case uint64:
		return int64(n)
	}
	return 0
}

// Str returns the named field as a string ("" when absent; Stringers
// are rendered).
func (e *Event) Str(key string) string {
	v, ok := e.Get(key)
	if !ok {
		return ""
	}
	switch s := v.(type) {
	case string:
		return s
	case fmt.Stringer:
		return s.String()
	}
	return fmt.Sprint(v)
}

// Bool returns the named field as a bool (false when absent).
func (e *Event) Bool(key string) bool {
	v, _ := e.Get(key)
	b, _ := v.(bool)
	return b
}

// RenderFunc appends a rendering of the event to buf and returns the
// extended buffer. Returning buf unchanged drops the event (how the
// legacy text adapter skips structured-only kinds).
type RenderFunc func(buf []byte, e *Event) []byte

// Sink serializes events to a writer through a render function —
// JSONL by default. All methods are safe for concurrent use and no-ops
// on a nil *Sink, so holders guard hot paths with a plain nil check:
//
//	if s.sink != nil { s.sink.Emit(...) }
//
// The guard matters: building the variadic field list costs
// allocations even when the sink would discard the event.
type Sink struct {
	mu     sync.Mutex
	w      io.Writer
	render RenderFunc
	buf    []byte
	events uint64
	err    error
}

// NewSink returns a sink rendering events as JSONL, one object per
// line: {"ev":"<kind>","<key>":<value>,...}.
func NewSink(w io.Writer) *Sink { return NewSinkFunc(w, AppendJSONL) }

// NewSinkFunc returns a sink with a custom renderer.
func NewSinkFunc(w io.Writer, render RenderFunc) *Sink {
	return &Sink{w: w, render: render}
}

// Emit renders and writes one event. No-op on a nil sink. The first
// write error latches (see Err) and later events are dropped.
func (s *Sink) Emit(kind string, fields ...Field) {
	if s == nil {
		return
	}
	s.EmitEvent(&Event{Kind: kind, Fields: fields})
}

// EmitEvent is Emit for a prebuilt event.
func (s *Sink) EmitEvent(e *Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.events++
	s.buf = s.render(s.buf[:0], e)
	if len(s.buf) == 0 {
		return
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Events returns the number of events emitted (including any dropped
// by the renderer; 0 on a nil sink).
func (s *Sink) Events() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Err returns the first write error, if any.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// AppendJSONL is the default renderer: one compact JSON object per
// event, fields in emission order, terminated by a newline. Rendering
// is hand-rolled (rather than encoding/json) precisely to preserve
// field order — byte-identical traces for equal seeds are a tested
// contract.
func AppendJSONL(buf []byte, e *Event) []byte {
	buf = append(buf, `{"ev":`...)
	buf = appendJSONString(buf, e.Kind)
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Value)
	}
	return append(buf, '}', '\n')
}

func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case string:
		return appendJSONString(buf, x)
	case fmt.Stringer:
		return appendJSONString(buf, x.String())
	default:
		return appendJSONString(buf, fmt.Sprint(x))
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Control
// characters, quotes and backslashes are escaped; valid UTF-8 passes
// through raw (JSON permits it), and invalid bytes are escaped so the
// output is always well-formed.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				buf = append(buf, '\\', c)
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\t':
				buf = append(buf, '\\', 't')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c < 0x20:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				buf = append(buf, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}

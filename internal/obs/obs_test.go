package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3) // lower: ignored
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after SetMax = %d, want 11", got)
	}

	h := r.Histogram("h")
	for _, v := range []int64{4, 2, 9} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	want := HistogramSnapshot{Count: 3, Sum: 15, Min: 2, Max: 9, Mean: 5}
	if snap != want {
		t.Fatalf("histogram snapshot = %+v, want %+v", snap, want)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	var s *Sink
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.SetMax(2)
	h.Observe(9)
	s.Emit("ev", F("k", 1))
	r.Span("span")()
	if c.Value() != 0 || g.Value() != 0 || s.Events() != 0 || s.Err() != nil {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || r.CounterNames() != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	stop := r.Span("work_ns")
	stop()
	snap := r.Snapshot().Histograms["work_ns"]
	if snap.Count != 1 || snap.Sum < 0 {
		t.Fatalf("span did not record: %+v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("peak").SetMax(int64(i))
				r.Histogram("dist").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(3)
	var s1, s2 strings.Builder
	if err := r.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("registry JSON is not deterministic")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(s1.String()), &snap); err != nil {
		t.Fatalf("registry JSON invalid: %v\n%s", err, s1.String())
	}
	if snap.Counters["a.one"] != 1 || snap.Counters["b.two"] != 2 || snap.Gauges["g"] != 5 {
		t.Fatalf("round-tripped snapshot wrong: %+v", snap)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a.one" || names[1] != "b.two" {
		t.Fatalf("CounterNames = %v", names)
	}
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestTracerDeterministic pins the core contract: two identical span
// sequences on deterministic tracers render byte-identical JSONL, and
// wall-clock fields stay zero.
func TestTracerDeterministic(t *testing.T) {
	run := func() string {
		tr := NewTracer(64, true)
		tc := tr.Root(TraceID{Conn: 3, Seq: 7})
		req := tc.Start(SpanReq).SetSeq(7)
		req.Attr("op", "insert")
		apply := req.Ctx().Start(SpanApply)
		apply.SetEpoch(12).SetShard(1)
		apply.Finish()
		req.SetEpoch(12)
		req.Finish()
		var b strings.Builder
		if err := tr.WriteJSONL(&b, 0); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("equal runs differ:\n%s\nvs\n%s", a, b)
	}
	want := `{"span":"srv.apply","trace":"c3-7","id":2,"parent":1,"epoch":12,"shard":1,"start_ns":0,"dur_ns":0}
{"span":"srv.req","trace":"c3-7","id":1,"parent":0,"epoch":12,"seq":7,"start_ns":0,"dur_ns":0,"op":"insert"}
`
	if a != want {
		t.Fatalf("rendered stream:\n%s\nwant:\n%s", a, want)
	}
}

// TestTracerWallClock checks the non-deterministic mode actually
// records time and the ring keeps only the most recent spans.
func TestTracerWallClock(t *testing.T) {
	tr := NewTracer(4, false)
	tc := tr.Root(TraceID{Conn: 1})
	for i := 0; i < 10; i++ {
		tc.Start(SpanReq).SetSeq(i).Finish()
	}
	spans := tr.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first: seqs 6,7,8,9.
	for i, s := range spans {
		if s.Seq != int64(6+i) {
			t.Fatalf("span %d has seq %d, want %d", i, s.Seq, 6+i)
		}
		if s.StartNs == 0 {
			t.Fatal("wall-clock tracer must stamp start_ns")
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if got := tr.Spans(2); len(got) != 2 || got[1].Seq != 9 {
		t.Fatalf("Spans(2) = %+v", got)
	}
}

// TestTracerNil checks the whole disabled surface: nil tracer, zero
// SpanCtx, nil ActiveSpan.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Deterministic() || tr.Total() != 0 || tr.Spans(5) != nil {
		t.Fatal("nil tracer must be fully disabled")
	}
	tc := tr.Root(TraceID{Conn: 9})
	if tc.Enabled() {
		t.Fatal("nil tracer root must be disabled")
	}
	sp := tc.Start("x")
	if sp != nil {
		t.Fatal("disabled Start must return nil")
	}
	// Every nil-span method no-ops.
	sp.SetEpoch(1).SetSeq(2).SetShard(3).Attr("k", "v").Finish()
	if sp.Ctx().Enabled() {
		t.Fatal("nil span ctx must be disabled")
	}
	if err := tr.WriteJSONL(&strings.Builder{}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines (the
// -race test for the ring and the shared span-id allocator).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(conn int64) {
			defer wg.Done()
			tc := tr.Root(TraceID{Conn: conn})
			for i := 0; i < 500; i++ {
				sp := tc.Start(SpanReq)
				child := sp.Ctx().Start(SpanApply)
				child.Finish()
				sp.Finish()
			}
		}(int64(w))
	}
	wg.Wait()
	if tr.Total() != 8*500*2 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500*2)
	}
	// Span ids within one trace must be unique (shared atomic counter).
	seen := map[TraceID]map[int32]bool{}
	for _, s := range tr.Spans(0) {
		m := seen[s.Trace]
		if m == nil {
			m = map[int32]bool{}
			seen[s.Trace] = m
		}
		if m[s.ID] {
			t.Fatalf("duplicate span id %d in trace %+v", s.ID, s.Trace)
		}
		m[s.ID] = true
	}
}

// TestAppendTraceID pins the rendered trace-id format, including the
// negative-conn form used by detached actors (shard pumps).
func TestAppendTraceID(t *testing.T) {
	if got := string(appendTraceID(nil, TraceID{Conn: 12, Seq: 34})); got != "c12-34" {
		t.Fatalf("got %q", got)
	}
	if got := string(appendTraceID(nil, TraceID{Conn: -3, Seq: 0})); got != "c-3-0" {
		t.Fatalf("got %q", got)
	}
}

package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// This file is the latency-histogram plane: fixed-bucket log-scale
// distributions built for the serving stack's per-op latencies, where
// the plain Histogram's count/sum/min/max is not enough — operators
// need tail quantiles, and the cluster needs to merge per-shard and
// per-connection distributions without losing them.
//
// The layout is log-linear (the HdrHistogram idea at fixed, tiny
// size): latSub sub-buckets per power of two, so every bucket's width
// is at most lower/latSub — a recorded value is reconstructible to
// within 1/latSub relative error, and a quantile estimate (bucket
// midpoint) to within 1/(2·latSub). Bucket boundaries are a pure
// function of the value, never of the data, which makes Merge a plain
// bucket-wise sum: associative, commutative, and exact. All updates
// are lock-free atomic adds, so concurrent Observe calls scale; reads
// (Snapshot, Quantile) are monotonic-consistent, which is all a
// telemetry scrape needs.
const (
	// latSubBits sets the resolution: 1<<latSubBits sub-buckets per
	// octave, i.e. at most 12.5% bucket width at 3 bits.
	latSubBits = 3
	latSub     = 1 << latSubBits
	// latOctaves bounds the covered range: values up to 2^(latOctaves+
	// latSubBits-1) nanoseconds (~1.2 hours) land in a real bucket,
	// larger ones in the overflow bucket.
	latOctaves = 40
	// latBuckets is the total bucket count: latSub linear buckets for
	// tiny values, latSub per octave after that, plus one overflow.
	latBuckets = latOctaves*latSub + 1
)

// latBucket maps a value to its bucket index. Negative values clamp
// to 0 (latency cannot be negative; a clamp beats a panic in a
// telemetry path).
func latBucket(v int64) int {
	if v < latSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // v >= 8, so o >= 3 >= latSubBits
	sub := int((v >> (uint(o) - latSubBits)) & (latSub - 1))
	idx := (o-latSubBits+1)*latSub + sub
	if idx >= latBuckets-1 {
		return latBuckets - 1 // overflow bucket
	}
	return idx
}

// latBound returns the inclusive lower bound of bucket idx. The
// bucket covers [latBound(idx), latBound(idx+1)); the overflow bucket
// covers [latBound(latBuckets-1), +Inf).
func latBound(idx int) int64 {
	if idx < latSub {
		return int64(idx)
	}
	o := uint(idx/latSub + latSubBits - 1)
	sub := int64(idx % latSub)
	return int64(1)<<o + sub<<(o-latSubBits)
}

// LatencyHist is a fixed-bucket log-scale histogram. The zero value
// is ready to use; a nil *LatencyHist ignores all observations (the
// disabled fast path, same contract as Counter/Gauge/Histogram).
type LatencyHist struct {
	count atomic.Int64
	sum   atomic.Int64
	// minP1 holds min+1 so the zero value means "unset" even when the
	// true minimum is 0; max needs no bias because observations are
	// clamped non-negative and a real 0 maximum equals the zero value.
	minP1   atomic.Int64
	max     atomic.Int64
	buckets [latBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to 0. No-op on a
// nil histogram.
func (h *LatencyHist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[latBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minP1.Load()
		if cur != 0 && cur <= v+1 || h.minP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Merge folds o's observations into h, bucket-exact: merging is
// associative and commutative, so per-shard or per-connection
// histograms fold into a global one in any order with the same
// result. No-op when either side is nil.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if op1 := o.minP1.Load(); op1 != 0 {
		for {
			cur := h.minP1.Load()
			if cur != 0 && cur <= op1 || h.minP1.CompareAndSwap(cur, op1) {
				break
			}
		}
	}
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if cur >= om || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *LatencyHist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observed value (0 when empty or nil).
func (h *LatencyHist) Min() int64 {
	if h == nil {
		return 0
	}
	if p1 := h.minP1.Load(); p1 > 0 {
		return p1 - 1
	}
	return 0
}

// Max returns the largest observed value (0 when empty or nil).
func (h *LatencyHist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the midpoint of
// the bucket holding the q·count-th observation, clamped to the
// recorded min/max. The estimate is within 1/(2·latSub) (6.25%)
// relative error of the true order statistic for in-range values; the
// overflow bucket answers its lower bound. Returns 0 when empty, nil,
// or q is NaN.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we estimate.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < latBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen < rank {
			continue
		}
		var est int64
		if i == latBuckets-1 {
			est = latBound(i) // overflow: the lower bound is all we know
		} else {
			est = (latBound(i) + latBound(i+1)) / 2
		}
		if min := h.Min(); est < min {
			est = min
		}
		if max := h.max.Load(); est > max {
			est = max
		}
		return est
	}
	return h.max.Load() // racing Observe moved count past the buckets read
}

// LatencyBucket is one non-empty bucket of a snapshot: Le is the
// exclusive upper bound (inclusive for Prometheus's cumulative
// rendering purposes), Count the observations at or below it is
// derived cumulatively by consumers.
type LatencyBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// LatencySnapshot is the JSON-marshalable summary of a LatencyHist:
// aggregate stats, estimated quantiles, and the non-empty buckets
// (per-bucket counts, not cumulative).
type LatencySnapshot struct {
	Count   int64           `json:"count"`
	Sum     int64           `json:"sum"`
	Min     int64           `json:"min"`
	Max     int64           `json:"max"`
	P50     int64           `json:"p50"`
	P90     int64           `json:"p90"`
	P99     int64           `json:"p99"`
	P999    int64           `json:"p999"`
	Buckets []LatencyBucket `json:"-"`
}

// Snapshot summarizes the histogram. Safe on nil (zero snapshot).
func (h *LatencyHist) Snapshot() LatencySnapshot {
	if h == nil {
		return LatencySnapshot{}
	}
	s := LatencySnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.Min(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	for i := 0; i < latBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			le := int64(math.MaxInt64)
			if i < latBuckets-1 {
				le = latBound(i+1) - 1
			}
			s.Buckets = append(s.Buckets, LatencyBucket{Le: le, Count: n})
		}
	}
	return s
}

package obs

import (
	"strings"
	"testing"
)

// TestWritePromBasic renders a small registry and pins the exposition
// shape: TYPE lines, families sorted, labels quoted.
func TestWritePromBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv.requests").Add(5)
	r.Counter(WithLabel("coord.fence_waits", "shard", "0")).Add(2)
	r.Counter(WithLabel("coord.fence_waits", "shard", "1")).Add(3)
	r.Gauge("srv.epoch").Set(42)
	r.Histogram("srv.batch_writes").Observe(4)
	r.Histogram("srv.batch_writes").Observe(8)

	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE coord_fence_waits counter\n",
		`coord_fence_waits{shard="0"} 2` + "\n",
		`coord_fence_waits{shard="1"} 3` + "\n",
		"# TYPE srv_epoch gauge\nsrv_epoch 42\n",
		"srv_requests 5\n",
		"srv_batch_writes_sum 12\n",
		"srv_batch_writes_count 2\n",
		"srv_batch_writes_min 4\n",
		"srv_batch_writes_max 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Families must come out sorted, so the output is scrape-diffable.
	var fams []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] < fams[i-1] {
			t.Fatalf("families unsorted: %v", fams)
		}
	}
}

// TestWritePromLatency pins the histogram rendering: cumulative le
// buckets ending in +Inf, exact _count/_sum, and the _quantile gauge
// family the calmload cross-check scrapes.
func TestWritePromLatency(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("srv.read_ns")
	for i := int64(1); i <= 1000; i++ {
		l.Observe(i * 1000) // 1µs..1ms
	}
	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE srv_read_ns histogram\n") {
		t.Fatalf("missing histogram TYPE in:\n%s", out)
	}
	if !strings.Contains(out, `srv_read_ns_bucket{le="+Inf"} 1000`) {
		t.Fatalf("missing +Inf bucket in:\n%s", out)
	}
	if !strings.Contains(out, "srv_read_ns_count 1000\n") {
		t.Fatalf("missing count in:\n%s", out)
	}
	for _, q := range []string{"0.5", "0.9", "0.99", "0.999"} {
		if !strings.Contains(out, `srv_read_ns_quantile{q="`+q+`"}`) {
			t.Fatalf("missing quantile %s in:\n%s", q, out)
		}
	}
	// Bucket rows must be cumulative and non-decreasing in le order,
	// with the +Inf row last and equal to the total count.
	var prev int64 = -1
	var rows int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "srv_read_ns_bucket{") {
			continue
		}
		rows++
		var v int64
		fields := strings.Fields(line)
		for _, c := range fields[len(fields)-1] {
			v = v*10 + int64(c-'0')
		}
		if v < prev {
			t.Fatalf("bucket rows not cumulative at %q (prev %d)", line, prev)
		}
		prev = v
	}
	if rows < 3 {
		t.Fatalf("want several bucket rows, got %d", rows)
	}
	if prev != 1000 {
		t.Fatalf("last bucket row = %d, want 1000", prev)
	}
	// Exactly one +Inf row.
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Fatalf("%d +Inf rows, want 1", n)
	}
}

// TestWritePromDeterministic renders the same snapshot twice and
// byte-compares — map iteration must not leak into the output.
func TestWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b.x", "a.y", "c.z"} {
		r.Counter(n).Inc()
		r.Latency(n + "_ns").Observe(100)
	}
	for i := 0; i < 4; i++ {
		r.Counter(WithLabel("cluster.pump_lag", "shard", string(rune('0'+i)))).Inc()
	}
	s := r.Snapshot()
	var b1, b2 strings.Builder
	if err := WriteProm(&b1, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b2, s); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("nondeterministic render:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

// TestPromMangle pins name mangling.
func TestPromMangle(t *testing.T) {
	if got := promMangle("srv.read_ns"); got != "srv_read_ns" {
		t.Fatalf("got %q", got)
	}
	if got := promMangle("dl.rule.s0.r1.p:2"); got != "dl_rule_s0_r1_p_2" {
		t.Fatalf("got %q", got)
	}
}

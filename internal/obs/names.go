package obs

// This file is the single counter and event vocabulary for the whole
// repository (DESIGN.md §8 is the prose companion). Every package
// instruments itself under its own prefix; nothing else may invent
// metric or event names. Names are dotted, lower_snake within a
// segment, and suffixed _ns for wall-clock histograms (which never
// appear in event streams — see the package comment).

// Datalog engine metrics (internal/datalog).
const (
	// DlRounds counts fixpoint rounds (every runRound call, including
	// the final empty-delta confirmation pass).
	DlRounds = "dl.rounds"
	// DlStrata counts strata evaluated.
	DlStrata = "dl.strata"
	// DlDerivations counts head facts emitted that were new to the
	// instance at emission time (pre-merge, per-task judgement).
	DlDerivations = "dl.derivations"
	// DlDuplicates counts emitted head facts suppressed because the
	// fact already existed — the duplicate-suppression work rate.
	DlDuplicates = "dl.duplicates"
	// DlCandidates counts join candidate facts iterated by the matcher.
	DlCandidates = "dl.candidates"
	// DlDeltaFacts counts facts entering a round delta (post-merge).
	DlDeltaFacts = "dl.delta_facts"
	// DlTasks counts (rule, pinned-chunk) evaluation tasks executed.
	DlTasks = "dl.tasks"
	// DlWorkers is the configured worker-pool size (gauge).
	DlWorkers = "dl.workers"
	// DlWorkerTasksPrefix + "<w>" counts tasks executed by worker w —
	// compare across workers for pool utilization (Registry plane only:
	// the task distribution is scheduling-dependent).
	DlWorkerTasksPrefix = "dl.worker_tasks."
	// DlFixpointNs / DlRoundNs / DlWorkerBusyNs are wall-clock span
	// histograms (nanoseconds).
	DlFixpointNs   = "dl.fixpoint_ns"
	DlRoundNs      = "dl.round_ns"
	DlWorkerBusyNs = "dl.worker_busy_ns"
	// DlRulePrefix namespaces per-rule counters:
	// dl.rule.s<stratum>.r<index>.<head>.{derivations,duplicates,candidates}.
	DlRulePrefix = "dl.rule."
)

// Incremental view-maintenance metrics (internal/incr).
const (
	// IncrApplies counts Apply calls that performed any work.
	IncrApplies = "incr.applies"
	// IncrBaseInserted / IncrBaseRetracted count base (edb) facts
	// inserted/retracted after netting no-ops out of the delta.
	IncrBaseInserted  = "incr.base_inserted"
	IncrBaseRetracted = "incr.base_retracted"
	// IncrDerivedAdded / IncrDerivedRemoved count the net change to the
	// derived (idb) portion of the materialization.
	IncrDerivedAdded   = "incr.derived_added"
	IncrDerivedRemoved = "incr.derived_removed"
	// IncrOverdeleted counts facts removed by the DRed over-deletion
	// phase (before rederivation); IncrRederived counts how many of
	// those came back — together they measure rederivation work.
	IncrOverdeleted = "incr.overdeleted"
	IncrRederived   = "incr.rederived"
	// IncrSupportIncrements / IncrSupportDecrements count changes to
	// per-fact derivation support counts — the support-count churn.
	IncrSupportIncrements = "incr.support_increments"
	IncrSupportDecrements = "incr.support_decrements"
	// IncrRecounts counts facts whose support was recomputed from
	// scratch after a DRed phase.
	IncrRecounts = "incr.recounts"
	// IncrApplyNs is the wall-clock span histogram of Apply calls.
	IncrApplyNs = "incr.apply_ns"
)

// Serving-core metrics (internal/serve). All of these live in the
// Registry plane only: request arrival order, batch sizes and
// latencies are scheduling-dependent, so the serving core emits no
// events.
const (
	// SrvConns counts TCP connections accepted.
	SrvConns = "srv.conns"
	// SrvRequests counts request lines received (including malformed).
	SrvRequests = "srv.requests"
	// SrvReads / SrvWrites count dispatched read ops (ping, query,
	// facts, stats) and write ops (insert, retract, apply, snapshot).
	SrvReads  = "srv.reads"
	SrvWrites = "srv.writes"
	// SrvErrors counts error responses sent.
	SrvErrors = "srv.errors"
	// SrvCommits counts group commits (epoch publications attempted at
	// batch barriers; no-op batches do not publish a fresh epoch).
	SrvCommits = "srv.commits"
	// SrvSnapshots counts snapshot ops executed at commit barriers.
	SrvSnapshots = "srv.snapshots"
	// SrvEpoch is the latest published epoch's sequence number (gauge).
	SrvEpoch = "srv.epoch"
	// SrvBatchWrites is the distribution of write ops per group commit.
	SrvBatchWrites = "srv.batch_writes"
	// SrvQueueDepth is the write-queue depth observed when the writer
	// begins a batch — sustained depth near the bound means clients are
	// sitting in backpressure.
	SrvQueueDepth = "srv.queue_depth"
	// SrvReadNs / SrvWriteNs are wall-clock latency histograms from
	// dispatch to response (for writes this includes queue wait, apply,
	// and the group-commit barrier). Since PR 9 these live in the
	// latency-histogram plane (LatencyHist), so scrapes get quantiles.
	SrvReadNs  = "srv.read_ns"
	SrvWriteNs = "srv.write_ns"
	// Write-path phase latencies (LatencyHist plane): queue wait from
	// enqueue to writer pickup, engine apply, group-commit barrier
	// (batch drain + publish), and read-side render.
	SrvQueueWaitNs = "srv.queue_wait_ns"
	SrvApplyNs     = "srv.apply_ns"
	SrvCommitNs    = "srv.commit_ns"
	SrvRenderNs    = "srv.render_ns"
	// SrvFenceWaitNs is the latency histogram of reads that blocked on
	// a read-your-writes fence inside the core.
	SrvFenceWaitNs = "srv.fence_wait_ns"
	// SrvLastCommitUnixNs is a gauge holding the wall-clock unix-nano
	// timestamp of the most recent epoch publication; /healthz and the
	// srv_epoch_age_ns scrape gauge derive epoch age from it.
	SrvLastCommitUnixNs = "srv.last_commit_unix_ns"
	// SrvEpochAgeNs is a scrape-time gauge: wall-clock nanoseconds since
	// the last epoch publication (now − SrvLastCommitUnixNs), refreshed
	// by the admin server's BeforeScrape hook.
	SrvEpochAgeNs = "srv.epoch_age_ns"
)

// Cluster metrics (internal/cluster): the sharded coordination-free
// serving layer. All counters live on the router/cluster side; the
// per-shard serving cores keep reporting under srv.* through their own
// registries.
const (
	// ClusterWrites / ClusterReads count client ops routed by the
	// router (after decode, before placement).
	ClusterWrites = "cluster.writes"
	ClusterReads  = "cluster.reads"
	// ClusterErrors counts error responses the router produced itself
	// (validation, unknown op, shard down) — shard-side errors are
	// counted by the shard's srv.errors.
	ClusterErrors = "cluster.errors"
	// ClusterDeliveries counts log-entry deliveries applied by shard
	// pumps (replicated mode: one per shard per write).
	ClusterDeliveries = "cluster.deliveries"
	// ClusterMigrations counts component migrations (a write bridged
	// co(I) components resident on different shards, and the absorbed
	// component moved to the winner).
	ClusterMigrations = "cluster.migrations"
	// ClusterFenceWaits counts reads that actually blocked on an
	// epoch-vector fence (read-your-writes or fenced-gather).
	ClusterFenceWaits = "cluster.fence_waits"
	// ClusterGathers counts scatter/gather reads (partitioned mode).
	ClusterGathers = "cluster.gathers"
	// ClusterCrashes / ClusterRecoveries count shard crash-restarts
	// and completed log-replay recoveries.
	ClusterCrashes    = "cluster.crashes"
	ClusterRecoveries = "cluster.recoveries"
	// Gather-path phase latencies (LatencyHist plane): whole gather,
	// scatter fan-out until every shard leg returned, cross-shard merge,
	// and response render.
	ClusterGatherNs       = "cluster.gather_ns"
	ClusterGatherFanoutNs = "cluster.gather_fanout_ns"
	ClusterGatherMergeNs  = "cluster.gather_merge_ns"
	ClusterGatherRenderNs = "cluster.gather_render_ns"
	// ClusterLogAppendNs is the latency of appending a write to the
	// global delta log under the cluster lock (placement included).
	ClusterLogAppendNs = "cluster.log_append_ns"
	// ClusterDeliveryLagNs is the wall-clock lag from log append to a
	// shard pump applying the entry (one observation per delivery).
	ClusterDeliveryLagNs = "cluster.delivery_lag_ns"
	// ClusterPumpLag is a per-shard labeled gauge family
	// (WithLabel(ClusterPumpLag, "shard", j)): log tip minus the
	// shard's applied watermark, in log entries.
	ClusterPumpLag = "cluster.pump_lag"
	// ClusterHeldDeliveries is a per-shard labeled gauge family: log
	// entries currently held by the fault plan and not yet applied.
	ClusterHeldDeliveries = "cluster.held_deliveries"
)

// Coordination metrics (coord.*): the CALM-coordination events the
// serving stack performs — exactly the operations that a fully
// monotone workload never needs. These exist to make coordination a
// measurable budget; PERF.9 and /metrics surface them as coord_*.
const (
	// CoordFenceWaits counts reads that blocked on an epoch fence
	// (read-your-writes in the core, fenced gathers in the cluster);
	// CoordFenceWaitNs is the matching latency histogram.
	CoordFenceWaits  = "coord.fence_waits"
	CoordFenceWaitNs = "coord.fence_wait_ns"
	// CoordHoldFlushes counts retract-triggered hold flushes (a
	// non-monotone write forcing held deliveries to drain);
	// CoordHoldsReleased counts the deliveries released by them.
	CoordHoldFlushes   = "coord.hold_flushes"
	CoordHoldsReleased = "coord.holds_released"
	// CoordMigrations counts component migrations between shards.
	CoordMigrations = "coord.migrations"
	// CoordFencedReads counts gathers that had to run fenced (wait for
	// every shard to reach the fence epoch) rather than free.
	CoordFencedReads = "coord.fenced_reads"
)

// Span names (the tracing plane, trace.go). Spans are grouped by the
// subsystem that opens them; coord.* spans mark coordination events.
const (
	// SpanConn wraps one serving connection; SpanReq wraps one request
	// on it (root spans of every request trace).
	SpanConn = "srv.conn"
	SpanReq  = "srv.req"
	// Serving-core write-path phases.
	SpanQueueWait = "srv.queue_wait"
	SpanApply     = "srv.apply"
	SpanCommit    = "srv.commit"
	SpanRender    = "srv.render"
	// SpanIncrApply wraps one incr.Apply delta application.
	SpanIncrApply = "incr.apply"
	// Cluster router/pump phases.
	SpanLogAppend    = "cluster.log_append"
	SpanGather       = "cluster.gather"
	SpanGatherFanout = "cluster.gather_fanout"
	SpanGatherMerge  = "cluster.gather_merge"
	SpanGatherRender = "cluster.gather_render"
	SpanDeliver      = "cluster.deliver"
	// Coordination spans.
	SpanCoordFence      = "coord.fence"
	SpanCoordHoldFlush  = "coord.hold_flush"
	SpanCoordMigration  = "coord.migration"
	SpanCoordFencedRead = "coord.fenced_read"
)

// ILOG¬ evaluator metrics (internal/ilog).
const (
	IlogRounds = "ilog.rounds"
	// IlogDerivations counts facts added across all rounds.
	IlogDerivations = "ilog.derivations"
	// IlogInvented counts added facts carrying a fresh Skolem value
	// (each invention fact introduces exactly one).
	IlogInvented = "ilog.invented"
	// IlogFacts is the final instance size (gauge).
	IlogFacts  = "ilog.facts"
	IlogEvalNs = "ilog.eval_ns"
)

// Transducer simulation metrics (internal/transducer, the Metrics
// struct published fact-for-fact under these names).
const (
	SimTransitions    = "sim.transitions"
	SimHeartbeats     = "sim.heartbeats"
	SimSent           = "sim.messages_sent"
	SimDelivered      = "sim.messages_delivered"
	SimDuplicated     = "sim.messages_duplicated"
	SimDelayed        = "sim.messages_delayed"
	SimDropped        = "sim.messages_dropped"
	SimRetransmitted  = "sim.messages_retransmitted"
	SimCrashes        = "sim.crashes"
	SimStalledSteps   = "sim.stalled_steps"
	SimQuiescenceTick = "sim.quiescence_tick" // gauge: clock at quiescence
)

// Event-driven network simulator metrics (internal/netsim). The
// engine also republishes the transducer Metrics under the sim.*
// names above; these add the scheduler-side story.
const (
	// NetsimEvents counts events popped from the queue (activations,
	// arrivals, crashes — stale activations included).
	NetsimEvents = "netsim.events"
	// NetsimSchedOps counts scheduler operations charged to the run:
	// one per node visit. The event engine pays one per activation
	// pop; the dense tick walk pays one per node per round. The ratio
	// is the idle-nodes-cost-nothing win.
	NetsimSchedOps = "netsim.sched_ops"
	// NetsimHeapMax is the high-water heap depth (gauge).
	NetsimHeapMax = "netsim.heap_max"
	// NetsimQuiesceTime is the logical time at quiescence (gauge).
	NetsimQuiesceTime = "netsim.quiesce_time"
)

// Schedule explorer metrics (internal/transducer ExploreStats).
const (
	ExploreSchedules   = "explore.schedules"
	ExploreAborted     = "explore.aborted"
	ExploreTransitions = "explore.transitions"
	ExploreViolations  = "explore.violations"
)

// Event kinds. Each kind's field set is fixed at its single emission
// site and recorded by the golden traces under the emitting package's
// testdata directory.
const (
	// EvDlRound: stratum, round, mode, tasks, candidates, derived,
	// duplicates, delta.
	EvDlRound = "dl.round"
	// EvDlStratum: stratum, rules, rounds, derived, facts.
	EvDlStratum = "dl.stratum"
	// EvDlFixpoint: strata, facts.
	EvDlFixpoint = "dl.fixpoint"

	// EvIncrApply: seq, inserted, retracted, added, removed, facts.
	EvIncrApply = "incr.apply"
	// EvIncrStratum: seq, stratum, alg, overdeleted, rederived, added,
	// removed.
	EvIncrStratum = "incr.stratum"

	// EvIlogRound: stratum, round, derived, invented, facts.
	EvIlogRound = "ilog.round"
	// EvIlogStratum: stratum, rounds, derived, invented.
	EvIlogStratum = "ilog.stratum"

	// EvTransition: step, clock, node, kind, delivered, sent, changed,
	// out, buffered, held, msgs.
	EvTransition = "sim.transition"
	// EvStall: step, clock, node.
	EvStall = "sim.stall"
	// EvCrash: step, clock, node, dropped, rebuffered.
	EvCrash = "sim.crash"
	// EvHold: clock, from, to, fact, copies, release.
	EvHold = "sim.hold"
	// EvQuiesce: clock, rounds, out.
	EvQuiesce = "sim.quiesce"

	// EvNetsimQuiesce: time, events, sched_ops, out — the event-driven
	// engine's quiescence record (logical time replaces the tick
	// scheduler's round count).
	EvNetsimQuiesce = "netsim.quiesce"

	// EvSchedule: label, transitions, sent, delivered, aborted.
	EvSchedule = "explore.schedule"
	// EvViolation: kind, schedule, step, bad, output, want.
	EvViolation = "explore.violation"
)

// EventKinds lists every event kind, for schema-coverage tests.
var EventKinds = []string{
	EvDlRound, EvDlStratum, EvDlFixpoint,
	EvIncrApply, EvIncrStratum,
	EvIlogRound, EvIlogStratum,
	EvTransition, EvStall, EvCrash, EvHold, EvQuiesce,
	EvNetsimQuiesce,
	EvSchedule, EvViolation,
}

package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type stringer struct{}

func (stringer) String() string { return "rendered" }

func TestSinkJSONL(t *testing.T) {
	var sb strings.Builder
	s := NewSink(&sb)
	s.Emit("kind.a",
		F("i", 3),
		F("i64", int64(-7)),
		F("u64", uint64(9)),
		F("f", 1.5),
		F("b", true),
		F("s", "plain"),
		F("st", stringer{}),
		F("nil", nil),
	)
	s.Emit("kind.b")
	got := sb.String()
	want := `{"ev":"kind.a","i":3,"i64":-7,"u64":9,"f":1.5,"b":true,"s":"plain","st":"rendered","nil":null}` + "\n" +
		`{"ev":"kind.b"}` + "\n"
	if got != want {
		t.Fatalf("JSONL mismatch:\n got %q\nwant %q", got, want)
	}
	if s.Events() != 2 {
		t.Fatalf("events = %d, want 2", s.Events())
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
	}
}

func TestSinkEscaping(t *testing.T) {
	var sb strings.Builder
	s := NewSink(&sb)
	s.Emit("k", F("s", "a\"b\\c\nd\te\rf\x01g\xffh→i"))
	line := strings.TrimSpace(sb.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v\n%s", err, line)
	}
	if got := m["s"]; got != "a\"b\\c\nd\te\rf\x01g�h→i" {
		t.Fatalf("round-trip = %q", got)
	}
}

func TestEventAccessors(t *testing.T) {
	e := &Event{Kind: "k", Fields: []Field{
		F("i", 3), F("i64", int64(4)), F("u", uint64(5)),
		F("s", "x"), F("st", stringer{}), F("f", 2.5),
		F("b", true),
	}}
	if e.Int("i") != 3 || e.Int("i64") != 4 || e.Int("u") != 5 || e.Int("missing") != 0 || e.Int("s") != 0 {
		t.Fatal("Int accessor wrong")
	}
	if e.Str("s") != "x" || e.Str("st") != "rendered" || e.Str("missing") != "" || e.Str("f") != "2.5" {
		t.Fatal("Str accessor wrong")
	}
	if !e.Bool("b") || e.Bool("s") || e.Bool("missing") {
		t.Fatal("Bool accessor wrong")
	}
	if _, ok := e.Get("i"); !ok {
		t.Fatal("Get missed existing field")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestSinkLatchesWriteError(t *testing.T) {
	w := &failWriter{}
	s := NewSink(w)
	s.Emit("a")
	if s.Err() != nil {
		t.Fatal("first write should succeed")
	}
	s.Emit("b")
	if s.Err() == nil {
		t.Fatal("write error not latched")
	}
	s.Emit("c")
	if w.n != 2 {
		t.Fatalf("sink kept writing after error: %d writes", w.n)
	}
}

func TestSinkCustomRendererCanDrop(t *testing.T) {
	var sb strings.Builder
	s := NewSinkFunc(&sb, func(buf []byte, e *Event) []byte {
		if e.Kind != "keep" {
			return buf
		}
		return append(buf, "kept\n"...)
	})
	s.Emit("drop")
	s.Emit("keep")
	if sb.String() != "kept\n" {
		t.Fatalf("custom renderer output %q", sb.String())
	}
	if s.Events() != 2 {
		t.Fatalf("dropped events must still count: %d", s.Events())
	}
}

func TestEventKindsHaveNamespaces(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range EventKinds {
		if seen[k] {
			t.Fatalf("duplicate event kind %q", k)
		}
		seen[k] = true
		if !strings.Contains(k, ".") {
			t.Fatalf("event kind %q is not namespaced", k)
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Registry snapshot in the Prometheus text
// exposition format (version 0.0.4) — the /metrics payload of the
// admin server, with zero dependencies beyond the standard library.
//
// Name mapping: dotted registry names become underscore families
// ("srv.read_ns" → "srv_read_ns"). A registry name may carry labels
// after a ';' separator — "cluster.pump_lag;shard=0" renders as
// cluster_pump_lag{shard="0"} — so per-shard instruments share one
// family instead of exploding into numbered names (see WithLabel).
//
// Instrument mapping:
//   - Counter → counter
//   - Gauge → gauge
//   - Histogram (count/sum/min/max plane) → summary with only _sum
//     and _count, plus <name>_min / <name>_max gauge families
//   - LatencyHist → histogram with cumulative le buckets (non-empty
//     buckets only; cumulative totals stay exact), plus a
//     <name>_quantile gauge family carrying the estimated
//     p50/p90/p99/p999 so scrapers and the calmload cross-check read
//     quantiles without re-deriving them from buckets

// WithLabel appends a label to a registry metric name, e.g.
// WithLabel("cluster.pump_lag", "shard", "0"). The JSON snapshot
// keeps the combined string as the key; the Prometheus renderer
// splits it back into family and label.
func WithLabel(name, key, value string) string {
	return name + ";" + key + "=" + value
}

// promFamily splits a registry name into its Prometheus family name
// and its labels as "k=v" pairs (nil when unlabeled).
func promFamily(name string) (family string, labels []string) {
	base, rest, hasLabels := strings.Cut(name, ";")
	family = promMangle(base)
	if !hasLabels || rest == "" {
		return family, nil
	}
	return family, strings.Split(rest, ",")
}

// promLabels renders "k=v" pairs (plus optional extra pairs) as a
// label block, or "" when there are none.
func promLabels(pairs []string, extra ...string) string {
	if len(pairs) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, p := range append(append([]string{}, pairs...), extra...) {
		k, v, _ := strings.Cut(p, "=")
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", promMangle(k), v)
		n++
	}
	b.WriteByte('}')
	return b.String()
}

// promMangle maps a dotted name segment to a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_'.
func promMangle(s string) string {
	b := []byte(s)
	for i, c := range b {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// promFam collects one family's fully rendered sample lines. sortKey
// orders series deterministically without re-parsing the rendered
// line (bucket rows carry a numeric key so le order survives the
// lexical sort).
type promFam struct {
	typ  string
	keys []string
	rows []string
}

func (f *promFam) add(sortKey, line string) {
	f.keys = append(f.keys, sortKey)
	f.rows = append(f.rows, line)
}

// WriteProm renders the snapshot in Prometheus text exposition
// format. Output is deterministically ordered: families sorted by
// name, series sorted within each family.
func WriteProm(w io.Writer, s Snapshot) error {
	fams := map[string]*promFam{}
	fam := func(family, typ string) *promFam {
		f, ok := fams[family]
		if !ok {
			f = &promFam{typ: typ}
			fams[family] = f
		}
		return f
	}

	for name, v := range s.Counters {
		family, pairs := promFamily(name)
		lb := promLabels(pairs)
		fam(family, "counter").add(lb, fmt.Sprintf("%s%s %d", family, lb, v))
	}
	for name, v := range s.Gauges {
		family, pairs := promFamily(name)
		lb := promLabels(pairs)
		fam(family, "gauge").add(lb, fmt.Sprintf("%s%s %d", family, lb, v))
	}
	for name, h := range s.Histograms {
		family, pairs := promFamily(name)
		lb := promLabels(pairs)
		f := fam(family, "summary")
		f.add(lb+" 0sum", fmt.Sprintf("%s_sum%s %d", family, lb, h.Sum))
		f.add(lb+" 1count", fmt.Sprintf("%s_count%s %d", family, lb, h.Count))
		fam(family+"_min", "gauge").add(lb, fmt.Sprintf("%s_min%s %d", family, lb, h.Min))
		fam(family+"_max", "gauge").add(lb, fmt.Sprintf("%s_max%s %d", family, lb, h.Max))
	}
	for name, l := range s.Latencies {
		family, pairs := promFamily(name)
		lb := promLabels(pairs)
		f := fam(family, "histogram")
		cum := int64(0)
		for i, b := range l.Buckets {
			if b.Le == maxInt64 {
				continue // the overflow bucket is the +Inf row below
			}
			cum += b.Count
			f.add(fmt.Sprintf("%s 0bucket %020d", lb, i),
				fmt.Sprintf("%s_bucket%s %d", family, promLabels(pairs, fmt.Sprintf("le=%d", b.Le)), cum))
		}
		f.add(lb+" 1binf", fmt.Sprintf("%s_bucket%s %d", family, promLabels(pairs, "le=+Inf"), l.Count))
		f.add(lb+" 2sum", fmt.Sprintf("%s_sum%s %d", family, lb, l.Sum))
		f.add(lb+" 3count", fmt.Sprintf("%s_count%s %d", family, lb, l.Count))
		fq := fam(family+"_quantile", "gauge")
		for _, qv := range []struct {
			q string
			v int64
		}{{"0.5", l.P50}, {"0.9", l.P90}, {"0.99", l.P99}, {"0.999", l.P999}} {
			qlb := promLabels(pairs, "q="+qv.q)
			fq.add(qlb, fmt.Sprintf("%s_quantile%s %d", family, qlb, qv.v))
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		order := make([]int, len(f.rows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return f.keys[order[a]] < f.keys[order[b]] })
		for _, i := range order {
			if _, err := fmt.Fprintln(w, f.rows[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

const maxInt64 = int64(^uint64(0) >> 1)

package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing plane: deterministic trace
// contexts threaded end-to-end through the serving stack (session →
// router → write log → shard pump → serving core → incremental
// apply), recording nestable spans into a bounded in-memory ring that
// the admin endpoint streams as JSONL (/trace?n=K).
//
// Determinism contract (DESIGN.md §13): trace IDs are derived from
// (connection, request-sequence) — never random — and spans carry
// logical timestamps (epoch, seq, shard) alongside wall-clock fields.
// Under a deterministic Tracer the wall-clock fields are never read
// and render as zero, so a serially driven session produces a
// byte-identical span stream for equal inputs; the golden span tests
// in internal/serve pin exactly that. Span attributes must therefore
// be deterministic values (counts, logical positions) — never
// durations, never scheduling-dependent observations.
//
// Nil-safety matches the rest of the package: a nil *Tracer hands out
// disabled SpanCtx values, whose Start returns a nil *ActiveSpan,
// whose methods all no-op — disabled tracing costs one branch per
// call site, gated by BenchmarkDisabledOverhead.

// TraceID identifies one request's trace: the serving connection id
// and the request's sequence number on that connection. Negative Conn
// values are reserved for detached actors with no client connection
// (shard pumps use -(1+shard)).
type TraceID struct {
	Conn int64
	Seq  int64
}

// appendTraceID renders the id as c<conn>-<seq>.
func appendTraceID(buf []byte, id TraceID) []byte {
	buf = append(buf, 'c')
	buf = strconv.AppendInt(buf, id.Conn, 10)
	buf = append(buf, '-')
	return strconv.AppendInt(buf, id.Seq, 10)
}

// Span is one finished span record. Logical fields use -1 for
// "unset"; wall-clock fields are 0 under a deterministic tracer.
type Span struct {
	Trace  TraceID
	ID     int32 // span id within the trace, 1-based in Finish order of Start
	Parent int32 // parent span id; 0 = root
	Name   string
	// Logical timestamp: the epoch sequence the span observed or
	// produced, the log/request sequence position, and the shard.
	Epoch int64
	Seq   int64
	Shard int64
	// Wall-clock fields: span start (unix nanoseconds) and duration.
	// Both stay 0 under a deterministic tracer.
	StartNs int64
	DurNs   int64
	// Attrs are optional ordered extras; values must be deterministic
	// (see the package comment).
	Attrs []Field
}

// Tracer collects finished spans into a fixed-capacity ring. Create
// with NewTracer; a nil *Tracer disables tracing everywhere it is
// handed to.
type Tracer struct {
	det bool
	cap int

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// NewTracer returns a tracer keeping the last capacity spans
// (default 4096 when capacity <= 0). A deterministic tracer never
// reads the wall clock: spans carry logical timestamps only.
func NewTracer(capacity int, deterministic bool) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{det: deterministic, cap: capacity}
}

// Deterministic reports whether wall-clock fields are suppressed.
func (t *Tracer) Deterministic() bool { return t != nil && t.det }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Total returns the number of spans recorded since creation
// (including ones the ring has since dropped; 0 on nil).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// record appends one finished span to the ring.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.cap
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the most recent n spans in record order (oldest
// first). n <= 0 or n larger than the ring returns everything held.
func (t *Tracer) Spans(n int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	if n > 0 && n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSONL streams the most recent n spans (see Spans) as JSONL,
// one object per line, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer, n int) error {
	var buf []byte
	for _, s := range t.Spans(n) {
		buf = AppendSpanJSON(buf[:0], &s)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// AppendSpanJSON renders one span as a compact JSON line (with
// trailing newline). Hand-rolled like AppendJSONL, and for the same
// reason: field order is part of the format, so equal span sequences
// render byte-identically.
func AppendSpanJSON(buf []byte, s *Span) []byte {
	buf = append(buf, `{"span":`...)
	buf = appendJSONString(buf, s.Name)
	buf = append(buf, `,"trace":"`...)
	buf = appendTraceID(buf, s.Trace)
	buf = append(buf, `","id":`...)
	buf = strconv.AppendInt(buf, int64(s.ID), 10)
	buf = append(buf, `,"parent":`...)
	buf = strconv.AppendInt(buf, int64(s.Parent), 10)
	if s.Epoch >= 0 {
		buf = append(buf, `,"epoch":`...)
		buf = strconv.AppendInt(buf, s.Epoch, 10)
	}
	if s.Seq >= 0 {
		buf = append(buf, `,"seq":`...)
		buf = strconv.AppendInt(buf, s.Seq, 10)
	}
	if s.Shard >= 0 {
		buf = append(buf, `,"shard":`...)
		buf = strconv.AppendInt(buf, s.Shard, 10)
	}
	buf = append(buf, `,"start_ns":`...)
	buf = strconv.AppendInt(buf, s.StartNs, 10)
	buf = append(buf, `,"dur_ns":`...)
	buf = strconv.AppendInt(buf, s.DurNs, 10)
	for _, f := range s.Attrs {
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Value)
	}
	return append(buf, '}', '\n')
}

// SpanCtx is a position in a trace: everything needed to start child
// spans. The zero value is a disabled context (Start returns nil).
// SpanCtx values are plain values — copy them across goroutines
// freely; the span-id allocator is shared and atomic.
type SpanCtx struct {
	t     *Tracer
	trace TraceID
	id    int32         // this context's span id (0 = trace root)
	ctr   *atomic.Int32 // shared span-id allocator for the trace
}

// Root returns the root context for a new trace. On a nil tracer the
// returned context is disabled and allocates nothing.
func (t *Tracer) Root(id TraceID) SpanCtx {
	if t == nil {
		return SpanCtx{}
	}
	return SpanCtx{t: t, trace: id, ctr: &atomic.Int32{}}
}

// Enabled reports whether spans started from this context are
// recorded.
func (c SpanCtx) Enabled() bool { return c.t != nil }

// Start opens a child span. Returns nil (whose methods all no-op) on
// a disabled context.
func (c SpanCtx) Start(name string) *ActiveSpan {
	if c.t == nil {
		return nil
	}
	a := &ActiveSpan{
		ctx: SpanCtx{t: c.t, trace: c.trace, id: c.ctr.Add(1), ctr: c.ctr},
		s: Span{
			Trace:  c.trace,
			Parent: c.id,
			Name:   name,
			Epoch:  -1,
			Seq:    -1,
			Shard:  -1,
		},
	}
	a.s.ID = a.ctx.id
	if !c.t.det {
		a.start = time.Now()
		a.s.StartNs = a.start.UnixNano()
	}
	return a
}

// ActiveSpan is one span between Start and Finish. All methods no-op
// on nil, so call sites never guard.
type ActiveSpan struct {
	ctx   SpanCtx
	s     Span
	start time.Time
}

// Ctx returns the context for nesting children under this span
// (disabled context on nil).
func (a *ActiveSpan) Ctx() SpanCtx {
	if a == nil {
		return SpanCtx{}
	}
	return a.ctx
}

// SetEpoch stamps the epoch-sequence logical timestamp.
func (a *ActiveSpan) SetEpoch(e int) *ActiveSpan {
	if a != nil {
		a.s.Epoch = int64(e)
	}
	return a
}

// SetSeq stamps the log/request-sequence logical timestamp.
func (a *ActiveSpan) SetSeq(s int) *ActiveSpan {
	if a != nil {
		a.s.Seq = int64(s)
	}
	return a
}

// SetShard stamps the shard logical timestamp.
func (a *ActiveSpan) SetShard(j int) *ActiveSpan {
	if a != nil {
		a.s.Shard = int64(j)
	}
	return a
}

// Attr appends one ordered attribute. Values must be deterministic
// (counts, names, logical positions — never durations).
func (a *ActiveSpan) Attr(key string, value any) *ActiveSpan {
	if a != nil {
		a.s.Attrs = append(a.s.Attrs, Field{Key: key, Value: value})
	}
	return a
}

// Finish records the span. Safe to call on nil; calling twice records
// twice (don't).
func (a *ActiveSpan) Finish() {
	if a == nil {
		return
	}
	if !a.ctx.t.det {
		a.s.DurNs = time.Since(a.start).Nanoseconds()
	}
	a.ctx.t.record(a.s)
}

package obs

import (
	"io"
	"testing"
)

// sinkhole defeats dead-code elimination in the overhead benchmarks.
var sinkhole uint64

// work burns a handful of nanoseconds of real, unelidable arithmetic —
// a stand-in for the per-candidate work of a fixpoint inner loop, so
// the disabled-instrumentation delta is measured against a realistic
// baseline rather than an empty loop.
func work(x uint64) uint64 {
	for i := 0; i < 8; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// BenchmarkDisabledOverhead is the contract behind "disabled
// instrumentation costs ~zero": "baseline" is the bare workload,
// "disabled" adds the exact call shapes the engines use — nil-receiver
// counter/gauge updates and a nil-guarded sink emit. scripts/check.sh
// runs both and gates the delta.
func BenchmarkDisabledOverhead(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		x := uint64(1)
		for n := 0; n < b.N; n++ {
			x = work(x)
		}
		sinkhole = x
	})
	b.Run("disabled", func(b *testing.B) {
		var c *Counter
		var g *Gauge
		var h *Histogram
		var l *LatencyHist
		var s *Sink
		var t *Tracer
		tc := t.Root(TraceID{})
		x := uint64(1)
		for n := 0; n < b.N; n++ {
			x = work(x)
			c.Add(1)
			g.Set(int64(n))
			h.Observe(int64(n))
			l.Observe(int64(n))
			sp := tc.Start("ev")
			sp.SetEpoch(n)
			sp.Finish()
			if s != nil {
				s.Emit("ev", F("n", n))
			}
		}
		sinkhole = x
	})
}

// BenchmarkEnabled records the cost of the enabled paths for the
// curious; it is informational, not gated.
func BenchmarkEnabled(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("c")
		for n := 0; n < b.N; n++ {
			c.Add(1)
		}
	})
	b.Run("emit", func(b *testing.B) {
		s := NewSink(io.Discard)
		for n := 0; n < b.N; n++ {
			s.Emit("bench.event", F("n", n), F("s", "x"))
		}
	})
}

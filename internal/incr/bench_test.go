package incr

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
)

// The incremental-vs-recompute benchmarks measure the subsystem's
// reason to exist: a single-fact delta against a warm materialization
// must beat recomputing the stratified fixpoint from scratch. Each
// incr iteration applies an insert and the matching retract, so the
// materialization returns to its warm baseline and iterations are
// identical; the recompute arm evaluates both resulting database
// versions from scratch for a like-for-like comparison.
func benchDeltaVsRecompute(b *testing.B, src string, base *fact.Instance, edge fact.Fact) {
	prog := datalog.MustParseProgram(src)
	ins := Delta{Insert: []fact.Fact{edge}}
	del := Delta{Retract: []fact.Fact{edge}}

	b.Run("incr", func(b *testing.B) {
		m, err := New(prog, base, Options{})
		if err != nil {
			b.Fatal(err)
		}
		warm := m.Len()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := m.Apply(ins); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Apply(del); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if m.Len() != warm {
			b.Fatalf("materialization drifted: %d facts, warm %d", m.Len(), warm)
		}
		if err := m.Verify(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(warm), "facts/op")
	})

	b.Run("recompute", func(b *testing.B) {
		grown := base.Clone()
		grown.Add(edge)
		var facts int
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			with, err := prog.EvalStratified(grown, datalog.FixpointOptions{})
			if err != nil {
				b.Fatal(err)
			}
			without, err := prog.EvalStratified(base, datalog.FixpointOptions{})
			if err != nil {
				b.Fatal(err)
			}
			facts = without.Len()
			_ = with
		}
		b.ReportMetric(float64(facts), "facts/op")
	})
}

// BenchmarkIncrTCDelta: transitive closure over a 96-edge chain
// (|T| = 4656); the delta appends and removes a tail edge, a pure
// counting workload (insert propagation + non-recursive-free cascade
// through the recursive stratum's counting insert and DRed delete).
func BenchmarkIncrTCDelta(b *testing.B) {
	benchDeltaVsRecompute(b, tcProg, generate.Path("v", 96), fact.MustParseFact("E(v96,v97)"))
}

// BenchmarkIncrNoLoopDelta: the stratified-negation NoLoop program
// over a 96-edge chain; the tail-edge delta flows through all strata
// including the negation-guarded Off rules.
func BenchmarkIncrNoLoopDelta(b *testing.B) {
	benchDeltaVsRecompute(b, noLoopProg, generate.Path("n", 96), fact.MustParseFact("E(n96,n97)"))
}

// BenchmarkIncrShortcutDelta: inserting a shortcut edge into a chain
// whose closure already contains every implied pair — the delta is
// absorbed entirely by support-count increments, the cheapest case.
func BenchmarkIncrShortcutDelta(b *testing.B) {
	benchDeltaVsRecompute(b, tcProg, generate.Path("v", 96), fact.MustParseFact("E(v8,v88)"))
}

// BenchmarkIncrParallelDelta pins the parallel maintenance path on the
// same TC workload.
func BenchmarkIncrParallelDelta(b *testing.B) {
	prog := datalog.MustParseProgram(tcProg)
	base := generate.Path("v", 96)
	edge := fact.MustParseFact("E(v96,v97)")
	m, err := New(prog, base, Options{Mode: datalog.Parallel})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := m.Apply(Delta{Insert: []fact.Fact{edge}}); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Apply(Delta{Retract: []fact.Fact{edge}}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package incr implements incremental view maintenance for stratified
// Datalog¬ programs: a Materialization holds a program's full
// stratified fixpoint over a base (edb) instance and keeps it exact
// under streams of base-fact insertions and retractions, without
// recomputing from scratch.
//
// The maintenance algorithm is the classic counting/DRed split,
// aligned with the paper's monotonicity hierarchy:
//
//   - Insertions propagate by semi-naive delta evaluation over the warm
//     materialization — for the monotone fragments (Datalog(≠), and
//     SP-Datalog below the negated strata) this is pure growth, the
//     evaluation-side shadow of the CALM results: no derived fact is
//     ever invalidated, so no coordination (re-examination of past
//     conclusions) is needed. Each new derivation increments a support
//     count on its head fact, attributed exactly once (see apply.go).
//   - Retractions, and insertions into negated relations, run
//     delete–rederive (DRed) on recursive strata: over-delete the cone
//     of facts with a derivation through the changed inputs, then
//     rederive survivors from the remainder. On non-recursive strata
//     the exact support counts shortcut DRed entirely: lost derivations
//     are decremented and a fact dies exactly when its count reaches
//     zero (counting is sound there because support cannot be cyclic).
//
// The maintained materialization is provably equal to full
// recomputation — Verify checks it against EvalStratified, and the
// property tests replay hundreds of seeded mixed update streams in
// both serial and parallel modes.
package incr

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/obs"
)

// Options configures a materialization.
type Options struct {
	// Mode selects the evaluation strategy for delta propagation:
	// SemiNaive (default) runs phases inline; Parallel fans each
	// phase's pinned-join tasks across a worker pool. Naive is not
	// meaningful for incremental maintenance and is rejected.
	Mode datalog.EvalMode
	// Workers sets the pool size for Parallel mode; 0 means GOMAXPROCS.
	Workers int
	// Reg, when non-nil, receives incr.* counters and the apply-span
	// histogram (see internal/obs names.go).
	Reg *obs.Registry
	// Sink, when non-nil, receives the deterministic incr.apply /
	// incr.stratum event stream: a pure function of (program, update
	// history), byte-identical across runs and across modes.
	Sink *obs.Sink
}

func (o Options) workers() int {
	if o.Mode != datalog.Parallel {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Delta is one batch of base-instance changes: facts to insert and
// facts to retract, all over edb relations of the program (or
// relations unknown to it, which pass through untouched). A fact
// appearing in both sets is rejected as ambiguous.
type Delta struct {
	Insert  []fact.Fact
	Retract []fact.Fact
}

// ApplyStats reports the work one Apply performed. Base* count the
// netted edb changes; Derived* count derived facts added/removed by
// the phases (a fact deleted by DRed and re-added by the insertion
// phase counts in both). Overdeleted/Rederived measure DRed churn;
// Support* count derivation-count updates.
type ApplyStats struct {
	BaseInserted, BaseRetracted  int
	DerivedAdded, DerivedRemoved int
	Overdeleted, Rederived       int
	Recounts                     int
	SupportIncrements            int64
	SupportDecrements            int64
}

// stratum is one stratum of the program with the precomputed
// structure the phases consult.
type stratum struct {
	rules []datalog.Rule
	// crules[i] is rules[i] pre-compiled; cneg[i][k] is the
	// neg-conversion convertNeg(rules[i], k) pre-compiled with its pin.
	// Compilation is per-program setup — the apply phases evaluate
	// these on every delta and must not recompile per call.
	crules []*datalog.CompiledRule
	cneg   [][]negCompiled
	// heads is the set of idb relations defined by this stratum.
	heads map[string]bool
	// posRels / negRels are the relations occurring in positive /
	// negated body atoms of the stratum's rules.
	posRels, negRels map[string]bool
	// recursive reports whether the positive dependency graph among
	// this stratum's head relations has a cycle. Non-recursive strata
	// use exact counting for deletions; recursive strata need DRed.
	recursive bool
}

// Materialization is an incrementally maintained stratified fixpoint:
// base ∪ all facts derivable from it, with a derivation support count
// per derived fact. Not safe for concurrent use; callers serialize
// (cmd/calmd holds a mutex).
type Materialization struct {
	prog        *datalog.Program
	idb         fact.Schema
	schema      fact.Schema
	strata      []stratum
	rulesByHead map[string][]headRule
	hasNeg      bool
	opts        Options
	workers     int

	x    *datalog.IndexedInstance
	base *fact.Instance
	// support maps a derived fact's packed key (Fact.PackedKey — the
	// interned-ID encoding, valid within this process only) to its
	// exact derivation count. Anything persisted (snapshots) stores
	// facts textually, never packed keys.
	support map[string]int64
	seq     int
	corrupt error
}

// New builds a materialization of the program over the initial base
// instance (nil means empty) by running the insertion path from
// scratch — the initial fixpoint is itself an incremental apply onto
// an empty materialization.
func New(p *datalog.Program, initial *fact.Instance, opts Options) (*Materialization, error) {
	m, err := newEmpty(p, opts)
	if err != nil {
		return nil, err
	}
	if initial != nil && !initial.Empty() {
		if _, err := m.Apply(Delta{Insert: initial.Facts()}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// newEmpty builds the static program structure with an empty base.
func newEmpty(p *datalog.Program, opts Options) (*Materialization, error) {
	if opts.Mode == datalog.Naive {
		return nil, fmt.Errorf("incr: naive mode is not meaningful for incremental maintenance; use seminaive or parallel")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rho, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	schema, err := p.Schema()
	if err != nil {
		return nil, err
	}
	m := &Materialization{
		prog:        p,
		idb:         p.IDB(),
		schema:      schema,
		rulesByHead: make(map[string][]headRule),
		opts:        opts,
		workers:     opts.workers(),
		x:           datalog.IndexInstance(fact.NewInstance()),
		base:        fact.NewInstance(),
		support:     make(map[string]int64),
	}
	for _, rules := range p.Strata(rho) {
		m.strata = append(m.strata, newStratum(rules))
	}
	for _, r := range p.Rules {
		m.rulesByHead[r.Head.Rel] = append(m.rulesByHead[r.Head.Rel], headRule{r: r, c: datalog.Compile(r)})
		if len(r.Neg) > 0 {
			m.hasNeg = true
		}
	}
	return m, nil
}

func newStratum(rules []datalog.Rule) stratum {
	s := stratum{
		rules:   rules,
		heads:   make(map[string]bool),
		posRels: make(map[string]bool),
		negRels: make(map[string]bool),
	}
	for _, r := range rules {
		s.heads[r.Head.Rel] = true
	}
	// adj is the positive dependency graph restricted to the stratum's
	// own head relations; a cycle in it (including a self-loop) makes
	// the stratum recursive.
	adj := make(map[string][]string)
	for _, r := range rules {
		for _, a := range r.Pos {
			s.posRels[a.Rel] = true
			if s.heads[a.Rel] {
				adj[a.Rel] = append(adj[a.Rel], r.Head.Rel)
			}
		}
		for _, a := range r.Neg {
			s.negRels[a.Rel] = true
		}
	}
	s.recursive = hasCycle(adj)
	for _, r := range rules {
		s.crules = append(s.crules, datalog.Compile(r))
		nc := make([]negCompiled, len(r.Neg))
		for k := range r.Neg {
			conv, pin := convertNeg(r, k)
			nc[k] = negCompiled{c: datalog.Compile(conv), pin: pin}
		}
		s.cneg = append(s.cneg, nc)
	}
	return s
}

// negCompiled is one pre-compiled neg-conversion: the rule with its
// k-th negated atom turned positive, and the pin index of that atom.
type negCompiled struct {
	c   *datalog.CompiledRule
	pin int
}

// headRule pairs a rule with its compilation for the head-bound
// entry points (countDerivations, derivable), which run per candidate
// fact inside DRed and must not recompile.
type headRule struct {
	r datalog.Rule
	c *datalog.CompiledRule
}

// hasCycle detects a directed cycle via three-color DFS.
func hasCycle(adj map[string][]string) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(string) bool
	visit = func(u string) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	nodes := make([]string, 0, len(adj))
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	for _, u := range nodes {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// Program returns the maintained program.
func (m *Materialization) Program() *datalog.Program { return m.prog }

// Seq returns the number of non-empty Apply calls performed.
func (m *Materialization) Seq() int { return m.seq }

// Len returns the total number of materialized facts (base + derived).
func (m *Materialization) Len() int { return m.x.Len() }

// Has reports whether the fact is materialized.
func (m *Materialization) Has(f fact.Fact) bool { return m.x.Has(f) }

// Rel returns the materialized facts of one relation in sorted order.
func (m *Materialization) Rel(rel string) []fact.Fact { return m.x.Instance().Rel(rel) }

// Instance returns an independent copy of the full materialization.
func (m *Materialization) Instance() *fact.Instance { return m.x.Instance().Clone() }

// Base returns an independent copy of the base (edb) instance.
func (m *Materialization) Base() *fact.Instance { return m.base.Clone() }

// Derived returns an independent instance of the derived (idb) facts.
func (m *Materialization) Derived() *fact.Instance { return m.x.Instance().Minus(m.base) }

// Support returns the maintained derivation count of a derived fact
// (0 for base or unknown facts).
func (m *Materialization) Support(f fact.Fact) int64 { return m.support[f.PackedKey()] }

// countDerivations counts the satisfying valuations of all rules
// deriving exactly f, against the current materialization — via
// MatchBoundCount, which enumerates compiled slot environments without
// materializing a Bindings per valuation.
func (m *Materialization) countDerivations(f fact.Fact) (int64, error) {
	var n int64
	for _, hr := range m.rulesByHead[f.Rel()] {
		init, ok := hr.r.BindHead(f)
		if !ok {
			continue
		}
		c, err := m.x.MatchBoundCountC(hr.c, init)
		if err != nil {
			return 0, err
		}
		n += c
	}
	return n, nil
}

// derivable reports whether f has at least one derivation against the
// current materialization, stopping at the first witness.
func (m *Materialization) derivable(f fact.Fact) (bool, error) {
	for _, hr := range m.rulesByHead[f.Rel()] {
		init, ok := hr.r.BindHead(f)
		if !ok {
			continue
		}
		ok, err := m.x.MatchBoundAnyC(hr.c, init)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Verify checks the materialization against full recomputation: the
// fact set must equal EvalStratified(base) and every derived fact's
// support count must equal its derivation count. It is O(full
// evaluation) and meant for tests, snapshots audits, and debugging.
func (m *Materialization) Verify() error {
	if m.corrupt != nil {
		return m.corrupt
	}
	want, err := m.prog.EvalStratified(m.base, datalog.FixpointOptions{Mode: datalog.SemiNaive})
	if err != nil {
		return fmt.Errorf("incr: verify recomputation: %w", err)
	}
	got := m.x.Instance()
	if !got.Equal(want) {
		return fmt.Errorf("incr: materialization diverged from recomputation:\nextra:   %v\nmissing: %v",
			got.Minus(want), want.Minus(got))
	}
	derived := 0
	for _, f := range got.Facts() {
		if m.base.Has(f) {
			if _, ok := m.support[f.PackedKey()]; ok {
				return fmt.Errorf("incr: base fact %v has a support entry", f)
			}
			continue
		}
		derived++
		n, err := m.countDerivations(f)
		if err != nil {
			return err
		}
		if have := m.support[f.PackedKey()]; have != n {
			return fmt.Errorf("incr: support count for %v is %d, want %d", f, have, n)
		}
		if n <= 0 {
			return fmt.Errorf("incr: materialized fact %v has no derivation", f)
		}
	}
	if len(m.support) != derived {
		return fmt.Errorf("incr: %d support entries for %d derived facts", len(m.support), derived)
	}
	return nil
}

// checkBaseFact validates a delta fact: it must not be over an idb
// relation, must match the program schema's arity when the relation is
// known, and must not contain NUL bytes (which would break key
// encoding).
func (m *Materialization) checkBaseFact(f fact.Fact) error {
	if m.idb.Has(f.Rel()) {
		return fmt.Errorf("incr: %v is over derived relation %s; deltas must change base relations only", f, f.Rel())
	}
	if ar, ok := m.schema.Arity(f.Rel()); ok && ar != f.Arity() {
		return fmt.Errorf("incr: %v has arity %d, program uses %s with arity %d", f, f.Arity(), f.Rel(), ar)
	}
	for i := 0; i < f.Arity(); i++ {
		if strings.ContainsRune(string(f.Arg(i)), 0) {
			return fmt.Errorf("incr: %v contains a NUL byte", f)
		}
	}
	return nil
}

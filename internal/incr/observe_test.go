package incr

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// incrTraceSession is the fixed update session behind the golden
// trace: builds NoLoop over a path, closes a cycle, cuts it, and runs
// one mixed batch — exercising the insert, counting-delete, and DRed
// paths.
func incrTraceSession(t *testing.T, opts Options) {
	t.Helper()
	m, err := New(datalog.MustParseProgram(noLoopProg), generate.Path("n", 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range []Delta{
		{Insert: []fact.Fact{fact.MustParseFact("E(n3,n0)")}},
		{Retract: []fact.Fact{fact.MustParseFact("E(n1,n2)")}},
		{Insert: []fact.Fact{fact.MustParseFact("E(n1,n2)")}, Retract: []fact.Fact{fact.MustParseFact("E(n3,n0)"), fact.MustParseFact("E(n0,n1)")}},
	} {
		if _, err := m.Apply(d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenIncrTrace(t *testing.T) {
	var sb strings.Builder
	incrTraceSession(t, Options{Sink: obs.NewSink(&sb)})
	got := sb.String()
	for _, kind := range []string{obs.EvIncrApply, obs.EvIncrStratum} {
		if !strings.Contains(got, `"ev":"`+kind+`"`) {
			t.Errorf("trace lacks %s events", kind)
		}
	}
	for _, alg := range []string{`"alg":"count"`, `"alg":"dred"`} {
		if !strings.Contains(got, alg) {
			t.Errorf("trace lacks %s stratum events", alg)
		}
	}
	goldenCompare(t, "trace_incr.jsonl", got)
}

// TestParallelTraceMatchesGolden pins the cross-mode contract against
// the same golden file: parallel maintenance emits the identical
// byte stream.
func TestParallelTraceMatchesGolden(t *testing.T) {
	for _, workers := range []int{2, 5} {
		var sb strings.Builder
		incrTraceSession(t, Options{Mode: datalog.Parallel, Workers: workers, Sink: obs.NewSink(&sb)})
		goldenCompare(t, "trace_incr.jsonl", sb.String())
	}
}

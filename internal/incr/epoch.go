package incr

import (
	"repro/internal/datalog"
	"repro/internal/fact"
)

// This file is the MVCC surface of the materialization: Epoch turns
// the current committed state into an immutable snapshot that any
// number of readers may query concurrently while the (single) writer
// keeps applying deltas. This is the evaluation-side shadow of the
// paper's CALM story — for coordination-free programs reads never need
// to wait for writes, they only need a consistent grown state to run
// against — and the reason it is cheap is PR 4/6's copy-on-write
// index: publishing an epoch copies per-relation slice headers, not
// facts.

// Epoch is one immutable committed state of a Materialization: the
// fact set, the apply sequence number that produced it, and the base
// (edb) size. Epochs are safe for concurrent use by any number of
// goroutines, concurrently with later Apply calls on the parent
// materialization. Two epochs with the same Seq taken from the same
// materialization answer every query byte-identically — the serving
// layer's determinism guarantee is anchored here.
type Epoch struct {
	seq  int
	base int
	view *datalog.RelView
}

// Epoch publishes the current committed state as an immutable
// snapshot. It must be called from the same goroutine that calls
// Apply (the single writer), between — never during — applies.
func (m *Materialization) Epoch() *Epoch {
	return &Epoch{seq: m.seq, base: m.base.Len(), view: m.x.RelView()}
}

// Seq returns the apply sequence number the epoch was published at.
func (e *Epoch) Seq() int { return e.seq }

// Len returns the total number of materialized facts in the epoch.
func (e *Epoch) Len() int { return e.view.Len() }

// BaseLen returns the number of base (edb) facts in the epoch.
func (e *Epoch) BaseLen() int { return e.base }

// Rel returns the epoch's facts of one relation in canonical sorted
// order. The result is freshly allocated.
func (e *Epoch) Rel(rel string) []fact.Fact { return e.view.Rel(rel) }

// Facts returns every fact in the epoch in canonical sorted order.
func (e *Epoch) Facts() []fact.Fact { return e.view.Facts() }

// Has reports whether the fact is in the epoch.
func (e *Epoch) Has(f fact.Fact) bool { return e.view.Has(f) }

// Err returns the corruption error if a maintenance phase failed and
// poisoned the materialization, else nil. A server publishing epochs
// checks it after each batch: when the materialization is corrupt the
// last good epoch stays current, so reads keep answering from the
// final consistent state while writes fail fast.
func (m *Materialization) Err() error { return m.corrupt }

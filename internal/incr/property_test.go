package incr

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/generate"
)

// TestPropertyIncrementalEqualsRecompute is the subsystem's acceptance
// property: over hundreds of seeded random programs and mixed
// insert/retract update streams, the incrementally maintained
// materialization is set-equal to full stratified recomputation after
// EVERY delta, in both serial and parallel modes, and the support
// counts audit clean at the end.
func TestPropertyIncrementalEqualsRecompute(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))

			// Draw random programs until one stratifies; RandomProgram
			// can produce recursion through negation.
			var prog *datalog.Program
			for {
				src := generate.RandomProgram(rng, 2+rng.Intn(4))
				p, err := datalog.ParseProgram(src)
				if err != nil {
					t.Fatalf("parse generated program: %v", err)
				}
				if p.IsStratifiable() {
					prog = p
					break
				}
			}

			pool := generate.Values("v", 3+rng.Intn(2))
			edb := prog.EDB()
			base := generate.Random(rng, edb, pool, rng.Intn(8))
			stream := generate.UpdateStream(rng, edb, pool, base, 6, 3)

			serial, err := New(prog, base, Options{Mode: datalog.SemiNaive})
			if err != nil {
				t.Fatalf("New serial: %v", err)
			}
			par, err := New(prog, base, Options{Mode: datalog.Parallel, Workers: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatalf("New parallel: %v", err)
			}

			cur := base.Clone()
			for step, u := range stream {
				d := Delta{Insert: u.Insert, Retract: u.Retract}
				if _, err := serial.Apply(d); err != nil {
					t.Fatalf("step %d: serial Apply: %v\nprogram:\n%s", step, err, prog)
				}
				if _, err := par.Apply(d); err != nil {
					t.Fatalf("step %d: parallel Apply: %v\nprogram:\n%s", step, err, prog)
				}
				for _, f := range u.Insert {
					cur.Add(f)
				}
				for _, f := range u.Retract {
					cur.Remove(f)
				}
				want, err := prog.EvalStratified(cur, datalog.FixpointOptions{})
				if err != nil {
					t.Fatalf("step %d: recompute: %v\nprogram:\n%s", step, err, prog)
				}
				for name, m := range map[string]*Materialization{"serial": serial, "parallel": par} {
					got := m.Instance()
					if !got.Equal(want) {
						t.Fatalf("step %d: %s materialization diverged\nprogram:\n%s\nbase: %v\nextra: %v\nmissing: %v",
							step, name, prog, cur, got.Minus(want), want.Minus(got))
					}
				}
			}
			if err := serial.Verify(); err != nil {
				t.Fatalf("serial Verify: %v\nprogram:\n%s", err, prog)
			}
			if err := par.Verify(); err != nil {
				t.Fatalf("parallel Verify: %v\nprogram:\n%s", err, prog)
			}
		})
	}
}

// TestPropertySnapshotRoundTrip spot-checks snapshot determinism on
// the same generated population: snapshot → restore → snapshot is
// byte-identical and the restored materialization continues to track
// recomputation.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			var prog *datalog.Program
			for {
				p, err := datalog.ParseProgram(generate.RandomProgram(rng, 2+rng.Intn(3)))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if p.IsStratifiable() {
					prog = p
					break
				}
			}
			pool := generate.Values("v", 4)
			base := generate.Random(rng, prog.EDB(), pool, 6)
			m, err := New(prog, base, Options{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			snap1 := snapshotString(t, m)
			m2, err := Restore(strings.NewReader(snap1), Options{})
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if snap2 := snapshotString(t, m2); snap2 != snap1 {
				t.Fatalf("snapshot not byte-stable across restore:\n--- first ---\n%s--- second ---\n%s", snap1, snap2)
			}
			if err := m2.Verify(); err != nil {
				t.Fatalf("restored Verify: %v", err)
			}
			// The restored materialization keeps maintaining correctly.
			for _, u := range generate.UpdateStream(rng, prog.EDB(), pool, base, 3, 2) {
				if _, err := m2.Apply(Delta{Insert: u.Insert, Retract: u.Retract}); err != nil {
					t.Fatalf("Apply after restore: %v", err)
				}
			}
			if err := m2.Verify(); err != nil {
				t.Fatalf("post-restore stream Verify: %v\nprogram:\n%s", err, prog)
			}
		})
	}
}

func snapshotString(t *testing.T, m *Materialization) string {
	t.Helper()
	var b bytes.Buffer
	if err := m.Snapshot(&b); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return b.String()
}

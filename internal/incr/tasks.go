package incr

import (
	"sort"
	"sync"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// A pinTask is one unit of delta enumeration: evaluate rule with its
// pinned atom ranging over pinFacts against a frozen view, keeping
// only valuations the accept filter admits. Tasks never mutate shared
// state — each enumeration folds into a private headAcc and the
// accumulators merge additively at the phase barrier, which is what
// makes serial and parallel execution produce identical results.
type pinTask struct {
	crule    *datalog.CompiledRule
	pin      int
	pinFacts []fact.Fact
	view     *datalog.IndexedInstance
	// accept filters valuations for exactly-once attribution (nil
	// admits all). It receives the matcher's live valuation — packed
	// atom keys only, no Bindings materialization — and must read only
	// state frozen for the phase.
	accept func(v *datalog.Valuation) bool
}

// headEntry is one accumulated head fact with its derivation count.
type headEntry struct {
	f fact.Fact
	n int64
}

// headAcc accumulates derivation counts per ground head fact, keyed by
// the head's packed key. Repeat heads cost one map probe and no
// allocation; the fact is materialized only the first time a key is
// seen.
type headAcc struct {
	m map[string]*headEntry
}

func newHeadAcc() *headAcc {
	return &headAcc{m: make(map[string]*headEntry)}
}

func (a *headAcc) merge(b *headAcc) {
	for k, be := range b.m {
		if e, ok := a.m[k]; ok {
			e.n += be.n
		} else {
			a.m[k] = be
		}
	}
}

// entries returns the accumulated entries with their facts in sorted
// order. Packed keys sort in process-dependent interning order, so all
// observable ordering goes through fact.SortFacts instead.
func (a *headAcc) entries() []*headEntry {
	es := make([]*headEntry, 0, len(a.m))
	for _, e := range a.m {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].f.Compare(es[j].f) < 0 })
	return es
}

// sortedFacts returns the accumulated head facts in sorted order.
func (a *headAcc) sortedFacts() []fact.Fact {
	fs := make([]fact.Fact, 0, len(a.m))
	for _, e := range a.m {
		fs = append(fs, e.f)
	}
	fact.SortFacts(fs)
	return fs
}

func runTask(t pinTask, acc *headAcc) error {
	return t.view.EvalPinnedVC(t.crule, t.pin, t.pinFacts, func(v *datalog.Valuation) error {
		if t.accept != nil && !t.accept(v) {
			return nil
		}
		k := v.HeadKey()
		if e, ok := acc.m[string(k)]; ok {
			e.n++
			return nil
		}
		h, err := v.Head()
		if err != nil {
			return err
		}
		acc.m[string(k)] = &headEntry{f: h, n: 1}
		return nil
	})
}

// runTasks executes the tasks and returns the merged accumulator. In
// parallel mode large pin lists are chunked so the pool stays busy;
// because the merge is a commutative sum, the result is independent of
// scheduling and of the worker count.
func (m *Materialization) runTasks(tasks []pinTask) (*headAcc, error) {
	if m.workers <= 1 || len(tasks) == 0 {
		acc := newHeadAcc()
		for _, t := range tasks {
			if err := runTask(t, acc); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	var sub []pinTask
	for _, t := range tasks {
		for _, chunk := range chunkPin(t.pinFacts, m.workers) {
			t2 := t
			t2.pinFacts = chunk
			sub = append(sub, t2)
		}
	}
	workers := m.workers
	if workers > len(sub) {
		workers = len(sub)
	}
	accs := make([]*headAcc, workers)
	errs := make([]error, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		accs[w] = newHeadAcc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue
				}
				errs[w] = runTask(sub[i], accs[w])
			}
		}()
	}
	for i := range sub {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := accs[0]
	for _, other := range accs[1:] {
		acc.merge(other)
	}
	return acc, nil
}

// chunkPin splits a pin list into at most 2×workers chunks so a slow
// chunk cannot serialize the whole phase.
func chunkPin(fs []fact.Fact, workers int) [][]fact.Fact {
	if len(fs) == 0 {
		return nil
	}
	target := workers * 2
	size := (len(fs) + target - 1) / target
	if size < 1 {
		size = 1
	}
	var chunks [][]fact.Fact
	for start := 0; start < len(fs); start += size {
		end := start + size
		if end > len(fs) {
			end = len(fs)
		}
		chunks = append(chunks, fs[start:end])
	}
	return chunks
}

// parallelEach runs fn for every index, fanning out across the worker
// pool in parallel mode. fn must not mutate shared state; the DRed
// phases use this for independent derivability checks and recounts.
func (m *Materialization) parallelEach(n int, fn func(i int) error) error {
	if m.workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := m.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[w] == nil {
					errs[w] = fn(i)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// groupByRel groups facts by relation, preserving slice order.
func groupByRel(fs []fact.Fact) map[string][]fact.Fact {
	g := make(map[string][]fact.Fact)
	for _, f := range fs {
		g[f.Rel()] = append(g[f.Rel()], f)
	}
	return g
}

// keySet builds the packed-key set of a fact slice, probed by the
// accept filters with the matcher's scratch key bytes.
func keySet(fs []fact.Fact) map[string]bool {
	s := make(map[string]bool, len(fs))
	var buf []byte
	for _, f := range fs {
		buf = f.AppendPacked(buf[:0])
		s[string(buf)] = true
	}
	return s
}

// convertNeg rewrites the rule so its k-th negated atom becomes a
// positive atom that can be pinned to a delta: the atom is appended to
// the positive body (so every variable it shares is join-checked) and
// dropped from the guards. Pinning the converted atom's position to
// facts leaving (entering) the instance enumerates exactly the
// valuations the negation admits after (blocked before) the change.
// In the converted rule's valuations, PosKey(len(r.Pos)) addresses the
// pinned atom and NegKey(k2) for k2 < k still addresses r.Neg[k2].
func convertNeg(r datalog.Rule, k int) (datalog.Rule, int) {
	conv := datalog.Rule{Head: r.Head, Ineq: r.Ineq}
	conv.Pos = append(append([]datalog.Atom{}, r.Pos...), r.Neg[k])
	conv.Neg = append(append([]datalog.Atom{}, r.Neg[:k]...), r.Neg[k+1:]...)
	return conv, len(r.Pos)
}

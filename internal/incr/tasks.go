package incr

import (
	"sort"
	"sync"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// A pinTask is one unit of delta enumeration: evaluate rule with its
// pinned atom ranging over pinFacts against a frozen view, keeping
// only valuations the accept filter admits. Tasks never mutate shared
// state — each enumeration folds into a private headAcc and the
// accumulators merge additively at the phase barrier, which is what
// makes serial and parallel execution produce identical results.
type pinTask struct {
	rule     datalog.Rule
	pin      int
	pinFacts []fact.Fact
	view     *datalog.IndexedInstance
	// accept filters valuations for exactly-once attribution (nil
	// admits all). It must read only state frozen for the phase.
	accept func(datalog.Bindings) bool
}

// headAcc accumulates derivation counts per ground head fact.
type headAcc struct {
	counts map[string]int64
	facts  map[string]fact.Fact
}

func newHeadAcc() *headAcc {
	return &headAcc{counts: make(map[string]int64), facts: make(map[string]fact.Fact)}
}

func (a *headAcc) add(h fact.Fact, n int64) {
	k := h.Key()
	if _, ok := a.counts[k]; !ok {
		a.facts[k] = h
	}
	a.counts[k] += n
}

func (a *headAcc) merge(b *headAcc) {
	for k, n := range b.counts {
		if _, ok := a.counts[k]; !ok {
			a.facts[k] = b.facts[k]
		}
		a.counts[k] += n
	}
}

// sortedFacts returns the accumulated head facts in sorted order.
func (a *headAcc) sortedFacts() []fact.Fact {
	fs := make([]fact.Fact, 0, len(a.facts))
	for _, f := range a.facts {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Compare(fs[j]) < 0 })
	return fs
}

func runTask(t pinTask, acc *headAcc) error {
	return t.view.EvalPinned(t.rule, t.pin, t.pinFacts, func(h fact.Fact, b datalog.Bindings) error {
		if t.accept != nil && !t.accept(b) {
			return nil
		}
		acc.add(h, 1)
		return nil
	})
}

// runTasks executes the tasks and returns the merged accumulator. In
// parallel mode large pin lists are chunked so the pool stays busy;
// because the merge is a commutative sum, the result is independent of
// scheduling and of the worker count.
func (m *Materialization) runTasks(tasks []pinTask) (*headAcc, error) {
	if m.workers <= 1 || len(tasks) == 0 {
		acc := newHeadAcc()
		for _, t := range tasks {
			if err := runTask(t, acc); err != nil {
				return nil, err
			}
		}
		return acc, nil
	}
	var sub []pinTask
	for _, t := range tasks {
		for _, chunk := range chunkPin(t.pinFacts, m.workers) {
			t2 := t
			t2.pinFacts = chunk
			sub = append(sub, t2)
		}
	}
	workers := m.workers
	if workers > len(sub) {
		workers = len(sub)
	}
	accs := make([]*headAcc, workers)
	errs := make([]error, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		accs[w] = newHeadAcc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue
				}
				errs[w] = runTask(sub[i], accs[w])
			}
		}()
	}
	for i := range sub {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := accs[0]
	for _, other := range accs[1:] {
		acc.merge(other)
	}
	return acc, nil
}

// chunkPin splits a pin list into at most 2×workers chunks so a slow
// chunk cannot serialize the whole phase.
func chunkPin(fs []fact.Fact, workers int) [][]fact.Fact {
	if len(fs) == 0 {
		return nil
	}
	target := workers * 2
	size := (len(fs) + target - 1) / target
	if size < 1 {
		size = 1
	}
	var chunks [][]fact.Fact
	for start := 0; start < len(fs); start += size {
		end := start + size
		if end > len(fs) {
			end = len(fs)
		}
		chunks = append(chunks, fs[start:end])
	}
	return chunks
}

// parallelEach runs fn for every index, fanning out across the worker
// pool in parallel mode. fn must not mutate shared state; the DRed
// phases use this for independent derivability checks and recounts.
func (m *Materialization) parallelEach(n int, fn func(i int) error) error {
	if m.workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := m.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[w] == nil {
					errs[w] = fn(i)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order; phases apply
// support updates in this order so mutation order is deterministic.
func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// groupByRel groups facts by relation, preserving slice order.
func groupByRel(fs []fact.Fact) map[string][]fact.Fact {
	g := make(map[string][]fact.Fact)
	for _, f := range fs {
		g[f.Rel()] = append(g[f.Rel()], f)
	}
	return g
}

// keySet builds the key set of a fact slice.
func keySet(fs []fact.Fact) map[string]bool {
	s := make(map[string]bool, len(fs))
	for _, f := range fs {
		s[f.Key()] = true
	}
	return s
}

// groundIn reports whether the atom grounded under b is in the key
// set. All variables of body atoms are bound by the time accept
// filters run, so grounding cannot fail; a failure would indicate an
// engine bug and is treated as "not in set".
func groundIn(a datalog.Atom, b datalog.Bindings, set map[string]bool) bool {
	f, err := datalog.Ground(a, b)
	if err != nil {
		return false
	}
	return set[f.Key()]
}

// convertNeg rewrites the rule so its k-th negated atom becomes a
// positive atom that can be pinned to a delta: the atom is appended to
// the positive body (so every variable it shares is join-checked) and
// dropped from the guards. Pinning the converted atom's position to
// facts leaving (entering) the instance enumerates exactly the
// valuations the negation admits after (blocked before) the change.
func convertNeg(r datalog.Rule, k int) (datalog.Rule, int) {
	conv := datalog.Rule{Head: r.Head, Ineq: r.Ineq}
	conv.Pos = append(append([]datalog.Atom{}, r.Pos...), r.Neg[k])
	conv.Neg = append(append([]datalog.Atom{}, r.Neg[:k]...), r.Neg[k+1:]...)
	return conv, len(r.Pos)
}

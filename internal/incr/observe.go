package incr

import "repro/internal/obs"

// Instrumentation plumbing. Counters and the apply-span histogram go
// to the Registry (nil-safe, scheduling-dependent values allowed);
// events go to the Sink and carry only set-derived counts, so the
// event stream is a pure function of (program, update history) —
// byte-identical across runs, modes, and worker counts. See
// internal/obs for the two-plane discipline.

// emitStratum reports one stratum's maintenance work (only emitted
// when the stratum did any).
func (m *Materialization) emitStratum(si int, sb *stratumStats) {
	if m.opts.Sink == nil {
		return
	}
	m.opts.Sink.Emit(obs.EvIncrStratum,
		obs.F("seq", m.seq),
		obs.F("stratum", si+1),
		obs.F("alg", sb.alg),
		obs.F("overdeleted", sb.overdeleted),
		obs.F("rederived", sb.rederived),
		obs.F("added", sb.added),
		obs.F("removed", sb.removed),
	)
}

// publishApply records one completed apply in both planes.
func (m *Materialization) publishApply(st *ApplyStats) {
	reg := m.opts.Reg
	reg.Counter(obs.IncrApplies).Inc()
	reg.Counter(obs.IncrBaseInserted).Add(int64(st.BaseInserted))
	reg.Counter(obs.IncrBaseRetracted).Add(int64(st.BaseRetracted))
	reg.Counter(obs.IncrDerivedAdded).Add(int64(st.DerivedAdded))
	reg.Counter(obs.IncrDerivedRemoved).Add(int64(st.DerivedRemoved))
	reg.Counter(obs.IncrOverdeleted).Add(int64(st.Overdeleted))
	reg.Counter(obs.IncrRederived).Add(int64(st.Rederived))
	reg.Counter(obs.IncrSupportIncrements).Add(st.SupportIncrements)
	reg.Counter(obs.IncrSupportDecrements).Add(st.SupportDecrements)
	reg.Counter(obs.IncrRecounts).Add(int64(st.Recounts))
	if m.opts.Sink == nil {
		return
	}
	m.opts.Sink.Emit(obs.EvIncrApply,
		obs.F("seq", m.seq),
		obs.F("inserted", st.BaseInserted),
		obs.F("retracted", st.BaseRetracted),
		obs.F("added", st.DerivedAdded),
		obs.F("removed", st.DerivedRemoved),
		obs.F("facts", m.x.Len()),
	)
}

package incr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/obs"
)

const tcProg = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
`

// noLoopProg is the paper's NoLoop-style stratified-negation program:
// nodes not on a cycle, over reachability.
const noLoopProg = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
OnLoop(x) :- T(x,x).
Off(x) :- E(x,y), !OnLoop(x).
Off(y) :- E(x,y), !OnLoop(y).
`

func mustNew(t *testing.T, src string, init *fact.Instance, opts Options) *Materialization {
	t.Helper()
	m, err := New(datalog.MustParseProgram(src), init, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// checkAgainstRecompute fails unless the materialization equals the
// full stratified recomputation of its base and Verify passes.
func checkAgainstRecompute(t *testing.T, m *Materialization) {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInitialBuildEqualsRecompute(t *testing.T) {
	for _, mode := range []datalog.EvalMode{datalog.SemiNaive, datalog.Parallel} {
		m := mustNew(t, tcProg, generate.Path("v", 5), Options{Mode: mode})
		checkAgainstRecompute(t, m)
		if got := len(m.Rel("T")); got != 15 {
			t.Fatalf("mode %v: |T| = %d, want 15 on a 5-edge path", mode, got)
		}
	}
}

func TestInsertPropagates(t *testing.T) {
	m := mustNew(t, tcProg, generate.Path("v", 3), Options{})
	st, err := m.Apply(Delta{Insert: []fact.Fact{fact.MustParseFact("E(v3,v4)")}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.BaseInserted != 1 || st.DerivedAdded == 0 {
		t.Fatalf("stats = %+v, want 1 base insert with derived additions", st)
	}
	if !m.Has(fact.MustParseFact("T(v0,v4)")) {
		t.Fatalf("T(v0,v4) not derived after inserting E(v3,v4)")
	}
	checkAgainstRecompute(t, m)
}

func TestRetractCascades(t *testing.T) {
	m := mustNew(t, tcProg, generate.Path("v", 4), Options{})
	st, err := m.Apply(Delta{Retract: []fact.Fact{fact.MustParseFact("E(v1,v2)")}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.BaseRetracted != 1 || st.DerivedRemoved == 0 {
		t.Fatalf("stats = %+v, want 1 base retract with derived removals", st)
	}
	if m.Has(fact.MustParseFact("T(v0,v4)")) {
		t.Fatalf("T(v0,v4) still materialized after cutting the path")
	}
	checkAgainstRecompute(t, m)
}

// TestSupportCountsSurviveSharedDerivations is the classic counting
// case: a diamond gives T(a,d) two derivations; deleting one side must
// decrement, not delete.
func TestSupportCountsSurviveSharedDerivations(t *testing.T) {
	init := fact.MustParseInstance(`
		E(a,b), E(b,d)
		E(a,c), E(c,d)
	`)
	m := mustNew(t, tcProg, init, Options{})
	ad := fact.MustParseFact("T(a,d)")
	if n := m.Support(ad); n != 2 {
		t.Fatalf("Support(T(a,d)) = %d, want 2", n)
	}
	if _, err := m.Apply(Delta{Retract: []fact.Fact{fact.MustParseFact("E(b,d)")}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !m.Has(ad) {
		t.Fatalf("T(a,d) deleted despite surviving derivation via c")
	}
	if n := m.Support(ad); n != 1 {
		t.Fatalf("Support(T(a,d)) = %d after retract, want 1", n)
	}
	checkAgainstRecompute(t, m)
}

// TestNegationFlips exercises the DRed path: inserting an edge that
// closes a cycle flips Off facts away; retracting it flips them back.
func TestNegationFlips(t *testing.T) {
	m := mustNew(t, noLoopProg, generate.Path("v", 3), Options{})
	off0 := fact.MustParseFact("Off(v0)")
	if !m.Has(off0) {
		t.Fatalf("Off(v0) missing on an acyclic path")
	}
	back := fact.MustParseFact("E(v3,v0)")
	if _, err := m.Apply(Delta{Insert: []fact.Fact{back}}); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
	if m.Has(off0) {
		t.Fatalf("Off(v0) survived closing the cycle")
	}
	checkAgainstRecompute(t, m)
	if _, err := m.Apply(Delta{Retract: []fact.Fact{back}}); err != nil {
		t.Fatalf("Apply retract: %v", err)
	}
	if !m.Has(off0) {
		t.Fatalf("Off(v0) not rederived after reopening the cycle")
	}
	checkAgainstRecompute(t, m)
}

func TestNoOpDeltaDoesNothing(t *testing.T) {
	m := mustNew(t, tcProg, generate.Path("v", 3), Options{})
	seq := m.Seq()
	st, err := m.Apply(Delta{
		Insert:  []fact.Fact{fact.MustParseFact("E(v0,v1)")}, // already present
		Retract: []fact.Fact{fact.MustParseFact("E(q,q)")},   // absent
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st != (ApplyStats{}) {
		t.Fatalf("no-op delta produced stats %+v", st)
	}
	if m.Seq() != seq {
		t.Fatalf("no-op delta advanced seq")
	}
}

func TestDeltaValidation(t *testing.T) {
	m := mustNew(t, tcProg, nil, Options{})
	cases := []struct {
		name string
		d    Delta
	}{
		{"idb insert", Delta{Insert: []fact.Fact{fact.MustParseFact("T(a,b)")}}},
		{"idb retract", Delta{Retract: []fact.Fact{fact.MustParseFact("T(a,b)")}}},
		{"arity mismatch", Delta{Insert: []fact.Fact{fact.MustParseFact("E(a)")}}},
		{"insert and retract", Delta{
			Insert:  []fact.Fact{fact.MustParseFact("E(a,b)")},
			Retract: []fact.Fact{fact.MustParseFact("E(a,b)")},
		}},
		{"nul byte", Delta{Insert: []fact.Fact{fact.New("E", "a", "b\x00c")}}},
	}
	for _, tc := range cases {
		if _, err := m.Apply(tc.d); err == nil {
			t.Errorf("%s: Apply accepted invalid delta", tc.name)
		}
	}
	// Validation failures must not poison the materialization.
	if _, err := m.Apply(Delta{Insert: []fact.Fact{fact.MustParseFact("E(a,b)")}}); err != nil {
		t.Fatalf("Apply after rejected deltas: %v", err)
	}
	checkAgainstRecompute(t, m)
}

func TestNaiveModeRejected(t *testing.T) {
	if _, err := New(datalog.MustParseProgram(tcProg), nil, Options{Mode: datalog.Naive}); err == nil {
		t.Fatalf("New accepted naive mode")
	}
}

func TestUnknownRelationsPassThrough(t *testing.T) {
	m := mustNew(t, tcProg, nil, Options{})
	f := fact.MustParseFact("Meta(run1)")
	if _, err := m.Apply(Delta{Insert: []fact.Fact{f}}); err != nil {
		t.Fatalf("Apply unknown rel: %v", err)
	}
	if !m.Has(f) {
		t.Fatalf("unknown-relation fact not materialized")
	}
	if _, err := m.Apply(Delta{Retract: []fact.Fact{f}}); err != nil {
		t.Fatalf("retract unknown rel: %v", err)
	}
	if m.Has(f) {
		t.Fatalf("unknown-relation fact not retracted")
	}
	checkAgainstRecompute(t, m)
}

// TestEventStreamDeterministic checks the two-plane contract: the
// incr event stream is byte-identical between serial and parallel
// modes and across worker counts.
func TestEventStreamDeterministic(t *testing.T) {
	run := func(mode datalog.EvalMode, workers int) string {
		var buf bytes.Buffer
		m := mustNew(t, noLoopProg, generate.Path("v", 4),
			Options{Mode: mode, Workers: workers, Sink: obs.NewSink(&buf)})
		deltas := []Delta{
			{Insert: []fact.Fact{fact.MustParseFact("E(v4,v0)"), fact.MustParseFact("E(v2,v2)")}},
			{Retract: []fact.Fact{fact.MustParseFact("E(v2,v2)"), fact.MustParseFact("E(v1,v2)")}},
			{Insert: []fact.Fact{fact.MustParseFact("E(v1,v2)")}, Retract: []fact.Fact{fact.MustParseFact("E(v4,v0)")}},
		}
		for i, d := range deltas {
			if _, err := m.Apply(d); err != nil {
				t.Fatalf("mode %v workers %d delta %d: %v", mode, workers, i, err)
			}
		}
		checkAgainstRecompute(t, m)
		return buf.String()
	}
	want := run(datalog.SemiNaive, 0)
	if !strings.Contains(want, obs.EvIncrApply) || !strings.Contains(want, obs.EvIncrStratum) {
		t.Fatalf("event stream missing incr kinds:\n%s", want)
	}
	for _, workers := range []int{1, 2, 7} {
		if got := run(datalog.Parallel, workers); got != want {
			t.Fatalf("parallel(%d) event stream diverged:\n--- serial ---\n%s--- parallel ---\n%s", workers, want, got)
		}
	}
}

func TestCountersPublished(t *testing.T) {
	reg := obs.NewRegistry()
	m := mustNew(t, tcProg, generate.Path("v", 3), Options{Reg: reg})
	if _, err := m.Apply(Delta{Retract: []fact.Fact{fact.MustParseFact("E(v0,v1)")}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Retraction from recursive TC runs DRed: overdeletion plus
	// recount-style bookkeeping, no support decrements.
	snap := reg.Snapshot()
	for _, name := range []string{obs.IncrApplies, obs.IncrBaseInserted, obs.IncrDerivedAdded, obs.IncrBaseRetracted, obs.IncrDerivedRemoved, obs.IncrSupportIncrements, obs.IncrOverdeleted} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s not published (snapshot %v)", name, snap.Counters)
		}
	}
	// A non-recursive stratum deletes by counting, which decrements.
	reg2 := obs.NewRegistry()
	m2 := mustNew(t, "P(x) :- E(x,y).\n", fact.MustParseInstance("E(a,b), E(a,c)"), Options{Reg: reg2})
	if _, err := m2.Apply(Delta{Retract: []fact.Fact{fact.MustParseFact("E(a,b)")}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if reg2.Snapshot().Counters[obs.IncrSupportDecrements] == 0 {
		t.Errorf("counting delete published no support decrements")
	}
	if snap.Histograms[obs.IncrApplyNs].Count == 0 {
		t.Errorf("apply span histogram empty")
	}
}

package incr

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/obs"
)

// This file is the maintenance algorithm. One Apply runs, per stratum
// in order: a deletion phase (exact-counting cascade on non-recursive
// strata, DRed on recursive ones), an insertion phase (semi-naive
// delta propagation with support counting), and — after the insertion
// phase, for DRed strata — a support recount over the over-deleted
// cone, since DRed discards counts instead of maintaining them.
//
// Exactly-once attribution. Support counts are exact, so every
// gained/lost derivation must be counted exactly once even though a
// valuation can contain several delta facts. The discipline: a
// valuation is attributed to the FIRST body position holding a
// current-delta fact — pinned-join tasks at position i skip any
// valuation whose earlier position j < i also grounds into the delta
// (and, for mixed pos/neg deltas, pos pins win over neg pins). Waves
// of a cascade use the same rule against the wave's fact set, with
// facts from previously committed waves excluded entirely (they were
// attributed when their wave ran).
//
// Determinism. All enumeration happens against views frozen for the
// phase (the pre-apply clone for deletions, the current
// materialization for insertions); results fold into commutative
// per-worker accumulators and every mutation is applied in sorted
// fact order at a barrier. Serial and parallel modes therefore
// produce identical materializations, support tables, and event
// streams.

// applyState carries one Apply's delta bookkeeping across strata:
// the pre-update view and the committed fact flow (everything
// inserted/removed so far, keyed by packed fact key and grouped by
// relation), which later strata pin their seed joins to. The packed
// keys let accept filters probe the sets with the matcher's scratch
// key bytes — no fact materialization, no allocation.
type applyState struct {
	st       ApplyStats
	oldX     *datalog.IndexedInstance
	insSet   map[string]bool
	delSet   map[string]bool
	insByRel map[string][]fact.Fact
	delByRel map[string][]fact.Fact
}

func newApplyState() *applyState {
	return &applyState{
		insSet:   make(map[string]bool),
		delSet:   make(map[string]bool),
		insByRel: make(map[string][]fact.Fact),
		delByRel: make(map[string][]fact.Fact),
	}
}

func (a *applyState) ins(f fact.Fact) {
	a.insSet[f.PackedKey()] = true
	a.insByRel[f.Rel()] = append(a.insByRel[f.Rel()], f)
}

func (a *applyState) del(f fact.Fact) {
	a.delSet[f.PackedKey()] = true
	a.delByRel[f.Rel()] = append(a.delByRel[f.Rel()], f)
}

// stratumStats is the per-stratum event payload.
type stratumStats struct {
	alg         string
	overdeleted int
	rederived   int
	added       int
	removed     int
	recounts    int
}

func (sb *stratumStats) any() bool {
	return sb.overdeleted > 0 || sb.rederived > 0 || sb.added > 0 || sb.removed > 0 || sb.recounts > 0
}

// Apply incrementally maintains the materialization under the delta
// and returns what it did. The delta is netted first (retracting an
// absent fact or inserting a present one is a no-op); a no-op delta
// returns zero stats without touching anything. A non-nil error from
// the maintenance phases (as opposed to delta validation) marks the
// materialization corrupt and every later call fails fast.
func (m *Materialization) Apply(d Delta) (ApplyStats, error) {
	if m.corrupt != nil {
		return ApplyStats{}, m.corrupt
	}
	ins, ret, err := m.netDelta(d)
	if err != nil {
		return ApplyStats{}, err
	}
	if len(ins) == 0 && len(ret) == 0 {
		return ApplyStats{}, nil
	}
	defer m.opts.Reg.Span(obs.IncrApplyNs)()

	a := newApplyState()
	// The deletion phases join "what held before" — keep the pre-update
	// view when anything can be lost: a retraction, or (with negation
	// anywhere in the program) an insertion into a negated relation.
	if len(ret) > 0 || (m.hasNeg && len(ins) > 0) {
		a.oldX = m.x.CloneView()
	}
	for _, f := range ret {
		m.base.Remove(f)
		a.del(f)
	}
	m.x.RemoveAll(ret)
	for _, f := range ins {
		m.base.Add(f)
		m.x.Add(f)
		a.ins(f)
	}
	a.st.BaseInserted, a.st.BaseRetracted = len(ins), len(ret)
	m.seq++

	fail := func(err error) (ApplyStats, error) {
		m.corrupt = fmt.Errorf("incr: materialization corrupt after failed apply %d: %w", m.seq, err)
		return a.st, m.corrupt
	}
	for si := range m.strata {
		s := &m.strata[si]
		sb := stratumStats{alg: "count"}
		var cone map[string]fact.Fact
		if m.deletionWork(s, a) {
			if s.recursive {
				sb.alg = "dred"
				cone, err = m.dredDelete(s, a, &sb)
			} else {
				err = m.countingDelete(s, a, &sb)
			}
			if err != nil {
				return fail(err)
			}
		}
		if m.insertionWork(s, a) {
			if err := m.insertPropagate(s, a, &sb); err != nil {
				return fail(err)
			}
		}
		if len(cone) > 0 {
			if err := m.recount(cone, a, &sb); err != nil {
				return fail(err)
			}
		}
		if sb.any() {
			a.st.Overdeleted += sb.overdeleted
			a.st.Rederived += sb.rederived
			a.st.DerivedAdded += sb.added
			a.st.DerivedRemoved += sb.removed
			a.st.Recounts += sb.recounts
			m.emitStratum(si, &sb)
		}
	}
	m.publishApply(&a.st)
	return a.st, nil
}

// ApplyTraced is Apply with a trace context: the maintenance run is
// recorded as one incr.apply span stamped with the resulting sequence
// number and the (deterministic) apply stats. The serving core's
// writer uses it so a request trace reaches all the way into view
// maintenance; with a disabled context it is exactly Apply.
func (m *Materialization) ApplyTraced(d Delta, tc obs.SpanCtx) (ApplyStats, error) {
	if !tc.Enabled() {
		return m.Apply(d)
	}
	sp := tc.Start(obs.SpanIncrApply)
	st, err := m.Apply(d)
	sp.SetSeq(m.seq)
	sp.Attr("inserted", st.BaseInserted).Attr("retracted", st.BaseRetracted)
	sp.Attr("added", st.DerivedAdded).Attr("removed", st.DerivedRemoved)
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.Finish()
	return st, err
}

// netDelta validates and nets the delta down to actual base changes,
// returned in sorted fact order.
func (m *Materialization) netDelta(d Delta) (ins, ret []fact.Fact, err error) {
	retM := make(map[string]fact.Fact)
	for _, f := range d.Retract {
		if err := m.checkBaseFact(f); err != nil {
			return nil, nil, err
		}
		retM[f.PackedKey()] = f
	}
	insM := make(map[string]fact.Fact)
	for _, f := range d.Insert {
		if err := m.checkBaseFact(f); err != nil {
			return nil, nil, err
		}
		if _, ok := retM[f.PackedKey()]; ok {
			return nil, nil, fmt.Errorf("incr: %v appears in both insert and retract of one delta", f)
		}
		insM[f.PackedKey()] = f
	}
	for k, f := range retM {
		if !m.base.Has(f) {
			delete(retM, k)
		}
	}
	for k, f := range insM {
		if m.base.Has(f) {
			delete(insM, k)
		}
	}
	return sortFactMap(insM), sortFactMap(retM), nil
}

func sortFactMap(fm map[string]fact.Fact) []fact.Fact {
	fs := make([]fact.Fact, 0, len(fm))
	for _, f := range fm {
		fs = append(fs, f)
	}
	fact.SortFacts(fs)
	return fs
}

func relsIntersect(rels map[string]bool, byRel map[string][]fact.Fact) bool {
	for rel, fs := range byRel {
		if rels[rel] && len(fs) > 0 {
			return true
		}
	}
	return false
}

// deletionWork reports whether the stratum can lose derivations:
// something it joins positively was removed, or something it negates
// was added.
func (m *Materialization) deletionWork(s *stratum, a *applyState) bool {
	return relsIntersect(s.posRels, a.delByRel) || relsIntersect(s.negRels, a.insByRel)
}

// insertionWork reports whether the stratum can gain derivations:
// something it joins positively was added, or something it negates
// was removed.
func (m *Materialization) insertionWork(s *stratum, a *applyState) bool {
	return relsIntersect(s.posRels, a.insByRel) || relsIntersect(s.negRels, a.delByRel)
}

// deleteSeedTasks builds the pinned joins enumerating, against the
// pre-update view, every valuation of a stratum rule that held before
// the apply and is destroyed by the committed delta — each valuation
// admitted by exactly one task.
//
// Attribution priority: NEG pins win. A lost valuation whose negated
// atom grounds into an inserted fact is counted at its first such neg
// position, and every pos pin — seed or cascade wave — skips it. The
// priority must be this way around: pos-side deaths accumulate wave
// by wave, so a seed cannot yet know that a pos fact will die, but
// the inserted facts of lower strata are all committed before the
// stratum's deletion phase starts, so insSet membership of neg
// grounds is already final. (Were pos pins to win, a valuation lost
// both ways would be counted at the neg seed AND again when its pos
// fact dies in a later wave.)
func (m *Materialization) deleteSeedTasks(s *stratum, a *applyState) []pinTask {
	var tasks []pinTask
	for ri, r := range s.rules {
		for i, at := range r.Pos {
			pinFacts := a.delByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			i := i
			nneg := len(r.Neg)
			tasks = append(tasks, pinTask{
				crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: a.oldX,
				accept: func(v *datalog.Valuation) bool {
					for k := 0; k < nneg; k++ {
						if a.insSet[string(v.NegKey(k))] {
							return false
						}
					}
					for j := 0; j < i; j++ {
						if a.delSet[string(v.PosKey(j))] {
							return false
						}
					}
					return true
				},
			})
		}
		for k, at := range r.Neg {
			pinFacts := a.insByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			k := k
			nc := s.cneg[ri][k]
			pin := nc.pin
			tasks = append(tasks, pinTask{
				crule: nc.c, pin: pin, pinFacts: pinFacts, view: a.oldX,
				accept: func(v *datalog.Valuation) bool {
					// A pinned fact that was deleted and re-added this
					// apply was present before — the valuation was
					// already blocked, nothing is lost. PosKey(pin) is
					// the converted r.Neg[k].
					if a.delSet[string(v.PosKey(pin))] {
						return false
					}
					for k2 := 0; k2 < k; k2++ {
						if a.insSet[string(v.NegKey(k2))] {
							return false
						}
					}
					return true
				},
			})
		}
	}
	return tasks
}

// insertSeedTasks is the mirror image against the current view:
// valuations that hold now and contain a committed-delta change — a
// newly inserted positive fact, or a negated atom grounding into a
// removed fact.
func (m *Materialization) insertSeedTasks(s *stratum, a *applyState) []pinTask {
	var tasks []pinTask
	for ri, r := range s.rules {
		for i, at := range r.Pos {
			pinFacts := a.insByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			i := i
			tasks = append(tasks, pinTask{
				crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: m.x,
				accept: func(v *datalog.Valuation) bool {
					for j := 0; j < i; j++ {
						if a.insSet[string(v.PosKey(j))] {
							return false
						}
					}
					return true
				},
			})
		}
		for k, at := range r.Neg {
			pinFacts := a.delByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			k := k
			nc := s.cneg[ri][k]
			pin := nc.pin
			tasks = append(tasks, pinTask{
				crule: nc.c, pin: pin, pinFacts: pinFacts, view: m.x,
				accept: func(v *datalog.Valuation) bool {
					// A pinned fact that was re-added after deletion is
					// present again — the valuation is still blocked,
					// nothing is gained. PosKey(pin) is the converted
					// r.Neg[k]; j < pin ranges over r.Pos.
					if a.insSet[string(v.PosKey(pin))] {
						return false
					}
					for j := 0; j < pin; j++ {
						if a.insSet[string(v.PosKey(j))] {
							return false
						}
					}
					for k2 := 0; k2 < k; k2++ {
						if a.delSet[string(v.NegKey(k2))] {
							return false
						}
					}
					return true
				},
			})
		}
	}
	return tasks
}

// insertWaveTasks pins this stratum's newly derived facts: waves only
// ever join positively (a stratum never negates its own heads), and
// attribution is first-wave-position with committed-delta facts
// excluded implicitly (a valuation through one was counted at its
// seed or earlier wave — see the accept filter in insertSeedTasks,
// whose insSet grows as waves commit).
func (m *Materialization) insertWaveTasks(s *stratum, wave []fact.Fact, waveSet map[string]bool) []pinTask {
	waveByRel := groupByRel(wave)
	var tasks []pinTask
	for ri, r := range s.rules {
		for i, at := range r.Pos {
			pinFacts := waveByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			i := i
			tasks = append(tasks, pinTask{
				crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: m.x,
				accept: func(v *datalog.Valuation) bool {
					for j := 0; j < i; j++ {
						if waveSet[string(v.PosKey(j))] {
							return false
						}
					}
					return true
				},
			})
		}
	}
	return tasks
}

// insertPropagate runs semi-naive delta insertion with support
// counting: seeds from the committed delta, then waves of newly
// derived facts until none appear. New facts are committed to the
// apply's insert flow so later strata see them.
func (m *Materialization) insertPropagate(s *stratum, a *applyState, sb *stratumStats) error {
	acc, err := m.runTasks(m.insertSeedTasks(s, a))
	if err != nil {
		return err
	}
	for {
		wave := m.applyIncrements(acc, a, sb)
		if len(wave) == 0 {
			return nil
		}
		acc, err = m.runTasks(m.insertWaveTasks(s, wave, keySet(wave)))
		if err != nil {
			return err
		}
	}
}

// applyIncrements commits one wave of gained derivations in sorted
// order: existing facts gain support; new facts enter the
// materialization and form the next wave.
func (m *Materialization) applyIncrements(acc *headAcc, a *applyState, sb *stratumStats) []fact.Fact {
	var wave []fact.Fact
	for _, e := range acc.entries() {
		f, n := e.f, e.n
		k := f.PackedKey()
		a.st.SupportIncrements += n
		if m.x.Has(f) {
			m.support[k] += n
			continue
		}
		m.x.Add(f)
		m.support[k] = n
		wave = append(wave, f)
		sb.added++
		a.ins(f)
	}
	return wave
}

// deleteWaveTasks pins a wave of facts that just died, joining against
// the pre-update view. Valuations through facts of previously
// committed deletions were attributed there and are skipped at any
// position; within the wave, first-position attribution applies.
func (m *Materialization) deleteWaveTasks(s *stratum, a *applyState, wave []fact.Fact, waveSet map[string]bool) []pinTask {
	waveByRel := groupByRel(wave)
	var tasks []pinTask
	for ri, r := range s.rules {
		for i, at := range r.Pos {
			pinFacts := waveByRel[at.Rel]
			if len(pinFacts) == 0 {
				continue
			}
			i := i
			npos, nneg := len(r.Pos), len(r.Neg)
			tasks = append(tasks, pinTask{
				crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: a.oldX,
				accept: func(v *datalog.Valuation) bool {
					for k := 0; k < nneg; k++ {
						if a.insSet[string(v.NegKey(k))] {
							return false
						}
					}
					for j := 0; j < npos; j++ {
						if j == i {
							continue
						}
						if a.delSet[string(v.PosKey(j))] {
							return false
						}
						if j < i && waveSet[string(v.PosKey(j))] {
							return false
						}
					}
					return true
				},
			})
		}
	}
	return tasks
}

// countingDelete maintains a non-recursive stratum under deletions by
// exact support counting: enumerate lost derivations against the
// pre-update view, decrement, and cascade facts whose count reaches
// zero. Soundness rests on acyclicity — within the stratum no fact's
// support can depend on itself, so "count reaches zero" is exactly
// "no derivation remains".
func (m *Materialization) countingDelete(s *stratum, a *applyState, sb *stratumStats) error {
	lost, err := m.runTasks(m.deleteSeedTasks(s, a))
	if err != nil {
		return err
	}
	for {
		wave, err := m.applyDecrements(lost, a, sb)
		if err != nil {
			return err
		}
		if len(wave) == 0 {
			return nil
		}
		// Enumerate the wave's consequences before committing the wave
		// to the delta flow: the wave's own tasks must still see these
		// facts as "current wave", not "already attributed".
		lost, err = m.runTasks(m.deleteWaveTasks(s, a, wave, keySet(wave)))
		if err != nil {
			return err
		}
		for _, f := range wave {
			a.del(f)
		}
	}
}

// applyDecrements commits one wave of lost derivations in sorted
// order. A support underflow is impossible by the attribution
// invariant (total decrements = lost derivations ≤ support), so
// hitting one means the engine is corrupt and the error says so
// loudly.
func (m *Materialization) applyDecrements(lost *headAcc, a *applyState, sb *stratumStats) ([]fact.Fact, error) {
	var wave []fact.Fact
	for _, e := range lost.entries() {
		f, n := e.f, e.n
		k := f.PackedKey()
		cur, ok := m.support[k]
		if !ok || cur < n {
			return nil, fmt.Errorf("incr: support underflow on %v: have %d, lost %d derivations", f, cur, n)
		}
		a.st.SupportDecrements += n
		if cur > n {
			m.support[k] = cur - n
			continue
		}
		delete(m.support, k)
		wave = append(wave, f)
		sb.removed++
	}
	m.x.RemoveAll(wave)
	return wave, nil
}

// dredDelete maintains a recursive stratum by delete–rederive:
// over-delete the full cone of facts with some derivation through the
// deleted inputs (support counts are useless here — cyclic support
// can keep a dead fact alive), then rederive survivors bottom-up from
// what remains. Returns the cone so Apply can recount supports after
// the insertion phase.
func (m *Materialization) dredDelete(s *stratum, a *applyState, sb *stratumStats) (map[string]fact.Fact, error) {
	cone := make(map[string]fact.Fact)
	var dlist []fact.Fact
	collect := func(acc *headAcc) []fact.Fact {
		var wave []fact.Fact
		for _, f := range acc.sortedFacts() {
			k := f.PackedKey()
			if _, ok := cone[k]; ok {
				continue
			}
			cone[k] = f
			dlist = append(dlist, f)
			wave = append(wave, f)
		}
		return wave
	}
	acc, err := m.runTasks(m.deleteSeedTasks(s, a))
	if err != nil {
		return nil, err
	}
	wave := collect(acc)
	for len(wave) > 0 {
		// Cone expansion needs no attribution filters: the cone is a
		// set, and over-collection is deduplicated right here.
		waveByRel := groupByRel(wave)
		var tasks []pinTask
		for ri, r := range s.rules {
			for i, at := range r.Pos {
				if pinFacts := waveByRel[at.Rel]; len(pinFacts) > 0 {
					tasks = append(tasks, pinTask{crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: a.oldX})
				}
			}
		}
		if acc, err = m.runTasks(tasks); err != nil {
			return nil, err
		}
		wave = collect(acc)
	}

	m.x.RemoveAll(dlist)
	for _, f := range dlist {
		delete(m.support, f.PackedKey())
	}
	sb.overdeleted = len(dlist)

	// Rederivation pass 1: batch-frozen derivability check of every
	// cone fact against the remainder — independent reads, so parallel
	// mode fans them out; the adds happen after the pass in sorted
	// order either way.
	fact.SortFacts(dlist)
	alive := make([]bool, len(dlist))
	if err := m.parallelEach(len(dlist), func(i int) error {
		ok, err := m.derivable(dlist[i])
		alive[i] = ok
		return err
	}); err != nil {
		return nil, err
	}
	var back []fact.Fact
	for i, f := range dlist {
		if alive[i] {
			m.x.Add(f)
			back = append(back, f)
			sb.rederived++
		}
	}
	// Waves: a rederived fact can witness derivations of other cone
	// members; any such head is derivable from the current view by
	// construction, so it comes straight back.
	for len(back) > 0 {
		waveByRel := groupByRel(back)
		var tasks []pinTask
		for ri, r := range s.rules {
			for i, at := range r.Pos {
				if pinFacts := waveByRel[at.Rel]; len(pinFacts) > 0 {
					tasks = append(tasks, pinTask{crule: s.crules[ri], pin: i, pinFacts: pinFacts, view: m.x})
				}
			}
		}
		acc, err := m.runTasks(tasks)
		if err != nil {
			return nil, err
		}
		back = back[:0]
		for _, f := range acc.sortedFacts() {
			if _, inCone := cone[f.PackedKey()]; !inCone || m.x.Has(f) {
				continue
			}
			m.x.Add(f)
			back = append(back, f)
			sb.rederived++
		}
	}

	for _, f := range dlist {
		if !m.x.Has(f) {
			a.del(f)
			sb.removed++
		}
	}
	return cone, nil
}

// recount rebuilds exact support counts for the cone facts that
// survived (or were re-added by the insertion phase) — DRed tracks
// the fact set, not the counts, so they are recomputed from the final
// materialization.
func (m *Materialization) recount(cone map[string]fact.Fact, a *applyState, sb *stratumStats) error {
	fs := sortFactMap(cone)
	counts := make([]int64, len(fs))
	if err := m.parallelEach(len(fs), func(i int) error {
		f := fs[i]
		if !m.x.Has(f) {
			return nil
		}
		n, err := m.countDerivations(f)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("incr: recount found no derivation for materialized fact %v", f)
		}
		counts[i] = n
		return nil
	}); err != nil {
		return err
	}
	for i, f := range fs {
		if counts[i] > 0 {
			m.support[f.PackedKey()] = counts[i]
			sb.recounts++
		}
	}
	return nil
}

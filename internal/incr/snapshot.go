package incr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// Snapshot format: JSON lines. The first line is a header carrying
// the format tag, the program source, and the apply sequence number;
// every following line is one materialized fact — base facts bare,
// derived facts with their support count:
//
//	{"snapshot":"calm.incr","v":1,"seq":3,"program":"T(x,y) :- E(x,y).\n..."}
//	{"f":"E(a,b)"}
//	{"f":"T(a,b)","n":1}
//
// Facts are written in sorted order and the header field order is
// fixed, so snapshotting is deterministic: snapshot → restore →
// snapshot is byte-identical, which is what cmd/calmd's restart test
// checks end to end.

const (
	snapshotTag     = "calm.incr"
	snapshotVersion = 1
)

type snapshotHeader struct {
	Snapshot string `json:"snapshot"`
	V        int    `json:"v"`
	Seq      int    `json:"seq"`
	Program  string `json:"program"`
}

type snapshotFact struct {
	F string `json:"f"`
	N int64  `json:"n,omitempty"`
}

// Snapshot writes the full materialization state to w.
func (m *Materialization) Snapshot(w io.Writer) error {
	if m.corrupt != nil {
		return m.corrupt
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{
		Snapshot: snapshotTag,
		V:        snapshotVersion,
		Seq:      m.seq,
		Program:  m.prog.String(),
	}); err != nil {
		return err
	}
	facts := m.x.Instance().Facts() // already in canonical SortFacts order
	for _, f := range facts {
		line := snapshotFact{F: f.String()}
		if !m.base.Has(f) {
			n := m.support[f.PackedKey()]
			if n <= 0 {
				return fmt.Errorf("incr: snapshot: derived fact %v has support %d", f, n)
			}
			line.N = n
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore rebuilds a materialization from a snapshot stream, with the
// given runtime options (mode, workers, instrumentation — these are
// not part of the snapshot). The fact set and support counts are
// taken on faith for speed; call Verify to audit a restored
// materialization against full recomputation.
func Restore(r io.Reader, opts Options) (*Materialization, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("incr: restore: empty snapshot")
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("incr: restore: bad header: %w", err)
	}
	if hdr.Snapshot != snapshotTag {
		return nil, fmt.Errorf("incr: restore: not a %s snapshot (tag %q)", snapshotTag, hdr.Snapshot)
	}
	if hdr.V != snapshotVersion {
		return nil, fmt.Errorf("incr: restore: unsupported snapshot version %d", hdr.V)
	}
	prog, err := datalog.ParseProgram(hdr.Program)
	if err != nil {
		return nil, fmt.Errorf("incr: restore: program: %w", err)
	}
	m, err := newEmpty(prog, opts)
	if err != nil {
		return nil, err
	}
	m.seq = hdr.Seq
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sf snapshotFact
		if err := json.Unmarshal(sc.Bytes(), &sf); err != nil {
			return nil, fmt.Errorf("incr: restore: line %d: %w", line, err)
		}
		f, err := fact.ParseFact(sf.F)
		if err != nil {
			return nil, fmt.Errorf("incr: restore: line %d: %w", line, err)
		}
		if !m.x.Add(f) {
			return nil, fmt.Errorf("incr: restore: line %d: duplicate fact %v", line, f)
		}
		if sf.N == 0 {
			if err := m.checkBaseFact(f); err != nil {
				return nil, fmt.Errorf("incr: restore: line %d: %w", line, err)
			}
			m.base.Add(f)
			continue
		}
		if sf.N < 0 {
			return nil, fmt.Errorf("incr: restore: line %d: negative support on %v", line, f)
		}
		if !m.idb.Has(f.Rel()) {
			return nil, fmt.Errorf("incr: restore: line %d: %v carries a support count but %s is not a derived relation", line, f, f.Rel())
		}
		m.support[f.PackedKey()] = sf.N
	}
	return m, sc.Err()
}

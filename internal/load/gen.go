package load

import (
	"fmt"
	"math/rand"
)

// gen produces one connection's seeded request stream. Writes churn
// directed edges over a small node set in a namespace private to the
// connection (w<id>n<j>), so concurrent connections never produce
// overlapping deltas and the instance stays bounded: every edge the
// generator inserts it later retracts with equal probability.
type gen struct {
	rng      *rand.Rand
	readFrac float64
	nodes    []string
	present  map[[2]int]bool
}

func newGen(cfg Config, id int) *gen {
	g := &gen{
		rng:      rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		readFrac: cfg.readFrac(),
		present:  make(map[[2]int]bool),
	}
	for j := 0; j < cfg.nodes(); j++ {
		g.nodes = append(g.nodes, fmt.Sprintf("w%dn%d", id, j))
	}
	return g
}

// next returns the next request line (without trailing newline) and
// whether it is a read.
func (g *gen) next() ([]byte, bool) {
	if g.rng.Float64() < g.readFrac {
		switch g.rng.Intn(3) {
		case 0:
			return []byte(`{"op":"stats"}`), true
		case 1:
			return []byte(`{"op":"query","rel":"E"}`), true
		default:
			return []byte(`{"op":"query","rel":"T"}`), true
		}
	}
	i := g.rng.Intn(len(g.nodes))
	j := g.rng.Intn(len(g.nodes) - 1)
	if j >= i {
		j++
	}
	k := [2]int{i, j}
	op := "insert"
	if g.present[k] {
		op = "retract"
	}
	g.present[k] = !g.present[k]
	req := fmt.Sprintf(`{"op":%q,"facts":["E(%s,%s)"]}`, op, g.nodes[i], g.nodes[j])
	return []byte(req), false
}

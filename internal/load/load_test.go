package load

import (
	"testing"
	"time"

	"repro/internal/serve"
)

func TestRunAgainstSelfServer(t *testing.T) {
	addr, shutdown, err := StartSelf(8, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	res, err := Run(Config{
		Addr:     addr,
		Conns:    3,
		Window:   8,
		Duration: 150 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("load run completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("load run saw %d protocol errors", res.Errors)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mix degenerated: reads=%d writes=%d", res.Reads, res.Writes)
	}
	if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
		t.Fatalf("implausible latencies: p50=%d p99=%d", res.P50Ns, res.P99Ns)
	}
}

func TestSerialWindowOne(t *testing.T) {
	addr, shutdown, err := StartSelf(8, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	res, err := Run(Config{
		Addr:     addr,
		Conns:    1,
		Window:   1,
		Duration: 100 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("serial baseline: ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestGenDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 5}
	a, b := newGen(cfg, 2), newGen(cfg, 2)
	for i := 0; i < 200; i++ {
		ra, _ := a.next()
		rb, _ := b.next()
		if string(ra) != string(rb) {
			t.Fatalf("request %d diverged for identical seeds: %s vs %s", i, ra, rb)
		}
	}
}

package load

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func TestRunAgainstSelfServer(t *testing.T) {
	addr, shutdown, err := StartSelf(8, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	res, err := Run(Config{
		Addr:     addr,
		Conns:    3,
		Window:   8,
		Duration: 150 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("load run completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("load run saw %d protocol errors", res.Errors)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mix degenerated: reads=%d writes=%d", res.Reads, res.Writes)
	}
	if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
		t.Fatalf("implausible latencies: p50=%d p99=%d", res.P50Ns, res.P99Ns)
	}
}

func TestSerialWindowOne(t *testing.T) {
	addr, shutdown, err := StartSelf(8, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	res, err := Run(Config{
		Addr:     addr,
		Conns:    1,
		Window:   1,
		Duration: 100 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("serial baseline: ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestGenDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 5}
	a, b := newGen(cfg, 2), newGen(cfg, 2)
	for i := 0; i < 200; i++ {
		ra, _ := a.next()
		rb, _ := b.next()
		if string(ra) != string(rb) {
			t.Fatalf("request %d diverged for identical seeds: %s vs %s", i, ra, rb)
		}
	}
}

// TestMultiAddrAgainstCluster drives the placement-aware client path:
// an in-process sharded cluster's per-shard endpoints as a
// comma-separated target set, connection i dialing endpoint i mod N.
func TestMultiAddrAgainstCluster(t *testing.T) {
	eps, shutdown, err := StartCluster(8, 2, cluster.PlaceComponent, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if len(eps.Shards) != 2 || eps.Router == "" || eps.Cluster == nil {
		t.Fatalf("cluster endpoints incomplete: %+v", eps)
	}

	res, err := Run(Config{
		Addrs:    eps.Shards,
		Conns:    4,
		Window:   8,
		Duration: 150 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("tenant-routed run: ops=%d errors=%d", res.Ops, res.Errors)
	}

	// The router endpoint serves the same protocol.
	rres, err := Run(Config{
		Addrs:    []string{eps.Router},
		Conns:    2,
		Window:   4,
		Duration: 100 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Ops == 0 || rres.Errors != 0 {
		t.Fatalf("router run: ops=%d errors=%d", rres.Ops, rres.Errors)
	}
}

// TestSingleElementAddrsMatchesAddr pins the satellite contract: a
// one-element Addrs list behaves exactly like the scalar Addr field —
// same generator streams, same dialing, so results differ only by
// timing noise.
func TestSingleElementAddrsMatchesAddr(t *testing.T) {
	addr, shutdown, err := StartSelf(8, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	for _, cfg := range []Config{
		{Addr: addr, Conns: 2, Window: 4, Duration: 80 * time.Millisecond, Seed: 3},
		{Addrs: []string{addr}, Conns: 2, Window: 4, Duration: 80 * time.Millisecond, Seed: 3},
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 || res.Errors != 0 {
			t.Fatalf("run %+v: ops=%d errors=%d", cfg.Addrs, res.Ops, res.Errors)
		}
	}
	if got := (Config{Addrs: []string{"x"}}).addrs()[0]; got != "x" {
		t.Fatalf("addrs() precedence broken: %q", got)
	}
	if got := (Config{Addr: "y"}).addrs()[0]; got != "y" {
		t.Fatalf("addrs() fallback broken: %q", got)
	}
}

// TestClusterChainInstancePlacement checks the shard-sweep workload
// generator: segments are disjoint components, the total edge budget
// is conserved, and component placement homes segment s on shard s.
func TestClusterChainInstancePlacement(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		inst, err := ClusterChainInstance(16, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if inst.Len() < 16-shards || inst.Len() > 16 {
			t.Fatalf("shards=%d: %d edges, want ~16", shards, inst.Len())
		}
		placed := cluster.PlaceInstance(inst, shards)
		used := make(map[int]int)
		for _, s := range placed {
			used[s]++
		}
		if len(used) != shards {
			t.Fatalf("shards=%d: segments cover only %d shards: %v", shards, len(used), used)
		}
	}
}

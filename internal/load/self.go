package load

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/serve"
)

// SelfProgram is the embedded workload program for self-contained
// runs: transitive closure, the paper's canonical monotone query.
const SelfProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
`

// StartSelf boots an in-process calmd serving core on a loopback
// port, seeded with a chain graph of the given length, and returns
// its address plus a shutdown function. It exists so calmload (and
// CI smoke) can measure the full TCP serving stack without an
// external daemon.
func StartSelf(chain int, opts serve.Options) (addr string, shutdown func(), err error) {
	if chain < 2 {
		chain = 2
	}
	var sb strings.Builder
	for i := 0; i < chain-1; i++ {
		fmt.Fprintf(&sb, "E(n%d,n%d)\n", i, i+1)
	}
	input, err := fact.ParseInstance(sb.String())
	if err != nil {
		return "", nil, err
	}
	m, err := incr.New(datalog.MustParseProgram(SelfProgram), input, incr.Options{})
	if err != nil {
		return "", nil, err
	}
	core := serve.NewCore(m, opts)
	srv, err := serve.NewTCPServer(core, "127.0.0.1:0", nil)
	if err != nil {
		core.Close()
		return "", nil, err
	}
	srv.Start()
	return srv.Addr(), func() {
		srv.Close()
		core.Close()
	}, nil
}

// ClusterEndpoints is what StartCluster boots: the router's address,
// one direct address per shard (the placement-aware client path), and
// the cluster itself for tests that drive crashes or quiescence.
type ClusterEndpoints struct {
	Router  string
	Shards  []string
	Cluster *cluster.Cluster
}

// StartCluster boots an in-process sharded calmd on loopback ports:
// one cluster of the given shard count over the transitive-closure
// program, seeded with the chain workload split into shards disjoint
// chain segments — separate co(I) components with node namespaces
// chosen so component placement homes segment s on shard s. Total
// chain length is conserved across shard counts, so a shard sweep
// compares the same base workload: what changes with N is that each
// shard holds a 1/N segment whose closure is ~1/N² the size, which is
// exactly the Theorem 5.3 locality the sweep measures.
//
// The per-shard addresses serve each shard's core directly — the
// smart-client path, where the client owns placement and never pays a
// gather. The router address serves the scatter/gather path. Load
// driven at the shard endpoints bypasses the global log; don't mix it
// with router-side writes when asserting cluster invariants.
func StartCluster(chain, shards int, placement cluster.PlacementKind, opts serve.Options) (*ClusterEndpoints, func(), error) {
	if shards < 1 {
		shards = 1
	}
	if chain < 2*shards {
		chain = 2 * shards
	}
	input, err := ClusterChainInstance(chain, shards)
	if err != nil {
		return nil, nil, err
	}
	c, err := cluster.New(datalog.MustParseProgram(SelfProgram), input, cluster.Options{
		Shards:    shards,
		Placement: placement,
		Serve:     opts,
	})
	if err != nil {
		return nil, nil, err
	}
	var servers []*serve.TCPServer
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
		c.Close()
	}
	rsrv, err := serve.NewTCPServerFor(cluster.NewRouter(c), "127.0.0.1:0", nil)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	servers = append(servers, rsrv)
	eps := &ClusterEndpoints{Router: rsrv.Addr(), Cluster: c}
	for j := 0; j < shards; j++ {
		ssrv, err := serve.NewTCPServer(c.ShardCore(j), "127.0.0.1:0", nil)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		servers = append(servers, ssrv)
		eps.Shards = append(eps.Shards, ssrv.Addr())
	}
	for _, s := range servers {
		s.Start()
	}
	return eps, closeAll, nil
}

// ClusterChainInstance builds the shard-sweep workload: shards
// disjoint chain segments totalling ~chain edges, segment s named so
// that component placement (hash of the component's minimum value)
// homes it on shard s. The namespace salt is searched deterministically
// — placement is a pure hash, so so is the search.
func ClusterChainInstance(chain, shards int) (*fact.Instance, error) {
	var sb strings.Builder
	per := chain / shards
	extra := chain % shards
	for s := 0; s < shards; s++ {
		nodes := per
		if s < extra {
			nodes++
		}
		if nodes < 2 {
			nodes = 2
		}
		seg, err := chainSegment(s, nodes, shards)
		if err != nil {
			return nil, err
		}
		sb.WriteString(seg)
	}
	return fact.ParseInstance(sb.String())
}

// chainSegment renders one chain segment of the given node count whose
// component placement lands on shard s.
func chainSegment(s, nodes, shards int) (string, error) {
	for salt := 0; salt < 64*shards; salt++ {
		prefix := fmt.Sprintf("g%ds%d", s, salt)
		var sb strings.Builder
		for j := 0; j < nodes-1; j++ {
			fmt.Fprintf(&sb, "E(%sn%03d,%sn%03d)\n", prefix, j, prefix, j+1)
		}
		seg, err := fact.ParseInstance(sb.String())
		if err != nil {
			return "", err
		}
		placed := cluster.PlaceInstance(seg, shards)
		for _, home := range placed {
			if home == s {
				return sb.String(), nil
			}
			break
		}
	}
	return "", fmt.Errorf("load: no namespace salt places segment %d on shard %d of %d", s, s, shards)
}

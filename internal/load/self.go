package load

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/serve"
)

// SelfProgram is the embedded workload program for self-contained
// runs: transitive closure, the paper's canonical monotone query.
const SelfProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
`

// StartSelf boots an in-process calmd serving core on a loopback
// port, seeded with a chain graph of the given length, and returns
// its address plus a shutdown function. It exists so calmload (and
// CI smoke) can measure the full TCP serving stack without an
// external daemon.
func StartSelf(chain int, opts serve.Options) (addr string, shutdown func(), err error) {
	if chain < 2 {
		chain = 2
	}
	var sb strings.Builder
	for i := 0; i < chain-1; i++ {
		fmt.Fprintf(&sb, "E(n%d,n%d)\n", i, i+1)
	}
	input, err := fact.ParseInstance(sb.String())
	if err != nil {
		return "", nil, err
	}
	m, err := incr.New(datalog.MustParseProgram(SelfProgram), input, incr.Options{})
	if err != nil {
		return "", nil, err
	}
	core := serve.NewCore(m, opts)
	srv, err := serve.NewTCPServer(core, "127.0.0.1:0", nil)
	if err != nil {
		core.Close()
		return "", nil, err
	}
	srv.Start()
	return srv.Addr(), func() {
		srv.Close()
		core.Close()
	}, nil
}

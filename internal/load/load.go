// Package load is a seeded load generator for the calmd wire
// protocol. It drives N concurrent TCP connections against a daemon,
// each pipelining a reproducible mix of reads (query/stats) and
// writes (insert/retract churn in a per-connection edge namespace),
// and reports throughput plus p50/p90/p99/p999 latency split by op
// class. Latencies accumulate in obs.LatencyHist log-scale histograms
// (per connection, merged exactly at the end), the same instrument the
// server publishes on /metrics — so client-observed and server-side
// quantiles are directly comparable (calmload -metrics-url does that
// cross-check).
//
// The generator is the measurement half of the PR-7 serving-core
// claim: a pipelined multi-connection workload on a read-heavy mix
// must beat the serial single-connection ping-pong baseline (one
// request in flight, one flush per request — the pre-epoch daemon's
// effective service discipline) by a wide margin, because reads no
// longer wait behind writes and responses coalesce into shared
// flushes.
package load

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// okPrefix starts every success response ("ok" is the first field of
// the wire format).
var okPrefix = []byte(`{"ok":true`)

// Config parameterizes one load run. Zero fields take the defaults
// noted below.
type Config struct {
	Addr string // calmd TCP address (required unless Addrs is set)
	// Addrs, when non-empty, is a set of endpoints: connection i dials
	// Addrs[i % len(Addrs)]. With per-shard endpoints of a sharded
	// deployment this is placement-aware ("tenant-routed") load: each
	// connection's private write namespace stays on one shard. A
	// single-element Addrs is byte-identical in behavior to Addr.
	Addrs    []string
	Conns    int           // concurrent connections (default 4)
	Window   int           // max in-flight requests per connection; 1 = serial ping-pong (default 32)
	Duration time.Duration // send window per connection (default 2s)
	Seed     int64         // base RNG seed; conn i derives Seed + i*7919
	ReadFrac float64       // fraction of requests that are reads (default 0.9)
	Nodes    int           // churn nodes per connection's write namespace (default 4)
}

func (c Config) addrs() []string {
	if len(c.Addrs) > 0 {
		return c.Addrs
	}
	return []string{c.Addr}
}

func (c Config) conns() int {
	if c.Conns > 0 {
		return c.Conns
	}
	return 4
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 32
}

func (c Config) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return 2 * time.Second
}

func (c Config) readFrac() float64 {
	if c.ReadFrac > 0 {
		return c.ReadFrac
	}
	return 0.9
}

func (c Config) nodes() int {
	if c.Nodes > 1 {
		return c.Nodes
	}
	return 4
}

// Result is one run's aggregate measurement.
type Result struct {
	Conns       int     `json:"conns"`
	Window      int     `json:"window"`
	ReadFrac    float64 `json:"read_frac"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`

	Ops    int64 `json:"ops"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"` // ok:false responses (protocol errors)

	OpsPerSec float64 `json:"ops_per_sec"`
	// Quantiles are estimated from merged log-scale histograms
	// (obs.LatencyHist, <=6.25% relative bucket-midpoint error), not
	// from sorted samples: the instrument matches the server's, and the
	// estimate is stable under merge order.
	P50Ns      int64 `json:"p50_ns"`
	P90Ns      int64 `json:"p90_ns"`
	P99Ns      int64 `json:"p99_ns"`
	P999Ns     int64 `json:"p999_ns"`
	ReadP50Ns  int64 `json:"read_p50_ns"`
	ReadP90Ns  int64 `json:"read_p90_ns"`
	ReadP99Ns  int64 `json:"read_p99_ns"`
	ReadP999Ns int64 `json:"read_p999_ns"`

	WriteP50Ns  int64 `json:"write_p50_ns"`
	WriteP90Ns  int64 `json:"write_p90_ns"`
	WriteP99Ns  int64 `json:"write_p99_ns"`
	WriteP999Ns int64 `json:"write_p999_ns"`

	// readHist / writeHist are the merged client-side histograms behind
	// the quantile fields, kept for the -metrics-url cross-check.
	readHist  *obs.LatencyHist
	writeHist *obs.LatencyHist
}

// Hists returns the merged client-side read and write latency
// histograms behind the Result's quantile fields (nil on a Result
// not produced by Run).
func (r *Result) Hists() (read, write *obs.LatencyHist) {
	return r.readHist, r.writeHist
}

// Comparison pairs a pipelined multi-connection run with the serial
// single-connection baseline over the same mix and duration.
type Comparison struct {
	Baseline  *Result `json:"baseline"`
	Pipelined *Result `json:"pipelined"`
	// Speedup is pipelined ops/sec over baseline ops/sec — the PR-7
	// acceptance gate requires >= 2 on read-heavy mixes.
	Speedup float64 `json:"speedup"`
}

// connStats accumulates one connection's measurements.
type connStats struct {
	readLat  obs.LatencyHist
	writeLat obs.LatencyHist
	errors   int64
}

// Run drives the configured workload and blocks until every
// connection has drained its in-flight responses.
func Run(cfg Config) (*Result, error) {
	if cfg.Addr == "" && len(cfg.Addrs) == 0 {
		return nil, errors.New("load: Config.Addr (or Addrs) is required")
	}
	n := cfg.conns()
	stats := make([]*connStats, n)
	errs := make([]error, n)
	start := time.Now()
	deadline := start.Add(cfg.duration())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats[id], errs[id] = runConn(cfg, id, deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Conns:       n,
		Window:      cfg.window(),
		ReadFrac:    cfg.readFrac(),
		Seed:        cfg.Seed,
		DurationSec: elapsed.Seconds(),
	}
	reads, writes := &obs.LatencyHist{}, &obs.LatencyHist{}
	for _, st := range stats {
		res.Errors += st.errors
		reads.Merge(&st.readLat)
		writes.Merge(&st.writeLat)
	}
	all := &obs.LatencyHist{}
	all.Merge(reads)
	all.Merge(writes)
	res.Reads = reads.Count()
	res.Writes = writes.Count()
	res.Ops = res.Reads + res.Writes
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	res.P50Ns, res.P90Ns, res.P99Ns, res.P999Ns = quantiles(all)
	res.ReadP50Ns, res.ReadP90Ns, res.ReadP99Ns, res.ReadP999Ns = quantiles(reads)
	res.WriteP50Ns, res.WriteP90Ns, res.WriteP99Ns, res.WriteP999Ns = quantiles(writes)
	res.readHist, res.writeHist = reads, writes
	return res, nil
}

// Compare runs the serial single-connection baseline, then the
// configured (multi-connection, pipelined) workload, against the same
// server.
func Compare(cfg Config) (*Comparison, error) {
	base := cfg
	base.Conns = 1
	base.Window = 1
	b, err := Run(base)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	p, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("pipelined: %w", err)
	}
	cmp := &Comparison{Baseline: b, Pipelined: p}
	if b.OpsPerSec > 0 {
		cmp.Speedup = p.OpsPerSec / b.OpsPerSec
	}
	return cmp, nil
}

// runConn opens one connection and pipelines requests until the
// deadline, then half-closes and drains the remaining responses.
// Request/response pairing relies on the protocol's per-connection
// ordering guarantee: a FIFO of send timestamps matches responses as
// they arrive.
func runConn(cfg Config, id int, deadline time.Time) (*connStats, error) {
	addrs := cfg.addrs()
	conn, err := net.Dial("tcp", addrs[id%len(addrs)])
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	type slot struct {
		start time.Time
		read  bool
	}
	window := cfg.window()
	q := make(chan slot, window)
	st := &connStats{}
	var readErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			s, ok := <-q
			if !ok {
				readErr = errors.New("response without a matching request")
				return
			}
			lat := time.Since(s.start)
			// Classify by prefix rather than full JSON decode: the field
			// order is part of the wire format ("ok" leads), and decoding
			// megabytes of response JSON on the shared CPU would measure
			// the client, not the server.
			if !bytes.HasPrefix(line, okPrefix) {
				st.errors++
			}
			if s.read {
				st.readLat.Observe(lat.Nanoseconds())
			} else {
				st.writeLat.Observe(lat.Nanoseconds())
			}
		}
		readErr = sc.Err()
	}()

	g := newGen(cfg, id)
	bw := bufio.NewWriter(conn)
	flushEvery := window / 2
	if flushEvery < 1 {
		flushEvery = 1
	}
	unflushed := 0
	var sendErr error
send:
	for time.Now().Before(deadline) {
		req, isRead := g.next()
		s := slot{start: time.Now(), read: isRead}
		select {
		case q <- s:
		default:
			// Window full: everything buffered must reach the server
			// before we block, or the responses we are waiting on can
			// never be produced.
			if err := bw.Flush(); err != nil {
				sendErr = err
				break send
			}
			select {
			case q <- s:
			case <-done:
				sendErr = errors.New("reader closed mid-run")
				break send
			}
		}
		bw.Write(req)
		bw.WriteByte('\n')
		unflushed++
		if unflushed >= flushEvery {
			if err := bw.Flush(); err != nil {
				sendErr = err
				break send
			}
			unflushed = 0
		}
	}
	if sendErr == nil {
		sendErr = bw.Flush()
	}
	close(q)
	// Half-close: the server sees EOF, drains in-flight work, and
	// closes its side, which ends the reader loop above.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-done
	if sendErr != nil {
		return nil, sendErr
	}
	if readErr != nil {
		return nil, readErr
	}
	return st, nil
}

// quantiles reads the standard latency quantiles off one histogram.
func quantiles(h *obs.LatencyHist) (p50, p90, p99, p999 int64) {
	return h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Quantile(0.999)
}

// Package load is a seeded load generator for the calmd wire
// protocol. It drives N concurrent TCP connections against a daemon,
// each pipelining a reproducible mix of reads (query/stats) and
// writes (insert/retract churn in a per-connection edge namespace),
// and reports throughput plus p50/p99 latency split by op class.
//
// The generator is the measurement half of the PR-7 serving-core
// claim: a pipelined multi-connection workload on a read-heavy mix
// must beat the serial single-connection ping-pong baseline (one
// request in flight, one flush per request — the pre-epoch daemon's
// effective service discipline) by a wide margin, because reads no
// longer wait behind writes and responses coalesce into shared
// flushes.
package load

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// okPrefix starts every success response ("ok" is the first field of
// the wire format).
var okPrefix = []byte(`{"ok":true`)

// Config parameterizes one load run. Zero fields take the defaults
// noted below.
type Config struct {
	Addr string // calmd TCP address (required unless Addrs is set)
	// Addrs, when non-empty, is a set of endpoints: connection i dials
	// Addrs[i % len(Addrs)]. With per-shard endpoints of a sharded
	// deployment this is placement-aware ("tenant-routed") load: each
	// connection's private write namespace stays on one shard. A
	// single-element Addrs is byte-identical in behavior to Addr.
	Addrs    []string
	Conns    int // concurrent connections (default 4)
	Window   int           // max in-flight requests per connection; 1 = serial ping-pong (default 32)
	Duration time.Duration // send window per connection (default 2s)
	Seed     int64         // base RNG seed; conn i derives Seed + i*7919
	ReadFrac float64       // fraction of requests that are reads (default 0.9)
	Nodes    int           // churn nodes per connection's write namespace (default 4)
}

func (c Config) addrs() []string {
	if len(c.Addrs) > 0 {
		return c.Addrs
	}
	return []string{c.Addr}
}

func (c Config) conns() int {
	if c.Conns > 0 {
		return c.Conns
	}
	return 4
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 32
}

func (c Config) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return 2 * time.Second
}

func (c Config) readFrac() float64 {
	if c.ReadFrac > 0 {
		return c.ReadFrac
	}
	return 0.9
}

func (c Config) nodes() int {
	if c.Nodes > 1 {
		return c.Nodes
	}
	return 4
}

// Result is one run's aggregate measurement.
type Result struct {
	Conns       int     `json:"conns"`
	Window      int     `json:"window"`
	ReadFrac    float64 `json:"read_frac"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`

	Ops    int64 `json:"ops"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"` // ok:false responses (protocol errors)

	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	ReadP50Ns  int64   `json:"read_p50_ns"`
	ReadP99Ns  int64   `json:"read_p99_ns"`
	WriteP50Ns int64   `json:"write_p50_ns"`
	WriteP99Ns int64   `json:"write_p99_ns"`
}

// Comparison pairs a pipelined multi-connection run with the serial
// single-connection baseline over the same mix and duration.
type Comparison struct {
	Baseline  *Result `json:"baseline"`
	Pipelined *Result `json:"pipelined"`
	// Speedup is pipelined ops/sec over baseline ops/sec — the PR-7
	// acceptance gate requires >= 2 on read-heavy mixes.
	Speedup float64 `json:"speedup"`
}

// connStats accumulates one connection's measurements.
type connStats struct {
	readLat  []time.Duration
	writeLat []time.Duration
	errors   int64
}

// Run drives the configured workload and blocks until every
// connection has drained its in-flight responses.
func Run(cfg Config) (*Result, error) {
	if cfg.Addr == "" && len(cfg.Addrs) == 0 {
		return nil, errors.New("load: Config.Addr (or Addrs) is required")
	}
	n := cfg.conns()
	stats := make([]*connStats, n)
	errs := make([]error, n)
	start := time.Now()
	deadline := start.Add(cfg.duration())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stats[id], errs[id] = runConn(cfg, id, deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Conns:       n,
		Window:      cfg.window(),
		ReadFrac:    cfg.readFrac(),
		Seed:        cfg.Seed,
		DurationSec: elapsed.Seconds(),
	}
	var all, reads, writes []time.Duration
	for _, st := range stats {
		res.Errors += st.errors
		reads = append(reads, st.readLat...)
		writes = append(writes, st.writeLat...)
	}
	all = append(append(all, reads...), writes...)
	res.Reads = int64(len(reads))
	res.Writes = int64(len(writes))
	res.Ops = res.Reads + res.Writes
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	res.P50Ns, res.P99Ns = percentiles(all)
	res.ReadP50Ns, res.ReadP99Ns = percentiles(reads)
	res.WriteP50Ns, res.WriteP99Ns = percentiles(writes)
	return res, nil
}

// Compare runs the serial single-connection baseline, then the
// configured (multi-connection, pipelined) workload, against the same
// server.
func Compare(cfg Config) (*Comparison, error) {
	base := cfg
	base.Conns = 1
	base.Window = 1
	b, err := Run(base)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	p, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("pipelined: %w", err)
	}
	cmp := &Comparison{Baseline: b, Pipelined: p}
	if b.OpsPerSec > 0 {
		cmp.Speedup = p.OpsPerSec / b.OpsPerSec
	}
	return cmp, nil
}

// runConn opens one connection and pipelines requests until the
// deadline, then half-closes and drains the remaining responses.
// Request/response pairing relies on the protocol's per-connection
// ordering guarantee: a FIFO of send timestamps matches responses as
// they arrive.
func runConn(cfg Config, id int, deadline time.Time) (*connStats, error) {
	addrs := cfg.addrs()
	conn, err := net.Dial("tcp", addrs[id%len(addrs)])
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	type slot struct {
		start time.Time
		read  bool
	}
	window := cfg.window()
	q := make(chan slot, window)
	st := &connStats{}
	var readErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			s, ok := <-q
			if !ok {
				readErr = errors.New("response without a matching request")
				return
			}
			lat := time.Since(s.start)
			// Classify by prefix rather than full JSON decode: the field
			// order is part of the wire format ("ok" leads), and decoding
			// megabytes of response JSON on the shared CPU would measure
			// the client, not the server.
			if !bytes.HasPrefix(line, okPrefix) {
				st.errors++
			}
			if s.read {
				st.readLat = append(st.readLat, lat)
			} else {
				st.writeLat = append(st.writeLat, lat)
			}
		}
		readErr = sc.Err()
	}()

	g := newGen(cfg, id)
	bw := bufio.NewWriter(conn)
	flushEvery := window / 2
	if flushEvery < 1 {
		flushEvery = 1
	}
	unflushed := 0
	var sendErr error
send:
	for time.Now().Before(deadline) {
		req, isRead := g.next()
		s := slot{start: time.Now(), read: isRead}
		select {
		case q <- s:
		default:
			// Window full: everything buffered must reach the server
			// before we block, or the responses we are waiting on can
			// never be produced.
			if err := bw.Flush(); err != nil {
				sendErr = err
				break send
			}
			select {
			case q <- s:
			case <-done:
				sendErr = errors.New("reader closed mid-run")
				break send
			}
		}
		bw.Write(req)
		bw.WriteByte('\n')
		unflushed++
		if unflushed >= flushEvery {
			if err := bw.Flush(); err != nil {
				sendErr = err
				break send
			}
			unflushed = 0
		}
	}
	if sendErr == nil {
		sendErr = bw.Flush()
	}
	close(q)
	// Half-close: the server sees EOF, drains in-flight work, and
	// closes its side, which ends the reader loop above.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-done
	if sendErr != nil {
		return nil, sendErr
	}
	if readErr != nil {
		return nil, readErr
	}
	return st, nil
}

// percentiles returns the p50 and p99 latencies in nanoseconds.
func percentiles(lat []time.Duration) (p50, p99 int64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i].Nanoseconds()
	}
	return at(0.50), at(0.99)
}

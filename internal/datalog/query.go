package datalog

import (
	"fmt"
	"sort"

	"repro/internal/fact"
)

// This file packages a Datalog¬ program as a query in the paper's
// sense (Section 2): a generic mapping from instances over an input
// schema σ to instances over an output schema σ'. A program P computes
// the query Q when Q(I) = P(I)|σ' for all I over σ. By the paper's
// convention the relation "O" denotes the intended output; NewQuery
// lets callers pick any set of output relations.

// AdomRelation is the conventional name of the unary active-domain
// relation used by the paper's example programs.
const AdomRelation = "Adom"

// Query evaluates a Datalog¬ program and restricts the result to the
// designated output relations. It satisfies the monotone.Query
// interface structurally.
type Query struct {
	prog *Program
	in   fact.Schema
	out  fact.Schema
	opts FixpointOptions
	name string
}

// NewQuery wraps the program as a query from its edb schema to the
// given output relations (which must be idb relations of the program).
func NewQuery(p *Program, outputRels ...string) (*Query, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(outputRels) == 0 {
		return nil, fmt.Errorf("datalog: query needs at least one output relation")
	}
	idb := p.IDB()
	out := make(fact.Schema)
	for _, rel := range outputRels {
		ar, ok := idb.Arity(rel)
		if !ok {
			return nil, fmt.Errorf("datalog: output relation %s is not an idb relation of the program", rel)
		}
		out[rel] = ar
	}
	return &Query{
		prog: p,
		in:   p.EDB(),
		out:  out,
		name: fmt.Sprintf("datalog[%v→%v]", p.EDB(), out),
	}, nil
}

// MustQuery is like NewQuery but panics on error.
func MustQuery(p *Program, outputRels ...string) *Query {
	q, err := NewQuery(p, outputRels...)
	if err != nil {
		panic(err)
	}
	return q
}

// OutputQuery wraps the program with the conventional output relation "O".
func OutputQuery(p *Program) (*Query, error) { return NewQuery(p, "O") }

// Program returns the underlying program.
func (q *Query) Program() *Program { return q.prog }

// InputSchema returns σ, the edb schema of the program.
func (q *Query) InputSchema() fact.Schema { return q.in.Clone() }

// OutputSchema returns σ', the designated output schema.
func (q *Query) OutputSchema() fact.Schema { return q.out.Clone() }

// Name returns a human-readable label for the query.
func (q *Query) Name() string { return q.name }

// SetName overrides the label.
func (q *Query) SetName(n string) *Query { q.name = n; return q }

// SetOptions overrides the fixpoint evaluation options.
func (q *Query) SetOptions(opts FixpointOptions) *Query { q.opts = opts; return q }

// Eval computes Q(I) = P(I)|σ'.
func (q *Query) Eval(input *fact.Instance) (*fact.Instance, error) {
	full, err := q.prog.EvalStratified(input, q.opts)
	if err != nil {
		return nil, err
	}
	return full.Restrict(q.out), nil
}

// WithAdomRules returns a copy of the program extended with the rules
// that compute the conventional Adom relation as the union of the
// projections of every position of every edb relation (Section 2: "We
// omit the rules to compute Adom"). These rules are connected (each
// has a single positive atom), so adding them never changes the
// con/semicon classification of the rest of the program.
func WithAdomRules(p *Program) *Program {
	out := NewProgram(append([]Rule{}, p.Rules...)...)
	edb := p.EDB()
	names := edb.Names()
	sort.Strings(names)
	for _, rel := range names {
		if rel == AdomRelation {
			continue
		}
		ar, _ := edb.Arity(rel)
		for pos := 0; pos < ar; pos++ {
			vars := make([]string, ar)
			for i := range vars {
				vars[i] = fmt.Sprintf("x%d", i)
			}
			out.Rules = append(out.Rules, Rule{
				Head: AtomV(AdomRelation, vars[pos]),
				Pos:  []Atom{AtomV(rel, vars...)},
			})
		}
	}
	return out
}

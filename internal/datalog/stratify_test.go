package datalog

import (
	"testing"

	"repro/internal/fact"
)

// Complement of transitive closure — the paper's QTC (Theorem 3.1),
// a two-stratum program.
var complementTC = `
	T(x,y) :- E(x,y).
	T(x,z) :- T(x,y), E(y,z).
	Adom(x) :- E(x,y).
	Adom(y) :- E(x,y).
	O(x,y) :- Adom(x), Adom(y), !T(x,y).
`

func TestStratifyComplementTC(t *testing.T) {
	p := MustParseProgram(complementTC)
	rho, err := p.Stratify()
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if err := p.CheckStratification(rho); err != nil {
		t.Fatalf("CheckStratification: %v", err)
	}
	if rho["O"] <= rho["T"] {
		t.Errorf("O must be strictly above T: rho = %v", rho)
	}
}

func TestStratifyWinMoveFails(t *testing.T) {
	// win-move is the canonical non-stratifiable program.
	p := MustParseProgram(`Win(x) :- Move(x,y), !Win(y).`)
	if _, err := p.Stratify(); err == nil {
		t.Fatal("win-move should not be stratifiable")
	}
	if p.IsStratifiable() {
		t.Error("IsStratifiable(win-move) = true")
	}
}

func TestStratifyEvenCycleFails(t *testing.T) {
	// Mutual negation through two predicates.
	p := MustParseProgram(`
		A(x) :- V(x), !B(x).
		B(x) :- V(x), !A(x).
	`)
	if p.IsStratifiable() {
		t.Error("mutually negating program claimed stratifiable")
	}
}

func TestStratifyPositiveRecursionOK(t *testing.T) {
	p := MustParseProgram(tcProgram)
	rho, err := p.Stratify()
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if rho.NumStrata() != 1 {
		t.Errorf("positive program should have one stratum, got %d", rho.NumStrata())
	}
}

func TestEvalStratifiedComplementTC(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	out, err := p.EvalStratified(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("EvalStratified: %v", err)
	}
	// Reachable pairs: (a,b),(b,c),(a,c). Complement over {a,b,c}²:
	for _, s := range []string{"O(a,a)", "O(b,a)", "O(b,b)", "O(c,a)", "O(c,b)", "O(c,c)"} {
		if !out.Has(fact.MustParseFact(s)) {
			t.Errorf("missing %s", s)
		}
	}
	for _, s := range []string{"O(a,b)", "O(b,c)", "O(a,c)"} {
		if out.Has(fact.MustParseFact(s)) {
			t.Errorf("%s should not be derived (pair is reachable)", s)
		}
	}
}

func TestEvalStratifiedThreeStrata(t *testing.T) {
	// stratum 1: R; stratum 2: S (negates R); stratum 3: O (negates S).
	p := MustParseProgram(`
		R(x) :- A(x,y).
		S(y) :- A(x,y), !R(y).
		O(x) :- A(x,y), !S(x).
	`)
	rho, err := p.Stratify()
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if rho.NumStrata() != 3 {
		t.Errorf("want 3 strata, got %d (%v)", rho.NumStrata(), rho)
	}
	in := fact.MustParseInstance(`A(a,b) A(b,c)`)
	out, err := p.EvalStratified(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("EvalStratified: %v", err)
	}
	// R = {a,b}; S = {c} (c not in R); O = {x | A(x,_) and x ∉ S} = {a,b}.
	want := fact.MustParseInstance(`A(a,b) A(b,c) R(a) R(b) S(c) O(a) O(b)`)
	if !out.Equal(want) {
		t.Errorf("got %v\nwant %v", out, want)
	}
}

func TestEvalStratifiedRejectsIDBInput(t *testing.T) {
	p := MustParseProgram(tcProgram)
	in := fact.MustParseInstance(`E(a,b) T(x,y)`)
	if _, err := p.EvalStratified(in, FixpointOptions{}); err == nil {
		t.Error("input containing idb facts should be rejected")
	}
}

func TestEvalStratifiedRejectsUnstratifiable(t *testing.T) {
	p := MustParseProgram(`Win(x) :- Move(x,y), !Win(y).`)
	in := fact.MustParseInstance(`Move(a,b)`)
	if _, err := p.EvalStratified(in, FixpointOptions{}); err == nil {
		t.Error("EvalStratified should reject unstratifiable programs")
	}
}

func TestCheckStratificationRejects(t *testing.T) {
	p := MustParseProgram(complementTC)
	// Flat stratification violates the negative edge T -> O.
	flat := Stratification{"T": 1, "Adom": 1, "O": 1}
	if err := p.CheckStratification(flat); err == nil {
		t.Error("flat stratification should be invalid for complementTC")
	}
	// Missing a predicate.
	missing := Stratification{"T": 1, "O": 2}
	if err := p.CheckStratification(missing); err == nil {
		t.Error("stratification missing Adom should be invalid")
	}
}

func TestStrataPartition(t *testing.T) {
	p := MustParseProgram(complementTC)
	rho, _ := p.Stratify()
	strata := p.Strata(rho)
	total := 0
	for _, s := range strata {
		total += len(s)
	}
	if total != len(p.Rules) {
		t.Errorf("strata contain %d rules, program has %d", total, len(p.Rules))
	}
	if len(strata) != 2 {
		t.Errorf("complementTC should split into 2 nonempty strata, got %d", len(strata))
	}
}

// The stratified output must not depend on the chosen stratification:
// evaluate under the canonical and a padded stratification.
func TestStratificationIndependence(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,a) E(c,c)`)
	out1, err := p.EvalStratified(in, FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Padded: push O even higher; semantics must agree.
	padded := Stratification{"T": 1, "Adom": 2, "O": 3}
	if err := p.CheckStratification(padded); err != nil {
		t.Fatalf("padded stratification invalid: %v", err)
	}
	x := IndexInstance(in.Clone())
	for _, stratum := range p.Strata(padded) {
		if err := evalStratum(stratum, x, FixpointOptions{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	current := x.Instance()
	if !current.Equal(out1) {
		t.Errorf("stratification-dependent output:\ncanonical %v\npadded    %v", out1, current)
	}
}

func TestQueryWrapper(t *testing.T) {
	p := MustParseProgram(complementTC)
	q, err := NewQuery(p, "O")
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	if !q.InputSchema().Equal(fact.MustSchema(map[string]int{"E": 2})) {
		t.Errorf("input schema = %v", q.InputSchema())
	}
	if !q.OutputSchema().Equal(fact.MustSchema(map[string]int{"O": 2})) {
		t.Errorf("output schema = %v", q.OutputSchema())
	}
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Only O facts in the result.
	for _, f := range out.Facts() {
		if f.Rel() != "O" {
			t.Errorf("non-output fact %v leaked", f)
		}
	}
	if !out.Has(fact.MustParseFact("O(b,a)")) {
		t.Error("O(b,a) missing")
	}
}

func TestNewQueryErrors(t *testing.T) {
	p := MustParseProgram(tcProgram)
	if _, err := NewQuery(p, "E"); err == nil {
		t.Error("edb relation as output should be rejected")
	}
	if _, err := NewQuery(p, "Nope"); err == nil {
		t.Error("unknown output relation should be rejected")
	}
	if _, err := NewQuery(p); err == nil {
		t.Error("empty output relation list should be rejected")
	}
}

func TestWithAdomRules(t *testing.T) {
	p := MustParseProgram(`O(x) :- Adom(x), !E(x,x).`)
	full := WithAdomRules(p)
	// Two extra rules for E/2.
	if len(full.Rules) != 3 {
		t.Fatalf("got %d rules, want 3:\n%s", len(full.Rules), full)
	}
	in := fact.MustParseInstance(`E(a,a) E(a,b)`)
	out, err := full.EvalStratified(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("EvalStratified: %v", err)
	}
	if !out.Has(fact.MustParseFact("O(b)")) || out.Has(fact.MustParseFact("O(a)")) {
		t.Errorf("Adom-based complement wrong: %v", out)
	}
}

package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
)

// Differential tests across the three evaluation modes: Naive is the
// oracle; SemiNaive and Parallel must agree with it exactly, on
// hand-picked programs and on randomly generated safe programs.

func evalAllModes(t *testing.T, p *Program, in *fact.Instance, maxRounds int) map[string]*fact.Instance {
	t.Helper()
	out := make(map[string]*fact.Instance)
	for _, opts := range []FixpointOptions{
		{Mode: Naive, MaxRounds: maxRounds},
		{Mode: SemiNaive, MaxRounds: maxRounds},
		{Mode: Parallel, MaxRounds: maxRounds, Workers: 4},
	} {
		res, err := p.EvalStratified(in, opts)
		if err != nil {
			t.Fatalf("%s: %v\nprogram:\n%s\ninput: %v", opts.Mode, err, p, in)
		}
		out[opts.Mode.String()] = res
	}
	return out
}

// TestCrossModeRandomPrograms is the cross-mode property test: on
// randomly generated safe programs (internal/generate) and random
// inputs, Naive ≡ SemiNaive ≡ Parallel.
func TestCrossModeRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		src := generate.RandomProgram(rng, 1+rng.Intn(4))
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		if !p.IsStratifiable() {
			continue
		}
		in := generate.RandomGraph(rng, "v", 1+rng.Intn(5), rng.Intn(8))
		for k := 0; k < rng.Intn(3); k++ {
			in.Add(fact.New("A", fact.Value(fmt.Sprintf("v%d", rng.Intn(5)))))
		}
		res := evalAllModes(t, p, in, 0)
		if !res["naive"].Equal(res["seminaive"]) || !res["naive"].Equal(res["parallel"]) {
			t.Fatalf("modes disagree on program:\n%s\ninput: %v\nnaive     = %v\nseminaive = %v\nparallel  = %v",
				p, in, res["naive"], res["seminaive"], res["parallel"])
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d stratifiable programs checked; generator drifted", checked)
	}
}

// TestParallelMatchesSemiNaiveWorkloads pins the agreement on the
// benchmark workloads at several worker counts.
func TestParallelMatchesSemiNaiveWorkloads(t *testing.T) {
	tc := MustParseProgram(tcProgram)
	inputs := map[string]*fact.Instance{
		"chain":  generate.Path("v", 24),
		"cycle":  generate.Cycle("v", 16),
		"random": generate.RandomGraph(rand.New(rand.NewSource(3)), "v", 12, 40),
		"empty":  fact.NewInstance(),
	}
	for name, in := range inputs {
		want, err := tc.Fixpoint(in, FixpointOptions{Mode: SemiNaive})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 8} {
			got, err := tc.Fixpoint(in, FixpointOptions{Mode: Parallel, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s workers=%d: parallel=%v want %v", name, workers, got, want)
			}
		}
	}
}

// TestParallelStratifiedNegation exercises the parallel engine across
// stratum boundaries (negation over a lower stratum).
func TestParallelStratifiedNegation(t *testing.T) {
	p := MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y) :- Adom(x), Adom(y), !T(x,y).
	`)
	in := generate.Path("v", 8)
	res := evalAllModes(t, p, in, 0)
	if !res["naive"].Equal(res["parallel"]) || !res["naive"].Equal(res["seminaive"]) {
		t.Fatalf("stratified negation disagreement:\nnaive    = %v\nparallel = %v", res["naive"], res["parallel"])
	}
}

// TestMaxRoundsBoundary: MaxRounds bounds *productive* TP rounds, and
// all three modes must enforce the bound identically. TC of a chain
// with n edges needs exactly n productive rounds (round k derives the
// paths of length k).
func TestMaxRoundsBoundary(t *testing.T) {
	p := MustParseProgram(tcProgram)
	const edges = 4 // needs exactly 4 productive rounds
	in := generate.Path("v", edges)
	for _, opts := range []FixpointOptions{
		{Mode: Naive},
		{Mode: SemiNaive},
		{Mode: Parallel, Workers: 4},
	} {
		exact := opts
		exact.MaxRounds = edges
		if _, err := p.Fixpoint(in, exact); err != nil {
			t.Errorf("%s: MaxRounds=%d should accept a %d-round fixpoint: %v", opts.Mode, edges, edges, err)
		}
		tooFew := opts
		tooFew.MaxRounds = edges - 1
		if _, err := p.Fixpoint(in, tooFew); err == nil {
			t.Errorf("%s: MaxRounds=%d should reject a %d-round fixpoint", opts.Mode, edges-1, edges)
		}
	}
}

// A program that derives nothing converges in zero productive rounds
// and must pass under any positive bound — and even MaxRounds=1.
func TestMaxRoundsUnproductiveProgram(t *testing.T) {
	p := MustParseProgram(`O(x) :- E(x,x).`)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`) // no self-loop: nothing derived
	for _, mode := range []EvalMode{Naive, SemiNaive, Parallel} {
		if _, err := p.Fixpoint(in, FixpointOptions{Mode: mode, MaxRounds: 1}); err != nil {
			t.Errorf("%s: unproductive program rejected at MaxRounds=1: %v", mode, err)
		}
	}
}

// A single-productive-round program must pass at MaxRounds=1 in every
// mode — this is the boundary the old loops disagreed on (the
// confirming pass counted against the bound).
func TestMaxRoundsSingleRound(t *testing.T) {
	p := MustParseProgram(`O(x,y) :- E(x,y).`)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	for _, mode := range []EvalMode{Naive, SemiNaive, Parallel} {
		out, err := p.Fixpoint(in, FixpointOptions{Mode: mode, MaxRounds: 1})
		if err != nil {
			t.Errorf("%s: single-round program rejected at MaxRounds=1: %v", mode, err)
			continue
		}
		if !out.Has(fact.MustParseFact("O(a,b)")) {
			t.Errorf("%s: output missing: %v", mode, out)
		}
	}
}

func TestEvalModeStringParse(t *testing.T) {
	for _, m := range []EvalMode{SemiNaive, Naive, Parallel} {
		got, err := ParseEvalMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseEvalMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseEvalMode("bogus"); err == nil {
		t.Error("ParseEvalMode accepted bogus mode")
	}
}

// --- relIndex.candidates unit tests (multi-bound atoms) ---

func mustRule(t *testing.T, src string) Rule {
	t.Helper()
	r, err := ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCandidatesPicksNarrowestBoundPosition(t *testing.T) {
	idx := indexInstance(fact.MustParseInstance(`E(a,b) E(a,c) E(a,d) E(b,d)`))
	atom := mustRule(t, `O(x,y) :- E(x,y).`).Pos[0]

	// Nothing bound: the full relation.
	if got := idx.candidates(atom, Bindings{}); len(got) != 4 {
		t.Errorf("unbound candidates = %d facts, want 4", len(got))
	}
	// x=a narrows to 3.
	if got := idx.candidates(atom, Bindings{"x": "a"}); len(got) != 3 {
		t.Errorf("x=a candidates = %d facts, want 3", len(got))
	}
	// Both bound: the narrowest position wins (y=d has 2 < x=a's 3).
	if got := idx.candidates(atom, Bindings{"x": "a", "y": "d"}); len(got) != 2 {
		t.Errorf("x=a,y=d candidates = %d facts, want 2 (narrowest position)", len(got))
	}
	// Reversed binding order must not matter: y=d first, x=b second
	// (x=b has 1 < y=d's 2).
	if got := idx.candidates(atom, Bindings{"y": "d", "x": "b"}); len(got) != 1 {
		t.Errorf("y=d,x=b candidates = %d facts, want 1", len(got))
	}
}

func TestCandidatesEmptyProbeShortCircuits(t *testing.T) {
	idx := indexInstance(fact.MustParseInstance(`E(a,b) E(a,c)`))
	atom := mustRule(t, `O(x,y) :- E(x,y).`).Pos[0]

	// A bound value absent from a position proves no fact can match,
	// even if a later position has many candidates.
	if got := idx.candidates(atom, Bindings{"x": "zzz", "y": "b"}); len(got) != 0 {
		t.Errorf("absent x: candidates = %d facts, want 0", len(got))
	}
	if got := idx.candidates(atom, Bindings{"x": "a", "y": "zzz"}); len(got) != 0 {
		t.Errorf("absent y: candidates = %d facts, want 0", len(got))
	}
}

func TestCandidatesConstantArgs(t *testing.T) {
	idx := indexInstance(fact.MustParseInstance(`E(a,b) E(b,b) E(c,a)`))
	atom := mustRule(t, `O(x) :- E(x,"b").`).Pos[0]
	if got := idx.candidates(atom, Bindings{}); len(got) != 2 {
		t.Errorf("constant-arg candidates = %d facts, want 2", len(got))
	}
	atom = mustRule(t, `O(x) :- E(x,"nope").`).Pos[0]
	if got := idx.candidates(atom, Bindings{}); len(got) != 0 {
		t.Errorf("absent-constant candidates = %d facts, want 0", len(got))
	}
}

// The narrowest-index selection must never lose answers: a rule with a
// multi-bound atom (both variables bound by an earlier atom) derives
// exactly what naive enumeration derives. Guards against candidate
// short-circuiting dropping facts.
func TestMultiBoundAtomJoinComplete(t *testing.T) {
	p := MustParseProgram(`O(x,y) :- E(x,y), F(x,y).`)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		in := fact.NewInstance()
		for k := 0; k < 10; k++ {
			a := fact.Value(fmt.Sprintf("v%d", rng.Intn(4)))
			b := fact.Value(fmt.Sprintf("v%d", rng.Intn(4)))
			if rng.Intn(2) == 0 {
				in.Add(fact.New("E", a, b))
			} else {
				in.Add(fact.New("F", a, b))
			}
		}
		res := evalAllModes(t, p, in, 0)
		if !res["naive"].Equal(res["seminaive"]) || !res["naive"].Equal(res["parallel"]) {
			t.Fatalf("multi-bound join disagreement on %v", in)
		}
	}
}

// --- IndexedInstance ---

func TestIndexedInstanceIncrementalAdd(t *testing.T) {
	in := fact.MustParseInstance(`E(a,b)`)
	x := IndexInstance(in)
	if !x.Add(fact.MustParseFact("E(b,c)")) {
		t.Fatal("Add of new fact returned false")
	}
	if x.Add(fact.MustParseFact("E(b,c)")) {
		t.Fatal("duplicate Add returned true")
	}
	// The incrementally extended index must agree with a fresh one.
	atom := mustRule(t, `O(x,y) :- E(x,y).`).Pos[0]
	fresh := indexInstance(x.Instance())
	for _, b := range []Bindings{{}, {"x": "b"}, {"y": "c"}} {
		if len(x.idx.candidates(atom, b)) != len(fresh.candidates(atom, b)) {
			t.Errorf("incremental index diverged from fresh index under %v", b)
		}
	}
}

func TestIndexedValuationsMatchPackageValuations(t *testing.T) {
	r := mustRule(t, `P(x,z) :- E(x,y), E(y,z), !E(z,x).`)
	in := generate.RandomGraph(rand.New(rand.NewSource(5)), "v", 8, 30)
	count := func(enum func(func(Bindings) error) error) int {
		n := 0
		if err := enum(func(Bindings) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := count(func(emit func(Bindings) error) error { return Valuations(r, in, emit) })
	x := IndexInstance(in)
	indexed := count(func(emit func(Bindings) error) error { return x.Valuations(r, emit) })
	par := count(func(emit func(Bindings) error) error { return x.ValuationsParallel(r, 4, emit) })
	if plain != indexed || plain != par {
		t.Fatalf("valuation counts diverge: plain=%d indexed=%d parallel=%d", plain, indexed, par)
	}
}

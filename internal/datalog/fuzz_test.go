package datalog

import (
	"testing"

	"repro/internal/fact"
)

// FuzzParseProgram checks the rule parser never panics and that every
// accepted program survives a print/parse round trip.
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"T(x,y) :- E(x,y).",
		"T(x,z) :- T(x,y), E(y,z).",
		"O(x) :- A(x), !B(x), x != y, A(y).",
		"Win(x) :- Move(x,y), ¬Win(y).",
		`O(x) :- E(x,"const"), x != "other".`,
		"O(x) <- A(x).",
		"O(x) :- A(x)", // missing dot
		":- A(x).",     // missing head
		"O(x,y) :- .",  // empty body
		"# just a comment",
		"",
		"Id(*, x) :- E(x,y).", // invention symbol rejected here
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProgram(s)
		if err != nil {
			return
		}
		back, err := ParseProgram(p.String())
		if err != nil {
			t.Fatalf("accepted program prints unparseable form:\n%s\n%v", p, err)
		}
		if back.String() != p.String() {
			t.Fatalf("round trip changed program:\n%s\nvs\n%s", p, back)
		}
	})
}

// FuzzEvalSmall evaluates accepted programs on a tiny fixed instance;
// the engine must never panic, and all evaluation modes — naive,
// semi-naive and parallel — must agree.
func FuzzEvalSmall(f *testing.F) {
	for _, seed := range []string{
		"T(x,y) :- E(x,y).",
		"T(x,z) :- T(x,y), E(y,z).",
		"O(x) :- E(x,x).",
		"O(x,y) :- E(x,y), !E(y,x), x != y.",
	} {
		f.Add(seed)
	}
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(a,a)`)
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProgram(s)
		if err != nil {
			return
		}
		// Skip programs whose idb relations collide with the input.
		if p.IDB().Has("E") {
			return
		}
		if !p.IsStratifiable() {
			return
		}
		a, errA := p.EvalStratified(in, FixpointOptions{Mode: Naive, MaxRounds: 64})
		b, errB := p.EvalStratified(in, FixpointOptions{Mode: SemiNaive, MaxRounds: 64})
		c, errC := p.EvalStratified(in, FixpointOptions{Mode: Parallel, MaxRounds: 64, Workers: 4})
		if (errA == nil) != (errB == nil) || (errA == nil) != (errC == nil) {
			t.Fatalf("modes disagree on error: naive=%v seminaive=%v parallel=%v", errA, errB, errC)
		}
		if errA == nil && (!a.Equal(b) || !a.Equal(c)) {
			t.Fatalf("modes disagree on program:\n%s\nnaive=%v\nseminaive=%v\nparallel=%v", p, a, b, c)
		}
	})
}

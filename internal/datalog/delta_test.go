package datalog

import (
	"sort"
	"testing"

	"repro/internal/fact"
)

// --- delta-hook surface (Ground, BindHead, EvalPinned, MatchBound) ---

func TestGround(t *testing.T) {
	r := mustRule(t, `O(x,"c") :- E(x,y).`)
	f, err := Ground(r.Head, Bindings{"x": "a", "y": "b"})
	if err != nil {
		t.Fatalf("Ground: %v", err)
	}
	if !f.Equal(fact.New("O", "a", "c")) {
		t.Fatalf("Ground = %v, want O(a,c)", f)
	}
	if _, err := Ground(r.Head, Bindings{"y": "b"}); err == nil {
		t.Fatal("Ground accepted unbound head variable")
	}
}

func TestBindHead(t *testing.T) {
	r := mustRule(t, `O(x,x,"c") :- E(x,y).`)
	b, ok := r.BindHead(fact.New("O", "a", "a", "c"))
	if !ok || b["x"] != "a" {
		t.Fatalf("BindHead = %v, %v; want x=a bound", b, ok)
	}
	for _, bad := range []fact.Fact{
		fact.New("O", "a", "b", "c"), // repeated variable disagrees
		fact.New("O", "a", "a", "d"), // constant mismatch
		fact.New("O", "a", "a"),      // arity mismatch
		fact.New("P", "a", "a", "c"), // relation mismatch
	} {
		if _, ok := r.BindHead(bad); ok {
			t.Errorf("BindHead unified with %v", bad)
		}
	}
}

func TestEvalPinned(t *testing.T) {
	x := IndexInstance(fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`))
	r := mustRule(t, `T(x,z) :- E(x,y), E(y,z).`)

	// Pinning E(b,c) at position 0 enumerates only joins through it.
	var heads []string
	pin := []fact.Fact{fact.New("E", "b", "c")}
	err := x.EvalPinned(r, 0, pin, func(h fact.Fact, b Bindings) error {
		heads = append(heads, h.String())
		return nil
	})
	if err != nil {
		t.Fatalf("EvalPinned: %v", err)
	}
	if len(heads) != 1 || heads[0] != "T(b,d)" {
		t.Fatalf("pinned heads = %v, want [T(b,d)]", heads)
	}

	// The pinned fact need not be present in the instance.
	heads = nil
	ghost := []fact.Fact{fact.New("E", "d", "e")}
	if err := x.EvalPinned(r, 1, ghost, func(h fact.Fact, b Bindings) error {
		heads = append(heads, h.String())
		return nil
	}); err != nil {
		t.Fatalf("EvalPinned ghost: %v", err)
	}
	if len(heads) != 1 || heads[0] != "T(c,e)" {
		t.Fatalf("ghost-pinned heads = %v, want [T(c,e)]", heads)
	}

	if err := x.EvalPinned(r, 2, pin, func(fact.Fact, Bindings) error { return nil }); err == nil {
		t.Fatal("EvalPinned accepted out-of-range pin")
	}
}

func TestMatchBoundCountsDerivations(t *testing.T) {
	// A diamond: T(a,d) has two length-2 derivations.
	x := IndexInstance(fact.MustParseInstance(`E(a,b) E(b,d) E(a,c) E(c,d)`))
	r := mustRule(t, `T(x,z) :- E(x,y), E(y,z).`)
	init, ok := r.BindHead(fact.New("T", "a", "d"))
	if !ok {
		t.Fatal("BindHead failed")
	}
	n := 0
	if err := x.MatchBound(r, init, func(Bindings) error { n++; return nil }); err != nil {
		t.Fatalf("MatchBound: %v", err)
	}
	if n != 2 {
		t.Fatalf("MatchBound counted %d derivations of T(a,d), want 2", n)
	}
}

// --- mutation and view semantics (Remove, RemoveAll, Clone, CloneView) ---

func relNames(x *IndexedInstance, rel string, arity int) []string {
	var out []string
	atom := Atom{Rel: rel, Args: make([]Term, arity)}
	for i := range atom.Args {
		atom.Args[i] = V("v" + string(rune('a'+i)))
	}
	for _, f := range x.idx.candidates(atom, Bindings{}) {
		out = append(out, f.String())
	}
	sort.Strings(out)
	return out
}

func TestRemoveAllBatches(t *testing.T) {
	x := IndexInstance(fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) F(a) F(b)`))
	n := x.RemoveAll([]fact.Fact{
		fact.New("E", "a", "b"),
		fact.New("F", "b"),
		fact.New("E", "z", "z"), // absent: skipped, not counted
	})
	if n != 2 {
		t.Fatalf("RemoveAll removed %d, want 2", n)
	}
	if x.Len() != 3 || x.Has(fact.New("E", "a", "b")) || x.Has(fact.New("F", "b")) {
		t.Fatalf("state after RemoveAll: %v", x.Instance())
	}
	// The index agrees with the instance.
	if got := relNames(x, "E", 2); len(got) != 2 {
		t.Fatalf("E posting list = %v, want 2 facts", got)
	}
	// Removed argument keys are gone, shared ones remain.
	if lp := x.idx.byArg[idxKey{fact.InternString("E"), 0, fact.InternString("a")}]; lp != nil && len(*lp) != 0 {
		t.Fatalf("byArg[E,0,a] = %v, want empty", *lp)
	}
	if lp := x.idx.byArg[idxKey{fact.InternString("E"), 1, fact.InternString("c")}]; lp == nil || len(*lp) != 1 {
		t.Fatalf("byArg[E,1,c] = %v, want 1 fact", lp)
	}
}

// TestCloneIsolation checks both clone flavors against mutation of the
// original: a full Clone stays mutable and independent; a CloneView
// answers reads as of the snapshot.
func TestCloneIsolation(t *testing.T) {
	x := IndexInstance(fact.MustParseInstance(`E(a,b) E(b,c)`))
	clone := x.Clone()
	view := x.CloneView()

	x.Add(fact.New("E", "c", "d"))
	x.Remove(fact.New("E", "a", "b"))

	for name, snap := range map[string]*IndexedInstance{"Clone": clone, "CloneView": view} {
		if snap.Len() != 2 {
			t.Errorf("%s.Len = %d after mutating original, want 2", name, snap.Len())
		}
		if !snap.Has(fact.New("E", "a", "b")) || snap.Has(fact.New("E", "c", "d")) {
			t.Errorf("%s sees the original's mutations", name)
		}
		if got := relNames(snap, "E", 2); len(got) != 2 {
			t.Errorf("%s posting list = %v, want the 2 snapshot facts", name, got)
		}
	}

	// The full clone is independently mutable.
	clone.Add(fact.New("E", "x", "y"))
	if x.Has(fact.New("E", "x", "y")) || view.Has(fact.New("E", "x", "y")) {
		t.Error("mutating the clone leaked into the original or the view")
	}

	// Negation guards on a view read the snapshot, not the original.
	r := mustRule(t, `O(x) :- E(x,y), !E(y,x).`)
	x.Add(fact.New("E", "b", "a")) // would block O(a) now
	var heads []string
	if err := view.EvalPinned(r, 0, []fact.Fact{fact.New("E", "a", "b")}, func(h fact.Fact, b Bindings) error {
		heads = append(heads, h.String())
		return nil
	}); err != nil {
		t.Fatalf("EvalPinned on view: %v", err)
	}
	if len(heads) != 1 {
		t.Fatalf("view negation saw post-snapshot facts: heads = %v", heads)
	}
}

func TestCloneViewIsReadOnly(t *testing.T) {
	x := IndexInstance(fact.MustParseInstance(`E(a,b)`))
	view := x.CloneView()
	for name, mutate := range map[string]func(){
		"Add":       func() { view.Add(fact.New("E", "c", "d")) },
		"Remove":    func() { view.Remove(fact.New("E", "a", "b")) },
		"RemoveAll": func() { view.RemoveAll([]fact.Fact{fact.New("E", "a", "b")}) },
		"Instance":  func() { view.Instance() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a CloneView did not panic", name)
				}
			}()
			mutate()
		}()
	}
}

package datalog

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements the parallel round executor of the semi-naive
// fixpoint: each round's (rule, pinned-atom, fact-chunk) join tasks
// are fanned across a worker pool. Workers read the shared
// IndexedInstance (frozen for the duration of a round) and derive into
// private buffers; the buffers are merged into the next delta at the
// round barrier, on a single goroutine. Rule evaluation is a pure
// function of (rule, index, instance, chunk), and derived facts carry
// set semantics, so the merged result is independent of scheduling —
// Parallel mode is deterministic and agrees with SemiNaive exactly.
//
// The design follows the coordination-free evaluation direction of
// Interlandi & Tanca ("A Datalog-based Computational Model for
// Coordination-free, Data-Parallel Systems"): semi-naive deltas
// partition freely across evaluators as long as every evaluator sees
// the full instance for the non-pinned atoms.

// ruleTask is one unit of parallel work: evaluate rule with the
// positive atom at index pin ranging over pinFacts (pin = -1 means a
// full evaluation, used by single-task rules in the opening pass).
// ruleIdx is the rule's index within its stratum, keying per-rule
// instrumentation.
type ruleTask struct {
	rule     Rule
	ruleIdx  int
	pin      int
	pinFacts []fact.Fact
}

// chunkTarget is how many chunks each pinned fact list is split into
// per worker — small enough to amortize task overhead, large enough to
// balance skewed rules across the pool.
const chunkTarget = 4

// chunkFacts splits facts into at most workers*chunkTarget contiguous
// chunks of near-equal size.
func chunkFacts(facts []fact.Fact, workers int) [][]fact.Fact {
	if len(facts) == 0 {
		return nil
	}
	n := workers * chunkTarget
	if n > len(facts) {
		n = len(facts)
	}
	size := (len(facts) + n - 1) / n
	chunks := make([][]fact.Fact, 0, n)
	for start := 0; start < len(facts); start += size {
		end := start + size
		if end > len(facts) {
			end = len(facts)
		}
		chunks = append(chunks, facts[start:end])
	}
	return chunks
}

// fullPassTasks builds the opening-round tasks: every rule evaluated
// against the full instance. With workers > 1 each rule with a
// positive body is partitioned by pinning its first atom to chunks of
// that atom's relation; rules with empty positive bodies evaluate as a
// single unpinned task.
func fullPassTasks(rules []Rule, x *IndexedInstance, workers int) []ruleTask {
	tasks := make([]ruleTask, 0, len(rules))
	for i, r := range rules {
		if workers <= 1 || len(r.Pos) == 0 {
			tasks = append(tasks, ruleTask{rule: r, ruleIdx: i, pin: -1})
			continue
		}
		for _, chunk := range chunkFacts(x.idx.byRel[r.Pos[0].Rel], workers) {
			tasks = append(tasks, ruleTask{rule: r, ruleIdx: i, pin: 0, pinFacts: chunk})
		}
	}
	return tasks
}

// deltaTasks builds a semi-naive round's tasks: for every rule and
// every positive atom whose relation gained facts last round, the atom
// is pinned to the delta (chunked across the pool when parallel).
func deltaTasks(rules []Rule, deltaByRel map[string][]fact.Fact, workers int) []ruleTask {
	var tasks []ruleTask
	for i, r := range rules {
		for k := range r.Pos {
			dfacts := deltaByRel[r.Pos[k].Rel]
			if len(dfacts) == 0 {
				continue
			}
			if workers <= 1 {
				tasks = append(tasks, ruleTask{rule: r, ruleIdx: i, pin: k, pinFacts: dfacts})
				continue
			}
			for _, chunk := range chunkFacts(dfacts, workers) {
				tasks = append(tasks, ruleTask{rule: r, ruleIdx: i, pin: k, pinFacts: chunk})
			}
		}
	}
	return tasks
}

// runRound evaluates one round's tasks against the frozen x and
// returns the newly derived facts (those not already in x). With
// workers <= 1 the tasks run inline; otherwise they are distributed
// over a pool and the per-worker buffers are merged at the barrier.
//
// Instrumentation (eo non-nil) accumulates per-task stats into
// worker-private roundAggs merged at the barrier; "derived" and
// "duplicates" are judged against the frozen x only, so the counts are
// identical in inline and pooled execution.
func runRound(tasks []ruleTask, x *IndexedInstance, workers int, mode EvalMode, eo *engineObs) (*fact.Instance, error) {
	var stopRound func()
	if eo != nil {
		stopRound = eo.reg.Span(obs.DlRoundNs)
	}
	derived := fact.NewInstance()
	if workers <= 1 || len(tasks) <= 1 {
		var agg *roundAgg
		if eo != nil {
			agg = eo.newRoundAgg()
		}
		for _, t := range tasks {
			var err error
			if agg == nil {
				err = evalRule(t.rule, x.idx, x.data, t.pin, t.pinFacts, nil, func(h fact.Fact) error {
					if !x.Has(h) {
						derived.Add(h)
					}
					return nil
				})
			} else {
				var ts taskStats
				err = evalRule(t.rule, x.idx, x.data, t.pin, t.pinFacts, &ts.candidates, func(h fact.Fact) error {
					if !x.Has(h) {
						ts.derived++
						derived.Add(h)
					} else {
						ts.duplicates++
					}
					return nil
				})
				agg.addTask(t.ruleIdx, ts)
			}
			if err != nil {
				return nil, err
			}
		}
		if eo != nil {
			eo.roundDone(mode, len(tasks), agg, derived, nil, nil)
			stopRound()
		}
		return derived, nil
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	taskCh := make(chan ruleTask)
	bufs := make([]*fact.Instance, workers)
	errs := make([]error, workers)
	var aggs []*roundAgg
	var workerTasks, workerBusy []int64
	if eo != nil {
		aggs = make([]*roundAgg, workers)
		workerTasks = make([]int64, workers)
		workerBusy = make([]int64, workers)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := fact.NewInstance()
			bufs[w] = buf
			var agg *roundAgg
			if eo != nil {
				agg = eo.newRoundAgg()
				aggs[w] = agg
			}
			for t := range taskCh {
				if failed.Load() {
					continue // drain remaining tasks after a failure
				}
				var err error
				if agg == nil {
					err = evalRule(t.rule, x.idx, x.data, t.pin, t.pinFacts, nil, func(h fact.Fact) error {
						if !x.Has(h) {
							buf.Add(h)
						}
						return nil
					})
				} else {
					start := time.Now()
					var ts taskStats
					err = evalRule(t.rule, x.idx, x.data, t.pin, t.pinFacts, &ts.candidates, func(h fact.Fact) error {
						if !x.Has(h) {
							ts.derived++
							buf.Add(h)
						} else {
							ts.duplicates++
						}
						return nil
					})
					agg.addTask(t.ruleIdx, ts)
					workerTasks[w]++
					workerBusy[w] += time.Since(start).Nanoseconds()
				}
				if err != nil {
					errs[w] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	for _, t := range tasks {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, buf := range bufs {
		derived.AddAll(buf)
	}
	if eo != nil {
		agg := eo.newRoundAgg()
		for _, a := range aggs {
			agg.merge(a)
		}
		eo.roundDone(mode, len(tasks), agg, derived, workerTasks, workerBusy)
		stopRound()
	}
	return derived, nil
}

package datalog

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements the parallel round executor of the semi-naive
// fixpoint: each round's (rule, pinned-atom, fact-chunk) join tasks
// are fanned across a worker pool. Workers read the shared
// IndexedInstance (frozen for the duration of a round) and derive into
// private buffers; the buffers are merged into the next delta at the
// round barrier, on a single goroutine. Rule evaluation is a pure
// function of (rule, index, instance, chunk), and derived facts carry
// set semantics, so the merged result is independent of scheduling —
// Parallel mode is deterministic and agrees with SemiNaive exactly.
//
// The pool is persistent: one fixpoint call spawns its workers once
// and reuses them every round, instead of paying a goroutine spawn per
// round — on long chains of small rounds that overhead dominated the
// joins themselves (the BENCH_PR4 inversion). Rounds whose total
// pinned work falls below the adaptive inline threshold skip the pool
// entirely and run on the coordinator: distributing a dozen pinned
// facts costs more than joining them.
//
// The design follows the coordination-free evaluation direction of
// Interlandi & Tanca ("A Datalog-based Computational Model for
// Coordination-free, Data-Parallel Systems"): semi-naive deltas
// partition freely across evaluators as long as every evaluator sees
// the full instance for the non-pinned atoms.

// ruleTask is one unit of parallel work: evaluate the compiled rule
// with the positive atom at index pin ranging over pinFacts (pin = -1
// means a full evaluation, used by body-less rules and single-worker
// passes). ruleIdx is the rule's index within its stratum, keying
// per-rule instrumentation.
type ruleTask struct {
	cr       *cRule
	ruleIdx  int
	pin      int
	pinFacts []fact.Fact
}

// chunkTarget is how many chunks each pinned fact list is split into
// per worker — small enough to amortize task overhead, large enough to
// balance skewed rules across the pool.
const chunkTarget = 4

// chunkFacts splits facts into at most workers*chunkTarget contiguous
// chunks of near-equal size.
func chunkFacts(facts []fact.Fact, workers int) [][]fact.Fact {
	if len(facts) == 0 {
		return nil
	}
	n := workers * chunkTarget
	if n > len(facts) {
		n = len(facts)
	}
	size := (len(facts) + n - 1) / n
	chunks := make([][]fact.Fact, 0, n)
	for start := 0; start < len(facts); start += size {
		end := start + size
		if end > len(facts) {
			end = len(facts)
		}
		chunks = append(chunks, facts[start:end])
	}
	return chunks
}

// fullPassTasks builds the opening-round tasks: every rule evaluated
// against the full instance. With workers > 1 each rule with a
// positive body is partitioned by pinning its first atom to chunks of
// that atom's relation; rules with empty positive bodies evaluate as a
// single unpinned task.
func fullPassTasks(crs []cRule, x *IndexedInstance, workers int) []ruleTask {
	tasks := make([]ruleTask, 0, len(crs))
	for i := range crs {
		cr := &crs[i]
		if workers <= 1 || len(cr.pos) == 0 {
			tasks = append(tasks, ruleTask{cr: cr, ruleIdx: i, pin: -1})
			continue
		}
		for _, chunk := range chunkFacts(x.idx.rel(cr.pos[0].rel), workers) {
			tasks = append(tasks, ruleTask{cr: cr, ruleIdx: i, pin: 0, pinFacts: chunk})
		}
	}
	return tasks
}

// deltaTasks builds a semi-naive round's tasks: for every rule and
// every positive atom whose relation gained facts last round, the atom
// is pinned to the delta (chunked across the pool when parallel).
func deltaTasks(crs []cRule, deltaByRel map[fact.ID][]fact.Fact, workers int) []ruleTask {
	var tasks []ruleTask
	for i := range crs {
		cr := &crs[i]
		for k := range cr.pos {
			dfacts := deltaByRel[cr.pos[k].rel]
			if len(dfacts) == 0 {
				continue
			}
			if workers <= 1 {
				tasks = append(tasks, ruleTask{cr: cr, ruleIdx: i, pin: k, pinFacts: dfacts})
				continue
			}
			for _, chunk := range chunkFacts(dfacts, workers) {
				tasks = append(tasks, ruleTask{cr: cr, ruleIdx: i, pin: k, pinFacts: chunk})
			}
		}
	}
	return tasks
}

// roundCtx is one pooled round's shared state: per-worker derivation
// buffers, errors and instrumentation, all indexed by worker id and
// merged by the coordinator after the barrier.
type roundCtx struct {
	x      *IndexedInstance
	eo     *engineObs
	bufs   []*fact.Instance
	errs   []error
	aggs   []*roundAgg
	wTasks []int64
	wBusy  []int64
	failed atomic.Bool
	wg     sync.WaitGroup
}

// poolTask couples a task with its round.
type poolTask struct {
	t  ruleTask
	rc *roundCtx
}

// workerPool is the persistent executor owned by one semi-naive
// fixpoint call: workers are spawned lazily on the first pooled round
// and live until close. Rounds are separated by the roundCtx barrier,
// so workers never observe a mutating instance.
type workerPool struct {
	workers     int
	inlineBelow int
	tasks       chan poolTask
	started     bool
}

func newWorkerPool(workers, inlineBelow int) *workerPool {
	return &workerPool{
		workers:     workers,
		inlineBelow: inlineBelow,
		tasks:       make(chan poolTask, workers*chunkTarget),
	}
}

func (p *workerPool) start() {
	if p.started {
		return
	}
	p.started = true
	for w := 0; w < p.workers; w++ {
		go p.run(w)
	}
}

func (p *workerPool) close() {
	if p.started {
		close(p.tasks)
	}
}

func (p *workerPool) run(w int) {
	for pt := range p.tasks {
		runPoolTask(pt, w)
		pt.rc.wg.Done()
	}
}

func runPoolTask(pt poolTask, w int) {
	rc := pt.rc
	if rc.failed.Load() {
		return // drain remaining tasks after a failure
	}
	buf := rc.bufs[w]
	if buf == nil {
		buf = fact.NewInstance()
		rc.bufs[w] = buf
	}
	t := pt.t
	var err error
	if rc.eo == nil {
		err = evalRuleC(t.cr, rc.x.idx, rc.x.data, t.pin, t.pinFacts, nil, func(rel fact.ID, args []fact.ID) error {
			if !rc.x.hasIDs(rel, args) {
				buf.AddIDs(rel, args)
			}
			return nil
		})
	} else {
		agg := rc.aggs[w]
		if agg == nil {
			agg = rc.eo.newRoundAgg()
			rc.aggs[w] = agg
		}
		start := time.Now()
		var ts taskStats
		err = evalRuleC(t.cr, rc.x.idx, rc.x.data, t.pin, t.pinFacts, &ts.candidates, func(rel fact.ID, args []fact.ID) error {
			if !rc.x.hasIDs(rel, args) {
				ts.derived++
				buf.AddIDs(rel, args)
			} else {
				ts.duplicates++
			}
			return nil
		})
		agg.addTask(t.ruleIdx, ts)
		rc.wTasks[w]++
		rc.wBusy[w] += time.Since(start).Nanoseconds()
	}
	if err != nil {
		rc.errs[w] = err
		rc.failed.Store(true)
	}
}

// pinnedWork estimates a round's join fan-out as the total number of
// pinned facts across its tasks (an unpinned task counts 1): the
// adaptive-inline measure compared against the pool threshold.
func pinnedWork(tasks []ruleTask) int {
	work := 0
	for i := range tasks {
		if n := len(tasks[i].pinFacts); n > 0 {
			work += n
		} else {
			work++
		}
	}
	return work
}

// runRound evaluates one round's tasks against the frozen x and
// returns the newly derived facts (those not already in x). With no
// pool — or when the round's pinned work is below the pool's inline
// threshold — the tasks run inline on the coordinator; otherwise they
// are distributed over the persistent pool and the per-worker buffers
// are merged at the barrier.
//
// Instrumentation (eo non-nil) accumulates per-task stats into
// worker-private roundAggs merged at the barrier; "derived" and
// "duplicates" are judged against the frozen x only, so the counts —
// and the emitted round event — are identical in inline and pooled
// execution.
func runRound(tasks []ruleTask, x *IndexedInstance, p *workerPool, mode EvalMode, eo *engineObs) (*fact.Instance, error) {
	var stopRound func()
	if eo != nil {
		stopRound = eo.reg.Span(obs.DlRoundNs)
	}
	derived := fact.NewInstance()
	if p == nil || len(tasks) <= 1 || pinnedWork(tasks) < p.inlineBelow {
		var agg *roundAgg
		if eo != nil {
			agg = eo.newRoundAgg()
		}
		for _, t := range tasks {
			var err error
			if agg == nil {
				err = evalRuleC(t.cr, x.idx, x.data, t.pin, t.pinFacts, nil, func(rel fact.ID, args []fact.ID) error {
					if !x.hasIDs(rel, args) {
						derived.AddIDs(rel, args)
					}
					return nil
				})
			} else {
				var ts taskStats
				err = evalRuleC(t.cr, x.idx, x.data, t.pin, t.pinFacts, &ts.candidates, func(rel fact.ID, args []fact.ID) error {
					if !x.hasIDs(rel, args) {
						ts.derived++
						derived.AddIDs(rel, args)
					} else {
						ts.duplicates++
					}
					return nil
				})
				agg.addTask(t.ruleIdx, ts)
			}
			if err != nil {
				return nil, err
			}
		}
		if eo != nil {
			eo.roundDone(mode, len(tasks), agg, derived, nil, nil)
			stopRound()
		}
		return derived, nil
	}

	p.start()
	rc := &roundCtx{
		x:    x,
		eo:   eo,
		bufs: make([]*fact.Instance, p.workers),
		errs: make([]error, p.workers),
	}
	if eo != nil {
		rc.aggs = make([]*roundAgg, p.workers)
		rc.wTasks = make([]int64, p.workers)
		rc.wBusy = make([]int64, p.workers)
	}
	rc.wg.Add(len(tasks))
	for i := range tasks {
		p.tasks <- poolTask{t: tasks[i], rc: rc}
	}
	rc.wg.Wait()

	for _, err := range rc.errs {
		if err != nil {
			return nil, err
		}
	}
	for _, buf := range rc.bufs {
		if buf != nil {
			derived.AddAll(buf)
		}
	}
	if eo != nil {
		agg := eo.newRoundAgg()
		for _, a := range rc.aggs {
			if a != nil {
				agg.merge(a)
			}
		}
		eo.roundDone(mode, len(tasks), agg, derived, rc.wTasks, rc.wBusy)
		stopRound()
	}
	return derived, nil
}

package datalog

import (
	"fmt"
	"sort"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements syntactic stratification and the stratified
// semantics of Section 2. A function ρ: idb(P) → {1..|idb(P)|} is a
// stratification when for every rule with head predicate T:
// ρ(R) ≤ ρ(T) for positive idb body atoms R, and ρ(R) < ρ(T) for
// negated idb body atoms R. The output P(I) is computed by running the
// semi-positive fixpoint of each stratum in order.

// Stratification assigns a stratum number to every idb predicate.
type Stratification map[string]int

// NumStrata returns the largest stratum number (0 for an empty program).
func (s Stratification) NumStrata() int {
	max := 0
	for _, n := range s {
		if n > max {
			max = n
		}
	}
	return max
}

// Stratify computes the canonical minimal stratification of the
// program, or an error if the program is not syntactically
// stratifiable (some cycle through negation exists).
//
// The algorithm is the classic relaxation: start every idb predicate at
// stratum 1 and repeatedly enforce ρ(head) ≥ ρ(R) for positive idb body
// atoms and ρ(head) ≥ ρ(R)+1 for negated idb body atoms; if any stratum
// number exceeds |idb(P)| the program is not stratifiable.
func (p *Program) Stratify() (Stratification, error) {
	idb := p.IDB()
	rho := make(Stratification, len(idb))
	for rel := range idb {
		rho[rel] = 1
	}
	limit := len(idb)
	for {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Rel
			for _, a := range r.Pos {
				if idb.Has(a.Rel) && rho[a.Rel] > rho[h] {
					rho[h] = rho[a.Rel]
					changed = true
				}
			}
			for _, a := range r.Neg {
				if idb.Has(a.Rel) && rho[a.Rel]+1 > rho[h] {
					rho[h] = rho[a.Rel] + 1
					changed = true
				}
			}
			if rho[h] > limit {
				return nil, fmt.Errorf("datalog: program is not syntactically stratifiable (cycle through negation involving %s)", h)
			}
		}
		if !changed {
			return rho, nil
		}
	}
}

// IsStratifiable reports whether the program is syntactically
// stratifiable. All semi-positive programs are.
func (p *Program) IsStratifiable() bool {
	_, err := p.Stratify()
	return err == nil
}

// Strata partitions the rules by the stratum number of their head
// predicate under the given stratification, returning the sequence
// P1, ..., Pk of semi-positive programs of Section 2. Strata with no
// rules are elided.
func (p *Program) Strata(rho Stratification) [][]Rule {
	byStratum := make(map[int][]Rule)
	for _, r := range p.Rules {
		n := rho[r.Head.Rel]
		byStratum[n] = append(byStratum[n], r)
	}
	nums := make([]int, 0, len(byStratum))
	for n := range byStratum {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	out := make([][]Rule, 0, len(nums))
	for _, n := range nums {
		out = append(out, byStratum[n])
	}
	return out
}

// CheckStratification verifies that rho is a valid syntactic
// stratification for the program.
func (p *Program) CheckStratification(rho Stratification) error {
	idb := p.IDB()
	for rel := range idb {
		if _, ok := rho[rel]; !ok {
			return fmt.Errorf("datalog: stratification misses idb predicate %s", rel)
		}
	}
	for _, r := range p.Rules {
		h := r.Head.Rel
		for _, a := range r.Pos {
			if idb.Has(a.Rel) && rho[a.Rel] > rho[h] {
				return fmt.Errorf("datalog: rule %v violates ρ(%s) ≤ ρ(%s)", r, a.Rel, h)
			}
		}
		for _, a := range r.Neg {
			if idb.Has(a.Rel) && rho[a.Rel] >= rho[h] {
				return fmt.Errorf("datalog: rule %v violates ρ(%s) < ρ(%s)", r, a.Rel, h)
			}
		}
	}
	return nil
}

// EvalStratified computes P(I) under the stratified semantics: the
// strata are evaluated in order, each as a semi-positive fixpoint over
// the accumulated instance. The result contains the input facts and
// all derived idb facts. The input must be over edb(P); facts over
// idb relations in the input are rejected.
func (p *Program) EvalStratified(input *fact.Instance, opts FixpointOptions) (*fact.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idb := p.IDB()
	var bad fact.Fact
	found := false
	input.Each(func(f fact.Fact) bool {
		if idb.Has(f.Rel()) {
			bad, found = f, true
			return false
		}
		return true
	})
	if found {
		return nil, fmt.Errorf("datalog: input fact %v is over idb relation %s", bad, bad.Rel())
	}

	rho, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	// One IndexedInstance accumulates across all strata: each stratum's
	// fixpoint extends the same index instead of re-indexing its input.
	eo := newEngineObs(opts)
	stop := opts.Reg.Span(obs.DlFixpointNs)
	x := IndexInstance(input.Clone())
	strata := p.Strata(rho)
	for i, stratum := range strata {
		eo.beginStratum(i+1, stratum)
		if err := evalStratum(stratum, x, opts, eo); err != nil {
			return nil, err
		}
		eo.endStratum(x)
	}
	eo.endFixpoint(len(strata), x)
	stop()
	return x.Instance(), nil
}

// Eval computes P(I) with default options (semi-naive evaluation),
// using the stratified semantics. For semi-positive programs this
// coincides with Fixpoint.
func (p *Program) Eval(input *fact.Instance) (*fact.Instance, error) {
	return p.EvalStratified(input, FixpointOptions{Mode: SemiNaive})
}

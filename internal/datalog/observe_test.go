package datalog

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenCompare checks got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestGoldenStratifiedTrace(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	var sb strings.Builder
	if _, err := p.EvalStratified(in, FixpointOptions{Mode: SemiNaive, Sink: obs.NewSink(&sb)}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, kind := range []string{obs.EvDlRound, obs.EvDlStratum, obs.EvDlFixpoint} {
		if !strings.Contains(got, `"ev":"`+kind+`"`) {
			t.Errorf("trace lacks %s events", kind)
		}
	}
	goldenCompare(t, "trace_stratified.jsonl", got)
}

// TestEngineMetricsAcrossModes pins the cross-mode invariants of the
// dl.* counters: the summed deltas equal the derived output in every
// mode, and the semi-naive and parallel judgements agree exactly.
func TestEngineMetricsAcrossModes(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) E(d,a) E(b,d)`)
	snaps := make(map[EvalMode]obs.Snapshot)
	var outLen int
	for _, mode := range []EvalMode{SemiNaive, Naive, Parallel} {
		reg := obs.NewRegistry()
		// InlineBelow: -1 forces every multi-task round onto the pool —
		// the fixture is small enough that adaptive inlining would
		// otherwise leave the per-worker counters untouched.
		out, err := p.EvalStratified(in, FixpointOptions{Mode: mode, Workers: 4, InlineBelow: -1, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		outLen = out.Len()
		snaps[mode] = reg.Snapshot()
	}
	derivedFacts := int64(outLen - in.Len())
	for mode, snap := range snaps {
		if got := snap.Counters[obs.DlDeltaFacts]; got != derivedFacts {
			t.Errorf("%v: delta_facts = %d, want %d", mode, got, derivedFacts)
		}
		if snap.Counters[obs.DlStrata] == 0 || snap.Counters[obs.DlRounds] == 0 {
			t.Errorf("%v: missing strata/rounds counters: %+v", mode, snap.Counters)
		}
		if snap.Counters[obs.DlCandidates] == 0 {
			t.Errorf("%v: candidates not counted", mode)
		}
	}
	// The per-task judgement against the frozen instance makes the
	// derivation and duplicate counts identical between inline and
	// pooled semi-naive execution.
	for _, name := range []string{obs.DlDerivations, obs.DlDuplicates, obs.DlCandidates} {
		if sn, par := snaps[SemiNaive].Counters[name], snaps[Parallel].Counters[name]; sn != par {
			t.Errorf("%s: seminaive %d != parallel %d", name, sn, par)
		}
	}
	// Parallel mode reports its pool.
	if snaps[Parallel].Gauges[obs.DlWorkers] != 4 {
		t.Errorf("workers gauge = %d, want 4", snaps[Parallel].Gauges[obs.DlWorkers])
	}
	// Rounds with a single task run inline and are not attributed to a
	// worker, so the per-worker counts sum to at most the task total.
	var workerTasks int64
	for name, v := range snaps[Parallel].Counters {
		if strings.HasPrefix(name, obs.DlWorkerTasksPrefix) {
			workerTasks += v
		}
	}
	if total := snaps[Parallel].Counters[obs.DlTasks]; workerTasks == 0 || workerTasks > total {
		t.Errorf("worker task counts sum to %d, want in (0, %d]", workerTasks, total)
	}
}

// TestParallelTraceDeterministic verifies the event-plane contract:
// repeated runs of the same configuration are byte-identical even with
// a contended worker pool.
func TestParallelTraceDeterministic(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) E(d,e) E(e,a) E(a,d)`)
	run := func() string {
		var sb strings.Builder
		_, err := p.EvalStratified(in, FixpointOptions{Mode: Parallel, Workers: 8, Sink: obs.NewSink(&sb)})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := run()
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("parallel trace is scheduling-dependent:\nfirst:\n%s\nrun %d:\n%s", first, i+2, got)
		}
	}
}

// TestPerRuleCounters checks the dl.rule.* naming scheme lands one
// counter triple per productive rule.
func TestPerRuleCounters(t *testing.T) {
	p := MustParseProgram(complementTC)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	reg := obs.NewRegistry()
	if _, err := p.EvalStratified(in, FixpointOptions{Reg: reg}); err != nil {
		t.Fatal(err)
	}
	var perRule []string
	for _, name := range reg.CounterNames() {
		if strings.HasPrefix(name, obs.DlRulePrefix) {
			perRule = append(perRule, name)
		}
	}
	// 5 rules across 2 non-empty strata (T and Adom share stratum 1),
	// a counter triple each; all derive on this input.
	if len(perRule) != 15 {
		t.Errorf("per-rule counters = %d (%v), want 15", len(perRule), perRule)
	}
	if reg.Snapshot().Counters["dl.rule.s2.r0.O.derivations"] == 0 {
		t.Errorf("stratum-2 rule O not counted: %v", perRule)
	}
}

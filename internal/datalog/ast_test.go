package datalog

import (
	"strings"
	"testing"

	"repro/internal/fact"
)

func TestRuleValidate(t *testing.T) {
	good := Rule{
		Head: AtomV("T", "x", "y"),
		Pos:  []Atom{AtomV("R", "x", "y")},
		Neg:  []Atom{AtomV("S", "y")},
		Ineq: []Inequality{{V("x"), V("y")}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}

	// Empty positive body.
	bad := Rule{Head: AtomV("T", "x"), Neg: []Atom{AtomV("S", "x")}}
	if err := bad.Validate(); err == nil {
		t.Error("rule with empty positive body accepted")
	}

	// Unsafe head variable.
	unsafe := Rule{Head: AtomV("T", "z"), Pos: []Atom{AtomV("R", "x")}}
	if err := unsafe.Validate(); err == nil {
		t.Error("unsafe head variable accepted")
	}

	// Unsafe negated variable.
	unsafeNeg := Rule{
		Head: AtomV("T", "x"),
		Pos:  []Atom{AtomV("R", "x")},
		Neg:  []Atom{AtomV("S", "y")},
	}
	if err := unsafeNeg.Validate(); err == nil {
		t.Error("unsafe negated variable accepted")
	}

	// Unsafe inequality variable.
	unsafeIneq := Rule{
		Head: AtomV("T", "x"),
		Pos:  []Atom{AtomV("R", "x")},
		Ineq: []Inequality{{V("x"), V("w")}},
	}
	if err := unsafeIneq.Validate(); err == nil {
		t.Error("unsafe inequality variable accepted")
	}

	// Nullary atom.
	nullary := Rule{Head: Atom{Rel: "T"}, Pos: []Atom{AtomV("R", "x")}}
	if err := nullary.Validate(); err == nil {
		t.Error("nullary head accepted")
	}
}

func TestRuleVars(t *testing.T) {
	r := Rule{
		Head: AtomV("T", "x"),
		Pos:  []Atom{AtomV("R", "x", "y")},
		Neg:  []Atom{AtomV("S", "y")},
		Ineq: []Inequality{{V("x"), V("y")}},
	}
	got := r.Vars()
	if strings.Join(got, ",") != "x,y" {
		t.Errorf("Vars = %v, want [x y]", got)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Head: AtomV("T", "x", "y"),
		Pos:  []Atom{AtomV("R", "x", "y")},
		Neg:  []Atom{AtomV("S", "y")},
		Ineq: []Inequality{{V("x"), V("y")}},
	}
	want := "T(x,y) :- R(x,y), !S(y), x != y."
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestProgramSchemas(t *testing.T) {
	p := MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
	`)
	sch, err := p.Schema()
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if !sch.Equal(fact.MustSchema(map[string]int{"E": 2, "T": 2})) {
		t.Errorf("sch(P) = %v", sch)
	}
	if !p.IDB().Equal(fact.MustSchema(map[string]int{"T": 2})) {
		t.Errorf("idb(P) = %v", p.IDB())
	}
	if !p.EDB().Equal(fact.MustSchema(map[string]int{"E": 2})) {
		t.Errorf("edb(P) = %v", p.EDB())
	}
}

func TestProgramSchemaArityConflict(t *testing.T) {
	p := NewProgram(
		Rule{Head: AtomV("T", "x"), Pos: []Atom{AtomV("R", "x")}},
		Rule{Head: AtomV("T", "x", "y"), Pos: []Atom{AtomV("R", "x"), AtomV("R", "y")}},
	)
	if err := p.Validate(); err == nil {
		t.Error("arity-inconsistent program accepted")
	}
}

func TestProgramClassPredicates(t *testing.T) {
	pos := MustParseProgram(`T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).`)
	if !pos.IsPositive() || pos.HasInequalities() || !pos.IsSemiPositive() {
		t.Error("positive TC program misclassified")
	}

	withNeq := MustParseProgram(`O(x,y) :- E(x,y), x != y.`)
	if !withNeq.IsPositive() || !withNeq.HasInequalities() {
		t.Error("Datalog(≠) program misclassified")
	}

	sp := MustParseProgram(`O(x,y) :- E(x,y), !F(x,y).`)
	if sp.IsPositive() || !sp.IsSemiPositive() {
		t.Error("semi-positive program misclassified")
	}

	strat := MustParseProgram(`
		T(x,y) :- E(x,y).
		O(x,y) :- E(x,y), !T(y,x).
	`)
	if strat.IsSemiPositive() {
		t.Error("program negating an idb relation claimed semi-positive")
	}
}

func TestHasConstants(t *testing.T) {
	if MustParseProgram(`O(x) :- E(x,y).`).HasConstants() {
		t.Error("constant-free program reported constants")
	}
	if !MustParseProgram(`O(x) :- E(x,"a").`).HasConstants() {
		t.Error("constant in body not detected")
	}
	if !MustParseProgram(`O(x) :- E(x,y), x != "b".`).HasConstants() {
		t.Error("constant in inequality not detected")
	}
}

func TestTermString(t *testing.T) {
	if V("x").String() != "x" {
		t.Error("variable string")
	}
	if C("a").String() != `"a"` {
		t.Error("constant string")
	}
}

package datalog

import (
	"testing"
)

func TestRuleIsConnected(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		// Single atom: trivially connected.
		{`O(x,y) :- E(x,y).`, true},
		// Two atoms sharing y: connected chain.
		{`O(x,z) :- E(x,y), E(y,z).`, true},
		// Cartesian product: x,y vs u,v disconnected.
		{`O(x,u) :- E(x,y), E(u,v).`, false},
		// Disconnected via negation only: neg atoms don't join graph+.
		{`O(x,u) :- E(x,y), E(u,v), !F(y,v).`, false},
		// Inequalities don't connect either.
		{`O(x,u) :- E(x,y), E(u,v), y != v.`, false},
		// Single variable: trivially connected.
		{`O(x) :- V(x).`, true},
		// Triangle rule from Example 5.1: connected.
		{`T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.`, true},
		// Single unary positive atom plus negation (Example 5.1 P1 rule 2).
		{`O(x) :- ¬T(x), Adom(x).`, true},
	}
	for _, c := range cases {
		r, err := ParseRule(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := r.IsConnected(); got != c.want {
			t.Errorf("IsConnected(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

// Example 5.1, program P1: in con-Datalog¬.
var example51P1 = `
	T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
	O(x) :- ¬T(x), Adom(x).
	Adom(x) :- E(x,y).
	Adom(y) :- E(x,y).
`

// Example 5.1, program P2: not a semicon-Datalog¬ program (its second
// rule, defining D from two disjoint triangles, is disconnected, and D
// is later negated).
var example51P2 = `
	T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
	D(x1) :- T(x1,x2,x3), T(y1,y2,y3),
	         x1 != y1, x1 != y2, x1 != y3,
	         x2 != y1, x2 != y2, x2 != y3,
	         x3 != y1, x3 != y2, x3 != y3.
	O(x) :- ¬D(x), Adom(x).
	Adom(x) :- E(x,y).
	Adom(y) :- E(x,y).
`

func TestExample51Classification(t *testing.T) {
	p1 := MustParseProgram(example51P1)
	if !p1.IsConnectedProgram() {
		t.Error("P1 should be in con-Datalog¬")
	}
	if !p1.IsSemiConnected() {
		t.Error("P1 should be in semicon-Datalog¬ (con ⊆ semicon)")
	}
	if p1.IsSemiPositive() {
		t.Error("P1 negates the idb relation T; not SP-Datalog")
	}
	if got := p1.Classify(); got != FragConDatalog {
		t.Errorf("Classify(P1) = %v, want %v", got, FragConDatalog)
	}

	p2 := MustParseProgram(example51P2)
	if p2.AllRulesConnected() {
		t.Error("P2's D-rule should be disconnected")
	}
	if p2.IsSemiConnected() {
		t.Error("P2 should NOT be in semicon-Datalog¬ (D is disconnected and negated)")
	}
	if !p2.IsStratifiable() {
		t.Error("P2 is stratifiable")
	}
	if got := p2.Classify(); got != FragStratified {
		t.Errorf("Classify(P2) = %v, want %v", got, FragStratified)
	}
}

func TestSemiConnectedLastStratumExemption(t *testing.T) {
	// A disconnected rule whose head is never used below the top is
	// fine: the disconnected rule can sit in the last stratum.
	p := MustParseProgram(`
		T(x,y) :- E(x,y).
		O(x,u) :- T(x,y), T(u,v).
	`)
	if !p.IsSemiConnected() {
		t.Error("disconnected final rule should be allowed in semicon-Datalog¬")
	}
	if p.IsConnectedProgram() {
		t.Error("program with a disconnected rule is not con-Datalog¬")
	}

	// But if the disconnected head is negated somewhere, it cannot be
	// in the last stratum.
	q := MustParseProgram(`
		D(x) :- T(x,y), T(u,v).
		T(x,y) :- E(x,y).
		O(x) :- T(x,x), !D(x).
	`)
	if q.IsSemiConnected() {
		t.Error("negated disconnected predicate should break semicon")
	}
}

func TestSemiConnectedClosurePropagation(t *testing.T) {
	// D is disconnected; P depends positively on D; P is negated.
	// The closure {D, P} is negated, so not semicon.
	p := MustParseProgram(`
		D(x) :- T(x,y), T(u,v).
		P(x) :- D(x).
		T(x,y) :- E(x,y).
		O(x) :- T(x,x), !P(x).
	`)
	if p.IsSemiConnected() {
		t.Error("closure propagation missed: P inherits D's last-stratum obligation")
	}

	// Positive use of D downstream is fine — everything floats to the top.
	q := MustParseProgram(`
		D(x) :- T(x,y), T(u,v).
		P(x) :- D(x).
		T(x,y) :- E(x,y).
		O(x) :- P(x).
	`)
	if !q.IsSemiConnected() {
		t.Error("purely positive tail above a disconnected rule should be semicon")
	}
}

func TestSemiConnectedStratification(t *testing.T) {
	p := MustParseProgram(`
		T(x,y) :- E(x,y).
		D(x,u) :- T(x,y), T(u,v).
		O(x,u) :- D(x,u).
	`)
	rho, ok := p.SemiConnectedStratification()
	if !ok {
		t.Fatal("expected semicon witness stratification")
	}
	if err := p.CheckStratification(rho); err != nil {
		t.Fatalf("witness stratification invalid: %v", err)
	}
	last := rho.NumStrata()
	// Every disconnected rule's head sits in the final stratum, and
	// every rule below the final stratum is connected.
	for _, r := range p.Rules {
		if !r.IsConnected() && rho[r.Head.Rel] != last {
			t.Errorf("disconnected rule %v at stratum %d, want last (%d)", r, rho[r.Head.Rel], last)
		}
		if rho[r.Head.Rel] < last && !r.IsConnected() {
			t.Errorf("disconnected rule below last stratum: %v", r)
		}
	}
}

func TestSemiConnectedStratificationUnavailable(t *testing.T) {
	p := MustParseProgram(example51P2)
	if _, ok := p.SemiConnectedStratification(); ok {
		t.Error("P2 should have no semicon witness stratification")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want Fragment
	}{
		{`T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).`, FragDatalog},
		{`O(x,y) :- E(x,y), x != y.`, FragDatalogNeq},
		{`O(x,y) :- E(x,y), !F(x,y).`, FragSPDatalog},
		{example51P1, FragConDatalog},
		{`T(x,y) :- E(x,y).
		  O(x,u) :- T(x,y), T(u,v), !T(u,x).`, FragSemiconDatalog},
		{example51P2, FragStratified},
		{`Win(x) :- Move(x,y), !Win(y).`, FragUnstratifiable},
	}
	for _, c := range cases {
		p := MustParseProgram(c.src)
		if got := p.Classify(); got != c.want {
			t.Errorf("Classify(%.40q...) = %v, want %v", c.src, got, c.want)
		}
	}
}

// The fragment inclusions stated after Definition 4:
// (i) SP-Datalog ⊊ semicon-Datalog¬, (ii) SP-Datalog ⊄ con-Datalog¬,
// (iii) con-Datalog¬ ⊊ semicon-Datalog¬, witnessed syntactically.
func TestFragmentInclusionWitnesses(t *testing.T) {
	// An SP-Datalog program with a disconnected rule: in semicon
	// (single stratum = last), not in con.
	sp := MustParseProgram(`O(x,u) :- V(x), V(u), !E(x,u).`)
	if !sp.IsSemiPositive() {
		t.Fatal("witness not SP")
	}
	if !sp.IsSemiConnected() {
		t.Error("(i) violated: SP program not semicon")
	}
	if sp.IsConnectedProgram() {
		t.Error("(ii) violated: disconnected SP program claimed con")
	}
	// A con-Datalog¬ program that is not SP (negates an idb relation).
	con := MustParseProgram(example51P1)
	if con.IsSemiPositive() {
		t.Error("P1 should not be SP")
	}
	if !con.IsSemiConnected() {
		t.Error("(iii) violated: con program not semicon")
	}
}

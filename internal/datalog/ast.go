// Package datalog implements the Datalog-with-negation machinery of
// Section 2 and Section 5.1 of the paper "Weaker Forms of Monotonicity
// for Declarative Networking" (PODS 2014): rules as
// (head, pos, neg, ineq) quadruples, semi-positive semantics via the
// minimal fixpoint of the immediate consequence operator (with both
// naive and semi-naive evaluation), syntactic stratification and the
// stratified semantics, and the fragment classifications the paper
// studies — positive Datalog, Datalog(≠), SP-Datalog, stratified
// Datalog¬, and the connected and semi-connected variants
// con-Datalog¬ and semicon-Datalog¬.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fact"
)

// Term is either a variable or a constant. The paper's rules range over
// variables only; constants are a standard, harmless generalization
// supported by the engine (a program that mentions constants expresses
// a non-generic mapping, which the classification helpers flag).
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var is empty.
	Const fact.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v fact.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders variables bare and constants double-quoted with the
// minimal escaping the lexer understands ('\' before '"' and '\').
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(t.Const); i++ {
		c := t.Const[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}

// Atom is R(t1, ..., tk) for terms ti.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom from a relation name and terms.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: args}
}

// AtomV builds an atom whose arguments are all variables, a convenience
// matching the paper's definition of atoms.
func AtomV(rel string, vars ...string) Atom {
	args := make([]Term, len(vars))
	for i, v := range vars {
		args[i] = V(v)
	}
	return Atom{Rel: rel, Args: args}
}

// Vars returns the set of variable names occurring in the atom.
func (a Atom) Vars() map[string]struct{} {
	s := make(map[string]struct{})
	for _, t := range a.Args {
		if t.IsVar() {
			s[t.Var] = struct{}{}
		}
	}
	return s
}

// String renders the atom in conventional syntax.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ","))
}

// Inequality is the constraint u ≠ v between two terms.
type Inequality struct {
	A, B Term
}

// String renders the inequality as "a != b".
func (q Inequality) String() string {
	return q.A.String() + " != " + q.B.String()
}

// Rule is a Datalog¬ rule: the quadruple (head, pos, neg, ineq) of
// Section 2. Pos must be nonempty and every variable of the rule must
// occur in Pos (safety); Validate enforces this.
type Rule struct {
	Head Atom
	Pos  []Atom
	Neg  []Atom
	Ineq []Inequality
}

// Vars returns the sorted variable names of the rule, vars(ϕ).
func (r Rule) Vars() []string {
	set := make(map[string]struct{})
	collect := func(a Atom) {
		for v := range a.Vars() {
			set[v] = struct{}{}
		}
	}
	collect(r.Head)
	for _, a := range r.Pos {
		collect(a)
	}
	for _, a := range r.Neg {
		collect(a)
	}
	for _, q := range r.Ineq {
		if q.A.IsVar() {
			set[q.A.Var] = struct{}{}
		}
		if q.B.IsVar() {
			set[q.B.Var] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// posVars returns the set of variables occurring in positive body atoms.
func (r Rule) posVars() map[string]struct{} {
	s := make(map[string]struct{})
	for _, a := range r.Pos {
		for v := range a.Vars() {
			s[v] = struct{}{}
		}
	}
	return s
}

// IsPositive reports whether the rule has no negative body atoms.
func (r Rule) IsPositive() bool { return len(r.Neg) == 0 }

// HasInequalities reports whether the rule uses any ≠ constraint.
func (r Rule) HasInequalities() bool { return len(r.Ineq) > 0 }

// Validate checks well-formedness: nonempty positive body, arity at
// least one everywhere, and safety (every variable of the rule occurs
// in a positive body atom).
func (r Rule) Validate() error {
	if len(r.Pos) == 0 {
		return fmt.Errorf("rule %v: positive body must be nonempty", r)
	}
	atoms := append([]Atom{r.Head}, r.Pos...)
	atoms = append(atoms, r.Neg...)
	for _, a := range atoms {
		if a.Rel == "" {
			return fmt.Errorf("rule %v: atom with empty relation name", r)
		}
		if len(a.Args) == 0 {
			return fmt.Errorf("rule %v: nullary atom %s not allowed", r, a.Rel)
		}
	}
	pv := r.posVars()
	for _, v := range r.Vars() {
		if _, ok := pv[v]; !ok {
			return fmt.Errorf("rule %v: unsafe variable %s does not occur in a positive body atom", r, v)
		}
	}
	return nil
}

// String renders the rule in conventional syntax,
// e.g. "T(x,y) :- R(x,y), !S(y), x != y.".
func (r Rule) String() string {
	var parts []string
	for _, a := range r.Pos {
		parts = append(parts, a.String())
	}
	for _, a := range r.Neg {
		parts = append(parts, "!"+a.String())
	}
	for _, q := range r.Ineq {
		parts = append(parts, q.String())
	}
	return fmt.Sprintf("%s :- %s.", r.Head, strings.Join(parts, ", "))
}

// Program is a set of Datalog¬ rules, kept in declaration order for
// reproducible output (the semantics is order-independent).
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program {
	return &Program{Rules: rules}
}

// Validate checks every rule and the arity-consistency of the induced
// schema.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	_, err := p.Schema()
	return err
}

// Schema returns sch(P), the minimal database schema the program is
// over, failing if some relation is used at inconsistent arities.
func (p *Program) Schema() (fact.Schema, error) {
	s := make(fact.Schema)
	for _, r := range p.Rules {
		atoms := append([]Atom{r.Head}, r.Pos...)
		atoms = append(atoms, r.Neg...)
		for _, a := range atoms {
			if err := s.Declare(a.Rel, len(a.Args)); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// IDB returns idb(P): the relations occurring in rule heads.
func (p *Program) IDB() fact.Schema {
	s := make(fact.Schema)
	for _, r := range p.Rules {
		s[r.Head.Rel] = len(r.Head.Args)
	}
	return s
}

// EDB returns edb(P) = sch(P) \ idb(P). It panics if the program has
// inconsistent arities; call Validate first.
func (p *Program) EDB() fact.Schema {
	s, err := p.Schema()
	if err != nil {
		panic(err)
	}
	return s.Minus(p.IDB())
}

// IsPositive reports whether all rules are positive (the class Datalog
// when additionally inequality-free, or Datalog(≠) with inequalities).
func (p *Program) IsPositive() bool {
	for _, r := range p.Rules {
		if !r.IsPositive() {
			return false
		}
	}
	return true
}

// HasInequalities reports whether any rule uses a ≠ constraint.
func (p *Program) HasInequalities() bool {
	for _, r := range p.Rules {
		if r.HasInequalities() {
			return true
		}
	}
	return false
}

// HasConstants reports whether any rule mentions a constant term; such
// programs express non-generic mappings.
func (p *Program) HasConstants() bool {
	hasConst := func(a Atom) bool {
		for _, t := range a.Args {
			if !t.IsVar() {
				return true
			}
		}
		return false
	}
	for _, r := range p.Rules {
		if hasConst(r.Head) {
			return true
		}
		for _, a := range r.Pos {
			if hasConst(a) {
				return true
			}
		}
		for _, a := range r.Neg {
			if hasConst(a) {
				return true
			}
		}
		for _, q := range r.Ineq {
			if !q.A.IsVar() || !q.B.IsVar() {
				return true
			}
		}
	}
	return false
}

// IsSemiPositive reports whether every negated body atom is over
// edb(P): the class SP-Datalog.
func (p *Program) IsSemiPositive() bool {
	idb := p.IDB()
	for _, r := range p.Rules {
		for _, a := range r.Neg {
			if idb.Has(a.Rel) {
				return false
			}
		}
	}
	return true
}

// String renders the program one rule per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fact"
)

var tcProgram = `
	T(x,y) :- E(x,y).
	T(x,z) :- T(x,y), E(y,z).
`

func TestFixpointTransitiveClosure(t *testing.T) {
	p := MustParseProgram(tcProgram)
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`)
	out, err := p.Fixpoint(in, FixpointOptions{Mode: SemiNaive})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	want := fact.MustParseInstance(`
		E(a,b) E(b,c) E(c,d)
		T(a,b) T(b,c) T(c,d)
		T(a,c) T(b,d)
		T(a,d)
	`)
	if !out.Equal(want) {
		t.Errorf("TC output = %v\nwant %v", out, want)
	}
}

func TestFixpointEmptyInput(t *testing.T) {
	p := MustParseProgram(tcProgram)
	out, err := p.Fixpoint(fact.NewInstance(), FixpointOptions{})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	if !out.Empty() {
		t.Errorf("TC of empty graph = %v", out)
	}
}

func TestFixpointCycle(t *testing.T) {
	p := MustParseProgram(tcProgram)
	in := fact.MustParseInstance(`E(a,b) E(b,a)`)
	out, err := p.Fixpoint(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	// TC of a 2-cycle: all four pairs.
	for _, s := range []string{"T(a,a)", "T(a,b)", "T(b,a)", "T(b,b)"} {
		if !out.Has(fact.MustParseFact(s)) {
			t.Errorf("missing %s in %v", s, out)
		}
	}
}

func TestFixpointSemiPositiveNegation(t *testing.T) {
	// Non-edges among the active domain. Adom is idb but the negation
	// is over the edb relation E only, so the program is semi-positive.
	p := MustParseProgram(`
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y) :- Adom(x), Adom(y), !E(x,y).
	`)
	in := fact.MustParseInstance(`E(a,b)`)
	out, err := p.Fixpoint(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	for _, s := range []string{"O(a,a)", "O(b,a)", "O(b,b)"} {
		if !out.Has(fact.MustParseFact(s)) {
			t.Errorf("missing %s", s)
		}
	}
	if out.Has(fact.MustParseFact("O(a,b)")) {
		t.Error("O(a,b) derived although E(a,b) holds")
	}
}

func TestFixpointRejectsNonSemiPositive(t *testing.T) {
	p := MustParseProgram(`
		T(x) :- A(x).
		O(x) :- A(x), !T(x).
	`)
	if _, err := p.Fixpoint(fact.NewInstance(), FixpointOptions{}); err == nil {
		t.Error("Fixpoint should reject non-semi-positive program")
	}
}

func TestFixpointInequalities(t *testing.T) {
	p := MustParseProgram(`O(x,y) :- E(x,y), x != y.`)
	in := fact.MustParseInstance(`E(a,a) E(a,b)`)
	out, err := p.Fixpoint(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	if out.Has(fact.MustParseFact("O(a,a)")) {
		t.Error("inequality not enforced")
	}
	if !out.Has(fact.MustParseFact("O(a,b)")) {
		t.Error("O(a,b) missing")
	}
}

func TestFixpointConstants(t *testing.T) {
	p := MustParseProgram(`O(x) :- E(x,"b").`)
	in := fact.MustParseInstance(`E(a,b) E(a,c)`)
	out, err := p.Fixpoint(in, FixpointOptions{})
	if err != nil {
		t.Fatalf("Fixpoint: %v", err)
	}
	if !out.Has(fact.MustParseFact("O(a)")) || out.Len() != 3 {
		t.Errorf("constant matching broken: %v", out)
	}
}

func TestFixpointInputNotMutated(t *testing.T) {
	p := MustParseProgram(tcProgram)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	before := in.Clone()
	if _, err := p.Fixpoint(in, FixpointOptions{}); err != nil {
		t.Fatal(err)
	}
	if !in.Equal(before) {
		t.Error("Fixpoint mutated its input")
	}
}

func TestFixpointMaxRounds(t *testing.T) {
	p := MustParseProgram(tcProgram)
	// A long chain needs many rounds; a bound of 1 must trip.
	in := fact.NewInstance()
	for i := 0; i < 10; i++ {
		in.Add(fact.New("E", fact.Value(fmt.Sprintf("v%d", i)), fact.Value(fmt.Sprintf("v%d", i+1))))
	}
	if _, err := p.Fixpoint(in, FixpointOptions{MaxRounds: 1}); err == nil {
		t.Error("MaxRounds=1 should abort on a chain of length 10")
	}
}

// Naive and semi-naive evaluation must agree on random inputs for a
// battery of programs — semi-naive's correctness oracle.
func TestNaiveVsSemiNaive(t *testing.T) {
	programs := []string{
		tcProgram,
		`O(x,y) :- E(x,y), E(y,x).`,
		`P(x,z) :- E(x,y), E(y,z).
		 Q(x,w) :- P(x,z), P(z,w).
		 O(x) :- Q(x,x).`,
		`Adom(x) :- E(x,y).
		 Adom(y) :- E(x,y).
		 O(x,y) :- Adom(x), Adom(y), !E(x,y), x != y.`,
	}
	rng := rand.New(rand.NewSource(23))
	for pi, src := range programs {
		p := MustParseProgram(src)
		for trial := 0; trial < 30; trial++ {
			in := randomEdges(rng, 5, 7)
			a, err := p.Fixpoint(in, FixpointOptions{Mode: Naive})
			if err != nil {
				t.Fatalf("program %d naive: %v", pi, err)
			}
			b, err := p.Fixpoint(in, FixpointOptions{Mode: SemiNaive})
			if err != nil {
				t.Fatalf("program %d semi-naive: %v", pi, err)
			}
			if !a.Equal(b) {
				t.Fatalf("program %d input %v:\nnaive     = %v\nsemi-naive = %v", pi, in, a, b)
			}
		}
	}
}

// The fixpoint is inflationary and idempotent: input ⊆ P(I) and
// running P on its own output (restricted back to edb) changes nothing.
func TestFixpointInflationary(t *testing.T) {
	p := MustParseProgram(tcProgram)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		in := randomEdges(rng, 5, 6)
		out, err := p.Fixpoint(in, FixpointOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !in.SubsetOf(out) {
			t.Fatalf("fixpoint lost input facts: in=%v out=%v", in, out)
		}
		again, err := p.Fixpoint(out.Restrict(p.EDB()), FixpointOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !again.Union(out).Equal(out) {
			t.Fatalf("fixpoint not idempotent on %v", in)
		}
	}
}

// Positive programs are monotone: P(I) ⊆ P(I ∪ J).
func TestPositiveProgramMonotone(t *testing.T) {
	p := MustParseProgram(tcProgram)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		i := randomEdges(rng, 4, 5)
		j := randomEdges(rng, 4, 3)
		a, _ := p.Fixpoint(i, FixpointOptions{})
		b, _ := p.Fixpoint(i.Union(j), FixpointOptions{})
		if !a.SubsetOf(b) {
			t.Fatalf("monotonicity violated: P(%v)=%v not ⊆ P(∪)=%v", i, a, b)
		}
	}
}

// Genericity (Section 2): renaming values commutes with evaluation for
// constant-free programs.
func TestFixpointGenericity(t *testing.T) {
	p := MustParseProgram(tcProgram)
	rng := rand.New(rand.NewSource(37))
	perm := fact.Hom{"v0": "w3", "v1": "w1", "v2": "w0", "v3": "w4", "v4": "w2"}
	for trial := 0; trial < 30; trial++ {
		in := randomEdges(rng, 5, 6)
		out1, _ := p.Fixpoint(in, FixpointOptions{})
		out2, _ := p.Fixpoint(in.Map(perm), FixpointOptions{})
		if !out1.Map(perm).Equal(out2) {
			t.Fatalf("genericity violated on %v", in)
		}
	}
}

func randomEdges(rng *rand.Rand, n, m int) *fact.Instance {
	in := fact.NewInstance()
	for k := 0; k < m; k++ {
		a := fact.Value(fmt.Sprintf("v%d", rng.Intn(n)))
		b := fact.Value(fmt.Sprintf("v%d", rng.Intn(n)))
		in.Add(fact.New("E", a, b))
	}
	return in
}

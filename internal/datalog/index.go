package datalog

import (
	"sync"

	"repro/internal/fact"
)

// This file implements the persistent, incrementally-maintained index
// the fixpoint engines evaluate against. Historically every call to
// Valuations rebuilt the full (relation, position, value) index from
// scratch, which made round-based callers — the wILOG¬ evaluator, the
// alternating fixpoint — quadratic in the number of rounds. An
// IndexedInstance is built once and kept in sync fact-by-fact, so it
// can be shared across fixpoint rounds and across the strata of a
// stratified evaluation.

// argKey addresses the facts of a relation holding a given value at a
// given argument position — the access path for index-assisted joins.
type argKey struct {
	rel string
	pos int
	val fact.Value
}

// relIndex indexes an instance by relation name and additionally by
// (relation, position, value), so that rule evaluation can narrow the
// candidate facts for an atom whose argument is already bound.
type relIndex struct {
	byRel map[string][]fact.Fact
	byArg map[argKey][]fact.Fact
}

func newRelIndex() *relIndex {
	return &relIndex{
		byRel: make(map[string][]fact.Fact),
		byArg: make(map[argKey][]fact.Fact),
	}
}

func indexInstance(i *fact.Instance) *relIndex {
	idx := newRelIndex()
	for _, f := range i.Facts() {
		idx.add(f)
	}
	return idx
}

func (idx *relIndex) add(f fact.Fact) {
	idx.byRel[f.Rel()] = append(idx.byRel[f.Rel()], f)
	for p := 0; p < f.Arity(); p++ {
		k := argKey{f.Rel(), p, f.Arg(p)}
		idx.byArg[k] = append(idx.byArg[k], f)
	}
}

// candidates returns the facts that can possibly match the atom under
// the current bindings: the narrowest per-argument index over all bound
// positions, or the full relation when no argument is bound yet. An
// empty probe short-circuits — no narrower candidate set exists.
func (idx *relIndex) candidates(a Atom, b Bindings) []fact.Fact {
	best := idx.byRel[a.Rel]
	found := false
	for p, t := range a.Args {
		var v fact.Value
		if t.IsVar() {
			bound, ok := b[t.Var]
			if !ok {
				continue
			}
			v = bound
		} else {
			v = t.Const
		}
		cand := idx.byArg[argKey{a.Rel, p, v}]
		if len(cand) == 0 {
			return nil
		}
		if !found || len(cand) < len(best) {
			best = cand
			found = true
		}
	}
	return best
}

// IndexedInstance couples an instance with its join index, maintained
// incrementally: adding a fact updates both in O(arity). Build one with
// IndexInstance and reuse it across fixpoint rounds and strata instead
// of re-indexing per call.
//
// The instance must only grow through Add while indexed; mutating the
// underlying instance directly desynchronizes the index. Reads of an
// IndexedInstance are safe from multiple goroutines as long as no Add
// is concurrent (the parallel engine adds only at round barriers).
type IndexedInstance struct {
	data *fact.Instance
	idx  *relIndex
}

// IndexInstance builds the index over the instance. The instance is
// NOT copied: the IndexedInstance takes ownership, and the caller must
// only grow it through Add.
func IndexInstance(i *fact.Instance) *IndexedInstance {
	return &IndexedInstance{data: i, idx: indexInstance(i)}
}

// Add inserts the fact into the instance and the index, reporting
// whether it was newly added.
func (x *IndexedInstance) Add(f fact.Fact) bool {
	if !x.data.Add(f) {
		return false
	}
	x.idx.add(f)
	return true
}

// Has reports whether the fact is present.
func (x *IndexedInstance) Has(f fact.Fact) bool { return x.data.Has(f) }

// Len returns the number of facts.
func (x *IndexedInstance) Len() int { return x.data.Len() }

// Instance returns the underlying instance. Callers must not mutate it
// except through Add.
func (x *IndexedInstance) Instance() *fact.Instance { return x.data }

// Valuations enumerates every satisfying valuation of the rule against
// the indexed instance, like the package-level Valuations but without
// rebuilding the index. The bindings passed to emit are stable
// snapshots.
func (x *IndexedInstance) Valuations(r Rule, emit func(Bindings) error) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return matchRule(r, x.idx, x.data, -1, nil, nil, func(b Bindings) error {
		snapshot := make(Bindings, len(b))
		for v, val := range b {
			snapshot[v] = val
		}
		return emit(snapshot)
	})
}

// ValuationsParallel enumerates the same valuations as Valuations but
// partitions the enumeration across workers by pinning the rule's
// first positive atom to chunks of its relation. The instance must not
// be mutated while the call runs. emit is invoked sequentially after
// the workers join, in chunk order, so callers need no
// synchronization; the full call is deterministic.
func (x *IndexedInstance) ValuationsParallel(r Rule, workers int, emit func(Bindings) error) error {
	if workers <= 1 || len(r.Pos) == 0 {
		return x.Valuations(r, emit)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	chunks := chunkFacts(x.idx.byRel[r.Pos[0].Rel], workers)
	if len(chunks) <= 1 {
		return x.Valuations(r, emit)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	results := make([][]Bindings, len(chunks))
	errs := make([]error, len(chunks))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				errs[c] = matchRule(r, x.idx, x.data, 0, chunks[c], nil, func(b Bindings) error {
					snapshot := make(Bindings, len(b))
					for v, val := range b {
						snapshot[v] = val
					}
					results[c] = append(results[c], snapshot)
					return nil
				})
			}
		}()
	}
	for c := range chunks {
		next <- c
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, bs := range results {
		for _, b := range bs {
			if err := emit(b); err != nil {
				return err
			}
		}
	}
	return nil
}

package datalog

import (
	"sync"

	"repro/internal/fact"
)

// This file implements the persistent, incrementally-maintained index
// the fixpoint engines evaluate against. Historically every call to
// Valuations rebuilt the full (relation, position, value) index from
// scratch, which made round-based callers — the wILOG¬ evaluator, the
// alternating fixpoint — quadratic in the number of rounds. An
// IndexedInstance is built once and kept in sync fact-by-fact, so it
// can be shared across fixpoint rounds and across the strata of a
// stratified evaluation.
//
// All index keys are interned IDs (see internal/fact intern.go):
// hashing a probe is integer work, with no string building. Posting
// lists are appended in the deterministic order the engines add facts
// (sorted instance enumeration, then sorted per-round deltas), so
// candidate enumeration — and with it every derivation count in the
// event stream — is identical across runs and worker counts.

// idxKey addresses the facts of a relation holding a given value at a
// given argument position — the access path for index-assisted joins.
type idxKey struct {
	rel fact.ID
	pos int32
	val fact.ID
}

// relIndex indexes an instance by relation and additionally by
// (relation, position, value), so that rule evaluation can narrow the
// candidate facts for an atom whose argument is already bound.
//
// Posting lists are held behind pointers so the append on every add —
// the single hottest map operation in a fixpoint — hashes the key once
// (lookup) instead of twice (lookup + store of the grown slice
// header).
type relIndex struct {
	byRel map[fact.ID]*[]fact.Fact
	byArg map[idxKey]*[]fact.Fact
}

func newRelIndex() *relIndex {
	return &relIndex{
		byRel: make(map[fact.ID]*[]fact.Fact),
		byArg: make(map[idxKey]*[]fact.Fact),
	}
}

// rel returns the posting list of a relation (nil when empty).
func (idx *relIndex) rel(r fact.ID) []fact.Fact {
	if lp, ok := idx.byRel[r]; ok {
		return *lp
	}
	return nil
}

func indexInstance(i *fact.Instance) *relIndex {
	idx := newRelIndex()
	for _, f := range i.Facts() {
		idx.add(f)
	}
	return idx
}

func (idx *relIndex) add(f fact.Fact) {
	rel := f.RelID()
	if lp, ok := idx.byRel[rel]; ok {
		*lp = append(*lp, f)
	} else {
		lp := new([]fact.Fact)
		*lp = append(*lp, f)
		idx.byRel[rel] = lp
	}
	for p, v := range f.ArgIDs() {
		k := idxKey{rel, int32(p), v}
		if lp, ok := idx.byArg[k]; ok {
			*lp = append(*lp, f)
		} else {
			lp := new([]fact.Fact)
			*lp = append(*lp, f)
			idx.byArg[k] = lp
		}
	}
}

// remove drops the fact from every index list it appears in. Removal
// is copy-on-write — the shrunk list is freshly allocated, never
// mutated in place — so posting lists may be shared with clones (see
// clone). Like every mutation, it must not run concurrently with an
// enumeration.
func (idx *relIndex) remove(f fact.Fact) {
	rel := f.RelID()
	if lp, ok := idx.byRel[rel]; ok {
		*lp = removeFact(*lp, f)
	}
	for p, v := range f.ArgIDs() {
		k := idxKey{rel, int32(p), v}
		lp, ok := idx.byArg[k]
		if !ok {
			continue
		}
		if fs := removeFact(*lp, f); len(fs) == 0 {
			delete(idx.byArg, k)
		} else {
			*lp = fs
		}
	}
}

func removeFact(fs []fact.Fact, f fact.Fact) []fact.Fact {
	for i := range fs {
		if fs[i].Equal(f) {
			out := make([]fact.Fact, 0, len(fs)-1)
			out = append(out, fs[:i]...)
			return append(out, fs[i+1:]...)
		}
	}
	return fs
}

// removeAll drops a batch of facts in one pass per touched index list,
// instead of one linear scan per fact: the incremental engine deletes
// whole cascade waves and over-deletion cones at a time, where
// per-fact scans over a large relation turn O(|wave|) maintenance into
// O(|wave|·|relation|). fs must be duplicate-free. Membership tests
// run by binary search over per-relation sorted batches, so a filtered
// pass over a list of n facts costs n·log|batch| comparisons and no
// allocation beyond the result.
func (idx *relIndex) removeAll(fs []fact.Fact) {
	gone := make(map[fact.ID][]fact.Fact)
	byArg := make(map[idxKey]bool)
	for _, f := range fs {
		rel := f.RelID()
		gone[rel] = append(gone[rel], f)
		for p, v := range f.ArgIDs() {
			byArg[idxKey{rel, int32(p), v}] = true
		}
	}
	for rel, gs := range gone {
		fact.SortFacts(gs)
		if lp, ok := idx.byRel[rel]; ok {
			*lp = filterFacts(*lp, gs)
		}
	}
	for k := range byArg {
		lp, ok := idx.byArg[k]
		if !ok {
			continue
		}
		if kept := filterFacts(*lp, gone[k.rel]); len(kept) == 0 {
			delete(idx.byArg, k)
		} else {
			*lp = kept
		}
	}
}

// filterFacts returns the facts not present in the sorted gone batch.
// The result is freshly allocated (copy-on-write, like removeFact)
// unless nothing is dropped.
func filterFacts(fs []fact.Fact, gone []fact.Fact) []fact.Fact {
	for i, f := range fs {
		if containsFact(gone, f) {
			kept := make([]fact.Fact, 0, len(fs)-1)
			kept = append(kept, fs[:i]...)
			for _, g := range fs[i+1:] {
				if !containsFact(gone, g) {
					kept = append(kept, g)
				}
			}
			return kept
		}
	}
	return fs
}

func containsFact(sorted []fact.Fact, f fact.Fact) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid].Compare(f) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo].Equal(f)
}

// tupleMatches reports whether the fact is rel(args...).
func tupleMatches(f fact.Fact, rel fact.ID, args []fact.ID) bool {
	if f.RelID() != rel {
		return false
	}
	fa := f.ArgIDs()
	if len(fa) != len(args) {
		return false
	}
	for i := range fa {
		if fa[i] != args[i] {
			return false
		}
	}
	return true
}

// hasIDs reports membership of rel(args...) by scanning the narrowest
// posting list the fact could appear in — the membership path for
// data-less views (CloneView), all integer compares.
func (idx *relIndex) hasIDs(rel fact.ID, args []fact.ID) bool {
	best := idx.rel(rel)
	for p, v := range args {
		lp, ok := idx.byArg[idxKey{rel, int32(p), v}]
		if !ok {
			return false
		}
		if cand := *lp; len(cand) < len(best) {
			best = cand
		}
	}
	for i := range best {
		if tupleMatches(best[i], rel, args) {
			return true
		}
	}
	return false
}

// has is hasIDs for a materialized fact.
func (idx *relIndex) has(f fact.Fact) bool {
	return idx.hasIDs(f.RelID(), f.ArgIDs())
}

// clone copies the index maps but shares the posting-list backing
// arrays, capping each shared slice's capacity at its length. That
// makes the sharing invisible to both sides: removals are
// copy-on-write (remove, removeAll), appends to a capped slice must
// reallocate, and appends on the original past the shared length land
// beyond what the clone can read.
func (idx *relIndex) clone() *relIndex {
	c := &relIndex{
		byRel: make(map[fact.ID]*[]fact.Fact, len(idx.byRel)),
		byArg: make(map[idxKey]*[]fact.Fact, len(idx.byArg)),
	}
	for k, lp := range idx.byRel {
		fs := (*lp)[:len(*lp):len(*lp)]
		c.byRel[k] = &fs
	}
	for k, lp := range idx.byArg {
		fs := (*lp)[:len(*lp):len(*lp)]
		c.byArg[k] = &fs
	}
	return c
}

// candidatesC returns the facts that can possibly match the compiled
// atom under the current environment: the narrowest per-argument index
// over all bound positions, or the full relation when no argument is
// bound yet. An empty probe short-circuits — no narrower candidate set
// exists.
func (idx *relIndex) candidatesC(a cAtom, env []fact.ID) []fact.Fact {
	best := idx.rel(a.rel)
	found := false
	for p, t := range a.terms {
		v := t.cnst
		if t.slot >= 0 {
			v = env[t.slot]
			if v == fact.NoID {
				continue
			}
		}
		lp := idx.byArg[idxKey{a.rel, int32(p), v}]
		if lp == nil || len(*lp) == 0 {
			return nil
		}
		if cand := *lp; !found || len(cand) < len(best) {
			best = cand
			found = true
		}
	}
	return best
}

// candidates is candidatesC for a source-level atom under Bindings —
// kept for white-box tests and ad-hoc probing; the engines compile
// first. A bound value that was never interned cannot appear in any
// fact, so it short-circuits to nil.
func (idx *relIndex) candidates(a Atom, b Bindings) []fact.Fact {
	relID, ok := fact.LookupValue(fact.Value(a.Rel))
	if !ok {
		return nil
	}
	best := idx.rel(relID)
	found := false
	for p, t := range a.Args {
		var v fact.Value
		if t.IsVar() {
			bound, ok := b[t.Var]
			if !ok {
				continue
			}
			v = bound
		} else {
			v = t.Const
		}
		id, ok := fact.LookupValue(v)
		if !ok {
			return nil
		}
		lp := idx.byArg[idxKey{relID, int32(p), id}]
		if lp == nil || len(*lp) == 0 {
			return nil
		}
		if cand := *lp; !found || len(cand) < len(best) {
			best = cand
			found = true
		}
	}
	return best
}

// IndexedInstance couples an instance with its join index, maintained
// incrementally: adding or removing a fact updates both in O(arity).
// Build one with IndexInstance and reuse it across fixpoint rounds and
// strata instead of re-indexing per call.
//
// The instance must only change through Add and Remove while indexed;
// mutating the underlying instance directly desynchronizes the index.
// Reads of an IndexedInstance are safe from multiple goroutines as long
// as no Add or Remove is concurrent (the engines mutate only at round
// or phase barriers).
type IndexedInstance struct {
	data *fact.Instance
	idx  *relIndex
	n    int // fact count when data is nil (CloneView)
}

// IndexInstance builds the index over the instance. The instance is
// NOT copied: the IndexedInstance takes ownership, and the caller must
// only grow it through Add.
func IndexInstance(i *fact.Instance) *IndexedInstance {
	return &IndexedInstance{data: i, idx: indexInstance(i)}
}

// Add inserts the fact into the instance and the index, reporting
// whether it was newly added.
func (x *IndexedInstance) Add(f fact.Fact) bool {
	if x.data == nil {
		panic("datalog: Add on a read-only CloneView")
	}
	if !x.data.Add(f) {
		return false
	}
	x.idx.add(f)
	return true
}

// addNew inserts a fact known to be absent — a delta fact already
// judged against the frozen instance — skipping the membership probe
// that Add pays.
func (x *IndexedInstance) addNew(f fact.Fact) {
	x.data.AddNewIDs(f.RelID(), f.ArgIDs())
	x.idx.add(f)
}

// Remove deletes the fact from the instance and the index, reporting
// whether it was present. Like Add, Remove must not run concurrently
// with reads; the incremental engine removes only at phase barriers.
func (x *IndexedInstance) Remove(f fact.Fact) bool {
	if x.data == nil {
		panic("datalog: Remove on a read-only CloneView")
	}
	if !x.data.Remove(f) {
		return false
	}
	x.idx.remove(f)
	return true
}

// Clone returns an independent copy of the instance and its index,
// sharing no mutable state with the receiver. The incremental engine
// clones the materialization to keep a pre-update view for the
// delete-phase joins, so Clone copies the existing index rather than
// rebuilding it.
func (x *IndexedInstance) Clone() *IndexedInstance {
	return &IndexedInstance{data: x.data.Clone(), idx: x.idx.clone()}
}

// CloneView returns a read-only snapshot of the instance for join
// enumeration: later mutations of the receiver are invisible to the
// view and vice versa (there is no vice versa — mutating a view
// panics). The view skips copying the fact store and shares
// posting-list storage copy-on-write with the receiver, so taking one
// is much cheaper than Clone; membership checks (negation guards, Has)
// are answered from the index instead. Instance is unavailable on a
// view.
func (x *IndexedInstance) CloneView() *IndexedInstance {
	return &IndexedInstance{idx: x.idx.clone(), n: x.data.Len()}
}

// RelView is a read-only, point-in-time snapshot of the instance's
// per-relation posting lists — the storage behind the serving layer's
// MVCC read epochs (internal/incr Epoch). Taking one costs O(number of
// relations): the posting-list backing arrays are shared with the
// receiver copy-on-write, exactly like clone, with each shared slice's
// capacity capped at its length so later appends on the live index
// reallocate past what the view can read and removals (which are
// always copy-on-write) swap in fresh arrays the view never sees.
//
// Unlike CloneView — which also clones the (relation, position, value)
// join index so rule evaluation can run against it — a RelView carries
// only the by-relation lists, which is all enumeration-shaped reads
// (query, facts, stats) need. That keeps publication cheap enough to
// run once per group commit even under write-heavy load.
//
// A RelView is immutable and safe for concurrent use by any number of
// readers, concurrently with mutations of the IndexedInstance it was
// taken from.
type RelView struct {
	rels map[fact.ID][]fact.Fact
	n    int
}

// RelView takes a read-only per-relation snapshot of the current
// instance. It must not run concurrently with Add or Remove (the
// serving layer's single writer publishes views at commit barriers).
func (x *IndexedInstance) RelView() *RelView {
	v := &RelView{rels: make(map[fact.ID][]fact.Fact, len(x.idx.byRel)), n: x.Len()}
	for k, lp := range x.idx.byRel {
		if len(*lp) == 0 {
			continue
		}
		v.rels[k] = (*lp)[:len(*lp):len(*lp)]
	}
	return v
}

// Len returns the number of facts in the view.
func (v *RelView) Len() int { return v.n }

// Rel returns the facts of one relation in canonical sorted order
// (fact.SortFacts). The result is freshly allocated — the shared
// posting lists are never reordered in place.
func (v *RelView) Rel(rel string) []fact.Fact {
	id, ok := fact.LookupValue(fact.Value(rel))
	if !ok {
		return nil
	}
	fs := v.rels[id]
	if len(fs) == 0 {
		return nil
	}
	out := make([]fact.Fact, len(fs))
	copy(out, fs)
	fact.SortFacts(out)
	return out
}

// Facts returns every fact in the view in canonical sorted order.
func (v *RelView) Facts() []fact.Fact {
	out := make([]fact.Fact, 0, v.n)
	for _, fs := range v.rels {
		out = append(out, fs...)
	}
	fact.SortFacts(out)
	return out
}

// Has reports whether the fact is in the view, by scanning its
// relation's posting list. Serving reads are enumeration-shaped; this
// linear probe exists for tests and invariant checks, not hot paths.
func (v *RelView) Has(f fact.Fact) bool {
	for _, g := range v.rels[f.RelID()] {
		if g.Equal(f) {
			return true
		}
	}
	return false
}

// RemoveAll deletes a batch of facts, skipping those not present, and
// returns how many were removed. The index update is one pass per
// touched posting list — use this over per-fact Remove when deleting
// cascade waves. Like Remove, it must not run concurrently with reads.
func (x *IndexedInstance) RemoveAll(fs []fact.Fact) int {
	if x.data == nil {
		panic("datalog: RemoveAll on a read-only CloneView")
	}
	present := fs[:0:0]
	for _, f := range fs {
		if x.data.Remove(f) {
			present = append(present, f)
		}
	}
	if len(present) > 0 {
		x.idx.removeAll(present)
	}
	return len(present)
}

// Has reports whether the fact is present.
func (x *IndexedInstance) Has(f fact.Fact) bool {
	if x.data == nil {
		return x.idx.has(f)
	}
	return x.data.Has(f)
}

// hasIDs is Has for an unmaterialized (rel, args) tuple — the round
// executors' dedup test, allocation-free.
func (x *IndexedInstance) hasIDs(rel fact.ID, args []fact.ID) bool {
	if x.data == nil {
		return x.idx.hasIDs(rel, args)
	}
	return x.data.HasIDs(rel, args)
}

// Len returns the number of facts.
func (x *IndexedInstance) Len() int {
	if x.data == nil {
		return x.n
	}
	return x.data.Len()
}

// Instance returns the underlying instance. Callers must not mutate it
// except through Add. Panics on a CloneView, which has none.
func (x *IndexedInstance) Instance() *fact.Instance {
	if x.data == nil {
		panic("datalog: Instance on a read-only CloneView")
	}
	return x.data
}

// Valuations enumerates every satisfying valuation of the rule against
// the indexed instance, like the package-level Valuations but without
// rebuilding the index. The bindings passed to emit are stable
// snapshots.
func (x *IndexedInstance) Valuations(r Rule, emit func(Bindings) error) error {
	if err := r.Validate(); err != nil {
		return err
	}
	cr := compileRule(r)
	return cr.match(x.idx, x.data, nil, -1, nil, nil, func(env []fact.ID) error {
		return emit(cr.bindings(env))
	})
}

// ValuationsParallel enumerates the same valuations as Valuations but
// partitions the enumeration across workers by pinning the rule's
// first positive atom to chunks of its relation. The instance must not
// be mutated while the call runs. emit is invoked sequentially after
// the workers join, in chunk order, so callers need no
// synchronization; the full call is deterministic.
func (x *IndexedInstance) ValuationsParallel(r Rule, workers int, emit func(Bindings) error) error {
	if workers <= 1 || len(r.Pos) == 0 {
		return x.Valuations(r, emit)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	cr := compileRule(r)
	chunks := chunkFacts(x.idx.rel(cr.pos[0].rel), workers)
	if len(chunks) <= 1 {
		return x.Valuations(r, emit)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	results := make([][]Bindings, len(chunks))
	errs := make([]error, len(chunks))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				errs[c] = cr.match(x.idx, x.data, nil, 0, chunks[c], nil, func(env []fact.ID) error {
					results[c] = append(results[c], cr.bindings(env))
					return nil
				})
			}
		}()
	}
	for c := range chunks {
		next <- c
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, bs := range results {
		for _, b := range bs {
			if err := emit(b); err != nil {
				return err
			}
		}
	}
	return nil
}

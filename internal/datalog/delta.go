package datalog

import (
	"fmt"

	"repro/internal/fact"
)

// This file is the delta-hook surface the incremental view-maintenance
// engine (internal/incr) is built on. The semi-naive fixpoint already
// evaluates rules with one positive atom "pinned" to a delta; these
// hooks export that discipline — pinned enumeration, head-bound
// enumeration, and atom grounding — without exposing the engine's
// internals. Everything here reads the IndexedInstance only; mutation
// stays with Add and Remove.

// Ground applies the bindings to the atom, producing a fact. Every
// variable of the atom must be bound.
func Ground(a Atom, b Bindings) (fact.Fact, error) {
	return groundAtom(a, b)
}

// BindHead unifies the rule's head with the fact, returning the
// bindings a derivation of exactly that fact must extend, and whether
// unification succeeds (arities and constants must match, repeated
// variables must agree). Used to enumerate or count the derivations of
// a specific fact via MatchBound.
func (r Rule) BindHead(f fact.Fact) (Bindings, bool) {
	if r.Head.Rel != f.Rel() || len(r.Head.Args) != f.Arity() {
		return Bindings(nil), false
	}
	b := make(Bindings, len(r.Head.Args))
	for i, t := range r.Head.Args {
		v := f.Arg(i)
		if t.IsVar() {
			if bv, ok := b[t.Var]; ok {
				if bv != v {
					return nil, false
				}
			} else {
				b[t.Var] = v
			}
		} else if t.Const != v {
			return nil, false
		}
	}
	return b, true
}

// EvalPinned enumerates every satisfying valuation of the rule whose
// positive atom at index pin ranges over pinFacts (which need not be
// present in the instance), with all other atoms joined against the
// indexed instance and the guards (negation, inequalities) checked
// against it. For each valuation emit receives the ground head and the
// live bindings — callers needing to retain the bindings must
// snapshot. pinFacts must not contain duplicates, or valuations are
// enumerated once per copy.
//
// The instance must not be mutated while the call runs; concurrent
// EvalPinned calls over the same instance are safe.
func (x *IndexedInstance) EvalPinned(r Rule, pin int, pinFacts []fact.Fact, emit func(h fact.Fact, b Bindings) error) error {
	if pin < 0 || pin >= len(r.Pos) {
		return fmt.Errorf("datalog: EvalPinned pin %d out of range for %d positive atoms", pin, len(r.Pos))
	}
	if len(pinFacts) == 0 {
		return nil
	}
	return matchRule(r, x.idx, x.data, pin, pinFacts, nil, func(b Bindings) error {
		h, err := groundAtom(r.Head, b)
		if err != nil {
			return err
		}
		return emit(h, b)
	})
}

// MatchBound enumerates every satisfying valuation of the rule that
// extends the initial bindings (typically from BindHead), against the
// indexed instance. The bindings passed to emit are live; snapshot to
// retain. Counting the emissions for init = BindHead(f) counts the
// rule's derivations of f.
func (x *IndexedInstance) MatchBound(r Rule, init Bindings, emit func(Bindings) error) error {
	return matchRuleFrom(r, x.idx, x.data, init, -1, nil, nil, emit)
}

package datalog

import (
	"fmt"

	"repro/internal/fact"
)

// This file is the delta-hook surface the incremental view-maintenance
// engine (internal/incr) is built on. The semi-naive fixpoint already
// evaluates rules with one positive atom "pinned" to a delta; these
// hooks export that discipline — pinned enumeration, head-bound
// enumeration, and atom grounding — without exposing the engine's
// internals. Everything here reads the IndexedInstance only; mutation
// stays with Add and Remove.
//
// Two API planes coexist. The Valuation plane (EvalPinnedV,
// MatchBoundCount, MatchBoundAny) exposes the compiled matcher's slot
// environment directly: packed atom keys and head facts come from
// interned IDs with no string work, which is what the incremental
// engine's accept filters and support counting run on. The Bindings
// plane (EvalPinned, MatchBound) is the original string-typed surface,
// kept as a thin conversion layer for existing callers and tests.

// Ground applies the bindings to the atom, producing a fact. Every
// variable of the atom must be bound.
func Ground(a Atom, b Bindings) (fact.Fact, error) {
	return groundAtom(a, b)
}

// BindHead unifies the rule's head with the fact, returning the
// bindings a derivation of exactly that fact must extend, and whether
// unification succeeds (arities and constants must match, repeated
// variables must agree). Used to enumerate or count the derivations of
// a specific fact via MatchBound and friends.
func (r Rule) BindHead(f fact.Fact) (Bindings, bool) {
	if r.Head.Rel != f.Rel() || len(r.Head.Args) != f.Arity() {
		return Bindings(nil), false
	}
	b := make(Bindings, len(r.Head.Args))
	for i, t := range r.Head.Args {
		v := f.Arg(i)
		if t.IsVar() {
			if bv, ok := b[t.Var]; ok {
				if bv != v {
					return nil, false
				}
			} else {
				b[t.Var] = v
			}
		} else if t.Const != v {
			return nil, false
		}
	}
	return b, true
}

// Valuation is one satisfying valuation of a compiled rule, exposed to
// EvalPinnedV callbacks. It is a view into the matcher's live slot
// environment: valid only for the duration of the callback, and the
// byte slices returned by the *Key methods share one scratch buffer —
// each call invalidates the previous result.
type Valuation struct {
	cr  *cRule
	env []fact.ID
	buf []byte
}

// appendAtomKey packs (relation, grounded args) of a compiled atom
// under the environment into the scratch buffer.
func (v *Valuation) appendAtomKey(a cAtom) []byte {
	buf := fact.AppendPackedIDs(v.buf[:0], a.rel)
	for _, t := range a.terms {
		buf = fact.AppendPackedIDs(buf, termID(t, v.env))
	}
	v.buf = buf
	return buf
}

// HeadKey returns the packed key of the valuation's ground head — the
// same bytes Fact.AppendPacked produces for the head fact. Valid until
// the next *Key call on this valuation.
func (v *Valuation) HeadKey() []byte { return v.appendAtomKey(v.cr.head) }

// PosKey returns the packed key of positive body atom k grounded under
// the valuation. Valid until the next *Key call.
func (v *Valuation) PosKey(k int) []byte { return v.appendAtomKey(v.cr.pos[k]) }

// NegKey returns the packed key of negated body atom k grounded under
// the valuation. Valid until the next *Key call.
func (v *Valuation) NegKey(k int) []byte { return v.appendAtomKey(v.cr.neg[k]) }

// Head materializes the valuation's ground head fact.
func (v *Valuation) Head() (fact.Fact, error) {
	args := make([]fact.ID, len(v.cr.head.terms))
	if err := v.cr.groundHead(v.env, args); err != nil {
		return fact.Fact{}, err
	}
	return fact.FromIDs(v.cr.head.rel, args), nil
}

// Bindings converts the valuation to the string-typed Bindings form
// (a fresh snapshot, safe to retain).
func (v *Valuation) Bindings() Bindings { return v.cr.bindings(v.env) }

// CompiledRule is a rule pre-compiled to the matcher's slot/ID form.
// Compiling is pure per-rule setup (interning, slot numbering); a
// maintenance engine evaluating the same rules on every delta
// compiles once and reuses the result. A CompiledRule is immutable
// and safe to share across goroutines.
type CompiledRule struct{ cr cRule }

// Compile pre-compiles a rule for the *C evaluation entry points.
func Compile(r Rule) *CompiledRule {
	cr := compileRule(r)
	return &CompiledRule{cr: cr}
}

// Rule returns the source rule the compilation came from.
func (c *CompiledRule) Rule() Rule { return c.cr.src }

// EvalPinnedV enumerates every satisfying valuation of the rule whose
// positive atom at index pin ranges over pinFacts (which need not be
// present in the instance), with all other atoms joined against the
// indexed instance and the guards (negation, inequalities) checked
// against it. emit receives a live Valuation — key bytes and the
// environment are only valid during the call. pinFacts must not
// contain duplicates, or valuations are enumerated once per copy.
//
// The instance must not be mutated while the call runs; concurrent
// EvalPinnedV calls over the same instance are safe.
func (x *IndexedInstance) EvalPinnedV(r Rule, pin int, pinFacts []fact.Fact, emit func(v *Valuation) error) error {
	return x.EvalPinnedVC(Compile(r), pin, pinFacts, emit)
}

// EvalPinnedVC is EvalPinnedV over a pre-compiled rule — the hot-path
// form for engines that evaluate a fixed rule set repeatedly.
func (x *IndexedInstance) EvalPinnedVC(c *CompiledRule, pin int, pinFacts []fact.Fact, emit func(v *Valuation) error) error {
	if pin < 0 || pin >= len(c.cr.pos) {
		return fmt.Errorf("datalog: EvalPinned pin %d out of range for %d positive atoms", pin, len(c.cr.pos))
	}
	if len(pinFacts) == 0 {
		return nil
	}
	val := &Valuation{cr: &c.cr}
	return c.cr.match(x.idx, x.data, nil, pin, pinFacts, nil, func(env []fact.ID) error {
		val.env = env
		return emit(val)
	})
}

// EvalPinned is the Bindings-plane form of EvalPinnedV: emit receives
// the ground head and a snapshot of the bindings per valuation. New
// code on hot paths should prefer EvalPinnedV, which does no string
// work.
func (x *IndexedInstance) EvalPinned(r Rule, pin int, pinFacts []fact.Fact, emit func(h fact.Fact, b Bindings) error) error {
	return x.EvalPinnedV(r, pin, pinFacts, func(v *Valuation) error {
		h, err := v.Head()
		if err != nil {
			return err
		}
		return emit(h, v.Bindings())
	})
}

// MatchBound enumerates every satisfying valuation of the rule that
// extends the initial bindings (typically from BindHead), against the
// indexed instance. The bindings passed to emit are fresh snapshots,
// merged with any init entries for variables the rule does not use.
// Counting the emissions for init = BindHead(f) counts the rule's
// derivations of f.
func (x *IndexedInstance) MatchBound(r Rule, init Bindings, emit func(Bindings) error) error {
	cr := compileRule(r)
	env, ok := cr.seedEnv(init)
	if !ok {
		return nil
	}
	return cr.match(x.idx, x.data, env, -1, nil, nil, func(env []fact.ID) error {
		b := cr.bindings(env)
		for name, val := range init {
			if _, bound := b[name]; !bound {
				b[name] = val
			}
		}
		return emit(b)
	})
}

// MatchBoundCount returns the number of satisfying valuations of the
// rule extending the initial bindings — derivation counting without
// per-valuation allocation. For init = BindHead(f) this is the number
// of derivations of f through r.
func (x *IndexedInstance) MatchBoundCount(r Rule, init Bindings) (int64, error) {
	return x.MatchBoundCountC(Compile(r), init)
}

// MatchBoundCountC is MatchBoundCount over a pre-compiled rule.
func (x *IndexedInstance) MatchBoundCountC(c *CompiledRule, init Bindings) (int64, error) {
	env, ok := c.cr.seedEnv(init)
	if !ok {
		return 0, nil
	}
	var n int64
	if err := c.cr.match(x.idx, x.data, env, -1, nil, nil, func([]fact.ID) error {
		n++
		return nil
	}); err != nil {
		return 0, err
	}
	return n, nil
}

var errStopMatch = fmt.Errorf("datalog: stop enumeration")

// MatchBoundAny reports whether at least one satisfying valuation of
// the rule extends the initial bindings — the derivability test of the
// DRed rederivation pass, stopping at the first witness.
func (x *IndexedInstance) MatchBoundAny(r Rule, init Bindings) (bool, error) {
	return x.MatchBoundAnyC(Compile(r), init)
}

// MatchBoundAnyC is MatchBoundAny over a pre-compiled rule.
func (x *IndexedInstance) MatchBoundAnyC(c *CompiledRule, init Bindings) (bool, error) {
	env, ok := c.cr.seedEnv(init)
	if !ok {
		return false, nil
	}
	err := c.cr.match(x.idx, x.data, env, -1, nil, nil, func([]fact.ID) error {
		return errStopMatch
	})
	if err == errStopMatch {
		return true, nil
	}
	return false, err
}

package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fact"
)

func TestValuationsEnumerates(t *testing.T) {
	r, err := ParseRule(`P(x,z) :- E(x,y), E(y,z).`)
	if err != nil {
		t.Fatal(err)
	}
	data := fact.MustParseInstance(`E(a,b) E(b,c) E(b,d)`)
	var got []string
	err = Valuations(r, data, func(b Bindings) error {
		got = append(got, fmt.Sprintf("x=%s y=%s z=%s", b["x"], b["y"], b["z"]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d valuations, want 2: %v", len(got), got)
	}
}

func TestValuationsGuards(t *testing.T) {
	r, err := ParseRule(`P(x,y) :- E(x,y), !F(x), x != y.`)
	if err != nil {
		t.Fatal(err)
	}
	data := fact.MustParseInstance(`E(a,b) E(b,b) E(c,d) F(c)`)
	count := 0
	err = Valuations(r, data, func(b Bindings) error {
		count++
		if b["x"] != "a" {
			t.Errorf("unexpected valuation %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// E(b,b) fails x != y; E(c,d) fails !F(c); only E(a,b) survives.
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestValuationsSnapshotIsolated(t *testing.T) {
	// Bindings handed to emit must be stable snapshots.
	r, err := ParseRule(`P(x) :- E(x,y).`)
	if err != nil {
		t.Fatal(err)
	}
	data := fact.MustParseInstance(`E(a,b) E(c,d)`)
	var seen []Bindings
	if err := Valuations(r, data, func(b Bindings) error {
		seen = append(seen, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0]["x"] == seen[1]["x"] {
		t.Errorf("snapshots aliased: %v", seen)
	}
}

func TestValuationsErrorPropagates(t *testing.T) {
	r, _ := ParseRule(`P(x) :- E(x,y).`)
	data := fact.MustParseInstance(`E(a,b)`)
	sentinel := fmt.Errorf("stop")
	if err := Valuations(r, data, func(Bindings) error { return sentinel }); err != sentinel {
		t.Errorf("emit error not propagated: %v", err)
	}
}

// Valuation count of a single-atom rule equals the relation size; the
// rule P(x,y) :- E(x,y) has exactly one valuation per fact.
func TestValuationsCountProperty(t *testing.T) {
	r, _ := ParseRule(`P(x,y) :- E(x,y).`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := fact.NewInstance()
		n := rng.Intn(10)
		for k := 0; k < n; k++ {
			data.Add(fact.New("E",
				fact.Value(fmt.Sprintf("v%d", rng.Intn(5))),
				fact.Value(fmt.Sprintf("v%d", rng.Intn(5)))))
		}
		count := 0
		if err := Valuations(r, data, func(Bindings) error { count++; return nil }); err != nil {
			return false
		}
		return count == data.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultipleOutputRelations(t *testing.T) {
	p := MustParseProgram(`
		A(x) :- E(x,y).
		B(y) :- E(x,y).
	`)
	q, err := NewQuery(p, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`A(a) B(b)`)) {
		t.Errorf("multi-output query = %v", out)
	}
}

func TestConstantInHead(t *testing.T) {
	p := MustParseProgram(`O(x, "tag") :- E(x,y).`)
	out, err := p.Fixpoint(fact.MustParseInstance(`E(a,b)`), FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(fact.New("O", "a", "tag")) {
		t.Errorf("constant head not derived: %v", out)
	}
}

func TestSelfJoinRule(t *testing.T) {
	// The same relation twice in one body with shared variables.
	p := MustParseProgram(`O(x) :- E(x,y), E(y,x).`)
	out, err := p.Fixpoint(fact.MustParseInstance(`E(a,b) E(b,a) E(c,d)`), FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(fact.New("O", "a")) || !out.Has(fact.New("O", "b")) || out.Has(fact.New("O", "c")) {
		t.Errorf("self-join wrong: %v", out)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	// R(x,x) matches only facts with equal arguments.
	p := MustParseProgram(`O(x) :- E(x,x).`)
	out, err := p.Fixpoint(fact.MustParseInstance(`E(a,a) E(a,b)`), FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(fact.New("O", "a")) || out.Len() != 3 {
		t.Errorf("repeated-variable matching wrong: %v", out)
	}
}

package datalog

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
)

// Allocation regression tests for the interned/columnar hot path: the
// compiled matcher joins on integer slots and deduplicates against
// packed id tuples, so evaluating a rule must allocate only its fixed
// per-call scratch (environment, head tuple) — nothing per candidate
// fact and nothing per duplicate derivation. The tests pin that down
// two ways: the total for a full pass stays inside a small fixed
// budget, and it does not grow with the instance (zero marginal
// allocation per candidate/duplicate).

// allocProgram exercises both dedup index shapes: T is arity 2
// (packed uint64 key), P is arity 3 (packed byte-string key).
const allocProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
P(x,y,z) :- E(x,y), T(y,z).
`

// dedupPassAllocs measures allocations for one full evaluation pass of
// every rule over an instance already at fixpoint: every emitted head
// is a duplicate, checked through the same hasIDs membership the round
// executors use.
func dedupPassAllocs(t *testing.T, n int) float64 {
	t.Helper()
	prog := MustParseProgram(allocProgram)
	out, err := prog.Fixpoint(generate.Path("v", n), FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := IndexInstance(out)
	crs := compileRules(prog.Rules)
	novel := false
	emit := func(rel fact.ID, args []fact.ID) error {
		if !x.hasIDs(rel, args) {
			novel = true
		}
		return nil
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := range crs {
			if err := evalRuleC(&crs[i], x.idx, x.data, -1, nil, nil, emit); err != nil {
				panic(err)
			}
		}
	})
	if novel {
		t.Fatal("matcher emitted a novel head at fixpoint")
	}
	return avg
}

// TestDedupHotPathAllocs asserts the duplicate-derivation path is
// allocation-free: a full pass allocates a small fixed amount of
// per-rule scratch, and the amount is identical for a 12-node and a
// 72-node chain even though the large one scans ~40x the candidates.
func TestDedupHotPathAllocs(t *testing.T) {
	small := dedupPassAllocs(t, 12)
	large := dedupPassAllocs(t, 72)
	if small != large {
		t.Errorf("full-pass allocations grow with instance size: %v (n=12) vs %v (n=72); the per-candidate path allocates", small, large)
	}
	// Measured: 9 (3 rules × per-call scratch: env, used, head tuple,
	// matcher closure). Anything per-candidate blows well past this.
	const budget = 16
	if small > budget {
		t.Errorf("full dedup pass allocated %v objects, budget %d", small, budget)
	}
}

// TestFixpointAllocsPerDerivedFact bounds the whole engine: a
// semi-naive fixpoint run may allocate only a fixed small number of
// objects per derived fact (columnar row append, index posting, delta
// materialization). A regression that reintroduces per-candidate
// string keys or boxed tuples multiplies this severalfold.
func TestFixpointAllocsPerDerivedFact(t *testing.T) {
	prog := MustParseProgram(allocProgram)
	in := generate.Path("v", 64)
	out, err := prog.Fixpoint(in, FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	derived := out.Len() - in.Len()
	if derived < 1000 {
		t.Fatalf("test instance too small: %d derived facts", derived)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := prog.Fixpoint(in, FixpointOptions{}); err != nil {
			panic(err)
		}
	})
	perFact := avg / float64(derived)
	const budget = 8.0
	if perFact > budget {
		t.Errorf("fixpoint allocates %.2f objects per derived fact (%v total / %d derived), budget %.0f", perFact, avg, derived, budget)
	}
}

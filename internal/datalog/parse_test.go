package datalog

import (
	"testing"
)

func TestParseProgramBasic(t *testing.T) {
	p, err := ParseProgram(`
		# transitive closure
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
	`)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(p.Rules))
	}
	if p.Rules[0].String() != "T(x,y) :- E(x,y)." {
		t.Errorf("rule 0 = %q", p.Rules[0])
	}
}

func TestParseNegationForms(t *testing.T) {
	for _, src := range []string{
		`O(x) :- A(x), !B(x).`,
		`O(x) :- A(x), not B(x).`,
		`O(x) :- A(x), ¬B(x).`,
	} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Errorf("ParseProgram(%q): %v", src, err)
			continue
		}
		r := p.Rules[0]
		if len(r.Neg) != 1 || r.Neg[0].Rel != "B" {
			t.Errorf("%q: Neg = %v", src, r.Neg)
		}
	}
}

func TestParseInequalityForms(t *testing.T) {
	for _, src := range []string{
		`O(x,y) :- E(x,y), x != y.`,
		`O(x,y) :- E(x,y), x ≠ y.`,
		`O(x,y) :- E(x,y), x <> y.`,
	} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Errorf("ParseProgram(%q): %v", src, err)
			continue
		}
		r := p.Rules[0]
		if len(r.Ineq) != 1 {
			t.Errorf("%q: Ineq = %v", src, r.Ineq)
		}
	}
}

func TestParseArrowForms(t *testing.T) {
	a := MustParseProgram(`O(x) :- A(x).`)
	b := MustParseProgram(`O(x) <- A(x).`)
	if a.String() != b.String() {
		t.Errorf(":- and <- should parse identically: %q vs %q", a, b)
	}
}

func TestParseConstants(t *testing.T) {
	p := MustParseProgram(`O(x) :- E(x,"target"), R(x, 42).`)
	r := p.Rules[0]
	if r.Pos[0].Args[1].IsVar() || r.Pos[0].Args[1].Const != "target" {
		t.Errorf("quoted constant: %v", r.Pos[0].Args[1])
	}
	if r.Pos[1].Args[1].IsVar() || r.Pos[1].Args[1].Const != "42" {
		t.Errorf("numeric constant: %v", r.Pos[1].Args[1])
	}
}

func TestParsePaperExample51P1(t *testing.T) {
	// Example 5.1 P1 from the paper (with explicit Adom as edb here).
	p, err := ParseProgram(`
		T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
		O(x) :- ¬T(x), Adom(x).
	`)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	r0 := p.Rules[0]
	if len(r0.Pos) != 3 || len(r0.Ineq) != 3 {
		t.Errorf("P1 rule 1 parsed wrong: %v", r0)
	}
	r1 := p.Rules[1]
	if len(r1.Neg) != 1 || len(r1.Pos) != 1 {
		t.Errorf("P1 rule 2 parsed wrong: %v", r1)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                         // skipped below: the empty program is valid
		`O(x)`,                     // missing arrow
		`O(x) :- A(x)`,             // missing dot
		`O(x) :- .`,                // empty body
		`O(x) :- A(x), !B(x)`,      // missing dot after negation
		`:- A(x).`,                 // missing head
		`O(x) :- A(y).`,            // unsafe (validation)
		`O() :- A(x).`,             // nullary head
		`O(x) :- A(x,), B(x).`,     // stray comma
		`O(x) :- A(x) B(x).`,       // missing comma
		`O(x) :- A(x), x ! y.`,     // lone bang misuse
		`O(x,x2) :- A(x), x2 < x.`, // unsupported comparison
	}
	for _, s := range bad {
		if s == "" {
			continue
		}
		if _, err := ParseProgram(s); err == nil {
			t.Errorf("ParseProgram(%q) should fail", s)
		}
	}
}

func TestParseEmptyProgram(t *testing.T) {
	p, err := ParseProgram("  # nothing here\n")
	if err != nil {
		t.Fatalf("empty program: %v", err)
	}
	if len(p.Rules) != 0 {
		t.Errorf("empty program has %d rules", len(p.Rules))
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`T(x,y) :- E(x,y).`,
		`T(x,z) :- T(x,y), E(y,z).`,
		`O(x) :- A(x), !B(x), x != y, A(y).`,
		`Win(x) :- Move(x,y), !Win(y).`,
	}
	for _, src := range srcs {
		p1 := MustParseProgram(src)
		p2 := MustParseProgram(p1.String())
		if p1.String() != p2.String() {
			t.Errorf("round trip failed:\n%s\n%s", p1, p2)
		}
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule(`O(x) :- A(x).`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Head.Rel != "O" {
		t.Errorf("head = %v", r.Head)
	}
	if _, err := ParseRule(`O(x) :- A(x). P(x) :- A(x).`); err == nil {
		t.Error("ParseRule should reject multiple rules")
	}
}

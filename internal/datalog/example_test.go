package datalog_test

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// Evaluate transitive closure with the semi-naive fixpoint.
func ExampleProgram_Fixpoint() {
	p := datalog.MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
	`)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	out, err := p.Fixpoint(in, datalog.FixpointOptions{})
	if err != nil {
		panic(err)
	}
	for _, f := range out.Rel("T") {
		fmt.Println(f)
	}
	// Output:
	// T(a,b)
	// T(a,c)
	// T(b,c)
}

// Stratified negation: the complement of reachability.
func ExampleProgram_EvalStratified() {
	p := datalog.MustParseProgram(`
		T(x,y)  :- E(x,y).
		T(x,z)  :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y)  :- Adom(x), Adom(y), !T(x,y).
	`)
	out, err := p.EvalStratified(fact.MustParseInstance(`E(a,b)`), datalog.FixpointOptions{})
	if err != nil {
		panic(err)
	}
	for _, f := range out.Rel("O") {
		fmt.Println(f)
	}
	// Output:
	// O(a,a)
	// O(b,a)
	// O(b,b)
}

// Classify a program into the fragments of the paper's Figure 2.
func ExampleProgram_Classify() {
	qtc := datalog.MustParseProgram(`
		T(x,y)  :- E(x,y).
		T(x,z)  :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y)  :- Adom(x), Adom(y), !T(x,y).
	`)
	winmove := datalog.MustParseProgram(`Win(x) :- Move(x,y), !Win(y).`)
	fmt.Println(qtc.Classify())
	fmt.Println(winmove.Classify())
	// Output:
	// semicon-Datalog¬
	// unstratifiable
}

// graph+ connectivity of individual rules (Section 5.1).
func ExampleRule_IsConnected() {
	chain, _ := datalog.ParseRule(`O(x,z) :- E(x,y), E(y,z).`)
	product, _ := datalog.ParseRule(`O(x,u) :- E(x,y), E(u,v).`)
	fmt.Println(chain.IsConnected())
	fmt.Println(product.IsConnected())
	// Output:
	// true
	// false
}

package datalog

import (
	"fmt"
	"strconv"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file holds the engine's instrumentation plumbing. A nil
// *engineObs is the disabled state: the fixpoint loops carry one
// pointer and pay one branch per round, and the matcher pays one
// branch per atom selection (a nil *int64 check) — the overhead gated
// by scripts/check.sh. With instrumentation on, every task accumulates
// into private, non-atomic taskStats that are merged at the round
// barrier, so the parallel engine's determinism argument (workers
// never share mutable state mid-round) extends to the metrics.
//
// Determinism contract: everything emitted to the Sink (round, stratum
// and fixpoint events) is a pure function of (program, input, mode,
// workers) — repeated runs of the same configuration produce
// byte-identical streams, regardless of scheduling. The aggregate
// counts (candidates, derived, duplicates, delta) are additionally
// invariant across worker counts; only the task count reflects the
// chunking. Scheduling-dependent measurements — per-worker task
// counts, busy and wall times — go only to the Registry.

// taskStats accumulates one evaluation task's counters.
type taskStats struct {
	candidates int64 // join candidate facts iterated by the matcher
	derived    int64 // emitted head facts new to the frozen instance
	duplicates int64 // emitted head facts suppressed as already known
}

// ruleAgg is taskStats aggregated per rule (index within the stratum).
type ruleAgg struct{ candidates, derived, duplicates int64 }

// roundAgg aggregates one round across all its tasks.
type roundAgg struct {
	candidates, derived, duplicates int64
	perRule                         []ruleAgg
}

func (a *roundAgg) addTask(ruleIdx int, ts taskStats) {
	a.candidates += ts.candidates
	a.derived += ts.derived
	a.duplicates += ts.duplicates
	if ruleIdx >= 0 && ruleIdx < len(a.perRule) {
		ra := &a.perRule[ruleIdx]
		ra.candidates += ts.candidates
		ra.derived += ts.derived
		ra.duplicates += ts.duplicates
	}
}

func (a *roundAgg) merge(b *roundAgg) {
	a.candidates += b.candidates
	a.derived += b.derived
	a.duplicates += b.duplicates
	for i := range b.perRule {
		a.perRule[i].candidates += b.perRule[i].candidates
		a.perRule[i].derived += b.perRule[i].derived
		a.perRule[i].duplicates += b.perRule[i].duplicates
	}
}

// engineObs carries the instrumentation state of one stratified
// evaluation. All methods are no-ops on a nil receiver.
type engineObs struct {
	reg  *obs.Registry
	sink *obs.Sink

	rounds, derivations, duplicates, candidates, deltaFacts, tasks *obs.Counter

	stratum  int    // 1-based ordinal of the stratum being evaluated
	rules    []Rule // rules of the current stratum
	round    int    // next round number within the stratum
	sDerived int64  // delta facts accumulated in this stratum
}

// newEngineObs returns nil when both sinks are absent — the disabled
// fast path the hot loops test for.
func newEngineObs(opts FixpointOptions) *engineObs {
	if opts.Reg == nil && opts.Sink == nil {
		return nil
	}
	return &engineObs{
		reg:         opts.Reg,
		sink:        opts.Sink,
		rounds:      opts.Reg.Counter(obs.DlRounds),
		derivations: opts.Reg.Counter(obs.DlDerivations),
		duplicates:  opts.Reg.Counter(obs.DlDuplicates),
		candidates:  opts.Reg.Counter(obs.DlCandidates),
		deltaFacts:  opts.Reg.Counter(obs.DlDeltaFacts),
		tasks:       opts.Reg.Counter(obs.DlTasks),
	}
}

func (eo *engineObs) newRoundAgg() *roundAgg {
	return &roundAgg{perRule: make([]ruleAgg, len(eo.rules))}
}

// beginStratum resets the per-stratum state.
func (eo *engineObs) beginStratum(stratum int, rules []Rule) {
	if eo == nil {
		return
	}
	eo.stratum = stratum
	eo.rules = rules
	eo.round = 0
	eo.sDerived = 0
	eo.reg.Counter(obs.DlStrata).Inc()
}

// roundDone publishes one round's aggregate: counters and per-rule
// counters into the registry, one deterministic round event into the
// sink. workerTasks/workerBusy are per-worker load figures from the
// parallel executor (nil for inline rounds); they stay in the
// Registry plane.
func (eo *engineObs) roundDone(mode EvalMode, ntasks int, agg *roundAgg, delta *fact.Instance, workerTasks, workerBusy []int64) {
	if eo == nil {
		return
	}
	round := eo.round
	eo.round++
	eo.sDerived += int64(delta.Len())
	eo.rounds.Inc()
	eo.tasks.Add(int64(ntasks))
	eo.derivations.Add(agg.derived)
	eo.duplicates.Add(agg.duplicates)
	eo.candidates.Add(agg.candidates)
	eo.deltaFacts.Add(int64(delta.Len()))
	if eo.reg != nil {
		for i, ra := range agg.perRule {
			if ra == (ruleAgg{}) {
				continue
			}
			base := fmt.Sprintf("%ss%d.r%d.%s.", obs.DlRulePrefix, eo.stratum, i, eo.rules[i].Head.Rel)
			eo.reg.Counter(base + "derivations").Add(ra.derived)
			eo.reg.Counter(base + "duplicates").Add(ra.duplicates)
			eo.reg.Counter(base + "candidates").Add(ra.candidates)
		}
		for w := range workerTasks {
			eo.reg.Counter(obs.DlWorkerTasksPrefix + strconv.Itoa(w)).Add(workerTasks[w])
			eo.reg.Histogram(obs.DlWorkerBusyNs).Observe(workerBusy[w])
		}
	}
	if eo.sink != nil {
		eo.sink.Emit(obs.EvDlRound,
			obs.F("stratum", eo.stratum),
			obs.F("round", round),
			obs.F("mode", mode.String()),
			obs.F("tasks", ntasks),
			obs.F("candidates", agg.candidates),
			obs.F("derived", agg.derived),
			obs.F("duplicates", agg.duplicates),
			obs.F("delta", delta.Len()))
	}
}

// endStratum emits the stratum summary event.
func (eo *engineObs) endStratum(x *IndexedInstance) {
	if eo == nil {
		return
	}
	if eo.sink != nil {
		eo.sink.Emit(obs.EvDlStratum,
			obs.F("stratum", eo.stratum),
			obs.F("rules", len(eo.rules)),
			obs.F("rounds", eo.round),
			obs.F("derived", eo.sDerived),
			obs.F("facts", x.Len()))
	}
}

// endFixpoint emits the evaluation summary event.
func (eo *engineObs) endFixpoint(strata int, x *IndexedInstance) {
	if eo == nil {
		return
	}
	if eo.sink != nil {
		eo.sink.Emit(obs.EvDlFixpoint,
			obs.F("strata", strata),
			obs.F("facts", x.Len()))
	}
}

package datalog

// This file implements the connectivity analysis of Section 5.1:
// graph+(ϕ) is the graph whose nodes are the variables occurring in
// positive body atoms of ϕ, with an edge between two variables when
// they co-occur in a positive body atom. A rule is connected when
// graph+(ϕ) is connected; a stratified program is connected
// (con-Datalog¬) when some stratification makes every stratum a
// connected SP-Datalog program, and semi-connected (semicon-Datalog¬)
// when some stratification makes every stratum except possibly the
// last one connected.

// IsConnected reports whether graph+(ϕ) is connected. Rules whose
// positive body mentions at most one variable are trivially connected.
func (r Rule) IsConnected() bool {
	vars := r.posVars()
	if len(vars) <= 1 {
		return true
	}
	// Union-find over the variables, merging per positive atom.
	parent := make(map[string]string, len(vars))
	for v := range vars {
		parent[v] = v
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, a := range r.Pos {
		var first string
		for v := range a.Vars() {
			if first == "" {
				first = v
				continue
			}
			parent[find(v)] = find(first)
		}
	}
	root := ""
	for v := range vars {
		r := find(v)
		if root == "" {
			root = r
		} else if r != root {
			return false
		}
	}
	return true
}

// AllRulesConnected reports whether every rule of the program is
// connected.
func (p *Program) AllRulesConnected() bool {
	for _, r := range p.Rules {
		if !r.IsConnected() {
			return false
		}
	}
	return true
}

// IsConnectedProgram reports whether P is in con-Datalog¬: P is
// syntactically stratifiable and some stratification makes every
// stratum connected. Because connectivity is a per-rule property and
// every rule belongs to exactly one stratum, this holds iff P is
// stratifiable and every rule is connected.
func (p *Program) IsConnectedProgram() bool {
	return p.IsStratifiable() && p.AllRulesConnected()
}

// IsSemiConnected reports whether P is in semicon-Datalog¬: there is a
// stratification such that all strata except possibly the last are
// connected SP-Datalog programs.
//
// Decision procedure: let U be the head predicates of the disconnected
// rules. In any witnessing stratification these predicates must sit in
// the final stratum. The final stratum is upward closed under positive
// dependency (if R is in the final stratum and R occurs positively in
// the body of a rule with head T, then ρ(T) ≥ ρ(R) forces T there too),
// so compute L = the positive-dependency closure of U. A predicate of L
// can never occur negated in any rule (that would force a strictly
// higher stratum than the maximum). If that holds — and P is
// stratifiable at all — the stratification that runs a canonical
// stratification of the L-free part first and all L-rules as one final
// stratum witnesses semi-connectedness.
func (p *Program) IsSemiConnected() bool {
	if !p.IsStratifiable() {
		return false
	}
	idb := p.IDB()

	// U: heads of disconnected rules.
	closure := make(map[string]bool)
	for _, r := range p.Rules {
		if !r.IsConnected() {
			closure[r.Head.Rel] = true
		}
	}
	// L: close U upward under positive occurrence in rule bodies.
	for {
		changed := false
		for _, r := range p.Rules {
			if closure[r.Head.Rel] {
				continue
			}
			for _, a := range r.Pos {
				if closure[a.Rel] {
					closure[r.Head.Rel] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// No predicate of L may occur negated anywhere.
	for _, r := range p.Rules {
		for _, a := range r.Neg {
			if idb.Has(a.Rel) && closure[a.Rel] {
				return false
			}
		}
	}
	return true
}

// SemiConnectedStratification returns a stratification witnessing
// semi-connectedness: every stratum except the last consists solely of
// connected rules. It returns ok=false when the program is not
// semi-connected.
func (p *Program) SemiConnectedStratification() (Stratification, bool) {
	if !p.IsSemiConnected() {
		return nil, false
	}
	rho, err := p.Stratify()
	if err != nil {
		return nil, false
	}
	// Recompute the closure L as in IsSemiConnected and push it to a
	// fresh final stratum.
	closure := make(map[string]bool)
	for _, r := range p.Rules {
		if !r.IsConnected() {
			closure[r.Head.Rel] = true
		}
	}
	for {
		changed := false
		for _, r := range p.Rules {
			if closure[r.Head.Rel] {
				continue
			}
			for _, a := range r.Pos {
				if closure[a.Rel] {
					closure[r.Head.Rel] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	if len(closure) == 0 {
		return rho, true
	}
	last := rho.NumStrata() + 1
	out := make(Stratification, len(rho))
	for rel, n := range rho {
		if closure[rel] {
			out[rel] = last
		} else {
			out[rel] = n
		}
	}
	return out, true
}

// Classify names the smallest fragment of Figure 2 that the program
// syntactically belongs to.
type Fragment string

// The Datalog fragments of the paper, ordered roughly by
// expressiveness as in Figure 2.
const (
	FragDatalog        Fragment = "Datalog"          // positive, no inequalities
	FragDatalogNeq     Fragment = "Datalog(≠)"       // positive with inequalities
	FragSPDatalog      Fragment = "SP-Datalog"       // negation on edb only
	FragConDatalog     Fragment = "con-Datalog¬"     // stratified, all rules connected
	FragSemiconDatalog Fragment = "semicon-Datalog¬" // stratified, disconnected rules confined to the last stratum
	FragStratified     Fragment = "Datalog¬"         // stratified, beyond semicon
	FragUnstratifiable Fragment = "unstratifiable"
)

// Classify returns the most specific fragment label for the program.
// Note the fragments are not totally ordered (con-Datalog¬ and
// SP-Datalog are incomparable); the order of preference here is
// Datalog, Datalog(≠), SP-Datalog, con-Datalog¬, semicon-Datalog¬,
// Datalog¬.
func (p *Program) Classify() Fragment {
	if !p.IsStratifiable() {
		return FragUnstratifiable
	}
	if p.IsPositive() {
		if p.HasInequalities() {
			return FragDatalogNeq
		}
		return FragDatalog
	}
	if p.IsSemiPositive() {
		return FragSPDatalog
	}
	if p.IsConnectedProgram() {
		return FragConDatalog
	}
	if p.IsSemiConnected() {
		return FragSemiconDatalog
	}
	return FragStratified
}

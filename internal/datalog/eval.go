package datalog

import (
	"fmt"

	"repro/internal/fact"
)

// This file implements the semantics of semi-positive Datalog¬
// programs (Section 2): the immediate consequence operator TP and its
// minimal fixpoint, with two interchangeable evaluation strategies —
// naive (recompute all rules each round; the correctness oracle) and
// semi-naive (each round only joins that touch at least one
// newly-derived fact; the default). Stratified programs are evaluated
// stratum by stratum in stratify.go.

// EvalMode selects the fixpoint evaluation strategy.
type EvalMode int

const (
	// SemiNaive evaluates deltas only; the default.
	SemiNaive EvalMode = iota
	// Naive re-evaluates every rule against the full instance each
	// round. Quadratically slower; kept as an oracle and for the
	// ablation benchmark.
	Naive
)

// Bindings maps variable names to domain values during rule matching.
type Bindings map[string]fact.Value

// argKey addresses the facts of a relation holding a given value at a
// given argument position — the access path for index-assisted joins.
type argKey struct {
	rel string
	pos int
	val fact.Value
}

// relIndex indexes an instance by relation name and additionally by
// (relation, position, value), so that rule evaluation can narrow the
// candidate facts for an atom whose argument is already bound.
type relIndex struct {
	byRel map[string][]fact.Fact
	byArg map[argKey][]fact.Fact
}

func newRelIndex() *relIndex {
	return &relIndex{
		byRel: make(map[string][]fact.Fact),
		byArg: make(map[argKey][]fact.Fact),
	}
}

func indexInstance(i *fact.Instance) *relIndex {
	idx := newRelIndex()
	for _, f := range i.Facts() {
		idx.add(f)
	}
	return idx
}

func (idx *relIndex) add(f fact.Fact) {
	idx.byRel[f.Rel()] = append(idx.byRel[f.Rel()], f)
	for p := 0; p < f.Arity(); p++ {
		k := argKey{f.Rel(), p, f.Arg(p)}
		idx.byArg[k] = append(idx.byArg[k], f)
	}
}

// candidates returns the facts that can possibly match the atom under
// the current bindings: the narrowest per-argument index available, or
// the full relation when no argument is bound yet.
func (idx *relIndex) candidates(a Atom, b Bindings) []fact.Fact {
	best := idx.byRel[a.Rel]
	found := false
	for p, t := range a.Args {
		var v fact.Value
		if t.IsVar() {
			bound, ok := b[t.Var]
			if !ok {
				continue
			}
			v = bound
		} else {
			v = t.Const
		}
		cand := idx.byArg[argKey{a.Rel, p, v}]
		if !found || len(cand) < len(best) {
			best = cand
			found = true
		}
	}
	return best
}

// matchAtom attempts to extend the bindings so that the atom matches
// the fact. It returns the variables newly bound (for backtracking)
// and whether the match succeeded.
func matchAtom(a Atom, f fact.Fact, b Bindings) ([]string, bool) {
	if a.Rel != f.Rel() || len(a.Args) != f.Arity() {
		return nil, false
	}
	var added []string
	for i, t := range a.Args {
		fv := f.Arg(i)
		if t.IsVar() {
			if bv, ok := b[t.Var]; ok {
				if bv != fv {
					unbind(b, added)
					return nil, false
				}
			} else {
				b[t.Var] = fv
				added = append(added, t.Var)
			}
		} else if t.Const != fv {
			unbind(b, added)
			return nil, false
		}
	}
	return added, true
}

func unbind(b Bindings, vars []string) {
	for _, v := range vars {
		delete(b, v)
	}
}

// groundAtom applies the bindings to an atom, producing a fact. All
// variables of the atom must be bound (guaranteed after the positive
// body is matched, by safety).
func groundAtom(a Atom, b Bindings) (fact.Fact, error) {
	args := make(fact.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v, ok := b[t.Var]
			if !ok {
				return fact.Fact{}, fmt.Errorf("datalog: unbound variable %s in %v", t.Var, a)
			}
			args[i] = v
		} else {
			args[i] = t.Const
		}
	}
	return fact.FromTuple(a.Rel, args), nil
}

// termValue resolves a term under the bindings.
func termValue(t Term, b Bindings) (fact.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

// checkGuards verifies the negative atoms and inequalities of a rule
// under complete bindings, against the instance held in idx.
func checkGuards(r Rule, b Bindings, data *fact.Instance) (bool, error) {
	for _, q := range r.Ineq {
		av, aok := termValue(q.A, b)
		bv, bok := termValue(q.B, b)
		if !aok || !bok {
			return false, fmt.Errorf("datalog: unbound variable in inequality %v", q)
		}
		if av == bv {
			return false, nil
		}
	}
	for _, a := range r.Neg {
		g, err := groundAtom(a, b)
		if err != nil {
			return false, err
		}
		if data.Has(g) {
			return false, nil
		}
	}
	return true, nil
}

// evalRule enumerates all satisfying valuations of r against data
// (indexed in idx). If deltaAtom >= 0, the positive atom at that index
// ranges over deltaFacts instead of the full index (the semi-naive
// discipline); the other atoms range over the full index. Derived head
// facts are passed to emit.
func evalRule(r Rule, idx *relIndex, data *fact.Instance, deltaAtom int, deltaFacts []fact.Fact, emit func(fact.Fact) error) error {
	b := make(Bindings)
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(r.Pos) {
			ok, err := checkGuards(r, b, data)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			h, err := groundAtom(r.Head, b)
			if err != nil {
				return err
			}
			return emit(h)
		}
		var candidates []fact.Fact
		if k == deltaAtom {
			candidates = deltaFacts
		} else {
			candidates = idx.candidates(r.Pos[k], b)
		}
		for _, f := range candidates {
			added, ok := matchAtom(r.Pos[k], f, b)
			if !ok {
				continue
			}
			if err := rec(k + 1); err != nil {
				return err
			}
			unbind(b, added)
		}
		return nil
	}
	return rec(0)
}

// Valuations enumerates every satisfying valuation of the rule against
// the instance (Section 2): each valuation binds all variables of the
// rule, satisfies the positive body, avoids the negative body, and
// respects the inequalities. Used by the wILOG¬ evaluator, which
// constructs head facts (possibly with invented values) itself.
func Valuations(r Rule, data *fact.Instance, emit func(Bindings) error) error {
	if err := r.Validate(); err != nil {
		return err
	}
	idx := indexInstance(data)
	b := make(Bindings)
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(r.Pos) {
			ok, err := checkGuards(r, b, data)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			snapshot := make(Bindings, len(b))
			for v, val := range b {
				snapshot[v] = val
			}
			return emit(snapshot)
		}
		for _, f := range idx.candidates(r.Pos[k], b) {
			added, ok := matchAtom(r.Pos[k], f, b)
			if !ok {
				continue
			}
			if err := rec(k + 1); err != nil {
				return err
			}
			unbind(b, added)
		}
		return nil
	}
	return rec(0)
}

// FixpointOptions configures fixpoint evaluation.
type FixpointOptions struct {
	Mode EvalMode
	// MaxRounds bounds the number of TP applications; 0 means
	// unbounded. Datalog¬ fixpoints always terminate on finite
	// inputs, so the bound exists only for defensive use.
	MaxRounds int
}

// Fixpoint computes the minimal fixpoint of the TP operator for a
// semi-positive program on the input instance: the output P(I) of
// Section 2, containing the input facts plus everything derivable.
//
// The program must be semi-positive — negated relations must not
// occur in rule heads — otherwise the fixpoint is not well defined and
// an error is returned. For stratified programs use EvalStratified.
func (p *Program) Fixpoint(input *fact.Instance, opts FixpointOptions) (*fact.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSemiPositive() {
		return nil, fmt.Errorf("datalog: Fixpoint requires a semi-positive program; use EvalStratified")
	}
	return fixpointUnchecked(p.Rules, input, opts)
}

// fixpointUnchecked runs the fixpoint loop assuming negated relations
// are static (semi-positive, or a stratum of a stratified program).
func fixpointUnchecked(rules []Rule, input *fact.Instance, opts FixpointOptions) (*fact.Instance, error) {
	full := input.Clone()
	idx := indexInstance(full)

	switch opts.Mode {
	case Naive:
		return naiveLoop(rules, full, idx, opts.MaxRounds)
	case SemiNaive:
		return semiNaiveLoop(rules, full, idx, opts.MaxRounds)
	default:
		return nil, fmt.Errorf("datalog: unknown evaluation mode %d", opts.Mode)
	}
}

func naiveLoop(rules []Rule, full *fact.Instance, idx *relIndex, maxRounds int) (*fact.Instance, error) {
	for round := 0; ; round++ {
		if maxRounds > 0 && round >= maxRounds {
			return nil, fmt.Errorf("datalog: fixpoint exceeded %d rounds", maxRounds)
		}
		var derived []fact.Fact
		for _, r := range rules {
			err := evalRule(r, idx, full, -1, nil, func(h fact.Fact) error {
				if !full.Has(h) {
					derived = append(derived, h)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		changed := false
		for _, h := range derived {
			if full.Add(h) {
				idx.add(h)
				changed = true
			}
		}
		if !changed {
			return full, nil
		}
	}
}

func semiNaiveLoop(rules []Rule, full *fact.Instance, idx *relIndex, maxRounds int) (*fact.Instance, error) {
	// Round 0 is a naive pass; afterwards, each rule is re-evaluated
	// once per positive atom whose relation gained facts, with that
	// atom restricted to the delta.
	delta := fact.NewInstance()
	for _, r := range rules {
		err := evalRule(r, idx, full, -1, nil, func(h fact.Fact) error {
			if !full.Has(h) {
				delta.Add(h)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, h := range delta.Facts() {
		full.Add(h)
		idx.add(h)
	}

	for round := 1; !delta.Empty(); round++ {
		if maxRounds > 0 && round >= maxRounds {
			return nil, fmt.Errorf("datalog: fixpoint exceeded %d rounds", maxRounds)
		}
		deltaIdx := indexInstance(delta)
		next := fact.NewInstance()
		for _, r := range rules {
			for k := range r.Pos {
				dfacts := deltaIdx.byRel[r.Pos[k].Rel]
				if len(dfacts) == 0 {
					continue
				}
				err := evalRule(r, idx, full, k, dfacts, func(h fact.Fact) error {
					if !full.Has(h) {
						next.Add(h)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
		for _, h := range next.Facts() {
			full.Add(h)
			idx.add(h)
		}
		delta = next
	}
	return full, nil
}

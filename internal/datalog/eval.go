package datalog

import (
	"fmt"
	"runtime"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements the semantics of semi-positive Datalog¬
// programs (Section 2): the immediate consequence operator TP and its
// minimal fixpoint, with three interchangeable evaluation strategies —
// naive (recompute all rules each round; the correctness oracle),
// semi-naive (each round only joins that touch at least one
// newly-derived fact; the default), and parallel (semi-naive with the
// per-round joins fanned across a worker pool; see parallel.go).
// Stratified programs are evaluated stratum by stratum in stratify.go.
//
// All loops evaluate compiled rules (compile.go): joins bind interned
// IDs into slot environments and derived heads are deduplicated
// against packed ID tuples, so the per-candidate and per-duplicate
// hot path performs no string work and no allocation.

// EvalMode selects the fixpoint evaluation strategy.
type EvalMode int

const (
	// SemiNaive evaluates deltas only; the default.
	SemiNaive EvalMode = iota
	// Naive re-evaluates every rule against the full instance each
	// round. Quadratically slower; kept as an oracle and for the
	// ablation benchmark.
	Naive
	// Parallel is semi-naive with each round's (rule, delta-chunk)
	// join tasks fanned across a worker pool. Workers derive into
	// private buffers that are merged at the round barrier, so the
	// result is identical to SemiNaive. Rounds whose pinned work is
	// below the inline threshold run on the coordinator instead (see
	// FixpointOptions.InlineBelow).
	Parallel
)

// String returns the mode's canonical CLI spelling.
func (m EvalMode) String() string {
	switch m {
	case SemiNaive:
		return "seminaive"
	case Naive:
		return "naive"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("EvalMode(%d)", int(m))
	}
}

// ParseEvalMode parses a mode name as spelled by String — "seminaive",
// "naive" or "parallel".
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "seminaive":
		return SemiNaive, nil
	case "naive":
		return Naive, nil
	case "parallel":
		return Parallel, nil
	default:
		return 0, fmt.Errorf("datalog: unknown evaluation mode %q (want seminaive, naive or parallel)", s)
	}
}

// Bindings maps variable names to domain values. It remains the
// public valuation surface (Valuations, MatchBound, delta hooks); the
// engines work on compiled slot environments internally and convert
// at the API boundary.
type Bindings map[string]fact.Value

// groundAtom applies the bindings to an atom, producing a fact. All
// variables of the atom must be bound.
func groundAtom(a Atom, b Bindings) (fact.Fact, error) {
	args := make(fact.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v, ok := b[t.Var]
			if !ok {
				return fact.Fact{}, fmt.Errorf("datalog: unbound variable %s in %v", t.Var, a)
			}
			args[i] = v
		} else {
			args[i] = t.Const
		}
	}
	return fact.FromTuple(a.Rel, args), nil
}

// Valuations enumerates every satisfying valuation of the rule against
// the instance (Section 2): each valuation binds all variables of the
// rule, satisfies the positive body, avoids the negative body, and
// respects the inequalities. Used by the wILOG¬ evaluator, which
// constructs head facts (possibly with invented values) itself.
//
// Valuations indexes the instance on every call; round-based callers
// should build an IndexedInstance once and use its Valuations method.
func Valuations(r Rule, data *fact.Instance, emit func(Bindings) error) error {
	return IndexInstance(data).Valuations(r, emit)
}

// FixpointOptions configures fixpoint evaluation.
type FixpointOptions struct {
	Mode EvalMode
	// MaxRounds bounds the number of productive TP applications —
	// rounds that derive at least one new fact; the final pass that
	// merely confirms the fixpoint is free. 0 means unbounded.
	// Datalog¬ fixpoints always terminate on finite inputs, so the
	// bound exists only for defensive use. All modes enforce the bound
	// identically: a program whose fixpoint needs k productive rounds
	// succeeds iff MaxRounds == 0 or MaxRounds >= k.
	MaxRounds int
	// Workers sets the worker-pool size for Parallel mode; 0 means
	// GOMAXPROCS. Ignored by the other modes.
	Workers int
	// InlineBelow is the Parallel-mode adaptive threshold: a round
	// whose total pinned work (sum of pinned-fact list lengths across
	// its tasks) is below it runs inline on the coordinator, skipping
	// the pool barrier — small deltas cost more to distribute than to
	// evaluate. 0 means the built-in default; negative disables
	// inlining (every multi-task round uses the pool). The threshold
	// changes scheduling only, never results or the event stream.
	InlineBelow int
	// Reg, when non-nil, receives engine metrics (counters, per-rule
	// work, worker utilization, wall-clock spans). See internal/obs
	// names.go for the dl.* vocabulary.
	Reg *obs.Registry
	// Sink, when non-nil, receives the deterministic structured event
	// stream (dl.round / dl.stratum / dl.fixpoint): a pure function of
	// (program, input, mode, workers), byte-identical across repeated
	// runs regardless of scheduling. Leaving both nil keeps the
	// disabled fast path.
	Sink *obs.Sink
}

func (o FixpointOptions) workers() int {
	if o.Mode != Parallel {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// defaultInlineBelow is the pinned-work threshold below which a
// parallel round runs inline. Tuned on the BenchmarkParallelTC
// topologies: chain-shaped fixpoints (many rounds of tiny deltas) run
// almost entirely inline, grid- and random-shaped ones (few rounds of
// wide deltas) still fan out.
const defaultInlineBelow = 256

func (o FixpointOptions) inlineBelow() int {
	if o.InlineBelow == 0 {
		return defaultInlineBelow
	}
	if o.InlineBelow < 0 {
		return 0
	}
	return o.InlineBelow
}

// Fixpoint computes the minimal fixpoint of the TP operator for a
// semi-positive program on the input instance: the output P(I) of
// Section 2, containing the input facts plus everything derivable.
//
// The program must be semi-positive — negated relations must not
// occur in rule heads — otherwise the fixpoint is not well defined and
// an error is returned. For stratified programs use EvalStratified.
func (p *Program) Fixpoint(input *fact.Instance, opts FixpointOptions) (*fact.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSemiPositive() {
		return nil, fmt.Errorf("datalog: Fixpoint requires a semi-positive program; use EvalStratified")
	}
	eo := newEngineObs(opts)
	stop := opts.Reg.Span(obs.DlFixpointNs)
	x := IndexInstance(input.Clone())
	eo.beginStratum(1, p.Rules)
	if err := evalStratum(p.Rules, x, opts, eo); err != nil {
		return nil, err
	}
	eo.endStratum(x)
	eo.endFixpoint(1, x)
	stop()
	return x.Instance(), nil
}

// evalStratum runs the fixpoint loop for one stratum in place on x,
// assuming negated relations are static (semi-positive, or a stratum
// of a stratified program). The shared IndexedInstance is what makes
// index reuse across strata possible.
func evalStratum(rules []Rule, x *IndexedInstance, opts FixpointOptions, eo *engineObs) error {
	if eo != nil && opts.Mode == Parallel {
		eo.reg.Gauge(obs.DlWorkers).SetMax(int64(opts.workers()))
	}
	switch opts.Mode {
	case Naive:
		return naiveLoop(rules, x, opts.MaxRounds, eo)
	case SemiNaive, Parallel:
		return semiNaiveLoop(rules, x, opts, eo)
	default:
		return fmt.Errorf("datalog: unknown evaluation mode %d", opts.Mode)
	}
}

func errMaxRounds(maxRounds int) error {
	return fmt.Errorf("datalog: fixpoint exceeded %d rounds", maxRounds)
}

func naiveLoop(rules []Rule, x *IndexedInstance, maxRounds int, eo *engineObs) error {
	crs := compileRules(rules)
	productive := 0
	for {
		derived := fact.NewInstance()
		var agg *roundAgg
		if eo != nil {
			agg = eo.newRoundAgg()
		}
		for i := range crs {
			cr := &crs[i]
			var err error
			if agg == nil {
				err = evalRuleC(cr, x.idx, x.data, -1, nil, nil, func(rel fact.ID, args []fact.ID) error {
					if !x.hasIDs(rel, args) {
						derived.AddIDs(rel, args)
					}
					return nil
				})
			} else {
				var ts taskStats
				err = evalRuleC(cr, x.idx, x.data, -1, nil, &ts.candidates, func(rel fact.ID, args []fact.ID) error {
					if !x.hasIDs(rel, args) {
						ts.derived++
						derived.AddIDs(rel, args)
					} else {
						ts.duplicates++
					}
					return nil
				})
				agg.addTask(i, ts)
			}
			if err != nil {
				return err
			}
		}
		eo.roundDone(Naive, len(crs), agg, derived, nil, nil)
		if derived.Empty() {
			return nil
		}
		productive++
		if maxRounds > 0 && productive > maxRounds {
			return errMaxRounds(maxRounds)
		}
		for _, h := range derived.Facts() {
			x.addNew(h)
		}
	}
}

// semiNaiveLoop is the delta-driven fixpoint: round 0 is a full pass;
// afterwards each rule is re-evaluated once per positive atom whose
// relation gained facts, with that atom pinned to the delta. In
// Parallel mode every round's tasks run on a persistent worker pool
// (parallel.go) unless the round's pinned work falls below the inline
// threshold; the derived facts are identical either way.
func semiNaiveLoop(rules []Rule, x *IndexedInstance, opts FixpointOptions, eo *engineObs) error {
	crs := compileRules(rules)
	workers := opts.workers()
	maxRounds := opts.MaxRounds
	var p *workerPool
	if opts.Mode == Parallel && workers > 1 {
		p = newWorkerPool(workers, opts.inlineBelow())
		defer p.close()
	}
	// Rounds below the inline threshold run on the coordinator, where
	// chunking a tiny delta into per-worker fragments only multiplies
	// matcher setup: when the chunked task list would run inline
	// anyway, rebuild it unchunked (one task per rule and pinned atom).
	// The threshold test matches the one runRound applies — pinned work
	// is the same sum either way — so the decision is deterministic.
	tasks := fullPassTasks(crs, x, workers)
	if p != nil && len(tasks) > 1 && pinnedWork(tasks) < p.inlineBelow {
		tasks = fullPassTasks(crs, x, 1)
	}
	delta, err := runRound(tasks, x, p, opts.Mode, eo)
	if err != nil {
		return err
	}
	productive := 0
	for !delta.Empty() {
		productive++
		if maxRounds > 0 && productive > maxRounds {
			return errMaxRounds(maxRounds)
		}
		deltaByRel := make(map[fact.ID][]fact.Fact)
		for _, h := range delta.Facts() {
			x.addNew(h)
			deltaByRel[h.RelID()] = append(deltaByRel[h.RelID()], h)
		}
		tasks := deltaTasks(crs, deltaByRel, workers)
		if p != nil && len(tasks) > 1 && pinnedWork(tasks) < p.inlineBelow {
			tasks = deltaTasks(crs, deltaByRel, 1)
		}
		delta, err = runRound(tasks, x, p, opts.Mode, eo)
		if err != nil {
			return err
		}
	}
	return nil
}

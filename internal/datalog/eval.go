package datalog

import (
	"fmt"
	"runtime"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements the semantics of semi-positive Datalog¬
// programs (Section 2): the immediate consequence operator TP and its
// minimal fixpoint, with three interchangeable evaluation strategies —
// naive (recompute all rules each round; the correctness oracle),
// semi-naive (each round only joins that touch at least one
// newly-derived fact; the default), and parallel (semi-naive with the
// per-round joins fanned across a worker pool; see parallel.go).
// Stratified programs are evaluated stratum by stratum in stratify.go.

// EvalMode selects the fixpoint evaluation strategy.
type EvalMode int

const (
	// SemiNaive evaluates deltas only; the default.
	SemiNaive EvalMode = iota
	// Naive re-evaluates every rule against the full instance each
	// round. Quadratically slower; kept as an oracle and for the
	// ablation benchmark.
	Naive
	// Parallel is semi-naive with each round's (rule, delta-chunk)
	// join tasks fanned across a worker pool. Workers derive into
	// private buffers that are merged at the round barrier, so the
	// result is identical to SemiNaive.
	Parallel
)

// String returns the mode's canonical CLI spelling.
func (m EvalMode) String() string {
	switch m {
	case SemiNaive:
		return "seminaive"
	case Naive:
		return "naive"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("EvalMode(%d)", int(m))
	}
}

// ParseEvalMode parses a mode name as spelled by String — "seminaive",
// "naive" or "parallel".
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "seminaive":
		return SemiNaive, nil
	case "naive":
		return Naive, nil
	case "parallel":
		return Parallel, nil
	default:
		return 0, fmt.Errorf("datalog: unknown evaluation mode %q (want seminaive, naive or parallel)", s)
	}
}

// Bindings maps variable names to domain values during rule matching.
type Bindings map[string]fact.Value

// matchAtom attempts to extend the bindings so that the atom matches
// the fact. It returns the variables newly bound (for backtracking)
// and whether the match succeeded.
func matchAtom(a Atom, f fact.Fact, b Bindings) ([]string, bool) {
	if a.Rel != f.Rel() || len(a.Args) != f.Arity() {
		return nil, false
	}
	var added []string
	for i, t := range a.Args {
		fv := f.Arg(i)
		if t.IsVar() {
			if bv, ok := b[t.Var]; ok {
				if bv != fv {
					unbind(b, added)
					return nil, false
				}
			} else {
				b[t.Var] = fv
				added = append(added, t.Var)
			}
		} else if t.Const != fv {
			unbind(b, added)
			return nil, false
		}
	}
	return added, true
}

func unbind(b Bindings, vars []string) {
	for _, v := range vars {
		delete(b, v)
	}
}

// groundAtom applies the bindings to an atom, producing a fact. All
// variables of the atom must be bound (guaranteed after the positive
// body is matched, by safety).
func groundAtom(a Atom, b Bindings) (fact.Fact, error) {
	args := make(fact.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v, ok := b[t.Var]
			if !ok {
				return fact.Fact{}, fmt.Errorf("datalog: unbound variable %s in %v", t.Var, a)
			}
			args[i] = v
		} else {
			args[i] = t.Const
		}
	}
	return fact.FromTuple(a.Rel, args), nil
}

// termValue resolves a term under the bindings.
func termValue(t Term, b Bindings) (fact.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

// checkGuards verifies the negative atoms and inequalities of a rule
// under complete bindings, against the instance held in data — or,
// when data is nil (a CloneView), against the index.
func checkGuards(r Rule, b Bindings, idx *relIndex, data *fact.Instance) (bool, error) {
	for _, q := range r.Ineq {
		av, aok := termValue(q.A, b)
		bv, bok := termValue(q.B, b)
		if !aok || !bok {
			return false, fmt.Errorf("datalog: unbound variable in inequality %v", q)
		}
		if av == bv {
			return false, nil
		}
	}
	for _, a := range r.Neg {
		g, err := groundAtom(a, b)
		if err != nil {
			return false, err
		}
		if data != nil {
			if data.Has(g) {
				return false, nil
			}
		} else if idx.has(g) {
			return false, nil
		}
	}
	return true, nil
}

// matchRule enumerates all satisfying valuations of r's body against
// data (indexed in idx) and calls yield for each. The bindings passed
// to yield are live — callers needing to retain them must snapshot.
//
// If pin >= 0, the positive atom at that index is matched first and
// ranges over pinFacts instead of the index: this implements both the
// semi-naive delta discipline (pin the atom whose relation changed to
// the newly-derived facts) and the parallel engine's work partitioning
// (pin an atom to a chunk of its relation).
//
// The remaining atoms are ordered by selectivity: at each step the
// unmatched atom with the fewest candidate facts under the current
// bindings is matched next, so atoms with bound arguments are joined
// before unconstrained scans.
//
// scanned, when non-nil, accumulates the number of candidate facts
// iterated (the engine's join-work measure). The count is kept in a
// local and flushed once per call, so the disabled (nil) case pays a
// plain register add in the join loop, not a branch.
func matchRule(r Rule, idx *relIndex, data *fact.Instance, pin int, pinFacts []fact.Fact, scanned *int64, yield func(Bindings) error) error {
	return matchRuleFrom(r, idx, data, nil, pin, pinFacts, scanned, yield)
}

// matchRuleFrom is matchRule starting from the given initial bindings
// (nil means none): only valuations extending init are enumerated. The
// incremental engine uses this to enumerate the derivations of a
// specific head fact by pre-binding the head variables.
func matchRuleFrom(r Rule, idx *relIndex, data *fact.Instance, init Bindings, pin int, pinFacts []fact.Fact, scanned *int64, yield func(Bindings) error) error {
	n := len(r.Pos)
	b := make(Bindings, len(init))
	for v, val := range init {
		b[v] = val
	}
	used := make([]bool, n)
	var nscanned int64
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == n {
			ok, err := checkGuards(r, b, idx, data)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return yield(b)
		}
		// Pick the next atom: the pinned atom first, then greedily the
		// most selective remaining one.
		var k int
		var cand []fact.Fact
		if depth == 0 && pin >= 0 {
			k, cand = pin, pinFacts
		} else {
			k = -1
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				c := idx.candidates(r.Pos[j], b)
				if k < 0 || len(c) < len(cand) {
					k, cand = j, c
					if len(cand) == 0 {
						break
					}
				}
			}
		}
		used[k] = true
		nscanned += int64(len(cand))
		for _, f := range cand {
			added, ok := matchAtom(r.Pos[k], f, b)
			if !ok {
				continue
			}
			if err := rec(depth + 1); err != nil {
				used[k] = false
				return err
			}
			unbind(b, added)
		}
		used[k] = false
		return nil
	}
	err := rec(0)
	if scanned != nil {
		*scanned += nscanned
	}
	return err
}

// evalRule enumerates all satisfying valuations of r against data
// (indexed in idx) and passes the derived head facts to emit. pin,
// pinFacts and scanned are as for matchRule; pass pin = -1 for a full
// evaluation.
func evalRule(r Rule, idx *relIndex, data *fact.Instance, pin int, pinFacts []fact.Fact, scanned *int64, emit func(fact.Fact) error) error {
	return matchRule(r, idx, data, pin, pinFacts, scanned, func(b Bindings) error {
		h, err := groundAtom(r.Head, b)
		if err != nil {
			return err
		}
		return emit(h)
	})
}

// Valuations enumerates every satisfying valuation of the rule against
// the instance (Section 2): each valuation binds all variables of the
// rule, satisfies the positive body, avoids the negative body, and
// respects the inequalities. Used by the wILOG¬ evaluator, which
// constructs head facts (possibly with invented values) itself.
//
// Valuations indexes the instance on every call; round-based callers
// should build an IndexedInstance once and use its Valuations method.
func Valuations(r Rule, data *fact.Instance, emit func(Bindings) error) error {
	return IndexInstance(data).Valuations(r, emit)
}

// FixpointOptions configures fixpoint evaluation.
type FixpointOptions struct {
	Mode EvalMode
	// MaxRounds bounds the number of productive TP applications —
	// rounds that derive at least one new fact; the final pass that
	// merely confirms the fixpoint is free. 0 means unbounded.
	// Datalog¬ fixpoints always terminate on finite inputs, so the
	// bound exists only for defensive use. All modes enforce the bound
	// identically: a program whose fixpoint needs k productive rounds
	// succeeds iff MaxRounds == 0 or MaxRounds >= k.
	MaxRounds int
	// Workers sets the worker-pool size for Parallel mode; 0 means
	// GOMAXPROCS. Ignored by the other modes.
	Workers int
	// Reg, when non-nil, receives engine metrics (counters, per-rule
	// work, worker utilization, wall-clock spans). See internal/obs
	// names.go for the dl.* vocabulary.
	Reg *obs.Registry
	// Sink, when non-nil, receives the deterministic structured event
	// stream (dl.round / dl.stratum / dl.fixpoint): a pure function of
	// (program, input, mode, workers), byte-identical across repeated
	// runs regardless of scheduling. Leaving both nil keeps the
	// disabled fast path.
	Sink *obs.Sink
}

func (o FixpointOptions) workers() int {
	if o.Mode != Parallel {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Fixpoint computes the minimal fixpoint of the TP operator for a
// semi-positive program on the input instance: the output P(I) of
// Section 2, containing the input facts plus everything derivable.
//
// The program must be semi-positive — negated relations must not
// occur in rule heads — otherwise the fixpoint is not well defined and
// an error is returned. For stratified programs use EvalStratified.
func (p *Program) Fixpoint(input *fact.Instance, opts FixpointOptions) (*fact.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSemiPositive() {
		return nil, fmt.Errorf("datalog: Fixpoint requires a semi-positive program; use EvalStratified")
	}
	eo := newEngineObs(opts)
	stop := opts.Reg.Span(obs.DlFixpointNs)
	x := IndexInstance(input.Clone())
	eo.beginStratum(1, p.Rules)
	if err := evalStratum(p.Rules, x, opts, eo); err != nil {
		return nil, err
	}
	eo.endStratum(x)
	eo.endFixpoint(1, x)
	stop()
	return x.Instance(), nil
}

// evalStratum runs the fixpoint loop for one stratum in place on x,
// assuming negated relations are static (semi-positive, or a stratum
// of a stratified program). The shared IndexedInstance is what makes
// index reuse across strata possible.
func evalStratum(rules []Rule, x *IndexedInstance, opts FixpointOptions, eo *engineObs) error {
	if eo != nil && opts.Mode == Parallel {
		eo.reg.Gauge(obs.DlWorkers).SetMax(int64(opts.workers()))
	}
	switch opts.Mode {
	case Naive:
		return naiveLoop(rules, x, opts.MaxRounds, eo)
	case SemiNaive, Parallel:
		return semiNaiveLoop(rules, x, opts.Mode, opts.MaxRounds, opts.workers(), eo)
	default:
		return fmt.Errorf("datalog: unknown evaluation mode %d", opts.Mode)
	}
}

func errMaxRounds(maxRounds int) error {
	return fmt.Errorf("datalog: fixpoint exceeded %d rounds", maxRounds)
}

func naiveLoop(rules []Rule, x *IndexedInstance, maxRounds int, eo *engineObs) error {
	productive := 0
	for {
		derived := fact.NewInstance()
		var agg *roundAgg
		if eo != nil {
			agg = eo.newRoundAgg()
		}
		for i, r := range rules {
			var err error
			if agg == nil {
				err = evalRule(r, x.idx, x.data, -1, nil, nil, func(h fact.Fact) error {
					if !x.Has(h) {
						derived.Add(h)
					}
					return nil
				})
			} else {
				var ts taskStats
				err = evalRule(r, x.idx, x.data, -1, nil, &ts.candidates, func(h fact.Fact) error {
					if !x.Has(h) {
						ts.derived++
						derived.Add(h)
					} else {
						ts.duplicates++
					}
					return nil
				})
				agg.addTask(i, ts)
			}
			if err != nil {
				return err
			}
		}
		eo.roundDone(Naive, len(rules), agg, derived, nil, nil)
		if derived.Empty() {
			return nil
		}
		productive++
		if maxRounds > 0 && productive > maxRounds {
			return errMaxRounds(maxRounds)
		}
		for _, h := range derived.Facts() {
			x.Add(h)
		}
	}
}

// semiNaiveLoop is the delta-driven fixpoint: round 0 is a full pass;
// afterwards each rule is re-evaluated once per positive atom whose
// relation gained facts, with that atom pinned to the delta. With
// workers > 1 every round's tasks run on a worker pool (parallel.go);
// the derived facts are identical either way.
func semiNaiveLoop(rules []Rule, x *IndexedInstance, mode EvalMode, maxRounds, workers int, eo *engineObs) error {
	delta, err := runRound(fullPassTasks(rules, x, workers), x, workers, mode, eo)
	if err != nil {
		return err
	}
	productive := 0
	for !delta.Empty() {
		productive++
		if maxRounds > 0 && productive > maxRounds {
			return errMaxRounds(maxRounds)
		}
		deltaByRel := make(map[string][]fact.Fact)
		for _, h := range delta.Facts() {
			x.Add(h)
			deltaByRel[h.Rel()] = append(deltaByRel[h.Rel()], h)
		}
		delta, err = runRound(deltaTasks(rules, deltaByRel, workers), x, workers, mode, eo)
		if err != nil {
			return err
		}
	}
	return nil
}

package datalog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/fact"
)

// This file implements a parser for the conventional rule syntax used
// in the paper, e.g.:
//
//	T(x,y) :- R(x,y), !S(y), x != y.
//	O(x)   :- not D(x), Adom(x).
//
// Plain identifiers are variables (the paper's rules use lowercase
// variables like x, y, z). Constants are double-quoted strings or
// tokens beginning with a digit. Negation is written "!", "¬" or
// "not"; inequality "!=", "≠" or "<>"; the rule arrow ":-" or "<-";
// rules end with ".". Comments run from '#' or '%' to end of line.

// ParseProgram parses a whole program.
func ParseProgram(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &ruleParser{toks: toks}
	prog := NewProgram()
	for !p.eof() {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParseProgram is like ParseProgram but panics on error; for
// statically known programs in tests and examples.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseProgramWithInvention parses a program in ILOG¬ syntax, where a
// rule head may carry the invention symbol as its first argument —
// "Id(*, x, y) :- E(x,y)." or "Id(*) :- V(x)." — and returns the rules
// with the symbol stripped plus a parallel slice marking which rules
// invent. Rules and schema are NOT validated here (invention relations
// legitimately appear at full arity in bodies); the ilog package
// validates the assembled program.
func ParseProgramWithInvention(src string) ([]Rule, []bool, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &ruleParser{toks: toks, allowInvention: true}
	var rules []Rule
	var invents []bool
	for !p.eof() {
		r, err := p.rule()
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, r)
		invents = append(invents, p.lastInvention)
	}
	return rules, invents, nil
}

// ParseRule parses a single rule.
func ParseRule(src string) (Rule, error) {
	p, err := ParseProgram(src)
	if err != nil {
		return Rule{}, err
	}
	if len(p.Rules) != 1 {
		return Rule{}, fmt.Errorf("datalog: expected exactly one rule, got %d", len(p.Rules))
	}
	return p.Rules[0], nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokConst
	tokArrow  // :- or <-
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokDot    // .
	tokBang   // ! or ¬ or not
	tokNeq    // != or ≠ or <>
	tokStar   // * (ILOG¬ invention symbol, head position only)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		r, size := utf8.DecodeRuneInString(src[i:])
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			i += size
		case r == '#' || r == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case r == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case r == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case r == '¬':
			toks = append(toks, token{tokBang, "¬", i})
			i += size
		case r == '≠':
			toks = append(toks, token{tokNeq, "≠", i})
			i += size
		case r == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokBang, "!", i})
				i++
			}
		case r == '<':
			if i+1 < len(src) && src[i+1] == '-' {
				toks = append(toks, token{tokArrow, "<-", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokNeq, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: unexpected '<' at offset %d", i)
			}
		case r == ':':
			if i+1 < len(src) && src[i+1] == '-' {
				toks = append(toks, token{tokArrow, ":-", i})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: unexpected ':' at offset %d", i)
			}
		case r == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("datalog: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokConst, b.String(), i})
			i = j + 1
		case unicode.IsDigit(r):
			j := i
			for j < len(src) && (isIdentRune(rune(src[j])) || src[j] == '.') {
				// A digit-leading token is a constant; allow dots for
				// decimals but stop before a dot that ends the rule
				// (digit not following).
				if src[j] == '.' && (j+1 >= len(src) || !unicode.IsDigit(rune(src[j+1]))) {
					break
				}
				j++
			}
			toks = append(toks, token{tokConst, src[i:j], i})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(src) {
				rr, sz := utf8.DecodeRuneInString(src[j:])
				if !isIdentRune(rr) {
					break
				}
				j += sz
			}
			word := src[i:j]
			if word == "not" {
				toks = append(toks, token{tokBang, "not", i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("datalog: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

type ruleParser struct {
	toks []token
	i    int
	// allowInvention accepts the ILOG¬ invention symbol '*' as the
	// first argument of head atoms; lastInvention records whether the
	// most recently parsed rule used it.
	allowInvention bool
	lastInvention  bool
}

func (p *ruleParser) eof() bool { return p.i >= len(p.toks) }

func (p *ruleParser) peek() (token, bool) {
	if p.eof() {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *ruleParser) expect(k tokKind, what string) (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("datalog: expected %s at end of input", what)
	}
	if t.kind != k {
		return token{}, fmt.Errorf("datalog: expected %s, got %q at offset %d", what, t.text, t.pos)
	}
	p.i++
	return t, nil
}

func (p *ruleParser) rule() (Rule, error) {
	head, err := p.headAtom()
	if err != nil {
		return Rule{}, err
	}
	if _, err := p.expect(tokArrow, `":-"`); err != nil {
		return Rule{}, err
	}
	var r Rule
	r.Head = head
	for {
		t, ok := p.peek()
		if !ok {
			return Rule{}, fmt.Errorf("datalog: unterminated rule body (missing '.')")
		}
		switch t.kind {
		case tokBang:
			p.i++
			a, err := p.atom()
			if err != nil {
				return Rule{}, err
			}
			r.Neg = append(r.Neg, a)
		case tokIdent, tokConst:
			// Either an atom R(...) or an inequality "x != y".
			if t.kind == tokIdent && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokLParen {
				a, err := p.atom()
				if err != nil {
					return Rule{}, err
				}
				r.Pos = append(r.Pos, a)
			} else {
				q, err := p.inequality()
				if err != nil {
					return Rule{}, err
				}
				r.Ineq = append(r.Ineq, q)
			}
		default:
			return Rule{}, fmt.Errorf("datalog: unexpected %q in rule body at offset %d", t.text, t.pos)
		}
		t, ok = p.peek()
		if !ok {
			return Rule{}, fmt.Errorf("datalog: unterminated rule (missing '.')")
		}
		switch t.kind {
		case tokComma:
			p.i++
		case tokDot:
			p.i++
			return r, nil
		default:
			return Rule{}, fmt.Errorf("datalog: expected ',' or '.', got %q at offset %d", t.text, t.pos)
		}
	}
}

// headAtom parses a head atom, accepting the invention symbol '*' as
// the first argument when allowInvention is set: "Id(*, x, y)" or
// "Id(*)". The invention symbol is stripped from the returned atom and
// recorded in lastInvention.
func (p *ruleParser) headAtom() (Atom, error) {
	p.lastInvention = false
	name, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen, `"("`); err != nil {
		return Atom{}, err
	}
	if tk, ok := p.peek(); ok && tk.kind == tokStar {
		if !p.allowInvention {
			return Atom{}, fmt.Errorf("datalog: invention symbol '*' at offset %d (only valid in ILOG¬ programs)", tk.pos)
		}
		p.i++
		p.lastInvention = true
		tk, ok = p.peek()
		if !ok {
			return Atom{}, fmt.Errorf("datalog: unterminated invention head %s", name.text)
		}
		switch tk.kind {
		case tokRParen: // "Id(*)"
			p.i++
			return Atom{Rel: name.text}, nil
		case tokComma:
			p.i++
		default:
			return Atom{}, fmt.Errorf("datalog: expected ',' or ')' after '*', got %q at offset %d", tk.text, tk.pos)
		}
	}
	return p.atomArgs(name.text)
}

func (p *ruleParser) atom() (Atom, error) {
	name, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen, `"("`); err != nil {
		return Atom{}, err
	}
	return p.atomArgs(name.text)
}

// atomArgs parses the argument list after the opening parenthesis.
func (p *ruleParser) atomArgs(name string) (Atom, error) {
	var args []Term
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		tk, ok := p.peek()
		if !ok {
			return Atom{}, fmt.Errorf("datalog: unterminated atom %s", name)
		}
		switch tk.kind {
		case tokComma:
			p.i++
		case tokRParen:
			p.i++
			return Atom{Rel: name, Args: args}, nil
		default:
			return Atom{}, fmt.Errorf("datalog: expected ',' or ')', got %q at offset %d", tk.text, tk.pos)
		}
	}
}

func (p *ruleParser) term() (Term, error) {
	t, ok := p.peek()
	if !ok {
		return Term{}, fmt.Errorf("datalog: expected term at end of input")
	}
	switch t.kind {
	case tokIdent:
		p.i++
		return V(t.text), nil
	case tokConst:
		p.i++
		return C(fact.Value(t.text)), nil
	default:
		return Term{}, fmt.Errorf("datalog: expected term, got %q at offset %d", t.text, t.pos)
	}
}

func (p *ruleParser) inequality() (Inequality, error) {
	a, err := p.term()
	if err != nil {
		return Inequality{}, err
	}
	if _, err := p.expect(tokNeq, `"!="`); err != nil {
		return Inequality{}, err
	}
	b, err := p.term()
	if err != nil {
		return Inequality{}, err
	}
	return Inequality{A: a, B: b}, nil
}

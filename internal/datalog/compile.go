package datalog

import (
	"fmt"

	"repro/internal/fact"
)

// This file implements the compiled-rule matcher: before a fixpoint
// (or a delta-hook enumeration) runs, each Rule is compiled into a
// form whose variables are dense slots and whose relation names and
// constants are interned IDs. Matching then works entirely on
// integers — an environment is a flat []fact.ID indexed by slot, an
// atom match is a handful of uint32 compares, and grounding a head
// writes IDs into a scratch tuple — so the join/dedup hot path of the
// engines allocates nothing per candidate fact and nothing per
// duplicate derivation (see alloc_test.go). The string-typed Rule and
// Bindings APIs remain the public surface; compiled rules are the
// engine-internal representation they lower to.

// cTerm is a compiled term: a variable slot, or an interned constant.
type cTerm struct {
	slot int32   // variable slot, or -1 for a constant
	cnst fact.ID // constant symbol when slot < 0
}

// cAtom is a compiled atom over interned symbols.
type cAtom struct {
	rel   fact.ID
	terms []cTerm
}

// cIneq is a compiled inequality guard.
type cIneq struct{ a, b cTerm }

// cRule is a compiled rule. Variables are numbered by first
// occurrence scanning the positive body, then the negative body, the
// head, and the inequalities; vars maps slots back to names for the
// Bindings-typed compatibility APIs. A compiled rule is immutable
// after compileRule returns and safe to share across goroutines.
type cRule struct {
	src      Rule
	head     cAtom
	pos      []cAtom
	neg      []cAtom
	ineq     []cIneq
	vars     []string
	negArity int // max arity over neg, for the guard scratch tuple
}

func compileRule(r Rule) cRule {
	cr := cRule{src: r}
	slot := func(name string) int32 {
		for i, v := range cr.vars {
			if v == name {
				return int32(i)
			}
		}
		cr.vars = append(cr.vars, name)
		return int32(len(cr.vars) - 1)
	}
	ct := func(t Term) cTerm {
		if t.IsVar() {
			return cTerm{slot: slot(t.Var)}
		}
		return cTerm{slot: -1, cnst: fact.Intern(t.Const)}
	}
	ca := func(a Atom) cAtom {
		at := cAtom{rel: fact.InternString(a.Rel), terms: make([]cTerm, len(a.Args))}
		for i, t := range a.Args {
			at.terms[i] = ct(t)
		}
		return at
	}
	cr.pos = make([]cAtom, len(r.Pos))
	for i, a := range r.Pos {
		cr.pos[i] = ca(a)
	}
	cr.neg = make([]cAtom, len(r.Neg))
	for i, a := range r.Neg {
		cr.neg[i] = ca(a)
		if len(a.Args) > cr.negArity {
			cr.negArity = len(a.Args)
		}
	}
	cr.head = ca(r.Head)
	cr.ineq = make([]cIneq, len(r.Ineq))
	for i, q := range r.Ineq {
		cr.ineq[i] = cIneq{a: ct(q.A), b: ct(q.B)}
	}
	return cr
}

func compileRules(rules []Rule) []cRule {
	crs := make([]cRule, len(rules))
	for i, r := range rules {
		crs[i] = compileRule(r)
	}
	return crs
}

// termID resolves a compiled term under the environment (NoID when the
// term is an unbound variable).
func termID(t cTerm, env []fact.ID) fact.ID {
	if t.slot < 0 {
		return t.cnst
	}
	return env[t.slot]
}

// checkGuards verifies the inequalities and negative atoms under a
// complete environment, against the instance held in data — or, when
// data is nil (a CloneView), against the index. scratch is the
// caller's reusable grounding tuple.
func (cr *cRule) checkGuards(env []fact.ID, idx *relIndex, data *fact.Instance, scratch []fact.ID) (bool, error) {
	for _, q := range cr.ineq {
		av, bv := termID(q.a, env), termID(q.b, env)
		if av == fact.NoID || bv == fact.NoID {
			return false, fmt.Errorf("datalog: unbound variable in inequality of %v", cr.src)
		}
		if av == bv {
			return false, nil
		}
	}
	for _, a := range cr.neg {
		scratch = scratch[:0]
		for _, t := range a.terms {
			v := termID(t, env)
			if v == fact.NoID {
				return false, fmt.Errorf("datalog: unbound variable in negated atom of %v", cr.src)
			}
			scratch = append(scratch, v)
		}
		if data != nil {
			if data.HasIDs(a.rel, scratch) {
				return false, nil
			}
		} else if idx.hasIDs(a.rel, scratch) {
			return false, nil
		}
	}
	return true, nil
}

// match enumerates all satisfying environments of cr's body against
// the index (membership guards against data when non-nil, else the
// index) and calls yield for each. The environment passed to yield is
// live — callers needing to retain values must copy.
//
// If pin >= 0, the positive atom at that index is matched first and
// ranges over pinFacts instead of the index: this implements both the
// semi-naive delta discipline and the parallel engine's work
// partitioning. init, when non-nil, pre-binds slots (NoID means
// unbound); only environments extending it are enumerated.
//
// The remaining atoms are ordered by selectivity exactly as the
// string-based matcher did: at each step the unmatched atom with the
// fewest candidate facts under the current environment is matched
// next. scanned, when non-nil, accumulates the number of candidate
// facts iterated.
func (cr *cRule) match(idx *relIndex, data *fact.Instance, init []fact.ID, pin int, pinFacts []fact.Fact, scanned *int64, yield func(env []fact.ID) error) error {
	n := len(cr.pos)
	env := make([]fact.ID, len(cr.vars))
	if init != nil {
		copy(env, init)
	} else {
		for i := range env {
			env[i] = fact.NoID
		}
	}
	used := make([]bool, n)
	guardScratch := make([]fact.ID, 0, cr.negArity)
	var nscanned int64
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == n {
			ok, err := cr.checkGuards(env, idx, data, guardScratch)
			if err != nil || !ok {
				return err
			}
			return yield(env)
		}
		// Pick the next atom: the pinned atom first, then greedily the
		// most selective remaining one.
		var k int
		var cand []fact.Fact
		if depth == 0 && pin >= 0 {
			k, cand = pin, pinFacts
		} else {
			k = -1
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				c := idx.candidatesC(cr.pos[j], env)
				if k < 0 || len(c) < len(cand) {
					k, cand = j, c
					if len(cand) == 0 {
						break
					}
				}
			}
		}
		used[k] = true
		nscanned += int64(len(cand))
		rel, terms := cr.pos[k].rel, cr.pos[k].terms
		var addedArr [16]int32
		for _, f := range cand {
			if f.RelID() != rel {
				continue
			}
			args := f.ArgIDs()
			if len(args) != len(terms) {
				continue
			}
			added := addedArr[:0]
			ok := true
			for i, t := range terms {
				v := args[i]
				if t.slot < 0 {
					if t.cnst != v {
						ok = false
						break
					}
				} else if b := env[t.slot]; b == fact.NoID {
					env[t.slot] = v
					added = append(added, t.slot)
				} else if b != v {
					ok = false
					break
				}
			}
			if ok {
				if err := rec(depth + 1); err != nil {
					used[k] = false
					return err
				}
			}
			for _, s := range added {
				env[s] = fact.NoID
			}
		}
		used[k] = false
		return nil
	}
	err := rec(0)
	if scanned != nil {
		*scanned += nscanned
	}
	return err
}

// groundHead writes the head tuple under env into dst (which must have
// the head's arity). All head variables must be bound, guaranteed by
// safety after the positive body matched.
func (cr *cRule) groundHead(env []fact.ID, dst []fact.ID) error {
	for i, t := range cr.head.terms {
		if t.slot < 0 {
			dst[i] = t.cnst
			continue
		}
		v := env[t.slot]
		if v == fact.NoID {
			return fmt.Errorf("datalog: unbound variable %s in %v", cr.vars[t.slot], cr.src.Head)
		}
		dst[i] = v
	}
	return nil
}

// evalRuleC enumerates all satisfying environments of cr and passes
// the derived head tuple to emit as (relation, args) IDs. The args
// slice is scratch, valid only for the duration of the emit call — the
// round executors test membership and insert columnar rows from it
// without ever materializing a Fact for duplicates.
func evalRuleC(cr *cRule, idx *relIndex, data *fact.Instance, pin int, pinFacts []fact.Fact, scanned *int64, emit func(rel fact.ID, args []fact.ID) error) error {
	head := make([]fact.ID, len(cr.head.terms))
	return cr.match(idx, data, nil, pin, pinFacts, scanned, func(env []fact.ID) error {
		if err := cr.groundHead(env, head); err != nil {
			return err
		}
		return emit(cr.head.rel, head)
	})
}

// bindings converts an environment into the public Bindings form for
// the compatibility APIs (Valuations, MatchBound, EvalPinned).
func (cr *cRule) bindings(env []fact.ID) Bindings {
	b := make(Bindings, len(cr.vars))
	for i, name := range cr.vars {
		if env[i] != fact.NoID {
			b[name] = fact.Symbol(env[i])
		}
	}
	return b
}

// seedEnv translates initial Bindings into a slot environment. Names
// not appearing in the rule are ignored (they cannot constrain the
// body). ok is false when a bound value has never been interned — no
// fact can contain it, so no valuation can extend the bindings.
func (cr *cRule) seedEnv(init Bindings) (env []fact.ID, ok bool) {
	env = make([]fact.ID, len(cr.vars))
	for i := range env {
		env[i] = fact.NoID
	}
	for name, val := range init {
		id, found := fact.LookupValue(val)
		if !found {
			return nil, false
		}
		for i, v := range cr.vars {
			if v == name {
				env[i] = id
				break
			}
		}
	}
	return env, true
}

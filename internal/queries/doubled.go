package queries

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// This file implements the "doubled program" approach the paper's
// conclusion invokes: the alternating fixpoint of the well-founded
// semantics is driven by a syntactically *stratified* program over a
// doubled schema, so each alternation step runs on the ordinary
// stratified engine. For each idb relation R the doubled program has
//
//   - an input copy R__under holding the current underestimate,
//   - an overestimate relation R__over defined by the original rules
//     with positive idb atoms pointing at __over copies and negated
//     idb atoms at the __under input (stratum 1), and
//   - a new-underestimate relation R defined by the original rules
//     with positive idb atoms recursive and negated idb atoms
//     pointing at __over (stratum 2).
//
// One stratified evaluation therefore computes Γ(under) (the
// overestimate) and Γ(Γ(under)) (the improved underestimate) at once;
// iterating to a fixed point yields the well-founded model. Crucially
// for the paper's argument, the transformation preserves rule
// connectivity — graph+(ϕ) only looks at positive body atoms, whose
// variable structure is unchanged — so the doubled program of a
// connected program is connected, and Lemma 5.2 applies to it. This is
// the "simpler proof" that win-move is in Mdisjoint.

// Doubled-schema suffixes.
const (
	underSuffix = "__under"
	overSuffix  = "__over"
)

// DoubledProgram builds the stratified doubled program of P. It fails
// when P's relation names collide with the doubled namespace.
func DoubledProgram(p *datalog.Program) (*datalog.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sch, err := p.Schema()
	if err != nil {
		return nil, err
	}
	for rel := range sch {
		if strings.HasSuffix(rel, underSuffix) || strings.HasSuffix(rel, overSuffix) {
			return nil, fmt.Errorf("queries: relation %s collides with the doubled-program namespace", rel)
		}
	}
	idb := p.IDB()

	rename := func(a datalog.Atom, suffix string) datalog.Atom {
		if !idb.Has(a.Rel) {
			return a
		}
		return datalog.Atom{Rel: a.Rel + suffix, Args: a.Args}
	}

	out := datalog.NewProgram()
	for _, r := range p.Rules {
		// Stratum 1: overestimate. Positive idb → __over (recursive);
		// negated idb → __under (input).
		over := datalog.Rule{
			Head: datalog.Atom{Rel: r.Head.Rel + overSuffix, Args: r.Head.Args},
			Ineq: r.Ineq,
		}
		for _, a := range r.Pos {
			over.Pos = append(over.Pos, rename(a, overSuffix))
		}
		for _, a := range r.Neg {
			over.Neg = append(over.Neg, rename(a, underSuffix))
		}
		out.Rules = append(out.Rules, over)

		// Stratum 2: improved underestimate. Positive idb recursive on
		// the plain names; negated idb → __over.
		under := datalog.Rule{Head: r.Head, Ineq: r.Ineq}
		for _, a := range r.Pos {
			under.Pos = append(under.Pos, a)
		}
		for _, a := range r.Neg {
			under.Neg = append(under.Neg, rename(a, overSuffix))
		}
		out.Rules = append(out.Rules, under)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// WellFoundedViaDoubled computes the well-founded model by iterating
// the doubled program to a fixed point. It agrees with WellFounded on
// every program and input (asserted in tests); it exists to make the
// conclusion's doubled-program argument executable.
func WellFoundedViaDoubled(p *datalog.Program, input *fact.Instance) (*WFSResult, error) {
	return WellFoundedViaDoubledOpts(p, input, datalog.FixpointOptions{})
}

// WellFoundedViaDoubledOpts is WellFoundedViaDoubled with explicit
// fixpoint options, so each alternation step can run under any
// evaluation mode (naive, semi-naive or parallel).
func WellFoundedViaDoubledOpts(p *datalog.Program, input *fact.Instance, opts datalog.FixpointOptions) (*WFSResult, error) {
	d, err := DoubledProgram(p)
	if err != nil {
		return nil, err
	}
	idb := p.IDB()

	under := fact.NewInstance()
	for {
		// Feed the current underestimate through the __under input copies.
		din := input.Clone()
		for _, f := range under.Facts() {
			din.Add(fact.FromTuple(f.Rel()+underSuffix, f.Args()))
		}
		res, err := d.EvalStratified(din, opts)
		if err != nil {
			return nil, err
		}
		next := fact.NewInstance()
		over := fact.NewInstance()
		res.Each(func(f fact.Fact) bool {
			switch {
			case idb.Has(f.Rel()):
				next.Add(f)
			case strings.HasSuffix(f.Rel(), overSuffix):
				base := strings.TrimSuffix(f.Rel(), overSuffix)
				if idb.Has(base) {
					over.Add(fact.FromTuple(base, f.Args()))
				}
			}
			return true
		})
		if next.Equal(under) {
			return &WFSResult{
				True:      input.Union(under),
				Undefined: over.Minus(under),
			}, nil
		}
		under = next
	}
}

// DoubledPreservesConnectivity reports whether the doubled program of
// P has the same per-rule connectivity as P — true for every program,
// since graph+ ignores relation names; exposed for the Lemma 5.2
// argument in tests and experiments.
func DoubledPreservesConnectivity(p *datalog.Program) (bool, error) {
	d, err := DoubledProgram(p)
	if err != nil {
		return false, err
	}
	if len(d.Rules) != 2*len(p.Rules) {
		return false, fmt.Errorf("queries: doubled program has %d rules, want %d", len(d.Rules), 2*len(p.Rules))
	}
	for i, r := range p.Rules {
		if d.Rules[2*i].IsConnected() != r.IsConnected() || d.Rules[2*i+1].IsConnected() != r.IsConnected() {
			return false, nil
		}
	}
	return true, nil
}

package queries

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
)

// Exhaustive agreement between the native evaluators and the Datalog
// programs on every graph over two values (16 graphs) and, for the
// cheaper queries, every graph over three values (512 graphs).
func TestExhaustiveNativeVsDatalogN2(t *testing.T) {
	pairs := []struct {
		name   string
		native monotone.Query
		dl     monotone.Query
	}{
		{"TC", TC(), TCDatalog()},
		{"QTC", ComplementTC(), ComplementTCDatalog()},
		{"NoLoop", NoLoop(), NoLoopDatalog()},
		{"Q2clique", KClique(2), KCliqueDatalog(2)},
		{"Q3clique", KClique(3), KCliqueDatalog(3)},
		{"Q1star", KStar(1), KStarDatalog(1)},
		{"Q2star", KStar(2), KStarDatalog(2)},
	}
	for _, p := range pairs {
		generate.AllGraphs(generate.Values("v", 2), func(g *fact.Instance) bool {
			a, err := p.native.Eval(g)
			if err != nil {
				t.Fatalf("%s native on %v: %v", p.name, g, err)
			}
			b, err := p.dl.Eval(g)
			if err != nil {
				t.Fatalf("%s datalog on %v: %v", p.name, g, err)
			}
			if !a.Equal(b) {
				t.Fatalf("%s disagrees on %v:\nnative  = %v\ndatalog = %v", p.name, g, a, b)
			}
			return true
		})
	}
}

func TestExhaustiveNativeVsDatalogN3(t *testing.T) {
	if testing.Short() {
		t.Skip("512-graph sweep skipped in -short mode")
	}
	pairs := []struct {
		name   string
		native monotone.Query
		dl     monotone.Query
	}{
		{"TC", TC(), TCDatalog()},
		{"NoLoop", NoLoop(), NoLoopDatalog()},
		{"Q3clique", KClique(3), KCliqueDatalog(3)},
	}
	for _, p := range pairs {
		generate.AllGraphs(generate.Values("v", 3), func(g *fact.Instance) bool {
			a, err := p.native.Eval(g)
			if err != nil {
				t.Fatalf("%s native on %v: %v", p.name, g, err)
			}
			b, err := p.dl.Eval(g)
			if err != nil {
				t.Fatalf("%s datalog on %v: %v", p.name, g, err)
			}
			if !a.Equal(b) {
				t.Fatalf("%s disagrees on %v:\nnative  = %v\ndatalog = %v", p.name, g, a, b)
			}
			return true
		})
	}
}

// Exhaustive monotonicity on all (I, J) graph pairs over split value
// sets: TC never violates M; NoLoop never violates Mdistinct; QTC
// never violates Mdisjoint. Two values for I and one fresh value for J
// give 16 × 256 candidate pairs per query before class filtering.
func TestExhaustiveClassMemberships(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair sweep skipped in -short mode")
	}
	iVals := generate.Values("v", 2)
	jVals := append(generate.Values("v", 2), "w0")
	cases := []struct {
		q monotone.Query
		c monotone.Class
	}{
		{TC(), monotone.M},
		{NoLoop(), monotone.MDistinct},
		{ComplementTC(), monotone.MDisjoint},
	}
	for _, cse := range cases {
		w, err := monotone.ExhaustiveCheck(cse.q, cse.c, func(yield func(i, j *fact.Instance) bool) {
			generate.AllGraphs(iVals, func(i *fact.Instance) bool {
				cont := true
				generate.AllGraphs(jVals, func(j *fact.Instance) bool {
					cont = yield(i, j)
					return cont
				})
				return cont
			})
		})
		if err != nil {
			t.Fatalf("%s: %v", cse.q.Name(), err)
		}
		if w != nil {
			t.Errorf("%s violated %v exhaustively: %v", cse.q.Name(), cse.c, w)
		}
	}
}

package queries

import (
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
)

func TestCatalogEntriesConsistent(t *testing.T) {
	for _, e := range Catalog() {
		if e.Name == "" || e.Query == nil {
			t.Errorf("malformed entry %+v", e)
			continue
		}
		// Programs, when present, agree with the native evaluator on a
		// smoke input over the query's schema.
		if e.Program == nil {
			continue
		}
		var in *fact.Instance
		if e.Query.InputSchema().Has("E") {
			in = fact.MustParseInstance(`E(a,b) E(b,c) E(c,a)`)
		} else {
			continue
		}
		want, err := e.Query.Eval(in)
		if err != nil {
			t.Fatalf("%s native: %v", e.Name, err)
		}
		q, err := newDatalogQuery(e.Program)
		if err != nil {
			t.Fatalf("%s program: %v", e.Name, err)
		}
		got, err := q.Eval(in)
		if err != nil {
			t.Fatalf("%s program eval: %v", e.Name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: program %v != native %v", e.Name, got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"tc", true},
		{"qtc", true},
		{"winmove", true},
		{"winmove3v", true},
		{"clique:3", true},
		{"star:2", true},
		{"duplicate:3", true},
		{"clique:1", false},
		{"clique:x", false},
		{"nope", false},
		{"star:", false},
	}
	for _, c := range cases {
		e, err := Lookup(c.name)
		if c.ok && err != nil {
			t.Errorf("Lookup(%q): %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Lookup(%q) should fail, got %+v", c.name, e)
		}
	}
	e, _ := Lookup("clique:4")
	if e.Query == nil || e.Program == nil {
		t.Error("clique:4 entry incomplete")
	}
}

// Catalog classes are sound: each query with an unbounded class passes
// sampling in that class.
func TestCatalogClassesSound(t *testing.T) {
	for _, e := range Catalog() {
		if e.InC {
			continue
		}
		var sampler monotone.Sampler
		if e.Query.InputSchema().Has("Move") {
			sampler = func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
				return randomGame(rng, "v", 4, 5), randomGame(rng, "w", 4, 5)
			}
		} else {
			sampler = func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
				i := generate.RandomGraph(rng, "v", 4, 5)
				pool := append(generate.Values("v", 4), generate.Values("w", 4)...)
				return i, generate.Random(rng, fact.GraphSchema(), pool, 4)
			}
		}
		w, err := monotone.FindViolation(e.Query, e.Class,
			monotone.ClassSampler(e.Class, sampler), 101, 200)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if w != nil {
			t.Errorf("%s claims class %v but violates it: %v", e.Name, e.Class, w)
		}
	}
}

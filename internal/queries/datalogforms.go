package queries

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/monotone"
)

// This file gives Datalog¬ formulations of the Datalog-expressible
// queries, generated programmatically for the parameterized families.
// Tests assert that each program agrees with its native evaluator,
// and the fragment classifier places each program where Figure 2
// predicts.

// TCProgram is the positive Datalog program for transitive closure.
func TCProgram() *datalog.Program {
	return datalog.MustParseProgram(`
		O(x,y) :- E(x,y).
		O(x,z) :- O(x,y), E(y,z).
	`)
}

// TCDatalog returns TC as a Datalog query.
func TCDatalog() monotone.Query {
	return datalog.MustQuery(TCProgram(), "O").SetName("TC(datalog)")
}

// ComplementTCProgram is the two-stratum Datalog¬ program for QTC.
func ComplementTCProgram() *datalog.Program {
	return datalog.MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y) :- Adom(x), Adom(y), !T(x,y).
	`)
}

// ComplementTCDatalog returns QTC as a Datalog¬ query.
func ComplementTCDatalog() monotone.Query {
	return datalog.MustQuery(ComplementTCProgram(), "O").SetName("QTC(datalog)")
}

// NoLoopProgram is the SP-Datalog program for the NoLoop query.
func NoLoopProgram() *datalog.Program {
	return datalog.MustParseProgram(`
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x) :- Adom(x), !E(x,x).
	`)
}

// NoLoopDatalog returns NoLoop as an SP-Datalog query.
func NoLoopDatalog() monotone.Query {
	return datalog.MustQuery(NoLoopProgram(), "O").SetName("NoLoop(datalog)")
}

// undirectedRules defines U as the symmetric, loop-free closure of E,
// plus Adom rules.
func undirectedRules() []datalog.Rule {
	p := datalog.MustParseProgram(`
		U(x,y) :- E(x,y), x != y.
		U(x,y) :- E(y,x), x != y.
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
	`)
	return p.Rules
}

// KCliqueProgram generates the Datalog¬ program for Q^k_clique:
//
//	U(x,y)  :- E(x,y), x != y.   (and symmetric)
//	Bad(w)  :- U(xa,xb) for all pairs a<b, xa != xb all pairs, Adom(w).
//	O(x,y)  :- E(x,y), !Bad(x).
//
// The Bad rule is deliberately disconnected (w is free): exactly the
// shape Example 5.1's P2 uses, and the reason these queries fall
// outside semicon-Datalog¬.
func KCliqueProgram(k int) *datalog.Program {
	if k < 2 {
		panic("queries: KCliqueProgram needs k >= 2")
	}
	rules := undirectedRules()

	bad := datalog.Rule{Head: datalog.AtomV("Bad", "w")}
	for a := 1; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			bad.Pos = append(bad.Pos, datalog.AtomV("U", v("x", a), v("x", b)))
			bad.Ineq = append(bad.Ineq, datalog.Inequality{A: datalog.V(v("x", a)), B: datalog.V(v("x", b))})
		}
	}
	bad.Pos = append(bad.Pos, datalog.AtomV(datalog.AdomRelation, "w"))
	rules = append(rules, bad)

	rules = append(rules, datalog.MustParseProgram(`O(x,y) :- E(x,y), !Bad(x).`).Rules...)
	return datalog.NewProgram(rules...)
}

// KCliqueDatalog returns Q^k_clique as a Datalog¬ query.
func KCliqueDatalog(k int) monotone.Query {
	return datalog.MustQuery(KCliqueProgram(k), "O").SetName(fmt.Sprintf("Q^%d_clique(datalog)", k))
}

// KStarProgram generates the Datalog¬ program for Q^k_star, with a
// disconnected Bad rule detecting a center with k pairwise-distinct
// undirected neighbors.
func KStarProgram(k int) *datalog.Program {
	if k < 1 {
		panic("queries: KStarProgram needs k >= 1")
	}
	rules := undirectedRules()

	bad := datalog.Rule{Head: datalog.AtomV("Bad", "w")}
	for a := 1; a <= k; a++ {
		bad.Pos = append(bad.Pos, datalog.AtomV("U", "c", v("s", a)))
	}
	for a := 1; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			bad.Ineq = append(bad.Ineq, datalog.Inequality{A: datalog.V(v("s", a)), B: datalog.V(v("s", b))})
		}
	}
	bad.Pos = append(bad.Pos, datalog.AtomV(datalog.AdomRelation, "w"))
	rules = append(rules, bad)

	rules = append(rules, datalog.MustParseProgram(`O(x,y) :- E(x,y), !Bad(x).`).Rules...)
	return datalog.NewProgram(rules...)
}

// KStarDatalog returns Q^k_star as a Datalog¬ query.
func KStarDatalog(k int) monotone.Query {
	return datalog.MustQuery(KStarProgram(k), "O").SetName(fmt.Sprintf("Q^%d_star(datalog)", k))
}

// DuplicateProgram generates the Datalog¬ program for Q^j_duplicate
// over the schema R1..Rj.
func DuplicateProgram(j int) *datalog.Program {
	if j < 1 {
		panic("queries: DuplicateProgram needs j >= 1")
	}
	var rules []datalog.Rule

	// D(x,y) :- R1(x,y), ..., Rj(x,y).
	d := datalog.Rule{Head: datalog.AtomV("D", "x", "y")}
	for n := 1; n <= j; n++ {
		d.Pos = append(d.Pos, datalog.AtomV(fmt.Sprintf("R%d", n), "x", "y"))
	}
	rules = append(rules, d)

	// Adom over every relation and position.
	for n := 1; n <= j; n++ {
		rel := fmt.Sprintf("R%d", n)
		rules = append(rules,
			datalog.Rule{Head: datalog.AtomV(datalog.AdomRelation, "x"), Pos: []datalog.Atom{datalog.AtomV(rel, "x", "y")}},
			datalog.Rule{Head: datalog.AtomV(datalog.AdomRelation, "y"), Pos: []datalog.Atom{datalog.AtomV(rel, "x", "y")}},
		)
	}

	// Bad(w) :- D(x,y), Adom(w). — disconnected on purpose.
	rules = append(rules, datalog.Rule{
		Head: datalog.AtomV("Bad", "w"),
		Pos:  []datalog.Atom{datalog.AtomV("D", "x", "y"), datalog.AtomV(datalog.AdomRelation, "w")},
	})

	// O(x,y) :- R1(x,y), !Bad(x).
	rules = append(rules, datalog.Rule{
		Head: datalog.AtomV("O", "x", "y"),
		Pos:  []datalog.Atom{datalog.AtomV("R1", "x", "y")},
		Neg:  []datalog.Atom{datalog.AtomV("Bad", "x")},
	})
	return datalog.NewProgram(rules...)
}

// DuplicateDatalog returns Q^j_duplicate as a Datalog¬ query.
func DuplicateDatalog(j int) monotone.Query {
	return datalog.MustQuery(DuplicateProgram(j), "O").SetName(fmt.Sprintf("Q^%d_duplicate(datalog)", j))
}

// Example51P1 is program P1 of Example 5.1: values not on a triangle.
// In con-Datalog¬ but not in Mdistinct.
func Example51P1() *datalog.Program {
	return datalog.MustParseProgram(`
		T(x) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
		O(x) :- ¬T(x), Adom(x).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
	`)
}

// Example51P2 is program P2 of Example 5.1: values, unless two
// vertex-disjoint triangles exist. Not a semicon-Datalog¬ program and
// the expressed query is not in Mdisjoint.
func Example51P2() *datalog.Program {
	return datalog.MustParseProgram(`
		T(x,y,z) :- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z.
		D(x1) :- T(x1,x2,x3), T(y1,y2,y3),
		         x1 != y1, x1 != y2, x1 != y3,
		         x2 != y1, x2 != y2, x2 != y3,
		         x3 != y1, x3 != y2, x3 != y3.
		O(x) :- ¬D(x), Adom(x).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
	`)
}

func v(prefix string, n int) string { return fmt.Sprintf("%s%d", prefix, n) }

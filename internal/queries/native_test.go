package queries

import (
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
)

func TestHasKClique(t *testing.T) {
	k4 := generate.Clique("v", 4)
	for k := 1; k <= 4; k++ {
		if !HasKClique(k4, k) {
			t.Errorf("K4 should contain a %d-clique", k)
		}
	}
	if HasKClique(k4, 5) {
		t.Error("K4 should not contain a 5-clique")
	}
	// Direction is ignored: a one-directional triangle is a 3-clique.
	tri := generate.Triangle("a", "b", "c")
	if !HasKClique(tri, 3) {
		t.Error("directed triangle should count as an undirected 3-clique")
	}
	// Self-loops do not make cliques.
	loop := fact.MustParseInstance(`E(a,a)`)
	if HasKClique(loop, 2) {
		t.Error("self-loop is not a 2-clique")
	}
	if HasKClique(fact.NewInstance(), 1) {
		t.Error("empty graph has no 1-clique")
	}
}

func TestHasKStar(t *testing.T) {
	s := generate.Star("c", "s", 3)
	if !HasKStar(s, 3) || HasKStar(s, 4) {
		t.Error("star spoke counting wrong")
	}
	// Incoming edges count too (undirected).
	in := fact.MustParseInstance(`E(a,c) E(b,c) E(c,d)`)
	if !HasKStar(in, 3) {
		t.Error("mixed-direction star not detected")
	}
	// Self-loop is not a spoke.
	if HasKStar(fact.MustParseInstance(`E(a,a)`), 1) {
		t.Error("self-loop counted as spoke")
	}
}

func TestTriangles(t *testing.T) {
	tri := generate.Triangle("a", "b", "c")
	ts := Triangles(tri)
	if len(ts) != 3 { // three rotations
		t.Errorf("triangle rotations = %d, want 3: %v", len(ts), ts)
	}
	if len(Triangles(generate.Path("v", 3))) != 0 {
		t.Error("path has no triangles")
	}
	// Self-loops never form triangles.
	if len(Triangles(fact.MustParseInstance(`E(a,a) E(a,b) E(b,a)`))) != 0 {
		t.Error("degenerate 2-cycle with loop misdetected as triangle")
	}
}

func TestHasTwoDisjointTriangles(t *testing.T) {
	one := generate.Triangle("a", "b", "c")
	if HasTwoDisjointTriangles(one) {
		t.Error("one triangle is not two")
	}
	two := generate.DisjointUnion(generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
	if !HasTwoDisjointTriangles(two) {
		t.Error("two disjoint triangles not detected")
	}
	// Sharing a vertex: not disjoint.
	shared := one.Union(generate.Triangle("a", "y", "z"))
	if HasTwoDisjointTriangles(shared) {
		t.Error("vertex-sharing triangles reported disjoint")
	}
}

func TestTCNative(t *testing.T) {
	out, err := TC().Eval(fact.MustParseInstance(`E(a,b) E(b,c)`))
	if err != nil {
		t.Fatal(err)
	}
	want := fact.MustParseInstance(`O(a,b) O(b,c) O(a,c)`)
	if !out.Equal(want) {
		t.Errorf("TC = %v, want %v", out, want)
	}
}

func TestComplementTCNative(t *testing.T) {
	out, err := ComplementTC().Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	want := fact.MustParseInstance(`O(a,a) O(b,a) O(b,b)`)
	if !out.Equal(want) {
		t.Errorf("QTC = %v, want %v", out, want)
	}
}

func TestKCliqueQuery(t *testing.T) {
	q := KClique(3)
	// No triangle: output = edges.
	out, err := q.Eval(generate.Path("v", 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("no-clique output = %v", out)
	}
	// Triangle present: empty.
	out, err = q.Eval(generate.Triangle("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("clique-present output = %v", out)
	}
}

func TestKStarQuery(t *testing.T) {
	q := KStar(2)
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("single-edge output = %v", out)
	}
	out, err = q.Eval(generate.Star("c", "s", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("star-present output = %v", out)
	}
}

func TestDuplicateQuery(t *testing.T) {
	q := Duplicate(2)
	// Intersection empty: output R1.
	out, err := q.Eval(fact.MustParseInstance(`R1(a,b) R2(b,c)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a,b)`)) {
		t.Errorf("duplicate output = %v", out)
	}
	// Shared pair: empty.
	out, err = q.Eval(fact.MustParseInstance(`R1(a,b) R2(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("duplicated pair output = %v", out)
	}
}

func TestTrianglesUnlessTwoDisjoint(t *testing.T) {
	q := TrianglesUnlessTwoDisjoint()
	out, err := q.Eval(generate.Triangle("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("single-triangle output = %v", out)
	}
	two := generate.DisjointUnion(generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
	out, err = q.Eval(two)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("two-disjoint-triangle output = %v", out)
	}
}

// TC on structured families has a known closure size: on the w×h grid
// every cell reaches exactly the cells weakly below-right of it.
func TestTCOnGrid(t *testing.T) {
	g := generate.Grid("g", 3, 3)
	out, err := TC().Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable pairs: for each (x,y), all (x',y') with x'>=x, y'>=y
	// except itself: sum over cells of (w-x)(h-y) - 1.
	want := 0
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			want += (3-x)*(3-y) - 1
		}
	}
	if out.Len() != want {
		t.Errorf("grid TC size = %d, want %d", out.Len(), want)
	}
}

// Every tournament on n >= 2 vertices has a vertex reaching all others
// (a king by transitivity): TC must contain a full out-row.
func TestTCOnTournament(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		tour := generate.Tournament(rng, "v", 6)
		out, err := TC().Eval(tour)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for v := range tour.ADom() {
			all := true
			for u := range tour.ADom() {
				if u != v && !out.Has(fact.New("O", v, u)) {
					all = false
					break
				}
			}
			if all {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tournament %v has no vertex reaching all others", tour)
		}
	}
}

// Native and Datalog forms must agree on random inputs.
func TestNativeVsDatalog(t *testing.T) {
	pairs := []struct {
		name           string
		native, dlForm monotone.Query
	}{
		{"TC", TC(), TCDatalog()},
		{"QTC", ComplementTC(), ComplementTCDatalog()},
		{"NoLoop", NoLoop(), NoLoopDatalog()},
		{"Q3clique", KClique(3), KCliqueDatalog(3)},
		{"Q4clique", KClique(4), KCliqueDatalog(4)},
		{"Q2star", KStar(2), KStarDatalog(2)},
		{"Q3star", KStar(3), KStarDatalog(3)},
	}
	rng := rand.New(rand.NewSource(41))
	for _, pair := range pairs {
		for trial := 0; trial < 25; trial++ {
			in := generate.RandomGraph(rng, "v", 5, 7)
			a, err := pair.native.Eval(in)
			if err != nil {
				t.Fatalf("%s native: %v", pair.name, err)
			}
			b, err := pair.dlForm.Eval(in)
			if err != nil {
				t.Fatalf("%s datalog: %v", pair.name, err)
			}
			if !a.Equal(b) {
				t.Fatalf("%s disagrees on %v:\nnative  = %v\ndatalog = %v", pair.name, in, a, b)
			}
		}
	}
}

func TestDuplicateNativeVsDatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, j := range []int{2, 3} {
		native, dlForm := Duplicate(j), DuplicateDatalog(j)
		schema := DuplicateSchema(j)
		for trial := 0; trial < 25; trial++ {
			in := generate.Random(rng, schema, generate.Values("v", 4), 6)
			a, err := native.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dlForm.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("Q^%d_duplicate disagrees on %v:\nnative  = %v\ndatalog = %v", j, in, a, b)
			}
		}
	}
}

// Example 5.1 P1 computes "values not on a (directed) triangle".
func TestExample51P1Semantics(t *testing.T) {
	q, err := newDatalogQuery(Example51P1())
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a) O(b)`)) {
		t.Errorf("P1 on single edge = %v", out)
	}
	out, err = q.Eval(generate.Triangle("a", "b", "c").Union(fact.MustParseInstance(`E(c,d)`)))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(d)`)) {
		t.Errorf("P1 on triangle+tail = %v", out)
	}
}

// Example 5.1's observed non-monotone behavior: P1({E(a,b)}) ≠ ∅ but
// P1({E(a,b), E(b,c), E(c,a)}) = ∅ for the values a, b — a
// domain-distinct addition shrinking the output (so P1 ∉ Mdistinct).
func TestExample51P1NotMdistinct(t *testing.T) {
	q, err := newDatalogQuery(Example51P1())
	if err != nil {
		t.Fatal(err)
	}
	i := fact.MustParseInstance(`E(a,b)`)
	j := fact.MustParseInstance(`E(b,c) E(c,a)`)
	if !monotone.MDistinct.Allows(j, i) {
		t.Fatal("J should be domain distinct from I")
	}
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("P1 should violate domain-distinct monotonicity on Example 5.1's pair")
	}
}

package queries

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
)

func TestWellFoundedWinMovePath(t *testing.T) {
	// Game a -> b -> c: c has no moves (lost), b wins (moves to lost c),
	// a loses (its only move reaches the winning b).
	in := fact.MustParseInstance(`Move(a,b) Move(b,c)`)
	won, lost, drawn, err := WinMoveClassified(in)
	if err != nil {
		t.Fatal(err)
	}
	if !won.Equal(fact.NewValueSet("b")) {
		t.Errorf("won = %v, want {b}", won.Sorted())
	}
	if !lost.Equal(fact.NewValueSet("a", "c")) {
		t.Errorf("lost = %v, want {a,c}", lost.Sorted())
	}
	if len(drawn) != 0 {
		t.Errorf("drawn = %v, want empty", drawn.Sorted())
	}
}

func TestWellFoundedWinMoveCycle(t *testing.T) {
	// A 2-cycle is a draw: neither position is won or lost.
	in := fact.MustParseInstance(`Move(a,b) Move(b,a)`)
	won, lost, drawn, err := WinMoveClassified(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(won) != 0 || len(lost) != 0 {
		t.Errorf("cycle should be all drawn: won=%v lost=%v", won.Sorted(), lost.Sorted())
	}
	if !drawn.Equal(fact.NewValueSet("a", "b")) {
		t.Errorf("drawn = %v", drawn.Sorted())
	}
}

func TestWellFoundedWinMoveCycleWithEscape(t *testing.T) {
	// a <-> b plus b -> c (c lost): b can escape to the lost c, so b
	// is won; a's only move is to the won b, so a is lost.
	in := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c)`)
	won, lost, drawn, err := WinMoveClassified(in)
	if err != nil {
		t.Fatal(err)
	}
	if !won.Equal(fact.NewValueSet("b")) || !lost.Equal(fact.NewValueSet("a", "c")) || len(drawn) != 0 {
		t.Errorf("won=%v lost=%v drawn=%v", won.Sorted(), lost.Sorted(), drawn.Sorted())
	}
}

func TestWellFoundedStratifiedAgreement(t *testing.T) {
	// On stratifiable programs the well-founded model is total and
	// coincides with the stratified semantics.
	p := ComplementTCProgram()
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		in := generate.RandomGraph(rng, "v", 4, 5)
		wfs, err := WellFounded(p, in)
		if err != nil {
			t.Fatal(err)
		}
		if !wfs.Undefined.Empty() {
			t.Fatalf("stratifiable program has undefined facts: %v", wfs.Undefined)
		}
		strat, err := p.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if !wfs.True.Equal(strat) {
			t.Fatalf("WFS and stratified semantics disagree on %v:\nwfs   = %v\nstrat = %v", in, wfs.True, strat)
		}
	}
}

// Paper headline: win-move is not monotone — in fact not even
// domain-distinct-monotone — but it is domain-disjoint-monotone.
func TestWinMoveMembership(t *testing.T) {
	q := WinMove()

	// Exact counterexample for Mdistinct (hence for M): I = {Move(y,x)}
	// gives Q(I) = {O(y)}; adding the domain-distinct J = {Move(x,c)}
	// flips x to won and y to lost.
	i := fact.MustParseInstance(`Move(y,x)`)
	j := fact.MustParseInstance(`Move(x,c)`)
	if !monotone.MDistinct.Allows(j, i) {
		t.Fatal("J should be domain distinct from I")
	}
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("win-move should violate domain-distinct monotonicity")
	}

	// Randomized evidence for Mdisjoint membership.
	sampler := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		return randomGame(rng, "v", 4, 5), randomGame(rng, "w", 4, 5)
	}
	w, err = monotone.FindViolation(q, monotone.MDisjoint, sampler, 51, 300)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("win-move should be domain-disjoint-monotone; witness %v", w)
	}
}

// Win-move distributes over components (the conclusion's connectedness
// argument): Q(I ∪ J) = Q(I) ∪ Q(J) for domain-disjoint I, J.
func TestWinMoveDistributesOverComponents(t *testing.T) {
	q := WinMove()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		i := randomGame(rng, "v", 4, 4)
		j := randomGame(rng, "w", 4, 4)
		qi, err := q.Eval(i)
		if err != nil {
			t.Fatal(err)
		}
		qj, err := q.Eval(j)
		if err != nil {
			t.Fatal(err)
		}
		qu, err := q.Eval(i.Union(j))
		if err != nil {
			t.Fatal(err)
		}
		if !qu.Equal(qi.Union(qj)) {
			t.Fatalf("win-move did not distribute on %v ⊎ %v: got %v, want %v", i, j, qu, qi.Union(qj))
		}
	}
}

func TestWinMoveThreeValued(t *testing.T) {
	q := WinMoveThreeValued()
	out, err := q.Eval(fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`))
	if err != nil {
		t.Fatal(err)
	}
	want := fact.MustParseInstance(`Won(b) Won(d) Lost(a) Lost(c) Lost(e)`)
	if !out.Equal(want) {
		t.Errorf("three-valued output = %v, want %v", out, want)
	}
	// A pure cycle is all drawn.
	out, err = q.Eval(fact.MustParseInstance(`Move(a,b) Move(b,a)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`Drawn(a) Drawn(b)`)) {
		t.Errorf("cycle three-valued output = %v", out)
	}
}

// The three-valued query is also in Mdisjoint \ Mdistinct: "Lost" and
// "Drawn" facts survive domain-disjoint additions, but a single
// domain-distinct move flips classifications.
func TestWinMoveThreeValuedMembership(t *testing.T) {
	q := WinMoveThreeValued()
	// ∉ Mdistinct: Lost(x) flips to Won(x) when x gains a move to a
	// fresh dead-end.
	i := fact.MustParseInstance(`Move(y,x)`)
	j := fact.MustParseInstance(`Move(x,c)`)
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("three-valued win-move should violate Mdistinct")
	}
	// ∈ Mdisjoint by sampling.
	sampler := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		return randomGame(rng, "v", 4, 5), randomGame(rng, "w", 4, 5)
	}
	w, err = monotone.FindViolation(q, monotone.MDisjoint, sampler, 89, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("three-valued win-move should be in Mdisjoint: %v", w)
	}
}

// Closed form on path games: in the chain p0 → p1 → ... → pn the
// dead end pn is lost, and a position is won exactly when its distance
// to the dead end is odd.
func TestWinMovePathClosedForm(t *testing.T) {
	for n := 1; n <= 7; n++ {
		game := fact.NewInstance()
		for k := 0; k < n; k++ {
			game.Add(fact.New("Move",
				fact.Value(fmt.Sprintf("p%d", k)),
				fact.Value(fmt.Sprintf("p%d", k+1))))
		}
		won, lost, drawn, err := WinMoveClassified(game)
		if err != nil {
			t.Fatal(err)
		}
		if len(drawn) != 0 {
			t.Fatalf("path game of length %d has drawn positions: %v", n, drawn.Sorted())
		}
		for k := 0; k <= n; k++ {
			v := fact.Value(fmt.Sprintf("p%d", k))
			dist := n - k
			if dist%2 == 1 {
				if !won.Has(v) {
					t.Errorf("length %d: %s at odd distance %d should be won", n, v, dist)
				}
			} else if !lost.Has(v) {
				t.Errorf("length %d: %s at even distance %d should be lost", n, v, dist)
			}
		}
	}
}

func TestWellFoundedAcceptsValidProgram(t *testing.T) {
	if _, err := WellFounded(WinMoveProgram(), fact.MustParseInstance(`Move(a,b)`)); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func randomGame(rng *rand.Rand, prefix string, n, m int) *fact.Instance {
	out := fact.NewInstance()
	for k := 0; k < m; k++ {
		a := fact.Value(fmt.Sprintf("%s%d", prefix, rng.Intn(n)))
		b := fact.Value(fmt.Sprintf("%s%d", prefix, rng.Intn(n)))
		if a != b {
			out.Add(fact.New("Move", a, b))
		}
	}
	return out
}

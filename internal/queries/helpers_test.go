package queries

import (
	"repro/internal/datalog"
	"repro/internal/monotone"
)

// newDatalogQuery wraps a program with output relation O as a
// monotone.Query.
func newDatalogQuery(p *datalog.Program) (monotone.Query, error) {
	return datalog.NewQuery(p, "O")
}

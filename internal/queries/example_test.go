package queries_test

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/queries"
)

// Solve a game under the well-founded semantics: b escapes the a↔b
// cycle to the dead end c, so b wins and a, c lose.
func ExampleWinMoveClassified() {
	game := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c)`)
	won, lost, drawn, err := queries.WinMoveClassified(game)
	if err != nil {
		panic(err)
	}
	fmt.Println("won:  ", won.Sorted())
	fmt.Println("lost: ", lost.Sorted())
	fmt.Println("drawn:", drawn.Sorted())
	// Output:
	// won:   [b]
	// lost:  [a c]
	// drawn: []
}

// QTC — the complement of transitive closure — is the paper's witness
// for Mdisjoint \ Mdistinct.
func ExampleComplementTC() {
	q := queries.ComplementTC()
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// {O(a,a), O(b,a), O(b,b)}
}

// The well-founded model of win-move on a 2-cycle leaves both
// positions undefined (drawn).
func ExampleWellFounded() {
	res, err := queries.WellFounded(queries.WinMoveProgram(), fact.MustParseInstance(`Move(a,b) Move(b,a)`))
	if err != nil {
		panic(err)
	}
	fmt.Println("true:     ", res.True.Rel("Win"))
	fmt.Println("undefined:", res.Undefined.Rel("Win"))
	// Output:
	// true:      []
	// undefined: [Win(a) Win(b)]
}

// The doubled program makes the alternating fixpoint stratified: the
// non-stratifiable win-move doubles into a connected, stratified
// program (the Section 7 remark).
func ExampleDoubledProgram() {
	d, err := queries.DoubledProgram(queries.WinMoveProgram())
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	fmt.Println("stratifiable:", d.IsStratifiable())
	fmt.Println("connected:   ", d.IsConnectedProgram())
	// Output:
	// Win__over(x) :- Move(x,y), !Win__under(y).
	// Win(x) :- Move(x,y), !Win__over(y).
	// stratifiable: true
	// connected:    true
}

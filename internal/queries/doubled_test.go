package queries

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/monotone"
)

func TestDoubledProgramShape(t *testing.T) {
	p := WinMoveProgram()
	d, err := DoubledProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rules) != 2 {
		t.Fatalf("doubled win-move has %d rules, want 2:\n%s", len(d.Rules), d)
	}
	// The doubled program must be syntactically stratifiable even
	// though win-move itself is not.
	if !d.IsStratifiable() {
		t.Fatal("doubled program not stratifiable")
	}
	rho, _ := d.Stratify()
	if rho["Win__over"] >= rho["Win"] {
		t.Errorf("overestimate must sit strictly below the new underestimate: %v", rho)
	}
	// Connectivity is preserved — the paper's Lemma 5.2 hook.
	ok, err := DoubledPreservesConnectivity(p)
	if err != nil || !ok {
		t.Errorf("connectivity not preserved: %v %v", ok, err)
	}
	if !d.IsConnectedProgram() {
		t.Error("doubled win-move should be in con-Datalog¬")
	}
}

func TestDoubledProgramRejectsCollisions(t *testing.T) {
	p := datalog.MustParseProgram(`Win__over(x) :- V(x).`)
	if _, err := DoubledProgram(p); err == nil {
		t.Error("namespace collision accepted")
	}
}

func TestWellFoundedViaDoubledAgreesWinMove(t *testing.T) {
	p := WinMoveProgram()
	games := []*fact.Instance{
		fact.NewInstance(),
		fact.MustParseInstance(`Move(a,b)`),
		fact.MustParseInstance(`Move(a,b) Move(b,c)`),
		fact.MustParseInstance(`Move(a,b) Move(b,a)`),
		fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c)`),
		fact.MustParseInstance(`Move(a,a)`),
	}
	for _, g := range games {
		direct, err := WellFounded(p, g)
		if err != nil {
			t.Fatal(err)
		}
		doubled, err := WellFoundedViaDoubled(p, g)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.True.Equal(doubled.True) || !direct.Undefined.Equal(doubled.Undefined) {
			t.Errorf("disagreement on %v:\ndirect  true=%v undef=%v\ndoubled true=%v undef=%v",
				g, direct.True, direct.Undefined, doubled.True, doubled.Undefined)
		}
	}
}

func TestWellFoundedViaDoubledAgreesRandom(t *testing.T) {
	p := WinMoveProgram()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		g := randomGame(rng, "v", 5, 7)
		direct, err := WellFounded(p, g)
		if err != nil {
			t.Fatal(err)
		}
		doubled, err := WellFoundedViaDoubled(p, g)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.True.Equal(doubled.True) || !direct.Undefined.Equal(doubled.Undefined) {
			t.Fatalf("disagreement on %v", g)
		}
	}
}

func TestWellFoundedViaDoubledStratifiedProgram(t *testing.T) {
	// On a stratifiable program the doubled iteration converges to the
	// stratified model with nothing undefined.
	p := ComplementTCProgram()
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	doubled, err := WellFoundedViaDoubled(p, in)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := p.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if !doubled.True.Equal(strat) || !doubled.Undefined.Empty() {
		t.Errorf("doubled WFS of stratified program diverges from stratified semantics")
	}
}

// The paper's conclusion: connected Datalog¬ under the well-founded
// semantics stays within Mdisjoint — win-move via the doubled program.
func TestDoubledWinMoveInMdisjoint(t *testing.T) {
	prog := WinMoveProgram()
	out1 := fact.MustSchema(map[string]int{"O": 1})
	q := monotone.NewFunc("win-move(doubled)", MoveSchema, out1,
		func(i *fact.Instance) (*fact.Instance, error) {
			res, err := WellFoundedViaDoubled(prog, i)
			if err != nil {
				return nil, err
			}
			out := fact.NewInstance()
			for _, f := range res.True.Rel("Win") {
				out.Add(fact.New("O", f.Arg(0)))
			}
			return out, nil
		})
	sampler := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		return randomGame(rng, "v", 4, 5), randomGame(rng, "w", 4, 5)
	}
	w, err := monotone.FindViolation(q, monotone.MDisjoint, sampler, 67, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("doubled win-move should be in Mdisjoint: %v", w)
	}
}

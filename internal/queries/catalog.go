package queries

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/datalog"
	"repro/internal/monotone"
)

// CatalogEntry describes one of the library's queries: its
// parameterized name, the smallest monotonicity class of Figure 1 it
// belongs to (Bounded classes use the smallest i for which membership
// holds where applicable; None means only in C), and an optional
// Datalog¬ program computing it.
type CatalogEntry struct {
	// Name is the lookup key, e.g. "tc", "qtc", "winmove", "clique:3".
	Name string
	// Description summarizes the query.
	Description string
	// Query is the native evaluator.
	Query monotone.Query
	// Class is the smallest unbounded class containing the query;
	// InC is set when the query is only in C (no weakened class).
	Class monotone.Class
	InC   bool
	// Program is the Datalog¬ form when one exists (nil for win-move,
	// which needs the well-founded semantics).
	Program *datalog.Program
}

// Catalog returns the fixed entries of the query library (the
// parameterized families are resolved through Lookup).
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Name:        "tc",
			Description: "transitive closure of E",
			Query:       TC(),
			Class:       monotone.M,
			Program:     TCProgram(),
		},
		{
			Name:        "noloop",
			Description: "active-domain values without a self-loop",
			Query:       NoLoop(),
			Class:       monotone.MDistinct,
			Program:     NoLoopProgram(),
		},
		{
			Name:        "qtc",
			Description: "complement of the transitive closure",
			Query:       ComplementTC(),
			Class:       monotone.MDisjoint,
			Program:     ComplementTCProgram(),
		},
		{
			Name:        "winmove",
			Description: "won positions under the well-founded semantics",
			Query:       WinMove(),
			Class:       monotone.MDisjoint,
		},
		{
			Name:        "winmove3v",
			Description: "won/lost/drawn classification of game positions",
			Query:       WinMoveThreeValued(),
			Class:       monotone.MDisjoint,
		},
		{
			Name:        "triangles",
			Description: "all triangles unless two vertex-disjoint triangles exist",
			Query:       TrianglesUnlessTwoDisjoint(),
			InC:         true,
		},
	}
}

// Lookup resolves a query by catalog name, including the parameterized
// families "clique:K", "star:K" and "duplicate:J".
func Lookup(name string) (CatalogEntry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	parse := func(prefix string) (int, bool, error) {
		if !strings.HasPrefix(name, prefix+":") {
			return 0, false, nil
		}
		k, err := strconv.Atoi(name[len(prefix)+1:])
		if err != nil || k < 1 {
			return 0, true, fmt.Errorf("queries: bad parameter in %q", name)
		}
		return k, true, nil
	}
	if k, ok, err := parse("clique"); ok {
		if err != nil {
			return CatalogEntry{}, err
		}
		if k < 2 {
			return CatalogEntry{}, fmt.Errorf("queries: clique needs K >= 2")
		}
		return CatalogEntry{
			Name:        name,
			Description: fmt.Sprintf("edge relation unless a %d-clique exists", k),
			Query:       KClique(k),
			InC:         true, // only the bounded classes contain it
			Program:     KCliqueProgram(k),
		}, nil
	}
	if k, ok, err := parse("star"); ok {
		if err != nil {
			return CatalogEntry{}, err
		}
		return CatalogEntry{
			Name:        name,
			Description: fmt.Sprintf("edge relation unless a star with %d spokes exists", k),
			Query:       KStar(k),
			InC:         true,
			Program:     KStarProgram(k),
		}, nil
	}
	if j, ok, err := parse("duplicate"); ok {
		if err != nil {
			return CatalogEntry{}, err
		}
		return CatalogEntry{
			Name:        name,
			Description: fmt.Sprintf("R1 unless a tuple occurs in all of R1..R%d", j),
			Query:       Duplicate(j),
			InC:         true,
			Program:     DuplicateProgram(j),
		}, nil
	}
	return CatalogEntry{}, fmt.Errorf("queries: unknown query %q", name)
}

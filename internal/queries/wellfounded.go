package queries

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/monotone"
)

// This file implements the well-founded semantics for Datalog¬ via the
// alternating-fixpoint construction (Van Gelder), which the paper's
// conclusion invokes for win-move and the "doubled program" remark.
// win-move — Win(x) :- Move(x,y), ¬Win(y) — is the canonical
// non-stratifiable program; Zinn et al. [32] showed the corresponding
// query is computable coordination-free under domain guidance, i.e.
// win-move ∈ Mdisjoint (one of the headline results this repository
// reproduces).

// WFSResult is a three-valued model: True holds the well-founded true
// facts, Undefined the facts that are neither true nor false.
type WFSResult struct {
	True      *fact.Instance
	Undefined *fact.Instance
}

// gamma computes Γ(assumed): the least fixpoint of the program with
// every negated atom ¬A evaluated against the fixed instance assumed
// (A is "false" iff A ∉ assumed). The result contains the input facts
// plus all derived facts. Γ is antimonotone in assumed, which drives
// the alternating fixpoint.
func gamma(p *datalog.Program, input, assumed *fact.Instance) (*fact.Instance, error) {
	// The index over the accumulated facts persists across rounds;
	// Valuations would rebuild it per rule per round.
	x := datalog.IndexInstance(input.Clone())
	for {
		var derived []fact.Fact
		for _, r := range p.Rules {
			// Enumerate valuations of the positive part only; check
			// negation against `assumed` manually.
			stripped := datalog.Rule{Head: r.Head, Pos: r.Pos, Ineq: r.Ineq}
			negAtoms := r.Neg
			err := x.Valuations(stripped, func(b datalog.Bindings) error {
				for _, a := range negAtoms {
					g, err := groundAtomWith(a, b)
					if err != nil {
						return err
					}
					if assumed.Has(g) {
						return nil // negation fails
					}
				}
				h, err := groundAtomWith(r.Head, b)
				if err != nil {
					return err
				}
				if !x.Has(h) {
					derived = append(derived, h)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		changed := false
		for _, h := range derived {
			if x.Add(h) {
				changed = true
			}
		}
		if !changed {
			return x.Instance(), nil
		}
	}
}

// groundAtomWith applies bindings to an atom. Negated atoms are safe
// (their variables occur in the positive body), so every variable is
// bound.
func groundAtomWith(a datalog.Atom, b datalog.Bindings) (fact.Fact, error) {
	args := make(fact.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v, ok := b[t.Var]
			if !ok {
				return fact.Fact{}, fmt.Errorf("queries: unbound variable %s in %v", t.Var, a)
			}
			args[i] = v
		} else {
			args[i] = t.Const
		}
	}
	return fact.FromTuple(a.Rel, args), nil
}

// WellFounded computes the well-founded model of the program on the
// input by the alternating fixpoint: the sequence
// U₀ = lfp Γ²(∅-assumption), with T the limit of the increasing
// underestimates and Γ(T) the limit of the decreasing overestimates.
func WellFounded(p *datalog.Program, input *fact.Instance) (*WFSResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	under := input.Clone() // underestimate of true facts (no idb assumed)
	for {
		over, err := gamma(p, input, under) // overestimate (non-false facts)
		if err != nil {
			return nil, err
		}
		next, err := gamma(p, input, over) // improved underestimate
		if err != nil {
			return nil, err
		}
		if next.Equal(under) {
			return &WFSResult{
				True:      under,
				Undefined: over.Minus(under),
			}, nil
		}
		under = next
	}
}

// WinMoveProgram returns the win-move program
// Win(x) :- Move(x,y), ¬Win(y).
func WinMoveProgram() *datalog.Program {
	return datalog.MustParseProgram(`Win(x) :- Move(x,y), !Win(y).`)
}

// MoveSchema is the input schema of the win-move query.
var MoveSchema = fact.MustSchema(map[string]int{"Move": 2})

// WinMove returns the win-move query: the positions that are won under
// the well-founded semantics of Win(x) :- Move(x,y), ¬Win(y), output
// as O(x). Non-monotone; in Mdisjoint (Zinn et al. [32]; reproved via
// connectedness in this paper's conclusion).
func WinMove() monotone.Query {
	prog := WinMoveProgram()
	out1 := fact.MustSchema(map[string]int{"O": 1})
	return monotone.NewFunc("win-move", MoveSchema, out1, func(i *fact.Instance) (*fact.Instance, error) {
		res, err := WellFounded(prog, i)
		if err != nil {
			return nil, err
		}
		out := fact.NewInstance()
		for _, f := range res.True.Rel("Win") {
			out.Add(fact.New("O", f.Arg(0)))
		}
		return out, nil
	})
}

// WinMoveThreeValued returns the three-valued win-move query: the
// full classification of positions as Won(x), Lost(x) or Drawn(x)
// under the well-founded semantics. Like WinMove it is in
// Mdisjoint \ Mdistinct — all three output relations distribute over
// the components of the game graph.
func WinMoveThreeValued() monotone.Query {
	out := fact.MustSchema(map[string]int{"Won": 1, "Lost": 1, "Drawn": 1})
	return monotone.NewFunc("win-move-3v", MoveSchema, out, func(i *fact.Instance) (*fact.Instance, error) {
		won, lost, drawn, err := WinMoveClassified(i)
		if err != nil {
			return nil, err
		}
		res := fact.NewInstance()
		for v := range won {
			res.Add(fact.New("Won", v))
		}
		for v := range lost {
			res.Add(fact.New("Lost", v))
		}
		for v := range drawn {
			res.Add(fact.New("Drawn", v))
		}
		return res, nil
	})
}

// WinMoveClassified returns, for reporting, the won / lost / drawn
// positions of the game graph: won = Win true, drawn = Win undefined,
// lost = positions (active-domain values) where Win is false.
func WinMoveClassified(i *fact.Instance) (won, lost, drawn fact.ValueSet, err error) {
	res, err := WellFounded(WinMoveProgram(), i)
	if err != nil {
		return nil, nil, nil, err
	}
	won, lost, drawn = make(fact.ValueSet), make(fact.ValueSet), make(fact.ValueSet)
	for _, f := range res.True.Rel("Win") {
		won.Add(f.Arg(0))
	}
	for _, f := range res.Undefined.Rel("Win") {
		drawn.Add(f.Arg(0))
	}
	for v := range i.ADom() {
		if !won.Has(v) && !drawn.Has(v) {
			lost.Add(v)
		}
	}
	return won, lost, drawn, nil
}

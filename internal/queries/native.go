// Package queries implements the concrete queries the paper uses as
// separating examples (Theorem 3.1, Example 5.1) and as headline
// results (win-move): transitive closure and its complement QTC, the
// clique queries Q^k_clique, the star queries Q^k_star, the duplicate
// queries Q^j_duplicate, the triangle query separating Mdisjoint from
// C, and the win-move query under the well-founded semantics.
//
// Every query is available as a native Go evaluator (this file); the
// Datalog¬-expressible ones are also available as programs
// (datalogforms.go), with tests asserting the two agree.
package queries

import (
	"fmt"
	"sort"

	"repro/internal/fact"
	"repro/internal/monotone"
)

// undirectedNeighbors returns, for each value, its set of undirected
// neighbors under E (self-loops excluded). The paper's clique and star
// queries ignore edge direction.
func undirectedNeighbors(i *fact.Instance) map[fact.Value]fact.ValueSet {
	adj := make(map[fact.Value]fact.ValueSet)
	add := func(a, b fact.Value) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = make(fact.ValueSet)
		}
		adj[a].Add(b)
	}
	for _, f := range i.Rel("E") {
		add(f.Arg(0), f.Arg(1))
		add(f.Arg(1), f.Arg(0))
	}
	return adj
}

// HasKClique reports whether the undirected version of E contains a
// clique on k distinct vertices.
func HasKClique(i *fact.Instance, k int) bool {
	if k <= 1 {
		// A single vertex is a 1-clique; any nonempty graph has one.
		return k == 1 && !i.Empty()
	}
	adj := undirectedNeighbors(i)
	verts := make([]fact.Value, 0, len(adj))
	for v, ns := range adj {
		if len(ns) >= k-1 {
			verts = append(verts, v)
		}
	}
	sort.Slice(verts, func(a, b int) bool { return verts[a] < verts[b] })

	var clique []fact.Value
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(clique) == k {
			return true
		}
		for n := start; n < len(verts); n++ {
			v := verts[n]
			ok := true
			for _, c := range clique {
				if !adj[c].Has(v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			clique = append(clique, v)
			if rec(n + 1) {
				return true
			}
			clique = clique[:len(clique)-1]
		}
		return false
	}
	return rec(0)
}

// HasKStar reports whether some vertex has at least k distinct
// undirected neighbors (a star with k spokes).
func HasKStar(i *fact.Instance, k int) bool {
	if k == 0 {
		return true
	}
	for _, ns := range undirectedNeighbors(i) {
		if len(ns) >= k {
			return true
		}
	}
	return false
}

// Triangles returns all directed triangles x→y→z→x on distinct
// vertices, as O(x,y,z) facts (each triangle appears in its three
// rotations, matching the Datalog formulation).
func Triangles(i *fact.Instance) []fact.Fact {
	edges := make(map[fact.Value]fact.ValueSet)
	for _, f := range i.Rel("E") {
		if edges[f.Arg(0)] == nil {
			edges[f.Arg(0)] = make(fact.ValueSet)
		}
		edges[f.Arg(0)].Add(f.Arg(1))
	}
	var out []fact.Fact
	for x, xs := range edges {
		for y := range xs {
			if y == x {
				continue
			}
			for z := range edges[y] {
				if z == x || z == y {
					continue
				}
				if edges[z] != nil && edges[z].Has(x) {
					out = append(out, fact.New("O", x, y, z))
				}
			}
		}
	}
	fact.SortFacts(out)
	return out
}

// HasTwoDisjointTriangles reports whether the graph contains two
// vertex-disjoint directed triangles.
func HasTwoDisjointTriangles(i *fact.Instance) bool {
	tris := Triangles(i)
	for a := 0; a < len(tris); a++ {
		va := tris[a].ADom()
		for b := a + 1; b < len(tris); b++ {
			if va.Disjoint(tris[b].ADom()) {
				return true
			}
		}
	}
	return false
}

// edgeOutput returns the input's E facts relabeled as O facts.
func edgeOutput(i *fact.Instance) *fact.Instance {
	out := fact.NewInstance()
	for _, f := range i.Rel("E") {
		out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
	}
	return out
}

var graphOut2 = fact.MustSchema(map[string]int{"O": 2})

// TC returns the transitive-closure query over E, the canonical
// monotone query (∈ M ⊆ Mdistinct ⊆ Mdisjoint).
func TC() monotone.Query {
	return monotone.NewGraphFunc("TC", graphOut2, func(i *fact.Instance) (*fact.Instance, error) {
		reach := make(map[fact.Value]fact.ValueSet)
		for _, f := range i.Rel("E") {
			if reach[f.Arg(0)] == nil {
				reach[f.Arg(0)] = make(fact.ValueSet)
			}
			reach[f.Arg(0)].Add(f.Arg(1))
		}
		// Floyd-Warshall-style saturation.
		for {
			changed := false
			for x, xs := range reach {
				for y := range xs.Clone() {
					for z := range reach[y] {
						if !xs.Has(z) {
							xs.Add(z)
							changed = true
						}
					}
				}
				_ = x
			}
			if !changed {
				break
			}
		}
		out := fact.NewInstance()
		for x, xs := range reach {
			for y := range xs {
				out.Add(fact.New("O", x, y))
			}
		}
		return out, nil
	})
}

// ComplementTC returns QTC from Theorem 3.1(1): all pairs (a, b) of
// active-domain values with no directed path from a to b. The paper's
// witness for Mdisjoint \ Mdistinct.
func ComplementTC() monotone.Query {
	tc := TC()
	return monotone.NewGraphFunc("QTC(¬TC)", graphOut2, func(i *fact.Instance) (*fact.Instance, error) {
		reach, err := tc.Eval(i)
		if err != nil {
			return nil, err
		}
		out := fact.NewInstance()
		ad := i.ADom().Sorted()
		for _, a := range ad {
			for _, b := range ad {
				if !reach.Has(fact.New("O", a, b)) {
					out.Add(fact.New("O", a, b))
				}
			}
		}
		return out, nil
	})
}

// NoLoop returns the SP-Datalog query "active-domain values without a
// self-loop": a simple witness for Mdistinct \ M.
func NoLoop() monotone.Query {
	out1 := fact.MustSchema(map[string]int{"O": 1})
	return monotone.NewGraphFunc("NoLoop", out1, func(i *fact.Instance) (*fact.Instance, error) {
		out := fact.NewInstance()
		for v := range i.ADom() {
			if !i.Has(fact.New("E", v, v)) {
				out.Add(fact.New("O", v))
			}
		}
		return out, nil
	})
}

// KClique returns Q^k_clique from Theorem 3.1(3): the edge relation
// when no k-clique exists (ignoring direction), the empty relation
// otherwise. Q^{i+2}_clique ∈ Mⁱdistinct \ M^{i+1}distinct.
func KClique(k int) monotone.Query {
	name := fmt.Sprintf("Q^%d_clique", k)
	return monotone.NewGraphFunc(name, graphOut2, func(i *fact.Instance) (*fact.Instance, error) {
		if HasKClique(i, k) {
			return fact.NewInstance(), nil
		}
		return edgeOutput(i), nil
	})
}

// KStar returns Q^k_star from Theorem 3.1(4,6): the edge relation when
// no star with k spokes exists, the empty relation otherwise.
// Q^{i+1}_star ∈ Mⁱdisjoint \ M^{i+1}disjoint, and
// Q^{j+1}_star ∈ Mʲdisjoint \ Mⁱdistinct.
func KStar(k int) monotone.Query {
	name := fmt.Sprintf("Q^%d_star", k)
	return monotone.NewGraphFunc(name, graphOut2, func(i *fact.Instance) (*fact.Instance, error) {
		if HasKStar(i, k) {
			return fact.NewInstance(), nil
		}
		return edgeOutput(i), nil
	})
}

// DuplicateSchema returns the input schema of Q^j_duplicate: binary
// relations R1..Rj.
func DuplicateSchema(j int) fact.Schema {
	s := make(fact.Schema)
	for n := 1; n <= j; n++ {
		s[fmt.Sprintf("R%d", n)] = 2
	}
	return s
}

// Duplicate returns Q^j_duplicate from Theorem 3.1(7): the relation R1
// when the global intersection of R1..Rj is empty, the empty set
// otherwise. Q^j_duplicate ∈ Mⁱdistinct \ Mʲdisjoint for i < j.
func Duplicate(j int) monotone.Query {
	name := fmt.Sprintf("Q^%d_duplicate", j)
	in := DuplicateSchema(j)
	return monotone.NewFunc(name, in, graphOut2, func(i *fact.Instance) (*fact.Instance, error) {
		// Intersection of all relations, as value pairs.
		inter := make(map[[2]fact.Value]int)
		for n := 1; n <= j; n++ {
			for _, f := range i.Rel(fmt.Sprintf("R%d", n)) {
				inter[[2]fact.Value{f.Arg(0), f.Arg(1)}]++
			}
		}
		for _, count := range inter {
			if count == j {
				return fact.NewInstance(), nil
			}
		}
		out := fact.NewInstance()
		for _, f := range i.Rel("R1") {
			out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
		}
		return out, nil
	})
}

// TrianglesUnlessTwoDisjoint returns the query separating Mdisjoint
// from C in Theorem 3.1(1): all triangles, on condition that no two
// vertex-disjoint triangles exist (empty otherwise).
func TrianglesUnlessTwoDisjoint() monotone.Query {
	out3 := fact.MustSchema(map[string]int{"O": 3})
	return monotone.NewGraphFunc("Q_triangles", out3, func(i *fact.Instance) (*fact.Instance, error) {
		if HasTwoDisjointTriangles(i) {
			return fact.NewInstance(), nil
		}
		return fact.NewInstance(Triangles(i)...), nil
	})
}

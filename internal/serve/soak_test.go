package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// TestSoakChurn is the race soak: deliberately small queue, batch and
// pipeline bounds, then three kinds of hostile client at once —
//
//   - churners that connect, fire a burst of mixed (partly malformed)
//     requests, read only a prefix of the responses, and slam the
//     connection shut mid-batch;
//   - slow readers that pipeline a burst and then drain with delays,
//     exercising the backpressure path with the ordering buffer full;
//   - a snapshotter racing the commit loop;
//
// while a steady writer keeps group commits flowing. The assertions:
// the server survives (a fresh session still answers), the
// materialization is uncorrupted, and its end state audits clean
// against full recomputation. Run under -race in scripts/check.sh,
// this is also the data-race battery for the whole serving core.
func TestSoakChurn(t *testing.T) {
	duration := 800 * time.Millisecond
	if testing.Short() {
		duration = 200 * time.Millisecond
	}

	dir := t.TempDir()
	c := newTestCore(t, "E(h0,h1)\nE(h1,h0)\n", Options{
		WriteQueue:  8,
		MaxBatch:    4,
		Pipeline:    4,
		SnapshotDir: dir,
	})
	srv, err := NewTCPServer(c, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	stop := make(chan struct{})
	time.AfterFunc(duration, func() { close(stop) })
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup

	// Steady writer: effective toggles so commits never dry up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		present := make(map[int]bool)
		for i := 0; !stopped(); i++ {
			e := i % 16
			op := "insert"
			if present[e] {
				op = "retract"
			}
			present[e] = !present[e]
			line := fmt.Sprintf(`{"op":"%s","facts":["E(w%d,w%d)"]}`+"\n", op, e, e+1)
			if _, err := conn.Write([]byte(line)); err != nil {
				return
			}
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	// Snapshotter racing the commit loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			req, _ := json.Marshal(Request{Op: "snapshot", Path: fmt.Sprintf("soak-%d.snap", i%4)})
			if resp := c.HandleLine(req); !resp.OK {
				t.Errorf("snapshot during soak: %+v", resp)
				return
			}
		}
	}()

	// Churners: abrupt disconnects mid-batch, garbage in the stream.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 42))
			for !stopped() {
				conn, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					return
				}
				burst := 2 + rng.Intn(10)
				for i := 0; i < burst; i++ {
					var line string
					switch rng.Intn(6) {
					case 0:
						line = `{"op":"query","rel":"T","epoch":true}`
					case 1:
						line = fmt.Sprintf(`{"op":"insert","facts":["E(c%dx%d,c%dy%d)"]}`, g, rng.Intn(8), g, rng.Intn(8))
					case 2:
						line = `{"op":"stats"}`
					case 3:
						line = `{garbage` + string(rune('a'+rng.Intn(26)))
					case 4:
						line = `{"op":"retract","facts":["E(h0,h1)"]}`
					case 5:
						line = `{"op":"insert","facts":["E(h0,h1)"]}`
					}
					if _, err := conn.Write([]byte(line + "\n")); err != nil {
						break
					}
				}
				// Read only a prefix, then disconnect with responses (and
				// possibly queued writes) still in flight.
				br := bufio.NewReader(conn)
				for i := rng.Intn(burst + 1); i > 0; i-- {
					conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
					if _, err := br.ReadString('\n'); err != nil {
						break
					}
				}
				conn.Close()
			}
		}(g)
	}

	// Slow readers: pipeline a burst, then drain with delays so the
	// ordering buffer stays full and the session reader blocks.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stopped() {
				conn, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					return
				}
				const burst = 12
				for i := 0; i < burst; i++ {
					if _, err := conn.Write([]byte(`{"op":"facts","epoch":true}` + "\n")); err != nil {
						break
					}
				}
				br := bufio.NewReader(conn)
				ok := true
				for i := 0; i < burst && ok; i++ {
					time.Sleep(time.Millisecond)
					conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
					line, err := br.ReadString('\n')
					if err != nil {
						ok = false
						break
					}
					var r Response
					if err := json.Unmarshal([]byte(line), &r); err != nil || !r.OK {
						t.Errorf("slow reader got bad response: %q", line)
						ok = false
					}
				}
				conn.Close()
			}
		}(g)
	}

	wg.Wait()
	srv.Close()

	// The server survives: a fresh synchronous session still answers,
	// and the state audits clean.
	if resp := c.HandleLine([]byte(`{"op":"ping"}`)); !resp.OK {
		t.Fatalf("ping after soak: %+v", resp)
	}
	if resp := c.HandleLine([]byte(`{"op":"query","rel":"T"}`)); !resp.OK {
		t.Fatalf("query after soak: %+v", resp)
	}
	if err := c.m.Err(); err != nil {
		t.Fatalf("materialization corrupt after soak: %v", err)
	}
	if err := c.m.Verify(); err != nil {
		t.Fatalf("verify after soak: %v", err)
	}
}

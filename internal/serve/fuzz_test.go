package serve

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
)

// fuzz state: one long-lived core shared across fuzz iterations (the
// fuzz engine calls the target sequentially within a process), torn
// down and rebuilt when accumulated inserts grow it too large. The
// snapshot dir confines whatever paths the fuzzer invents.
var (
	fuzzMu   sync.Mutex
	fuzzC    *Core
	fuzzDir  string
	fuzzOnce sync.Once
)

func fuzzCore(t *testing.T) *Core {
	t.Helper()
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-fuzz-*")
		if err != nil {
			t.Fatal(err)
		}
		fuzzDir = dir
	})
	if fuzzC != nil && fuzzC.m.Len() > 20000 {
		fuzzC.Close()
		fuzzC = nil
	}
	if fuzzC == nil {
		inst, err := fact.ParseInstance("E(a,b)\nE(b,a)\n")
		if err != nil {
			t.Fatal(err)
		}
		m, err := incr.New(datalog.MustParseProgram(testProgram), inst, incr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fuzzC = NewCore(m, Options{SnapshotDir: fuzzDir, WriteQueue: 8, MaxBatch: 4})
	}
	return fuzzC
}

// FuzzHandleRequest throws arbitrary request lines at the full
// decode/dispatch/respond path. Whatever the input, the server must
// neither panic nor deadlock, every response must be well-formed (ok
// xor error, marshalable), and the core must keep serving afterwards.
func FuzzHandleRequest(f *testing.F) {
	seeds := []string{
		// every op, well-formed
		`{"op":"ping"}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"query","rel":"T","epoch":true}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
		`{"op":"insert","facts":["E(a,b)"]}`,
		`{"op":"retract","facts":["E(a,b)"]}`,
		`{"op":"apply","insert":["E(x,y)"],"retract":["E(a,b)"]}`,
		`{"op":"snapshot","path":"fuzz.snap"}`,
		// malformed JSON
		`{`,
		`{"op":`,
		`not json at all`,
		`{"op":"ping"}{"op":"ping"}`,
		// wrong-typed fields
		`{"op":42}`,
		`{"op":"insert","facts":"E(a,b)"}`,
		`{"op":"query","rel":["T"]}`,
		`{"op":"query","rel":"T","epoch":"yes"}`,
		// hostile payloads
		`{"op":"insert","facts":["T(a,b)"]}`,
		`{"op":"insert","facts":["E(a"]}`,
		`{"op":"insert","facts":["E(a,b,c,d,e,f)"]}`,
		`{"op":"snapshot","path":"../../etc/passwd"}`,
		`{"op":"snapshot","path":""}`,
		`{"op":"query","rel":""}`,
		`{"op":""}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, line []byte) {
		c := fuzzCore(t)
		resp := c.HandleLine(line)
		if resp.OK && resp.Err != "" {
			t.Fatalf("response both ok and error: %+v", resp)
		}
		if !resp.OK && resp.Err == "" {
			t.Fatalf("failed response carries no error: %+v", resp)
		}
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response: %v", err)
		}
		// Liveness: the core still answers after whatever just happened.
		if ping := c.HandleLine([]byte(`{"op":"ping"}`)); !ping.OK {
			t.Fatalf("core dead after input %q: %+v", line, ping)
		}
	})
}

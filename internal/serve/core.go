package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
)

// Options configures a Core. The zero value is usable: defaults below.
type Options struct {
	// WriteQueue bounds the shared write queue (default 256). A full
	// queue blocks dispatch — backpressure propagates to the client
	// through the connection's pipeline window and TCP flow control.
	WriteQueue int
	// MaxBatch caps how many write ops one group commit drains
	// (default 64). Larger batches amortize epoch publication; smaller
	// ones bound write latency under sustained load.
	MaxBatch int
	// Pipeline bounds in-flight requests per connection (default 64):
	// the reader stops consuming input once this many responses are
	// outstanding, so a slow-reading client cannot queue unbounded
	// work.
	Pipeline int
	// SnapshotDir, when non-empty, confines snapshot ops to bare file
	// names resolved inside this directory. Leave empty to allow
	// arbitrary paths (the CLI default).
	SnapshotDir string
	// Reg, when non-nil, receives the srv.* metrics (see
	// internal/obs names.go).
	Reg *obs.Registry
	// Tracer, when non-nil, records request-scoped spans: srv.req per
	// request with srv.queue_wait/srv.apply/srv.commit (writes),
	// srv.render (reads) and coord.fence (read-your-writes waits)
	// children, reaching into incr.apply. A deterministic tracer
	// suppresses wall-clock fields, so serial single-connection
	// sessions produce byte-identical span streams (DESIGN.md §13).
	Tracer *obs.Tracer
}

func (o Options) writeQueue() int {
	if o.WriteQueue > 0 {
		return o.WriteQueue
	}
	return 256
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 64
}

func (o Options) pipeline() int {
	if o.Pipeline > 0 {
		return o.Pipeline
	}
	return 64
}

// writeTask is one queued mutating op and the slot its response goes
// to. The response channel is 1-buffered so the writer never blocks
// completing a task, even when the issuing connection has died. done
// is closed once the epoch containing the write is published (or the
// task is refused): later reads on the same connection fence on it so
// a client always reads its own writes.
type writeTask struct {
	req  Request
	resp chan Response
	done chan struct{}
	enq  time.Time // zero when metrics are disabled
	// span is the request's srv.req span (nil when tracing is off);
	// the writer finishes it before completing the response, so a
	// serially driven session records spans in a deterministic order.
	// qspan is the srv.queue_wait child, open from enqueue to writer
	// pickup.
	span  *obs.ActiveSpan
	qspan *obs.ActiveSpan
}

// epochState is one published epoch plus its render cache. Epochs
// are immutable, so rendered query results are memoized per (epoch,
// rel): the first query pays the sort+render, every later query on
// the same epoch serves the cached strings — byte-identical by
// construction, and the dominant cost on read-heavy workloads.
type epochState struct {
	ep    *incr.Epoch
	mu    sync.Mutex
	cache map[string][]string // rel → rendered fact strings ("" = all facts)
	resps map[string]Response // read op key → complete response, raw bytes filled
}

// facts is the memoizing factsFor provider for this epoch.
func (es *epochState) facts(rel string) []string {
	es.mu.Lock()
	defer es.mu.Unlock()
	if s, ok := es.cache[rel]; ok {
		return s
	}
	s := epochFacts(es.ep)(rel)
	es.cache[rel] = s
	return s
}

// respond answers one read op, memoizing successful responses —
// including their encoded wire bytes — per (op, rel, epoch-echo). A
// read response is a pure function of those inputs on an immutable
// epoch, so the cache is byte-exact by construction.
func (es *epochState) respond(req Request) Response {
	key := req.Op + "\x00" + req.Rel
	if req.Epoch {
		key += "\x00e"
	}
	es.mu.Lock()
	if r, ok := es.resps[key]; ok {
		es.mu.Unlock()
		return r
	}
	es.mu.Unlock()
	resp := readResponseWith(es.ep, req, es.facts)
	if resp.OK {
		if b, err := json.Marshal(resp); err == nil {
			resp.raw = b
		}
		es.mu.Lock()
		es.resps[key] = resp
		es.mu.Unlock()
	}
	return resp
}

// Core is the serving core: one materialization, one writer
// goroutine, one atomically-published current epoch. Create with
// NewCore; the Core owns the materialization (single-writer MVCC) and
// nothing else may mutate or read it while the Core is open.
type Core struct {
	m    *incr.Materialization
	opts Options

	epoch  atomic.Pointer[epochState]
	writeq chan *writeTask
	quit   chan struct{}
	done   chan struct{}
	closed sync.Once

	// connSeq hands out serving-connection ids — the Conn half of
	// every request TraceID, so trace ids are positional, never random.
	connSeq atomic.Int64

	reg        *obs.Registry
	tracer     *obs.Tracer
	requests   *obs.Counter
	reads      *obs.Counter
	writes     *obs.Counter
	errors     *obs.Counter
	commits    *obs.Counter
	snapshots  *obs.Counter
	conns      *obs.Counter
	coordFence *obs.Counter
	epochG     *obs.Gauge
	lastCommit *obs.Gauge
	batchH     *obs.Histogram
	queueH     *obs.Histogram
	readNs     *obs.LatencyHist
	writeNs    *obs.LatencyHist
	queueNs    *obs.LatencyHist
	applyNs    *obs.LatencyHist
	commitNs   *obs.LatencyHist
	renderNs   *obs.LatencyHist
	fenceNs    *obs.LatencyHist
}

// NewCore wraps the materialization in a serving core, publishes the
// initial epoch, and starts the writer goroutine. Callers must Close
// the core after all sessions have returned.
func NewCore(m *incr.Materialization, opts Options) *Core {
	c := &Core{
		m:      m,
		opts:   opts,
		writeq: make(chan *writeTask, opts.writeQueue()),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),

		reg:        opts.Reg,
		tracer:     opts.Tracer,
		requests:   opts.Reg.Counter(obs.SrvRequests),
		reads:      opts.Reg.Counter(obs.SrvReads),
		writes:     opts.Reg.Counter(obs.SrvWrites),
		errors:     opts.Reg.Counter(obs.SrvErrors),
		commits:    opts.Reg.Counter(obs.SrvCommits),
		snapshots:  opts.Reg.Counter(obs.SrvSnapshots),
		conns:      opts.Reg.Counter(obs.SrvConns),
		coordFence: opts.Reg.Counter(obs.CoordFenceWaits),
		epochG:     opts.Reg.Gauge(obs.SrvEpoch),
		lastCommit: opts.Reg.Gauge(obs.SrvLastCommitUnixNs),
		batchH:     opts.Reg.Histogram(obs.SrvBatchWrites),
		queueH:     opts.Reg.Histogram(obs.SrvQueueDepth),
		readNs:     opts.Reg.Latency(obs.SrvReadNs),
		writeNs:    opts.Reg.Latency(obs.SrvWriteNs),
		queueNs:    opts.Reg.Latency(obs.SrvQueueWaitNs),
		applyNs:    opts.Reg.Latency(obs.SrvApplyNs),
		commitNs:   opts.Reg.Latency(obs.SrvCommitNs),
		renderNs:   opts.Reg.Latency(obs.SrvRenderNs),
		fenceNs:    opts.Reg.Latency(obs.SrvFenceWaitNs),
	}
	c.publish()
	go c.writer()
	return c
}

// CurrentEpoch returns the epoch a read arriving now is pinned to.
func (c *Core) CurrentEpoch() *incr.Epoch { return c.epoch.Load().ep }

// Seq returns the latest published epoch's sequence number.
func (c *Core) Seq() int { return c.CurrentEpoch().Seq() }

// Close stops the writer goroutine and waits for it to exit,
// answering any writes that raced the shutdown with an error. All
// sessions must have returned first: Close does not interrupt
// in-flight Serve loops.
func (c *Core) Close() {
	c.closed.Do(func() { close(c.quit) })
	<-c.done
}

// publish makes the materialization's committed state the current
// read epoch. Skipped when the materialization is corrupt (a failed
// maintenance phase): reads then keep answering from the last good
// epoch while every later write fails fast.
func (c *Core) publish() {
	if c.m.Err() != nil {
		return
	}
	if cur := c.epoch.Load(); cur != nil && cur.ep.Seq() == c.m.Seq() {
		return
	}
	e := c.m.Epoch()
	c.epoch.Store(&epochState{ep: e, cache: make(map[string][]string), resps: make(map[string]Response)})
	c.epochG.Set(int64(e.Seq()))
	if c.reg != nil {
		c.lastCommit.Set(time.Now().UnixNano())
	}
}

// writer is the single mutation loop: it drains the write queue in
// batches, applies every op in arrival order, and publishes one fresh
// epoch per batch (group commit). Responses are completed only after
// the epoch containing the write is published, so a client that has
// seen "seq":N is guaranteed any later read it issues pins an epoch
// >= N.
func (c *Core) writer() {
	defer close(c.done)
	for {
		select {
		case t := <-c.writeq:
			c.commitBatch(t)
		case <-c.quit:
			for {
				select {
				case t := <-c.writeq:
					t.qspan.Finish()
					t.span.Finish()
					t.resp <- errResp("server closed")
					close(t.done)
				default:
					return
				}
			}
		}
	}
}

func (c *Core) commitBatch(first *writeTask) {
	c.queueH.Observe(int64(len(c.writeq)) + 1)
	batch := []*writeTask{first}
	max := c.opts.maxBatch()
drain:
	for len(batch) < max {
		select {
		case t := <-c.writeq:
			batch = append(batch, t)
		default:
			break drain
		}
	}

	resps := make([]Response, len(batch))
	writes := 0
	for i, t := range batch {
		t.qspan.Finish()
		if !t.enq.IsZero() {
			c.queueNs.Observe(time.Since(t.enq).Nanoseconds())
		}
		if t.req.Op == "snapshot" {
			// Commit barrier: everything applied so far in this batch
			// becomes visible first, then the snapshot captures exactly
			// that committed epoch.
			c.publish()
			resps[i] = c.doSnapshot(t.req)
			continue
		}
		as := t.span.Ctx().Start(obs.SpanApply)
		var astart time.Time
		if c.reg != nil {
			astart = time.Now()
		}
		resps[i] = c.applyWrite(t.req, as.Ctx())
		if !astart.IsZero() {
			c.applyNs.Observe(time.Since(astart).Nanoseconds())
		}
		as.SetSeq(c.m.Seq()).Finish()
		writes++
	}
	// The commit span is parented to the batch leader's trace: group
	// commit is one shared barrier, attributed to the request that
	// opened the batch.
	cs := first.span.Ctx().Start(obs.SpanCommit)
	var cstart time.Time
	if c.reg != nil {
		cstart = time.Now()
	}
	c.publish()
	if !cstart.IsZero() {
		c.commitNs.Observe(time.Since(cstart).Nanoseconds())
	}
	epochSeq := c.epoch.Load().ep.Seq()
	cs.SetEpoch(epochSeq).Attr("writes", writes).Finish()
	c.commits.Inc()
	c.batchH.Observe(int64(writes))

	for i, t := range batch {
		if !resps[i].OK {
			c.errors.Inc()
		}
		// Finish the request span before completing the response, so a
		// serial session's span stream is deterministic: the client
		// cannot observe the response until its spans are recorded.
		t.span.SetEpoch(epochSeq).Finish()
		t.resp <- resps[i]
		close(t.done)
		if !t.enq.IsZero() {
			c.writeNs.Observe(time.Since(t.enq).Nanoseconds())
		}
	}
}

// applyWrite validates and applies one mutating op against the
// materialization. Runs only on the writer goroutine. tc nests the
// incr.apply span under the request's srv.apply span.
func (c *Core) applyWrite(req Request, tc obs.SpanCtx) Response {
	var d incr.Delta
	var err error
	switch req.Op {
	case "insert":
		d.Insert, err = fact.ParseFacts(req.Facts)
	case "retract":
		d.Retract, err = fact.ParseFacts(req.Facts)
	case "apply":
		if d.Insert, err = fact.ParseFacts(req.Insert); err == nil {
			d.Retract, err = fact.ParseFacts(req.Retract)
		}
	default:
		return errResp("unknown op %q", req.Op)
	}
	if err != nil {
		return errResp("bad fact: %v", err)
	}
	st, err := c.m.ApplyTraced(d, tc)
	if err != nil {
		return errResp("%v", err)
	}
	seq := c.m.Seq()
	return Response{OK: true, Seq: &seq, Apply: &ApplyBody{
		Inserted:  st.BaseInserted,
		Retracted: st.BaseRetracted,
		Added:     st.DerivedAdded,
		Removed:   st.DerivedRemoved,
	}}
}

// doSnapshot writes the committed state to the requested path. Runs
// only on the writer goroutine, at a commit barrier, so the snapshot
// is exactly one committed epoch — never a torn batch. The response
// reports the captured sequence number.
func (c *Core) doSnapshot(req Request) Response {
	path, err := c.snapshotPath(req.Path)
	if err != nil {
		return errResp("%v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return errResp("%v", err)
	}
	if err := c.m.Snapshot(f); err != nil {
		f.Close()
		return errResp("%v", err)
	}
	if err := f.Close(); err != nil {
		return errResp("%v", err)
	}
	c.snapshots.Inc()
	seq := c.m.Seq()
	return Response{OK: true, Seq: &seq, Path: req.Path}
}

// snapshotPath resolves a requested snapshot path under the
// configured confinement directory, if any. With SnapshotDir set only
// bare file names are accepted — no separators, no "..", nothing
// absolute — so an untrusted request stream cannot write outside it.
func (c *Core) snapshotPath(p string) (string, error) {
	if p == "" {
		return "", fmt.Errorf("snapshot needs a path")
	}
	if c.opts.SnapshotDir == "" {
		return p, nil
	}
	if strings.ContainsAny(p, `/\`) || p == "." || p == ".." {
		return "", fmt.Errorf("snapshot path %q must be a bare file name", p)
	}
	return filepath.Join(c.opts.SnapshotDir, p), nil
}

// dispatch routes one decoded request: reads are pinned to the
// current epoch and evaluated on their own goroutine; writes enqueue
// to the writer (blocking when the queue is full — that block IS the
// backpressure). The response lands in ch, which must be 1-buffered.
//
// fence is the done channel of the most recent write dispatched on
// the same connection (nil when none): a read first waits for that
// write's epoch to publish before pinning, so each connection reads
// its own writes even when it pipelines queries behind mutations.
// dispatch returns the fence later requests on the connection should
// carry — the new write's, or the caller's unchanged.
//
// span, when non-nil, is the request's srv.req span. dispatch owns
// it from here: phase spans nest under it and it is finished before
// the response is delivered, so a serially driven session observes a
// deterministic span stream.
func (c *Core) dispatch(req Request, ch chan Response, fence <-chan struct{}, span *obs.ActiveSpan) <-chan struct{} {
	switch {
	case isReadOp(req.Op):
		c.reads.Inc()
		var start time.Time
		if c.reg != nil {
			start = time.Now()
		}
		ready := fence == nil
		if !ready {
			select {
			case <-fence:
				ready = true
			default:
			}
		}
		if ready {
			// Fast path: no same-connection write outstanding, so the
			// read runs inline on the session goroutine — no spawn, no
			// handoff. The common case on read-heavy streams.
			ch <- c.readAt(c.epoch.Load(), req, span)
			if !start.IsZero() {
				c.readNs.Observe(time.Since(start).Nanoseconds())
			}
			return fence
		}
		go func() {
			// Read-your-writes: pin only after the write's epoch
			// publishes. The wait is coordination — count it and span
			// it as coord.fence.
			fsp := span.Ctx().Start(obs.SpanCoordFence)
			var fstart time.Time
			if c.reg != nil {
				fstart = time.Now()
			}
			<-fence
			fsp.Finish()
			c.coordFence.Inc()
			if !fstart.IsZero() {
				c.fenceNs.Observe(time.Since(fstart).Nanoseconds())
			}
			ch <- c.readAt(c.epoch.Load(), req, span)
			if !start.IsZero() {
				c.readNs.Observe(time.Since(start).Nanoseconds())
			}
		}()
		return fence

	case isWriteOp(req.Op):
		c.writes.Inc()
		t := &writeTask{req: req, resp: ch, done: make(chan struct{}), span: span}
		if c.reg != nil {
			t.enq = time.Now()
		}
		t.qspan = span.Ctx().Start(obs.SpanQueueWait)
		select {
		case c.writeq <- t:
		case <-c.quit:
			c.errors.Inc()
			t.qspan.Finish()
			span.Finish()
			ch <- errResp("server closed")
			close(t.done)
		}
		return t.done

	default:
		c.errors.Inc()
		span.Finish()
		ch <- errResp("unknown op %q", req.Op)
		return fence
	}
}

// readAt answers one read op against a pinned epoch state, serving
// memoized responses from the epoch's render cache. The render phase
// is recorded as a srv.render child span; the request span finishes
// here, before the response is delivered.
func (c *Core) readAt(es *epochState, req Request, span *obs.ActiveSpan) Response {
	rs := span.Ctx().Start(obs.SpanRender)
	var rstart time.Time
	if c.reg != nil {
		rstart = time.Now()
	}
	resp := es.respond(req)
	if !resp.OK {
		c.errors.Inc()
	}
	if !rstart.IsZero() {
		c.renderNs.Observe(time.Since(rstart).Nanoseconds())
	}
	seq := es.ep.Seq()
	rs.SetEpoch(seq).Finish()
	span.SetEpoch(seq).Finish()
	return resp
}

// HandleLine decodes one request line, dispatches it, and waits for
// the response — the synchronous single-request entry point (the fuzz
// harness drives it; sessions use the pipelined loop in session.go).
func (c *Core) HandleLine(line []byte) Response {
	ch := make(chan Response, 1)
	c.decodeAndDispatch(line, ch, nil, nil)
	return <-ch
}

// Do dispatches one already-decoded request and waits for the
// response — the typed twin of HandleLine. A write returns only after
// the epoch containing it is published, so a caller that sequences
// Do(write) before Do(read) always reads its own write. The cluster
// layer's delta pumps and gather paths are built on this entry point.
func (c *Core) Do(req Request) Response {
	return c.DoCtx(req, obs.SpanCtx{})
}

// DoCtx is Do with a trace context: the request is recorded as a
// srv.req span under tc, with the usual phase children. The cluster's
// shard pumps use it so a delivery traces through the core it lands
// on.
func (c *Core) DoCtx(req Request, tc obs.SpanCtx) Response {
	ch := make(chan Response, 1)
	sp := tc.Start(obs.SpanReq)
	sp.Attr("op", req.Op)
	c.dispatch(req, ch, nil, sp)
	return <-ch
}

package serve

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceScript is a serial session mixing writes (queue_wait / apply /
// commit phases), plain reads (render phase), and a malformed line.
var traceScript = []string{
	`{"op":"insert","facts":["E(a,b)","E(b,c)"]}`,
	`{"op":"query","rel":"T"}`,
	`{"op":"retract","facts":["E(a,b)"]}`,
	`{"op":"query","rel":"T","epoch":true}`,
	`not json`,
	`{"op":"stats"}`,
}

// spanStream runs the script through a fresh core with a deterministic
// tracer as a genuinely serial session — a ping-pong client that waits
// for each response before sending the next line, so request N's spans
// are all finished (spans finish before the response is handed over)
// when request N+1 starts — and returns the finished span stream as
// JSONL bytes.
func spanStream(t *testing.T) []byte {
	t.Helper()
	tr := obs.NewTracer(1024, true)
	c := newTestCore(t, "E(s,t)\n", Options{Tracer: tr})
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := c.Serve(reqR, respW)
		respW.Close()
		done <- err
	}()
	br := bufio.NewReader(respR)
	for _, line := range traceScript {
		if _, err := io.WriteString(reqW, line+"\n"); err != nil {
			t.Fatalf("send: %v", err)
		}
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	reqW.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	c.Close()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, 0); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestSpanStreamDeterministic is the span plane's determinism
// contract (DESIGN.md §13): equal serial sessions against equal cores
// under a deterministic tracer produce byte-identical span streams —
// trace ids are positional, span ids are per-trace counters, logical
// timestamps are epoch sequence numbers, and wall-clock fields are
// zeroed.
func TestSpanStreamDeterministic(t *testing.T) {
	a := spanStream(t)
	b := spanStream(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("span streams differ between equal runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}

	// Structural spot checks on the stream, not just self-equality.
	stream := string(a)
	for _, want := range []string{
		`"span":"srv.req"`,
		`"span":"srv.queue_wait"`,
		`"span":"incr.apply"`,
		`"span":"srv.apply"`,
		`"span":"srv.commit"`,
		`"span":"srv.render"`,
		`"trace":"c1-1"`,          // first request on connection 1
		`"op":"insert"`,           // decoded op stamped on the req span
		`"op":"?"`,                // malformed line still traced
		`"start_ns":0,"dur_ns":0`, // deterministic mode zeroes wall clock
	} {
		if !strings.Contains(stream, want) {
			t.Errorf("span stream missing %s in:\n%s", want, stream)
		}
	}
	if strings.Contains(stream, `"start_ns":1`) {
		t.Errorf("deterministic stream leaked a wall-clock start:\n%s", stream)
	}

	// Every request line got a root srv.req span.
	if got := strings.Count(stream, `"span":"srv.req"`); got != len(traceScript) {
		t.Errorf("srv.req spans = %d, want %d:\n%s", got, len(traceScript), stream)
	}
}

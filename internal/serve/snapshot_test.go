package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
)

// TestSnapshotUnderConcurrentWrites races snapshot ops against a
// stream of committing writes and concurrent readers, then proves
// each snapshot captured exactly one committed epoch: restoring it
// yields byte-for-byte the state the single-threaded oracle reaches
// after replaying the first capturedSeq deltas — never a torn batch.
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	c := newTestCore(t, "", Options{SnapshotDir: dir, MaxBatch: 5})
	srv, err := NewTCPServer(c, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Start()

	const nWrites = 120
	// The writer client inserts one unique chain edge per commit, so
	// the oracle state after seq s is exactly edges 1..s.
	edge := func(s int) string { return fmt.Sprintf("E(s%d,s%d)", s-1, s) }

	var wg sync.WaitGroup
	errs := make(chan error, 3)

	// Writer: every insert is effective, seqs come out 1..nWrites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for s := 1; s <= nWrites; s++ {
			line := fmt.Sprintf(`{"op":"insert","facts":["%s"]}`+"\n", edge(s))
			if _, err := conn.Write([]byte(line)); err != nil {
				errs <- err
				return
			}
			resp, err := br.ReadString('\n')
			if err != nil {
				errs <- err
				return
			}
			var r Response
			if err := json.Unmarshal([]byte(resp), &r); err != nil || !r.OK || r.Seq == nil || *r.Seq != s {
				errs <- fmt.Errorf("write %d: %s", s, resp)
				return
			}
		}
	}()

	// Snapshotter: fires snapshots as fast as the writer commits,
	// collecting (file, capturedSeq) pairs.
	type snap struct {
		name string
		seq  int
	}
	var snaps []snap
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			name := fmt.Sprintf("racing-%d.snap", i)
			req, _ := json.Marshal(Request{Op: "snapshot", Path: name})
			resp := c.HandleLine(req)
			if !resp.OK || resp.Seq == nil {
				errs <- fmt.Errorf("snapshot %d: %+v", i, resp)
				return
			}
			snaps = append(snaps, snap{name: name, seq: *resp.Seq})
		}
	}()

	// Reader: hammers pinned queries throughout, checking internal
	// consistency (count matches the echoed epoch's edge count).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			resp := c.HandleLine([]byte(`{"op":"query","rel":"E","epoch":true}`))
			if !resp.OK || resp.Epoch == nil || resp.Count == nil {
				errs <- fmt.Errorf("pinned read: %+v", resp)
				return
			}
			if *resp.Count != *resp.Epoch {
				errs <- fmt.Errorf("epoch %d served %d edges", *resp.Epoch, *resp.Count)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Oracle replay prefixes: restore each snapshot and byte-compare.
	for _, sn := range snaps {
		f, err := os.Open(filepath.Join(dir, sn.name))
		if err != nil {
			t.Fatal(err)
		}
		restored, err := incr.Restore(f, incr.Options{})
		f.Close()
		if err != nil {
			t.Fatalf("restore %s: %v", sn.name, err)
		}
		if restored.Seq() != sn.seq {
			t.Fatalf("%s: restored seq %d, response reported %d", sn.name, restored.Seq(), sn.seq)
		}
		var edges []string
		for s := 1; s <= sn.seq; s++ {
			edges = append(edges, edge(s))
		}
		oracle, err := incr.New(datalog.MustParseProgram(testProgram), nil, incr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ins, err := fact.ParseFacts(edges)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) > 0 {
			if _, err := oracle.Apply(incr.Delta{Insert: ins}); err != nil {
				t.Fatal(err)
			}
		}
		got := fact.FactStrings(restored.Instance().Facts())
		want := fact.FactStrings(oracle.Instance().Facts())
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s (seq %d) is not the committed epoch:\ngot  %v\nwant %v", sn.name, sn.seq, got, want)
		}
		if err := restored.Verify(); err != nil {
			t.Fatalf("%s: %v", sn.name, err)
		}
	}
}

// TestSnapshotRestartByteIdentical proves the full restart loop at
// the serving layer: queries answered before a snapshot, after
// restoring it into a fresh core, and after a re-snapshot round trip
// are all byte-identical.
func TestSnapshotRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	c := newTestCore(t, "E(a,b)\nE(b,c)\nE(c,a)\nE(c,d)\n", Options{SnapshotDir: dir})

	queries := []string{
		`{"op":"query","rel":"T"}`,
		`{"op":"query","rel":"OnLoop"}`,
		`{"op":"query","rel":"Off"}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
	}
	before := runSession(t, c, append([]string{`{"op":"snapshot","path":"restart.snap"}`}, queries...)...)

	f, err := os.Open(filepath.Join(dir, "restart.snap"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := incr.Restore(f, incr.Options{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCore(m2, Options{SnapshotDir: dir})
	t.Cleanup(c2.Close)

	after := runSession(t, c2, queries...)
	for i, q := range queries {
		if before[i+1] != after[i] {
			t.Fatalf("%s diverges across restart:\nbefore: %s\nafter:  %s", q, before[i+1], after[i])
		}
	}

	// Re-snapshot: the snapshot of the restored state must be
	// byte-identical to the original file.
	if resp := c2.HandleLine([]byte(`{"op":"snapshot","path":"again.snap"}`)); !resp.OK {
		t.Fatalf("re-snapshot: %+v", resp)
	}
	b1, err := os.ReadFile(filepath.Join(dir, "restart.snap"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir, "again.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot -> restore -> snapshot is not byte-identical")
	}
}

package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
)

// This file is the per-connection request loop. One Serve call runs
// two goroutines over the stream:
//
//   - the reader (the calling goroutine) scans request lines, reserves
//     an ordering slot per request, and dispatches it — reads fan out
//     to their own goroutines pinned to the arrival epoch, writes flow
//     into the core's bounded queue;
//   - the responder drains the ordering slots IN REQUEST ORDER,
//     waiting on each response as needed, and flushes opportunistically
//     (whenever no further response is immediately pending).
//
// The ordering buffer is a bounded channel of response slots, which is
// also the pipeline window: with it full the reader stops consuming
// input, so a client that pipelines faster than it reads responses is
// throttled by its own socket — bounded memory per connection, no
// matter how the client behaves.
//
// Error handling mirrors the single-threaded daemon exactly: malformed
// JSON answers an error response and the loop continues; a scanner
// failure (e.g. a line over the 16MiB buffer) is not a clean shutdown —
// the client gets one final error response before the stream closes
// and the error propagates to the caller, so the stdio daemon exits
// non-zero.

const maxLine = 16 * 1024 * 1024

// decodeAndDispatch parses one request line and routes it; the
// response is delivered to ch (1-buffered) exactly once. fence is the
// connection's current write fence; the returned channel is the fence
// the next request on the connection should carry (see dispatch).
// span, when non-nil, is the request's srv.req span — stamped with
// the decoded op here, finished by dispatch.
func (c *Core) decodeAndDispatch(line []byte, ch chan Response, fence <-chan struct{}, span *obs.ActiveSpan) <-chan struct{} {
	c.requests.Inc()
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		c.errors.Inc()
		span.Attr("op", "?").Finish()
		ch <- errResp("bad request: %v", err)
		return fence
	}
	span.Attr("op", req.Op)
	if req.Rel != "" {
		span.Attr("rel", req.Rel)
	}
	return c.dispatch(req, ch, fence, span)
}

// Serve runs the pipelined request loop until EOF, answering every
// request line on w in request order.
func (c *Core) Serve(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	pending := make(chan chan Response, c.opts.pipeline())
	werr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var failed error
		for ch := range pending {
			resp := <-ch
			if failed != nil {
				continue // keep draining so dispatched work is reaped
			}
			if resp.raw != nil {
				if _, err := bw.Write(resp.raw); err != nil {
					failed = err
					continue
				}
				if err := bw.WriteByte('\n'); err != nil {
					failed = err
					continue
				}
			} else if err := enc.Encode(resp); err != nil {
				failed = err
				continue
			}
			if len(pending) == 0 {
				if err := bw.Flush(); err != nil {
					failed = err
				}
			}
		}
		if failed == nil {
			failed = bw.Flush()
		}
		werr <- failed
	}()

	// Trace identity: connection ids are allocated positionally, and
	// each request's TraceID is (conn, line number) — never random, so
	// equal serial sessions produce equal trace ids (DESIGN.md §13).
	connID := c.connSeq.Add(1)
	var reqSeq int64

	var fence <-chan struct{} // last write on this connection (read-your-writes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ch := make(chan Response, 1)
		pending <- ch // reserve the ordering slot; blocks at the pipeline bound
		reqSeq++
		var span *obs.ActiveSpan
		if c.tracer != nil {
			span = c.tracer.Root(obs.TraceID{Conn: connID, Seq: reqSeq}).Start(obs.SpanReq)
		}
		fence = c.decodeAndDispatch(line, ch, fence, span)
	}
	scanErr := sc.Err()
	if scanErr != nil {
		// Best-effort final error response; the write side may be gone.
		ch := make(chan Response, 1)
		ch <- errResp("read: %v", scanErr)
		pending <- ch
	}
	close(pending)
	wg.Wait()
	writeErr := <-werr

	if scanErr != nil {
		return fmt.Errorf("read: %w", scanErr)
	}
	return writeErr
}

package serve

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler is one protocol endpoint: anything that can run a session
// over a byte stream. Core implements it (single-node serving); the
// cluster router implements it too, so the same TCP front end serves
// both deployments.
type Handler interface {
	Serve(r io.Reader, w io.Writer) error
}

// TCPServer accepts connections and runs one pipelined session per
// connection over a shared Handler. Connections are independent: each
// gets its own ordering buffer and backpressure window; all share the
// handler's write queue and read epochs.
type TCPServer struct {
	h  Handler
	ln net.Listener
	// core, when the handler is a Core, receives connection metrics.
	core *Core
	// errLog receives per-connection serve errors (nil = discard).
	errLog io.Writer

	mu     sync.Mutex
	closed bool
	active map[net.Conn]bool
	wg     sync.WaitGroup
}

// NewTCPServer listens on addr (e.g. "127.0.0.1:0") and returns a
// server ready to Serve. errLog, when non-nil, receives one line per
// connection that ended with an error.
func NewTCPServer(core *Core, addr string, errLog io.Writer) (*TCPServer, error) {
	s, err := NewTCPServerFor(core, addr, errLog)
	if err != nil {
		return nil, err
	}
	s.core = core
	return s, nil
}

// NewTCPServerFor is NewTCPServer for any Handler (e.g. the cluster
// router).
func NewTCPServerFor(h Handler, addr string, errLog io.Writer) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPServer{h: h, ln: ln, errLog: errLog, active: make(map[net.Conn]bool)}, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. It returns nil after Close,
// or the first accept error otherwise.
func (s *TCPServer) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		if s.core != nil {
			s.core.conns.Inc()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			if err := s.h.Serve(conn, conn); err != nil && !s.isClosed() && s.errLog != nil {
				fmt.Fprintf(s.errLog, "serve: connection: %v\n", err)
			}
		}()
	}
}

// Start runs Serve on its own goroutine.
func (s *TCPServer) Start() { go s.Serve() }

// Close stops accepting, force-closes every active connection, and
// waits for all sessions to drain. The Core is left open — close it
// after.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.active))
	for c := range s.active {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *TCPServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active[conn] = true
	return true
}

func (s *TCPServer) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, conn)
}

package serve

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
)

const benchProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
`

func benchCore(b *testing.B, chain int) *Core {
	b.Helper()
	var sb strings.Builder
	for i := 0; i < chain-1; i++ {
		fmt.Fprintf(&sb, "E(n%d,n%d)\n", i, i+1)
	}
	input, err := fact.ParseInstance(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	m, err := incr.New(datalog.MustParseProgram(benchProgram), input, incr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := NewCore(m, Options{})
	b.Cleanup(c.Close)
	return c
}

// BenchmarkPinnedReads measures the epoch-pinned read path end to
// end (decode, pin, memoized render, response) via HandleLine.
func BenchmarkPinnedReads(b *testing.B) {
	c := benchCore(b, 16)
	line := []byte(`{"op":"query","rel":"T"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := c.HandleLine(line); !resp.OK {
			b.Fatalf("query failed: %+v", resp)
		}
	}
}

// BenchmarkColdReads measures the same read against a fresh epoch
// every time (cache miss: sort, render, and marshal per op).
func BenchmarkColdReads(b *testing.B) {
	c := benchCore(b, 16)
	req := Request{Op: "query", Rel: "T"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es := &epochState{ep: c.m.Epoch(), cache: make(map[string][]string), resps: make(map[string]Response)}
		if resp := es.respond(req); !resp.OK {
			b.Fatalf("query failed: %+v", resp)
		}
	}
}

// BenchmarkWriteCommit measures one mutating op through the writer
// goroutine: enqueue, apply, group commit, epoch publish, response.
func BenchmarkWriteCommit(b *testing.B) {
	c := benchCore(b, 16)
	ins := []byte(`{"op":"insert","facts":["E(w0,w1)"]}`)
	del := []byte(`{"op":"retract","facts":["E(w0,w1)"]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := ins
		if i%2 == 1 {
			line = del
		}
		if resp := c.HandleLine(line); !resp.OK {
			b.Fatalf("write failed: %+v", resp)
		}
	}
}

// BenchmarkEpochPublish measures epoch construction alone: the
// copy-on-write RelView plus state allocation per group commit.
func BenchmarkEpochPublish(b *testing.B) {
	c := benchCore(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := c.m.Epoch()
		if e.Len() == 0 {
			b.Fatal("empty epoch")
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
)

// testProgram exercises both maintenance algorithms: T is recursive
// (DRed under deletion), Off is stratified negation over it.
const testProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
OnLoop(x) :- T(x,x).
Off(x) :- E(x,y), !T(y,x).
`

func newTestCore(t testing.TB, input string, opts Options) *Core {
	t.Helper()
	inst, err := fact.ParseInstance(input)
	if err != nil {
		t.Fatalf("parse input: %v", err)
	}
	m, err := incr.New(datalog.MustParseProgram(testProgram), inst, incr.Options{})
	if err != nil {
		t.Fatalf("incr.New: %v", err)
	}
	c := NewCore(m, opts)
	t.Cleanup(c.Close)
	return c
}

// runSession pushes all lines through one pipelined Serve call (the
// strings.Reader input is consumed as fast as the pipeline window
// allows, so requests genuinely overlap) and returns one response
// line per request line.
func runSession(t testing.TB, c *Core, lines ...string) []string {
	t.Helper()
	var out bytes.Buffer
	if err := c.Serve(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out); err != nil {
		t.Fatalf("serve: %v", err)
	}
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != len(lines) {
		t.Fatalf("got %d responses for %d requests:\n%s", len(got), len(lines), out.String())
	}
	return got
}

func decodeResp(t testing.TB, line string) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		t.Fatalf("bad response line %q: %v", line, err)
	}
	return r
}

func TestReadOps(t *testing.T) {
	c := newTestCore(t, "E(a,b)\nE(b,c)\n", Options{})

	out := runSession(t, c,
		`{"op":"ping"}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"query","rel":"Nope"}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
	)

	if r := decodeResp(t, out[0]); !r.OK {
		t.Fatalf("ping: %+v", r)
	}
	q := decodeResp(t, out[1])
	if !q.OK || q.Count == nil || *q.Count != 3 {
		t.Fatalf("query T: want count 3, got %s", out[1])
	}
	wantT := []string{"T(a,b)", "T(a,c)", "T(b,c)"}
	if fmt.Sprint(q.Facts) != fmt.Sprint(wantT) {
		t.Fatalf("query T facts: got %v want %v", q.Facts, wantT)
	}
	if q.Seq != nil || q.Epoch != nil {
		t.Fatalf("query response must not carry seq/epoch unless asked: %s", out[1])
	}
	empty := decodeResp(t, out[2])
	if !empty.OK || *empty.Count != 0 || len(empty.Facts) != 0 {
		t.Fatalf("query of unknown rel should be ok+empty: %s", out[2])
	}
	all := decodeResp(t, out[3])
	if !all.OK || *all.Count != c.m.Len() {
		t.Fatalf("facts: want count %d, got %s", c.m.Len(), out[3])
	}
	st := decodeResp(t, out[4])
	if !st.OK || st.Stats == nil {
		t.Fatalf("stats: %s", out[4])
	}
	if st.Stats.Seq != 1 || st.Stats.Base != 2 || st.Stats.Facts != st.Stats.Base+st.Stats.Derived {
		t.Fatalf("stats fields inconsistent: %+v", *st.Stats)
	}
}

func TestEpochEchoOptIn(t *testing.T) {
	c := newTestCore(t, "E(a,b)\n", Options{})

	out := runSession(t, c,
		`{"op":"query","rel":"T","epoch":true}`,
		`{"op":"insert","facts":["E(b,c)"]}`,
		`{"op":"query","rel":"T","epoch":true}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"facts","epoch":true}`,
	)

	q0 := decodeResp(t, out[0])
	if q0.Epoch == nil || *q0.Epoch != 1 {
		t.Fatalf("epoch echo before write: %s", out[0])
	}
	w := decodeResp(t, out[1])
	if !w.OK || w.Seq == nil || *w.Seq != 2 {
		t.Fatalf("insert: %s", out[1])
	}
	q1 := decodeResp(t, out[2])
	if q1.Epoch == nil || *q1.Epoch != 2 {
		t.Fatalf("epoch echo after write: %s", out[2])
	}
	// The opt-out response must not even mention the field: byte purity.
	if strings.Contains(out[3], "epoch") {
		t.Fatalf("default query leaked epoch: %s", out[3])
	}
	f := decodeResp(t, out[4])
	if f.Epoch == nil || *f.Epoch != 2 {
		t.Fatalf("facts epoch echo: %s", out[4])
	}
}

func TestErrorResponses(t *testing.T) {
	c := newTestCore(t, "", Options{})

	for _, tc := range []struct {
		line string
		want string
	}{
		{`{"op":"query"}`, "query needs a rel"},
		{`{"op":"warble"}`, "unknown op"},
		{`{not json`, "bad request"},
		{`{"op":"insert","facts":["E(a"]}`, "bad fact"},
		{`{"op":"insert","facts":["T(a,b)"]}`, "derived relation"},
		{`{"op":"retract","facts":["E(a,b,c)"]}`, "arity"},
		{`{"op":"snapshot"}`, "snapshot needs a path"},
	} {
		resp := c.HandleLine([]byte(tc.line))
		if resp.OK {
			t.Errorf("%s: expected error, got ok", tc.line)
			continue
		}
		if resp.Err == "" || !strings.Contains(resp.Err, tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.line, resp.Err, tc.want)
		}
	}
	if c.m.Len() != 0 {
		t.Fatalf("failed requests must not mutate: %d facts", c.m.Len())
	}
	// The materialization stays fully usable after every failure.
	if resp := c.HandleLine([]byte(`{"op":"insert","facts":["E(a,b)"]}`)); !resp.OK {
		t.Fatalf("valid insert after failures: %+v", resp)
	}
}

// TestReadYourWritesPipelined pipelines writes immediately followed by
// queries on one connection. Each query must observe every preceding
// write on the same connection (the write fence), even though reads
// never enter the write queue.
func TestReadYourWritesPipelined(t *testing.T) {
	c := newTestCore(t, "", Options{MaxBatch: 4})

	const n = 40
	lines := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		lines = append(lines,
			fmt.Sprintf(`{"op":"insert","facts":["E(n%d,n%d)"]}`, i, i+1),
			`{"op":"query","rel":"E"}`)
	}
	out := runSession(t, c, lines...)
	for i := 0; i < n; i++ {
		w := decodeResp(t, out[2*i])
		if !w.OK || w.Seq == nil {
			t.Fatalf("write %d: %s", i, out[2*i])
		}
		q := decodeResp(t, out[2*i+1])
		if !q.OK || q.Count == nil {
			t.Fatalf("query %d: %s", i, out[2*i+1])
		}
		// Query i follows writes 0..i on this connection: at least i+1
		// edges visible (an epoch may also be newer, never older).
		if *q.Count < i+1 {
			t.Fatalf("query %d saw %d edges, want >= %d (stale epoch: fence broken)", i, *q.Count, i+1)
		}
	}
}

// TestResponseOrderPreserved interleaves ops whose response shapes
// differ and checks responses come back in request order even with a
// pipeline window much smaller than the request count.
func TestResponseOrderPreserved(t *testing.T) {
	c := newTestCore(t, "E(a,b)\n", Options{Pipeline: 2, MaxBatch: 3})

	var lines []string
	for i := 0; i < 50; i++ {
		switch i % 4 {
		case 0:
			lines = append(lines, `{"op":"ping"}`)
		case 1:
			lines = append(lines, fmt.Sprintf(`{"op":"insert","facts":["E(m%d,m%d)"]}`, i, i+1))
		case 2:
			lines = append(lines, `{"op":"query","rel":"E"}`)
		case 3:
			lines = append(lines, `{"op":"stats"}`)
		}
	}
	out := runSession(t, c, lines...)
	for i, line := range out {
		r := decodeResp(t, line)
		if !r.OK {
			t.Fatalf("request %d failed: %s", i, line)
		}
		switch i % 4 {
		case 0:
			if r.Count != nil || r.Seq != nil || r.Stats != nil {
				t.Fatalf("request %d: ping got non-ping response %s", i, line)
			}
		case 1:
			if r.Seq == nil || r.Apply == nil {
				t.Fatalf("request %d: insert got non-write response %s", i, line)
			}
		case 2:
			if r.Count == nil {
				t.Fatalf("request %d: query got non-query response %s", i, line)
			}
		case 3:
			if r.Stats == nil {
				t.Fatalf("request %d: stats got non-stats response %s", i, line)
			}
		}
	}
}

func TestSnapshotPathConfinement(t *testing.T) {
	dir := t.TempDir()
	c := newTestCore(t, "E(a,b)\n", Options{SnapshotDir: dir})

	for _, bad := range []string{"../escape", "sub/file", `sub\file`, ".", ".."} {
		req, _ := json.Marshal(Request{Op: "snapshot", Path: bad})
		if resp := c.HandleLine(req); resp.OK {
			t.Errorf("snapshot path %q must be rejected", bad)
		}
	}
	resp := c.HandleLine([]byte(`{"op":"snapshot","path":"ok.snap"}`))
	if !resp.OK || resp.Seq == nil || *resp.Seq != 1 || resp.Path != "ok.snap" {
		t.Fatalf("snapshot: %+v", resp)
	}
	if _, err := os.Stat(filepath.Join(dir, "ok.snap")); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	// Without confinement arbitrary paths are allowed.
	c2 := newTestCore(t, "E(a,b)\n", Options{})
	p := filepath.Join(dir, "free.snap")
	req, _ := json.Marshal(Request{Op: "snapshot", Path: p})
	if resp := c2.HandleLine(req); !resp.OK {
		t.Fatalf("unconfined snapshot: %+v", resp)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("unconfined snapshot file: %v", err)
	}
}

// TestEpochResponseCacheBytes asserts the memoized fast path is
// byte-identical to a fresh render: the same query twice on one epoch
// must produce identical wire lines, and both must equal the pure
// oracle readResponse marshaled.
func TestEpochResponseCacheBytes(t *testing.T) {
	c := newTestCore(t, "E(a,b)\nE(b,c)\nE(c,a)\n", Options{})

	out := runSession(t, c,
		`{"op":"query","rel":"T","epoch":true}`,
		`{"op":"query","rel":"T","epoch":true}`,
		`{"op":"facts"}`,
		`{"op":"facts"}`,
	)
	if out[0] != out[1] || out[2] != out[3] {
		t.Fatalf("cached and fresh renders differ:\n%s\n%s\n%s\n%s", out[0], out[1], out[2], out[3])
	}
	oracle, err := json.Marshal(readResponse(c.CurrentEpoch(), Request{Op: "query", Rel: "T", Epoch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != string(oracle) {
		t.Fatalf("served bytes differ from oracle:\n%s\n%s", out[0], oracle)
	}
}

func TestServeReportsScannerError(t *testing.T) {
	c := newTestCore(t, "", Options{})
	long := `{"op":"ping","rel":"` + strings.Repeat("x", maxLine) + `"}` + "\n"
	var out bytes.Buffer
	err := c.Serve(strings.NewReader(`{"op":"ping"}`+"\n"+long), &out)
	if err == nil {
		t.Fatal("oversized line must fail the session")
	}
	resps := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(resps) != 2 {
		t.Fatalf("want ping response plus final error, got %q", out.String())
	}
	if r := decodeResp(t, resps[1]); r.OK || !strings.Contains(r.Err, "read:") {
		t.Fatalf("final response must report the read error: %s", resps[1])
	}
}

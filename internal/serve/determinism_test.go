package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
)

// TestDeterminismUnderConcurrency is the determinism property test:
// N concurrent clients hammer one TCP server with seeded interleaved
// reads and writes; afterwards a single-threaded oracle replays the
// committed delta sequence and every read response the server
// produced is byte-compared against the pure readResponse of the
// oracle's epoch with the same sequence number.
//
// The key structural facts that make the comparison exact:
//   - each client toggles edges in its own namespace, tracked locally,
//     so every write is an effective base change — the apply sequence
//     numbers come out dense and identify the total commit order;
//   - reads opt in to the epoch echo ("epoch":true for query/facts;
//     stats carries its seq natively), pinning each response to the
//     epoch that served it;
//   - a query response is a pure function of (epoch, request), so the
//     oracle's json.Marshal must reproduce the server's wire line
//     byte for byte.
func TestDeterminismUnderConcurrency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDeterminism(t, seed)
		})
	}
}

// detRead is one recorded read: the request, the epoch that answered
// it, and the exact wire line the server sent.
type detRead struct {
	req   Request
	epoch int
	raw   string
}

func runDeterminism(t *testing.T, seed int64) {
	const (
		clients = 6
		steps   = 50
	)
	// A static loop so OnLoop and Off are non-empty from the start.
	input := "E(h0,h1)\nE(h1,h2)\nE(h2,h0)\n"

	c := newTestCore(t, input, Options{MaxBatch: 8, Pipeline: 16})
	srv, err := NewTCPServer(c, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Start()

	var (
		mu     sync.Mutex
		writes = make(map[int]Request) // seq -> the write that committed it
		reads  []detRead
	)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := detClient(srv.Addr(), seed, id, steps, &mu, writes, &reads); err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Oracle replay: the same program and input, the committed deltas
	// re-applied single-threaded in sequence order.
	inst, err := fact.ParseInstance(input)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := incr.New(datalog.MustParseProgram(testProgram), inst, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	epochs := map[int]*incr.Epoch{oracle.Seq(): oracle.Epoch()}
	maxSeq := 0
	for s := range writes {
		if s > maxSeq {
			maxSeq = s
		}
	}
	for s := oracle.Seq() + 1; s <= maxSeq; s++ {
		req, ok := writes[s]
		if !ok {
			t.Fatalf("sequence numbers not dense: no recorded write for seq %d", s)
		}
		var d incr.Delta
		switch req.Op {
		case "insert":
			d.Insert, err = fact.ParseFacts(req.Facts)
		case "retract":
			d.Retract, err = fact.ParseFacts(req.Facts)
		default:
			t.Fatalf("unexpected write op %q at seq %d", req.Op, s)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Apply(d); err != nil {
			t.Fatalf("oracle apply seq %d: %v", s, err)
		}
		if oracle.Seq() != s {
			t.Fatalf("oracle seq %d after applying write recorded at seq %d", oracle.Seq(), s)
		}
		epochs[s] = oracle.Epoch()
	}

	// Every read the concurrent server answered must be byte-identical
	// to the oracle's pure function of the same epoch.
	for i, r := range reads {
		ep, ok := epochs[r.epoch]
		if !ok {
			t.Fatalf("read %d pinned unknown epoch %d", i, r.epoch)
		}
		want, err := json.Marshal(readResponse(ep, r.req))
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != r.raw {
			t.Fatalf("read %d (%s %s at epoch %d) diverges from oracle:\nserver: %s\noracle: %s",
				i, r.req.Op, r.req.Rel, r.epoch, r.raw, want)
		}
	}
	if len(reads) == 0 || len(writes) == 0 {
		t.Fatalf("degenerate run: %d reads, %d writes", len(reads), len(writes))
	}

	// The served end state equals the oracle end state, and the
	// materialization audits clean after all the concurrency.
	finalServer, err := json.Marshal(readResponse(c.CurrentEpoch(), Request{Op: "facts"}))
	if err != nil {
		t.Fatal(err)
	}
	finalOracle, err := json.Marshal(readResponse(epochs[maxSeq], Request{Op: "facts"}))
	if err != nil {
		t.Fatal(err)
	}
	if string(finalServer) != string(finalOracle) {
		t.Fatalf("final states diverge:\nserver: %s\noracle: %s", finalServer, finalOracle)
	}
	if err := c.m.Verify(); err != nil {
		t.Fatalf("verify after concurrent run: %v", err)
	}
}

// detClient runs one seeded client: serial request/response over its
// own TCP connection (concurrency comes from the other clients),
// toggling edges in its private d<id>n* namespace and recording every
// write's committed seq and every read's raw response line.
func detClient(addr string, seed int64, id, steps int, mu *sync.Mutex, writes map[int]Request, reads *[]detRead) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
	present := make(map[[2]int]bool)
	const nodes = 4

	roundTrip := func(req Request) (Response, string, error) {
		b, err := json.Marshal(req)
		if err != nil {
			return Response{}, "", err
		}
		if _, err := conn.Write(append(b, '\n')); err != nil {
			return Response{}, "", err
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return Response{}, "", err
		}
		line = line[:len(line)-1]
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			return Response{}, "", fmt.Errorf("bad response %q: %w", line, err)
		}
		return resp, line, nil
	}

	for step := 0; step < steps; step++ {
		if rng.Float64() < 0.4 {
			// Toggle a random edge in this client's namespace: always an
			// effective base change, so the committed seq is unique.
			e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
			op := "insert"
			if present[e] {
				op = "retract"
			}
			present[e] = !present[e]
			req := Request{Op: op, Facts: []string{fmt.Sprintf("E(d%dn%d,d%dn%d)", id, e[0], id, e[1])}}
			resp, line, err := roundTrip(req)
			if err != nil {
				return err
			}
			if !resp.OK || resp.Seq == nil {
				return fmt.Errorf("write failed: %s", line)
			}
			mu.Lock()
			if prev, dup := writes[*resp.Seq]; dup {
				mu.Unlock()
				return fmt.Errorf("two writes committed at seq %d: %+v and %+v", *resp.Seq, prev, req)
			}
			writes[*resp.Seq] = req
			mu.Unlock()
			continue
		}
		var req Request
		switch rng.Intn(6) {
		case 0:
			req = Request{Op: "query", Rel: "T", Epoch: true}
		case 1:
			req = Request{Op: "query", Rel: "E", Epoch: true}
		case 2:
			req = Request{Op: "query", Rel: "Off", Epoch: true}
		case 3:
			req = Request{Op: "query", Rel: "OnLoop", Epoch: true}
		case 4:
			req = Request{Op: "facts", Epoch: true}
		case 5:
			req = Request{Op: "stats"}
		}
		resp, line, err := roundTrip(req)
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("read failed: %s", line)
		}
		var at int
		switch {
		case resp.Epoch != nil:
			at = *resp.Epoch
		case resp.Stats != nil:
			at = resp.Stats.Seq
		default:
			return fmt.Errorf("read response carries no epoch: %s", line)
		}
		mu.Lock()
		*reads = append(*reads, detRead{req: req, epoch: at, raw: line})
		mu.Unlock()
	}
	return nil
}

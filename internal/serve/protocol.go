// Package serve is calmd's server core: a concurrent, epoch-pinned
// MVCC request loop around one incr.Materialization.
//
// The concurrency model, in one paragraph: all mutating ops
// (insert/retract/apply, plus snapshot as a barrier op) flow through a
// bounded queue into a single writer goroutine, which drains them in
// arrival order as group-committed batches and publishes a fresh
// immutable read epoch (incr.Epoch, copy-on-write posting lists) at
// each batch barrier. Read ops (ping/query/facts/stats) never enter
// the queue: each is pinned, at arrival, to the epoch current at that
// moment and evaluated concurrently — any number of reads in flight,
// zero coordination with the writer. This is the CALM result turned
// into a server loop: coordination-free reads proceed against a
// consistent grown state while growth happens elsewhere.
//
// Determinism contract: a query response is a pure function of the
// epoch that served it. Responses to the same query at the same epoch
// are byte-identical — across connections, across restarts from a
// snapshot of that epoch, and against a single-threaded oracle that
// replays the same committed delta sequence (the determinism property
// test does exactly that). Query responses carry no sequence numbers
// by default; a client that needs to know which epoch served it sets
// "epoch":true on the request.
//
// The wire protocol is newline-delimited JSON, one request object per
// line in, one response object per line out, in request order per
// connection (reads complete out of order internally; a per-connection
// ordering buffer re-sequences them). Requests:
//
//	{"op":"ping"}
//	{"op":"insert","facts":["E(a,b)","E(b,c)"]}
//	{"op":"retract","facts":["E(a,b)"]}
//	{"op":"apply","insert":["E(a,b)"],"retract":["E(c,d)"]}
//	{"op":"query","rel":"T"}
//	{"op":"query","rel":"T","epoch":true}
//	{"op":"facts"}
//	{"op":"stats"}
//	{"op":"snapshot","path":"state.snap"}
//
// Responses always carry "ok"; failures carry "error" and leave the
// materialization untouched (delta validation happens before any
// mutation). Mutating ops report the apply stats and the new sequence
// number; snapshot reports the captured sequence number, which is
// always exactly one committed epoch even with writes in flight.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/fact"
	"repro/internal/incr"
)

// Request is one protocol request line.
type Request struct {
	Op      string   `json:"op"`
	Facts   []string `json:"facts,omitempty"`
	Insert  []string `json:"insert,omitempty"`
	Retract []string `json:"retract,omitempty"`
	Rel     string   `json:"rel,omitempty"`
	Path    string   `json:"path,omitempty"`
	// Epoch asks query/facts responses to echo the sequence number of
	// the epoch that served them. Off by default so the default
	// response stays a pure function of the fact set alone.
	Epoch bool `json:"epoch,omitempty"`
}

// ApplyBody reports what one mutating op did.
type ApplyBody struct {
	Inserted  int `json:"inserted"`
	Retracted int `json:"retracted"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
}

// ClusterBody is the "cluster" op response payload: topology and
// progress of a sharded deployment, served by the cluster router.
type ClusterBody struct {
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// Placement names the placement strategy ("hash" or "component").
	Placement string `json:"placement"`
	// Plan names the coordination plan the fragment classifier chose
	// ("coordination-free" or "fenced").
	Plan string `json:"plan"`
	// Fragment is the program's classified Datalog fragment.
	Fragment string `json:"fragment"`
	// Log is the length of the global delta log.
	Log int `json:"log"`
	// Watermarks[j] is the global log prefix shard j has applied.
	Watermarks []int `json:"watermarks"`
	// Affinity is the shard this connection's reads route to in
	// replicated mode (-1 when reads gather from all shards).
	Affinity int `json:"affinity"`
	// Applied[j] is shard j's serving core's published epoch sequence
	// — the live applied-epoch view (/healthz exposes the same data).
	Applied []int `json:"applied,omitempty"`
	// Held[j] counts fault-held deliveries parked on shard j.
	Held []int `json:"held,omitempty"`
	// Lag[j] is shard j's pump lag in log entries: log length minus
	// its watermark.
	Lag []int `json:"lag,omitempty"`
}

// StatsBody is the stats op response payload, read from one epoch.
type StatsBody struct {
	Seq     int `json:"seq"`
	Facts   int `json:"facts"`
	Base    int `json:"base"`
	Derived int `json:"derived"`
}

// Response is one protocol response line. Field order is part of the
// wire format: tests byte-compare responses across restarts and
// against oracle replays.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"error,omitempty"`
	// Seq is a pointer so that sequence number 0 — a no-op delta on a
	// fresh daemon — still reaches the wire; omitempty on a plain int
	// would drop it. Query responses leave it nil on purpose: they must
	// stay a pure function of the epoch state.
	Seq   *int       `json:"seq,omitempty"`
	Apply *ApplyBody `json:"apply,omitempty"`
	Stats *StatsBody `json:"stats,omitempty"`
	Count *int       `json:"count,omitempty"`
	Facts []string   `json:"facts,omitempty"`
	Path  string     `json:"path,omitempty"`
	// Epoch echoes the serving epoch's sequence number when the
	// request asked for it ("epoch":true).
	Epoch *int `json:"epoch,omitempty"`
	// Cluster is the "cluster" op payload (sharded deployments only;
	// single-node daemons never set it, keeping their wire lines
	// byte-identical to previous releases).
	Cluster *ClusterBody `json:"cluster,omitempty"`

	// raw, when non-nil, is this response's already-encoded wire line
	// (no trailing newline). The session loop writes it verbatim
	// instead of re-marshaling; the epoch render cache fills it so a
	// repeated query costs one map hit, not one json.Marshal.
	// Unexported: encoding/json ignores it, so marshaling a Response
	// that carries raw reproduces exactly raw.
	raw []byte
}

// Encode returns the response's wire line (no trailing newline):
// the memoized raw bytes when present, a fresh json.Marshal otherwise.
// Session loops outside this package (the cluster router) use it so a
// memoized read costs zero marshals end to end.
func (r Response) Encode() ([]byte, error) {
	if r.raw != nil {
		return r.raw, nil
	}
	return json.Marshal(r)
}

// ErrResp builds a protocol error response. Exported for the cluster
// router, which speaks the same wire format.
func ErrResp(format string, args ...any) Response {
	return errResp(format, args...)
}

// IsRead reports whether the op is a read in the protocol's sense
// (answered from a pinned epoch, never entering a write queue).
func IsRead(op string) bool { return isReadOp(op) }

// IsWrite reports whether the op is serialized through a writer.
func IsWrite(op string) bool { return isWriteOp(op) }

func errResp(format string, args ...any) Response {
	return Response{Err: fmt.Sprintf(format, args...)}
}

// isReadOp reports whether the op runs against a pinned epoch without
// entering the write queue.
func isReadOp(op string) bool {
	switch op {
	case "ping", "query", "facts", "stats":
		return true
	}
	return false
}

// isWriteOp reports whether the op is serialized through the writer
// goroutine. Snapshot is a write in the ordering sense: it must
// observe a commit barrier, never a half-applied batch.
func isWriteOp(op string) bool {
	switch op {
	case "insert", "retract", "apply", "snapshot":
		return true
	}
	return false
}

// factsFor renders the sorted fact strings for one relation, or for
// the whole epoch when rel is "". The serving path passes a per-epoch
// memoizing implementation (epochs are immutable, so each (epoch,
// rel) renders at most once no matter how many queries hit it); the
// oracle path recomputes directly. Both must produce identical
// strings — the determinism test byte-compares them.
type factsFor func(rel string) []string

// epochFacts is the direct, uncached provider over one epoch.
func epochFacts(ep *incr.Epoch) factsFor {
	return func(rel string) []string {
		if rel == "" {
			return fact.FactStrings(ep.Facts())
		}
		return fact.FactStrings(ep.Rel(rel))
	}
}

// readResponse answers a read op from one immutable epoch. It is a
// pure function of (epoch, request): the determinism property test
// replays it against oracle epochs and byte-compares with what the
// concurrent server produced.
func readResponse(ep *incr.Epoch, req Request) Response {
	return readResponseWith(ep, req, epochFacts(ep))
}

// ReadResponse exposes the pure read function for oracle replays
// outside this package: the cluster equivalence battery replays
// committed deltas single-threaded and byte-compares every routed
// read against this function of the oracle's epoch.
func ReadResponse(ep *incr.Epoch, req Request) Response {
	return readResponse(ep, req)
}

// readResponseWith is readResponse with an explicit fact-string
// provider (see factsFor).
func readResponseWith(ep *incr.Epoch, req Request, facts factsFor) Response {
	switch req.Op {
	case "ping":
		return Response{OK: true}

	case "query":
		if req.Rel == "" {
			return errResp("query needs a rel")
		}
		fs := facts(req.Rel)
		n := len(fs)
		resp := Response{OK: true, Count: &n, Facts: fs}
		if req.Epoch {
			seq := ep.Seq()
			resp.Epoch = &seq
		}
		return resp

	case "facts":
		fs := facts("")
		n := len(fs)
		resp := Response{OK: true, Count: &n, Facts: fs}
		if req.Epoch {
			seq := ep.Seq()
			resp.Epoch = &seq
		}
		return resp

	case "stats":
		return Response{OK: true, Stats: &StatsBody{
			Seq:     ep.Seq(),
			Facts:   ep.Len(),
			Base:    ep.BaseLen(),
			Derived: ep.Len() - ep.BaseLen(),
		}}

	default:
		return errResp("unknown op %q", req.Op)
	}
}

// Package ilog implements wILOG¬ — weakly safe ILOG with stratified
// negation — following Section 5.2 of the paper (and Cabibbo,
// "The expressive power of stratified logic programs with value
// invention", Inf. & Comp. 1998). ILOG¬ extends Datalog¬ with
// invention relations whose first position is filled by the invention
// symbol '*' in rule heads; Skolemization replaces '*' with a Skolem
// functor term fR(u1,...,uk), and the semantics evaluates the
// Skolemized rules over the Herbrand universe of ground terms.
//
// Invented values are represented as fact.Values with a canonical
// textual encoding "$fR(v1,v2)" (recursively for nested terms); plain
// domain values never start with '$', so the encoding is injective.
//
// When the fixpoint does not converge (the invention process feeds
// itself), the output of the program is undefined; the evaluator
// detects this with a configurable bound and returns ErrDiverged.
package ilog

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// ErrDiverged is returned when the fixpoint exceeds its bound, which
// signals that the program output is (presumed) undefined — the
// invention process generates unboundedly many new values.
var ErrDiverged = errors.New("ilog: fixpoint did not converge (output undefined)")

// InventedPrefix marks invented values in the fact.Value encoding.
const InventedPrefix = "$"

// IsInvented reports whether the value is an invented (Skolem) value.
func IsInvented(v fact.Value) bool {
	return strings.HasPrefix(string(v), InventedPrefix)
}

// SkolemValue builds the ground Skolem term fR(args...) as an encoded
// value. The functor is named after the invention relation.
func SkolemValue(rel string, args []fact.Value) fact.Value {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = string(a)
	}
	return fact.Value(InventedPrefix + "f" + rel + "(" + strings.Join(parts, "\x01") + ")")
}

// Rule is an ILOG¬ rule: a Datalog¬ rule whose head may be an
// invention atom R(*, u1, ..., uk). When Invents is set, the head atom
// lists only the non-invention arguments u1..uk; the stored relation R
// then has arity len(Args)+1 with the invention position first.
type Rule struct {
	Head    datalog.Atom
	Invents bool
	Pos     []datalog.Atom
	Neg     []datalog.Atom
	Ineq    []datalog.Inequality
}

// headArity returns the arity of the head relation including the
// invention position when present.
func (r Rule) headArity() int {
	if r.Invents {
		return len(r.Head.Args) + 1
	}
	return len(r.Head.Args)
}

// body returns the rule as a headless Datalog¬ rule for valuation
// enumeration; the dummy head repeats the first positive atom so the
// rule is trivially safe for the head.
func (r Rule) asDatalogRule() datalog.Rule {
	return datalog.Rule{
		Head: r.Head,
		Pos:  r.Pos,
		Neg:  r.Neg,
		Ineq: r.Ineq,
	}
}

// Validate checks rule well-formedness: safety and nonempty body, as
// for Datalog¬ (invention heads are safe when their listed arguments
// are; the invention position itself is produced, not consumed).
func (r Rule) Validate() error {
	if r.Invents && len(r.Head.Args) == 0 {
		// R(*) :- Body — a unary invention relation. The head carries
		// no variables, so validate the body with a dummy head.
		if len(r.Pos) == 0 {
			return fmt.Errorf("ilog: rule %v has empty positive body", r)
		}
		d := datalog.Rule{Head: r.Pos[0], Pos: r.Pos, Neg: r.Neg, Ineq: r.Ineq}
		return d.Validate()
	}
	return r.asDatalogRule().Validate()
}

// String renders the rule; invention heads show the '*' symbol.
func (r Rule) String() string {
	if !r.Invents {
		return r.asDatalogRule().String()
	}
	if len(r.Head.Args) == 0 {
		d := datalog.Rule{Head: datalog.AtomV(r.Head.Rel, "*"), Pos: r.Pos, Neg: r.Neg, Ineq: r.Ineq}
		return d.String()
	}
	s := r.asDatalogRule().String()
	open := strings.Index(s, "(")
	return s[:open+1] + "*, " + s[open+1:]
}

// Program is an ILOG¬ program: a set of rules, some of whose heads may
// invent values.
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// FromDatalog lifts a plain Datalog¬ program into an ILOG¬ program
// with no invention.
func FromDatalog(p *datalog.Program) *Program {
	out := NewProgram()
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, Rule{Head: r.Head, Pos: r.Pos, Neg: r.Neg, Ineq: r.Ineq})
	}
	return out
}

// InventionRelations returns the relations that appear as invention
// heads.
func (p *Program) InventionRelations() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		if r.Invents {
			out[r.Head.Rel] = true
		}
	}
	return out
}

// Schema returns sch(P) with invention relations at their full arity
// (invention position included).
func (p *Program) Schema() (fact.Schema, error) {
	s := make(fact.Schema)
	for _, r := range p.Rules {
		if err := s.Declare(r.Head.Rel, r.headArity()); err != nil {
			return nil, err
		}
		for _, a := range append(append([]datalog.Atom{}, r.Pos...), r.Neg...) {
			if err := s.Declare(a.Rel, len(a.Args)); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// IDB returns the head relations with their full arities.
func (p *Program) IDB() fact.Schema {
	s := make(fact.Schema)
	for _, r := range p.Rules {
		s[r.Head.Rel] = r.headArity()
	}
	return s
}

// EDB returns sch(P) minus the idb relations.
func (p *Program) EDB() (fact.Schema, error) {
	s, err := p.Schema()
	if err != nil {
		return nil, err
	}
	return s.Minus(p.IDB()), nil
}

// Validate checks every rule, schema consistency, and that invention
// relations are used consistently (every rule deriving an invention
// relation must invent; invention relations must not also be derived
// without invention).
func (p *Program) Validate() error {
	invents := p.InventionRelations()
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if invents[r.Head.Rel] && !r.Invents {
			return fmt.Errorf("ilog: relation %s derived both with and without invention", r.Head.Rel)
		}
	}
	_, err := p.Schema()
	return err
}

// IsPositive reports whether no rule has negative body atoms.
func (p *Program) IsPositive() bool {
	for _, r := range p.Rules {
		if len(r.Neg) > 0 {
			return false
		}
	}
	return true
}

// IsSemiPositive reports whether every negated atom is over the edb
// (the class SP-wILOG of Section 5.2).
func (p *Program) IsSemiPositive() bool {
	idb := p.IDB()
	for _, r := range p.Rules {
		for _, a := range r.Neg {
			if idb.Has(a.Rel) {
				return false
			}
		}
	}
	return true
}

// String renders the program one rule per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

package ilog

import (
	"fmt"
	"sort"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/obs"
)

// This file evaluates ILOG¬ programs under the stratified semantics:
// strata are evaluated in order, each as a fixpoint where valuations
// of the Skolemized rules are taken over the Herbrand universe — in
// practice, over the facts accumulated so far, whose values may
// already be invented terms. A fresh invention for the same valuation
// always yields the same Skolem value, as Skolemization requires.

// Options bounds the fixpoint. Because value invention can diverge
// (the output is then undefined), both a round bound and a size bound
// are enforced; exceeding either yields ErrDiverged.
type Options struct {
	// MaxRounds caps the number of immediate-consequence rounds per
	// stratum. Zero means DefaultMaxRounds.
	MaxRounds int
	// MaxFacts caps the size of the accumulated instance. Zero means
	// DefaultMaxFacts.
	MaxFacts int
	// Workers fans each round's valuation enumeration across a worker
	// pool; 0 or 1 evaluates sequentially. Skolem invention is a
	// deterministic function of the valuation, so the output is
	// identical at any worker count.
	Workers int
	// Reg, when non-nil, receives evaluator metrics (the ilog.*
	// vocabulary of internal/obs names.go).
	Reg *obs.Registry
	// Sink, when non-nil, receives the deterministic round/stratum
	// event stream. Leaving both nil keeps the disabled fast path.
	Sink *obs.Sink
}

// Default evaluation bounds.
const (
	DefaultMaxRounds = 10_000
	DefaultMaxFacts  = 1_000_000
)

func (o Options) rounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return DefaultMaxRounds
}

func (o Options) facts() int {
	if o.MaxFacts > 0 {
		return o.MaxFacts
	}
	return DefaultMaxFacts
}

// Stratify computes a minimal stratification of the head relations,
// exactly as for Datalog¬.
func (p *Program) Stratify() (datalog.Stratification, error) {
	idb := p.IDB()
	rho := make(datalog.Stratification, len(idb))
	for rel := range idb {
		rho[rel] = 1
	}
	limit := len(idb)
	for {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Rel
			for _, a := range r.Pos {
				if idb.Has(a.Rel) && rho[a.Rel] > rho[h] {
					rho[h] = rho[a.Rel]
					changed = true
				}
			}
			for _, a := range r.Neg {
				if idb.Has(a.Rel) && rho[a.Rel]+1 > rho[h] {
					rho[h] = rho[a.Rel] + 1
					changed = true
				}
			}
			if rho[h] > limit {
				return nil, fmt.Errorf("ilog: program is not syntactically stratifiable (cycle through negation involving %s)", h)
			}
		}
		if !changed {
			return rho, nil
		}
	}
}

// IsStratifiable reports whether the program admits a syntactic
// stratification.
func (p *Program) IsStratifiable() bool {
	_, err := p.Stratify()
	return err == nil
}

// strata partitions the rules by head stratum number.
func (p *Program) strata(rho datalog.Stratification) [][]Rule {
	byStratum := make(map[int][]Rule)
	for _, r := range p.Rules {
		n := rho[r.Head.Rel]
		byStratum[n] = append(byStratum[n], r)
	}
	nums := make([]int, 0, len(byStratum))
	for n := range byStratum {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	out := make([][]Rule, 0, len(nums))
	for _, n := range nums {
		out = append(out, byStratum[n])
	}
	return out
}

// deriveHead grounds the head of the rule under the valuation,
// inventing a Skolem value for invention rules.
func deriveHead(r Rule, b datalog.Bindings) (fact.Fact, error) {
	args := make(fact.Tuple, 0, r.headArity())
	plain := make([]fact.Value, 0, len(r.Head.Args))
	for _, t := range r.Head.Args {
		var v fact.Value
		if t.IsVar() {
			bound, ok := b[t.Var]
			if !ok {
				return fact.Fact{}, fmt.Errorf("ilog: unbound head variable %s", t.Var)
			}
			v = bound
		} else {
			v = t.Const
		}
		plain = append(plain, v)
	}
	if r.Invents {
		args = append(args, SkolemValue(r.Head.Rel, plain))
	}
	args = append(args, plain...)
	return fact.FromTuple(r.Head.Rel, args), nil
}

// Eval computes the output of the program on the input under the
// stratified semantics, or ErrDiverged when a bound trips (output
// undefined). The result contains input and all derived facts,
// including facts carrying invented values.
func (p *Program) Eval(input *fact.Instance, opts Options) (*fact.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idb := p.IDB()
	var badFact *fact.Fact
	input.Each(func(f fact.Fact) bool {
		if idb.Has(f.Rel()) {
			g := f
			badFact = &g
			return false
		}
		return true
	})
	if badFact != nil {
		return nil, fmt.Errorf("ilog: input fact %v is over idb relation %s", *badFact, badFact.Rel())
	}
	rho, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	// One incrementally-maintained index is shared by every round of
	// every stratum; rebuilding it per valuation call made the
	// evaluator quadratic in the number of rounds.
	stop := opts.Reg.Span(obs.IlogEvalNs)
	x := datalog.IndexInstance(input.Clone())
	for i, stratum := range p.strata(rho) {
		if err := fixpoint(stratum, x, opts, i+1); err != nil {
			return nil, err
		}
	}
	opts.Reg.Gauge(obs.IlogFacts).Set(int64(x.Len()))
	stop()
	return x.Instance(), nil
}

// pendingFact is one head fact awaiting the round barrier, tagged with
// whether its rule invents (for the ilog.invented counter).
type pendingFact struct {
	f       fact.Fact
	invents bool
}

func fixpoint(rules []Rule, x *datalog.IndexedInstance, opts Options, stratum int) error {
	instrumented := opts.Reg != nil || opts.Sink != nil
	var sDerived, sInvented int64
	for round := 0; ; round++ {
		if round >= opts.rounds() {
			return ErrDiverged
		}
		var derived []pendingFact
		for _, r := range rules {
			d := r.asDatalogRule()
			// For invention rules with no head variables the dummy
			// datalog head would be invalid; enumerate with a safe head.
			if r.Invents {
				d.Head = r.Pos[0]
			}
			rr := r
			collect := func(b datalog.Bindings) error {
				h, err := deriveHead(rr, b)
				if err != nil {
					return err
				}
				if !x.Has(h) {
					derived = append(derived, pendingFact{h, rr.Invents})
				}
				return nil
			}
			var err error
			if opts.Workers > 1 {
				err = x.ValuationsParallel(d, opts.Workers, collect)
			} else {
				err = x.Valuations(d, collect)
			}
			if err != nil {
				return err
			}
		}
		changed := false
		var rDerived, rInvented int64
		for _, p := range derived {
			if x.Add(p.f) {
				changed = true
				rDerived++
				if p.invents {
					rInvented++
				}
			}
		}
		if instrumented {
			sDerived += rDerived
			sInvented += rInvented
			opts.Reg.Counter(obs.IlogRounds).Inc()
			opts.Reg.Counter(obs.IlogDerivations).Add(rDerived)
			opts.Reg.Counter(obs.IlogInvented).Add(rInvented)
			if opts.Sink != nil {
				opts.Sink.Emit(obs.EvIlogRound,
					obs.F("stratum", stratum),
					obs.F("round", round),
					obs.F("derived", rDerived),
					obs.F("invented", rInvented),
					obs.F("facts", x.Len()))
			}
		}
		if x.Len() > opts.facts() {
			return ErrDiverged
		}
		if !changed {
			if opts.Sink != nil {
				opts.Sink.Emit(obs.EvIlogStratum,
					obs.F("stratum", stratum),
					obs.F("rounds", round+1),
					obs.F("derived", sDerived),
					obs.F("invented", sInvented))
			}
			return nil
		}
	}
}

// EvalQuery evaluates the program and restricts the result to the
// given output relations, additionally enforcing the ILOG¬ safety
// condition: the output must contain no invented values. Weakly safe
// programs satisfy this by construction (Section 5.2).
func (p *Program) EvalQuery(input *fact.Instance, outputRels []string, opts Options) (*fact.Instance, error) {
	full, err := p.Eval(input, opts)
	if err != nil {
		return nil, err
	}
	idb := p.IDB()
	out := make(fact.Schema)
	for _, rel := range outputRels {
		ar, ok := idb.Arity(rel)
		if !ok {
			return nil, fmt.Errorf("ilog: output relation %s is not an idb relation", rel)
		}
		out[rel] = ar
	}
	result := full.Restrict(out)
	var leaked *fact.Fact
	result.Each(func(f fact.Fact) bool {
		for i := 0; i < f.Arity(); i++ {
			if IsInvented(f.Arg(i)) {
				g := f
				leaked = &g
				return false
			}
		}
		return true
	})
	if leaked != nil {
		return nil, fmt.Errorf("ilog: unsafe program: invented value leaked into output fact %v", *leaked)
	}
	return result, nil
}

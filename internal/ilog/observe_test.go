package ilog

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

func TestGoldenEvalTrace(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	var sb strings.Builder
	if _, err := p.Eval(in, Options{Sink: obs.NewSink(&sb)}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, kind := range []string{obs.EvIlogRound, obs.EvIlogStratum} {
		if !strings.Contains(got, `"ev":"`+kind+`"`) {
			t.Errorf("trace lacks %s events", kind)
		}
	}
	path := filepath.Join("testdata", "trace_eval.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestEvalMetrics(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a)`)
	reg := obs.NewRegistry()
	out, err := p.Eval(in, Options{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Every edge invents one Id; every Id yields one O fact.
	if got := snap.Counters[obs.IlogInvented]; got != 3 {
		t.Errorf("invented = %d, want 3", got)
	}
	if got := snap.Counters[obs.IlogDerivations]; got != int64(out.Len()-in.Len()) {
		t.Errorf("derivations = %d, want %d", got, out.Len()-in.Len())
	}
	if got := snap.Gauges[obs.IlogFacts]; got != int64(out.Len()) {
		t.Errorf("facts gauge = %d, want %d", got, out.Len())
	}
	if snap.Counters[obs.IlogRounds] == 0 {
		t.Error("rounds not counted")
	}
	if snap.Histograms[obs.IlogEvalNs].Count != 1 {
		t.Error("eval span not recorded")
	}
}

// TestEvalTraceWorkerInvariant checks the evaluator's event stream is
// identical with and without the valuation worker pool.
func TestEvalTraceWorkerInvariant(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) E(d,a)`)
	run := func(workers int) string {
		var sb strings.Builder
		if _, err := p.Eval(in, Options{Workers: workers, Sink: obs.NewSink(&sb)}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := run(1)
	for i := 0; i < 3; i++ {
		if par := run(4); par != seq {
			t.Fatalf("worker pool changed the event stream:\nseq:\n%s\npar:\n%s", seq, par)
		}
	}
}

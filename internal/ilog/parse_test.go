package ilog

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
)

func TestParseProgramInvention(t *testing.T) {
	p, err := ParseProgram(`
		Id(*, x, y) :- E(x,y).
		O(x,y)      :- Id(i, x, y).
	`)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if !p.Rules[0].Invents || p.Rules[1].Invents {
		t.Errorf("invention flags wrong: %v %v", p.Rules[0].Invents, p.Rules[1].Invents)
	}
	// Semantics must match the programmatically built edge-id program.
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	got, err := p.EvalQuery(in, []string{"O"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := edgeIDProgram().EvalQuery(in, []string{"O"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("parsed program output %v != built program output %v", got, want)
	}
}

func TestParseProgramZeroArgInvention(t *testing.T) {
	p, err := ParseProgram(`Id(*) :- V(x).`)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	out, err := p.Eval(fact.MustParseInstance(`V(a) V(b)`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ids := out.Rel("Id"); len(ids) != 1 {
		t.Errorf("zero-arg invention ids = %v", ids)
	}
}

func TestParseProgramPlainDatalog(t *testing.T) {
	p, err := ParseProgram(`T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rules {
		if r.Invents {
			t.Error("plain rule marked inventing")
		}
	}
	out, err := p.EvalQuery(fact.MustParseInstance(`E(a,b) E(b,c)`), []string{"T"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("TC size = %d", out.Len())
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		`Id(x, *) :- E(x,y).`,                // star not in first position
		`O(x) :- Id(*, x).`,                  // star in body
		`Id(*, x) :- E(x,y). Id(x) :- V(x).`, // mixed invention arity
		`Id(* x) :- E(x,y).`,                 // missing comma after star
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestPlainParserRejectsStar(t *testing.T) {
	// The plain Datalog¬ entry point must reject the invention symbol.
	if _, err := datalog.ParseProgram(`Id(*, x) :- E(x,y).`); err == nil {
		t.Error("datalog.ParseProgram should reject the invention symbol")
	}
}

func TestParsedStringRoundTrip(t *testing.T) {
	p := MustParseProgram(`Id(*, x, y) :- E(x,y).`)
	q, err := ParseProgram(p.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if p.String() != q.String() {
		t.Errorf("round trip mismatch:\n%s\n%s", p, q)
	}
}

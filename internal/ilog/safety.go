package ilog

import (
	"sort"

	"repro/internal/datalog"
)

// This file implements the weak-safety analysis of Section 5.2: the
// set S of unsafe positions is the smallest set of pairs (R, i) such
// that (R, 1) ∈ S for every invention relation R, and whenever
// (R, i) ∈ S and a rule has R(x1..xk) in its positive body with xi
// equal (as a variable) to the j-th head argument, (T, j) ∈ S for the
// head relation T. A program is weakly safe when its output relations
// have no unsafe positions; weak safety implies safety (the output
// never contains invented values).

// Position identifies the i-th position (1-based, following the paper)
// of relation Rel.
type Position struct {
	Rel string
	Pos int
}

// UnsafePositions computes the set S of unsafe positions of the
// program, returned in deterministic order.
func (p *Program) UnsafePositions() []Position {
	unsafe := make(map[Position]bool)
	for rel := range p.InventionRelations() {
		unsafe[Position{rel, 1}] = true
	}
	for {
		changed := false
		for _, r := range p.Rules {
			// Variables bound to an unsafe position somewhere in the
			// positive body.
			tainted := make(map[string]bool)
			for _, a := range r.Pos {
				for i, t := range a.Args {
					if t.IsVar() && unsafe[Position{a.Rel, i + 1}] {
						tainted[t.Var] = true
					}
				}
			}
			if len(tainted) == 0 {
				continue
			}
			// Head offset: invention heads implicitly occupy position 1.
			offset := 1
			if r.Invents {
				offset = 2
			}
			for j, t := range r.Head.Args {
				if t.IsVar() && tainted[t.Var] {
					pos := Position{r.Head.Rel, j + offset}
					if !unsafe[pos] {
						unsafe[pos] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	out := make([]Position, 0, len(unsafe))
	for pos := range unsafe {
		out = append(out, pos)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Rel != out[b].Rel {
			return out[a].Rel < out[b].Rel
		}
		return out[a].Pos < out[b].Pos
	})
	return out
}

// IsWeaklySafe reports whether none of the given output relations has
// an unsafe position (the class wILOG¬ requires this of its output).
func (p *Program) IsWeaklySafe(outputRels ...string) bool {
	outs := make(map[string]bool, len(outputRels))
	for _, rel := range outputRels {
		outs[rel] = true
	}
	for _, pos := range p.UnsafePositions() {
		if outs[pos.Rel] {
			return false
		}
	}
	return true
}

// IsConnectedRule reports whether graph+(ϕ) of the ILOG¬ rule is
// connected; the invention position plays no role (it is not a body
// variable).
func (r Rule) IsConnectedRule() bool {
	d := datalog.Rule{Head: r.Head, Pos: r.Pos, Neg: r.Neg, Ineq: r.Ineq}
	return d.IsConnected()
}

// IsSemiConnected reports whether the program is in semicon-wILOG¬:
// some stratification makes every stratum except possibly the last a
// connected SP-wILOG program. The decision procedure mirrors
// datalog.Program.IsSemiConnected: the positive-dependency closure of
// the disconnected rule heads must never be negated.
func (p *Program) IsSemiConnected() bool {
	if !p.IsStratifiable() {
		return false
	}
	idb := p.IDB()
	closure := make(map[string]bool)
	for _, r := range p.Rules {
		if !r.IsConnectedRule() {
			closure[r.Head.Rel] = true
		}
	}
	for {
		changed := false
		for _, r := range p.Rules {
			if closure[r.Head.Rel] {
				continue
			}
			for _, a := range r.Pos {
				if closure[a.Rel] {
					closure[r.Head.Rel] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, r := range p.Rules {
		for _, a := range r.Neg {
			if idb.Has(a.Rel) && closure[a.Rel] {
				return false
			}
		}
	}
	return true
}

// IsConnectedProgram reports whether every rule is connected and the
// program is stratifiable (con-wILOG¬).
func (p *Program) IsConnectedProgram() bool {
	if !p.IsStratifiable() {
		return false
	}
	for _, r := range p.Rules {
		if !r.IsConnectedRule() {
			return false
		}
	}
	return true
}

package ilog

import (
	"errors"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// edgeIDProgram assigns a fresh invented id to every edge:
//
//	Id(*, x, y) :- E(x,y).
//	O(x,y)      :- Id(i, x, y).
func edgeIDProgram() *Program {
	return NewProgram(
		Rule{Head: datalog.AtomV("Id", "x", "y"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}},
		Rule{Head: datalog.AtomV("O", "x", "y"), Pos: []datalog.Atom{datalog.AtomV("Id", "i", "x", "y")}},
	)
}

func TestSkolemValueInjective(t *testing.T) {
	a := SkolemValue("R", []fact.Value{"x", "y"})
	b := SkolemValue("R", []fact.Value{"xy"})
	c := SkolemValue("R", []fact.Value{"x", "y"})
	d := SkolemValue("S", []fact.Value{"x", "y"})
	if a == b || a == d {
		t.Error("SkolemValue collided across different functors/args")
	}
	if a != c {
		t.Error("SkolemValue not deterministic")
	}
	if !IsInvented(a) {
		t.Error("Skolem value not marked invented")
	}
	if IsInvented("plain") {
		t.Error("plain value marked invented")
	}
	// Nested invention stays invented and distinct.
	n1 := SkolemValue("R", []fact.Value{a})
	n2 := SkolemValue("R", []fact.Value{b})
	if n1 == n2 {
		t.Error("nested Skolem terms collided")
	}
}

func TestInventionBasic(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	out, err := p.Eval(in, Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	ids := out.Rel("Id")
	if len(ids) != 2 {
		t.Fatalf("got %d Id facts, want 2: %v", len(ids), ids)
	}
	// Distinct edges receive distinct ids; the same edge always the same id.
	if ids[0].Arg(0) == ids[1].Arg(0) {
		t.Error("two distinct edges share an invented id")
	}
	for _, f := range ids {
		if !IsInvented(f.Arg(0)) {
			t.Errorf("id %v not an invented value", f.Arg(0))
		}
	}
}

func TestInventionFunctional(t *testing.T) {
	// Evaluating twice yields identical invented values (Skolem
	// functions are deterministic).
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b)`)
	out1, err := p.Eval(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := p.Eval(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Equal(out2) {
		t.Error("invention not deterministic across evaluations")
	}
}

func TestEvalQuerySafeOutput(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b)`)
	out, err := p.EvalQuery(in, []string{"O"}, Options{})
	if err != nil {
		t.Fatalf("EvalQuery: %v", err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a,b)`)) {
		t.Errorf("output = %v", out)
	}
}

func TestEvalQueryRejectsUnsafeOutput(t *testing.T) {
	p := edgeIDProgram()
	in := fact.MustParseInstance(`E(a,b)`)
	if _, err := p.EvalQuery(in, []string{"Id"}, Options{}); err == nil {
		t.Error("output with invented values should be rejected")
	}
}

func TestDivergenceDetected(t *testing.T) {
	// N(*, x) :- E(x,y).  N(*, n) :- N(n, x). — feeds on itself.
	p := NewProgram(
		Rule{Head: datalog.AtomV("N", "x"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}},
		Rule{Head: datalog.AtomV("N", "n"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("N", "n", "x")}},
	)
	in := fact.MustParseInstance(`E(a,b)`)
	_, err := p.Eval(in, Options{MaxRounds: 100, MaxFacts: 1000})
	if !errors.Is(err, ErrDiverged) {
		t.Errorf("expected ErrDiverged, got %v", err)
	}
}

func TestStratifiedNegationWithInvention(t *testing.T) {
	// Invent an id per value, then output values whose id-fact is not
	// "blocked": Blocked is empty here, exercising negation above
	// invention.
	p := NewProgram(
		Rule{Head: datalog.AtomV("Id", "x"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("V", "x")}},
		Rule{Head: datalog.AtomV("O", "x"), Pos: []datalog.Atom{datalog.AtomV("Id", "i", "x")},
			Neg: []datalog.Atom{datalog.AtomV("B", "x")}},
	)
	in := fact.MustParseInstance(`V(a) V(b) B(b)`)
	out, err := p.EvalQuery(in, []string{"O"}, Options{})
	if err != nil {
		t.Fatalf("EvalQuery: %v", err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a)`)) {
		t.Errorf("output = %v", out)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := NewProgram(
		Rule{Head: datalog.AtomV("W", "x"),
			Pos: []datalog.Atom{datalog.AtomV("M", "x", "y")},
			Neg: []datalog.Atom{datalog.AtomV("W", "y")}},
	)
	if p.IsStratifiable() {
		t.Error("win-move-style ILOG program claimed stratifiable")
	}
	if _, err := p.Eval(fact.MustParseInstance(`M(a,b)`), Options{}); err == nil {
		t.Error("Eval should reject unstratifiable program")
	}
}

func TestValidateMixedInvention(t *testing.T) {
	p := NewProgram(
		Rule{Head: datalog.AtomV("R", "x"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("V", "x")}},
		Rule{Head: datalog.AtomV("R", "x", "y"), Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}},
	)
	if err := p.Validate(); err == nil {
		t.Error("relation derived both with and without invention should be rejected")
	}
}

func TestUnsafePositions(t *testing.T) {
	// Id(*, x) :- V(x). P(i, x) :- Id(i, x). O(x) :- P(i, x).
	p := NewProgram(
		Rule{Head: datalog.AtomV("Id", "x"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("V", "x")}},
		Rule{Head: datalog.AtomV("P", "i", "x"), Pos: []datalog.Atom{datalog.AtomV("Id", "i", "x")}},
		Rule{Head: datalog.AtomV("O", "x"), Pos: []datalog.Atom{datalog.AtomV("P", "i", "x")}},
	)
	unsafe := p.UnsafePositions()
	want := map[Position]bool{{"Id", 1}: true, {"P", 1}: true}
	if len(unsafe) != len(want) {
		t.Fatalf("unsafe positions = %v, want %v", unsafe, want)
	}
	for _, pos := range unsafe {
		if !want[pos] {
			t.Errorf("unexpected unsafe position %v", pos)
		}
	}
	if !p.IsWeaklySafe("O") {
		t.Error("O has no unsafe position; program should be weakly safe for O")
	}
	if p.IsWeaklySafe("P") {
		t.Error("P carries an invented value in position 1; not weakly safe")
	}
}

func TestUnsafePositionPropagationIntoInventionArgs(t *testing.T) {
	// An invented value flowing into a non-invention argument of
	// another invention relation taints position 2 (after the
	// invention offset).
	p := NewProgram(
		Rule{Head: datalog.AtomV("A", "x"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("V", "x")}},
		Rule{Head: datalog.AtomV("B", "i"), Invents: true, Pos: []datalog.Atom{datalog.AtomV("A", "i", "x")}},
	)
	unsafe := p.UnsafePositions()
	found := false
	for _, pos := range unsafe {
		if pos == (Position{"B", 2}) {
			found = true
		}
	}
	if !found {
		t.Errorf("expected (B,2) unsafe; got %v", unsafe)
	}
}

func TestWeaklySafeImpliesSafeEmpirically(t *testing.T) {
	// For the edge-id program, O is weakly safe; EvalQuery must never
	// report leaked invented values.
	p := edgeIDProgram()
	if !p.IsWeaklySafe("O") {
		t.Fatal("edge-id program should be weakly safe for O")
	}
	for _, src := range []string{`E(a,b)`, `E(a,b) E(b,c) E(c,a)`, ``} {
		in := fact.MustParseInstance(src)
		if _, err := p.EvalQuery(in, []string{"O"}, Options{}); err != nil {
			t.Errorf("weakly safe program leaked on %q: %v", src, err)
		}
	}
}

func TestFromDatalog(t *testing.T) {
	dp := datalog.MustParseProgram(`T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).`)
	p := FromDatalog(dp)
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	out, err := p.EvalQuery(in, []string{"T"}, Options{})
	if err != nil {
		t.Fatalf("EvalQuery: %v", err)
	}
	dout, _ := dp.Eval(in)
	if !out.Equal(dout.Restrict(fact.MustSchema(map[string]int{"T": 2}))) {
		t.Errorf("ILOG evaluation of plain Datalog differs: %v", out)
	}
}

func TestIlogConnectivity(t *testing.T) {
	connected := Rule{Head: datalog.AtomV("Id", "x", "y"), Invents: true,
		Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}}
	if !connected.IsConnectedRule() {
		t.Error("single-atom invention rule should be connected")
	}
	disconnected := Rule{Head: datalog.AtomV("P", "x", "u"),
		Pos: []datalog.Atom{datalog.AtomV("E", "x", "y"), datalog.AtomV("E", "u", "v")}}
	if disconnected.IsConnectedRule() {
		t.Error("cartesian rule should be disconnected")
	}

	p := NewProgram(connected)
	if !p.IsConnectedProgram() || !p.IsSemiConnected() {
		t.Error("connected program misclassified")
	}
	q := NewProgram(
		disconnected,
		Rule{Head: datalog.AtomV("O", "x"), Pos: []datalog.Atom{datalog.AtomV("V", "x")},
			Neg: []datalog.Atom{datalog.AtomV("P", "x", "x")}},
	)
	if q.IsSemiConnected() {
		t.Error("negated disconnected predicate should break semicon for ILOG too")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Head: datalog.AtomV("Id", "x", "y"), Invents: true,
		Pos: []datalog.Atom{datalog.AtomV("E", "x", "y")}}
	if got := r.String(); got != "Id(*, x,y) :- E(x,y)." {
		t.Errorf("String = %q", got)
	}
	zero := Rule{Head: datalog.Atom{Rel: "Id"}, Invents: true,
		Pos: []datalog.Atom{datalog.AtomV("V", "x")}}
	if got := zero.String(); got != "Id(*) :- V(x)." {
		t.Errorf("zero-arg String = %q", got)
	}
}

func TestZeroArgInvention(t *testing.T) {
	// Id(*) :- V(x): one shared invented constant regardless of x.
	p := NewProgram(
		Rule{Head: datalog.Atom{Rel: "Id"}, Invents: true, Pos: []datalog.Atom{datalog.AtomV("V", "x")}},
	)
	out, err := p.Eval(fact.MustParseInstance(`V(a) V(b)`), Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if ids := out.Rel("Id"); len(ids) != 1 {
		t.Errorf("zero-arg invention should create exactly one value, got %v", ids)
	}
}

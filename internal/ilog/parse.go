package ilog

import (
	"repro/internal/datalog"
)

// ParseProgram parses an ILOG¬ program in the conventional syntax
// extended with the invention symbol:
//
//	Id(*, x, y) :- E(x,y).
//	O(x,y)      :- Id(i, x, y).
//
// Plain Datalog¬ rules parse unchanged, so every Datalog¬ program is
// also a valid ILOG¬ program.
func ParseProgram(src string) (*Program, error) {
	rules, invents, err := datalog.ParseProgramWithInvention(src)
	if err != nil {
		return nil, err
	}
	p := NewProgram()
	for i, r := range rules {
		p.Rules = append(p.Rules, Rule{
			Head:    r.Head,
			Invents: invents[i],
			Pos:     r.Pos,
			Neg:     r.Neg,
			Ineq:    r.Ineq,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParseProgram is like ParseProgram but panics on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

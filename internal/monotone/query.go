// Package monotone implements the monotonicity framework of Section 3
// of the paper: the classes M (monotone), Mdistinct
// (domain-distinct-monotone) and Mdisjoint (domain-disjoint-monotone),
// their bounded variants Mⁱ, Mⁱdistinct and Mⁱdisjoint, and the
// preservation classes H (homomorphisms), Hinj (injective
// homomorphisms) and E (extensions) of Section 3.2.
//
// Membership of a query in one of these classes quantifies over all
// instance pairs; this package provides the two finite proxies used
// throughout the reproduction: randomized/exhaustive violation search
// (soundness evidence for membership) and exact checking of the
// paper's explicit counterexample pairs (proof of non-membership).
package monotone

import (
	"fmt"

	"repro/internal/fact"
)

// Query is the paper's notion of a query (Section 2): a generic
// mapping from instances over an input schema to instances over an
// output schema. datalog.Query and the native queries in
// internal/queries satisfy this interface structurally.
type Query interface {
	// InputSchema returns σ, the schema of admissible inputs.
	InputSchema() fact.Schema
	// OutputSchema returns σ', the schema of outputs.
	OutputSchema() fact.Schema
	// Eval computes Q(I). Implementations must be deterministic;
	// an error signals an undefined output (e.g. diverging ILOG).
	Eval(*fact.Instance) (*fact.Instance, error)
	// Name is a human-readable label used in reports.
	Name() string
}

// Func adapts a plain Go function to the Query interface.
type Func struct {
	name string
	in   fact.Schema
	out  fact.Schema
	eval func(*fact.Instance) (*fact.Instance, error)
}

// NewFunc builds a Query from a function.
func NewFunc(name string, in, out fact.Schema, eval func(*fact.Instance) (*fact.Instance, error)) *Func {
	return &Func{name: name, in: in, out: out, eval: eval}
}

// NewGraphFunc builds a Query over the binary edge relation E, the
// schema of all the paper's separating examples.
func NewGraphFunc(name string, out fact.Schema, eval func(*fact.Instance) (*fact.Instance, error)) *Func {
	return NewFunc(name, fact.GraphSchema(), out, eval)
}

// InputSchema implements Query.
func (f *Func) InputSchema() fact.Schema { return f.in.Clone() }

// OutputSchema implements Query.
func (f *Func) OutputSchema() fact.Schema { return f.out.Clone() }

// Eval implements Query.
func (f *Func) Eval(i *fact.Instance) (*fact.Instance, error) { return f.eval(i) }

// Name implements Query.
func (f *Func) Name() string { return f.name }

var _ Query = (*Func)(nil)

// CheckInput verifies that the instance is over the query's input schema.
func CheckInput(q Query, i *fact.Instance) error {
	sigma := q.InputSchema()
	var bad *fact.Fact
	i.Each(func(f fact.Fact) bool {
		if !sigma.Covers(f) {
			g := f
			bad = &g
			return false
		}
		return true
	})
	if bad != nil {
		return fmt.Errorf("monotone: input fact %v not over schema %v of %s", *bad, sigma, q.Name())
	}
	return nil
}

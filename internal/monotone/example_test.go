package monotone_test

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/queries"
)

// Check a single monotonicity condition: adding a self-loop retracts a
// NoLoop answer, so NoLoop is not monotone.
func ExampleCheckPair() {
	q := queries.NoLoop()
	i := fact.MustParseInstance(`E(a,b)`)
	j := fact.MustParseInstance(`E(a,a)`)
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Missing)
	// Output:
	// O(a)
}

// The class conditions of Definition 1: which additions J are in
// scope for each monotonicity class, relative to I = {E(a,b)}.
func ExampleClass_Allows() {
	i := fact.MustParseInstance(`E(a,b)`)
	reuse := fact.MustParseInstance(`E(b,a)`)  // only old values
	extend := fact.MustParseInstance(`E(a,c)`) // one new value
	fresh := fact.MustParseInstance(`E(x,y)`)  // only new values

	fmt.Println(monotone.M.Allows(reuse, i), monotone.M.Allows(extend, i), monotone.M.Allows(fresh, i))
	fmt.Println(monotone.MDistinct.Allows(reuse, i), monotone.MDistinct.Allows(extend, i), monotone.MDistinct.Allows(fresh, i))
	fmt.Println(monotone.MDisjoint.Allows(reuse, i), monotone.MDisjoint.Allows(extend, i), monotone.MDisjoint.Allows(fresh, i))
	// Output:
	// true true true
	// false true true
	// false false true
}

// Class implication mirrors Figure 1: monotone implies
// domain-distinct-monotone implies domain-disjoint-monotone.
func ExampleClass_Implies() {
	fmt.Println(monotone.M.Implies(monotone.MDistinct))
	fmt.Println(monotone.MDistinct.Implies(monotone.MDisjoint))
	fmt.Println(monotone.MDisjoint.Implies(monotone.M))
	// Output:
	// true
	// true
	// false
}

package monotone

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
)

// noLoopQuery builds the SP-Datalog NoLoop query locally (the queries
// package imports monotone, so tests here use datalog directly).
func noLoopQuery() Query {
	p := datalog.MustParseProgram(`
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x) :- Adom(x), !E(x,x).
	`)
	return datalog.MustQuery(p, "O").SetName("NoLoop(local)")
}

func TestShrinkWitnessToSingleFact(t *testing.T) {
	// A deliberately bloated violation of M for NoLoop.
	q := noLoopQuery()
	i := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`)
	j := fact.MustParseInstance(`E(a,a) E(x,y) E(y,z)`)
	w, err := CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("setup: expected a violation")
	}
	small, err := ShrinkWitness(q, M, w)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 3.1(2) in action: the violation shrinks to |J| = 1.
	if small.J.Len() != 1 {
		t.Errorf("shrunk J = %v, want a single fact", small.J)
	}
	if !small.J.Has(fact.New("E", "a", "a")) {
		t.Errorf("shrunk J should keep the self-loop: %v", small.J)
	}
	if small.I.Len() > 1 {
		t.Errorf("shrunk I = %v, want at most one fact", small.I)
	}
	// The shrunk pair still violates.
	again, err := CheckPair(q, small.I, small.J)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Error("shrunk witness no longer violates")
	}
}

func TestShrinkWitnessRespectsClass(t *testing.T) {
	// QTC violation of Mdistinct: the shrunk J must stay domain
	// distinct from the shrunk I.
	p := datalog.MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y) :- Adom(x), Adom(y), !T(x,y).
	`)
	q := datalog.MustQuery(p, "O")
	i := fact.MustParseInstance(`E(a,a) E(b,b) E(q,q)`)
	j := fact.MustParseInstance(`E(a,c) E(c,b) E(a,d)`)
	w, err := CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("setup: expected a violation")
	}
	small, err := ShrinkWitness(q, MDistinct, w)
	if err != nil {
		t.Fatal(err)
	}
	if !MDistinct.Allows(small.J, small.I) {
		t.Fatalf("shrunk pair escaped the class: I=%v J=%v", small.I, small.J)
	}
	// The minimal QTC/Mdistinct witness needs the two path facts.
	if small.J.Len() != 2 {
		t.Errorf("shrunk J = %v, want the 2-fact path through the new vertex", small.J)
	}
}

// Shrinking is idempotent and always produces a violating pair, for
// random violations found by sampling.
func TestShrinkWitnessProperty(t *testing.T) {
	q := noLoopQuery()
	sampler := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", 4, 5)
		pool := append(generate.Values("v", 4), generate.Values("w", 2)...)
		return i, generate.Random(rng, fact.GraphSchema(), pool, 4)
	}
	rng := rand.New(rand.NewSource(91))
	found := 0
	for trial := 0; trial < 300 && found < 10; trial++ {
		i, j := sampler(rng)
		w, err := CheckPair(q, i, j)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			continue
		}
		found++
		small, err := ShrinkWitness(q, M, w)
		if err != nil {
			t.Fatal(err)
		}
		if small.J.Len() != 1 {
			t.Errorf("M-violation did not shrink to one fact: %v", small.J)
		}
		again, err := ShrinkWitness(q, M, small)
		if err != nil {
			t.Fatal(err)
		}
		if again.I.Len() != small.I.Len() || again.J.Len() != small.J.Len() {
			t.Error("shrinking not idempotent")
		}
	}
	if found == 0 {
		t.Fatal("sampler found no violations to shrink")
	}
}

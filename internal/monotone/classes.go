package monotone

import (
	"fmt"

	"repro/internal/fact"
)

// Kind selects which restriction the added instance J must satisfy
// relative to I in the monotonicity condition Q(I) ⊆ Q(I ∪ J)
// (Definition 1).
type Kind int

const (
	// Any places no restriction on J: plain monotonicity (class M).
	Any Kind = iota
	// Distinct requires J to be domain distinct from I (Mdistinct).
	Distinct
	// Disjoint requires J to be domain disjoint from I (Mdisjoint).
	Disjoint
)

// Class identifies one of the paper's monotonicity classes: a Kind
// plus an optional bound i on |J| (0 = unbounded). For example,
// Class{Distinct, 2} is M²distinct.
type Class struct {
	Kind  Kind
	Bound int
}

// The unbounded classes of Definition 1.
var (
	M         = Class{Any, 0}
	MDistinct = Class{Distinct, 0}
	MDisjoint = Class{Disjoint, 0}
)

// Mi returns the bounded class Mⁱ.
func Mi(i int) Class { return Class{Any, i} }

// MiDistinct returns the bounded class Mⁱdistinct.
func MiDistinct(i int) Class { return Class{Distinct, i} }

// MiDisjoint returns the bounded class Mⁱdisjoint.
func MiDisjoint(i int) Class { return Class{Disjoint, i} }

// Allows reports whether the pair (I, J) is within the scope of the
// class's monotonicity condition: J satisfies the kind restriction
// w.r.t. I and the size bound.
func (c Class) Allows(j, i *fact.Instance) bool {
	if c.Bound > 0 && j.Len() > c.Bound {
		return false
	}
	switch c.Kind {
	case Any:
		return true
	case Distinct:
		return fact.DomainDistinct(j, i)
	case Disjoint:
		return fact.DomainDisjoint(j, i)
	default:
		panic(fmt.Sprintf("monotone: unknown kind %d", c.Kind))
	}
}

// Implies reports whether membership in class c implies membership in
// class d, purely by the inclusion structure of the conditions: a
// query monotone under a *larger* family of pairs is monotone under
// any subfamily. c implies d iff every pair allowed by d is allowed
// by c.
func (c Class) Implies(d Class) bool {
	// Kind scope: Any ⊇ Distinct ⊇ Disjoint.
	kindWider := c.Kind <= d.Kind
	// Bound scope: unbounded (0) ⊇ any bound; larger bound ⊇ smaller.
	boundWider := c.Bound == 0 || (d.Bound != 0 && c.Bound >= d.Bound)
	return kindWider && boundWider
}

// String names the class in the paper's notation.
func (c Class) String() string {
	base := "M"
	sup := ""
	if c.Bound > 0 {
		sup = fmt.Sprintf("^%d", c.Bound)
	}
	switch c.Kind {
	case Any:
		return base + sup
	case Distinct:
		return base + sup + "_distinct"
	case Disjoint:
		return base + sup + "_disjoint"
	default:
		return fmt.Sprintf("M?(kind=%d)", c.Kind)
	}
}

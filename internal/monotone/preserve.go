package monotone

import (
	"fmt"
	"math/rand"

	"repro/internal/fact"
)

// This file implements the preservation classes of Section 3.2
// (Definition 2): preservation under homomorphisms (H), injective
// homomorphisms (Hinj) and extensions (E), with pairwise checkers and
// randomized violation search. Lemma 3.2 relates them to the
// monotonicity classes: H ⊊ Hinj = M ⊊ E = Mdistinct.

// HomWitness records a violation of homomorphism preservation: the
// fact From is in Q(I) but its image under H is missing from Q(J).
type HomWitness struct {
	I, J *fact.Instance
	H    fact.Hom
	From fact.Fact
}

// String renders the witness.
func (w *HomWitness) String() string {
	return fmt.Sprintf("I=%v J=%v h=%v from=%v", w.I, w.J, w.H, w.From)
}

// CheckHomPair tests preservation for one triple (I, J, h): every
// R(d̄) ∈ Q(I) must have R(h(d̄)) ∈ Q(J). The mapping must be a
// homomorphism from I to J (callers typically construct J as the
// image of I, plus noise).
func CheckHomPair(q Query, i, j *fact.Instance, h fact.Hom) (*HomWitness, error) {
	if !fact.IsHomomorphism(h, i, j) {
		return nil, fmt.Errorf("monotone: mapping %v is not a homomorphism from %v to %v", h, i, j)
	}
	qi, err := q.Eval(i)
	if err != nil {
		return nil, err
	}
	qj, err := q.Eval(j)
	if err != nil {
		return nil, err
	}
	var w *HomWitness
	qi.Each(func(f fact.Fact) bool {
		if !qj.Has(f.Map(h)) {
			w = &HomWitness{I: i.Clone(), J: j.Clone(), H: h, From: f}
			return false
		}
		return true
	})
	return w, nil
}

// CheckExtensionPair tests preservation under extensions for one pair:
// J must be an induced subinstance of I, and every output fact of Q(J)
// must be in Q(I).
func CheckExtensionPair(q Query, j, i *fact.Instance) (*Witness, error) {
	if !fact.IsInducedSubinstance(j, i) {
		return nil, fmt.Errorf("monotone: %v is not an induced subinstance of %v", j, i)
	}
	qj, err := q.Eval(j)
	if err != nil {
		return nil, err
	}
	qi, err := q.Eval(i)
	if err != nil {
		return nil, err
	}
	var w *Witness
	qj.Each(func(f fact.Fact) bool {
		if !qi.Has(f) {
			w = &Witness{I: i.Clone(), J: j.Clone(), Missing: f}
			return false
		}
		return true
	})
	return w, nil
}

// FindExtensionViolation samples instances I from gen, takes random
// induced subinstances J, and returns the first extension-preservation
// violation found.
func FindExtensionViolation(q Query, gen func(*rand.Rand) *fact.Instance, seed int64, trials int) (*Witness, error) {
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < trials; n++ {
		i := gen(rng)
		// Random sub-adom induces J.
		c := make(fact.ValueSet)
		for v := range i.ADom() {
			if rng.Intn(2) == 0 {
				c.Add(v)
			}
		}
		j := fact.InducedSubinstance(i, c)
		w, err := CheckExtensionPair(q, j, i)
		if err != nil {
			return nil, err
		}
		if w != nil {
			return w, nil
		}
	}
	return nil, nil
}

// FindHomViolation samples instances I from gen, applies random value
// mappings h (injective when injective is set), evaluates on the image
// (plus optional noise from gen), and returns the first
// homomorphism-preservation violation found.
func FindHomViolation(q Query, gen func(*rand.Rand) *fact.Instance, injective bool, seed int64, trials int) (*HomWitness, error) {
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < trials; n++ {
		i := gen(rng)
		vals := i.ADom().Sorted()
		h := make(fact.Hom, len(vals))
		if injective {
			// Random permutation into a fresh namespace.
			perm := rng.Perm(len(vals))
			for k, v := range vals {
				h[v] = fact.Value(fmt.Sprintf("h%d", perm[k]))
			}
		} else {
			// Random collapsing map into a smaller namespace.
			m := 1 + rng.Intn(len(vals)+1)
			for _, v := range vals {
				h[v] = fact.Value(fmt.Sprintf("h%d", rng.Intn(m)))
			}
		}
		j := i.Map(h)
		w, err := CheckHomPair(q, i, j, h)
		if err != nil {
			return nil, err
		}
		if w != nil {
			return w, nil
		}
	}
	return nil, nil
}

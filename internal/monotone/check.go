package monotone

import (
	"fmt"
	"math/rand"

	"repro/internal/fact"
)

// Witness records a concrete violation of a monotonicity condition:
// the fact Missing is in Q(I) but not in Q(I ∪ J), for a pair (I, J)
// allowed by the class under test.
type Witness struct {
	I, J    *fact.Instance
	Missing fact.Fact
}

// String renders the witness for error messages and reports.
func (w *Witness) String() string {
	return fmt.Sprintf("I=%v J=%v missing=%v", w.I, w.J, w.Missing)
}

// CheckPair tests the monotonicity condition Q(I) ⊆ Q(I ∪ J) for a
// single pair, returning a witness if it fails and nil if it holds.
func CheckPair(q Query, i, j *fact.Instance) (*Witness, error) {
	qi, err := q.Eval(i)
	if err != nil {
		return nil, fmt.Errorf("monotone: evaluating %s on I: %w", q.Name(), err)
	}
	qij, err := q.Eval(i.Union(j))
	if err != nil {
		return nil, fmt.Errorf("monotone: evaluating %s on I∪J: %w", q.Name(), err)
	}
	var w *Witness
	qi.Each(func(f fact.Fact) bool {
		if !qij.Has(f) {
			w = &Witness{I: i.Clone(), J: j.Clone(), Missing: f}
			return false
		}
		return true
	})
	return w, nil
}

// Sampler produces candidate pairs (I, J); FindViolation filters them
// through the class condition. Samplers must be deterministic given
// the rng.
type Sampler func(rng *rand.Rand) (i, j *fact.Instance)

// FindViolation samples up to trials pairs from the sampler, keeps
// those allowed by the class, and returns the first monotonicity
// violation found (or nil if none). A nil result is evidence — not
// proof — of membership in the class; use the paper's explicit
// counterexample pairs to establish non-membership exactly.
func FindViolation(q Query, c Class, s Sampler, seed int64, trials int) (*Witness, error) {
	rng := rand.New(rand.NewSource(seed))
	tested := 0
	for n := 0; n < trials; n++ {
		i, j := s(rng)
		if !c.Allows(j, i) {
			continue
		}
		tested++
		w, err := CheckPair(q, i, j)
		if err != nil {
			return nil, err
		}
		if w != nil {
			return w, nil
		}
	}
	if tested == 0 {
		return nil, fmt.Errorf("monotone: sampler produced no pair allowed by %v in %d trials", c, trials)
	}
	return nil, nil
}

// ExhaustiveCheck enumerates pairs (I, J) from the provided enumerator
// (e.g. all small graphs) and checks every pair allowed by the class.
// The enumerator calls yield for each candidate pair and stops when
// yield returns false.
func ExhaustiveCheck(q Query, c Class, enumerate func(yield func(i, j *fact.Instance) bool)) (*Witness, error) {
	var found *Witness
	var evalErr error
	enumerate(func(i, j *fact.Instance) bool {
		if !c.Allows(j, i) {
			return true
		}
		w, err := CheckPair(q, i, j)
		if err != nil {
			evalErr = err
			return false
		}
		if w != nil {
			found = w
			return false
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return found, nil
}

// ClassSampler wraps a sampler so that every produced pair is allowed
// by the class, by restricting J with RestrictClassPair.
func ClassSampler(c Class, s Sampler) Sampler {
	return func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i, j := s(rng)
		return i, RestrictClassPair(c, i, j)
	}
}

// RestrictClassPair adapts an arbitrary pair (I, J) to a class: it
// strips from J every fact violating the class's kind condition
// against I and truncates to the bound. Useful for samplers that want
// high acceptance rates.
func RestrictClassPair(c Class, i, j *fact.Instance) *fact.Instance {
	out := fact.NewInstance()
	for _, f := range j.Facts() {
		if c.Bound > 0 && out.Len() >= c.Bound {
			break
		}
		switch c.Kind {
		case Any:
			out.Add(f)
		case Distinct:
			if fact.DomainDistinctFact(f, i) {
				out.Add(f)
			}
		case Disjoint:
			// J must be disjoint from I; facts of J may freely share
			// values with each other.
			if fact.DomainDisjointFact(f, i) {
				out.Add(f)
			}
		}
	}
	return out
}

package monotone

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
)

// tcQuery is the transitive-closure query, a monotone query.
func tcQuery() Query {
	p := datalog.MustParseProgram(`
		O(x,y) :- E(x,y).
		O(x,z) :- O(x,y), E(y,z).
	`)
	return datalog.MustQuery(p, "O").SetName("TC")
}

// complementTCQuery is QTC from Theorem 3.1: the complement of the
// transitive closure over the active domain.
func complementTCQuery() Query {
	p := datalog.MustParseProgram(`
		T(x,y) :- E(x,y).
		T(x,z) :- T(x,y), E(y,z).
		Adom(x) :- E(x,y).
		Adom(y) :- E(x,y).
		O(x,y) :- Adom(x), Adom(y), !T(x,y).
	`)
	return datalog.MustQuery(p, "O").SetName("¬TC")
}

func graphSampler(n, mi, mj int) Sampler {
	return func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", n, mi)
		j := generate.RandomGraph(rng, "w", n, mj) // fresh namespace: disjoint from i
		return i, j
	}
}

// mixedSampler produces J that may reuse I's values.
func mixedSampler(n, mi, mj int) Sampler {
	return func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", n, mi)
		pool := append(generate.Values("v", n), generate.Values("w", n)...)
		j := generate.Random(rng, fact.GraphSchema(), pool, mj)
		return i, j
	}
}

func TestCheckPairMonotoneQuery(t *testing.T) {
	q := tcQuery()
	w, err := CheckPair(q, fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(b,c)`))
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("TC should be monotone; witness %v", w)
	}
}

func TestCheckPairViolation(t *testing.T) {
	q := complementTCQuery()
	// I = single edge a->b: output contains O(b,a). Adding E(b,a)
	// removes it.
	i := fact.MustParseInstance(`E(a,b)`)
	j := fact.MustParseInstance(`E(b,a)`)
	w, err := CheckPair(q, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("¬TC should violate plain monotonicity on this pair")
	}
	if w.Missing.Rel() != "O" {
		t.Errorf("witness fact %v", w.Missing)
	}
}

func TestFindViolationTCClean(t *testing.T) {
	q := tcQuery()
	for _, c := range []Class{M, MDistinct, MDisjoint, Mi(2), MiDistinct(2), MiDisjoint(2)} {
		w, err := FindViolation(q, c, ClassSampler(c, mixedSampler(4, 5, 3)), 1, 300)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if w != nil {
			t.Errorf("TC violated %v: %v", c, w)
		}
	}
}

func TestFindViolationComplementTC(t *testing.T) {
	q := complementTCQuery()
	// Not monotone: the mixed sampler should find a violation.
	w, err := FindViolation(q, M, mixedSampler(4, 4, 4), 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("¬TC should violate M under mixed additions")
	}
	// But domain-disjoint additions never shorten distances:
	// QTC ∈ Mdisjoint (Theorem 3.1). The disjoint sampler only
	// produces disjoint pairs.
	w, err = FindViolation(q, MDisjoint, graphSampler(4, 4, 4), 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("¬TC should be domain-disjoint-monotone; witness %v", w)
	}
}

func TestFindViolationRejectsUselessSampler(t *testing.T) {
	q := tcQuery()
	// The disjoint-only sampler never produces an Mdistinct-but-not-
	// disjoint pair; but it does produce Mdistinct pairs (disjoint ⊆
	// distinct), so use a sampler that never satisfies the class:
	// J sharing all values with I, checked against Disjoint.
	sameValues := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", 3, 3)
		// J = I guarantees adom overlap whenever I is nonempty.
		return i, i.Clone()
	}
	_, err := FindViolation(q, MDisjoint, sameValues, 4, 50)
	if err == nil {
		t.Error("expected error when no sampled pair matches the class")
	}
}

func TestExhaustiveCheckSmallGraphs(t *testing.T) {
	q := tcQuery()
	vals := generate.Values("v", 2)
	enumerate := func(yield func(i, j *fact.Instance) bool) {
		generate.AllGraphs(vals, func(i *fact.Instance) bool {
			cont := true
			generate.AllGraphs(append(generate.Values("w", 1), vals[0]), func(j *fact.Instance) bool {
				cont = yield(i, j)
				return cont
			})
			return cont
		})
	}
	w, err := ExhaustiveCheck(q, M, enumerate)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("TC monotonicity violated exhaustively: %v", w)
	}
}

func TestClassAllows(t *testing.T) {
	i := fact.MustParseInstance(`E(a,b)`)
	jDisjoint := fact.MustParseInstance(`E(x,y)`)
	jDistinct := fact.MustParseInstance(`E(a,x)`)
	jNeither := fact.MustParseInstance(`E(b,a)`)

	if !M.Allows(jNeither, i) {
		t.Error("M allows everything")
	}
	if !MDistinct.Allows(jDistinct, i) || MDistinct.Allows(jNeither, i) {
		t.Error("MDistinct.Allows wrong")
	}
	if !MDisjoint.Allows(jDisjoint, i) || MDisjoint.Allows(jDistinct, i) {
		t.Error("MDisjoint.Allows wrong")
	}
	big := fact.MustParseInstance(`E(x,y) E(y,z) E(z,w)`)
	if MiDisjoint(2).Allows(big, i) {
		t.Error("bound not enforced")
	}
	if !MiDisjoint(3).Allows(big, i) {
		t.Error("bound too strict")
	}
}

func TestClassImplies(t *testing.T) {
	// By definition: M ⊆ Mdistinct ⊆ Mdisjoint, and
	// Mi ⊆ Mi_distinct ⊆ Mi_disjoint; unbounded ⊆ bounded.
	cases := []struct {
		a, b Class
		want bool
	}{
		{M, MDistinct, true},
		{MDistinct, MDisjoint, true},
		{M, MDisjoint, true},
		{MDisjoint, MDistinct, false},
		{MDistinct, M, false},
		{MDistinct, MiDistinct(3), true},
		{MiDistinct(3), MiDistinct(2), true},
		{MiDistinct(2), MiDistinct(3), false},
		{MiDistinct(3), MDistinct, false},
		{MiDistinct(3), MiDisjoint(3), true},
		{MiDisjoint(3), MiDistinct(3), false},
	}
	for _, c := range cases {
		if got := c.a.Implies(c.b); got != c.want {
			t.Errorf("%v implies %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if M.String() != "M" || MDistinct.String() != "M_distinct" ||
		MiDisjoint(3).String() != "M^3_disjoint" {
		t.Errorf("String: %v %v %v", M, MDistinct, MiDisjoint(3))
	}
}

func TestRestrictClassPair(t *testing.T) {
	i := fact.MustParseInstance(`E(a,b)`)
	j := fact.MustParseInstance(`E(a,b) E(a,x) E(y,z)`)
	if got := RestrictClassPair(MDistinct, i, j); got.Len() != 2 {
		t.Errorf("distinct restriction = %v", got)
	}
	if got := RestrictClassPair(MDisjoint, i, j); got.Len() != 1 || !got.Has(fact.New("E", "y", "z")) {
		t.Errorf("disjoint restriction = %v", got)
	}
	if got := RestrictClassPair(MiDisjoint(0), i, j); got.Len() != 1 {
		t.Errorf("zero bound treated as unbounded: %v", got)
	}
}

func TestCheckInput(t *testing.T) {
	q := tcQuery()
	if err := CheckInput(q, fact.MustParseInstance(`E(a,b)`)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	if err := CheckInput(q, fact.MustParseInstance(`R(a)`)); err == nil {
		t.Error("out-of-schema input accepted")
	}
}

func TestExtensionPreservationTC(t *testing.T) {
	q := tcQuery()
	w, err := FindExtensionViolation(q, func(rng *rand.Rand) *fact.Instance {
		return generate.RandomGraph(rng, "v", 5, 6)
	}, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("TC should be preserved under extensions: %v", w)
	}
}

func TestExtensionPreservationViolated(t *testing.T) {
	// ¬TC is not preserved under extensions (E = Mdistinct and
	// QTC ∉ Mdistinct). Explicit pair: J = {E(a,b)} induced in
	// I = {E(a,b), E(b,c), E(c,a)}? adom(J)={a,b}; induced subinstance
	// of I on {a,b} is {E(a,b)} ✓. Q(J) has O(b,a) but in I b reaches a.
	q := complementTCQuery()
	i := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a)`)
	j := fact.MustParseInstance(`E(a,b)`)
	w, err := CheckExtensionPair(q, j, i)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("¬TC should violate extension preservation on this pair")
	}
}

func TestCheckExtensionPairValidatesInduced(t *testing.T) {
	q := tcQuery()
	i := fact.MustParseInstance(`E(a,b) E(b,a)`)
	j := fact.MustParseInstance(`E(a,b)`) // not induced: E(b,a) over {a,b} missing
	if _, err := CheckExtensionPair(q, j, i); err == nil {
		t.Error("non-induced pair should error")
	}
}

func TestHomPreservationTC(t *testing.T) {
	// TC (positive Datalog without ≠) is preserved under homomorphisms.
	q := tcQuery()
	gen := func(rng *rand.Rand) *fact.Instance { return generate.RandomGraph(rng, "v", 4, 5) }
	w, err := FindHomViolation(q, gen, false, 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("TC should be preserved under homomorphisms: %v", w)
	}
	w, err = FindHomViolation(q, gen, true, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("TC should be preserved under injective homomorphisms: %v", w)
	}
}

func TestHomPreservationNeqQuery(t *testing.T) {
	// O(x,y) :- E(x,y), x != y is in Datalog(≠) ⊆ M = Hinj but NOT in
	// H: collapsing x,y kills the output (Lemma 3.2 separation H ⊊ Hinj).
	p := datalog.MustParseProgram(`O(x,y) :- E(x,y), x != y.`)
	q := datalog.MustQuery(p, "O")
	i := fact.MustParseInstance(`E(a,b)`)
	h := fact.Hom{"a": "c", "b": "c"}
	j := i.Map(h)
	w, err := CheckHomPair(q, i, j, h)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Error("≠-query should violate homomorphism preservation under collapse")
	}
	// But injective homomorphisms are fine.
	w2, err := FindHomViolation(q, func(rng *rand.Rand) *fact.Instance {
		return generate.RandomGraph(rng, "v", 4, 5)
	}, true, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != nil {
		t.Errorf("≠-query should survive injective homomorphisms: %v", w2)
	}
}

func TestCheckHomPairValidates(t *testing.T) {
	q := tcQuery()
	i := fact.MustParseInstance(`E(a,b)`)
	if _, err := CheckHomPair(q, i, fact.NewInstance(), fact.Hom{"a": "x", "b": "y"}); err == nil {
		t.Error("non-homomorphism should error")
	}
}

func TestNewFuncAdapter(t *testing.T) {
	q := NewGraphFunc("id", fact.GraphSchema(), func(i *fact.Instance) (*fact.Instance, error) {
		return i.Clone(), nil
	})
	if q.Name() != "id" {
		t.Error("name")
	}
	out, err := q.Eval(fact.MustParseInstance(`E(a,b)`))
	if err != nil || out.Len() != 1 {
		t.Errorf("eval: %v %v", out, err)
	}
	// Identity is monotone in every class.
	w, err := FindViolation(q, M, mixedSampler(3, 3, 3), 9, 100)
	if err != nil || w != nil {
		t.Errorf("identity monotone check: %v %v", w, err)
	}
}

package monotone

import (
	"repro/internal/fact"
)

// ShrinkWitness greedily minimizes a monotonicity violation: it
// removes facts from J (and then from I) as long as the pair stays
// allowed by the class and still drops some output fact. The result is
// 1-minimal — removing any single remaining fact destroys the
// violation — which makes counterexamples readable and directly
// illustrates Theorem 3.1(2): for the class M every violation shrinks
// to a single-fact J, which is why M = Mⁱ for all i.
func ShrinkWitness(q Query, c Class, w *Witness) (*Witness, error) {
	cur := &Witness{I: w.I.Clone(), J: w.J.Clone(), Missing: w.Missing}

	violates := func(i, j *fact.Instance) (*Witness, error) {
		if !c.Allows(j, i) {
			return nil, nil
		}
		return CheckPair(q, i, j)
	}

	// Phase 1: shrink J.
	for changed := true; changed; {
		changed = false
		for _, f := range cur.J.Facts() {
			smaller := cur.J.Clone()
			smaller.Remove(f)
			if smaller.Empty() {
				continue // an empty J never violates (Q(I) ⊆ Q(I))
			}
			nw, err := violates(cur.I, smaller)
			if err != nil {
				return nil, err
			}
			if nw != nil {
				cur = &Witness{I: cur.I, J: smaller, Missing: nw.Missing}
				changed = true
				break
			}
		}
	}

	// Phase 2: shrink I. Removing I-facts can change adom(I) and thus
	// the class condition; violates re-checks Allows each time.
	for changed := true; changed; {
		changed = false
		for _, f := range cur.I.Facts() {
			smaller := cur.I.Clone()
			smaller.Remove(f)
			nw, err := violates(smaller, cur.J)
			if err != nil {
				return nil, err
			}
			if nw != nil {
				cur = &Witness{I: smaller, J: cur.J, Missing: nw.Missing}
				changed = true
				break
			}
		}
	}
	return cur, nil
}

package monotone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fact"
	"repro/internal/generate"
)

// Implies must be sound w.r.t. Allows: when c.Implies(d), every pair
// allowed by d is allowed by c (so monotonicity under c entails
// monotonicity under d).
func TestImpliesSoundForAllows(t *testing.T) {
	classes := []Class{
		M, MDistinct, MDisjoint,
		Mi(1), Mi(2), Mi(3),
		MiDistinct(1), MiDistinct(2), MiDistinct(3),
		MiDisjoint(1), MiDisjoint(2), MiDisjoint(3),
	}
	rng := rand.New(rand.NewSource(71))
	pairs := make([][2]*fact.Instance, 0, 100)
	for k := 0; k < 100; k++ {
		i := generate.RandomGraph(rng, "v", 3, 3)
		pool := append(generate.Values("v", 3), generate.Values("w", 3)...)
		j := generate.Random(rng, fact.GraphSchema(), pool, 3)
		pairs = append(pairs, [2]*fact.Instance{i, j})
	}
	for _, c := range classes {
		for _, d := range classes {
			if !c.Implies(d) {
				continue
			}
			for _, p := range pairs {
				if d.Allows(p[1], p[0]) && !c.Allows(p[1], p[0]) {
					t.Fatalf("%v implies %v but pair I=%v J=%v allowed only by %v",
						c, d, p[0], p[1], d)
				}
			}
		}
	}
}

// Implies is reflexive and transitive on the class lattice.
func TestImpliesLattice(t *testing.T) {
	classes := []Class{M, MDistinct, MDisjoint, Mi(2), MiDistinct(2), MiDisjoint(2), MiDisjoint(5)}
	for _, c := range classes {
		if !c.Implies(c) {
			t.Errorf("%v does not imply itself", c)
		}
	}
	for _, a := range classes {
		for _, b := range classes {
			for _, c := range classes {
				if a.Implies(b) && b.Implies(c) && !a.Implies(c) {
					t.Errorf("transitivity broken: %v → %v → %v", a, b, c)
				}
			}
		}
	}
}

// Allows is monotone in the bound and antitone in the kind.
func TestAllowsStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i := generate.RandomGraph(rng, "v", 3, 3)
		pool := append(generate.Values("v", 3), generate.Values("w", 2)...)
		j := generate.Random(rng, fact.GraphSchema(), pool, 2)
		// Disjoint ⊆ Distinct ⊆ Any.
		if MDisjoint.Allows(j, i) && !MDistinct.Allows(j, i) {
			return false
		}
		if MDistinct.Allows(j, i) && !M.Allows(j, i) {
			return false
		}
		// Larger bound allows more.
		if MiDistinct(1).Allows(j, i) && !MiDistinct(2).Allows(j, i) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ClassSampler output is always allowed by the class.
func TestClassSamplerAlwaysAllowed(t *testing.T) {
	base := func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", 4, 4)
		pool := append(generate.Values("v", 4), generate.Values("w", 4)...)
		return i, generate.Random(rng, fact.GraphSchema(), pool, 5)
	}
	for _, c := range []Class{M, MDistinct, MDisjoint, MiDistinct(2), MiDisjoint(1)} {
		s := ClassSampler(c, base)
		rng := rand.New(rand.NewSource(73))
		for k := 0; k < 100; k++ {
			i, j := s(rng)
			if !c.Allows(j, i) {
				t.Fatalf("%v: sampler produced disallowed pair I=%v J=%v", c, i, j)
			}
		}
	}
}

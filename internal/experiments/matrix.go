// Package experiments provides reusable drivers for the reproduction
// harness: the bounded-hierarchy membership matrix of Figure 1
// (which parameterized query sits in which bounded monotonicity
// class), shared by cmd/experiments and the test suite.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/queries"
)

// MatrixRow is one cell of the bounded-hierarchy matrix: whether the
// query belongs to the class, expected from the theory and observed by
// the harness (exact witness for non-membership, sampling for
// membership).
type MatrixRow struct {
	Query    string
	Class    monotone.Class
	Expected bool
	Observed bool
	// Witness explains a non-membership observation.
	Witness string
}

// Agrees reports whether theory and observation match.
func (r MatrixRow) Agrees() bool { return r.Expected == r.Observed }

// cliqueExtensionWitness returns the Theorem 3.1(3) pair for
// Q^k_clique vs Mⁱdistinct: I an (k-1)-clique, J a star of k-1
// domain-distinct facts from a fresh center.
func cliqueExtensionWitness(k int) (*fact.Instance, *fact.Instance) {
	i := generate.Clique("v", k-1)
	j := fact.NewInstance()
	for _, v := range generate.Values("v", k-1) {
		j.Add(fact.New("E", "center", v))
	}
	return i, j
}

// cliqueFreshWitness returns the disjoint pair for Q^k_clique vs
// Mⁱdisjoint: a fresh one-direction-per-pair clique of C(k,2) facts.
func cliqueFreshWitness(k int) (*fact.Instance, *fact.Instance) {
	i := fact.MustParseInstance(`E(a,b)`)
	j := fact.NewInstance()
	vs := generate.Values("x", k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			j.Add(fact.New("E", vs[a], vs[b]))
		}
	}
	return i, j
}

// starSpokeWitness returns the Theorem 3.1(6) pair for Q^k_star vs
// Mⁱdistinct: a (k-1)-spoke star plus one distinct edge from the old
// center.
func starSpokeWitness(k int) (*fact.Instance, *fact.Instance) {
	return generate.Star("c", "s", k-1), fact.MustParseInstance(`E(c,new)`)
}

// starFreshWitness returns the Theorem 3.1(4) pair for Q^k_star vs
// Mⁱdisjoint: a fresh star of k disjoint facts.
func starFreshWitness(k int) (*fact.Instance, *fact.Instance) {
	return fact.MustParseInstance(`E(a,b)`), generate.Star("c", "t", k)
}

// duplicateWitness returns the Theorem 3.1(7) pair for Q^j_duplicate:
// a fresh tuple replicated across all j relations.
func duplicateWitness(j int) (*fact.Instance, *fact.Instance) {
	i := fact.MustParseInstance(`R1(a,b)`)
	dup := fact.NewInstance()
	for n := 1; n <= j; n++ {
		dup.Add(fact.New(fmt.Sprintf("R%d", n), "x", "y"))
	}
	return i, dup
}

// graphSampler produces random graph pairs for membership sampling.
func graphSampler(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
	i := generate.RandomGraph(rng, "v", 4, 5)
	pool := append(generate.Values("v", 4), generate.Values("w", 4)...)
	j := generate.Random(rng, fact.GraphSchema(), pool, 4)
	return i, j
}

// duplicateSampler produces random pairs over the R1..Rj schema.
func duplicateSampler(j int) monotone.Sampler {
	schema := queries.DuplicateSchema(j)
	return func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.Random(rng, schema, generate.Values("v", 4), 5)
		pool := append(generate.Values("v", 4), generate.Values("w", 3)...)
		return i, generate.Random(rng, schema, pool, 4)
	}
}

// checkCell determines observed membership of q in c: if the provided
// witness pair (when non-nil and allowed by c) violates monotonicity,
// the query is observed outside the class; otherwise sampling must
// stay clean for an inside observation.
func checkCell(q monotone.Query, c monotone.Class, wi, wj *fact.Instance, s monotone.Sampler, trials int) (bool, string, error) {
	if wi != nil && c.Allows(wj, wi) {
		w, err := monotone.CheckPair(q, wi, wj)
		if err != nil {
			return false, "", err
		}
		if w != nil {
			return false, fmt.Sprintf("loses %v", w.Missing), nil
		}
	}
	w, err := monotone.FindViolation(q, c, monotone.ClassSampler(c, s), 4242, trials)
	if err != nil {
		return false, "", err
	}
	if w != nil {
		return false, fmt.Sprintf("sampled violation %v", w.Missing), nil
	}
	return true, "", nil
}

// BoundedMatrix computes the bounded-hierarchy membership matrix for
// the clique, star and duplicate families up to the given bound.
// Expected values follow Theorem 3.1:
//
//   - Q^k_clique ∈ Mⁱdistinct iff i ≤ k-2; ∈ Mⁱdisjoint iff i < C(k,2);
//   - Q^k_star   ∈ Mⁱdistinct never;      ∈ Mⁱdisjoint iff i ≤ k-1;
//   - Q^j_dup    ∈ Mⁱdistinct iff i < j;  ∈ Mⁱdisjoint iff i < j.
func BoundedMatrix(maxBound, trials int) ([]MatrixRow, error) {
	var rows []MatrixRow

	add := func(name string, q monotone.Query, c monotone.Class, expected bool, wi, wj *fact.Instance, s monotone.Sampler) error {
		observed, witness, err := checkCell(q, c, wi, wj, s, trials)
		if err != nil {
			return err
		}
		rows = append(rows, MatrixRow{Query: name, Class: c, Expected: expected, Observed: observed, Witness: witness})
		return nil
	}

	for _, k := range []int{3, 4} {
		q := queries.KClique(k)
		name := fmt.Sprintf("Q^%d_clique", k)
		for i := 1; i <= maxBound; i++ {
			wi, wj := cliqueExtensionWitness(k)
			if err := add(name, q, monotone.MiDistinct(i), i <= k-2, wi, wj, graphSampler); err != nil {
				return nil, err
			}
			fi, fj := cliqueFreshWitness(k)
			undirected := k * (k - 1) / 2
			if err := add(name, q, monotone.MiDisjoint(i), i < undirected, fi, fj, graphSampler); err != nil {
				return nil, err
			}
		}
	}

	for _, k := range []int{2, 3} {
		q := queries.KStar(k)
		name := fmt.Sprintf("Q^%d_star", k)
		for i := 1; i <= maxBound; i++ {
			wi, wj := starSpokeWitness(k)
			if err := add(name, q, monotone.MiDistinct(i), false, wi, wj, graphSampler); err != nil {
				return nil, err
			}
			fi, fj := starFreshWitness(k)
			if err := add(name, q, monotone.MiDisjoint(i), i <= k-1, fi, fj, graphSampler); err != nil {
				return nil, err
			}
		}
	}

	for _, j := range []int{2, 3} {
		q := queries.Duplicate(j)
		name := fmt.Sprintf("Q^%d_duplicate", j)
		s := duplicateSampler(j)
		for i := 1; i <= maxBound; i++ {
			wi, wj := duplicateWitness(j)
			if err := add(name, q, monotone.MiDistinct(i), i < j, wi, wj, s); err != nil {
				return nil, err
			}
			if err := add(name, q, monotone.MiDisjoint(i), i < j, wi, wj, s); err != nil {
				return nil, err
			}
		}
	}

	return rows, nil
}

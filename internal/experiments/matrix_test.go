package experiments

import (
	"testing"
)

// The bounded-hierarchy matrix must agree with Theorem 3.1 in every
// cell: clique, star and duplicate families against Mⁱdistinct and
// Mⁱdisjoint for i = 1..3.
func TestBoundedMatrixAgrees(t *testing.T) {
	rows, err := BoundedMatrix(3, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty matrix")
	}
	for _, r := range rows {
		if !r.Agrees() {
			t.Errorf("%s vs %v: expected member=%v, observed member=%v (%s)",
				r.Query, r.Class, r.Expected, r.Observed, r.Witness)
		}
	}
}

// Spot-check a few cells against the hand-derived expectations.
func TestBoundedMatrixSpotCells(t *testing.T) {
	rows, err := BoundedMatrix(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	find := func(query, class string) *MatrixRow {
		for i := range rows {
			if rows[i].Query == query && rows[i].Class.String() == class {
				return &rows[i]
			}
		}
		t.Fatalf("cell %s/%s missing", query, class)
		return nil
	}
	cases := []struct {
		query, class string
		member       bool
	}{
		{"Q^3_clique", "M^1_distinct", true},
		{"Q^3_clique", "M^2_distinct", false},
		{"Q^3_clique", "M^2_disjoint", true},
		{"Q^3_clique", "M^3_disjoint", false},
		{"Q^4_clique", "M^2_distinct", true},
		{"Q^4_clique", "M^3_distinct", false},
		{"Q^2_star", "M^1_distinct", false},
		{"Q^2_star", "M^1_disjoint", true},
		{"Q^2_star", "M^2_disjoint", false},
		{"Q^3_star", "M^2_disjoint", true},
		{"Q^3_star", "M^3_disjoint", false},
		{"Q^3_duplicate", "M^2_distinct", true},
		{"Q^3_duplicate", "M^3_distinct", false},
		{"Q^3_duplicate", "M^2_disjoint", true},
		{"Q^3_duplicate", "M^3_disjoint", false},
	}
	for _, c := range cases {
		r := find(c.query, c.class)
		if r.Observed != c.member {
			t.Errorf("%s vs %s: observed %v, want %v", c.query, c.class, r.Observed, c.member)
		}
	}
}

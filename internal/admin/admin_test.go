package admin

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("srv.requests").Add(7)
	reg.Latency("srv.read_ns").Observe(1500)
	tr := obs.NewTracer(16, true)
	sp := tr.Root(obs.TraceID{Conn: 1, Seq: 1}).Start("srv.req")
	sp.Attr("op", "ping").Finish()

	scrapes := 0
	healthy := true
	s, err := Start("127.0.0.1:0", Options{
		Reg:          reg,
		Tracer:       tr,
		BeforeScrape: func() { scrapes++ },
		Health: func() (bool, any) {
			return healthy, map[string]any{"ok": healthy, "shards": 2}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, ct, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	for _, want := range []string{
		"srv_requests 7",
		"# TYPE srv_read_ns histogram",
		`srv_read_ns_quantile{q="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if scrapes != 1 {
		t.Errorf("BeforeScrape ran %d times, want 1", scrapes)
	}

	code, ct, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"shards":2`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/healthz content-type %q", ct)
	}
	if scrapes != 2 {
		t.Errorf("BeforeScrape ran %d times, want 2", scrapes)
	}
	healthy = false
	if code, _, _ = get(t, base+"/healthz"); code != 503 {
		t.Errorf("unhealthy /healthz status %d, want 503", code)
	}

	code, ct, body = get(t, base+"/trace?n=10")
	if code != 200 || !strings.Contains(ct, "x-ndjson") {
		t.Fatalf("/trace = %d %q", code, ct)
	}
	if !strings.Contains(body, `"span":"srv.req"`) || !strings.Contains(body, `"trace":"c1-1"`) {
		t.Errorf("/trace body %q", body)
	}
	if code, _, _ = get(t, base+"/trace?n=bogus"); code != 400 {
		t.Errorf("/trace?n=bogus status %d, want 400", code)
	}

	code, _, body = get(t, base+"/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestNilPlanes(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, _, _ := get(t, base+"/metrics"); code != 200 {
		t.Errorf("nil-registry /metrics status %d", code)
	}
	code, _, body := get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Errorf("default /healthz = %d %q", code, body)
	}
	if code, _, body := get(t, base+"/trace"); code != 200 || body != "" {
		t.Errorf("nil-tracer /trace = %d %q", code, body)
	}
}

// Package admin is the operational HTTP endpoint shared by every
// binary in the repo: calmd (single-node and cluster), dlog, calmsim,
// and experiments all expose the same four routes from the standard
// library alone — no client dependencies, curl is the whole toolkit.
//
//	/metrics        Prometheus text format 0.0.4 from an obs.Registry
//	/healthz        JSON health body; 200 when healthy, 503 when not
//	/trace?n=K      last K finished spans as JSONL (obs.Tracer ring)
//	/debug/pprof/*  the standard runtime profiles
//
// The server is deliberately passive: it holds no state of its own
// and never touches the serving hot path. Anything that is expensive
// to keep fresh per-request (per-shard pump lag, epoch age) is
// refreshed by the owner's BeforeScrape hook at scrape time instead —
// a scrape costs the scraper, not the request path.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Options configures which planes the endpoint exposes. Every field
// is optional: a nil Reg serves an empty /metrics, a nil Tracer an
// empty /trace, a nil Health an always-200 /healthz.
type Options struct {
	// Reg is the metrics registry rendered by /metrics.
	Reg *obs.Registry
	// Tracer's ring of finished spans backs /trace.
	Tracer *obs.Tracer
	// BeforeScrape, when non-nil, runs before each /metrics and
	// /healthz render — the place to refresh scrape-time gauges
	// (pump-lag watermarks, epoch age) without touching the hot path.
	BeforeScrape func()
	// Health, when non-nil, produces the /healthz body and verdict;
	// !ok renders the same body with status 503.
	Health func() (ok bool, body any)
}

// Server is a running admin endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan error
}

// Start listens on addr (e.g. ":6060" or "127.0.0.1:0") and serves
// the admin routes until Close. It returns once the listener is
// bound, so Addr() is immediately usable — tests bind port 0 and
// scrape themselves.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if opts.BeforeScrape != nil {
			opts.BeforeScrape()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteProm(w, opts.Reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.BeforeScrape != nil {
			opts.BeforeScrape()
		}
		ok, body := true, any(map[string]bool{"ok": true})
		if opts.Health != nil {
			ok, body = opts.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		enc.Encode(body)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		opts.Tracer.WriteJSONL(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

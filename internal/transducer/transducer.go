package transducer

import (
	"fmt"
	"strings"

	"repro/internal/fact"
)

// System relation names (Section 4.1.2). The policyR relations are
// named by prefixing the input relation name.
const (
	RelId        = "Id"
	RelAll       = "All"
	RelMyAdom    = "MyAdom"
	PolicyPrefix = "Policy_"
)

// PolicyRel returns the name of the policyR system relation for input
// relation rel.
func PolicyRel(rel string) string { return PolicyPrefix + rel }

// Schema is a transducer schema Υ: the four user-controlled schemas
// (input, output, message, memory); the system schema is implied by
// the model and the input schema.
type Schema struct {
	In, Out, Msg, Mem fact.Schema
}

// Validate checks that the four schemas have pairwise disjoint
// relation names and reserve no system names.
func (s Schema) Validate() error {
	parts := []struct {
		name string
		sch  fact.Schema
	}{{"input", s.In}, {"output", s.Out}, {"message", s.Msg}, {"memory", s.Mem}}
	seen := make(map[string]string)
	for _, part := range parts {
		for rel := range part.sch {
			if prev, ok := seen[rel]; ok {
				return fmt.Errorf("transducer: relation %s declared in both %s and %s schemas", rel, prev, part.name)
			}
			seen[rel] = part.name
			if rel == RelId || rel == RelAll || rel == RelMyAdom || strings.HasPrefix(rel, PolicyPrefix) {
				return fmt.Errorf("transducer: relation name %s is reserved for the system schema", rel)
			}
		}
	}
	return nil
}

// Model selects which system relations a transducer can see,
// identifying the model variants of Sections 4.1 and 4.3.
type Model struct {
	// ShowId exposes Id(x) at node x. Oblivious transducers lack it.
	ShowId bool
	// ShowAll exposes All(y) for every node y. The A0/A1/A2 variants
	// of Theorem 4.5 drop it; the active-domain base A then shrinks
	// from N ∪ adom(J) to {x} ∪ adom(J).
	ShowAll bool
	// ShowMyAdom exposes MyAdom(a) for each a in the base A.
	ShowMyAdom bool
	// ShowPolicy exposes Policy_R(ā) for the tuples ā over A that x
	// is responsible for.
	ShowPolicy bool
}

// The models studied in the paper.
var (
	// Original is the transducer model of [13]: Id and All only (F0).
	Original = Model{ShowId: true, ShowAll: true}
	// PolicyAware is the model of [32]: adds MyAdom and policyR (F1;
	// F2 when the distribution policy is domain-guided).
	PolicyAware = Model{ShowId: true, ShowAll: true, ShowMyAdom: true, ShowPolicy: true}
	// OriginalNoAll is the original model without All (the A0 variant).
	OriginalNoAll = Model{ShowId: true}
	// PolicyAwareNoAll is the policy-aware model without All (A1/A2).
	PolicyAwareNoAll = Model{ShowId: true, ShowMyAdom: true, ShowPolicy: true}
	// Oblivious has neither Id nor All (Section 4.3, last remark).
	Oblivious = Model{}
)

// Query is one of the four transducer queries: a deterministic mapping
// from the visible instance D (input ∪ output ∪ message ∪ memory ∪
// system facts) to facts over the query's target schema.
type Query func(d *fact.Instance) (*fact.Instance, error)

// Transducer is a (policy-aware) relational transducer Π over a
// schema Υ: the quadruple (Qout, Qins, Qdel, Qsnd) of Section 4.1.2.
// Nil queries behave as constant-empty.
type Transducer struct {
	Schema Schema
	// Out produces new output facts (target schema Out). Output facts
	// accumulate and are never retracted.
	Out Query
	// Ins and Del produce memory insertions and deletions (target
	// schema Mem); inserted-and-deleted facts cancel out per the
	// transition semantics.
	Ins Query
	Del Query
	// Snd produces message facts (target schema Msg) that are
	// broadcast to every other node.
	Snd Query
}

// Validate checks the schema.
func (t *Transducer) Validate() error {
	return t.Schema.Validate()
}

// runQuery evaluates a possibly-nil query and verifies the result is
// over the target schema.
func runQuery(q Query, d *fact.Instance, target fact.Schema, what string) (*fact.Instance, error) {
	if q == nil {
		return fact.NewInstance(), nil
	}
	out, err := q(d)
	if err != nil {
		return nil, fmt.Errorf("transducer: %s query: %w", what, err)
	}
	var bad *fact.Fact
	out.Each(func(f fact.Fact) bool {
		if !target.Covers(f) {
			g := f
			bad = &g
			return false
		}
		return true
	})
	if bad != nil {
		return nil, fmt.Errorf("transducer: %s query produced fact %v outside its target schema %v", what, *bad, target)
	}
	return out, nil
}

package transducer

import (
	"strings"
	"testing"

	"repro/internal/fact"
)

// conserved asserts the message-conservation invariant documented on
// Metrics: nothing the fault layer does may lose or invent messages.
func conserved(t *testing.T, sim *Simulation) {
	t.Helper()
	m := sim.Metrics
	got := m.MessagesDelivered + sim.TotalBuffered() + sim.TotalHeld() + m.MessagesDropped
	if m.MessagesSent != got {
		t.Fatalf("conservation broken: sent %d != delivered %d + buffered %d + held %d + dropped %d",
			m.MessagesSent, m.MessagesDelivered, sim.TotalBuffered(), sim.TotalHeld(), m.MessagesDropped)
	}
}

func TestFaultPlanDecisionsArePure(t *testing.T) {
	p := &FaultPlan{Seed: 42, DupProb: 0.5, DelayProb: 0.5, MaxDelay: 4}
	f := fact.New("F", "a", "b")
	for i := 0; i < 100; i++ {
		if p.extraCopies(3, "n1", "n2", f) != p.extraCopies(3, "n1", "n2", f) {
			t.Fatal("extraCopies is not a pure function of its arguments")
		}
		if p.holdFor(3, "n1", "n2", f) != p.holdFor(3, "n1", "n2", f) {
			t.Fatal("holdFor is not a pure function of its arguments")
		}
	}
	// Different seeds must actually change decisions somewhere.
	q := &FaultPlan{Seed: 43, DupProb: 0.5, DelayProb: 0.5, MaxDelay: 4}
	same := true
	for clock := 0; clock < 50 && same; clock++ {
		same = p.extraCopies(clock, "n1", "n2", f) == q.extraCopies(clock, "n1", "n2", f) &&
			p.holdFor(clock, "n1", "n2", f) == q.holdFor(clock, "n1", "n2", f)
	}
	if same {
		t.Error("seeds 42 and 43 agree on 50 decision points; seed is being ignored")
	}
}

func TestParseFaultPlanRoundTrip(t *testing.T) {
	specs := []string{
		"dup=0.2",
		"delay=0.25:6",
		"stall=n2@3-8",
		"crash=n3@10",
		"part=2-6:n1|n2",
		"dup=0.2,delay=0.25:6,stall=n2@3-8,crash=n3@10,part=2-6:n1|n2",
	}
	for _, spec := range specs {
		p, err := ParseFaultPlan(spec, 7)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseFaultPlan(%q).String() = %q", spec, got)
		}
		again, err := ParseFaultPlan(p.String(), 7)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", p.String(), err)
		}
		if again.String() != p.String() {
			t.Errorf("round-trip drifted: %q vs %q", p.String(), again.String())
		}
	}
	empty, err := ParseFaultPlan("", 1)
	if err != nil || !empty.Empty() || empty.String() != "none" {
		t.Errorf("empty spec: plan %v, err %v", empty, err)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"warp=0.5",
		"dup=lots",
		"delay=0.5",
		"delay=0.5:0",
		"stall=n1",
		"stall=n1@5",
		"stall=n1@8-3",
		"crash=n1",
		"crash=n1@zero",
		"part=3-9",
		"part=9-3:n1",
	} {
		if _, err := ParseFaultPlan(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestRandomFaultPlanReproducible(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	cfg := DefaultFaultConfig()
	for seed := int64(0); seed < 50; seed++ {
		a := RandomFaultPlan(net, seed, cfg)
		b := RandomFaultPlan(net, seed, cfg)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans differ: %s vs %s", seed, a, b)
		}
		// Every partition must be a proper nonempty subset, or the cut
		// would hold nothing (or everything) back.
		for _, cut := range a.Partitions {
			if len(cut.Group) == 0 || len(cut.Group) == len(net) {
				t.Fatalf("seed %d: degenerate partition group %v", seed, cut.Group)
			}
		}
		if a.Horizon() <= 0 {
			t.Fatalf("seed %d: plan with scheduled events has horizon %d", seed, a.Horizon())
		}
	}
}

func TestFaultPlanHorizon(t *testing.T) {
	p, err := ParseFaultPlan("stall=n1@2-9,crash=n2@14,part=3-11:n1", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Latest event is the crash at 14; recovery takes one more tick.
	if got := p.Horizon(); got != 15 {
		t.Errorf("Horizon = %d, want 15", got)
	}
	var empty FaultPlan
	if empty.Horizon() != 0 {
		t.Errorf("empty plan horizon = %d", empty.Horizon())
	}
}

func TestStallSilencesNode(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("stall=n1@1-4", 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(plan)
	// Three stalled activations: no transitions, no messages.
	for i := 0; i < 3; i++ {
		changed, err := sim.Heartbeat("n1")
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatal("stalled activation reported a change")
		}
	}
	if sim.Metrics.StalledSteps != 3 || sim.Metrics.Transitions != 0 || sim.Metrics.MessagesSent != 0 {
		t.Errorf("stall bookkeeping: %+v", sim.Metrics)
	}
	// Past the window the node acts normally and the run still converges.
	out, err := sim.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("output after stall = %v", out)
	}
	conserved(t, sim)
}

func TestDelayHoldsThenReleases(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(&FaultPlan{Seed: 2, DelayProb: 1.0, MaxDelay: 3})
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	// Every sent message is held, none buffered yet.
	if sim.TotalHeld() != 3 || sim.Buffered("n2") != 0 {
		t.Fatalf("held %d, buffered %d after delayed send", sim.TotalHeld(), sim.Buffered("n2"))
	}
	if sim.Metrics.MessagesDelayed != 3 {
		t.Errorf("MessagesDelayed = %d, want 3", sim.Metrics.MessagesDelayed)
	}
	conserved(t, sim)
	out, err := sim.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("output = %v", out)
	}
	if sim.TotalHeld() != 0 {
		t.Errorf("%d messages still held at quiescence", sim.TotalHeld())
	}
	conserved(t, sim)
}

func TestDuplicationAccumulates(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(&FaultPlan{Seed: 2, DupProb: 1.0})
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	// Each of the 3 facts arrives twice.
	if sim.Buffered("n2") != 6 || sim.Metrics.MessagesDuplicated != 3 {
		t.Fatalf("buffered %d, duplicated %d", sim.Buffered("n2"), sim.Metrics.MessagesDuplicated)
	}
	conserved(t, sim)
	out, err := sim.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("output = %v", out)
	}
	conserved(t, sim)
}

func TestPartitionHoldsCrossTraffic(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("part=1-5:n2", 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(plan)
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if sim.Buffered("n2") != 0 || sim.TotalHeld() != 3 {
		t.Fatalf("partition leaked: buffered %d, held %d", sim.Buffered("n2"), sim.TotalHeld())
	}
	out, err := sim.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("output after heal = %v", out)
	}
	conserved(t, sim)
}

func TestCrashRestartRecovers(t *testing.T) {
	net := MustNetwork("n1", "n2")
	// All input at n1: its broadcast is in n2's history by the time the
	// crash hits, so recovery must retransmit it.
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("crash=n2@4", 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(plan)
	out, err := sim.RunToQuiescence(30)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("output after crash-restart = %v", out)
	}
	if sim.Metrics.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", sim.Metrics.Crashes)
	}
	if sim.Metrics.MessagesRetransmitted == 0 {
		t.Error("crash recovery retransmitted nothing")
	}
	conserved(t, sim)
}

func TestCrashDropsVolatileState(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	// Let n2 learn everything, then crash it manually via a plan whose
	// crash fires on its next activation.
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	if sim.State("n2").Empty() {
		t.Fatal("n2 learned nothing to lose")
	}
	plan := &FaultPlan{Seed: 1, Crashes: []Crash{{Node: "n2", At: sim.Clock() + 1}}}
	sim.SetFaults(plan)
	if _, err := sim.Heartbeat("n2"); err != nil {
		t.Fatal(err)
	}
	if !sim.State("n2").Empty() {
		t.Errorf("crash kept volatile state: %v", sim.State("n2"))
	}
	// The local input fragment survives (it is empty under AllToNode n1,
	// so check on n1's side that local inputs are never touched).
	if !sim.LocalInput("n1").Equal(graphIn) {
		t.Error("crash of n2 disturbed n1's local input")
	}
	// Recovery rebroadcast refilled the buffer from n1's send log.
	if sim.Buffered("n2") == 0 {
		t.Error("recovery rebroadcast buffered nothing")
	}
	conserved(t, sim)
}

func TestFaultPlanStringNoSpec(t *testing.T) {
	var p FaultPlan
	if got := p.String(); got != "none" {
		t.Errorf("zero plan String = %q", got)
	}
	if !strings.Contains((&FaultPlan{DupProb: 0.5}).String(), "dup=0.5") {
		t.Error("dup missing from String")
	}
}

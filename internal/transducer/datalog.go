package transducer

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// This file adapts Datalog¬ programs to transducer queries, making
// transducers definable declaratively — the paper's transducers are
// "relational transducers" whose four components are queries in some
// relational language, with (stratified) Datalog¬ the language used
// throughout the declarative-networking literature.

// DatalogQuery wraps a stratified Datalog¬ program as a transducer
// query: the program is evaluated on the visible instance D (whose
// relations — input, output, message, memory and system — act as the
// program's edb), and the facts of the designated output relations,
// renamed through the optional alias map, form the result.
//
// The program's idb relations are scratch space: they must not collide
// with any schema relation visible in D.
func DatalogQuery(p *datalog.Program, target fact.Schema, rename map[string]string) (Query, error) {
	return DatalogQueryOpts(p, target, rename, datalog.FixpointOptions{})
}

// DatalogQueryOpts is DatalogQuery with explicit fixpoint options, so
// every local transducer step can run under any evaluation mode
// (naive, semi-naive or parallel).
func DatalogQueryOpts(p *datalog.Program, target fact.Schema, rename map[string]string, opts datalog.FixpointOptions) (Query, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsStratifiable() {
		return nil, fmt.Errorf("transducer: transducer queries must be stratifiable")
	}
	idb := p.IDB()
	outRels := make(map[string]string) // idb relation -> target relation
	for rel := range idb {
		tgt := rel
		if alias, ok := rename[rel]; ok {
			tgt = alias
		}
		if target.Has(tgt) {
			outRels[rel] = tgt
		}
	}
	if len(outRels) == 0 {
		return nil, fmt.Errorf("transducer: program derives no relation of the target schema %v (idb: %v)", target, idb)
	}

	return func(d *fact.Instance) (*fact.Instance, error) {
		// The program sees D as its edb; D must not contain idb facts.
		edb := fact.NewInstance()
		d.Each(func(f fact.Fact) bool {
			if !idb.Has(f.Rel()) {
				edb.Add(f)
			}
			return true
		})
		full, err := p.EvalStratified(edb, opts)
		if err != nil {
			return nil, err
		}
		out := fact.NewInstance()
		for rel, tgt := range outRels {
			for _, f := range full.Rel(rel) {
				out.Add(fact.FromTuple(tgt, f.Args()))
			}
		}
		return out, nil
	}, nil
}

// MustDatalogQuery is like DatalogQuery but panics on error.
func MustDatalogQuery(p *datalog.Program, target fact.Schema, rename map[string]string) Query {
	q, err := DatalogQuery(p, target, rename)
	if err != nil {
		panic(err)
	}
	return q
}

// DatalogTransducer assembles a transducer from four Datalog¬ program
// sources (any may be empty, meaning the constant-empty query). Each
// program's idb relations matching the respective target schema (Out
// for out, Mem for ins and del, Msg for snd) provide that query's
// result.
func DatalogTransducer(schema Schema, outSrc, insSrc, delSrc, sndSrc string) (*Transducer, error) {
	return DatalogTransducerOpts(schema, outSrc, insSrc, delSrc, sndSrc, datalog.FixpointOptions{})
}

// DatalogTransducerOpts is DatalogTransducer with explicit fixpoint
// options applied to all four component queries.
func DatalogTransducerOpts(schema Schema, outSrc, insSrc, delSrc, sndSrc string, opts datalog.FixpointOptions) (*Transducer, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	build := func(src string, target fact.Schema, what string) (Query, error) {
		if src == "" {
			return nil, nil
		}
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return nil, fmt.Errorf("transducer: %s program: %w", what, err)
		}
		q, err := DatalogQueryOpts(p, target, nil, opts)
		if err != nil {
			return nil, fmt.Errorf("transducer: %s program: %w", what, err)
		}
		return q, nil
	}
	out, err := build(outSrc, schema.Out, "output")
	if err != nil {
		return nil, err
	}
	ins, err := build(insSrc, schema.Mem, "insertion")
	if err != nil {
		return nil, err
	}
	del, err := build(delSrc, schema.Mem, "deletion")
	if err != nil {
		return nil, err
	}
	snd, err := build(sndSrc, schema.Msg, "send")
	if err != nil {
		return nil, err
	}
	return &Transducer{Schema: schema, Out: out, Ins: ins, Del: del, Snd: snd}, nil
}

package transducer

import (
	"strings"
	"testing"

	"repro/internal/fact"
)

func TestTraceOutput(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, in)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sim.TraceTo(&buf)
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "heartbeat") || !strings.Contains(lines[0], "n1") {
		t.Errorf("first trace line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "deliver") || !strings.Contains(lines[1], "delivered=1") {
		t.Errorf("second trace line wrong: %q", lines[1])
	}

	// Disabling stops further output.
	sim.TraceTo(nil)
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != out {
		t.Error("trace emitted after being disabled")
	}
}

// Clones never inherit the trace sink (the explorer would flood it).
func TestCloneDropsTrace(t *testing.T) {
	net := MustNetwork("n1")
	sim, err := NewSimulation(net, echoTransducer(), HashPolicy(net), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sim.TraceTo(&buf)
	clone := sim.Clone()
	if _, err := clone.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("clone wrote to the parent's trace sink")
	}
}

// Package transducer implements the relational transducer networks of
// Section 4 of the paper, in all three flavors studied there:
//
//   - the original model of Ameloot, Neven & Van den Bussche [13]
//     (system relations Id and All only);
//   - the policy-aware model of Zinn, Green & Ludäscher [32] (adds
//     MyAdom and the policyR relations);
//   - the domain-guided model (policy-aware with a domain-guided
//     distribution policy);
//
// together with the All-free variants of Section 4.3 (the A0/A1/A2
// models) and oblivious transducers (neither Id nor All).
//
// The simulator follows the formal semantics of Section 4.1.3 exactly:
// configurations are per-node states plus multiset message buffers;
// a transition actives one node, delivers a submultiset of its buffer,
// evaluates the four transducer queries on the local data plus system
// facts, and broadcasts the sent facts to every other node. Fair runs
// are approximated by schedulers that guarantee eventual activation
// and delivery, running to quiescence.
package transducer

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/fact"
)

// NodeID identifies a computing node. Node identifiers are domain
// values and can occur as data in relations (Section 4.1.1).
type NodeID = fact.Value

// Network is a nonempty finite set of nodes, kept sorted.
type Network []NodeID

// NewNetwork builds a network from node identifiers.
func NewNetwork(nodes ...NodeID) (Network, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("transducer: network must be nonempty")
	}
	seen := make(map[NodeID]bool, len(nodes))
	out := make(Network, 0, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			return nil, fmt.Errorf("transducer: duplicate node %s", n)
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MustNetwork is like NewNetwork but panics on error.
func MustNetwork(nodes ...NodeID) Network {
	n, err := NewNetwork(nodes...)
	if err != nil {
		panic(err)
	}
	return n
}

// Has reports whether the node belongs to the network.
func (n Network) Has(x NodeID) bool {
	for _, y := range n {
		if y == x {
			return true
		}
	}
	return false
}

// Policy is a distribution policy P for a schema σ and a network N: a
// total function from facts over σ to nonempty sets of nodes
// (Section 4.1.1). Implementations must be deterministic.
type Policy interface {
	// Nodes returns the nonempty set of nodes responsible for the fact.
	Nodes(f fact.Fact) []NodeID
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(f fact.Fact) []NodeID

// Nodes implements Policy.
func (p PolicyFunc) Nodes(f fact.Fact) []NodeID { return p(f) }

// Responsible reports whether node x is responsible for the fact
// under the policy.
func Responsible(p Policy, x NodeID, f fact.Fact) bool {
	for _, y := range p.Nodes(f) {
		if y == x {
			return true
		}
	}
	return false
}

// Dist computes dist_P(I): the distributed database instance mapping
// each node to its fragment of the input.
func Dist(p Policy, net Network, input *fact.Instance) map[NodeID]*fact.Instance {
	h := make(map[NodeID]*fact.Instance, len(net))
	for _, x := range net {
		h[x] = fact.NewInstance()
	}
	input.Each(func(f fact.Fact) bool {
		for _, x := range p.Nodes(f) {
			if frag, ok := h[x]; ok {
				frag.Add(f)
			}
		}
		return true
	})
	return h
}

// HashPolicy assigns each fact to a single node chosen by hashing the
// whole fact; a generic non-domain-guided policy.
func HashPolicy(net Network) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID {
		h := fnv.New32a()
		h.Write([]byte(f.Key()))
		return []NodeID{net[int(h.Sum32())%len(net)]}
	})
}

// FirstAttrPolicy assigns each fact to a node by hashing its first
// attribute, mirroring the paper's Example 4.1 policy P1 (which
// partitions E by its first attribute). Not domain-guided.
func FirstAttrPolicy(net Network) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID {
		h := fnv.New32a()
		h.Write([]byte(f.Arg(0)))
		return []NodeID{net[int(h.Sum32())%len(net)]}
	})
}

// AllToNode is the "ideal" policy used by the coordination-freeness
// witnesses: every fact is assigned to the single node x.
func AllToNode(x NodeID) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID { return []NodeID{x} })
}

// ReplicateAll assigns every fact to every node.
func ReplicateAll(net Network) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID { return append([]NodeID{}, net...) })
}

// RandomPolicy returns a deterministic pseudo-random policy: each fact
// is assigned to a random nonempty node subset derived from the seed
// and the fact itself (so the policy is a total function, stable
// across calls). Used to sample the "for all distribution policies"
// quantifier of Section 4.1.4.
func RandomPolicy(net Network, seed int64) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d\x00%s", seed, f.Key())
		bits := h.Sum64()
		var out []NodeID
		for i, x := range net {
			if bits&(1<<uint(i%63)) != 0 {
				out = append(out, x)
			}
			bits = bits*6364136223846793005 + 1442695040888963407
		}
		if len(out) == 0 {
			out = []NodeID{net[int(bits>>32)%len(net)]}
		}
		return out
	})
}

// RandomAssignment returns a deterministic pseudo-random domain
// assignment: each value maps to a random nonempty node subset derived
// from the seed and the value.
func RandomAssignment(net Network, seed int64) DomainAssignment {
	return AssignFunc(func(a fact.Value) []NodeID {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d\x01%s", seed, a)
		bits := h.Sum64()
		var out []NodeID
		for i, x := range net {
			if bits&(1<<uint(i%63)) != 0 {
				out = append(out, x)
			}
			bits = bits*6364136223846793005 + 1442695040888963407
		}
		if len(out) == 0 {
			out = []NodeID{net[int(bits>>32)%len(net)]}
		}
		return out
	})
}

// DomainAssignment is a total function α from domain values to
// nonempty node sets (Section 4.1.1). It induces the domain-guided
// policy P(R(a1..ak)) = α(a1) ∪ ... ∪ α(ak).
type DomainAssignment interface {
	// Assign returns the nonempty set of nodes value a is assigned to.
	Assign(a fact.Value) []NodeID
}

// AssignFunc adapts a function to the DomainAssignment interface.
type AssignFunc func(a fact.Value) []NodeID

// Assign implements DomainAssignment.
func (f AssignFunc) Assign(a fact.Value) []NodeID { return f(a) }

// HashAssignment assigns each value to one node by hash.
func HashAssignment(net Network) DomainAssignment {
	return AssignFunc(func(a fact.Value) []NodeID {
		h := fnv.New32a()
		h.Write([]byte(a))
		return []NodeID{net[int(h.Sum32())%len(net)]}
	})
}

// AssignAllTo maps every value to the single node x — the ideal
// domain assignment of the Theorem 4.4 coordination-freeness witness.
func AssignAllTo(x NodeID) DomainAssignment {
	return AssignFunc(func(a fact.Value) []NodeID { return []NodeID{x} })
}

// DomainGuided builds the domain-guided distribution policy induced by
// the assignment: a fact goes to every node that any of its values is
// assigned to.
func DomainGuided(alpha DomainAssignment) Policy {
	return PolicyFunc(func(f fact.Fact) []NodeID {
		seen := make(map[NodeID]bool)
		var out []NodeID
		for i := 0; i < f.Arity(); i++ {
			for _, x := range alpha.Assign(f.Arg(i)) {
				if !seen[x] {
					seen[x] = true
					out = append(out, x)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	})
}

// GuidedPolicy couples a domain-guided policy with its assignment so
// simulations can expose responsibility for single values.
type GuidedPolicy struct {
	Alpha DomainAssignment
	Policy
}

// NewGuidedPolicy builds a GuidedPolicy from a domain assignment.
func NewGuidedPolicy(alpha DomainAssignment) *GuidedPolicy {
	return &GuidedPolicy{Alpha: alpha, Policy: DomainGuided(alpha)}
}

// IsDomainGuidedOn verifies (by exhaustive check over the given value
// set and schema) that the policy behaves as the domain-guided policy
// of some assignment — used in tests. It checks
// P(R(a1..ak)) = ∪ P(R(ai,...,ai)) for all tuples over the values.
func IsDomainGuidedOn(p Policy, schema fact.Schema, values []fact.Value) bool {
	singleton := func(rel string, ar int, a fact.Value) map[NodeID]bool {
		args := make([]fact.Value, ar)
		for i := range args {
			args[i] = a
		}
		set := make(map[NodeID]bool)
		for _, x := range p.Nodes(fact.New(rel, args...)) {
			set[x] = true
		}
		return set
	}
	for rel, ar := range schema {
		// The assignment candidate α(a) is read off the all-a fact.
		tuples := enumerateTuples(values, ar)
		for _, tup := range tuples {
			want := make(map[NodeID]bool)
			for _, a := range tup {
				for x := range singleton(rel, ar, a) {
					want[x] = true
				}
			}
			got := make(map[NodeID]bool)
			for _, x := range p.Nodes(fact.FromTuple(rel, tup)) {
				got[x] = true
			}
			if len(got) != len(want) {
				return false
			}
			for x := range want {
				if !got[x] {
					return false
				}
			}
		}
	}
	return true
}

// enumerateTuples returns all tuples of the given arity over values.
func enumerateTuples(values []fact.Value, arity int) []fact.Tuple {
	if arity == 0 {
		return []fact.Tuple{{}}
	}
	var out []fact.Tuple
	sub := enumerateTuples(values, arity-1)
	for _, t := range sub {
		for _, v := range values {
			nt := make(fact.Tuple, 0, arity)
			nt = append(nt, t...)
			nt = append(nt, v)
			out = append(out, nt)
		}
	}
	return out
}

package transducer_test

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/transducer"
)

// A domain-guided policy replicates a fact to the node of every value
// it contains — Example 4.1 of the paper.
func ExampleDomainGuided() {
	net := transducer.MustNetwork("1", "2")
	odd := func(v fact.Value) bool { return (v[len(v)-1]-'0')%2 == 1 }
	alpha := transducer.AssignFunc(func(a fact.Value) []transducer.NodeID {
		if odd(a) {
			return []transducer.NodeID{"1"}
		}
		return []transducer.NodeID{"2"}
	})
	p := transducer.DomainGuided(alpha)
	input := fact.MustParseInstance(`E(1,3) E(3,4) E(4,6)`)
	h := transducer.Dist(p, net, input)
	fmt.Println("node 1:", h["1"])
	fmt.Println("node 2:", h["2"])
	// Output:
	// node 1: {E(1,3), E(3,4)}
	// node 2: {E(3,4), E(4,6)}
}

// A fully declarative transducer: the four component queries are
// stratified Datalog¬ programs over the visible schema.
func ExampleDatalogTransducer() {
	schema := transducer.Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 2}),
		Msg: fact.MustSchema(map[string]int{"F": 2}),
		Mem: fact.MustSchema(map[string]int{"Seen": 2, "Sent": 2}),
	}
	tr, err := transducer.DatalogTransducer(schema,
		`O(x,y) :- E(x,y).
		 O(x,y) :- F(x,y).
		 O(x,y) :- Seen(x,y).`,
		`Seen(x,y) :- F(x,y).
		 Sent(x,y) :- E(x,y).`,
		``,
		`F(x,y) :- E(x,y), !Sent(x,y).`,
	)
	if err != nil {
		panic(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	input := fact.MustParseInstance(`E(a,b) E(b,c)`)
	sim, err := transducer.NewSimulation(net, tr, transducer.HashPolicy(net), transducer.Original, input)
	if err != nil {
		panic(err)
	}
	out, err := sim.RunToQuiescence(16)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// {O(a,b), O(b,c)}
}

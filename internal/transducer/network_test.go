package transducer

import (
	"testing"

	"repro/internal/fact"
)

func TestNewNetwork(t *testing.T) {
	n, err := NewNetwork("n2", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if n[0] != "n1" || n[1] != "n2" {
		t.Errorf("network not sorted: %v", n)
	}
	if _, err := NewNetwork(); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork("a", "a"); err == nil {
		t.Error("duplicate node accepted")
	}
	if !n.Has("n1") || n.Has("zz") {
		t.Error("Has misbehaves")
	}
}

func TestDist(t *testing.T) {
	net := MustNetwork("1", "2")
	input := fact.MustParseInstance(`E(a,b) E(c,d)`)
	p := PolicyFunc(func(f fact.Fact) []NodeID {
		if f.Arg(0) == "a" {
			return []NodeID{"1"}
		}
		return []NodeID{"1", "2"}
	})
	h := Dist(p, net, input)
	if !h["1"].Equal(input) {
		t.Errorf("node 1 fragment = %v", h["1"])
	}
	if !h["2"].Equal(fact.MustParseInstance(`E(c,d)`)) {
		t.Errorf("node 2 fragment = %v", h["2"])
	}
}

// Example 4.1 from the paper: the domain-guided policy P2 with
// α(odd) = {1}, α(even) = {2} replicates E(3,4) to both nodes.
func TestExample41DomainGuided(t *testing.T) {
	net := MustNetwork("1", "2")
	odd := func(v fact.Value) bool {
		last := v[len(v)-1]
		return (last-'0')%2 == 1
	}
	alpha := AssignFunc(func(a fact.Value) []NodeID {
		if odd(a) {
			return []NodeID{"1"}
		}
		return []NodeID{"2"}
	})
	p := DomainGuided(alpha)
	input := fact.MustParseInstance(`E(1,3) E(3,4) E(4,6)`)
	h := Dist(p, net, input)
	if !h["1"].Equal(fact.MustParseInstance(`E(1,3) E(3,4)`)) {
		t.Errorf("node 1 = %v", h["1"])
	}
	if !h["2"].Equal(fact.MustParseInstance(`E(3,4) E(4,6)`)) {
		t.Errorf("node 2 = %v", h["2"])
	}

	// P2 is domain-guided by construction; the checker must agree.
	sigma := fact.GraphSchema()
	vals := []fact.Value{"1", "3", "4", "6"}
	if !IsDomainGuidedOn(p, sigma, vals) {
		t.Error("DomainGuided policy failed the domain-guided check")
	}

	// The first-attribute policy P1 of Example 4.1 is NOT
	// domain-guided: neither node gets all facts containing 4.
	p1 := PolicyFunc(func(f fact.Fact) []NodeID {
		if odd(f.Arg(0)) {
			return []NodeID{"1"}
		}
		return []NodeID{"2"}
	})
	if IsDomainGuidedOn(p1, sigma, vals) {
		t.Error("first-attribute policy wrongly classified as domain-guided")
	}
}

func TestPolicies(t *testing.T) {
	net := MustNetwork("a", "b", "c")
	f := fact.New("E", "x", "y")
	for _, p := range []Policy{HashPolicy(net), FirstAttrPolicy(net), DomainGuided(HashAssignment(net))} {
		nodes := p.Nodes(f)
		if len(nodes) == 0 {
			t.Error("policy returned empty node set")
		}
		for _, x := range nodes {
			if !net.Has(x) {
				t.Errorf("policy returned foreign node %s", x)
			}
		}
		// Deterministic.
		again := p.Nodes(f)
		if len(again) != len(nodes) {
			t.Error("policy nondeterministic")
		}
	}
	if got := AllToNode("b").Nodes(f); len(got) != 1 || got[0] != "b" {
		t.Errorf("AllToNode = %v", got)
	}
	if got := ReplicateAll(net).Nodes(f); len(got) != 3 {
		t.Errorf("ReplicateAll = %v", got)
	}
}

func TestGuidedPolicyRespectsAssignment(t *testing.T) {
	net := MustNetwork("a", "b")
	gp := NewGuidedPolicy(HashAssignment(net))
	f := fact.New("E", "u", "v")
	want := make(map[NodeID]bool)
	for _, x := range gp.Alpha.Assign("u") {
		want[x] = true
	}
	for _, x := range gp.Alpha.Assign("v") {
		want[x] = true
	}
	got := gp.Nodes(f)
	if len(got) != len(want) {
		t.Errorf("guided policy nodes = %v, want union of assignments %v", got, want)
	}
	for _, x := range got {
		if !want[x] {
			t.Errorf("unexpected node %s", x)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	ok := Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 2}),
		Msg: fact.MustSchema(map[string]int{"F": 2}),
		Mem: fact.MustSchema(map[string]int{"Seen": 2}),
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	dup := ok
	dup.Out = fact.MustSchema(map[string]int{"E": 2})
	if err := dup.Validate(); err == nil {
		t.Error("overlapping schemas accepted")
	}
	reserved := ok
	reserved.Mem = fact.MustSchema(map[string]int{"MyAdom": 1})
	if err := reserved.Validate(); err == nil {
		t.Error("reserved system name accepted")
	}
	reservedPolicy := ok
	reservedPolicy.Msg = fact.MustSchema(map[string]int{"Policy_E": 2})
	if err := reservedPolicy.Validate(); err == nil {
		t.Error("Policy_ prefix accepted")
	}
}

func TestEnumerateTuples(t *testing.T) {
	ts := enumerateTuples([]fact.Value{"a", "b"}, 2)
	if len(ts) != 4 {
		t.Errorf("2 values arity 2: %d tuples, want 4", len(ts))
	}
	if len(enumerateTuples(nil, 1)) != 0 {
		t.Error("no values should give no tuples")
	}
}

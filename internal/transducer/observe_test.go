package transducer

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenSimTrace pins the JSONL schema of every simulation event
// kind: a fully deterministic fault plan forces holds, a stall and a
// crash alongside ordinary deliver/heartbeat transitions, and the fair
// drive ends in quiescence.
func TestGoldenSimTrace(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, in)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(&FaultPlan{
		Seed:      7,
		DupProb:   1.0, // every send duplicated
		DelayProb: 1.0, // every send held 1-2 ticks
		MaxDelay:  2,
		Stalls:    []Stall{{Node: "n2", From: 2, To: 3}},
		Crashes:   []Crash{{Node: "n1", At: 6}},
	})
	var sb strings.Builder
	sim.Observe(obs.NewSink(&sb))
	if _, err := sim.RunToQuiescence(64); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, kind := range []string{obs.EvTransition, obs.EvStall, obs.EvCrash, obs.EvHold, obs.EvQuiesce} {
		if !strings.Contains(got, `"ev":"`+kind+`"`) {
			t.Errorf("trace lacks %s events", kind)
		}
	}
	goldenCompare(t, "trace_sim.jsonl", got)
}

// TestGoldenExploreTrace pins the schedule/violation event schema on a
// transducer that outputs a wrong fact immediately.
func TestGoldenExploreTrace(t *testing.T) {
	bad := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`O(wrong,wrong)`), nil
		},
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	var sb strings.Builder
	opts := ExploreOptions{Seeds: 1, Sink: obs.NewSink(&sb)}
	v, stats, err := ExploreSchedules(net, bad, HashPolicy(net), Original, in, wantO(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("wrong-fact transducer not caught")
	}
	got := sb.String()
	for _, kind := range []string{obs.EvSchedule, obs.EvViolation} {
		if !strings.Contains(got, `"ev":"`+kind+`"`) {
			t.Errorf("trace lacks %s events", kind)
		}
	}
	if stats.Aborted != 1 || stats.Violations != 1 {
		t.Errorf("stats Aborted=%d Violations=%d, want 1/1", stats.Aborted, stats.Violations)
	}
	goldenCompare(t, "trace_explore.jsonl", got)
}

// TestRunRandomSameSeedIdenticalEvents is the structured-stream twin
// of TestRunRandomSameSeedIdenticalTrace: equal seeds must produce
// byte-identical JSONL event streams, fault plan included.
func TestRunRandomSameSeedIdenticalEvents(t *testing.T) {
	run := func(seed int64) ([]byte, *fact.Instance) {
		net := MustNetwork("n1", "n2", "n3")
		sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, bigGraphIn())
		if err != nil {
			t.Fatal(err)
		}
		sim.SetFaults(RandomFaultPlan(net, seed, DefaultFaultConfig()))
		var buf bytes.Buffer
		sim.Observe(obs.NewSink(&buf))
		out, err := sim.RunRandom(seed, 40, 80)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), out
	}
	for seed := int64(1); seed <= 5; seed++ {
		ev1, out1 := run(seed)
		ev2, out2 := run(seed)
		if !bytes.Equal(ev1, ev2) {
			t.Fatalf("seed %d: event streams differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, ev1, ev2)
		}
		if !out1.Equal(out2) {
			t.Fatalf("seed %d: outputs differ", seed)
		}
	}
}

// Clones never inherit the structured sink, exactly as they never
// inherited the text trace (TestCloneDropsTrace).
func TestCloneDropsSink(t *testing.T) {
	net := MustNetwork("n1")
	sim, err := NewSimulation(net, echoTransducer(), HashPolicy(net), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sim.Observe(obs.NewSink(&sb))
	clone := sim.Clone()
	if _, err := clone.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Error("clone wrote to the parent's event sink")
	}
	// The parent still observes its own steps.
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Error("parent sink detached by cloning")
	}
}

// TestExploreStatsCountPartialSchedules is the regression test for the
// transition undercount: a schedule aborted by a violation before its
// fair finish must still contribute its transitions and message flows
// to the stats (the old accounting only summed inside finish()).
func TestExploreStatsCountPartialSchedules(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	e := &explorer{net: net, t: forwardTransducer(), pol: HashPolicy(net), mod: Original, input: in, want: wantO(in)}
	r, err := e.newRun("partial")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range net {
		if _, err := r.sim.Deliver(x); err != nil {
			t.Fatal(err)
		}
	}
	// Abort before finish(), as the starvation and adversary runners do
	// when checkSound trips mid-schedule.
	v := &ScheduleViolation{Kind: WrongFact, Schedule: "partial", Step: 2,
		Output: fact.NewInstance(), Want: e.want}
	e.record(v, nil)
	if e.stats.Schedules != 1 || e.stats.Aborted != 1 || e.stats.Violations != 1 {
		t.Errorf("stats = %+v, want 1 schedule, 1 aborted, 1 violation", e.stats)
	}
	if e.stats.Transitions != 2 {
		t.Errorf("Transitions = %d, want 2 (partial schedules must count)", e.stats.Transitions)
	}
	if e.stats.Sim.Transitions != 2 || e.stats.Sim.MessagesSent == 0 {
		t.Errorf("Sim fold missing: %+v", e.stats.Sim)
	}
}

// TestExploreStatsFold checks the folded Metrics agree with the flat
// transition count on a clean exploration, and that Publish lands the
// explore.* counters.
func TestExploreStatsFold(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	opts := ExploreOptions{Seeds: 5, Faults: DefaultFaultConfig()}
	v, stats, err := ExploreSchedules(net, forwardTransducer(), HashPolicy(net), Original, in, wantO(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if stats.Aborted != 0 || stats.Violations != 0 {
		t.Errorf("clean run reported aborts: %+v", stats)
	}
	if stats.Sim.Transitions != stats.Transitions {
		t.Errorf("Sim.Transitions = %d, Transitions = %d; fold out of sync", stats.Sim.Transitions, stats.Transitions)
	}
	if stats.Sim.MessagesSent == 0 || stats.Sim.MessagesDelivered == 0 {
		t.Errorf("message flows not folded: %+v", stats.Sim)
	}
	reg := obs.NewRegistry()
	stats.Publish(reg)
	snap := reg.Snapshot()
	if snap.Counters[obs.ExploreSchedules] != int64(stats.Schedules) ||
		snap.Counters[obs.ExploreTransitions] != int64(stats.Transitions) ||
		snap.Counters[obs.SimTransitions] != int64(stats.Sim.Transitions) {
		t.Errorf("Publish mismatch: %+v vs %+v", snap.Counters, stats)
	}
}

// TestMetricsMerge pins the field-by-field fold.
func TestMetricsMerge(t *testing.T) {
	a := Metrics{Transitions: 1, Heartbeats: 2, MessagesSent: 3, MessagesDelivered: 4, MessagesDuplicated: 5,
		MessagesDelayed: 6, MessagesDropped: 7, MessagesRetransmitted: 8, Crashes: 9, StalledSteps: 10}
	b := a
	b.Merge(a)
	want := Metrics{Transitions: 2, Heartbeats: 4, MessagesSent: 6, MessagesDelivered: 8, MessagesDuplicated: 10,
		MessagesDelayed: 12, MessagesDropped: 14, MessagesRetransmitted: 16, Crashes: 18, StalledSteps: 20}
	if b != want {
		t.Errorf("Merge = %+v, want %+v", b, want)
	}
	reg := obs.NewRegistry()
	b.Publish(reg)
	snap := reg.Snapshot()
	if snap.Counters[obs.SimSent] != 6 || snap.Counters[obs.SimStalledSteps] != 20 {
		t.Errorf("Publish mapped wrong: %+v", snap.Counters)
	}
}

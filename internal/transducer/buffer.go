package transducer

import (
	"math/rand"

	"repro/internal/fact"
)

// Multiset is the exported name of the simulator's message buffer: a
// multiset of facts (Section 4.1.3 uses multisets because the same
// message can be sent several times and float around simultaneously).
// The event-driven engine in internal/netsim reuses this exact type
// for its per-node inboxes so that batch delivery — including the
// sorted-key consumption order that makes seeded runs reproducible —
// is byte-identical across schedulers.
type Multiset = multiset

// NewMultiset returns an empty buffer.
func NewMultiset() *Multiset { return newMultiset() }

// Add inserts n copies of f.
func (m *multiset) Add(f fact.Fact, n int) { m.add(f, n) }

// Size returns the number of message instances buffered (copies
// counted).
func (m *multiset) Size() int { return m.size() }

// Empty reports whether the buffer holds no message at all.
func (m *multiset) Empty() bool { return m.empty() }

// SortedKeys returns the buffered fact keys in sorted order — the only
// order observable consumption may walk the buffer in (see sortedKeys).
func (m *multiset) SortedKeys() []string { return m.sortedKeys() }

// Fact returns the buffered fact under key k and its multiplicity
// (zero value and 0 when absent).
func (m *multiset) Fact(k string) (fact.Fact, int) { return m.facts[k], m.counts[k] }

// RemoveKey deletes all copies of the fact under key k and returns how
// many instances were removed.
func (m *multiset) RemoveKey(k string) int {
	n := m.counts[k]
	delete(m.counts, k)
	delete(m.facts, k)
	return n
}

// TakeAll removes and returns the whole buffer collapsed to a set,
// plus the number of message instances delivered.
func (m *multiset) TakeAll() (*fact.Instance, int) { return m.takeAll() }

// TakeRandom removes a random submultiset (each copy kept or delivered
// with probability 1/2), consuming the buffer in sorted key order so
// rng draws are reproducible.
func (m *multiset) TakeRandom(rng *rand.Rand) (*fact.Instance, int) { return m.takeRandom(rng) }

package transducer

import (
	"fmt"

	"repro/internal/fact"
)

// This file implements an executable approximation of Section 4.1.4's
// "Π computes Q": on the given network and policy, every fair run must
// produce exactly the expected output. The checker combines three
// levels of evidence: the deterministic round-robin run, a batch of
// seeded random fair runs, and (optionally) exhaustive bounded
// schedule exploration for the no-wrong-output half.

// ConformanceOptions tunes CheckComputes.
type ConformanceOptions struct {
	// MaxRounds bounds each run; 0 picks a generous default.
	MaxRounds int
	// RandomRuns is the number of seeded random fair runs (default 5).
	RandomRuns int
	// RandomSteps is the random prefix length per random run (default 20).
	RandomSteps int
	// ExploreDepth, when positive, additionally explores every
	// heartbeat/deliver-all schedule to this depth and checks that no
	// reachable output leaves the expected set.
	ExploreDepth int
}

func (o ConformanceOptions) withDefaults(inputLen, nodes int) ConformanceOptions {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 32 + inputLen + 4*nodes
	}
	if o.RandomRuns <= 0 {
		o.RandomRuns = 5
	}
	if o.RandomSteps <= 0 {
		o.RandomSteps = 20
	}
	return o
}

// CheckComputes verifies that the transducer network (net, t, pol,
// mod) computes exactly `want` on `input` across the configured runs.
// It returns nil when all runs agree, and a descriptive error naming
// the first failing run otherwise.
func CheckComputes(net Network, t *Transducer, pol Policy, mod Model, input, want *fact.Instance, opts ConformanceOptions) error {
	opts = opts.withDefaults(input.Len(), len(net))

	sim, err := NewSimulation(net, t, pol, mod, input)
	if err != nil {
		return err
	}
	out, err := sim.RunToQuiescence(opts.MaxRounds)
	if err != nil {
		return fmt.Errorf("round-robin run: %w", err)
	}
	if !out.Equal(want) {
		return fmt.Errorf("round-robin run produced %v, want %v", out, want)
	}

	for seed := int64(1); seed <= int64(opts.RandomRuns); seed++ {
		sim, err := NewSimulation(net, t, pol, mod, input)
		if err != nil {
			return err
		}
		out, err := sim.RunRandom(seed, opts.RandomSteps, opts.MaxRounds)
		if err != nil {
			return fmt.Errorf("random run (seed %d): %w", seed, err)
		}
		if !out.Equal(want) {
			return fmt.Errorf("random run (seed %d) produced %v, want %v", seed, out, want)
		}
	}

	if opts.ExploreDepth > 0 {
		v, err := Explore(net, t, pol, mod, input, want, opts.ExploreDepth)
		if err != nil {
			return fmt.Errorf("explore: %w", err)
		}
		if v != nil {
			return fmt.Errorf("explore: %w", v)
		}
	}
	return nil
}

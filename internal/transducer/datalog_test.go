package transducer

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// A fully declarative forwarding transducer: the four components are
// Datalog¬ programs over the visible schema (input E, message F,
// memory Seen/Sent, system relations unused).
func declarativeForwarder(t *testing.T) *Transducer {
	t.Helper()
	schema := Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 2}),
		Msg: fact.MustSchema(map[string]int{"F": 2}),
		Mem: fact.MustSchema(map[string]int{"Seen": 2, "Sent": 2}),
	}
	tr, err := DatalogTransducer(schema,
		// Qout: everything known, relabeled.
		`O(x,y) :- E(x,y).
		 O(x,y) :- F(x,y).
		 O(x,y) :- Seen(x,y).`,
		// Qins: persist deliveries, mark local facts sent.
		`Seen(x,y) :- F(x,y).
		 Sent(x,y) :- E(x,y).`,
		// Qdel: nothing.
		``,
		// Qsnd: forward unsent local facts.
		`F(x,y) :- E(x,y), !Sent(x,y).`,
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDatalogTransducerForwarder(t *testing.T) {
	tr := declarativeForwarder(t)
	net := MustNetwork("n1", "n2", "n3")
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`)
	sim, err := NewSimulation(net, tr, HashPolicy(net), Original, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(in)) {
		t.Errorf("declarative forwarder output = %v", out)
	}
	// Behavior identical to the hand-written forwarder.
	sim2, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, in)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := sim2.RunToQuiescence(20)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(out2) {
		t.Error("declarative and hand-written forwarders disagree")
	}
	if sim.Metrics.MessagesSent != sim2.Metrics.MessagesSent {
		t.Errorf("message counts differ: %d vs %d", sim.Metrics.MessagesSent, sim2.Metrics.MessagesSent)
	}
}

func TestDatalogTransducerUsesSystemRelations(t *testing.T) {
	// A declarative transducer reading Id: output the node's own id
	// paired with every locally held value.
	schema := Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 2}),
	}
	tr, err := DatalogTransducer(schema,
		`O(n,x) :- Id(n), E(x,y).`, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	sim, err := NewSimulation(net, tr, AllToNode("n1"), Original, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(n1,a)`)) {
		t.Errorf("Id-aware declarative transducer output = %v", out)
	}
}

func TestDatalogQueryErrors(t *testing.T) {
	target := fact.MustSchema(map[string]int{"O": 2})
	// Program deriving nothing in the target schema.
	p := datalog.MustParseProgram(`X(a,b) :- E(a,b).`)
	if _, err := DatalogQuery(p, target, nil); err == nil {
		t.Error("program without target relations accepted")
	}
	// Unstratifiable component program.
	wm := datalog.MustParseProgram(`O(x,y) :- E(x,y), !O(y,x).`)
	if _, err := DatalogQuery(wm, target, nil); err == nil {
		t.Error("unstratifiable transducer query accepted")
	}
}

func TestDatalogQueryRename(t *testing.T) {
	p := datalog.MustParseProgram(`Result(x,y) :- E(x,y).`)
	q, err := DatalogQuery(p, fact.MustSchema(map[string]int{"O": 2}), map[string]string{"Result": "O"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := q(fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fact.MustParseInstance(`O(a,b)`)) {
		t.Errorf("renamed output = %v", out)
	}
}

func TestDatalogTransducerParseError(t *testing.T) {
	schema := Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 2}),
	}
	if _, err := DatalogTransducer(schema, `O(x :- E(x,y).`, "", "", ""); err == nil {
		t.Error("syntax error not reported")
	}
}

package transducer

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fact"
)

// This file implements the fault-injection layer of the simulator: a
// pluggable plan sitting between send and buffer. The paper quantifies
// its Figure 2 equalities over all fair message-delivery policies;
// the plan widens the simulator's reach toward that quantifier with
// message duplication, delays, network partitions, node stalls, and
// crash-restarts — all fairness-preserving (nothing is lost forever:
// delays expire, partitions heal, crashed nodes recover with a
// rebroadcast), so every faulty run is still a run in the paper's
// sense and must converge to Q(I) for an in-class strategy.
//
// Every decision is a pure function of (Seed, clock, sender,
// recipient, fact): the plan carries no mutable state, so cloned
// simulations replay identically and schedules are reproducible from
// the seed alone.

// FaultPlan describes the faults injected into a run. The zero value
// injects nothing. Plans are immutable once installed.
type FaultPlan struct {
	// Seed drives the per-message duplication and delay coin flips.
	Seed int64
	// DupProb is the probability that a sent instance is duplicated
	// (one extra copy enqueued alongside the original).
	DupProb float64
	// DelayProb is the probability that a sent instance is held back
	// for 1..MaxDelay transitions before entering the buffer.
	DelayProb float64
	// MaxDelay bounds the random hold, in clock ticks.
	MaxDelay int
	// Partitions are network cuts; messages crossing an active cut are
	// held until the window heals.
	Partitions []Partition
	// Stalls silence nodes for a window: activations become no-ops.
	Stalls []Stall
	// Crashes schedule crash-restart events.
	Crashes []Crash
}

// Partition isolates Group from the rest of the network during the
// clock window [From, To): a message whose sender and recipient lie on
// opposite sides of the cut is held back until the partition heals.
type Partition struct {
	From, To int
	Group    []NodeID
}

// contains reports whether x is inside the partitioned group.
func (p Partition) contains(x NodeID) bool {
	for _, y := range p.Group {
		if y == x {
			return true
		}
	}
	return false
}

// Stall keeps a node from taking transitions during [From, To).
type Stall struct {
	Node     NodeID
	From, To int
}

// Crash schedules a crash-restart of Node when the clock reaches At.
type Crash struct {
	Node NodeID
	At   int
}

// roll returns a deterministic pseudo-uniform value in [0,1) for one
// decision point; kind namespaces independent decisions on the same
// message.
func (p *FaultPlan) roll(kind byte, clock int, from, to NodeID, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%c%d\x00%s\x00%s\x00%s", p.Seed, kind, clock, from, to, key)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// extraCopies returns how many duplicate copies of the message to
// enqueue (0 or 1).
func (p *FaultPlan) extraCopies(clock int, from, to NodeID, f fact.Fact) int {
	if p.DupProb <= 0 {
		return 0
	}
	if p.roll('d', clock, from, to, f.Key()) < p.DupProb {
		return 1
	}
	return 0
}

// holdFor returns how many clock ticks the message is held back: the
// maximum of the random delay draw and any active partition crossing,
// 0 for immediate buffering.
func (p *FaultPlan) holdFor(clock int, from, to NodeID, f fact.Fact) int {
	d := 0
	if p.DelayProb > 0 && p.MaxDelay > 0 &&
		p.roll('h', clock, from, to, f.Key()) < p.DelayProb {
		d = 1 + int(p.roll('l', clock, from, to, f.Key())*float64(p.MaxDelay))
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
	}
	for _, cut := range p.Partitions {
		if clock < cut.From || clock >= cut.To {
			continue
		}
		if cut.contains(from) == cut.contains(to) {
			continue
		}
		if heal := cut.To - clock; heal > d {
			d = heal
		}
	}
	return d
}

// ExtraCopies and HoldFor expose the per-message fault decisions to
// delivery layers outside the simulator. The cluster delta stream
// (internal/cluster) reuses fault plans as its network model: there
// the clock is the global log position, the sender is the router and
// the recipient a shard. Both remain pure functions of (Seed, clock,
// endpoints, fact), so faulty cluster runs replay exactly like faulty
// simulator runs.
func (p *FaultPlan) ExtraCopies(clock int, from, to NodeID, f fact.Fact) int {
	return p.extraCopies(clock, from, to, f)
}

// HoldFor is the exported form of holdFor: how many clock ticks the
// message is held back (0 = deliver now).
func (p *FaultPlan) HoldFor(clock int, from, to NodeID, f fact.Fact) int {
	return p.holdFor(clock, from, to, f)
}

// StalledAt reports whether node x is inside a stall window at the
// given clock value.
func (p *FaultPlan) StalledAt(x NodeID, clock int) bool {
	for _, st := range p.Stalls {
		if st.Node == x && clock >= st.From && clock < st.To {
			return true
		}
	}
	return false
}

// Horizon returns the first clock value at which every scheduled
// window and event of the plan lies in the past. Random delays extend
// at most MaxDelay past the last send, which the quiescence check
// already covers through TotalHeld.
func (p *FaultPlan) Horizon() int {
	h := 0
	for _, cut := range p.Partitions {
		if cut.To > h {
			h = cut.To
		}
	}
	for _, st := range p.Stalls {
		if st.To > h {
			h = st.To
		}
	}
	for _, c := range p.Crashes {
		if c.At+1 > h {
			h = c.At + 1
		}
	}
	return h
}

// Empty reports whether the plan injects no fault at all.
func (p *FaultPlan) Empty() bool {
	return p.DupProb <= 0 && p.DelayProb <= 0 &&
		len(p.Partitions) == 0 && len(p.Stalls) == 0 && len(p.Crashes) == 0
}

// String renders the plan compactly, in the same syntax ParseFaultPlan
// accepts.
func (p *FaultPlan) String() string {
	var parts []string
	if p.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", p.DupProb))
	}
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%d", p.DelayProb, p.MaxDelay))
	}
	for _, st := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall=%s@%d-%d", st.Node, st.From, st.To))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash=%s@%d", c.Node, c.At))
	}
	for _, cut := range p.Partitions {
		group := make([]string, len(cut.Group))
		for i, x := range cut.Group {
			group[i] = string(x)
		}
		parts = append(parts, fmt.Sprintf("part=%d-%d:%s", cut.From, cut.To, strings.Join(group, "|")))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses the CLI fault specification: a comma-separated
// list of
//
//	dup=P            duplicate each message with probability P
//	delay=P:N        hold each message with probability P for 1..N ticks
//	stall=x@F-T      stall node x during clock window [F, T)
//	crash=x@A        crash-restart node x at clock A
//	part=F-T:x|y|..  partition {x,y,..} from the rest during [F, T)
//
// The seed parameter pins the plan's coin flips.
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	p := &FaultPlan{Seed: seed}
	if strings.TrimSpace(spec) == "" || spec == "none" {
		return p, nil
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf("transducer: fault item %q: want key=value", item)
		}
		switch key {
		case "dup":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("transducer: dup probability %q: %v", val, err)
			}
			p.DupProb = f
		case "delay":
			prob, max, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("transducer: delay %q: want P:N", val)
			}
			f, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return nil, fmt.Errorf("transducer: delay probability %q: %v", prob, err)
			}
			n, err := strconv.Atoi(max)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("transducer: delay bound %q: want a positive integer", max)
			}
			p.DelayProb, p.MaxDelay = f, n
		case "stall":
			node, win, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("transducer: stall %q: want node@from-to", val)
			}
			from, to, err := parseWindow(win)
			if err != nil {
				return nil, err
			}
			p.Stalls = append(p.Stalls, Stall{Node: NodeID(node), From: from, To: to})
		case "crash":
			node, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("transducer: crash %q: want node@clock", val)
			}
			n, err := strconv.Atoi(at)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("transducer: crash clock %q: want a positive integer", at)
			}
			p.Crashes = append(p.Crashes, Crash{Node: NodeID(node), At: n})
		case "part":
			win, nodes, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("transducer: partition %q: want from-to:x|y", val)
			}
			from, to, err := parseWindow(win)
			if err != nil {
				return nil, err
			}
			var group []NodeID
			for _, n := range strings.Split(nodes, "|") {
				group = append(group, NodeID(n))
			}
			p.Partitions = append(p.Partitions, Partition{From: from, To: to, Group: group})
		default:
			return nil, fmt.Errorf("transducer: unknown fault kind %q", key)
		}
	}
	return p, nil
}

// parseWindow parses "from-to" into a half-open clock window.
func parseWindow(s string) (from, to int, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("transducer: window %q: want from-to", s)
	}
	from, err1 := strconv.Atoi(a)
	to, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || from <= 0 || to <= from {
		return 0, 0, fmt.Errorf("transducer: window %q: want 0 < from < to", s)
	}
	return from, to, nil
}

// FaultConfig bounds the faults RandomFaultPlan may generate. The zero
// value generates the empty plan (pure schedule randomization).
type FaultConfig struct {
	// DupProb and DelayProb are passed through to the plan.
	DupProb, DelayProb float64
	// MaxDelay bounds random holds, in clock ticks.
	MaxDelay int
	// Stalls, Crashes and Partitions are how many windows/events of
	// each kind to schedule.
	Stalls, Crashes, Partitions int
	// Window is the clock horizon events are scheduled within
	// (default 30).
	Window int
}

// DefaultFaultConfig is a moderate mix of every fault kind, sized for
// the small networks the experiment matrix runs on.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		DupProb:    0.20,
		DelayProb:  0.25,
		MaxDelay:   6,
		Stalls:     1,
		Crashes:    1,
		Partitions: 1,
		Window:     30,
	}
}

// RandomFaultPlan derives a concrete plan from a seed: stall windows,
// crash events and partition cuts are placed pseudo-randomly within
// the config's clock window. The same (net, seed, cfg) always yields
// the same plan, making whole fault schedules reproducible from one
// integer.
func RandomFaultPlan(net Network, seed int64, cfg FaultConfig) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &FaultPlan{
		Seed:      seed,
		DupProb:   cfg.DupProb,
		DelayProb: cfg.DelayProb,
		MaxDelay:  cfg.MaxDelay,
	}
	win := cfg.Window
	if win <= 0 {
		win = 30
	}
	for i := 0; i < cfg.Stalls; i++ {
		from := 1 + rng.Intn(win)
		p.Stalls = append(p.Stalls, Stall{
			Node: net[rng.Intn(len(net))],
			From: from,
			To:   from + 1 + rng.Intn(win/2+1),
		})
	}
	for i := 0; i < cfg.Crashes; i++ {
		p.Crashes = append(p.Crashes, Crash{
			Node: net[rng.Intn(len(net))],
			At:   1 + rng.Intn(win),
		})
	}
	if len(net) > 1 {
		for i := 0; i < cfg.Partitions; i++ {
			group := make(map[NodeID]bool)
			for _, x := range net {
				if rng.Intn(2) == 0 {
					group[x] = true
				}
			}
			if len(group) == 0 {
				group[net[rng.Intn(len(net))]] = true
			} else if len(group) == len(net) {
				delete(group, net[rng.Intn(len(net))])
			}
			members := make([]NodeID, 0, len(group))
			for x := range group {
				members = append(members, x)
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			from := 1 + rng.Intn(win)
			p.Partitions = append(p.Partitions, Partition{
				From:  from,
				To:    from + 1 + rng.Intn(win/2+1),
				Group: members,
			})
		}
	}
	return p
}

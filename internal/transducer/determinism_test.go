package transducer

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fact"
)

// Regression tests for seeded-run reproducibility: takeRandom and
// DeliverRandom used to draw from the rng while ranging over Go maps,
// so map-iteration order decided which facts each coin flip applied
// to, and two runs with the same seed could diverge. The buffer is now
// consumed in sorted key order; same seed must mean byte-identical
// traces and identical outputs.

// bigGraphIn is large enough that map-iteration nondeterminism is
// practically certain to surface within a few random steps.
func bigGraphIn() *fact.Instance {
	in := fact.NewInstance()
	for i := 0; i < 20; i++ {
		in.Add(fact.New("E",
			fact.Value(fmt.Sprintf("v%d", i)),
			fact.Value(fmt.Sprintf("v%d", (i+1)%20))))
	}
	return in
}

func TestTakeRandomDeterministic(t *testing.T) {
	build := func() *multiset {
		m := newMultiset()
		for i := 0; i < 30; i++ {
			m.add(fact.New("F", fact.Value(fmt.Sprintf("a%d", i)), "b"), 1+i%3)
		}
		return m
	}
	for seed := int64(0); seed < 20; seed++ {
		m1, m2 := build(), build()
		out1, n1 := m1.takeRandom(rand.New(rand.NewSource(seed)))
		out2, n2 := m2.takeRandom(rand.New(rand.NewSource(seed)))
		if !out1.Equal(out2) || n1 != n2 {
			t.Fatalf("seed %d: takeRandom diverged: %v (%d) vs %v (%d)", seed, out1, n1, out2, n2)
		}
		if m1.size() != m2.size() {
			t.Fatalf("seed %d: residual buffers diverged: %d vs %d", seed, m1.size(), m2.size())
		}
	}
}

// runSeeded performs one full seeded run and returns its trace and
// final state.
func runSeeded(t *testing.T, seed int64) (trace []byte, out *fact.Instance, metrics Metrics) {
	t.Helper()
	net := MustNetwork("n1", "n2", "n3")
	sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, bigGraphIn())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sim.TraceTo(&buf)
	res, err := sim.RunRandom(seed, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res, sim.Metrics
}

func TestRunRandomSameSeedIdenticalTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		trace1, out1, m1 := runSeeded(t, seed)
		trace2, out2, m2 := runSeeded(t, seed)
		if !bytes.Equal(trace1, trace2) {
			t.Fatalf("seed %d: traces differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, trace1, trace2)
		}
		if !out1.Equal(out2) {
			t.Fatalf("seed %d: outputs differ: %v vs %v", seed, out1, out2)
		}
		if m1 != m2 {
			t.Fatalf("seed %d: metrics differ: %+v vs %+v", seed, m1, m2)
		}
	}
}

// Different seeds should explore different schedules (not a soundness
// requirement, but a canary against accidentally ignoring the seed).
func TestRunRandomSeedsDiffer(t *testing.T) {
	traces := make(map[string]int64)
	for seed := int64(1); seed <= 8; seed++ {
		trace, _, _ := runSeeded(t, seed)
		if prev, dup := traces[string(trace)]; dup {
			t.Logf("seeds %d and %d produced identical traces (possible but suspicious)", prev, seed)
		}
		traces[string(trace)] = seed
	}
	if len(traces) < 2 {
		t.Fatalf("all %d seeds produced the same trace; seed is being ignored", 8)
	}
}

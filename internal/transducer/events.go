package transducer

import (
	"fmt"

	"repro/internal/obs"
)

// legacyTraceRender renders the simulation's typed events in the
// original text trace format, byte for byte. TraceTo installs it so
// pre-existing consumers (and the golden expectations in trace_test.go)
// keep working on top of the structured pipeline. Kinds that had no
// text form — holds, quiescence, explorer events — are dropped.
func legacyTraceRender(buf []byte, e *obs.Event) []byte {
	switch e.Kind {
	case obs.EvTransition:
		return append(buf, fmt.Sprintf("[%04d] %-9s at %-4s delivered=%d sent=%d changed=%-5v out=%d msgs=%s\n",
			e.Int("step"), e.Str("kind"), e.Str("node"), e.Int("delivered"),
			e.Int("sent"), e.Bool("changed"), e.Int("out"), e.Str("msgs"))...)
	case obs.EvStall:
		return append(buf, fmt.Sprintf("[%04d] stalled   at %-4s (window pending)\n",
			e.Int("step"), e.Str("node"))...)
	case obs.EvCrash:
		return append(buf, fmt.Sprintf("[%04d] crash     at %-4s dropped=%d rebuffered=%d\n",
			e.Int("step"), e.Str("node"), e.Int("dropped"), e.Int("rebuffered"))...)
	}
	return buf
}

package transducer

import (
	"fmt"
	"io"

	"repro/internal/fact"
	"repro/internal/obs"
)

// legacyTraceRender renders the simulation's typed events in the
// original text trace format, byte for byte. TraceTo installs it so
// pre-existing consumers (and the golden expectations in trace_test.go)
// keep working on top of the structured pipeline. Kinds that had no
// text form — holds, quiescence, explorer events — are dropped.
func legacyTraceRender(buf []byte, e *obs.Event) []byte {
	switch e.Kind {
	case obs.EvTransition:
		return append(buf, fmt.Sprintf("[%04d] %-9s at %-4s delivered=%d sent=%d changed=%-5v out=%d msgs=%s\n",
			e.Int("step"), e.Str("kind"), e.Str("node"), e.Int("delivered"),
			e.Int("sent"), e.Bool("changed"), e.Int("out"), e.Str("msgs"))...)
	case obs.EvStall:
		return append(buf, fmt.Sprintf("[%04d] stalled   at %-4s (window pending)\n",
			e.Int("step"), e.Str("node"))...)
	case obs.EvCrash:
		return append(buf, fmt.Sprintf("[%04d] crash     at %-4s dropped=%d rebuffered=%d\n",
			e.Int("step"), e.Str("node"), e.Int("dropped"), e.Int("rebuffered"))...)
	}
	return buf
}

// NewLegacyTraceSink returns a sink rendering events through the
// legacy text trace format — what TraceTo installs. Exported so the
// event-driven engine (internal/netsim) offers the identical adapter.
func NewLegacyTraceSink(w io.Writer) *obs.Sink {
	return obs.NewSinkFunc(w, legacyTraceRender)
}

// The Emit* helpers below are the single construction sites for the
// sim.* event kinds: field names, order and types are part of the
// byte-stable trace format, so every scheduler (the tick Simulation
// here, the event-driven engine in internal/netsim) must emit through
// them rather than build the field lists itself. All are no-ops on a
// nil sink, keeping the disabled-instrumentation path allocation-free.

// EmitTransition emits one sim.transition event. The delivered set m
// is part of the event (sorted rendering) so a trace is a complete,
// comparable record of the run: two runs with the same seed must
// produce byte-identical streams.
func EmitTransition(sink *obs.Sink, step, clock int, x NodeID, m *fact.Instance, sent int, changed bool, out, buffered, held int) {
	if sink == nil {
		return
	}
	kind := "deliver"
	if m.Empty() {
		kind = "heartbeat"
	}
	sink.Emit(obs.EvTransition,
		obs.F("step", step),
		obs.F("clock", clock),
		obs.F("node", string(x)),
		obs.F("kind", kind),
		obs.F("delivered", m.Len()),
		obs.F("sent", sent),
		obs.F("changed", changed),
		obs.F("out", out),
		obs.F("buffered", buffered),
		obs.F("held", held),
		obs.F("msgs", m.String()))
}

// EmitStall emits one sim.stall event (an activation swallowed by a
// stall window).
func EmitStall(sink *obs.Sink, step, clock int, x NodeID) {
	if sink == nil {
		return
	}
	sink.Emit(obs.EvStall,
		obs.F("step", step),
		obs.F("clock", clock),
		obs.F("node", string(x)))
}

// EmitCrash emits one sim.crash event.
func EmitCrash(sink *obs.Sink, step, clock int, x NodeID, dropped, rebuffered int) {
	if sink == nil {
		return
	}
	sink.Emit(obs.EvCrash,
		obs.F("step", step),
		obs.F("clock", clock),
		obs.F("node", string(x)),
		obs.F("dropped", dropped),
		obs.F("rebuffered", rebuffered))
}

// EmitHold emits one sim.hold event (a message the fault plan held
// back).
func EmitHold(sink *obs.Sink, clock int, from, to NodeID, f fact.Fact, copies, release int) {
	if sink == nil {
		return
	}
	sink.Emit(obs.EvHold,
		obs.F("clock", clock),
		obs.F("from", string(from)),
		obs.F("to", string(to)),
		obs.F("fact", f),
		obs.F("copies", copies),
		obs.F("release", release))
}

// EmitQuiesce emits one sim.quiesce event.
func EmitQuiesce(sink *obs.Sink, clock, rounds, out int) {
	if sink == nil {
		return
	}
	sink.Emit(obs.EvQuiesce,
		obs.F("clock", clock),
		obs.F("rounds", rounds),
		obs.F("out", out))
}

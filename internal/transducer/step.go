package transducer

import (
	"repro/internal/fact"
)

// Stepper is the engine-independent transition core of the relational
// transducer semantics (Section 4.1.3): given an active node's fixed
// local fragment, its mutable state and the delivered message set, it
// evaluates the four queries against the visible data plus the model's
// system facts, applies the insert/delete cancellation semantics to
// the state in place, and returns the send set for the caller to
// route. Both schedulers share this core — the tick-based Simulation
// in this package and the event-driven engine in internal/netsim — so
// a transition computes exactly the same state delta and send set no
// matter which scheduler activated the node.
type Stepper struct {
	Net   Network
	Trans *Transducer
	Pol   Policy
	Mod   Model
}

// StepResult reports one transition's effects. Sent is the send set
// (for the scheduler to route and log); Changed reports whether the
// node's state changed; OutNew lists the output facts added to the
// state by this transition, in evaluation order — the material for
// incremental output unions and per-step soundness checks.
type StepResult struct {
	Sent    *fact.Instance
	Changed bool
	OutNew  []fact.Fact
}

// SystemFacts builds the set S of system facts shown to active node x
// given its visible data J, per the transition semantics of
// Section 4.1.3 (and its All-free modification from Section 4.3).
func (sp *Stepper) SystemFacts(x NodeID, j *fact.Instance) *fact.Instance {
	sys := fact.NewInstance()
	if sp.Mod.ShowId {
		sys.Add(fact.New(RelId, x))
	}
	if !sp.Mod.ShowAll && !sp.Mod.ShowMyAdom && !sp.Mod.ShowPolicy {
		// Oblivious fast path: no remaining system relation depends on
		// the active domain, so skip the adom scan entirely. On large
		// networks this is what makes an idle node's transition cheap.
		return sys
	}
	// The base A: N ∪ adom(J) with All, {x} ∪ adom(J) without.
	a := j.ADom()
	if sp.Mod.ShowAll {
		for _, y := range sp.Net {
			a.Add(y)
			sys.Add(fact.New(RelAll, y))
		}
	} else {
		a.Add(x)
	}
	if sp.Mod.ShowMyAdom {
		for v := range a {
			sys.Add(fact.New(RelMyAdom, v))
		}
	}
	if sp.Mod.ShowPolicy {
		values := a.Sorted()
		for rel, ar := range sp.Trans.Schema.In {
			for _, tup := range enumerateTuples(values, ar) {
				f := fact.FromTuple(rel, tup)
				if Responsible(sp.Pol, x, f) {
					sys.Add(fact.New(PolicyRel(rel), tup...))
				}
			}
		}
	}
	return sys
}

// Step performs one transition of node x: it evaluates Out/Ins/Del/Snd
// on local ∪ state ∪ m ∪ systemFacts and mutates state in place —
// outputs accumulate, memory applies ins/del with the cancellation
// semantics of Section 4.1.3. The send set is returned unrouted; the
// caller decides recipients, fault treatment and logging. Changed does
// NOT account for sends (schedulers fold that in after routing).
func (sp *Stepper) Step(x NodeID, local, state, m *fact.Instance) (StepResult, error) {
	t := sp.Trans
	j := local.Union(state).Union(m)
	d := j.Union(sp.SystemFacts(x, j))

	out, err := runQuery(t.Out, d, t.Schema.Out, "output")
	if err != nil {
		return StepResult{}, err
	}
	ins, err := runQuery(t.Ins, d, t.Schema.Mem, "insertion")
	if err != nil {
		return StepResult{}, err
	}
	del, err := runQuery(t.Del, d, t.Schema.Mem, "deletion")
	if err != nil {
		return StepResult{}, err
	}
	snd, err := runQuery(t.Snd, d, t.Schema.Msg, "send")
	if err != nil {
		return StepResult{}, err
	}

	res := StepResult{Sent: snd}
	for _, f := range out.Facts() {
		if state.Add(f) {
			res.Changed = true
			res.OutNew = append(res.OutNew, f)
		}
	}
	insOnly := ins.Minus(del)
	delOnly := del.Minus(ins)
	for _, f := range insOnly.Facts() {
		if state.Add(f) {
			res.Changed = true
		}
	}
	for _, f := range delOnly.Facts() {
		if state.Remove(f) {
			res.Changed = true
		}
	}
	return res, nil
}

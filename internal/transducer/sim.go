package transducer

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/fact"
	"repro/internal/obs"
)

// multiset is a message buffer: facts with multiplicities
// (Section 4.1.3 uses multisets because the same message can be sent
// several times and float around simultaneously).
type multiset struct {
	counts map[string]int
	facts  map[string]fact.Fact
}

func newMultiset() *multiset {
	return &multiset{counts: make(map[string]int), facts: make(map[string]fact.Fact)}
}

func (m *multiset) add(f fact.Fact, n int) {
	k := f.Key()
	m.counts[k] += n
	m.facts[k] = f
}

func (m *multiset) size() int {
	total := 0
	for _, c := range m.counts {
		total += c
	}
	return total
}

func (m *multiset) empty() bool { return len(m.counts) == 0 }

// sortedKeys returns the buffer's fact keys in sorted order. Every
// iteration that consumes randomness (or feeds observable output) must
// walk the buffer in this order: ranging over the Go map directly
// would let map-iteration order decide which fact each coin flip
// applies to, breaking same-seed reproducibility.
func (m *multiset) sortedKeys() []string {
	keys := make([]string, 0, len(m.facts))
	for k := range m.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// takeAll removes and returns the whole buffer collapsed to a set,
// plus the number of message instances delivered.
func (m *multiset) takeAll() (*fact.Instance, int) {
	out := fact.NewInstance()
	delivered := 0
	for k, f := range m.facts {
		out.Add(f)
		delivered += m.counts[k]
		delete(m.counts, k)
		delete(m.facts, k)
	}
	return out, delivered
}

// takeRandom removes a random submultiset (each copy kept or delivered
// with probability 1/2) and returns the delivered facts as a set. The
// buffer is consumed in sorted key order so that the rng draws are
// reproducible across runs.
func (m *multiset) takeRandom(rng *rand.Rand) (*fact.Instance, int) {
	out := fact.NewInstance()
	delivered := 0
	for _, k := range m.sortedKeys() {
		f := m.facts[k]
		c := m.counts[k]
		take := 0
		for n := 0; n < c; n++ {
			if rng.Intn(2) == 0 {
				take++
			}
		}
		if take == 0 {
			continue
		}
		delivered += take
		out.Add(f)
		if take == c {
			delete(m.counts, k)
			delete(m.facts, k)
		} else {
			m.counts[k] = c - take
		}
	}
	return out, delivered
}

// Metrics accumulates counters over a simulation, used by the
// benchmark harness to compare evaluation strategies and by the
// fault-injection tests to account for every message instance. The
// conservation invariant, with or without faults, is
//
//	MessagesSent = MessagesDelivered + buffered + held + MessagesDropped
//
// where buffered and held are the live totals reported by
// TotalBuffered and TotalHeld.
type Metrics struct {
	// Transitions counts all transitions, including heartbeats.
	Transitions int
	// Heartbeats counts transitions that delivered no messages.
	Heartbeats int
	// MessagesSent counts (fact, recipient) pairs enqueued, including
	// fault-injected duplicates and crash-recovery retransmissions.
	MessagesSent int
	// MessagesDelivered counts message instances taken from buffers.
	MessagesDelivered int
	// MessagesDuplicated counts extra copies created by the fault plan.
	MessagesDuplicated int
	// MessagesDelayed counts instances the fault plan held back.
	MessagesDelayed int
	// MessagesDropped counts in-flight instances lost to crashes.
	MessagesDropped int
	// MessagesRetransmitted counts instances rebuffered from send logs
	// when a crashed node restarts.
	MessagesRetransmitted int
	// Crashes counts crash-restart events applied.
	Crashes int
	// StalledSteps counts activations swallowed by a stall window.
	StalledSteps int
}

// Merge adds o's counters into m, field by field. The schedule
// explorer folds every explored schedule's Metrics into one total this
// way.
func (m *Metrics) Merge(o Metrics) {
	m.Transitions += o.Transitions
	m.Heartbeats += o.Heartbeats
	m.MessagesSent += o.MessagesSent
	m.MessagesDelivered += o.MessagesDelivered
	m.MessagesDuplicated += o.MessagesDuplicated
	m.MessagesDelayed += o.MessagesDelayed
	m.MessagesDropped += o.MessagesDropped
	m.MessagesRetransmitted += o.MessagesRetransmitted
	m.Crashes += o.Crashes
	m.StalledSteps += o.StalledSteps
}

// Publish adds the counters into the registry under the sim.*
// vocabulary of internal/obs names.go. Safe on a nil registry.
func (m Metrics) Publish(reg *obs.Registry) {
	reg.Counter(obs.SimTransitions).Add(int64(m.Transitions))
	reg.Counter(obs.SimHeartbeats).Add(int64(m.Heartbeats))
	reg.Counter(obs.SimSent).Add(int64(m.MessagesSent))
	reg.Counter(obs.SimDelivered).Add(int64(m.MessagesDelivered))
	reg.Counter(obs.SimDuplicated).Add(int64(m.MessagesDuplicated))
	reg.Counter(obs.SimDelayed).Add(int64(m.MessagesDelayed))
	reg.Counter(obs.SimDropped).Add(int64(m.MessagesDropped))
	reg.Counter(obs.SimRetransmitted).Add(int64(m.MessagesRetransmitted))
	reg.Counter(obs.SimCrashes).Add(int64(m.Crashes))
	reg.Counter(obs.SimStalledSteps).Add(int64(m.StalledSteps))
}

// heldMsg is a message instance the fault plan is holding back: it
// enters the recipient's buffer once the clock reaches release.
type heldMsg struct {
	release int
	f       fact.Fact
	n       int
}

// Simulation is a transducer network (N, Υ, Π, P) running on one
// input: per-node states, message buffers, and the fixed local input
// fragments dist_P(I).
type Simulation struct {
	Net   Network
	Trans *Transducer
	Pol   Policy
	Mod   Model

	input *fact.Instance
	local map[NodeID]*fact.Instance
	state map[NodeID]*fact.Instance
	buf   map[NodeID]*multiset

	// Fault injection (nil faults = the faithful Section 4.1.3
	// semantics). clock counts transition attempts and drives the
	// plan's windows; held queues delayed messages per recipient;
	// sentLog records the set of facts each node has broadcast, the
	// material for crash-recovery rebroadcast.
	faults  *FaultPlan
	clock   int
	held    map[NodeID][]heldMsg
	sentLog map[NodeID]*fact.Instance

	// Metrics accumulates counters; reset freely between phases.
	Metrics Metrics

	// sink, when set, receives one typed event per transition, stall,
	// crash, hold and quiescence (the sim.* kinds of internal/obs).
	sink *obs.Sink
}

// Observe attaches a structured event sink to the simulation: every
// transition, stall, crash, message hold and quiescence emits one
// typed event (the sim.* kinds of internal/obs names.go). Events are a
// deterministic function of the schedule, so equal-seed runs produce
// byte-identical streams. Pass nil to disable.
func (s *Simulation) Observe(sink *obs.Sink) { s.sink = sink }

// TraceTo makes the simulation log one line per transition to w:
// the active node, how many message instances were delivered, whether
// the state changed, and the node's output size. Pass nil to disable.
//
// TraceTo is the compatibility adapter over Observe: the same typed
// events, rendered through the legacy text format (structured-only
// kinds are dropped).
func (s *Simulation) TraceTo(w io.Writer) {
	if w == nil {
		s.sink = nil
		return
	}
	s.sink = obs.NewSinkFunc(w, legacyTraceRender)
}

// NewSimulation validates the components and builds the start
// configuration (all states and buffers empty).
func NewSimulation(net Network, t *Transducer, p Policy, mod Model, input *fact.Instance) (*Simulation, error) {
	if len(net) == 0 {
		return nil, fmt.Errorf("transducer: empty network")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var bad *fact.Fact
	input.Each(func(f fact.Fact) bool {
		if !t.Schema.In.Covers(f) {
			g := f
			bad = &g
			return false
		}
		return true
	})
	if bad != nil {
		return nil, fmt.Errorf("transducer: input fact %v not over input schema %v", *bad, t.Schema.In)
	}
	s := &Simulation{
		Net:   net,
		Trans: t,
		Pol:   p,
		Mod:   mod,
		input: input.Clone(),
		local: Dist(p, net, input),
		state: make(map[NodeID]*fact.Instance, len(net)),
		buf:   make(map[NodeID]*multiset, len(net)),
	}
	for _, x := range net {
		s.state[x] = fact.NewInstance()
		s.buf[x] = newMultiset()
	}
	s.held = make(map[NodeID][]heldMsg, len(net))
	s.sentLog = make(map[NodeID]*fact.Instance, len(net))
	for _, x := range net {
		s.sentLog[x] = fact.NewInstance()
	}
	return s, nil
}

// SetFaults installs a fault plan between send and buffer. Pass nil to
// restore the faithful semantics. Install the plan before stepping:
// its decisions are functions of the transition clock, so a plan
// attached mid-run sees only the remaining transitions.
func (s *Simulation) SetFaults(p *FaultPlan) { s.faults = p }

// Faults returns the installed fault plan, if any.
func (s *Simulation) Faults() *FaultPlan { return s.faults }

// Clock returns the number of transition attempts so far (including
// stalled activations). The fault plan's windows are expressed on this
// clock.
func (s *Simulation) Clock() int { return s.clock }

// Clone returns an independent copy of the simulation: states and
// buffers are deep-copied, so stepping the clone leaves the original
// untouched. Used by the exhaustive run explorer.
func (s *Simulation) Clone() *Simulation {
	c := &Simulation{
		Net:     s.Net,
		Trans:   s.Trans,
		Pol:     s.Pol,
		Mod:     s.Mod,
		input:   s.input,
		local:   s.local, // fragments are never mutated after NewSimulation
		state:   make(map[NodeID]*fact.Instance, len(s.state)),
		buf:     make(map[NodeID]*multiset, len(s.buf)),
		faults:  s.faults, // plans are immutable and decision-pure
		clock:   s.clock,
		held:    make(map[NodeID][]heldMsg, len(s.held)),
		sentLog: make(map[NodeID]*fact.Instance, len(s.sentLog)),
		Metrics: s.Metrics,
	}
	for x, st := range s.state {
		c.state[x] = st.Clone()
	}
	for x, b := range s.buf {
		nb := newMultiset()
		for k, f := range b.facts {
			nb.facts[k] = f
			nb.counts[k] = b.counts[k]
		}
		c.buf[x] = nb
	}
	for x, q := range s.held {
		c.held[x] = append([]heldMsg(nil), q...)
	}
	for x, log := range s.sentLog {
		c.sentLog[x] = log.Clone()
	}
	return c
}

// LocalInput returns node x's input fragment dist_P(I)(x).
func (s *Simulation) LocalInput(x NodeID) *fact.Instance { return s.local[x].Clone() }

// State returns a copy of node x's current state (output ∪ memory).
func (s *Simulation) State(x NodeID) *fact.Instance { return s.state[x].Clone() }

// Buffered returns the number of message instances waiting at node x.
func (s *Simulation) Buffered(x NodeID) int { return s.buf[x].size() }

// TotalBuffered returns the number of message instances in all buffers.
func (s *Simulation) TotalBuffered() int {
	total := 0
	for _, b := range s.buf {
		total += b.size()
	}
	return total
}

// TotalHeld returns the number of message instances the fault plan is
// currently holding back (delays and unhealed partitions).
func (s *Simulation) TotalHeld() int {
	total := 0
	for _, q := range s.held {
		for _, h := range q {
			total += h.n
		}
	}
	return total
}

// begin opens one transition attempt: the clock advances, scheduled
// crashes fire, expired holds drain into their buffers, and the active
// node's stall status is reported. A stalled activation is a no-op —
// the node performs no transition at all during its window.
func (s *Simulation) begin(x NodeID) (stalled bool) {
	s.clock++
	if s.faults == nil {
		return false
	}
	for _, c := range s.faults.Crashes {
		if c.At == s.clock {
			s.crash(c.Node)
		}
	}
	s.releaseHeld()
	if s.faults.StalledAt(x, s.clock) {
		s.Metrics.StalledSteps++
		EmitStall(s.sink, s.Metrics.Transitions, s.clock, x)
		return true
	}
	return false
}

// releaseHeld moves every held message whose hold expired into its
// recipient's buffer.
func (s *Simulation) releaseHeld() {
	for _, x := range s.Net {
		q := s.held[x]
		if len(q) == 0 {
			continue
		}
		keep := q[:0]
		for _, h := range q {
			if h.release <= s.clock {
				s.buf[x].add(h.f, h.n)
			} else {
				keep = append(keep, h)
			}
		}
		s.held[x] = keep
	}
}

// crash applies a crash-restart of node x: volatile state — memory,
// outputs, buffered and held messages — is dropped, while the durable
// local input fragment survives. Recovery rebroadcast then refills x's
// buffer with every fact the other nodes have ever sent (their send
// logs), so no message is permanently lost and fairness is preserved.
// Dropped in-flight instances are counted in MessagesDropped so the
// conservation invariant stays checkable.
func (s *Simulation) crash(x NodeID) {
	if !s.Net.Has(x) {
		return
	}
	dropped := s.buf[x].size()
	for _, h := range s.held[x] {
		dropped += h.n
	}
	s.Metrics.MessagesDropped += dropped
	s.state[x] = fact.NewInstance()
	s.buf[x] = newMultiset()
	s.held[x] = nil
	for _, y := range s.Net {
		if y == x {
			continue
		}
		for _, f := range s.sentLog[y].Facts() {
			s.buf[x].add(f, 1)
			s.Metrics.MessagesSent++
			s.Metrics.MessagesRetransmitted++
		}
	}
	s.Metrics.Crashes++
	EmitCrash(s.sink, s.Metrics.Transitions, s.clock, x, dropped, s.buf[x].size())
}

// send routes one (fact, recipient) pair through the fault plan: the
// instance may be duplicated and may be held back (random delay or an
// active partition) before reaching the buffer.
func (s *Simulation) send(from, to NodeID, f fact.Fact) {
	copies, delay := 1, 0
	if s.faults != nil {
		copies += s.faults.extraCopies(s.clock, from, to, f)
		delay = s.faults.holdFor(s.clock, from, to, f)
	}
	s.Metrics.MessagesSent += copies
	s.Metrics.MessagesDuplicated += copies - 1
	if delay > 0 {
		s.held[to] = append(s.held[to], heldMsg{release: s.clock + delay, f: f, n: copies})
		s.Metrics.MessagesDelayed += copies
		EmitHold(s.sink, s.clock, from, to, f, copies, s.clock+delay)
	} else {
		s.buf[to].add(f, copies)
	}
}

// Output returns out(R) so far: the union over all nodes of their
// output facts.
func (s *Simulation) Output() *fact.Instance {
	out := fact.NewInstance()
	for _, x := range s.Net {
		out.AddAll(s.state[x].Restrict(s.Trans.Schema.Out))
	}
	return out
}

// transition performs one transition of the active node x with the
// delivered message set m (already removed from the buffer). The
// query evaluation and state update live in the scheduler-independent
// Stepper (step.go); this wrapper adds the tick scheduler's concerns —
// broadcast routing through the fault plan, the crash-recovery send
// log, metrics and the trace event. It reports whether the node's
// state changed or any message was sent.
func (s *Simulation) transition(x NodeID, m *fact.Instance) (changed bool, err error) {
	sp := Stepper{Net: s.Net, Trans: s.Trans, Pol: s.Pol, Mod: s.Mod}
	res, err := sp.Step(x, s.local[x], s.state[x], m)
	if err != nil {
		return false, err
	}
	changed = res.Changed
	snd := res.Sent

	// Broadcast sent facts to every other node (through the fault
	// plan, when one is installed) and log them for crash recovery.
	if !snd.Empty() {
		for _, y := range s.Net {
			if y == x {
				continue
			}
			for _, f := range snd.Facts() {
				s.send(x, y, f)
			}
			changed = true
		}
		for _, f := range snd.Facts() {
			s.sentLog[x].Add(f)
		}
	}

	s.Metrics.Transitions++
	if m.Empty() {
		s.Metrics.Heartbeats++
	}
	if s.sink != nil {
		held := 0
		for _, h := range s.held[x] {
			held += h.n
		}
		EmitTransition(s.sink, s.Metrics.Transitions, s.clock, x, m, snd.Len(), changed,
			s.state[x].Restrict(s.Trans.Schema.Out).Len(), s.buf[x].size(), held)
	}
	return changed, nil
}

// Heartbeat performs a heartbeat transition of x: no messages are
// delivered (messages may still be sent).
func (s *Simulation) Heartbeat(x NodeID) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("transducer: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, fact.NewInstance())
}

// Deliver performs a transition of x delivering its entire buffer.
func (s *Simulation) Deliver(x NodeID) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("transducer: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	m, n := s.buf[x].takeAll()
	s.Metrics.MessagesDelivered += n
	return s.transition(x, m)
}

// takeBatch removes from x's buffer every fact selected by keep (all
// copies of each) and returns the batch as a set. The buffer is walked
// in sorted key order so a stateful keep sees a reproducible sequence.
func (s *Simulation) takeBatch(x NodeID, keep func(fact.Fact) bool) *fact.Instance {
	b := s.buf[x]
	m := fact.NewInstance()
	for _, k := range b.sortedKeys() {
		f := b.facts[k]
		if !keep(f) {
			continue
		}
		s.Metrics.MessagesDelivered += b.counts[k]
		m.Add(f)
		delete(b.counts, k)
		delete(b.facts, k)
	}
	return m
}

// DeliverWhere performs a transition of x delivering exactly the
// buffered facts satisfying pred (all copies of each). Runs are free
// to deliver any submultiset, so this models an adversarial but fair
// scheduler; tests use it to open race windows deterministically.
func (s *Simulation) DeliverWhere(x NodeID, pred func(fact.Fact) bool) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("transducer: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, s.takeBatch(x, pred))
}

// DeliverBatch performs a transition of x delivering exactly the
// planned batch: every buffered fact listed in batch is delivered with
// all its copies; listed facts not currently buffered are ignored.
// This is the planned-delivery primitive the schedule explorer builds
// its adversarial schedules from.
func (s *Simulation) DeliverBatch(x NodeID, batch *fact.Instance) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("transducer: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, s.takeBatch(x, batch.Has))
}

// DeliverRandom performs a transition of x delivering a random
// submultiset of its buffer.
func (s *Simulation) DeliverRandom(x NodeID, rng *rand.Rand) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("transducer: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	m, n := s.buf[x].takeRandom(rng)
	s.Metrics.MessagesDelivered += n
	return s.transition(x, m)
}

// ErrNoQuiescence is wrapped by run drivers when the bound is
// exhausted before the network stabilizes.
var ErrNoQuiescence = fmt.Errorf("transducer: network did not quiesce within the round bound")

// RunToQuiescence activates the nodes round-robin, delivering full
// buffers (a fair run), until a full round changes no state, sends no
// message, and leaves every buffer empty. It returns the network
// output out(R). Transducers whose runs do not stabilize within
// maxRounds yield ErrNoQuiescence.
func (s *Simulation) RunToQuiescence(maxRounds int) (*fact.Instance, error) {
	for round := 0; round < maxRounds; round++ {
		roundChanged := false
		for _, x := range s.Net {
			changed, err := s.Deliver(x)
			if err != nil {
				return nil, err
			}
			if changed {
				roundChanged = true
			}
		}
		if !roundChanged && s.TotalBuffered() == 0 && s.TotalHeld() == 0 && s.FaultsDone() {
			EmitQuiesce(s.sink, s.clock, round+1, s.Output().Len())
			return s.Output(), nil
		}
	}
	return nil, fmt.Errorf("%w (maxRounds=%d)", ErrNoQuiescence, maxRounds)
}

// FaultsDone reports whether every fault-plan window lies behind the
// clock. A network must not be declared quiescent while a crash or
// stall is still scheduled: the rounds keep ticking (empty deliveries)
// until the plan's horizon passes and any late fault has played out.
func (s *Simulation) FaultsDone() bool {
	return s.faults == nil || s.clock >= s.faults.Horizon()
}

// RunMetrics returns the accumulated counters (the Machine-interface
// accessor for Simulation's exported Metrics field).
func (s *Simulation) RunMetrics() Metrics { return s.Metrics }

// BufferedFacts returns the facts currently buffered at node x, in
// sorted key order — the reproducible iteration order every observable
// buffer walk must use. Copies are collapsed: each distinct fact
// appears once.
func (s *Simulation) BufferedFacts(x NodeID) []fact.Fact {
	b := s.buf[x]
	keys := b.sortedKeys()
	fs := make([]fact.Fact, 0, len(keys))
	for _, k := range keys {
		fs = append(fs, b.facts[k])
	}
	return fs
}

// KnownValues returns the values node x has already seen: its own
// identifier plus the active domains of its input fragment and state.
func (s *Simulation) KnownValues(x NodeID) fact.ValueSet {
	known := s.local[x].ADom()
	for v := range s.state[x].ADom() {
		known.Add(v)
	}
	known.Add(x)
	return known
}

// RunRandom interleaves randomSteps random transitions (random active
// node, random submultiset delivery — exercising the nondeterminism of
// runs) and then drives the network to quiescence round-robin. The
// seed makes runs reproducible.
func (s *Simulation) RunRandom(seed int64, randomSteps, maxRounds int) (*fact.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < randomSteps; n++ {
		x := s.Net[rng.Intn(len(s.Net))]
		if rng.Intn(4) == 0 {
			if _, err := s.Heartbeat(x); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := s.DeliverRandom(x, rng); err != nil {
			return nil, err
		}
	}
	return s.RunToQuiescence(maxRounds)
}

package transducer

import (
	"testing"

	"repro/internal/fact"
)

func TestSimulationClone(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	clone := sim.Clone()
	// Step the clone; original must be unaffected.
	if _, err := clone.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	if sim.Buffered("n2") != 3 {
		t.Errorf("original buffer changed by clone step: %d", sim.Buffered("n2"))
	}
	if clone.Buffered("n2") != 0 {
		t.Errorf("clone buffer not drained: %d", clone.Buffered("n2"))
	}
	if sim.State("n2").Equal(clone.State("n2")) {
		t.Error("clone state should have diverged")
	}
}

// Every schedule of the forwarding transducer keeps the output inside
// the true answer (safety in all runs, not just the fair drivers).
func TestExploreForwarderSafe(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	v, err := Explore(net, forwardTransducer(), HashPolicy(net), Original, in, wantO(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("forwarder produced out-of-answer output: %v", v)
	}
}

// Explore finds genuine violations: a transducer that immediately
// outputs a wrong fact is caught on the first step.
func TestExploreFindsViolations(t *testing.T) {
	bad := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`O(wrong,wrong)`), nil
		},
	}
	net := MustNetwork("n1")
	in := fact.MustParseInstance(`E(a,b)`)
	v, err := Explore(net, bad, HashPolicy(net), Original, in, wantO(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("violation not found")
	}
	if !v.Bad.Equal(fact.New("O", "wrong", "wrong")) {
		t.Errorf("wrong violating fact: %v", v.Bad)
	}
	if len(v.Schedule) == 0 {
		t.Error("violation schedule empty (violations should be found after at least one step)")
	}
}

// The schedule explorer finds the forwarder clean across starvation,
// greedy adversaries, and seeded fault plans — and counts its work.
func TestExploreSchedulesForwarderClean(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	opts := ExploreOptions{Seeds: 30, Faults: DefaultFaultConfig()}
	v, stats, err := ExploreSchedules(net, forwardTransducer(), HashPolicy(net), Original, in, wantO(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("forwarder violated a schedule: %v", v)
	}
	// 1 fair + |N| starvation + 1 flood + |N| fresh-starve + 30 seeded.
	if want := 1 + len(net) + 1 + len(net) + 30; stats.Schedules != want {
		t.Errorf("Schedules = %d, want %d", stats.Schedules, want)
	}
	if stats.Transitions == 0 {
		t.Error("no transitions counted")
	}
}

func TestExploreSchedulesFindsWrongFact(t *testing.T) {
	bad := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`O(wrong,wrong)`), nil
		},
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	v, _, err := ExploreSchedules(net, bad, HashPolicy(net), Original, in, wantO(in), ExploreOptions{Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("wrong-fact transducer not caught")
	}
	if v.Kind != WrongFact {
		t.Errorf("Kind = %v, want %v", v.Kind, WrongFact)
	}
	if !v.Bad.Equal(fact.New("O", "wrong", "wrong")) {
		t.Errorf("Bad = %v", v.Bad)
	}
	if v.Schedule == "" {
		t.Error("violation carries no schedule label")
	}
}

// A transducer whose memory oscillates never quiesces; the explorer
// reports that as a NoQuiescence violation rather than hanging.
func TestExploreSchedulesNoQuiescence(t *testing.T) {
	osc := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Mem: fact.MustSchema(map[string]int{"Flag": 1}),
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			if d.RestrictRel("Flag").Empty() {
				return fact.MustParseInstance(`Flag(on)`), nil
			}
			return fact.NewInstance(), nil
		},
		Del: func(d *fact.Instance) (*fact.Instance, error) {
			if !d.RestrictRel("Flag").Empty() {
				return fact.MustParseInstance(`Flag(on)`), nil
			}
			return fact.NewInstance(), nil
		},
	}
	net := MustNetwork("n1")
	in := fact.MustParseInstance(`E(a,b)`)
	v, _, err := ExploreSchedules(net, osc, HashPolicy(net), Original, in, fact.NewInstance(),
		ExploreOptions{Seeds: 1, MaxRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != NoQuiescence {
		t.Errorf("violation = %v, want NoQuiescence", v)
	}
}

func TestViolationKindString(t *testing.T) {
	for k, want := range map[ViolationKind]string{
		WrongFact:    "wrong-fact",
		Divergence:   "divergence",
		NoQuiescence: "no-quiescence",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

package transducer

import (
	"testing"

	"repro/internal/fact"
)

func TestSimulationClone(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	clone := sim.Clone()
	// Step the clone; original must be unaffected.
	if _, err := clone.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	if sim.Buffered("n2") != 3 {
		t.Errorf("original buffer changed by clone step: %d", sim.Buffered("n2"))
	}
	if clone.Buffered("n2") != 0 {
		t.Errorf("clone buffer not drained: %d", clone.Buffered("n2"))
	}
	if sim.State("n2").Equal(clone.State("n2")) {
		t.Error("clone state should have diverged")
	}
}

// Every schedule of the forwarding transducer keeps the output inside
// the true answer (safety in all runs, not just the fair drivers).
func TestExploreForwarderSafe(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	v, err := Explore(net, forwardTransducer(), HashPolicy(net), Original, in, wantO(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("forwarder produced out-of-answer output: %v", v)
	}
}

// Explore finds genuine violations: a transducer that immediately
// outputs a wrong fact is caught on the first step.
func TestExploreFindsViolations(t *testing.T) {
	bad := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`O(wrong,wrong)`), nil
		},
	}
	net := MustNetwork("n1")
	in := fact.MustParseInstance(`E(a,b)`)
	v, err := Explore(net, bad, HashPolicy(net), Original, in, wantO(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("violation not found")
	}
	if !v.Bad.Equal(fact.New("O", "wrong", "wrong")) {
		t.Errorf("wrong violating fact: %v", v.Bad)
	}
	if len(v.Schedule) == 0 {
		t.Error("violation schedule empty (violations should be found after at least one step)")
	}
}

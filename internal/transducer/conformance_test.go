package transducer

import (
	"strings"
	"testing"

	"repro/internal/fact"
)

func TestCheckComputesForwarder(t *testing.T) {
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	err := CheckComputes(net, forwardTransducer(), HashPolicy(net), Original, in, wantO(in),
		ConformanceOptions{ExploreDepth: 4})
	if err != nil {
		t.Errorf("forwarder should conform: %v", err)
	}
}

func TestCheckComputesDetectsWrongOutput(t *testing.T) {
	net := MustNetwork("n1")
	in := fact.MustParseInstance(`E(a,b)`)
	// The echo transducer outputs only its fragment; with the wrong
	// expected set the check must fail on the round-robin run.
	err := CheckComputes(net, echoTransducer(), HashPolicy(net), Original, in,
		fact.MustParseInstance(`O(z,z)`), ConformanceOptions{})
	if err == nil {
		t.Fatal("conformance should fail against a wrong expectation")
	}
	if !strings.Contains(err.Error(), "round-robin") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

func TestCheckComputesDetectsScheduleRace(t *testing.T) {
	// A transducer that emits a wrong fact as soon as any message is
	// delivered to it: correct under heartbeats only, wrong in every
	// fair run — the conformance check must catch it.
	bad := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
			Msg: fact.MustSchema(map[string]int{"F": 1}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			if !d.RestrictRel("F").Empty() {
				return fact.MustParseInstance(`O(bad,bad)`), nil
			}
			out := fact.NewInstance()
			for _, f := range d.Rel("E") {
				out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
			}
			return out, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`F(ping)`), nil
		},
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	err := CheckComputes(net, bad, ReplicateAll(net), Original, in, wantO(in), ConformanceOptions{MaxRounds: 8})
	if err == nil {
		t.Fatal("conformance should catch the delivery-triggered wrong output")
	}
}

package transducer

import (
	"repro/internal/fact"
)

// This file implements the executable side of Definition 3
// (coordination-freeness): a transducer is coordination-free when,
// besides computing its query on every network and policy, for every
// network and input there is some "ideal" distribution policy under
// which a run computes the full query answer in a prefix consisting of
// heartbeat transitions only (no communication read).

// HeartbeatPrefixComputes performs heartbeat transitions of node x
// only and reports whether the network output covers want within
// maxSteps transitions. Heartbeats may send messages but never read
// them, so a true result witnesses the Definition 3 prefix for this
// input and policy.
func HeartbeatPrefixComputes(s *Simulation, x NodeID, want *fact.Instance, maxSteps int) (bool, error) {
	for n := 0; n < maxSteps; n++ {
		if want.SubsetOf(s.Output()) {
			return true, nil
		}
		changed, err := s.Heartbeat(x)
		if err != nil {
			return false, err
		}
		if !changed && !want.SubsetOf(s.Output()) {
			// The node has stabilized without producing the output;
			// more heartbeats cannot help (heartbeat transitions of a
			// deterministic transducer with unchanged state repeat).
			return want.SubsetOf(s.Output()), nil
		}
	}
	return want.SubsetOf(s.Output()), nil
}

// CoordinationFreeWitness checks the Definition 3 condition for one
// network and input: build the simulation under the provided ideal
// policy, run a heartbeat-only prefix at node x, and verify the full
// expected output appears. It then confirms the prefix extends to a
// fair run still producing exactly `want` (no wrong facts), by driving
// the network to quiescence.
func CoordinationFreeWitness(net Network, t *Transducer, ideal Policy, mod Model, input, want *fact.Instance, x NodeID, maxSteps, maxRounds int) (bool, error) {
	sim, err := NewSimulation(net, t, ideal, mod, input)
	if err != nil {
		return false, err
	}
	ok, err := HeartbeatPrefixComputes(sim, x, want, maxSteps)
	if err != nil || !ok {
		return ok, err
	}
	// Extend to a full fair run; the final output must be exactly want.
	final, err := sim.RunToQuiescence(maxRounds)
	if err != nil {
		return false, err
	}
	return final.Equal(want), nil
}

package transducer

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/fact"
)

// Property test: across arbitrary interleavings of the delivery
// drivers with no faults injected, the message multiset is conserved —
// every sent (fact, recipient) pair is either delivered or still
// buffered, never lost or invented.
func TestMessageConservationRandomInterleavings(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, bigGraphIn())
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 40; step++ {
			x := net[rng.Intn(len(net))]
			switch rng.Intn(4) {
			case 0:
				_, err = sim.Heartbeat(x)
			case 1:
				_, err = sim.Deliver(x)
			case 2:
				_, err = sim.DeliverRandom(x, rng)
			default:
				keep := rng.Intn(2) == 0
				_, err = sim.DeliverWhere(x, func(f fact.Fact) bool {
					keep = !keep
					return keep
				})
			}
			if err != nil {
				t.Fatal(err)
			}
			m := sim.Metrics
			if m.MessagesSent != m.MessagesDelivered+sim.TotalBuffered() {
				t.Fatalf("seed %d step %d: sent %d != delivered %d + buffered %d",
					seed, step, m.MessagesSent, m.MessagesDelivered, sim.TotalBuffered())
			}
			if sim.TotalHeld() != 0 || m.MessagesDropped != 0 || m.MessagesDuplicated != 0 {
				t.Fatalf("seed %d step %d: faultless run produced fault metrics: %+v", seed, step, m)
			}
		}
	}
}

// The conservation invariant extends to faulty runs: held and dropped
// messages are accounted for at every step.
func TestMessageConservationUnderFaults(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, bigGraphIn())
		if err != nil {
			t.Fatal(err)
		}
		sim.SetFaults(RandomFaultPlan(net, seed, DefaultFaultConfig()))
		for step := 0; step < 40; step++ {
			x := net[rng.Intn(len(net))]
			if rng.Intn(2) == 0 {
				_, err = sim.Deliver(x)
			} else {
				_, err = sim.DeliverRandom(x, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			conserved(t, sim)
		}
	}
}

// Regression test: Clone is a deep copy. Mutating the clone's buffers,
// state, held queues, send logs, or Metrics never aliases the parent.
func TestCloneIsDeepCopy(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetFaults(&FaultPlan{Seed: 3, DelayProb: 0.5, MaxDelay: 4})
	// Build up buffers, held messages and state.
	for _, x := range net {
		if _, err := sim.Heartbeat(x); err != nil {
			t.Fatal(err)
		}
	}
	before := struct {
		buffered, held int
		metrics        Metrics
		state          *fact.Instance
	}{sim.TotalBuffered(), sim.TotalHeld(), sim.Metrics, sim.State("n2")}

	clone := sim.Clone()
	// Drive the clone hard; crash it too.
	clone.SetFaults(&FaultPlan{Seed: 3, Crashes: []Crash{{Node: "n2", At: clone.Clock() + 1}}})
	for i := 0; i < 6; i++ {
		for _, x := range net {
			if _, err := clone.Deliver(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	clone.Metrics.MessagesSent += 1000

	if sim.TotalBuffered() != before.buffered || sim.TotalHeld() != before.held {
		t.Errorf("clone mutation reached parent buffers: %d/%d, want %d/%d",
			sim.TotalBuffered(), sim.TotalHeld(), before.buffered, before.held)
	}
	if sim.Metrics != before.metrics {
		t.Errorf("clone mutation reached parent metrics: %+v vs %+v", sim.Metrics, before.metrics)
	}
	if !sim.State("n2").Equal(before.state) {
		t.Errorf("clone mutation reached parent state")
	}
	if sim.Clock() == clone.Clock() {
		t.Errorf("clone clock did not advance independently")
	}
}

// A clone pair driven by equal seeds produces byte-identical traces —
// the fault layer keeps no hidden mutable randomness.
func TestClonePairEqualSeedsIdenticalTraces(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	base, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, bigGraphIn())
	if err != nil {
		t.Fatal(err)
	}
	base.SetFaults(RandomFaultPlan(net, 11, DefaultFaultConfig()))
	// Advance the base a little so the clones start mid-run.
	for _, x := range net {
		if _, err := base.Heartbeat(x); err != nil {
			t.Fatal(err)
		}
	}
	run := func(sim *Simulation) []byte {
		var buf bytes.Buffer
		sim.TraceTo(&buf)
		if _, err := sim.RunRandom(99, 30, 60); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	c1, c2 := base.Clone(), base.Clone()
	t1, t2 := run(c1), run(c2)
	if !bytes.Equal(t1, t2) {
		t.Fatalf("equal-seed clone traces differ:\n--- clone 1 ---\n%s\n--- clone 2 ---\n%s", t1, t2)
	}
	if c1.Metrics != c2.Metrics {
		t.Fatalf("equal-seed clone metrics differ: %+v vs %+v", c1.Metrics, c2.Metrics)
	}
}

package transducer

import (
	"fmt"
	"math/rand"

	"repro/internal/fact"
	"repro/internal/obs"
)

// This file implements a small exhaustive run explorer: a
// model-checker-style sweep over all schedules of bounded depth, where
// each step activates any node as either a heartbeat or a full-buffer
// delivery. Runs in the paper are arbitrary interleavings with
// arbitrary submultiset delivery; heartbeat/deliver-all scheduling is
// a strict subset, but it already exercises the races that matter for
// the safety property checked here (no wrong outputs in any reachable
// configuration).

// Violation describes a safety violation found by Explore: a schedule
// (sequence of node/delivery choices) after which the network output
// contains a fact outside the allowed set.
type Violation struct {
	Schedule []string
	Output   *fact.Instance
	Bad      fact.Fact
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("transducer: schedule %v produced out-of-answer fact %v (output %v)", v.Schedule, v.Bad, v.Output)
}

// Explore enumerates every schedule of at most depth steps from the
// start configuration of (net, t, pol, mod) on input, checking after
// every step that the network output stays within `allowed`. It
// returns the first violation found, or nil if all reachable outputs
// are sound. The number of explored runs is (2·|N|)^depth; keep depth
// and the network small.
func Explore(net Network, t *Transducer, pol Policy, mod Model, input, allowed *fact.Instance, depth int) (*Violation, error) {
	type choice struct {
		node    NodeID
		deliver bool
	}
	var choices []choice
	for _, x := range net {
		choices = append(choices, choice{x, false}, choice{x, true})
	}

	var schedule []string
	var rec func(s *Simulation, remaining int) (*Violation, error)
	rec = func(s *Simulation, remaining int) (*Violation, error) {
		out := s.Output()
		var bad *fact.Fact
		out.Each(func(f fact.Fact) bool {
			if !allowed.Has(f) {
				g := f
				bad = &g
				return false
			}
			return true
		})
		if bad != nil {
			return &Violation{Schedule: append([]string{}, schedule...), Output: out, Bad: *bad}, nil
		}
		if remaining == 0 {
			return nil, nil
		}
		for _, c := range choices {
			branch := s.Clone()
			var err error
			label := fmt.Sprintf("%s:hb", c.node)
			if c.deliver {
				label = fmt.Sprintf("%s:dl", c.node)
				_, err = branch.Deliver(c.node)
			} else {
				_, err = branch.Heartbeat(c.node)
			}
			if err != nil {
				return nil, err
			}
			schedule = append(schedule, label)
			v, err := rec(branch, remaining-1)
			schedule = schedule[:len(schedule)-1]
			if err != nil || v != nil {
				return v, err
			}
		}
		return nil, nil
	}

	start, err := NewSimulation(net, t, pol, mod, input)
	if err != nil {
		return nil, err
	}
	return rec(start, depth)
}

// ----------------------------------------------------------------------
// Adversarial schedule exploration.
//
// Explore above enumerates every heartbeat/deliver-all schedule, which
// is exhaustive but shallow. ExploreSchedules goes the other way: it
// runs a curated family of deep adversarial schedules — per-node
// starvation until a fairness deadline, greedy adversaries built
// around fresh active-domain values (the pattern behind the known
// out-of-class failures of the F2.8–F2.10 strategies), and a sweep of
// seeded random schedules under random fault plans — checking after
// every transition that the output stays inside Q(I) and at quiescence
// that it equals Q(I).

// ViolationKind classifies how a schedule broke "Π computes Q".
type ViolationKind int

const (
	// WrongFact: a reachable output contained a fact outside Q(I).
	WrongFact ViolationKind = iota
	// Divergence: the run quiesced on an output different from Q(I).
	Divergence
	// NoQuiescence: the run did not stabilize within the round bound.
	NoQuiescence
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case WrongFact:
		return "wrong-fact"
	case Divergence:
		return "divergence"
	default:
		return "no-quiescence"
	}
}

// ScheduleViolation describes a schedule on which the network failed
// to compute Q.
type ScheduleViolation struct {
	Kind ViolationKind
	// Schedule identifies the failing schedule (and, for seeded runs,
	// the fault plan) well enough to replay it.
	Schedule string
	// Step is the transition count at which the violation surfaced.
	Step int
	// Bad is the offending output fact (WrongFact only).
	Bad *fact.Fact
	// Output and Want are the observed and expected network outputs.
	Output, Want *fact.Instance
}

// Error renders the violation.
func (v *ScheduleViolation) Error() string {
	switch v.Kind {
	case WrongFact:
		return fmt.Sprintf("transducer: schedule %s produced out-of-answer fact %v at step %d", v.Schedule, *v.Bad, v.Step)
	case Divergence:
		return fmt.Sprintf("transducer: schedule %s quiesced on %v, want %v", v.Schedule, v.Output, v.Want)
	default:
		return fmt.Sprintf("transducer: schedule %s did not quiesce (step %d)", v.Schedule, v.Step)
	}
}

// Machine is the scheduler-facing surface the adversarial explorer
// drives: the delivery primitives plus the introspection the schedule
// families need (buffer contents for the fresh-value adversaries,
// quiescence inputs for the fair drive). *Simulation implements it
// with the tick engine; internal/netsim implements it with the
// event-driven engine. Both must be behaviorally identical under the
// same schedule — the equivalence battery in netsim pins that.
type Machine interface {
	Heartbeat(x NodeID) (bool, error)
	Deliver(x NodeID) (bool, error)
	DeliverWhere(x NodeID, pred func(fact.Fact) bool) (bool, error)
	DeliverBatch(x NodeID, batch *fact.Instance) (bool, error)
	DeliverRandom(x NodeID, rng *rand.Rand) (bool, error)
	SetFaults(p *FaultPlan)
	Output() *fact.Instance
	TotalBuffered() int
	TotalHeld() int
	FaultsDone() bool
	RunMetrics() Metrics
	// BufferedFacts returns the facts buffered at x in sorted key
	// order (copies collapsed); KnownValues returns the values x has
	// seen (id + adom of fragment and state).
	BufferedFacts(x NodeID) []fact.Fact
	KnownValues(x NodeID) fact.ValueSet
}

// MachineFactory builds a fresh start-configuration machine for one
// schedule. The explorer constructs every schedule's machine through
// this hook, so plugging in a different scheduler (netsim's
// event-driven engine) rewires the whole X-matrix.
type MachineFactory func(net Network, t *Transducer, pol Policy, mod Model, input *fact.Instance) (Machine, error)

// ExploreOptions tunes ExploreSchedules.
type ExploreOptions struct {
	// Seeds is how many seeded random fault schedules to run
	// (default 100).
	Seeds int
	// BaseSeed is the first seed (default 1); schedule k uses
	// BaseSeed+k.
	BaseSeed int64
	// Faults bounds the fault plans derived for the seeded schedules.
	// The zero value injects no faults (pure schedule randomization).
	Faults FaultConfig
	// MaxRounds bounds each run's fair drive; 0 picks a generous
	// default (extended by each fault plan's horizon).
	MaxRounds int
	// SkipStarvation and SkipAdversary disable the deterministic
	// schedule families, leaving only the seed sweep.
	SkipStarvation bool
	SkipAdversary  bool
	// Sink, when non-nil, receives one explore.schedule event per
	// schedule run (and an explore.violation event when a schedule
	// breaks the property). Per-transition simulation events are not
	// attached here — wire a sink to an individual Simulation for that.
	Sink *obs.Sink
	// NewMachine, when non-nil, constructs each schedule's machine;
	// nil uses the tick-based Simulation.
	NewMachine MachineFactory
}

// ExploreStats reports how much was explored. Every schedule counts,
// including the one cut short by the first violation — partially
// explored schedules contribute their transitions and message flows.
type ExploreStats struct {
	// Schedules is the number of schedules run (complete or aborted).
	Schedules int
	// Aborted counts schedules cut short by a violation or an error.
	Aborted int
	// Violations counts schedules that broke the property (at most 1,
	// since exploration stops at the first violation).
	Violations int
	// Transitions is the total number of transitions across all
	// schedules, including partially-explored ones.
	Transitions int
	// Sim folds every explored schedule's simulation Metrics into one
	// total, so message flows (sent, delivered, dropped, ...) are
	// reported in the same vocabulary as single runs.
	Sim Metrics
}

// Publish adds the stats into the registry under the explore.* (and,
// via Sim, the sim.*) vocabulary of internal/obs names.go. Safe on a
// nil registry.
func (st ExploreStats) Publish(reg *obs.Registry) {
	reg.Counter(obs.ExploreSchedules).Add(int64(st.Schedules))
	reg.Counter(obs.ExploreAborted).Add(int64(st.Aborted))
	reg.Counter(obs.ExploreViolations).Add(int64(st.Violations))
	reg.Counter(obs.ExploreTransitions).Add(int64(st.Transitions))
	st.Sim.Publish(reg)
}

// ExploreSchedules searches the schedule space of (net, t, pol, mod)
// on input for a violation of "the network computes want": it runs the
// fair baseline, per-node starvation schedules, the greedy fresh-value
// adversaries, and opts.Seeds seeded random schedules under derived
// fault plans, returning the first violation found (nil if every
// explored schedule converges to want without ever leaving it).
func ExploreSchedules(net Network, t *Transducer, pol Policy, mod Model, input, want *fact.Instance, opts ExploreOptions) (*ScheduleViolation, ExploreStats, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 100
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 32 + input.Len() + 4*len(net)
	}
	e := &explorer{net: net, t: t, pol: pol, mod: mod, input: input, want: want, opts: opts}

	run := func(f func() (*ScheduleViolation, error)) (*ScheduleViolation, error) {
		e.current = nil
		v, err := f()
		e.record(v, err)
		return v, err
	}

	// Fair round-robin baseline.
	if v, err := run(e.fairRun); v != nil || err != nil {
		return v, e.stats, err
	}
	if !opts.SkipStarvation {
		for _, victim := range net {
			x := victim
			if v, err := run(func() (*ScheduleViolation, error) { return e.starveRun(x) }); v != nil || err != nil {
				return v, e.stats, err
			}
		}
	}
	if !opts.SkipAdversary {
		if v, err := run(e.freshFloodRun); v != nil || err != nil {
			return v, e.stats, err
		}
		for _, victim := range net {
			x := victim
			if v, err := run(func() (*ScheduleViolation, error) { return e.freshStarveRun(x) }); v != nil || err != nil {
				return v, e.stats, err
			}
		}
	}
	for k := 0; k < opts.Seeds; k++ {
		seed := opts.BaseSeed + int64(k)
		if v, err := run(func() (*ScheduleViolation, error) { return e.seedRun(seed) }); v != nil || err != nil {
			return v, e.stats, err
		}
	}
	return nil, e.stats, nil
}

// explorer carries the fixed exploration context.
type explorer struct {
	net   Network
	t     *Transducer
	pol   Policy
	mod   Model
	input *fact.Instance
	want  *fact.Instance
	opts  ExploreOptions
	stats ExploreStats
	// current is the schedule being run, registered by newRun so the
	// run wrapper can account for it even when the runner bails out
	// before reaching finish — the old per-finish accounting silently
	// undercounted schedules aborted by an early violation.
	current *scheduleRun
}

func (e *explorer) newRun(label string) (*scheduleRun, error) {
	var sim Machine
	var err error
	if e.opts.NewMachine != nil {
		sim, err = e.opts.NewMachine(e.net, e.t, e.pol, e.mod, e.input)
	} else {
		sim, err = NewSimulation(e.net, e.t, e.pol, e.mod, e.input)
	}
	if err != nil {
		return nil, err
	}
	r := &scheduleRun{e: e, sim: sim, label: label}
	e.current = r
	return r, nil
}

// record folds one schedule's outcome into the stats and emits the
// schedule-level events. Called once per schedule by the run wrapper,
// whether the schedule completed, violated, or errored.
func (e *explorer) record(v *ScheduleViolation, err error) {
	e.stats.Schedules++
	r := e.current
	if r == nil {
		return
	}
	m := r.sim.RunMetrics()
	e.stats.Transitions += m.Transitions
	e.stats.Sim.Merge(m)
	aborted := v != nil || err != nil
	if aborted {
		e.stats.Aborted++
	}
	if v != nil {
		e.stats.Violations++
	}
	if sink := e.opts.Sink; sink != nil {
		sink.Emit(obs.EvSchedule,
			obs.F("label", r.label),
			obs.F("transitions", m.Transitions),
			obs.F("sent", m.MessagesSent),
			obs.F("delivered", m.MessagesDelivered),
			obs.F("aborted", aborted))
		if v != nil {
			bad := ""
			if v.Bad != nil {
				bad = v.Bad.String()
			}
			sink.Emit(obs.EvViolation,
				obs.F("kind", v.Kind.String()),
				obs.F("schedule", v.Schedule),
				obs.F("step", v.Step),
				obs.F("bad", bad),
				obs.F("output", v.Output.Len()),
				obs.F("want", v.Want.Len()))
		}
	}
}

// scheduleRun wraps one machine with per-step soundness checking.
type scheduleRun struct {
	e     *explorer
	sim   Machine
	label string
}

// checkSound verifies output ⊆ want after a step.
func (r *scheduleRun) checkSound() *ScheduleViolation {
	out := r.sim.Output()
	var bad *fact.Fact
	out.Each(func(f fact.Fact) bool {
		if !r.e.want.Has(f) {
			g := f
			bad = &g
			return false
		}
		return true
	})
	if bad == nil {
		return nil
	}
	return &ScheduleViolation{
		Kind:     WrongFact,
		Schedule: r.label,
		Step:     r.sim.RunMetrics().Transitions,
		Bad:      bad,
		Output:   out,
		Want:     r.e.want,
	}
}

// finish drives the run fairly to quiescence (still checking every
// step) and verifies the final output equals want. extraRounds widens
// the bound for runs whose fault plan has a late horizon.
func (r *scheduleRun) finish(extraRounds int) (*ScheduleViolation, error) {
	maxRounds := r.e.opts.MaxRounds + extraRounds
	for round := 0; round < maxRounds; round++ {
		anyChanged := false
		for _, x := range r.e.net {
			changed, err := r.sim.Deliver(x)
			if err != nil {
				return nil, err
			}
			if v := r.checkSound(); v != nil {
				return v, nil
			}
			if changed {
				anyChanged = true
			}
		}
		if !anyChanged && r.sim.TotalBuffered() == 0 && r.sim.TotalHeld() == 0 && r.sim.FaultsDone() {
			out := r.sim.Output()
			if !out.Equal(r.e.want) {
				return &ScheduleViolation{
					Kind:     Divergence,
					Schedule: r.label,
					Step:     r.sim.RunMetrics().Transitions,
					Output:   out,
					Want:     r.e.want,
				}, nil
			}
			return nil, nil
		}
	}
	return &ScheduleViolation{
		Kind:     NoQuiescence,
		Schedule: r.label,
		Step:     r.sim.RunMetrics().Transitions,
		Output:   r.sim.Output(),
		Want:     r.e.want,
	}, nil
}

// fairRun is the round-robin baseline with per-step checking.
func (e *explorer) fairRun() (*ScheduleViolation, error) {
	r, err := e.newRun("fair")
	if err != nil {
		return nil, err
	}
	return r.finish(0)
}

// starveRun keeps the victim from taking any transition while the rest
// of the network runs round-robin to a fixed point — the victim's
// local facts stay invisible for the whole starvation phase. The
// fairness deadline then admits the victim and the run must still
// converge to want.
func (e *explorer) starveRun(victim NodeID) (*ScheduleViolation, error) {
	r, err := e.newRun(fmt.Sprintf("starve:%s", victim))
	if err != nil {
		return nil, err
	}
	for round := 0; round < e.opts.MaxRounds; round++ {
		progress := false
		for _, x := range e.net {
			if x == victim {
				continue
			}
			changed, err := r.sim.Deliver(x)
			if err != nil {
				return nil, err
			}
			if v := r.checkSound(); v != nil {
				return v, nil
			}
			if changed {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return r.finish(0)
}

// freshCount counts the argument values of f that x has not seen yet.
func freshCount(known fact.ValueSet, f fact.Fact) int {
	fresh := 0
	for i := 0; i < f.Arity(); i++ {
		if _, ok := known[f.Arg(i)]; !ok {
			fresh++
		}
	}
	return fresh
}

// freshFloodRun is the greedy fresh-value adversary: at every step it
// delivers exactly ONE buffered fact — the one introducing the most
// values its recipient has never seen — so each node's active domain
// expands as far ahead of its data as any schedule allows. This is the
// single-fact generalization of the race behind premature outputs:
// a node that learns a value before the facts about it evaluates the
// query on an inflated, incomplete picture.
func (e *explorer) freshFloodRun() (*ScheduleViolation, error) {
	r, err := e.newRun("adv-flood-fresh")
	if err != nil {
		return nil, err
	}
	budget := e.opts.MaxRounds * len(e.net)
	for step := 0; step < budget; step++ {
		bestScore := 0
		var bestNode NodeID
		var bestFact fact.Fact
		for _, x := range e.net {
			known := r.sim.KnownValues(x)
			for _, f := range r.sim.BufferedFacts(x) {
				if n := freshCount(known, f); n > bestScore {
					bestScore, bestNode, bestFact = n, x, f
				}
			}
		}
		if bestScore == 0 {
			// No delivery introduces a fresh value; heartbeat everyone
			// once to let protocols emit, then retry or finish.
			progress := false
			for _, x := range e.net {
				changed, err := r.sim.Heartbeat(x)
				if err != nil {
					return nil, err
				}
				if v := r.checkSound(); v != nil {
					return v, nil
				}
				if changed {
					progress = true
				}
			}
			if !progress {
				break
			}
			continue
		}
		if _, err := r.sim.DeliverBatch(bestNode, fact.NewInstance(bestFact)); err != nil {
			return nil, err
		}
		if v := r.checkSound(); v != nil {
			return v, nil
		}
	}
	return r.finish(0)
}

// freshStarveRun is the dual adversary, aimed at one victim: every
// other node runs fairly, while the victim is delivered only messages
// whose values it already knows. Absence announcements, acknowledgments
// and data over the victim's current domain flow freely; anything
// mentioning a fresh value is withheld. A strategy that declares its
// picture of the input complete from such a confined domain emits its
// wrong facts here — this is the schedule shape behind the known
// out-of-class divergences of the absence and domain-request
// strategies. The fairness deadline then delivers everything.
func (e *explorer) freshStarveRun(victim NodeID) (*ScheduleViolation, error) {
	r, err := e.newRun(fmt.Sprintf("adv-starve-fresh:%s", victim))
	if err != nil {
		return nil, err
	}
	for round := 0; round < e.opts.MaxRounds; round++ {
		progress := false
		known := r.sim.KnownValues(victim)
		stale := fact.NewInstance()
		for _, f := range r.sim.BufferedFacts(victim) {
			if freshCount(known, f) == 0 {
				stale.Add(f)
			}
		}
		changed, err := r.sim.DeliverBatch(victim, stale)
		if err != nil {
			return nil, err
		}
		if v := r.checkSound(); v != nil {
			return v, nil
		}
		if changed {
			progress = true
		}
		for _, x := range e.net {
			if x == victim {
				continue
			}
			changed, err := r.sim.Deliver(x)
			if err != nil {
				return nil, err
			}
			if v := r.checkSound(); v != nil {
				return v, nil
			}
			if changed {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return r.finish(0)
}

// seedRun runs one seeded random schedule under a fault plan derived
// from the same seed: a random prefix mixing heartbeats, full, random
// and planned-batch deliveries across random nodes, then a fair drive
// to quiescence. Reproducible from (seed, opts.Faults) alone.
func (e *explorer) seedRun(seed int64) (*ScheduleViolation, error) {
	plan := RandomFaultPlan(e.net, seed, e.opts.Faults)
	label := fmt.Sprintf("seed:%d", seed)
	extra := 0
	r, err := e.newRun(label)
	if err != nil {
		return nil, err
	}
	if !plan.Empty() {
		r.label = fmt.Sprintf("seed:%d faults[%s]", seed, plan)
		r.sim.SetFaults(plan)
		extra = plan.Horizon()
	}
	rng := rand.New(rand.NewSource(seed))
	steps := 4 * len(e.net) * 2
	for n := 0; n < steps; n++ {
		x := e.net[rng.Intn(len(e.net))]
		var err error
		switch rng.Intn(4) {
		case 0:
			_, err = r.sim.Heartbeat(x)
		case 1:
			_, err = r.sim.Deliver(x)
		case 2:
			_, err = r.sim.DeliverRandom(x, rng)
		default:
			// A random planned batch: each buffered fact kept or
			// withheld by coin flip (all copies at once).
			_, err = r.sim.DeliverWhere(x, func(fact.Fact) bool { return rng.Intn(2) == 0 })
		}
		if err != nil {
			return nil, err
		}
		if v := r.checkSound(); v != nil {
			return v, nil
		}
	}
	return r.finish(extra)
}

package transducer

import (
	"fmt"

	"repro/internal/fact"
)

// This file implements a small exhaustive run explorer: a
// model-checker-style sweep over all schedules of bounded depth, where
// each step activates any node as either a heartbeat or a full-buffer
// delivery. Runs in the paper are arbitrary interleavings with
// arbitrary submultiset delivery; heartbeat/deliver-all scheduling is
// a strict subset, but it already exercises the races that matter for
// the safety property checked here (no wrong outputs in any reachable
// configuration).

// Violation describes a safety violation found by Explore: a schedule
// (sequence of node/delivery choices) after which the network output
// contains a fact outside the allowed set.
type Violation struct {
	Schedule []string
	Output   *fact.Instance
	Bad      fact.Fact
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("transducer: schedule %v produced out-of-answer fact %v (output %v)", v.Schedule, v.Bad, v.Output)
}

// Explore enumerates every schedule of at most depth steps from the
// start configuration of (net, t, pol, mod) on input, checking after
// every step that the network output stays within `allowed`. It
// returns the first violation found, or nil if all reachable outputs
// are sound. The number of explored runs is (2·|N|)^depth; keep depth
// and the network small.
func Explore(net Network, t *Transducer, pol Policy, mod Model, input, allowed *fact.Instance, depth int) (*Violation, error) {
	type choice struct {
		node    NodeID
		deliver bool
	}
	var choices []choice
	for _, x := range net {
		choices = append(choices, choice{x, false}, choice{x, true})
	}

	var schedule []string
	var rec func(s *Simulation, remaining int) (*Violation, error)
	rec = func(s *Simulation, remaining int) (*Violation, error) {
		out := s.Output()
		var bad *fact.Fact
		out.Each(func(f fact.Fact) bool {
			if !allowed.Has(f) {
				g := f
				bad = &g
				return false
			}
			return true
		})
		if bad != nil {
			return &Violation{Schedule: append([]string{}, schedule...), Output: out, Bad: *bad}, nil
		}
		if remaining == 0 {
			return nil, nil
		}
		for _, c := range choices {
			branch := s.Clone()
			var err error
			label := fmt.Sprintf("%s:hb", c.node)
			if c.deliver {
				label = fmt.Sprintf("%s:dl", c.node)
				_, err = branch.Deliver(c.node)
			} else {
				_, err = branch.Heartbeat(c.node)
			}
			if err != nil {
				return nil, err
			}
			schedule = append(schedule, label)
			v, err := rec(branch, remaining-1)
			schedule = schedule[:len(schedule)-1]
			if err != nil || v != nil {
				return v, err
			}
		}
		return nil, nil
	}

	start, err := NewSimulation(net, t, pol, mod, input)
	if err != nil {
		return nil, err
	}
	return rec(start, depth)
}

package transducer

import (
	"math/rand"
	"testing"

	"repro/internal/fact"
)

func TestMultisetCounts(t *testing.T) {
	m := newMultiset()
	f := fact.New("F", "a")
	g := fact.New("F", "b")
	m.add(f, 1)
	m.add(f, 2)
	m.add(g, 1)
	if m.size() != 4 {
		t.Errorf("size = %d, want 4", m.size())
	}
	set, delivered := m.takeAll()
	if delivered != 4 {
		t.Errorf("delivered = %d, want 4", delivered)
	}
	if set.Len() != 2 {
		t.Errorf("collapsed set size = %d, want 2", set.Len())
	}
	if !m.empty() {
		t.Error("buffer not empty after takeAll")
	}
}

func TestMultisetTakeRandomConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := newMultiset()
		total := 0
		for k := 0; k < 5; k++ {
			n := 1 + rng.Intn(3)
			m.add(fact.New("F", fact.Value(rune('a'+k))), n)
			total += n
		}
		delivered := 0
		for !m.empty() {
			_, d := m.takeRandom(rng)
			delivered += d
		}
		if delivered != total {
			t.Fatalf("delivered %d of %d messages", delivered, total)
		}
	}
}

// The same message sent in two different transitions accumulates in
// the buffer as a multiset (the Section 4.1.3 motivation).
func TestDuplicateSendsAccumulate(t *testing.T) {
	// A transducer that sends the same fact on every transition.
	spam := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Msg: fact.MustSchema(map[string]int{"F": 1}),
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`F(ping)`), nil
		},
	}
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, spam, AllToNode("n1"), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := sim.Heartbeat("n1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.Buffered("n2"); got != 3 {
		t.Errorf("n2 buffered %d copies, want 3", got)
	}
	// Delivering all consumes all three copies but the set passed to
	// the transducer collapses them to one fact.
	if _, err := sim.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	if sim.Metrics.MessagesDelivered != 3 {
		t.Errorf("MessagesDelivered = %d, want 3", sim.Metrics.MessagesDelivered)
	}
}

// Table-driven edge cases for the multiset buffer.
func TestMultisetEdgeCases(t *testing.T) {
	type add struct {
		f fact.Fact
		n int
	}
	cases := []struct {
		name          string
		adds          []add
		wantSize      int
		wantSetLen    int
		wantDelivered int
	}{
		{"empty buffer", nil, 0, 0, 0},
		{"single fact count 1", []add{{fact.New("F", "a"), 1}}, 1, 1, 1},
		{"single fact count 3", []add{{fact.New("F", "a"), 3}}, 3, 1, 3},
		{"distinct facts", []add{{fact.New("F", "a"), 1}, {fact.New("F", "b"), 1}}, 2, 2, 2},
		{"mixed counts accumulate", []add{
			{fact.New("F", "a"), 2}, {fact.New("F", "a"), 3}, {fact.New("F", "b"), 1},
		}, 6, 2, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newMultiset()
			for _, a := range c.adds {
				m.add(a.f, a.n)
			}
			if m.size() != c.wantSize {
				t.Errorf("size = %d, want %d", m.size(), c.wantSize)
			}
			if m.empty() != (c.wantSize == 0) {
				t.Errorf("empty = %v with size %d", m.empty(), c.wantSize)
			}
			set, delivered := m.takeAll()
			if set.Len() != c.wantSetLen || delivered != c.wantDelivered {
				t.Errorf("takeAll = (%d facts, %d delivered), want (%d, %d)",
					set.Len(), delivered, c.wantSetLen, c.wantDelivered)
			}
			if !m.empty() || m.size() != 0 {
				t.Errorf("buffer not drained: size %d", m.size())
			}
			// takeAll on the now-empty buffer is a no-op.
			set, delivered = m.takeAll()
			if set.Len() != 0 || delivered != 0 {
				t.Errorf("takeAll on empty = (%d, %d)", set.Len(), delivered)
			}
		})
	}
}

// takeRandom drains in a stable order: with equal seeds, repeated
// draws remove the same facts in the same sequence every time.
func TestMultisetTakeRandomDrainingOrderStable(t *testing.T) {
	build := func() *multiset {
		m := newMultiset()
		for k := 0; k < 8; k++ {
			m.add(fact.New("F", fact.Value(rune('a'+k))), 1+k%3)
		}
		return m
	}
	drain := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		m := build()
		var order []string
		for !m.empty() {
			set, _ := m.takeRandom(rng)
			order = append(order, set.String())
		}
		return order
	}
	a, b := drain(5), drain(5)
	if len(a) != len(b) {
		t.Fatalf("draining lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	// takeRandom on an empty buffer returns an empty set and no count.
	m := newMultiset()
	set, n := m.takeRandom(rand.New(rand.NewSource(1)))
	if set.Len() != 0 || n != 0 {
		t.Errorf("takeRandom on empty = (%d, %d)", set.Len(), n)
	}
}

// Example 4.2 of the paper: the system facts exposed to node 1 under
// the first-attribute policy P1 with I = {E(1,3), E(3,4), E(4,6)}.
func TestExample42SystemFacts(t *testing.T) {
	net := MustNetwork("1", "2")
	odd := func(v fact.Value) bool { return (v[len(v)-1]-'0')%2 == 1 }
	p1 := PolicyFunc(func(f fact.Fact) []NodeID {
		if odd(f.Arg(0)) {
			return []NodeID{"1"}
		}
		return []NodeID{"2"}
	})
	input := fact.MustParseInstance(`E(1,3) E(3,4) E(4,6)`)

	// A transducer that records what it sees.
	spy := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"SawAdom": 1, "SawPol": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			out := fact.NewInstance()
			if !d.Has(fact.New(RelId, "1")) {
				return out, nil // only observe node 1
			}
			for _, f := range d.Rel(RelMyAdom) {
				out.Add(fact.New("SawAdom", f.Arg(0)))
			}
			for _, f := range d.Rel(PolicyRel("E")) {
				out.Add(fact.New("SawPol", f.Arg(0), f.Arg(1)))
			}
			return out, nil
		},
	}
	sim, err := NewSimulation(net, spy, p1, PolicyAware, input)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Heartbeat("1"); err != nil {
		t.Fatal(err)
	}
	out := sim.Output()

	// MyAdom at node 1: node ids {1, 2} plus local values {3, 4}
	// (value 6 has not been received).
	wantAdom := fact.NewValueSet("1", "2", "3", "4")
	for v := range wantAdom {
		if !out.Has(fact.New("SawAdom", v)) {
			t.Errorf("MyAdom(%s) missing", v)
		}
	}
	if out.Has(fact.New("SawAdom", "6")) {
		t.Error("node 1 should not know value 6 yet")
	}
	// policyE(a, b) for odd a over the known domain — e.g. (1, 4) and
	// (3, 2) are shown; (4, 1) is not (node 2's responsibility).
	if !out.Has(fact.New("SawPol", "1", "4")) || !out.Has(fact.New("SawPol", "3", "2")) {
		t.Errorf("expected policyE facts for odd first attributes: %v", out.Rel("SawPol"))
	}
	if out.Has(fact.New("SawPol", "4", "1")) {
		t.Error("policyE(4,1) should not be shown to node 1")
	}
}

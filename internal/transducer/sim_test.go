package transducer

import (
	"testing"

	"repro/internal/fact"
)

// echoTransducer outputs its local input facts relabeled O(a,b); no
// messages, no memory.
func echoTransducer() *Transducer {
	return &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
			Msg: fact.Schema{},
			Mem: fact.Schema{},
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			out := fact.NewInstance()
			for _, f := range d.Rel("E") {
				out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
			}
			return out, nil
		},
	}
}

// forwardTransducer broadcasts its local inputs once (Sent
// bookkeeping) and outputs every fact it has ever seen, locally or by
// message. On any policy and fair run, the final output is the full
// input relabeled.
func forwardTransducer() *Transducer {
	return &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 2}),
			Msg: fact.MustSchema(map[string]int{"F": 2}),
			Mem: fact.MustSchema(map[string]int{"Seen": 2, "Sent": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			out := fact.NewInstance()
			for _, rel := range []string{"E", "F", "Seen"} {
				for _, f := range d.Rel(rel) {
					out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
				}
			}
			return out, nil
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			ins := fact.NewInstance()
			for _, f := range d.Rel("E") {
				ins.Add(fact.New("Sent", f.Arg(0), f.Arg(1)))
			}
			for _, f := range d.Rel("F") {
				ins.Add(fact.New("Seen", f.Arg(0), f.Arg(1)))
			}
			return ins, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			snd := fact.NewInstance()
			for _, f := range d.Rel("E") {
				if !d.Has(fact.New("Sent", f.Arg(0), f.Arg(1))) {
					snd.Add(fact.New("F", f.Arg(0), f.Arg(1)))
				}
			}
			return snd, nil
		},
	}
}

var graphIn = fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`)

func wantO(in *fact.Instance) *fact.Instance {
	out := fact.NewInstance()
	for _, f := range in.Rel("E") {
		out.Add(fact.New("O", f.Arg(0), f.Arg(1)))
	}
	return out
}

func TestSimulationEcho(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	sim, err := NewSimulation(net, echoTransducer(), HashPolicy(net), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(10)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(wantO(graphIn)) {
		t.Errorf("echo output = %v", out)
	}
	if sim.Metrics.MessagesSent != 0 {
		t.Errorf("echo sent %d messages", sim.Metrics.MessagesSent)
	}
}

func TestSimulationForwardAllPolicies(t *testing.T) {
	net := MustNetwork("n1", "n2", "n3")
	policies := map[string]Policy{
		"hash":      HashPolicy(net),
		"firstattr": FirstAttrPolicy(net),
		"guided":    DomainGuided(HashAssignment(net)),
		"replicate": ReplicateAll(net),
		"oneNode":   AllToNode("n2"),
	}
	for name, p := range policies {
		sim, err := NewSimulation(net, forwardTransducer(), p, Original, graphIn)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.RunToQuiescence(20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Equal(wantO(graphIn)) {
			t.Errorf("%s: output = %v", name, out)
		}
	}
}

// Confluence: random fair runs produce the same output as round-robin.
func TestSimulationConfluence(t *testing.T) {
	net := MustNetwork("n1", "n2")
	for seed := int64(0); seed < 10; seed++ {
		sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, graphIn)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.RunRandom(seed, 15, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(wantO(graphIn)) {
			t.Errorf("seed %d: output = %v", seed, out)
		}
	}
}

func TestSimulationEveryNodeOutputs(t *testing.T) {
	// With the forwarding transducer each individual node eventually
	// holds the full output locally.
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(20); err != nil {
		t.Fatal(err)
	}
	for _, x := range net {
		local := sim.State(x).Restrict(fact.MustSchema(map[string]int{"O": 2}))
		if !local.Equal(wantO(graphIn)) {
			t.Errorf("node %s local output = %v", x, local)
		}
	}
}

func TestSimulationMetrics(t *testing.T) {
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), HashPolicy(net), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(20); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics
	if m.Transitions == 0 || m.MessagesSent == 0 {
		t.Errorf("metrics not accumulated: %+v", m)
	}
	// Each of the 3 input facts is sent exactly once to the 1 other node.
	if m.MessagesSent != 3 {
		t.Errorf("MessagesSent = %d, want 3", m.MessagesSent)
	}
	if m.MessagesDelivered != 3 {
		t.Errorf("MessagesDelivered = %d, want 3", m.MessagesDelivered)
	}
}

func TestSystemFactsVisibility(t *testing.T) {
	// A transducer that copies its visible system facts into output.
	sysSpy := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"SawId": 1, "SawAll": 1, "SawAdom": 1, "SawPol": 2}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			out := fact.NewInstance()
			for _, f := range d.Rel(RelId) {
				out.Add(fact.New("SawId", f.Arg(0)))
			}
			for _, f := range d.Rel(RelAll) {
				out.Add(fact.New("SawAll", f.Arg(0)))
			}
			for _, f := range d.Rel(RelMyAdom) {
				out.Add(fact.New("SawAdom", f.Arg(0)))
			}
			for _, f := range d.Rel(PolicyRel("E")) {
				out.Add(fact.New("SawPol", f.Arg(0), f.Arg(1)))
			}
			return out, nil
		},
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)

	cases := []struct {
		mod                  Model
		id, all, adom, polcy bool
	}{
		{Original, true, true, false, false},
		{PolicyAware, true, true, true, true},
		{PolicyAwareNoAll, true, false, true, true},
		{OriginalNoAll, true, false, false, false},
		{Oblivious, false, false, false, false},
	}
	for _, c := range cases {
		sim, err := NewSimulation(net, sysSpy, ReplicateAll(net), c.mod, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.RunToQuiescence(5)
		if err != nil {
			t.Fatal(err)
		}
		if got := !out.RestrictRel("SawId").Empty(); got != c.id {
			t.Errorf("%+v: Id visible = %v", c.mod, got)
		}
		if got := !out.RestrictRel("SawAll").Empty(); got != c.all {
			t.Errorf("%+v: All visible = %v", c.mod, got)
		}
		if got := !out.RestrictRel("SawAdom").Empty(); got != c.adom {
			t.Errorf("%+v: MyAdom visible = %v", c.mod, got)
		}
		if got := !out.RestrictRel("SawPol").Empty(); got != c.polcy {
			t.Errorf("%+v: policyR visible = %v", c.mod, got)
		}
	}
}

func TestNoAllShrinksBase(t *testing.T) {
	// Without All, MyAdom contains only the node's own id plus the
	// values of its visible facts — not the other node ids.
	spy := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"SawAdom": 1}),
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			out := fact.NewInstance()
			for _, f := range d.Rel(RelMyAdom) {
				out.Add(fact.New("SawAdom", f.Arg(0)))
			}
			return out, nil
		},
	}
	net := MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b)`)
	sim, err := NewSimulation(net, spy, AllToNode("n1"), PolicyAwareNoAll, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(5)
	if err != nil {
		t.Fatal(err)
	}
	// n1 sees {n1, a, b}; n2 sees {n2} only.
	want := fact.MustParseInstance(`SawAdom(n1) SawAdom(a) SawAdom(b) SawAdom(n2)`)
	if !out.Equal(want) {
		t.Errorf("MyAdom without All = %v, want %v", out, want)
	}
}

func TestHeartbeatDoesNotRead(t *testing.T) {
	// A heartbeat never consumes buffered messages.
	net := MustNetwork("n1", "n2")
	sim, err := NewSimulation(net, forwardTransducer(), AllToNode("n1"), Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	// n1 heartbeat sends its 3 facts to n2.
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	if sim.Buffered("n2") != 3 {
		t.Fatalf("n2 buffer = %d, want 3", sim.Buffered("n2"))
	}
	if _, err := sim.Heartbeat("n2"); err != nil {
		t.Fatal(err)
	}
	if sim.Buffered("n2") != 3 {
		t.Errorf("heartbeat consumed messages: buffer = %d", sim.Buffered("n2"))
	}
	if sim.Metrics.Heartbeats != 2 {
		t.Errorf("Heartbeats = %d", sim.Metrics.Heartbeats)
	}
}

func TestRejectsBadInput(t *testing.T) {
	net := MustNetwork("n1")
	_, err := NewSimulation(net, echoTransducer(), HashPolicy(net), Original, fact.MustParseInstance(`R(a)`))
	if err == nil {
		t.Error("input outside the input schema accepted")
	}
}

func TestRejectsOutOfSchemaQueryOutput(t *testing.T) {
	bad := echoTransducer()
	bad.Out = func(d *fact.Instance) (*fact.Instance, error) {
		return fact.MustParseInstance(`X(a)`), nil
	}
	net := MustNetwork("n1")
	sim, err := NewSimulation(net, bad, HashPolicy(net), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(5); err == nil {
		t.Error("out-of-schema query output accepted")
	}
}

func TestMemoryDeletion(t *testing.T) {
	// A transducer that inserts Flag(a) when it has no Flag, and
	// deletes it when it does — oscillating memory; quiescence must
	// fail, demonstrating the Qdel semantics and the run bound.
	osc := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Mem: fact.MustSchema(map[string]int{"Flag": 1}),
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			if d.RestrictRel("Flag").Empty() {
				return fact.MustParseInstance(`Flag(on)`), nil
			}
			return fact.NewInstance(), nil
		},
		Del: func(d *fact.Instance) (*fact.Instance, error) {
			if !d.RestrictRel("Flag").Empty() {
				return fact.MustParseInstance(`Flag(on)`), nil
			}
			return fact.NewInstance(), nil
		},
	}
	net := MustNetwork("n1")
	sim, err := NewSimulation(net, osc, HashPolicy(net), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(10); err == nil {
		t.Error("oscillating transducer should not quiesce")
	}
}

func TestInsDelCancellation(t *testing.T) {
	// A fact both inserted and deleted in the same transition leaves
	// memory unchanged (Section 4.1.3's symmetric difference).
	tr := &Transducer{
		Schema: Schema{
			In:  fact.MustSchema(map[string]int{"E": 2}),
			Out: fact.MustSchema(map[string]int{"O": 1}),
			Mem: fact.MustSchema(map[string]int{"Flag": 1}),
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`Flag(on)`), nil
		},
		Del: func(d *fact.Instance) (*fact.Instance, error) {
			return fact.MustParseInstance(`Flag(on)`), nil
		},
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			if !d.RestrictRel("Flag").Empty() {
				return fact.MustParseInstance(`O(seen)`), nil
			}
			return fact.NewInstance(), nil
		},
	}
	net := MustNetwork("n1")
	sim, err := NewSimulation(net, tr, HashPolicy(net), Original, fact.MustParseInstance(`E(a,b)`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("cancelled insertion leaked into memory: %v", out)
	}
}

func TestHeartbeatPrefixComputes(t *testing.T) {
	net := MustNetwork("n1", "n2")
	// Ideal policy: everything at n1 — the forwarding transducer
	// outputs all of Q(I) at n1 with heartbeats only.
	ok, err := CoordinationFreeWitness(net, forwardTransducer(), AllToNode("n1"), Original,
		graphIn, wantO(graphIn), "n1", 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("forwarding transducer should have a heartbeat-only witness under the ideal policy")
	}

	// Under a split policy, n1 alone cannot produce the full output
	// with heartbeats (it never reads the other fragment).
	split := PolicyFunc(func(f fact.Fact) []NodeID {
		if f.Arg(0) == "a" {
			return []NodeID{"n1"}
		}
		return []NodeID{"n2"}
	})
	sim, err := NewSimulation(net, forwardTransducer(), split, Original, graphIn)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = HeartbeatPrefixComputes(sim, "n1", wantO(graphIn), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("split policy should not admit a single-node heartbeat witness")
	}
}

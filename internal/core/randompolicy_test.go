package core

import (
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Random sampling of the "for all distribution policies" quantifier:
// each strategy stays correct across 25 random policies (resp. random
// domain assignments) and random inputs.
func TestStrategiesUnderRandomPolicies(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2", "n3")
	rng := rand.New(rand.NewSource(83))

	for seed := int64(0); seed < 25; seed++ {
		in := generate.RandomGraph(rng, "v", 4, 5)

		// Broadcast + TC under an arbitrary random policy.
		{
			q := queries.TC()
			want, err := q.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Compute(Broadcast, q, net, transducer.RandomPolicy(net, seed), in, 0)
			if err != nil {
				t.Fatalf("broadcast seed %d: %v", seed, err)
			}
			if !res.Output.Equal(want) {
				t.Errorf("broadcast seed %d on %v: got %v, want %v", seed, in, res.Output, want)
			}
		}

		// Absence + NoLoop under an arbitrary random policy.
		{
			q := queries.NoLoop()
			want, err := q.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Compute(Absence, q, net, transducer.RandomPolicy(net, seed), in, 0)
			if err != nil {
				t.Fatalf("absence seed %d: %v", seed, err)
			}
			if !res.Output.Equal(want) {
				t.Errorf("absence seed %d on %v: got %v, want %v", seed, in, res.Output, want)
			}
		}

		// DomainRequest + QTC under a random domain-guided policy.
		{
			q := queries.ComplementTC()
			want, err := q.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			pol := transducer.DomainGuided(transducer.RandomAssignment(net, seed))
			res, err := Compute(DomainRequest, q, net, pol, in, 0)
			if err != nil {
				t.Fatalf("domainreq seed %d: %v", seed, err)
			}
			if !res.Output.Equal(want) {
				t.Errorf("domainreq seed %d on %v: got %v, want %v", seed, in, res.Output, want)
			}
		}
	}
}

// Random policies are total, stable, and in-network.
func TestRandomPolicyWellFormed(t *testing.T) {
	net := transducer.MustNetwork("a", "b", "c")
	pol := transducer.RandomPolicy(net, 7)
	alpha := transducer.RandomAssignment(net, 7)
	for _, f := range []fact.Fact{
		fact.New("E", "x", "y"), fact.New("E", "x", "x"), fact.New("R", "z"),
	} {
		nodes := pol.Nodes(f)
		if len(nodes) == 0 {
			t.Errorf("empty node set for %v", f)
		}
		again := pol.Nodes(f)
		if len(again) != len(nodes) {
			t.Errorf("policy unstable for %v", f)
		}
		for _, x := range nodes {
			if !net.Has(x) {
				t.Errorf("foreign node %s", x)
			}
		}
	}
	for _, v := range []fact.Value{"x", "y", "zzz"} {
		if len(alpha.Assign(v)) == 0 {
			t.Errorf("empty assignment for %s", v)
		}
	}
	// A guided policy from a random assignment passes the
	// domain-guidedness check.
	guided := transducer.DomainGuided(alpha)
	if !transducer.IsDomainGuidedOn(guided, fact.GraphSchema(), []fact.Value{"x", "y", "z"}) {
		t.Error("random assignment's guided policy failed the check")
	}
}

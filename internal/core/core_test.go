package core

import (
	"fmt"
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// evalCentral computes the reference answer Q(I).
func evalCentral(t *testing.T, q monotone.Query, in *fact.Instance) *fact.Instance {
	t.Helper()
	out, err := q.Eval(in)
	if err != nil {
		t.Fatalf("central evaluation of %s: %v", q.Name(), err)
	}
	return out
}

// networksUnderTest returns networks of 1, 2 and 3 nodes.
func networksUnderTest() []transducer.Network {
	return []transducer.Network{
		transducer.MustNetwork("n1"),
		transducer.MustNetwork("n1", "n2"),
		transducer.MustNetwork("n1", "n2", "n3"),
	}
}

// generalPolicies returns representative non-domain-guided policies.
func generalPolicies(net transducer.Network) map[string]transducer.Policy {
	return map[string]transducer.Policy{
		"hash":      transducer.HashPolicy(net),
		"firstattr": transducer.FirstAttrPolicy(net),
		"replicate": transducer.ReplicateAll(net),
		"oneNode":   transducer.AllToNode(net[0]),
	}
}

// guidedPolicies returns representative domain-guided policies.
func guidedPolicies(net transducer.Network) map[string]transducer.Policy {
	return map[string]transducer.Policy{
		"hashGuided": transducer.DomainGuided(transducer.HashAssignment(net)),
		"oneGuided":  transducer.DomainGuided(transducer.AssignAllTo(net[0])),
	}
}

var testGraphs = []*fact.Instance{
	fact.NewInstance(),
	fact.MustParseInstance(`E(a,b)`),
	fact.MustParseInstance(`E(a,b) E(b,c) E(c,d)`),
	fact.MustParseInstance(`E(a,b) E(b,a) E(c,c)`),
	generate.DisjointUnion(generate.Cycle("p", 3), generate.Path("q", 2)),
}

// F0: the broadcast strategy computes monotone queries on every
// network and policy.
func TestBroadcastComputesMonotone(t *testing.T) {
	q := queries.TC()
	for _, in := range testGraphs {
		want := evalCentral(t, q, in)
		for _, net := range networksUnderTest() {
			for name, pol := range generalPolicies(net) {
				res, err := Compute(Broadcast, q, net, pol, in, 0)
				if err != nil {
					t.Fatalf("net=%d pol=%s: %v", len(net), name, err)
				}
				if !res.Output.Equal(want) {
					t.Errorf("net=%d pol=%s in=%v: got %v, want %v", len(net), name, in, res.Output, want)
				}
			}
		}
	}
}

// Negative: broadcast is wrong beyond M — NoLoop ∈ Mdistinct \ M
// produces a wrong, never-retracted fact when the self-loop arrives
// after the vertex was first seen.
func TestBroadcastFailsBeyondM(t *testing.T) {
	q := queries.NoLoop()
	in := fact.MustParseInstance(`E(a,b) E(a,a)`)
	want := evalCentral(t, q, in) // {O(b)}
	net := transducer.MustNetwork("n1", "n2")
	// Split so that n1 sees E(a,b) but not E(a,a).
	pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
		if f.Equal(fact.New("E", "a", "a")) {
			return []transducer.NodeID{"n2"}
		}
		return []transducer.NodeID{"n1"}
	})
	res, err := Compute(Broadcast, q, net, pol, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Equal(want) {
		t.Fatal("broadcast unexpectedly computed a non-monotone query correctly; the negative witness is broken")
	}
	if !res.Output.Has(fact.New("O", "a")) {
		t.Errorf("expected the premature wrong fact O(a); got %v", res.Output)
	}
}

// F1 (Theorem 4.3): the absence strategy computes Mdistinct queries on
// every network and every policy.
func TestAbsenceComputesMdistinct(t *testing.T) {
	for _, q := range []monotone.Query{queries.NoLoop(), queries.TC()} {
		for _, in := range testGraphs {
			want := evalCentral(t, q, in)
			for _, net := range networksUnderTest() {
				for name, pol := range generalPolicies(net) {
					res, err := Compute(Absence, q, net, pol, in, 0)
					if err != nil {
						t.Fatalf("%s net=%d pol=%s: %v", q.Name(), len(net), name, err)
					}
					if !res.Output.Equal(want) {
						t.Errorf("%s net=%d pol=%s in=%v: got %v, want %v", q.Name(), len(net), name, in, res.Output, want)
					}
				}
			}
		}
	}
}

// Negative: the absence strategy is wrong beyond Mdistinct. QTC is in
// Mdisjoint \ Mdistinct; under a policy that makes one node complete
// on a strict sub-domain it emits O(b,a) although b reaches a through
// the rest of the graph.
func TestAbsenceFailsBeyondMdistinct(t *testing.T) {
	q := queries.ComplementTC()
	in := fact.MustParseInstance(`E(a,b) E(b,x) E(x,a)`)
	want := evalCentral(t, q, in)
	net := transducer.MustNetwork("n1", "n2")
	// n1 is responsible for every fact over {a, b, n1}; the rest go to n2.
	over := fact.NewValueSet("a", "b", "n1")
	pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
		if f.ADom().Minus(over).Equal(fact.NewValueSet()) {
			return []transducer.NodeID{"n1"}
		}
		return []transducer.NodeID{"n2"}
	})
	res, err := Compute(Absence, q, net, pol, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Equal(want) {
		t.Fatal("absence strategy unexpectedly computed QTC correctly; the negative witness is broken")
	}
	if !res.Output.Has(fact.New("O", "b", "a")) {
		t.Errorf("expected premature wrong fact O(b,a); got %v vs want %v", res.Output, want)
	}
}

// F2 (Theorem 4.4): the domain-request strategy computes Mdisjoint
// queries under every domain-guided policy — including the
// non-monotone QTC and the paper's headline win-move query.
func TestDomainRequestComputesMdisjoint(t *testing.T) {
	for _, q := range []monotone.Query{queries.ComplementTC(), queries.TC(), queries.NoLoop()} {
		for _, in := range testGraphs {
			want := evalCentral(t, q, in)
			for _, net := range networksUnderTest() {
				for name, pol := range guidedPolicies(net) {
					res, err := Compute(DomainRequest, q, net, pol, in, 0)
					if err != nil {
						t.Fatalf("%s net=%d pol=%s: %v", q.Name(), len(net), name, err)
					}
					if !res.Output.Equal(want) {
						t.Errorf("%s net=%d pol=%s in=%v: got %v, want %v", q.Name(), len(net), name, in, res.Output, want)
					}
				}
			}
		}
	}
}

// The headline result: win-move is computed coordination-free under
// domain guidance.
func TestDomainRequestWinMove(t *testing.T) {
	q := queries.WinMove()
	games := []*fact.Instance{
		fact.MustParseInstance(`Move(a,b) Move(b,c)`),
		fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c)`),
		fact.MustParseInstance(`Move(a,b) Move(b,a)`),
		generate.DisjointUnion(
			fact.MustParseInstance(`Move(a,b) Move(b,c)`),
			fact.MustParseInstance(`Move(x,y)`),
		),
	}
	for _, in := range games {
		want := evalCentral(t, q, in)
		for _, net := range networksUnderTest() {
			for name, pol := range guidedPolicies(net) {
				res, err := Compute(DomainRequest, q, net, pol, in, 0)
				if err != nil {
					t.Fatalf("net=%d pol=%s: %v", len(net), name, err)
				}
				if !res.Output.Equal(want) {
					t.Errorf("net=%d pol=%s in=%v: got %v, want %v", len(net), name, in, res.Output, want)
				}
			}
		}
	}
}

// The three-valued win-move classification (Won/Lost/Drawn) also runs
// coordination-free under domain guidance.
func TestDomainRequestWinMoveThreeValued(t *testing.T) {
	q := queries.WinMoveThreeValued()
	in := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`)
	want := evalCentral(t, q, in)
	net := transducer.MustNetwork("n1", "n2")
	pol := transducer.DomainGuided(transducer.HashAssignment(net))
	res, err := Compute(DomainRequest, q, net, pol, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("three-valued distributed %v != central %v", res.Output, want)
	}
	ok, err := VerifyCoordinationFree(DomainRequest, q, net, in)
	if err != nil || !ok {
		t.Errorf("three-valued coordination-free witness: ok=%v err=%v", ok, err)
	}
}

// Negative: the domain-request strategy is wrong beyond Mdisjoint.
// The triangle query (∈ C \ Mdisjoint) emits the local triangle at a
// node that cannot know about the disjoint second triangle.
func TestDomainRequestFailsBeyondMdisjoint(t *testing.T) {
	q := queries.TrianglesUnlessTwoDisjoint()
	in := generate.DisjointUnion(generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
	want := evalCentral(t, q, in) // empty: two disjoint triangles exist
	if !want.Empty() {
		t.Fatal("setup: expected empty reference output")
	}
	net := transducer.MustNetwork("n1", "n2")
	first := fact.NewValueSet("a", "b", "c")
	alpha := transducer.AssignFunc(func(v fact.Value) []transducer.NodeID {
		if first.Has(v) {
			return []transducer.NodeID{"n1"}
		}
		return []transducer.NodeID{"n2"}
	})
	// A fair run can deliver n2's OK before n2's value announcements;
	// in that window n1 is complete over {n1, a, b, c} and emits its
	// local triangle although the full input has two disjoint ones.
	tr := MustBuild(DomainRequest, q)
	sim, err := transducer.NewSimulation(net, tr, transducer.DomainGuided(alpha), DomainRequest.RequiredModel(), in)
	if err != nil {
		t.Fatal(err)
	}
	// n1 announces and requests an OK for its own identifier.
	if _, err := sim.Heartbeat("n1"); err != nil {
		t.Fatal(err)
	}
	// n2 reads everything and (among others) replies OK(n1, n1).
	if _, err := sim.Deliver("n2"); err != nil {
		t.Fatal(err)
	}
	// Deliver only the OK to n1 — the announcements stay buffered.
	if _, err := sim.DeliverWhere("n1", func(f fact.Fact) bool { return f.Rel() == "Xok" }); err != nil {
		t.Fatal(err)
	}
	if sim.Output().Empty() {
		t.Fatal("expected wrong (premature) triangle outputs for a query outside Mdisjoint")
	}
	// The wrong facts are never retracted: the completed fair run
	// differs from Q(I) = ∅.
	final, err := sim.RunToQuiescence(64)
	if err != nil {
		t.Fatal(err)
	}
	if final.Empty() {
		t.Error("wrong outputs disappeared; outputs must be monotone")
	}
}

// Confluence: random runs agree with round-robin runs for all
// strategies.
func TestStrategiesConfluent(t *testing.T) {
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d)`)
	net := transducer.MustNetwork("n1", "n2", "n3")
	cases := []struct {
		s   Strategy
		q   monotone.Query
		pol transducer.Policy
	}{
		{Broadcast, queries.TC(), transducer.HashPolicy(net)},
		{Absence, queries.NoLoop(), transducer.HashPolicy(net)},
		{DomainRequest, queries.ComplementTC(), transducer.DomainGuided(transducer.HashAssignment(net))},
	}
	for _, c := range cases {
		ref, err := Compute(c.s, c.q, net, c.pol, in, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.s, err)
		}
		for seed := int64(0); seed < 5; seed++ {
			res, err := ComputeRandom(c.s, c.q, net, c.pol, in, seed, 20, 0)
			if err != nil {
				t.Fatalf("%v seed %d: %v", c.s, seed, err)
			}
			if !res.Output.Equal(ref.Output) {
				t.Errorf("%v seed %d: random run output %v != %v", c.s, seed, res.Output, ref.Output)
			}
		}
	}
}

// Definition 3 witnesses: each strategy has a heartbeat-only run under
// its ideal policy producing the full answer.
func TestStrategiesCoordinationFree(t *testing.T) {
	cases := []struct {
		s Strategy
		q monotone.Query
	}{
		{Broadcast, queries.TC()},
		{Absence, queries.NoLoop()},
		{Absence, queries.TC()},
		{DomainRequest, queries.ComplementTC()},
		{DomainRequest, queries.WinMove()},
	}
	for _, c := range cases {
		var in *fact.Instance
		if c.q.InputSchema().Has("Move") {
			in = fact.MustParseInstance(`Move(a,b) Move(b,c)`)
		} else {
			in = fact.MustParseInstance(`E(a,b) E(b,c)`)
		}
		for _, net := range networksUnderTest() {
			ok, err := VerifyCoordinationFree(c.s, c.q, net, in)
			if err != nil {
				t.Fatalf("%v %s net=%d: %v", c.s, c.q.Name(), len(net), err)
			}
			if !ok {
				t.Errorf("%v %s net=%d: no heartbeat-only witness", c.s, c.q.Name(), len(net))
			}
		}
	}
}

// Theorem 4.5 (executable side): none of the strategies reads All —
// they are declared to run in All-free models — and they still compute
// their queries there (checked above, since RequiredModel never shows
// All). Here we additionally check the models explicitly.
func TestStrategiesAllFree(t *testing.T) {
	if Broadcast.RequiredModel().ShowAll || Absence.RequiredModel().ShowAll || DomainRequest.RequiredModel().ShowAll {
		t.Error("a strategy claims to need the All relation, contradicting Theorem 4.5")
	}
	if Broadcast.RequiredModel() != (transducer.Oblivious) {
		t.Error("broadcast should be oblivious (neither Id nor All)")
	}
}

func TestStrategyMetadata(t *testing.T) {
	if Broadcast.Class() != monotone.M || Absence.Class() != monotone.MDistinct || DomainRequest.Class() != monotone.MDisjoint {
		t.Error("strategy/class mapping wrong")
	}
	for _, s := range []Strategy{Broadcast, Absence, DomainRequest} {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
		pol := s.IdealPolicy("n1")
		f := fact.New("E", "u", "v")
		nodes := pol.Nodes(f)
		if len(nodes) != 1 || nodes[0] != "n1" {
			t.Errorf("%v ideal policy nodes = %v", s, nodes)
		}
	}
	// The DomainRequest ideal policy must be domain-guided.
	net := transducer.MustNetwork("n1", "n2")
	if !transducer.IsDomainGuidedOn(DomainRequest.IdealPolicy("n1"), fact.GraphSchema(), []fact.Value{"a", "b", "n1"}) {
		t.Error("DomainRequest ideal policy is not domain-guided")
	}
	_ = net
}

func TestBuildRejectsNamespaceCollision(t *testing.T) {
	q := monotone.NewFunc("bad", fact.MustSchema(map[string]int{"Xf_E": 2}), fact.MustSchema(map[string]int{"O": 2}),
		func(i *fact.Instance) (*fact.Instance, error) { return fact.NewInstance(), nil })
	if _, err := Build(Broadcast, q); err == nil {
		t.Error("internal namespace collision accepted")
	}
}

// Metrics sanity: replication sends nothing new on a single node;
// multi-node runs send messages.
func TestComputeMetrics(t *testing.T) {
	q := queries.TC()
	in := fact.MustParseInstance(`E(a,b) E(b,c)`)
	single, err := Compute(Broadcast, q, transducer.MustNetwork("n1"), transducer.AllToNode("n1"), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Metrics.MessagesSent != 0 {
		t.Errorf("single-node run sent %d messages", single.Metrics.MessagesSent)
	}
	multi, err := Compute(Broadcast, q, transducer.MustNetwork("n1", "n2"), transducer.HashPolicy(transducer.MustNetwork("n1", "n2")), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Metrics.MessagesSent == 0 {
		t.Error("two-node run sent no messages")
	}
}

func TestComputeLargerRandomInputs(t *testing.T) {
	// Exercise all three strategies on a slightly larger random graph.
	net := transducer.MustNetwork("n1", "n2", "n3")
	in := fact.NewInstance()
	for k := 0; k < 8; k++ {
		in.Add(fact.New("E",
			fact.Value(fmt.Sprintf("v%d", (k*3)%5)),
			fact.Value(fmt.Sprintf("v%d", (k*7+1)%5))))
	}
	cases := []struct {
		s   Strategy
		q   monotone.Query
		pol transducer.Policy
	}{
		{Broadcast, queries.TC(), transducer.HashPolicy(net)},
		{Absence, queries.NoLoop(), transducer.FirstAttrPolicy(net)},
		{DomainRequest, queries.ComplementTC(), transducer.DomainGuided(transducer.HashAssignment(net))},
	}
	for _, c := range cases {
		want := evalCentral(t, c.q, in)
		res, err := Compute(c.s, c.q, net, c.pol, in, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.s, err)
		}
		if !res.Output.Equal(want) {
			t.Errorf("%v: got %v, want %v", c.s, res.Output, want)
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// buildDomainRequest constructs the Theorem 4.4 strategy (class
// Mdisjoint) for domain-guided distribution policies. Every node
// announces the active domain of its local fragment (plus its own
// identifier). For each known value a it is not responsible for, a
// node x sends the request Xreq(x, a); any node responsible for a
// answers with every local input fact containing a (Xr_R(x, a, ā)),
// x acknowledges each received fact (Xk_R(x, a, ā)), and once the
// responsible node has seen acknowledgments for everything it sent it
// issues Xok(x, a). A node is complete when every value in its MyAdom
// is either its own responsibility (domain guidance then guarantees it
// already holds every input fact containing the value) or covered by
// an OK. Its collected facts I' then satisfy
// I' = {f ∈ I | adom(f) ∩ MyAdom ≠ ∅}, the rest of the input is
// domain-disjoint from I', and Q(I') ⊆ Q(I) for every Q ∈ Mdisjoint.
func buildDomainRequest(q monotone.Query, in, out fact.Schema) (*transducer.Transducer, error) {
	msg := fact.MustSchema(map[string]int{relHello: 1, relAnn: 1, relReq: 2, relOk: 2})
	mem := fact.MustSchema(map[string]int{
		relVal: 1, relHelloS: 1, relAnnS: 1, relReqS: 1, relOkGot: 1,
		relReqG(): 2, relOkS(): 2,
	})
	for rel, ar := range in {
		msg[relResp(rel)] = ar + 2
		msg[relAck(rel)] = ar + 2
		mem[relGot(rel)] = ar
		mem[relRespS(rel)] = ar + 2
		mem[relAckG(rel)] = ar + 2
		mem[relAckS(rel)] = ar + 2
	}
	sch := transducer.Schema{In: in, Out: out, Msg: msg, Mem: mem}
	if err := sch.Validate(); err != nil {
		return nil, err
	}

	// localADom returns the active domain of the node's input fragment.
	localADom := func(d *fact.Instance) fact.ValueSet {
		s := make(fact.ValueSet)
		for rel := range in {
			for _, f := range d.Rel(rel) {
				s.AddAll(f.ADom())
			}
		}
		return s
	}

	// pendingRequests lists the (requester, value) pairs visible at
	// this node (stored or just delivered) for which it is responsible.
	pendingRequests := func(d *fact.Instance) [][2]fact.Value {
		seen := make(map[[2]fact.Value]bool)
		var reqs [][2]fact.Value
		collect := func(f fact.Fact) {
			pair := [2]fact.Value{f.Arg(0), f.Arg(1)}
			if !seen[pair] && responsibleForValue(d, in, pair[1]) {
				seen[pair] = true
				reqs = append(reqs, pair)
			}
		}
		for _, f := range d.Rel(relReq) {
			collect(f)
		}
		for _, f := range d.Rel(relReqG()) {
			collect(f)
		}
		return reqs
	}

	// owedResponse identifies one response message this node owes a
	// requester: the input relation it concerns and the message
	// arguments (requester, value, fact tuple).
	type owedResponse struct {
		rel  string
		args fact.Tuple
	}

	// respFactsFor lists the responses this node owes the requester
	// for value a: one per local input fact containing a.
	respFactsFor := func(d *fact.Instance, requester, a fact.Value) []owedResponse {
		var resp []owedResponse
		for rel := range in {
			for _, f := range d.Rel(rel) {
				if f.ADom().Has(a) {
					args := append(fact.Tuple{requester, a}, f.Args()...)
					resp = append(resp, owedResponse{rel: rel, args: args})
				}
			}
		}
		return resp
	}

	// complete reports whether every value in MyAdom is covered: the
	// node is responsible for it, or an OK was stored, or an OK
	// addressed to this node is being delivered right now.
	complete := func(d *fact.Instance) bool {
		id, hasID := selfID(d)
		okNow := make(fact.ValueSet)
		if hasID {
			for _, f := range d.Rel(relOk) {
				if f.Arg(0) == id {
					okNow.Add(f.Arg(1))
				}
			}
		}
		for _, a := range myAdom(d) {
			if responsibleForValue(d, in, a) {
				continue
			}
			if d.Has(fact.New(relOkGot, a)) || okNow.Has(a) {
				continue
			}
			return false
		}
		return true
	}

	t := &transducer.Transducer{
		Schema: sch,
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			if !complete(d) {
				return fact.NewInstance(), nil
			}
			known := knownFacts(d, in)
			res, err := q.Eval(known)
			if err != nil {
				return nil, fmt.Errorf("core: domain-request strategy evaluating %s: %w", q.Name(), err)
			}
			return res, nil
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			ins := fact.NewInstance()
			id, hasID := selfID(d)

			// Persist announced values and hello identifiers.
			for _, f := range d.Rel(relAnn) {
				ins.Add(fact.FromTuple(relVal, f.Args()))
			}
			for _, f := range d.Rel(relHello) {
				ins.Add(fact.FromTuple(relVal, f.Args()))
			}
			// Mark our announcements as sent.
			for a := range localADom(d) {
				ins.Add(fact.New(relAnnS, a))
			}
			if hasID {
				ins.Add(fact.New(relHelloS, id))
			}

			// Requester side: store responses addressed to us, mark
			// their acknowledgments sent; store received OKs.
			for rel, ar := range in {
				for _, f := range d.Rel(relResp(rel)) {
					if !hasID || f.Arg(0) != id {
						continue
					}
					args := f.Args()
					ins.Add(fact.FromTuple(relGot(rel), args[2:2+ar]))
					ins.Add(fact.FromTuple(relAckS(rel), args))
				}
			}
			for _, f := range d.Rel(relOk) {
				if hasID && f.Arg(0) == id {
					ins.Add(fact.New(relOkGot, f.Arg(1)))
				}
			}
			// Mark requests sent for uncovered values (requests carry
			// our identifier, so they need Id).
			if hasID {
				for _, a := range myAdom(d) {
					if !responsibleForValue(d, in, a) {
						ins.Add(fact.New(relReqS, a))
					}
				}
			}

			// Responder side: store requests, sent responses and
			// received acknowledgments; mark OKs sent.
			for _, f := range d.Rel(relReq) {
				ins.Add(fact.FromTuple(relReqG(), f.Args()))
			}
			for _, pair := range pendingRequests(d) {
				requester, a := pair[0], pair[1]
				acked := true
				for _, rf := range respFactsFor(d, requester, a) {
					ins.Add(fact.FromTuple(relRespS(rf.rel), rf.args))
					if !d.Has(fact.FromTuple(relAckG(rf.rel), rf.args)) {
						acked = false
					}
				}
				if acked {
					ins.Add(fact.New(relOkS(), requester, a))
				}
			}
			for rel := range in {
				for _, f := range d.Rel(relAck(rel)) {
					ins.Add(fact.FromTuple(relAckG(rel), f.Args()))
				}
			}
			return ins, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			snd := fact.NewInstance()
			id, hasID := selfID(d)

			// Announce local adom and own identifier, once.
			for a := range localADom(d) {
				if !d.Has(fact.New(relAnnS, a)) {
					snd.Add(fact.New(relAnn, a))
				}
			}
			if hasID && !d.Has(fact.New(relHelloS, id)) {
				snd.Add(fact.New(relHello, id))
			}

			// Request uncovered values.
			if hasID {
				for _, a := range myAdom(d) {
					if responsibleForValue(d, in, a) || d.Has(fact.New(relReqS, a)) {
						continue
					}
					snd.Add(fact.New(relReq, id, a))
				}
			}

			// Respond to requests we are responsible for, and send OK
			// once everything owed has been acknowledged.
			for _, pair := range pendingRequests(d) {
				requester, a := pair[0], pair[1]
				acked := true
				for _, rf := range respFactsFor(d, requester, a) {
					if !d.Has(fact.FromTuple(relAckG(rf.rel), rf.args)) {
						acked = false
					}
					if !d.Has(fact.FromTuple(relRespS(rf.rel), rf.args)) {
						snd.Add(fact.FromTuple(relResp(rf.rel), rf.args))
					}
				}
				if acked && !d.Has(fact.New(relOkS(), requester, a)) {
					snd.Add(fact.New(relOk, requester, a))
				}
			}

			// Acknowledge responses addressed to us.
			for rel := range in {
				for _, f := range d.Rel(relResp(rel)) {
					if !hasID || f.Arg(0) != id {
						continue
					}
					if !d.Has(fact.FromTuple(relAckS(rel), f.Args())) {
						snd.Add(fact.FromTuple(relAck(rel), f.Args()))
					}
				}
			}
			return snd, nil
		},
	}
	return t, nil
}

package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Fuzzing each strategy against its class boundary with the schedule
// explorer: on a query inside the class, every explored schedule —
// starvation, greedy fresh-value adversaries, seeded fault plans —
// must converge to the centralized answer without ever leaving it;
// one class up, the explorer rediscovers the known divergences.

var (
	sweepNet     = transducer.MustNetwork("n1", "n2", "n3")
	sweepGraph   = fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d) E(d,e)`)
	sweepCycle   = fact.MustParseInstance(`E(a,b) E(b,x) E(x,a)`)
	twoTriangles = fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(x,y) E(y,z) E(z,x)`)
)

func sweepGuided() transducer.Policy {
	return transducer.DomainGuided(transducer.HashAssignment(sweepNet))
}

func TestInClassStrategiesSurviveFaultSchedules(t *testing.T) {
	cases := []struct {
		name string
		s    Strategy
		q    monotone.Query
		pol  transducer.Policy
	}{
		{"broadcast/TC", Broadcast, queries.TC(), transducer.HashPolicy(sweepNet)},
		{"absence/NoLoop", Absence, queries.NoLoop(), transducer.HashPolicy(sweepNet)},
		{"domainreq/QTC", DomainRequest, queries.ComplementTC(), sweepGuided()},
	}
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, stats, err := ExploreStrategy(c.s, c.q, sweepNet, c.pol, sweepGraph,
				transducer.ExploreOptions{Seeds: seeds, Faults: FaultConfigFor(c.s)})
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatalf("in-class violation after %d schedules: %v", stats.Schedules, v)
			}
		})
	}
}

func TestExplorerRediscoversOutOfClassDivergences(t *testing.T) {
	cases := []struct {
		name string
		s    Strategy
		q    monotone.Query
		pol  transducer.Policy
		in   *fact.Instance
	}{
		// broadcast handles M only; NoLoop ∈ Mdistinct \ M.
		{"broadcast/NoLoop", Broadcast, queries.NoLoop(), transducer.HashPolicy(sweepNet), sweepGraph},
		// absence handles Mdistinct; QTC ∈ Mdisjoint \ Mdistinct.
		{"absence/QTC", Absence, queries.ComplementTC(), transducer.HashPolicy(sweepNet), sweepCycle},
		// domainreq handles Mdisjoint; triangles ∈ C \ Mdisjoint.
		{"domainreq/triangles", DomainRequest, queries.TrianglesUnlessTwoDisjoint(), sweepGuided(), twoTriangles},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, stats, err := ExploreStrategy(c.s, c.q, sweepNet, c.pol, c.in,
				transducer.ExploreOptions{Seeds: 50, Faults: FaultConfigFor(c.s)})
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("divergence not rediscovered in %d schedules", stats.Schedules)
			}
			if v.Kind != transducer.WrongFact {
				t.Errorf("Kind = %v, want wrong-fact", v.Kind)
			}
			t.Logf("rediscovered via %s: %v", v.Schedule, v.Bad)
		})
	}
}

// The explorer also demonstrates why FaultConfigFor excludes crash
// faults for DomainRequest: the Xok certificate asserts that the
// requester has stored every fact of a value — volatile state that a
// crash-restart wipes while the recovery rebroadcast re-delivers the
// stale certificate, so the restarted node can output before its data
// re-arrives.
func TestCrashRestartBreaksDomainRequestCertificates(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep needs a few hundred seeds")
	}
	v, stats, err := ExploreStrategy(DomainRequest, queries.ComplementTC(), sweepNet, sweepGuided(), sweepGraph,
		transducer.ExploreOptions{Seeds: 200, Faults: transducer.DefaultFaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatalf("crash divergence not found in %d schedules", stats.Schedules)
	}
	if v.Kind != transducer.WrongFact {
		t.Errorf("Kind = %v, want wrong-fact", v.Kind)
	}
	t.Logf("crash schedule: %s → %v", v.Schedule, v.Bad)
}

func TestFaultConfigFor(t *testing.T) {
	def := transducer.DefaultFaultConfig()
	if cfg := FaultConfigFor(Broadcast); cfg != def {
		t.Errorf("broadcast config = %+v, want default", cfg)
	}
	if cfg := FaultConfigFor(Absence); cfg != def {
		t.Errorf("absence config = %+v, want default", cfg)
	}
	cfg := FaultConfigFor(DomainRequest)
	if cfg.Crashes != 0 {
		t.Errorf("domainreq config schedules %d crashes, want 0", cfg.Crashes)
	}
	cfg.Crashes = def.Crashes
	if cfg != def {
		t.Errorf("domainreq config differs beyond crashes: %+v", cfg)
	}
}

// ComputeFaulty end-to-end: a concrete parsed plan with every fault
// kind still converges for an in-class strategy.
func TestComputeFaultyConverges(t *testing.T) {
	plan, err := transducer.ParseFaultPlan("dup=0.3,delay=0.5:4,stall=n2@2-6,crash=n3@8,part=3-7:n1", 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := queries.TC().Eval(sweepGraph)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ComputeFaulty(Broadcast, queries.TC(), sweepNet, transducer.HashPolicy(sweepNet), sweepGraph, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("faulty run output %v, want %v", res.Output, want)
	}
	if res.Metrics.Crashes != 1 || res.Metrics.StalledSteps == 0 {
		t.Errorf("plan not exercised: %+v", res.Metrics)
	}
}

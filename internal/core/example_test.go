package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Distribute the non-monotone win-move query over three nodes under a
// domain-guided policy: the domain-request strategy (Theorem 4.4)
// computes it coordination-free.
func ExampleCompute() {
	q := queries.WinMove()
	net := transducer.MustNetwork("n1", "n2", "n3")
	pol := transducer.DomainGuided(transducer.HashAssignment(net))
	game := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c)`)

	res, err := core.Compute(core.DomainRequest, q, net, pol, game, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Output)
	// Output:
	// {O(b)}
}

// Check the Definition 3 coordination-freeness witness: under the
// ideal policy the answer appears in a heartbeat-only prefix.
func ExampleVerifyCoordinationFree() {
	ok, err := core.VerifyCoordinationFree(
		core.DomainRequest,
		queries.ComplementTC(),
		transducer.MustNetwork("n1", "n2"),
		fact.MustParseInstance(`E(a,b) E(b,c)`),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(ok)
	// Output:
	// true
}

// Each strategy computes exactly one monotonicity class and runs in an
// All-free model (Theorem 4.5).
func ExampleStrategy_Class() {
	for _, s := range []core.Strategy{core.Broadcast, core.Absence, core.DomainRequest} {
		fmt.Printf("%v computes %v, needs All: %v\n", s, s.Class(), s.RequiredModel().ShowAll)
	}
	// Output:
	// broadcast(M) computes M, needs All: false
	// absence(Mdistinct) computes M_distinct, needs All: false
	// domain-request(Mdisjoint) computes M_disjoint, needs All: false
}

package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// The Theorem 4.3 strategy, specialized to the NoLoop query and
// written ENTIRELY in stratified Datalog¬ — the shape of transducer
// the declarative-networking literature intends. The completeness
// check ("every candidate fact over MyAdom is known present or known
// absent") becomes a universally quantified negation, expressed with
// the Bad-marker idiom; absences are derived from the policyR system
// relation exactly as in the proof.
func declarativeNoLoopTransducer(t *testing.T) *transducer.Transducer {
	t.Helper()
	schema := transducer.Schema{
		In:  fact.MustSchema(map[string]int{"E": 2}),
		Out: fact.MustSchema(map[string]int{"O": 1}),
		Msg: fact.MustSchema(map[string]int{"F": 2, "A": 2, "H": 1}),
		Mem: fact.MustSchema(map[string]int{
			"GotF": 2, "GotA": 2, "GotH": 1,
			"SentF": 2, "SentA": 2, "SentH": 1,
		}),
	}
	tr, err := transducer.DatalogTransducer(schema,
		// Qout — evaluate NoLoop on the known fragment, gated by
		// completeness: Bad(w) marks every known value while any
		// candidate pair over MyAdom is neither known present nor
		// known absent.
		`Kn(x,y)  :- E(x,y).
		 Kn(x,y)  :- F(x,y).
		 Kn(x,y)  :- GotF(x,y).
		 Ab(x,y)  :- A(x,y).
		 Ab(x,y)  :- GotA(x,y).
		 Ab(x,y)  :- Policy_E(x,y), !E(x,y).
		 Res(x,y) :- Kn(x,y).
		 Res(x,y) :- Ab(x,y).
		 Bad(w)   :- MyAdom(a), MyAdom(b), !Res(a,b), MyAdom(w).
		 Val(x)   :- Kn(x,y).
		 Val(y)   :- Kn(x,y).
		 Loop(x)  :- Kn(x,x).
		 O(x)     :- Val(x), !Loop(x), !Bad(x).`,
		// Qins — persist deliveries and own detections; mark sends.
		`GotF(x,y)  :- F(x,y).
		 GotA(x,y)  :- A(x,y).
		 GotA(x,y)  :- Policy_E(x,y), !E(x,y).
		 GotH(v)    :- H(v).
		 SentF(x,y) :- E(x,y).
		 SentA(x,y) :- Policy_E(x,y), !E(x,y).
		 SentH(n)   :- Id(n).`,
		// Qdel — nothing.
		``,
		// Qsnd — forward local facts, announce detected absences and
		// the node's own identifier, each once.
		`F(x,y) :- E(x,y), !SentF(x,y).
		 A(x,y) :- Policy_E(x,y), !E(x,y), !SentA(x,y).
		 H(n)   :- Id(n), !SentH(n).`,
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDeclarativeAbsenceStrategyNoLoop(t *testing.T) {
	tr := declarativeNoLoopTransducer(t)
	q := queries.NoLoop()
	net := transducer.MustNetwork("n1", "n2", "n3")
	inputs := []*fact.Instance{
		fact.MustParseInstance(`E(a,b) E(a,a)`),
		fact.MustParseInstance(`E(a,b) E(b,c) E(c,c)`),
		fact.NewInstance(),
	}
	policies := map[string]transducer.Policy{
		"hash":    transducer.HashPolicy(net),
		"random7": transducer.RandomPolicy(net, 7),
		"oneNode": transducer.AllToNode("n2"),
	}
	for _, in := range inputs {
		want, err := q.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, pol := range policies {
			err := transducer.CheckComputes(net, tr, pol, transducer.PolicyAwareNoAll, in, want,
				transducer.ConformanceOptions{RandomRuns: 3})
			if err != nil {
				t.Errorf("declarative absence strategy, %s on %v: %v", name, in, err)
			}
		}
	}
}

// The declarative strategy has the same Definition 3 witness as the
// generic Go implementation: under the ideal all-facts-at-one-node
// policy the answer appears with heartbeats only.
func TestDeclarativeAbsenceCoordinationFree(t *testing.T) {
	tr := declarativeNoLoopTransducer(t)
	q := queries.NoLoop()
	in := fact.MustParseInstance(`E(a,b) E(a,a)`)
	want, err := q.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	ok, err := transducer.CoordinationFreeWitness(net, tr, transducer.AllToNode("n1"),
		transducer.PolicyAwareNoAll, in, want, "n1", 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("declarative absence strategy lacks a heartbeat-only witness")
	}
}

// Message behavior matches the generic Go implementation of the same
// strategy on the same workload.
func TestDeclarativeMatchesGenericAbsence(t *testing.T) {
	q := queries.NoLoop()
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,c)`)
	net := transducer.MustNetwork("n1", "n2")
	pol := transducer.HashPolicy(net)

	decl := declarativeNoLoopTransducer(t)
	simD, err := transducer.NewSimulation(net, decl, pol, transducer.PolicyAwareNoAll, in)
	if err != nil {
		t.Fatal(err)
	}
	outD, err := simD.RunToQuiescence(64)
	if err != nil {
		t.Fatal(err)
	}

	generic := MustBuild(Absence, q)
	simG, err := transducer.NewSimulation(net, generic, pol, Absence.RequiredModel(), in)
	if err != nil {
		t.Fatal(err)
	}
	outG, err := simG.RunToQuiescence(64)
	if err != nil {
		t.Fatal(err)
	}

	if !outD.Equal(outG) {
		t.Errorf("declarative %v != generic %v", outD, outG)
	}
}

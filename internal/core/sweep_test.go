package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Exhaustive input sweep: each strategy computes its class's query on
// EVERY graph over two values (16 graphs) on a two-node network, under
// both a general and a domain-guided policy where applicable.
func TestStrategySweepAllSmallGraphs(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2")
	hash := transducer.HashPolicy(net)
	guided := transducer.DomainGuided(transducer.HashAssignment(net))

	cases := []struct {
		name string
		s    Strategy
		q    monotone.Query
		pol  transducer.Policy
	}{
		{"broadcast/TC/hash", Broadcast, queries.TC(), hash},
		{"absence/NoLoop/hash", Absence, queries.NoLoop(), hash},
		{"absence/TC/hash", Absence, queries.TC(), hash},
		{"domainreq/QTC/guided", DomainRequest, queries.ComplementTC(), guided},
		{"domainreq/NoLoop/guided", DomainRequest, queries.NoLoop(), guided},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			generate.AllGraphs(generate.Values("v", 2), func(g *fact.Instance) bool {
				want, err := c.q.Eval(g)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Compute(c.s, c.q, net, c.pol, g, 0)
				if err != nil {
					t.Fatalf("input %v: %v", g, err)
				}
				if !res.Output.Equal(want) {
					t.Fatalf("input %v: distributed %v != central %v", g, res.Output, want)
				}
				return true
			})
		})
	}
}

// Exhaustive win-move sweep over all 2-position game graphs.
func TestWinMoveSweepAllSmallGames(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2")
	guided := transducer.DomainGuided(transducer.HashAssignment(net))
	q := queries.WinMove()
	type edge struct{ a, b fact.Value }
	vals := []fact.Value{"p", "q"}
	var edges []edge
	for _, a := range vals {
		for _, b := range vals {
			edges = append(edges, edge{a, b})
		}
	}
	for mask := 0; mask < 1<<len(edges); mask++ {
		g := fact.NewInstance()
		for bit, e := range edges {
			if mask&(1<<bit) != 0 {
				g.Add(fact.New("Move", e.a, e.b))
			}
		}
		want, err := q.Eval(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compute(DomainRequest, q, net, guided, g, 0)
		if err != nil {
			t.Fatalf("game %v: %v", g, err)
		}
		if !res.Output.Equal(want) {
			t.Fatalf("game %v: distributed %v != central %v", g, res.Output, want)
		}
	}
}

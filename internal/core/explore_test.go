package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Exhaustive-schedule safety: for a query in the strategy's class, NO
// schedule (up to the explored depth, heartbeat or deliver-all at any
// node) ever yields an output fact outside Q(I). This is the "no wrong
// outputs in any run" half of computing a query, checked by model
// exploration rather than sampling.
func TestExploreStrategySafety(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2")
	graph := fact.MustParseInstance(`E(a,b) E(b,a)`)
	cases := []struct {
		name string
		s    Strategy
		q    monotone.Query
		pol  transducer.Policy
	}{
		{"broadcast/TC", Broadcast, queries.TC(), transducer.HashPolicy(net)},
		{"absence/NoLoop", Absence, queries.NoLoop(), transducer.HashPolicy(net)},
		{"domainreq/QTC", DomainRequest, queries.ComplementTC(), transducer.DomainGuided(transducer.HashAssignment(net))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := c.q.Eval(graph)
			if err != nil {
				t.Fatal(err)
			}
			tr := MustBuild(c.s, c.q)
			v, err := transducer.Explore(net, tr, c.pol, c.s.RequiredModel(), graph, want, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Errorf("unsafe schedule found: %v", v)
			}
		})
	}
}

// The exploration is discriminating: for a query OUTSIDE the
// strategy's class it finds the unsafe schedule automatically (here,
// the absence strategy on QTC — the Theorem 4.3 boundary).
func TestExploreFindsStrategyBoundary(t *testing.T) {
	q := queries.ComplementTC()
	in := fact.MustParseInstance(`E(a,b) E(b,x) E(x,a)`)
	want, err := q.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	over := fact.NewValueSet("a", "b", "n1")
	pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
		if f.ADom().Minus(over).Equal(fact.NewValueSet()) {
			return []transducer.NodeID{"n1"}
		}
		return []transducer.NodeID{"n2"}
	})
	tr := MustBuild(Absence, q)
	v, err := transducer.Explore(net, tr, pol, Absence.RequiredModel(), in, want, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("explorer failed to find the premature-output schedule for a query outside Mdistinct")
	}
}

package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/obs"
	"repro/internal/transducer"
)

// Result bundles the network output of a distributed evaluation with
// the run metrics, for the experiment harness and benchmarks.
type Result struct {
	Output  *fact.Instance
	Metrics transducer.Metrics
}

// RunConfig collects the optional knobs of a distributed evaluation.
// The zero value is a plain fair run: round-robin to quiescence with
// the default round bound and no instrumentation.
type RunConfig struct {
	// MaxRounds bounds the fair drive; <= 0 selects the default
	// 32 + |I| + 4|N| (plus the fault plan's horizon, if any), ample
	// for the built-in strategies.
	MaxRounds int

	// Plan installs a fault plan between send and buffer: messages may
	// be duplicated or delayed, partitions may hold traffic back, and
	// nodes may stall or crash-restart, all deterministically under
	// the plan's seed. Faults are transient, so the run stays fair.
	Plan *transducer.FaultPlan

	// RandomSteps > 0 (or Seed != 0) prefixes the fair drive with that
	// many random (nondeterministic) transitions under Seed,
	// exercising run confluence.
	Seed        int64
	RandomSteps int

	// Sink receives the simulation's structured events (transitions,
	// stalls, crashes, holds, quiescence). Nil disables event tracing.
	Sink *obs.Sink

	// Reg, when non-nil, receives the run metrics as sim.* counters
	// plus the sim.quiescence_tick gauge after the run completes.
	Reg *obs.Registry
}

// ComputeRun evaluates the query distributedly: it builds the
// strategy's transducer, distributes the input over the network under
// the policy, drives the simulation per cfg, and returns the network
// output with the run metrics.
func ComputeRun(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, cfg RunConfig) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	if cfg.Plan != nil {
		sim.SetFaults(cfg.Plan)
	}
	sim.Observe(cfg.Sink)
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net)
		if cfg.Plan != nil {
			maxRounds += cfg.Plan.Horizon()
		}
	}
	var out *fact.Instance
	if cfg.Seed != 0 || cfg.RandomSteps > 0 {
		out, err = sim.RunRandom(cfg.Seed, cfg.RandomSteps, maxRounds)
	} else {
		out, err = sim.RunToQuiescence(maxRounds)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Reg != nil {
		sim.Metrics.Publish(cfg.Reg)
		cfg.Reg.Gauge(obs.SimQuiescenceTick).Set(int64(sim.Clock()))
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// Compute is ComputeRun with a plain fair round-robin run to
// quiescence. maxRounds <= 0 selects the default bound.
func Compute(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, maxRounds int) (*Result, error) {
	return ComputeRun(s, q, net, pol, input, RunConfig{MaxRounds: maxRounds})
}

// ComputeRandom is Compute with a prefix of random (nondeterministic)
// transitions before the round-robin drive, exercising run confluence.
func ComputeRandom(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, seed int64, randomSteps, maxRounds int) (*Result, error) {
	return ComputeRun(s, q, net, pol, input, RunConfig{MaxRounds: maxRounds, Seed: seed, RandomSteps: randomSteps})
}

// ComputeFaulty is Compute with a fault plan installed; see
// RunConfig.Plan for the fault semantics.
func ComputeFaulty(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, plan *transducer.FaultPlan, maxRounds int) (*Result, error) {
	return ComputeRun(s, q, net, pol, input, RunConfig{MaxRounds: maxRounds, Plan: plan})
}

// FaultConfigFor returns the fault mix a strategy is expected to
// survive on queries inside its class. Broadcast and Absence tolerate
// the full default mix including crash-restart, because every message
// they send states a global truth about the input (a fact of I, or
// the absence of one) that remains valid after any node restarts.
// DomainRequest is excluded from crash faults: its Xok certificate
// asserts that the *requester has stored* all facts of a value, a
// statement about volatile state that a crash-restart falsifies — the
// recovery rebroadcast re-delivers the stale certificate and the
// restarted node can output before its data re-arrives. The explorer
// rediscovers that divergence when handed a crashy plan (see the
// fault-model section of DESIGN.md and the X-rows of cmd/experiments).
func FaultConfigFor(s Strategy) transducer.FaultConfig {
	cfg := transducer.DefaultFaultConfig()
	if s == DomainRequest {
		cfg.Crashes = 0
	}
	return cfg
}

// ExploreStrategy fuzzes the strategy against its class boundary: it
// evaluates the query centrally (the oracle), builds the strategy's
// transducer, and drives the adversarial schedule explorer — fair
// baseline, per-node starvation, greedy fresh-value adversaries, and
// seeded random schedules under fault plans — looking for a run that
// outputs a wrong fact or converges to the wrong answer. For a query
// inside the strategy's class every explored schedule must be clean;
// one class up, the explorer rediscovers the known divergences.
func ExploreStrategy(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, opts transducer.ExploreOptions) (*transducer.ScheduleViolation, transducer.ExploreStats, error) {
	want, err := q.Eval(input)
	if err != nil {
		return nil, transducer.ExploreStats{}, fmt.Errorf("core: evaluating %s centrally: %w", q.Name(), err)
	}
	t, err := Build(s, q)
	if err != nil {
		return nil, transducer.ExploreStats{}, err
	}
	return transducer.ExploreSchedules(net, t, pol, s.RequiredModel(), input, want, opts)
}

// VerifyCoordinationFree checks the Definition 3 witness for the
// strategy and query on one network and input: under the strategy's
// ideal policy centered at the first network node, a heartbeat-only
// prefix at that node must already produce Q(I), and the run must
// extend to a fair run computing exactly Q(I).
func VerifyCoordinationFree(s Strategy, q monotone.Query, net transducer.Network, input *fact.Instance) (bool, error) {
	want, err := q.Eval(input)
	if err != nil {
		return false, fmt.Errorf("core: evaluating %s centrally: %w", q.Name(), err)
	}
	t, err := Build(s, q)
	if err != nil {
		return false, err
	}
	x := net[0]
	maxSteps := 4 + input.Len()
	maxRounds := 32 + input.Len() + 4*len(net)
	return transducer.CoordinationFreeWitness(net, t, s.IdealPolicy(x), s.RequiredModel(), input, want, x, maxSteps, maxRounds)
}

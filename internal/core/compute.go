package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// Result bundles the network output of a distributed evaluation with
// the run metrics, for the experiment harness and benchmarks.
type Result struct {
	Output  *fact.Instance
	Metrics transducer.Metrics
}

// Compute evaluates the query distributedly: it builds the strategy's
// transducer, distributes the input over the network under the policy,
// runs a fair round-robin run to quiescence, and returns the network
// output. maxRounds bounds the run (32 + |I| + 4|N| is ample for the
// built-in strategies; pass 0 to use that default).
func Compute(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, maxRounds int) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net)
	}
	out, err := sim.RunToQuiescence(maxRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// ComputeRandom is Compute with a prefix of random (nondeterministic)
// transitions before the round-robin drive, exercising run confluence.
func ComputeRandom(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, seed int64, randomSteps, maxRounds int) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net)
	}
	out, err := sim.RunRandom(seed, randomSteps, maxRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// ComputeFaulty is Compute with a fault plan installed between send
// and buffer: messages may be duplicated or delayed, partitions may
// hold traffic back, and nodes may stall or crash-restart, all
// deterministically under the plan's seed. The run is still fair
// (faults are transient), so for a query in the strategy's class the
// output must equal the centralized answer.
func ComputeFaulty(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, plan *transducer.FaultPlan, maxRounds int) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	sim.SetFaults(plan)
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net) + plan.Horizon()
	}
	out, err := sim.RunToQuiescence(maxRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// FaultConfigFor returns the fault mix a strategy is expected to
// survive on queries inside its class. Broadcast and Absence tolerate
// the full default mix including crash-restart, because every message
// they send states a global truth about the input (a fact of I, or
// the absence of one) that remains valid after any node restarts.
// DomainRequest is excluded from crash faults: its Xok certificate
// asserts that the *requester has stored* all facts of a value, a
// statement about volatile state that a crash-restart falsifies — the
// recovery rebroadcast re-delivers the stale certificate and the
// restarted node can output before its data re-arrives. The explorer
// rediscovers that divergence when handed a crashy plan (see the
// fault-model section of DESIGN.md and the X-rows of cmd/experiments).
func FaultConfigFor(s Strategy) transducer.FaultConfig {
	cfg := transducer.DefaultFaultConfig()
	if s == DomainRequest {
		cfg.Crashes = 0
	}
	return cfg
}

// ExploreStrategy fuzzes the strategy against its class boundary: it
// evaluates the query centrally (the oracle), builds the strategy's
// transducer, and drives the adversarial schedule explorer — fair
// baseline, per-node starvation, greedy fresh-value adversaries, and
// seeded random schedules under fault plans — looking for a run that
// outputs a wrong fact or converges to the wrong answer. For a query
// inside the strategy's class every explored schedule must be clean;
// one class up, the explorer rediscovers the known divergences.
func ExploreStrategy(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, opts transducer.ExploreOptions) (*transducer.ScheduleViolation, transducer.ExploreStats, error) {
	want, err := q.Eval(input)
	if err != nil {
		return nil, transducer.ExploreStats{}, fmt.Errorf("core: evaluating %s centrally: %w", q.Name(), err)
	}
	t, err := Build(s, q)
	if err != nil {
		return nil, transducer.ExploreStats{}, err
	}
	return transducer.ExploreSchedules(net, t, pol, s.RequiredModel(), input, want, opts)
}

// VerifyCoordinationFree checks the Definition 3 witness for the
// strategy and query on one network and input: under the strategy's
// ideal policy centered at the first network node, a heartbeat-only
// prefix at that node must already produce Q(I), and the run must
// extend to a fair run computing exactly Q(I).
func VerifyCoordinationFree(s Strategy, q monotone.Query, net transducer.Network, input *fact.Instance) (bool, error) {
	want, err := q.Eval(input)
	if err != nil {
		return false, fmt.Errorf("core: evaluating %s centrally: %w", q.Name(), err)
	}
	t, err := Build(s, q)
	if err != nil {
		return false, err
	}
	x := net[0]
	maxSteps := 4 + input.Len()
	maxRounds := 32 + input.Len() + 4*len(net)
	return transducer.CoordinationFreeWitness(net, t, s.IdealPolicy(x), s.RequiredModel(), input, want, x, maxSteps, maxRounds)
}

package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// Result bundles the network output of a distributed evaluation with
// the run metrics, for the experiment harness and benchmarks.
type Result struct {
	Output  *fact.Instance
	Metrics transducer.Metrics
}

// Compute evaluates the query distributedly: it builds the strategy's
// transducer, distributes the input over the network under the policy,
// runs a fair round-robin run to quiescence, and returns the network
// output. maxRounds bounds the run (32 + |I| + 4|N| is ample for the
// built-in strategies; pass 0 to use that default).
func Compute(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, maxRounds int) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net)
	}
	out, err := sim.RunToQuiescence(maxRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// ComputeRandom is Compute with a prefix of random (nondeterministic)
// transitions before the round-robin drive, exercising run confluence.
func ComputeRandom(s Strategy, q monotone.Query, net transducer.Network, pol transducer.Policy, input *fact.Instance, seed int64, randomSteps, maxRounds int) (*Result, error) {
	t, err := Build(s, q)
	if err != nil {
		return nil, err
	}
	sim, err := transducer.NewSimulation(net, t, pol, s.RequiredModel(), input)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 32 + input.Len() + 4*len(net)
	}
	out, err := sim.RunRandom(seed, randomSteps, maxRounds)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Metrics: sim.Metrics}, nil
}

// VerifyCoordinationFree checks the Definition 3 witness for the
// strategy and query on one network and input: under the strategy's
// ideal policy centered at the first network node, a heartbeat-only
// prefix at that node must already produce Q(I), and the run must
// extend to a fair run computing exactly Q(I).
func VerifyCoordinationFree(s Strategy, q monotone.Query, net transducer.Network, input *fact.Instance) (bool, error) {
	want, err := q.Eval(input)
	if err != nil {
		return false, fmt.Errorf("core: evaluating %s centrally: %w", q.Name(), err)
	}
	t, err := Build(s, q)
	if err != nil {
		return false, err
	}
	x := net[0]
	maxSteps := 4 + input.Len()
	maxRounds := 32 + input.Len() + 4*len(net)
	return transducer.CoordinationFreeWitness(net, t, s.IdealPolicy(x), s.RequiredModel(), input, want, x, maxSteps, maxRounds)
}

package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// These tests make the strictness of the model hierarchy operational:
// the absence strategy needs the policy relations (F0 ⊊ F1), and the
// domain-request strategy needs the policy to actually be domain
// guided (F1 ⊊ F2). Each test runs a strategy with its requirement
// removed and exhibits a wrong, never-retracted output.

// Without MyAdom and the policy relations (the original model of [13])
// the absence strategy cannot detect absences; its completeness check
// degenerates to "always complete" and it behaves like the broadcast
// strategy — wrong for NoLoop ∈ Mdistinct \ M.
func TestAbsenceNeedsPolicyAwareness(t *testing.T) {
	q := queries.NoLoop()
	in := fact.MustParseInstance(`E(a,b) E(a,a)`)
	want, err := q.Eval(in) // {O(b)}
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
		if f.Equal(fact.New("E", "a", "a")) {
			return []transducer.NodeID{"n2"}
		}
		return []transducer.NodeID{"n1"}
	})
	tr := MustBuild(Absence, q)

	// In the proper policy-aware model the strategy is correct.
	sim, err := transducer.NewSimulation(net, tr, pol, Absence.RequiredModel(), in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunToQuiescence(64)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatalf("policy-aware run wrong: %v, want %v", out, want)
	}

	// In the original model (Id + All only) it emits the premature O(a).
	sim, err = transducer.NewSimulation(net, tr, pol, transducer.Original, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err = sim.RunToQuiescence(64)
	if err != nil {
		t.Fatal(err)
	}
	if out.Equal(want) {
		t.Fatal("absence strategy unexpectedly correct without policy relations; necessity witness broken")
	}
	if !out.Has(fact.New("O", "a")) {
		t.Errorf("expected premature O(a) in the original model; got %v", out)
	}
}

// With a policy that is NOT domain guided, "Policy_E(a,a) visible"
// no longer implies "I hold every input fact containing a": a node can
// believe itself complete while missing facts, and the domain-request
// strategy emits wrong answers for QTC.
func TestDomainRequestNeedsDomainGuidance(t *testing.T) {
	q := queries.ComplementTC()
	in := fact.MustParseInstance(`E(a,b) E(b,a)`)
	want, err := q.Eval(in) // empty: the 2-cycle reaches everything
	if err != nil {
		t.Fatal(err)
	}
	if !want.Empty() {
		t.Fatal("setup: expected empty reference output")
	}
	net := transducer.MustNetwork("n1", "n2")
	// Diagonal facts over {a, b, n1} at n1 (so n1 believes it owns
	// those values), but the real fact E(b,a) lives at n2 only.
	pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
		if f.Equal(fact.New("E", "b", "a")) {
			return []transducer.NodeID{"n2"}
		}
		return []transducer.NodeID{"n1"}
	})
	if transducer.IsDomainGuidedOn(pol, fact.GraphSchema(), []fact.Value{"a", "b", "n1"}) {
		t.Fatal("setup: policy should not be domain guided")
	}

	res, err := Compute(DomainRequest, q, net, pol, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Empty() {
		t.Fatal("domain-request strategy unexpectedly correct on a non-guided policy; necessity witness broken")
	}
	if !res.Output.Has(fact.New("O", "b", "a")) && !res.Output.Has(fact.New("O", "a", "a")) {
		t.Errorf("expected premature complement facts; got %v", res.Output)
	}
}

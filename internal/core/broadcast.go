package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// buildBroadcast constructs the F0 strategy (class M): broadcast the
// local input fragment once, accumulate everything received, and
// evaluate the query on the collected facts at every transition. For
// a monotone query every partial evaluation is a subset of Q(I), so
// outputs are never wrong, and once all facts have arrived everywhere
// every node outputs Q(I).
func buildBroadcast(q monotone.Query, in, out fact.Schema) (*transducer.Transducer, error) {
	msg := make(fact.Schema)
	mem := make(fact.Schema)
	for rel, ar := range in {
		msg[relFwd(rel)] = ar
		mem[relGot(rel)] = ar
		mem[relSent(rel)] = ar
	}
	sch := transducer.Schema{In: in, Out: out, Msg: msg, Mem: mem}
	if err := sch.Validate(); err != nil {
		return nil, err
	}

	t := &transducer.Transducer{
		Schema: sch,
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			k := knownFacts(d, in)
			res, err := q.Eval(k)
			if err != nil {
				return nil, fmt.Errorf("core: broadcast strategy evaluating %s: %w", q.Name(), err)
			}
			return res, nil
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			ins := fact.NewInstance()
			for rel := range in {
				// Persist facts delivered this transition.
				for _, f := range d.Rel(relFwd(rel)) {
					ins.Add(fact.FromTuple(relGot(rel), f.Args()))
				}
				// Mark local facts as forwarded.
				for _, f := range d.Rel(rel) {
					ins.Add(fact.FromTuple(relSent(rel), f.Args()))
				}
			}
			return ins, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			snd := fact.NewInstance()
			for rel := range in {
				for _, f := range d.Rel(rel) {
					if !d.Has(fact.FromTuple(relSent(rel), f.Args())) {
						snd.Add(fact.FromTuple(relFwd(rel), f.Args()))
					}
				}
			}
			return snd, nil
		},
	}
	return t, nil
}

// buildGossip constructs the epidemic variant of the F0 strategy
// (still class M, still oblivious): a node forwards its local input
// fragment like Broadcast does, and additionally relays every fact it
// receives, exactly once. Under all-to-all delivery the relays are
// redundant and the strategy behaves like Broadcast with extra
// traffic; under hop-by-hop neighbor routing they are what carries a
// fact across the graph, so every node still converges to Q(I) on any
// connected topology. Soundness is unchanged — outputs are partial
// evaluations of a monotone query on true input facts.
func buildGossip(q monotone.Query, in, out fact.Schema) (*transducer.Transducer, error) {
	msg := make(fact.Schema)
	mem := make(fact.Schema)
	for rel, ar := range in {
		msg[relFwd(rel)] = ar
		mem[relGot(rel)] = ar
		mem[relSent(rel)] = ar
	}
	sch := transducer.Schema{In: in, Out: out, Msg: msg, Mem: mem}
	if err := sch.Validate(); err != nil {
		return nil, err
	}

	t := &transducer.Transducer{
		Schema: sch,
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			k := knownFacts(d, in)
			res, err := q.Eval(k)
			if err != nil {
				return nil, fmt.Errorf("core: gossip strategy evaluating %s: %w", q.Name(), err)
			}
			return res, nil
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			ins := fact.NewInstance()
			for rel := range in {
				// Persist facts delivered this transition, and mark
				// them sent — Snd relays them in this same transition.
				for _, f := range d.Rel(relFwd(rel)) {
					ins.Add(fact.FromTuple(relGot(rel), f.Args()))
					ins.Add(fact.FromTuple(relSent(rel), f.Args()))
				}
				// Mark local facts as forwarded.
				for _, f := range d.Rel(rel) {
					ins.Add(fact.FromTuple(relSent(rel), f.Args()))
				}
			}
			return ins, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			snd := fact.NewInstance()
			for rel := range in {
				// Forward local facts and relay freshly delivered ones;
				// relSent suppresses both kinds after the first send.
				// (Facts stored in relGot were relFwd in an earlier
				// transition and were relayed and marked sent then.)
				for _, f := range d.Rel(rel) {
					if !d.Has(fact.FromTuple(relSent(rel), f.Args())) {
						snd.Add(fact.FromTuple(relFwd(rel), f.Args()))
					}
				}
				for _, f := range d.Rel(relFwd(rel)) {
					if !d.Has(fact.FromTuple(relSent(rel), f.Args())) {
						snd.Add(fact.FromTuple(relFwd(rel), f.Args()))
					}
				}
			}
			return snd, nil
		},
	}
	return t, nil
}

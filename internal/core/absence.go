package core

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// buildAbsence constructs the Theorem 4.3 strategy (class Mdistinct).
// Every node broadcasts its local input facts and, for every candidate
// fact over its MyAdom that it is policy-responsible for but does not
// hold, an explicit absence. A node whose MyAdom is complete — every
// candidate fact over MyAdom is known present or known absent —
// evaluates the query on its collected facts I'. Because the rest of
// the input is domain-distinct from I', Q(I') ⊆ Q(I) for every
// Q ∈ Mdistinct, so no wrong facts are ever output; and since every
// fact and every absence is eventually everywhere (node identifiers
// travel in hello announcements), every node eventually computes Q(I).
func buildAbsence(q monotone.Query, in, out fact.Schema) (*transducer.Transducer, error) {
	msg := fact.MustSchema(map[string]int{relHello: 1})
	mem := fact.MustSchema(map[string]int{relVal: 1, relHelloS: 1})
	for rel, ar := range in {
		msg[relFwd(rel)] = ar
		msg[relAbs(rel)] = ar
		mem[relGot(rel)] = ar
		mem[relSent(rel)] = ar
		mem[relAbsGot(rel)] = ar
		mem[relAbsSent(rel)] = ar
	}
	sch := transducer.Schema{In: in, Out: out, Msg: msg, Mem: mem}
	if err := sch.Validate(); err != nil {
		return nil, err
	}

	// detectAbsences lists the candidate facts over MyAdom that the
	// node is responsible for and that are missing from its local
	// input fragment; those facts are certainly absent from the whole
	// input (the policy would have assigned them here).
	detectAbsences := func(d *fact.Instance) []fact.Fact {
		adom := myAdom(d)
		var absent []fact.Fact
		for _, rel := range inputRels(in) {
			ar := in[rel]
			local := d.RestrictRel(rel)
			for _, tup := range allTuples(adom, ar) {
				if !d.Has(fact.FromTuple(transducer.PolicyRel(rel), tup)) {
					continue
				}
				if !local.Has(fact.FromTuple(rel, tup)) {
					absent = append(absent, fact.FromTuple(rel, tup))
				}
			}
		}
		return absent
	}

	// complete reports whether MyAdom is complete: every candidate
	// fact over MyAdom is known present (collected) or known absent
	// (stored, just delivered, or locally detectable).
	complete := func(d *fact.Instance, known *fact.Instance) bool {
		adom := myAdom(d)
		for _, rel := range inputRels(in) {
			ar := in[rel]
			local := d.RestrictRel(rel)
			for _, tup := range allTuples(adom, ar) {
				f := fact.FromTuple(rel, tup)
				if known.Has(f) {
					continue
				}
				if d.Has(fact.FromTuple(relAbsGot(rel), tup)) || d.Has(fact.FromTuple(relAbs(rel), tup)) {
					continue
				}
				if d.Has(fact.FromTuple(transducer.PolicyRel(rel), tup)) && !local.Has(f) {
					continue // locally detectable absence
				}
				return false
			}
		}
		return true
	}

	t := &transducer.Transducer{
		Schema: sch,
		Out: func(d *fact.Instance) (*fact.Instance, error) {
			known := knownFacts(d, in)
			if !complete(d, known) {
				return fact.NewInstance(), nil
			}
			res, err := q.Eval(known)
			if err != nil {
				return nil, fmt.Errorf("core: absence strategy evaluating %s: %w", q.Name(), err)
			}
			return res, nil
		},
		Ins: func(d *fact.Instance) (*fact.Instance, error) {
			ins := fact.NewInstance()
			for rel := range in {
				for _, f := range d.Rel(relFwd(rel)) {
					ins.Add(fact.FromTuple(relGot(rel), f.Args()))
				}
				for _, f := range d.Rel(relAbs(rel)) {
					ins.Add(fact.FromTuple(relAbsGot(rel), f.Args()))
				}
				for _, f := range d.Rel(rel) {
					ins.Add(fact.FromTuple(relSent(rel), f.Args()))
				}
			}
			for _, f := range detectAbsences(d) {
				ins.Add(fact.FromTuple(relAbsGot(f.Rel()), f.Args()))
				ins.Add(fact.FromTuple(relAbsSent(f.Rel()), f.Args()))
			}
			// Remember values seen in hello announcements, and mark
			// our own hello as sent.
			for _, f := range d.Rel(relHello) {
				ins.Add(fact.FromTuple(relVal, f.Args()))
			}
			if id, ok := selfID(d); ok {
				ins.Add(fact.New(relHelloS, id))
			}
			return ins, nil
		},
		Snd: func(d *fact.Instance) (*fact.Instance, error) {
			snd := fact.NewInstance()
			for rel := range in {
				for _, f := range d.Rel(rel) {
					if !d.Has(fact.FromTuple(relSent(rel), f.Args())) {
						snd.Add(fact.FromTuple(relFwd(rel), f.Args()))
					}
				}
			}
			for _, f := range detectAbsences(d) {
				if !d.Has(fact.FromTuple(relAbsSent(f.Rel()), f.Args())) {
					snd.Add(fact.FromTuple(relAbs(f.Rel()), f.Args()))
				}
			}
			if id, ok := selfID(d); ok && !d.Has(fact.New(relHelloS, id)) {
				snd.Add(fact.New(relHello, id))
			}
			return snd, nil
		},
	}
	return t, nil
}

package core

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// Strategies over multi-relation schemas and arity-3 relations: the
// completeness machinery enumerates candidate tuples per input
// relation, which the single-E tests never exercise beyond arity 2.

// ternaryJoin is the monotone query O(x,z) :- R(x,y,z), S(y).
func ternaryJoin(t *testing.T) monotone.Query {
	t.Helper()
	p := datalog.MustParseProgram(`O(x,z) :- R(x,y,z), S(y).`)
	q, err := datalog.NewQuery(p, "O")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// ternarySP is the SP-Datalog (Mdistinct) query
// O(x) :- R(x,y,z), !S(x).
func ternarySP(t *testing.T) monotone.Query {
	t.Helper()
	p := datalog.MustParseProgram(`O(x) :- R(x,y,z), !S(x).`)
	q, err := datalog.NewQuery(p, "O")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

var ternaryInput = fact.MustParseInstance(`
	R(a,b,c) R(c,d,a) R(x,x,x)
	S(b) S(c)
`)

func TestBroadcastTernary(t *testing.T) {
	q := ternaryJoin(t)
	want, err := q.Eval(ternaryInput)
	if err != nil {
		t.Fatal(err)
	}
	if want.Empty() {
		t.Fatal("setup: want nonempty join output")
	}
	net := transducer.MustNetwork("n1", "n2")
	res, err := Compute(Broadcast, q, net, transducer.HashPolicy(net), ternaryInput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("ternary broadcast: got %v, want %v", res.Output, want)
	}
}

func TestAbsenceTernary(t *testing.T) {
	q := ternarySP(t)
	want, err := q.Eval(ternaryInput)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	for name, pol := range map[string]transducer.Policy{
		"hash":   transducer.HashPolicy(net),
		"random": transducer.RandomPolicy(net, 5),
	} {
		res, err := Compute(Absence, q, net, pol, ternaryInput, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Output.Equal(want) {
			t.Errorf("%s: ternary absence got %v, want %v", name, res.Output, want)
		}
	}
}

func TestDomainRequestTernary(t *testing.T) {
	q := ternarySP(t)
	want, err := q.Eval(ternaryInput)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2")
	pol := transducer.DomainGuided(transducer.RandomAssignment(net, 9))
	res, err := Compute(DomainRequest, q, net, pol, ternaryInput, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("ternary domain-request got %v, want %v", res.Output, want)
	}
}

// The duplicate query's multi-relation schema (R1..R3) through the
// absence strategy: Q^3_duplicate ∈ M²distinct but NOT in unbounded
// Mdistinct... it IS in Mⁱdistinct only for bounded i, so the absence
// strategy may err on it; instead check the monotone projection query
// over the same schema runs fine under broadcast.
func TestBroadcastMultiRelationSchema(t *testing.T) {
	p := datalog.MustParseProgram(`
		O(x,y) :- R1(x,y).
		O(x,y) :- R2(x,y).
		O(x,y) :- R3(x,y).
	`)
	q, err := datalog.NewQuery(p, "O")
	if err != nil {
		t.Fatal(err)
	}
	in := fact.MustParseInstance(`R1(a,b) R2(c,d) R3(e,f)`)
	want, err := q.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	net := transducer.MustNetwork("n1", "n2", "n3")
	res, err := Compute(Broadcast, q, net, transducer.HashPolicy(net), in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Errorf("multi-relation broadcast: got %v, want %v", res.Output, want)
	}
}

// Coordination-freeness witnesses also hold over the ternary schema.
func TestTernaryCoordinationFree(t *testing.T) {
	for _, c := range []struct {
		s Strategy
		q monotone.Query
	}{
		{Broadcast, ternaryJoin(t)},
		{Absence, ternarySP(t)},
		{DomainRequest, ternarySP(t)},
	} {
		ok, err := VerifyCoordinationFree(c.s, c.q, transducer.MustNetwork("n1", "n2"), ternaryInput)
		if err != nil {
			t.Fatalf("%v: %v", c.s, err)
		}
		if !ok {
			t.Errorf("%v: no witness on ternary schema", c.s)
		}
	}
}

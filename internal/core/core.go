// Package core implements the paper's primary contribution as
// executable artifacts: the three generic coordination-free evaluation
// strategies from the proofs of Section 4, each turning an arbitrary
// query of the right monotonicity class into a relational transducer
// that computes it on every network under every (admissible)
// distribution policy, with a heartbeat-only witness run under an
// ideal policy (Definition 3):
//
//   - Broadcast (class M, F0 = A0): every node broadcasts its local
//     input facts and evaluates the query on everything it has seen;
//     monotonicity guarantees no wrong outputs. Works in the oblivious
//     model — it reads no system relation at all.
//
//   - Absence (class Mdistinct, F1 = A1, Theorem 4.3): nodes broadcast
//     local facts and absences of facts they are policy-responsible
//     for; a node outputs Q on its collected facts whenever its MyAdom
//     is complete — every candidate fact over MyAdom is either known
//     present or known absent. Domain-distinct-monotonicity makes each
//     such partial output sound.
//
//   - DomainRequest (class Mdisjoint, F2 = A2, Theorem 4.4): under
//     domain-guided policies, nodes broadcast the active domain of
//     their fragment; for each known value a node is not responsible
//     for, it runs the request/acknowledge/OK protocol with the
//     responsible nodes; once every known value is covered, its
//     collected facts form a union of data "spheres" and
//     domain-disjoint-monotonicity makes the output sound.
//
// None of the strategies reads the All relation, which is the
// executable content of Theorem 4.5: coordination-freeness coincides
// with not requiring knowledge of all network nodes.
//
// The strategies deviate from the proof sketches in one documented
// way: each node also announces its own identifier once ("hello"
// messages). The proofs let node identifiers reach other nodes through
// the All relation; in the All-free model the announcements play that
// role, so that completeness over MyAdom (which always contains the
// local identifier) is eventually reached at every node. Under the
// ideal policies the announcements are never needed — the witness runs
// stay heartbeat-only.
package core

import (
	"fmt"
	"sort"

	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/transducer"
)

// Strategy selects one of the paper's evaluation strategies.
type Strategy int

// The three strategies, ordered like the classes they capture.
const (
	// Broadcast computes monotone queries (class M).
	Broadcast Strategy = iota
	// Absence computes domain-distinct-monotone queries (Mdistinct).
	Absence
	// DomainRequest computes domain-disjoint-monotone queries
	// (Mdisjoint) under domain-guided policies.
	DomainRequest
	// Gossip computes monotone queries (class M) like Broadcast, but
	// nodes also relay every received fact once. Broadcast only works
	// when every sender reaches every node directly; gossip's epidemic
	// relaying additionally converges under hop-by-hop neighbor
	// routing on sparse topologies (internal/netsim), where a fact must
	// cross intermediate nodes to reach the far side of the graph.
	Gossip
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Broadcast:
		return "broadcast(M)"
	case Absence:
		return "absence(Mdistinct)"
	case DomainRequest:
		return "domain-request(Mdisjoint)"
	case Gossip:
		return "gossip(M)"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Class returns the monotonicity class whose queries the strategy
// computes correctly.
func (s Strategy) Class() monotone.Class {
	switch s {
	case Broadcast, Gossip:
		return monotone.M
	case Absence:
		return monotone.MDistinct
	default:
		return monotone.MDisjoint
	}
}

// RequiredModel returns the weakest transducer model the strategy
// needs. Broadcast is oblivious; the other two need Id, MyAdom and
// the policy relations — but never All (Theorem 4.5).
func (s Strategy) RequiredModel() transducer.Model {
	if s == Broadcast || s == Gossip {
		return transducer.Oblivious
	}
	return transducer.PolicyAwareNoAll
}

// IdealPolicy returns the Definition 3 witness policy for the strategy
// on the given network: the distribution under which node x computes
// the full query answer with heartbeat transitions only.
func (s Strategy) IdealPolicy(x transducer.NodeID) transducer.Policy {
	if s == DomainRequest {
		// Must be domain-guided: assign every value to x.
		return transducer.DomainGuided(transducer.AssignAllTo(x))
	}
	return transducer.AllToNode(x)
}

// Internal relation names, derived from each input relation R. The
// "X" prefix is an implementation namespace; Build rejects queries
// whose schemas collide with it.
const (
	relHello   = "Xhello" // msg: node id announcement
	relAnn     = "Xann"   // msg: active-domain value announcement
	relReq     = "Xreq"   // msg: Xreq(x, a) — x requests value a
	relOk      = "Xok"    // msg: Xok(x, a) — all facts of a delivered to x
	relVal     = "Xval"   // mem: known values (ids and announced adom)
	relHelloS  = "XhelloS"
	relAnnS    = "XannS"
	relReqS    = "XreqS"
	relOkGot   = "XokG"
	internalNS = "X"
)

func relFwd(r string) string     { return "Xf_" + r }  // msg: forwarded input fact
func relGot(r string) string     { return "Xg_" + r }  // mem: received input fact
func relSent(r string) string    { return "Xs_" + r }  // mem: fact forwarded already
func relAbs(r string) string     { return "Xa_" + r }  // msg: absence announcement
func relAbsGot(r string) string  { return "Xb_" + r }  // mem: known absence
func relAbsSent(r string) string { return "Xt_" + r }  // mem: absence announced already
func relResp(r string) string    { return "Xr_" + r }  // msg: Xr_R(x, a, ā) response
func relAck(r string) string     { return "Xk_" + r }  // msg: Xk_R(x, a, ā) acknowledgment
func relRespS(r string) string   { return "Xrs_" + r } // mem: response sent
func relAckG(r string) string    { return "Xkg_" + r } // mem: acknowledgment received
func relReqG() string            { return "XreqG" }    // mem: stored request
func relOkS() string             { return "XokS" }     // mem: OK sent
func relAckS(r string) string    { return "Xks_" + r } // mem: acknowledgment sent

// Build constructs the transducer implementing the strategy for the
// query. The query's input and output schemas must not use the
// internal "X" namespace or the system relation names.
func Build(s Strategy, q monotone.Query) (*transducer.Transducer, error) {
	in := q.InputSchema()
	out := q.OutputSchema()
	for _, sch := range []fact.Schema{in, out} {
		for rel := range sch {
			if len(rel) > 0 && rel[0:1] == internalNS {
				return nil, fmt.Errorf("core: relation %s collides with the strategy's internal namespace", rel)
			}
		}
	}
	switch s {
	case Broadcast:
		return buildBroadcast(q, in, out)
	case Gossip:
		return buildGossip(q, in, out)
	case Absence:
		return buildAbsence(q, in, out)
	case DomainRequest:
		return buildDomainRequest(q, in, out)
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", int(s))
	}
}

// MustBuild is like Build but panics on error.
func MustBuild(s Strategy, q monotone.Query) *transducer.Transducer {
	t, err := Build(s, q)
	if err != nil {
		panic(err)
	}
	return t
}

// inputRels returns the query's input relations in sorted order.
func inputRels(in fact.Schema) []string {
	names := in.Names()
	sort.Strings(names)
	return names
}

// knownFacts reconstructs the input facts visible at a node: its local
// input fragment, stored received facts, and facts delivered in this
// very transition.
func knownFacts(d *fact.Instance, in fact.Schema) *fact.Instance {
	k := fact.NewInstance()
	for rel, ar := range in {
		for _, f := range d.Rel(rel) {
			k.Add(f)
		}
		for _, f := range d.Rel(relGot(rel)) {
			k.Add(fact.FromTuple(rel, f.Args()))
		}
		for _, f := range d.Rel(relFwd(rel)) {
			k.Add(fact.FromTuple(rel, f.Args()))
		}
		_ = ar
	}
	return k
}

// myAdom reads the MyAdom system relation.
func myAdom(d *fact.Instance) []fact.Value {
	facts := d.Rel(transducer.RelMyAdom)
	out := make([]fact.Value, 0, len(facts))
	for _, f := range facts {
		out = append(out, f.Arg(0))
	}
	return out
}

// selfID reads the Id system relation; empty when the model hides it.
func selfID(d *fact.Instance) (fact.Value, bool) {
	ids := d.Rel(transducer.RelId)
	if len(ids) == 0 {
		return "", false
	}
	return ids[0].Arg(0), true
}

// responsibleForValue reports whether the active node is responsible
// for the value under the (domain-guided) policy: Policy_R(a,...,a)
// is visible for at least one input relation.
func responsibleForValue(d *fact.Instance, in fact.Schema, a fact.Value) bool {
	for rel, ar := range in {
		args := make([]fact.Value, ar)
		for i := range args {
			args[i] = a
		}
		if d.Has(fact.New(transducer.PolicyRel(rel), args...)) {
			return true
		}
	}
	return false
}

// allTuples enumerates the tuples of the given arity over the values.
func allTuples(values []fact.Value, arity int) []fact.Tuple {
	if arity == 0 {
		return []fact.Tuple{{}}
	}
	var out []fact.Tuple
	for _, t := range allTuples(values, arity-1) {
		for _, v := range values {
			nt := append(append(fact.Tuple{}, t...), v)
			out = append(out, nt)
		}
	}
	return out
}

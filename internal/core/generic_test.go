package core

import (
	"testing"

	"repro/internal/fact"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// Genericity carries over to the distributed evaluation: renaming the
// input values (away from the node identifiers) commutes with the
// distributed computation, for every strategy.
func TestStrategiesGeneric(t *testing.T) {
	net := transducer.MustNetwork("n1", "n2")
	perm := fact.Hom{"a": "z1", "b": "z2", "c": "z3", "d": "z4"}
	in := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d)`)
	renamed := in.Map(perm)

	type tc struct {
		s   Strategy
		pol transducer.Policy
	}
	for name, c := range map[string]tc{
		"broadcast": {Broadcast, transducer.HashPolicy(net)},
		"absence":   {Absence, transducer.HashPolicy(net)},
		"domainreq": {DomainRequest, transducer.DomainGuided(transducer.HashAssignment(net))},
	} {
		q := queries.ComplementTC()
		if c.s == Broadcast {
			q = queries.TC()
		}
		if c.s == Absence {
			q = queries.NoLoop()
		}
		res1, err := Compute(c.s, q, net, c.pol, in, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res2, err := Compute(c.s, q, net, c.pol, renamed, 0)
		if err != nil {
			t.Fatalf("%s renamed: %v", name, err)
		}
		if !res1.Output.Map(perm).Equal(res2.Output) {
			t.Errorf("%s: renaming does not commute:\nπ(Q(I)) = %v\nQ(π(I)) = %v",
				name, res1.Output.Map(perm), res2.Output)
		}
	}
}

// Package netsim is the event-driven large-network simulator: the
// same relational-transducer semantics as the tick-based
// transducer.Simulation (the two engines share transducer.Stepper for
// the transition core and transducer.Multiset for message buffers),
// driven by a seeded priority queue of events instead of a
// round-robin walk over all nodes. A node costs scheduler work only
// when it has something to do — an arrival, a scheduled fault, or a
// self-wake after a state change — which is what makes schedule
// exploration feasible at 10^3–10^4 nodes on the sparse topologies of
// internal/generate.
//
// Determinism: the queue orders events by (logical time, kind rank,
// tiebreak hash, insertion sequence). The tiebreak hash is a pure
// FNV-64a function of (seed, time, node, kind) and the insertion
// sequence is itself a deterministic function of the run, so two runs
// with equal seeds pop events in exactly the same order and produce
// byte-identical event streams.
package netsim

import (
	"hash/fnv"

	"repro/internal/fact"
)

// Event kinds, in pop-priority order at equal times: crashes fire
// first (they model the lockstep engine's begin-of-attempt crash
// check), then arrivals (so a node activating at time t sees every
// message that arrived at t in one batch), then activations.
const (
	evCrash = iota
	evArrive
	evActivate
)

// event is one scheduled occurrence. Arrival events carry the message
// instance; the fact enters the recipient's inbox only when the event
// pops, so activations never see messages from their future.
type event struct {
	time int64
	kind uint8
	tie  uint64
	seq  uint64
	node int32
	// Arrival payload (evArrive only): the message fact and how many
	// copies of it this delivery carries.
	f fact.Fact
	n int
}

// before is the strict total order of the queue.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.tie != o.tie {
		return e.tie < o.tie
	}
	return e.seq < o.seq
}

// tieHash computes the seeded tiebreak for an event: a pure function
// of the run seed and the event's identity, so equal-seed runs break
// same-time ties identically while different seeds explore different
// interleavings.
func tieHash(seed, time int64, node int32, kind uint8) uint64 {
	h := fnv.New64a()
	var buf [21]byte
	putInt64(buf[0:8], uint64(seed))
	putInt64(buf[8:16], uint64(time))
	putInt64(buf[16:20], uint64(uint32(node)))
	buf[20] = kind
	h.Write(buf[:])
	return h.Sum64()
}

// putInt64 writes v big-endian into b (len(b) >= 8 for the first two
// calls, 4 bytes used for the node).
func putInt64(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// evHeap is a binary min-heap of events ordered by before. Hand-rolled
// rather than container/heap to keep pops allocation-free and inline
// the comparison on the hot path.
type evHeap struct {
	es []event
}

func (h *evHeap) len() int { return len(h.es) }

func (h *evHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.es[i].before(&h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *evHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && h.es[r].before(&h.es[l]) {
			c = r
		}
		if !h.es[c].before(&h.es[i]) {
			break
		}
		h.es[i], h.es[c] = h.es[c], h.es[i]
		i = c
	}
	return top
}

package netsim_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/monotone"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// sixNodes is the fixture network the equivalence battery runs on.
func sixNodes() transducer.Network {
	return transducer.MustNetwork("n1", "n2", "n3", "n4", "n5", "n6")
}

func sixGraph() *fact.Instance {
	return fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) E(d,a) E(b,e)`)
}

// fixture is one (strategy, query, policy) combination; the set covers
// all four strategies on the six-node network.
type fixture struct {
	name string
	s    core.Strategy
	q    monotone.Query
	pol  func(transducer.Network) transducer.Policy
}

func fixtures() []fixture {
	hash := func(n transducer.Network) transducer.Policy { return transducer.HashPolicy(n) }
	guided := func(n transducer.Network) transducer.Policy {
		return transducer.DomainGuided(transducer.HashAssignment(n))
	}
	return []fixture{
		{"broadcast", core.Broadcast, queries.TC(), hash},
		{"gossip", core.Gossip, queries.TC(), hash},
		{"absence", core.Absence, queries.NoLoop(), hash},
		{"domainreq", core.DomainRequest, queries.ComplementTC(), guided},
	}
}

// buildPair constructs a tick Simulation and an event-engine Sim over
// identical components, both observing JSONL sinks.
func buildPair(t *testing.T, fx fixture, plan *transducer.FaultPlan) (*transducer.Simulation, *bytes.Buffer, *netsim.Sim, *bytes.Buffer) {
	t.Helper()
	net := sixNodes()
	tr := core.MustBuild(fx.s, fx.q)
	pol := fx.pol(net)
	in := sixGraph()

	tick, err := transducer.NewSimulation(net, tr, pol, fx.s.RequiredModel(), in)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := netsim.New(net, tr, pol, fx.s.RequiredModel(), in, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tb, eb bytes.Buffer
	tick.Observe(obs.NewSink(&tb))
	ev.Observe(obs.NewSink(&eb))
	if plan != nil {
		tick.SetFaults(plan)
		ev.SetFaults(plan)
	}
	return tick, &tb, ev, &eb
}

func mustPlan(t *testing.T, spec string, seed int64) *transducer.FaultPlan {
	t.Helper()
	p, err := transducer.ParseFaultPlan(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLockstepTraceEquivalence pins the tentpole's compatibility
// claim: with no topology, the event engine's lockstep primitives
// produce byte-identical event streams, identical Metrics and equal
// outputs to transducer.Simulation — fair runs, with and without a
// full fault mix.
func TestLockstepTraceEquivalence(t *testing.T) {
	plans := map[string]*transducer.FaultPlan{
		"clean": nil,
		"faulty": mustPlan(t,
			"dup=0.2,delay=0.25:4,stall=n3@4-9,crash=n2@7,part=5-12:n1|n4", 99),
	}
	for _, fx := range fixtures() {
		for pname, plan := range plans {
			if fx.s == core.DomainRequest && pname == "faulty" {
				continue // crashes falsify Xok certificates by design
			}
			t.Run(fx.name+"/"+pname, func(t *testing.T) {
				tick, tb, ev, eb := buildPair(t, fx, plan)
				out1, err := tick.RunToQuiescence(200)
				if err != nil {
					t.Fatal(err)
				}
				out2, err := ev.RunFair(200)
				if err != nil {
					t.Fatal(err)
				}
				if !out1.Equal(out2) {
					t.Fatalf("outputs differ: tick %v, event %v", out1, out2)
				}
				if tick.Metrics != ev.RunMetrics() {
					t.Fatalf("metrics differ:\ntick  %+v\nevent %+v", tick.Metrics, ev.RunMetrics())
				}
				if !bytes.Equal(tb.Bytes(), eb.Bytes()) {
					t.Fatalf("event streams differ:\n--- tick ---\n%s\n--- event ---\n%s", tb.String(), eb.String())
				}
			})
		}
	}
}

// TestLockstepPrimitiveEquivalence drives both machines through an
// identical scripted mix of every Machine primitive and requires
// identical metrics, byte-identical streams and matching buffer /
// known-value views afterwards.
func TestLockstepPrimitiveEquivalence(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			tick, tb, ev, eb := buildPair(t, fx, mustPlan(t, "dup=0.15,delay=0.2:3,stall=n5@3-6", 7))
			net := sixNodes()
			script := func(m transducer.Machine, rng *rand.Rand) error {
				for step := 0; step < 60; step++ {
					x := net[rng.Intn(len(net))]
					var err error
					switch rng.Intn(5) {
					case 0:
						_, err = m.Heartbeat(x)
					case 1:
						_, err = m.Deliver(x)
					case 2:
						_, err = m.DeliverRandom(x, rng)
					case 3:
						_, err = m.DeliverWhere(x, func(fact.Fact) bool { return rng.Intn(2) == 0 })
					default:
						batch := fact.NewInstance()
						for _, f := range m.BufferedFacts(x) {
							if rng.Intn(2) == 0 {
								batch.Add(f)
							}
						}
						_, err = m.DeliverBatch(x, batch)
					}
					if err != nil {
						return err
					}
				}
				return nil
			}
			if err := script(tick, rand.New(rand.NewSource(5))); err != nil {
				t.Fatal(err)
			}
			if err := script(ev, rand.New(rand.NewSource(5))); err != nil {
				t.Fatal(err)
			}
			if tick.RunMetrics() != ev.RunMetrics() {
				t.Fatalf("metrics differ:\ntick  %+v\nevent %+v", tick.RunMetrics(), ev.RunMetrics())
			}
			if !bytes.Equal(tb.Bytes(), eb.Bytes()) {
				t.Fatalf("streams differ after scripted primitives:\n--- tick ---\n%s\n--- event ---\n%s", tb.String(), eb.String())
			}
			for _, x := range net {
				if len(tick.KnownValues(x)) != len(ev.KnownValues(x)) {
					t.Fatalf("KnownValues(%s) differ", x)
				}
				bt, be := tick.BufferedFacts(x), ev.BufferedFacts(x)
				if len(bt) != len(be) {
					t.Fatalf("BufferedFacts(%s) differ: %v vs %v", x, bt, be)
				}
				for i := range bt {
					if bt[i].Key() != be[i].Key() {
						t.Fatalf("BufferedFacts(%s)[%d] differ", x, i)
					}
				}
			}
		})
	}
}

// TestExplorerEquivalence reruns the adversarial schedule explorer —
// the X-matrix engine — through the netsim MachineFactory and
// requires the identical verdict and identical aggregate statistics
// as the tick engine, for in-class fixtures (no violation) and for
// the out-of-class boundary (same violation rediscovered).
func TestExplorerEquivalence(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			net := sixNodes()
			pol := fx.pol(net)
			in := sixGraph()
			base := transducer.ExploreOptions{Seeds: 10, Faults: core.FaultConfigFor(fx.s)}

			v1, st1, err := core.ExploreStrategy(fx.s, fx.q, net, pol, in, base)
			if err != nil {
				t.Fatal(err)
			}
			withFactory := base
			withFactory.NewMachine = netsim.MachineFactory(netsim.Options{})
			v2, st2, err := core.ExploreStrategy(fx.s, fx.q, net, pol, in, withFactory)
			if err != nil {
				t.Fatal(err)
			}
			if (v1 == nil) != (v2 == nil) {
				t.Fatalf("verdicts differ: tick %v, event %v", v1, v2)
			}
			if v1 != nil {
				t.Fatalf("in-class fixture violated: %v", v1)
			}
			if st1 != st2 {
				t.Fatalf("stats differ:\ntick  %+v\nevent %+v", st1, st2)
			}
		})
	}
}

// TestExplorerEquivalenceBoundary: out-of-class, both engines must
// rediscover the same divergence (absence strategy on QTC).
func TestExplorerEquivalenceBoundary(t *testing.T) {
	net := sixNodes()
	q := queries.ComplementTC()
	pol := transducer.HashPolicy(net)
	in := sixGraph()
	base := transducer.ExploreOptions{Seeds: 20, Faults: core.FaultConfigFor(core.Absence)}

	v1, _, err := core.ExploreStrategy(core.Absence, q, net, pol, in, base)
	if err != nil {
		t.Fatal(err)
	}
	withFactory := base
	withFactory.NewMachine = netsim.MachineFactory(netsim.Options{})
	v2, _, err := core.ExploreStrategy(core.Absence, q, net, pol, in, withFactory)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == nil || v2 == nil {
		t.Fatalf("expected both engines to find the boundary violation: tick %v, event %v", v1, v2)
	}
	if v1.Kind != v2.Kind || v1.Schedule != v2.Schedule || v1.Step != v2.Step {
		t.Fatalf("violations differ:\ntick  %v\nevent %v", v1, v2)
	}
}

// TestEventRunMatchesTick: the event-driven scheduler must converge to
// the tick engine's output on every fixture, clean and faulty.
func TestEventRunMatchesTick(t *testing.T) {
	for _, fx := range fixtures() {
		for _, pspec := range []string{"", "dup=0.2,delay=0.25:4,stall=n3@4-9,crash=n2@7,part=5-12:n1|n4"} {
			name := fx.name + "/clean"
			if pspec != "" {
				name = fx.name + "/faulty"
				if fx.s == core.DomainRequest {
					continue
				}
			}
			t.Run(name, func(t *testing.T) {
				var plan *transducer.FaultPlan
				if pspec != "" {
					plan = mustPlan(t, pspec, 42)
				}
				tick, _, ev, _ := buildPair(t, fx, plan)
				want, err := tick.RunToQuiescence(200)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ev.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("event run diverged:\n got %v\nwant %v", got, want)
				}
				if !ev.Conserved() {
					m := ev.RunMetrics()
					t.Fatalf("conservation broken: sent=%d delivered=%d buffered=%d inflight=%d dropped=%d",
						m.MessagesSent, m.MessagesDelivered, ev.TotalBuffered(), ev.Inflight(), m.MessagesDropped)
				}
				if ev.SchedOps() == 0 || ev.Events() == 0 {
					t.Fatal("event scheduler accounted no work")
				}
			})
		}
	}
}

// TestEventDeterminism: equal seeds yield byte-identical event
// streams; different seeds still converge to the same output.
func TestEventDeterminism(t *testing.T) {
	run := func(seed int64) (*fact.Instance, []byte) {
		net := sixNodes()
		tr := core.MustBuild(core.Gossip, queries.TC())
		ev, err := netsim.New(net, tr, transducer.HashPolicy(net), core.Gossip.RequiredModel(), sixGraph(),
			netsim.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ev.Observe(obs.NewSink(&buf))
		ev.SetFaults(mustPlan(t, "dup=0.3,delay=0.3:5,crash=n4@6", 21))
		out, err := ev.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out, buf.Bytes()
	}
	outA, streamA := run(77)
	outB, streamB := run(77)
	outC, streamC := run(78)
	if !bytes.Equal(streamA, streamB) {
		t.Fatal("equal seeds produced different event streams")
	}
	if !outA.Equal(outB) || !outA.Equal(outC) {
		t.Fatal("outputs depend on the tiebreak seed")
	}
	if bytes.Equal(streamA, streamC) {
		t.Fatal("different seeds produced identical streams (tiebreak not wired)")
	}
}

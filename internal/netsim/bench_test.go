package netsim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/netsim"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// The benchmark workload is the sparse-activity configuration the
// event scheduler is built for: a handful of input facts scattered by
// hash over 10^2–10^4 nodes, gossip over topology-neighbor links, and
// a long stall window on one node so the network spends most of
// logical time idle. The tick-walk baseline (RunFair) pays one
// scheduler operation per node per tick until the window closes; the
// event engine pays only for pending work. Rows report events/op,
// schedops/op, events/s and heapmax so BENCH_PR10.json captures both
// throughput and the scheduler-operation gap.

// stallHorizon scales the idle window with the network so the
// tick/event sched-ops ratio is comparable across node counts.
const stallHorizon = 250

func benchInput() *fact.Instance {
	return fact.MustParseInstance(`E(a,b) E(b,c) E(c,d) E(d,a) E(b,e)`)
}

func benchSim(b *testing.B, topo *generate.Topology) *netsim.Sim {
	b.Helper()
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Gossip, queries.TC())
	s, err := netsim.New(net, tr, transducer.HashPolicy(net), core.Gossip.RequiredModel(), benchInput(),
		netsim.Options{Topo: topo, Routing: netsim.RouteNeighbors, MaxEvents: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	s.SetFaults(&transducer.FaultPlan{Stalls: []transducer.Stall{
		{Node: netsim.NetworkOf(topo)[0], From: 5, To: stallHorizon * topo.Len()},
	}})
	return s
}

// BenchmarkNetsimEvent sweeps the event-driven scheduler across node
// counts (10^2, 10^3, 10^4).
func BenchmarkNetsimEvent(b *testing.B) {
	for _, c := range []struct {
		kind generate.TopoKind
		n    int
	}{
		{generate.TopoRing, 100},
		{generate.TopoRing, 1000},
		{generate.TopoRing, 10000},
		{generate.TopoPowerLaw, 10000},
	} {
		b.Run(fmt.Sprintf("%v-n%d", c.kind, c.n), func(b *testing.B) {
			topo := generate.MustTopology(c.kind, c.n, 5)
			var events, schedOps, heapMax int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := benchSim(b, topo)
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
				events += s.Events()
				schedOps += s.SchedOps()
				if s.HeapMax() > heapMax {
					heapMax = s.HeapMax()
				}
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(schedOps)/float64(b.N), "schedops/op")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(heapMax), "heapmax")
		})
	}
}

// BenchmarkNetsimTick is the tick-walk baseline on the identical
// workload: RunFair sweeps every node every round until the stall
// window closes, so schedops/op here vs the event rows above is the
// scheduler-operation gap (>= 10x at 10^3 nodes is the PR-10
// acceptance gate). The 10^4 tick row is omitted: the walk's
// schedops scale as horizon ~ 250 * n, which at 10^4 nodes is tens of
// millions of no-op visits per run.
func BenchmarkNetsimTick(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("ring-n%d", n), func(b *testing.B) {
			topo := generate.MustTopology(generate.TopoRing, n, 5)
			var schedOps int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := benchSim(b, topo)
				if _, err := s.RunFair(1 << 30); err != nil {
					b.Fatal(err)
				}
				schedOps += s.SchedOps()
			}
			b.ReportMetric(float64(schedOps)/float64(b.N), "schedops/op")
		})
	}
}

package netsim

import (
	"fmt"

	"repro/internal/fact"
	"repro/internal/obs"
	"repro/internal/transducer"
)

// This file is the event-driven scheduler. The run is a discrete
// event simulation over logical time:
//
//   - An activation event makes a node take one transition, delivering
//     its whole inbox. A node is re-activated at time+1 only when the
//     transition changed something (state or sends) — an unchanged
//     heartbeat is a deterministic no-op forever until a new arrival,
//     so sleeping it is sound. Idle nodes therefore cost nothing.
//   - Sends become arrival events at time + latency + fault hold; the
//     fact enters the recipient's inbox when the arrival pops, and the
//     arrival wakes the recipient at that same time. Arrivals order
//     before activations at equal times, so a node activating at t
//     sees every time-t arrival as one batch.
//   - Fault-plan crashes are pre-scheduled as crash events (their At
//     read as logical time), so a late crash keeps the queue nonempty
//     until it has played out; stall windows reschedule the activation
//     to the window's end.
//
// An empty queue is quiescence: no activation pending means every node
// is asleep with an empty inbox and nothing in flight.

// DefaultMaxEventsPerNode scales the event bound to the network.
const DefaultMaxEventsPerNode = 500

// maxEvents resolves the configured event bound.
func (s *Sim) maxEvents() int {
	if s.opts.MaxEvents > 0 {
		return s.opts.MaxEvents
	}
	return 10000 + DefaultMaxEventsPerNode*len(s.Net)
}

// push schedules an event, stamping the deterministic tiebreak.
func (s *Sim) push(e event) {
	e.tie = tieHash(s.opts.Seed, e.time, e.node, e.kind)
	e.seq = s.seq
	s.seq++
	s.heap.push(e)
	if s.heap.len() > s.heapMax {
		s.heapMax = s.heap.len()
	}
}

// wake ensures node i has an activation scheduled no later than at.
func (s *Sim) wake(i int, at int64) {
	if s.pending[i] >= 0 && s.pending[i] <= at {
		return
	}
	s.pending[i] = at
	s.push(event{time: at, kind: evActivate, node: int32(i)})
}

// silentStart reports whether nodes with empty input fragments can
// skip their initial activation. In a model with no system relations
// at all, every empty-fragment node starts bisimilar: one probe
// transition on scratch state decides for all of them. With Id (or
// any other system relation) visible, nodes are distinguishable and
// each must probe for itself.
func (s *Sim) silentStart() bool {
	if s.Mod.ShowId || s.Mod.ShowAll || s.Mod.ShowMyAdom || s.Mod.ShowPolicy {
		return false
	}
	empty := fact.NewInstance()
	scratch := fact.NewInstance()
	res, err := s.step.Step(s.Net[0], empty, scratch, empty)
	if err != nil {
		return false
	}
	return !res.Changed && res.Sent.Empty()
}

// Run drives the network to quiescence on the event scheduler and
// returns out(R). The same seed yields the same event sequence, the
// same event stream on the sink, and the same output.
func (s *Sim) Run() (*fact.Instance, error) {
	// Pre-schedule the fault plan's crashes; dup/delay/partition
	// decisions apply per send, stalls per activation.
	if s.faults != nil {
		for _, c := range s.faults.Crashes {
			if j, ok := s.idx[c.Node]; ok {
				s.push(event{time: int64(c.At), kind: evCrash, node: int32(j)})
			}
		}
	}
	// Drain any lockstep-mode holds into arrivals so a machine that
	// was stepped manually first can still finish on the event engine.
	for i, q := range s.held {
		for _, h := range q {
			s.inflight += h.n
			s.push(event{time: int64(h.release), kind: evArrive, node: int32(i), f: h.f, n: h.n})
		}
		s.held[i] = nil
	}
	// Initial activations: every node whose fragment or inbox is
	// nonempty, plus — unless a probe shows empty-fragment nodes are
	// silent — everyone else.
	silent := s.silentStart()
	for i := range s.Net {
		if !silent || !s.local[i].Empty() || !s.inbox[i].Empty() {
			s.wake(i, 0)
		}
	}

	bound := s.maxEvents()
	for s.heap.len() > 0 {
		if s.events >= bound {
			return nil, fmt.Errorf("%w (maxEvents=%d)", transducer.ErrNoQuiescence, bound)
		}
		e := s.heap.pop()
		s.events++
		s.now = e.time
		switch e.kind {
		case evArrive:
			s.inflight -= e.n
			s.inbox[e.node].Add(e.f, e.n)
			s.wake(int(e.node), e.time)
		case evCrash:
			s.eventCrash(int(e.node))
		case evActivate:
			if s.pending[e.node] != e.time {
				continue // superseded by an earlier wake
			}
			s.pending[e.node] = -1
			if err := s.activate(int(e.node)); err != nil {
				return nil, err
			}
		}
	}
	emitNetsimQuiesce(s.sink, s.now, s.events, s.schedOps, s.Output().Len())
	return s.Output(), nil
}

// emitNetsimQuiesce is the single construction site for the
// netsim.quiesce event kind (nil-sink safe, like the transducer Emit
// helpers).
func emitNetsimQuiesce(sink *obs.Sink, time int64, events, schedOps, out int) {
	if sink == nil {
		return
	}
	sink.Emit(obs.EvNetsimQuiesce,
		obs.F("time", int(time)),
		obs.F("events", events),
		obs.F("sched_ops", schedOps),
		obs.F("out", out))
}

// activate performs one event-mode transition of node i: whole-inbox
// delivery, fault-routed sends as arrivals, self-wake on change.
func (s *Sim) activate(i int) error {
	s.schedOps++
	x := s.Net[i]
	clock := int(s.now)
	if s.faults != nil && s.faults.StalledAt(x, clock) {
		s.met.StalledSteps++
		transducer.EmitStall(s.sink, s.met.Transitions, clock, x)
		// Retry when the last stall window covering this time ends.
		end := clock
		for _, st := range s.faults.Stalls {
			if st.Node == x && clock >= st.From && clock < st.To && st.To > end {
				end = st.To
			}
		}
		s.wake(i, int64(end))
		return nil
	}

	m, delivered := s.inbox[i].TakeAll()
	s.met.MessagesDelivered += delivered
	res, err := s.step.Step(x, s.local[i], s.state[i], m)
	if err != nil {
		return err
	}
	changed := res.Changed
	snd := res.Sent

	sent := 0
	if !snd.Empty() {
		for _, f := range snd.Facts() {
			s.sentLog[i].Add(f)
		}
		s.eachRecipient(i, func(j int) {
			for _, f := range snd.Facts() {
				copies, delay := 1, 0
				if s.faults != nil {
					copies += s.faults.ExtraCopies(clock, x, s.Net[j], f)
					delay = s.faults.HoldFor(clock, x, s.Net[j], f)
				}
				s.met.MessagesSent += copies
				s.met.MessagesDuplicated += copies - 1
				if delay > 0 {
					s.met.MessagesDelayed += copies
					transducer.EmitHold(s.sink, clock, x, s.Net[j], f, copies, clock+delay)
				}
				s.inflight += copies
				s.push(event{
					time: s.now + s.latency(i, j) + int64(delay),
					kind: evArrive, node: int32(j), f: f, n: copies,
				})
				sent += copies
			}
			changed = true
		})
	}
	s.noteOut(res.OutNew)

	s.met.Transitions++
	if m.Empty() {
		s.met.Heartbeats++
	}
	if s.sink != nil {
		transducer.EmitTransition(s.sink, s.met.Transitions, clock, x, m, snd.Len(), changed,
			s.state[i].Restrict(s.Trans.Schema.Out).Len(), s.inbox[i].Size(), 0)
	}
	if changed {
		s.wake(i, s.now+1)
	}
	return nil
}

// eventCrash applies a crash-restart in event mode: the inbox and
// volatile state drop (in-flight arrivals survive — they deliver
// after the restart), and the rebroadcast sources refill the inbox
// immediately, after which the node wakes to recover.
func (s *Sim) eventCrash(i int) {
	x := s.Net[i]
	dropped := s.inbox[i].Size()
	s.met.MessagesDropped += dropped
	s.state[i] = fact.NewInstance()
	s.inbox[i] = transducer.NewMultiset()
	s.eachRecipient(i, func(y int) {
		for _, f := range s.sentLog[y].Facts() {
			s.inbox[i].Add(f, 1)
			s.met.MessagesSent++
			s.met.MessagesRetransmitted++
		}
	})
	s.met.Crashes++
	transducer.EmitCrash(s.sink, s.met.Transitions, int(s.now), x, dropped, s.inbox[i].Size())
	s.wake(i, s.now)
}

// PublishTo adds the run's counters into the registry: the shared
// sim.* vocabulary plus the netsim.* scheduler story. Safe on nil.
func (s *Sim) PublishTo(reg *obs.Registry) {
	s.met.Publish(reg)
	reg.Counter(obs.NetsimEvents).Add(int64(s.events))
	reg.Counter(obs.NetsimSchedOps).Add(int64(s.schedOps))
	if g := reg.Gauge(obs.NetsimHeapMax); g != nil {
		g.Set(int64(s.heapMax))
	}
	if g := reg.Gauge(obs.NetsimQuiesceTime); g != nil {
		g.Set(s.now)
	}
}

package netsim_test

import (
	"bytes"
	"errors"
	"hash"
	"hash/fnv"
	"testing"

	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// wantTC is the oracle for the topology runs: Q = transitive closure
// of the (small, policy-scattered) input graph.
func wantTC(t *testing.T, in *fact.Instance) *fact.Instance {
	t.Helper()
	want, err := queries.TC().Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// buildTopoSim wires a gossip transducer over a generated topology
// with neighbor routing — the sparse-activity configuration the event
// scheduler exists for.
func buildTopoSim(t *testing.T, topo *generate.Topology, in *fact.Instance, opts netsim.Options) *netsim.Sim {
	t.Helper()
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Gossip, queries.TC())
	opts.Topo = topo
	opts.Routing = netsim.RouteNeighbors
	s, err := netsim.New(net, tr, transducer.HashPolicy(net), core.Gossip.RequiredModel(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGossipTopologyConvergence: on every topology kind, gossip over
// neighbor links must flood the scattered input and converge to Q(I),
// conserving every message.
func TestGossipTopologyConvergence(t *testing.T) {
	in := sixGraph()
	want := wantTC(t, in)
	for _, kind := range []generate.TopoKind{
		generate.TopoRing, generate.TopoStar, generate.TopoTree, generate.TopoPowerLaw, generate.TopoWAN,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			topo := generate.MustTopology(kind, 32, 13)
			s := buildTopoSim(t, topo, in, netsim.Options{Seed: 3})
			out, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Equal(want) {
				t.Fatalf("gossip on %v diverged:\n got %v\nwant %v", kind, out, want)
			}
			if !s.Conserved() {
				t.Fatalf("%v broke conservation", kind)
			}
			if s.HeapMax() == 0 {
				t.Fatal("heap depth never recorded")
			}
		})
	}
}

// TestBroadcastRoutingMatchesNilTopo: with broadcast routing a
// non-WAN topology only names the nodes — the run must be
// byte-identical to the same network with no topology at all.
func TestBroadcastRoutingMatchesNilTopo(t *testing.T) {
	topo := generate.MustTopology(generate.TopoRing, 12, 0)
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Broadcast, queries.TC())
	in := sixGraph()

	run := func(opts netsim.Options) (*fact.Instance, []byte) {
		s, err := netsim.New(net, tr, transducer.HashPolicy(net), core.Broadcast.RequiredModel(), in, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		s.Observe(obs.NewSink(&buf))
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out, buf.Bytes()
	}
	outA, streamA := run(netsim.Options{Topo: topo, Routing: netsim.RouteBroadcast, Seed: 9})
	outB, streamB := run(netsim.Options{Seed: 9})
	if !outA.Equal(outB) {
		t.Fatal("broadcast routing changed the output")
	}
	if !bytes.Equal(streamA, streamB) {
		t.Fatal("broadcast routing changed the event stream")
	}
}

// TestSweepCleanPowerLaw: a seeded fault sweep over a power-law
// topology must find no violation for the in-class gossip strategy
// and account its scheduler work.
func TestSweepCleanPowerLaw(t *testing.T) {
	topo := generate.MustTopology(generate.TopoPowerLaw, 48, 17)
	in := sixGraph()
	want := wantTC(t, in)
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Gossip, queries.TC())

	var buf bytes.Buffer
	v, stats, err := netsim.Sweep(topo, netsim.RouteNeighbors, tr,
		transducer.HashPolicy(net), core.Gossip.RequiredModel(), in, want,
		netsim.SweepOptions{Seeds: 4, Faults: core.FaultConfigFor(core.Gossip), Sink: obs.NewSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("clean sweep found a violation: %v", v)
	}
	if stats.Runs != 5 || stats.Violations != 0 || stats.Aborted != 0 {
		t.Fatalf("stats off: %+v", stats)
	}
	if stats.Events == 0 || stats.SchedOps == 0 || stats.HeapMax == 0 {
		t.Fatalf("sweep accounted no scheduler work: %+v", stats)
	}
	if !bytes.Contains(buf.Bytes(), []byte(obs.EvSchedule)) {
		t.Fatal("sweep emitted no schedule events")
	}
	reg := obs.NewRegistry()
	stats.Publish(reg)
	if reg.Counter(obs.ExploreSchedules).Value() != int64(stats.Runs) {
		t.Fatal("Publish did not export run count")
	}
}

// TestSweepDetectsDivergence: a wrong oracle must surface as a
// Divergence violation on the baseline run, with a violation event on
// the sink.
func TestSweepDetectsDivergence(t *testing.T) {
	topo := generate.MustTopology(generate.TopoRing, 16, 1)
	in := sixGraph()
	want := wantTC(t, in)
	bogus := fact.NewInstance()
	for _, f := range want.Facts() {
		bogus.Add(f)
	}
	bogus.Add(fact.New("T", "nope", "nothere"))
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Gossip, queries.TC())

	var buf bytes.Buffer
	v, stats, err := netsim.Sweep(topo, netsim.RouteNeighbors, tr,
		transducer.HashPolicy(net), core.Gossip.RequiredModel(), in, bogus,
		netsim.SweepOptions{Seeds: 3, Sink: obs.NewSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != transducer.Divergence {
		t.Fatalf("expected a divergence violation, got %v", v)
	}
	if stats.Violations != 1 || stats.Aborted != 1 || stats.Runs != 1 {
		t.Fatalf("stats off after violation: %+v", stats)
	}
	if !bytes.Contains(buf.Bytes(), []byte(obs.EvViolation)) {
		t.Fatal("violation never hit the sink")
	}
}

// TestSchedOpsAdvantage pins the reason this subsystem exists: on a
// sparse-activity workload — a small input scattered over a large
// ring where one node is stalled for a long fault window, so most
// nodes are idle for most of logical time — the event scheduler must
// spend at least 10x fewer scheduler operations than the tick-walk
// baseline. The tick walk keeps sweeping all N nodes until the fault
// horizon passes; the event engine reschedules the stalled node to
// the window's end and jumps the clock straight there.
func TestSchedOpsAdvantage(t *testing.T) {
	topo := generate.MustTopology(generate.TopoRing, 256, 5)
	in := sixGraph()
	want := wantTC(t, in)
	plan := mustPlan(t, "stall=n001@5-50000", 11)

	fair := buildTopoSim(t, topo, in, netsim.Options{})
	fair.SetFaults(plan)
	outFair, err := fair.RunFair(100000)
	if err != nil {
		t.Fatal(err)
	}
	ev := buildTopoSim(t, topo, in, netsim.Options{})
	ev.SetFaults(plan)
	outEv, err := ev.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !outFair.Equal(want) || !outEv.Equal(want) {
		t.Fatal("schedulers disagree with the oracle")
	}
	ratio := float64(fair.SchedOps()) / float64(ev.SchedOps())
	t.Logf("sched ops: tick-walk=%d event=%d ratio=%.1fx", fair.SchedOps(), ev.SchedOps(), ratio)
	if ratio < 10 {
		t.Fatalf("event scheduler advantage %.1fx, want >= 10x (tick=%d event=%d)",
			ratio, fair.SchedOps(), ev.SchedOps())
	}
}

// hashWriter folds a byte stream into an FNV-64a digest so the
// thousand-node test can compare full event streams without holding
// them in memory.
type hashWriter struct{ h hash.Hash64 }

func (w *hashWriter) Write(p []byte) (int, error) { return w.h.Write(p) }

// TestThousandNodePowerLaw is the acceptance-scale run: a seeded
// fault sweep over a >= 1000-node power-law topology completes, and
// equal seeds produce byte-identical event streams.
func TestThousandNodePowerLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node sweep skipped in -short")
	}
	topo := generate.MustTopology(generate.TopoPowerLaw, 1024, 23)
	in := sixGraph()
	want := wantTC(t, in)
	net := netsim.NetworkOf(topo)
	tr := core.MustBuild(core.Gossip, queries.TC())

	v, stats, err := netsim.Sweep(topo, netsim.RouteNeighbors, tr,
		transducer.HashPolicy(net), core.Gossip.RequiredModel(), in, want,
		netsim.SweepOptions{Seeds: 2, Faults: core.FaultConfigFor(core.Gossip)})
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("thousand-node sweep violated: %v", v)
	}
	if stats.Runs != 3 {
		t.Fatalf("expected 3 runs, got %+v", stats)
	}

	digest := func(seed int64) uint64 {
		s := buildTopoSim(t, topo, in, netsim.Options{Seed: seed})
		s.SetFaults(netsim.TopologyFaultPlan(topo, net, seed, core.FaultConfigFor(core.Gossip)))
		w := &hashWriter{h: fnv.New64a()}
		s.Observe(obs.NewSink(w))
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatal("seeded thousand-node run diverged")
		}
		return w.h.Sum64()
	}
	a, b, c := digest(41), digest(41), digest(42)
	if a != b {
		t.Fatal("equal seeds produced different event streams at 1024 nodes")
	}
	if a == c {
		t.Fatal("different seeds produced identical streams at 1024 nodes")
	}
}

// TestOptionsValidation covers the construction and routing guard
// rails.
func TestOptionsValidation(t *testing.T) {
	net := sixNodes()
	tr := core.MustBuild(core.Broadcast, queries.TC())
	pol := transducer.HashPolicy(net)
	in := sixGraph()

	if _, err := netsim.New(net, tr, pol, core.Broadcast.RequiredModel(), in,
		netsim.Options{Routing: netsim.RouteNeighbors}); err == nil {
		t.Error("neighbor routing without a topology must fail")
	}
	topo := generate.MustTopology(generate.TopoRing, 8, 0)
	if _, err := netsim.New(net, tr, pol, core.Broadcast.RequiredModel(), in,
		netsim.Options{Topo: topo}); err == nil {
		t.Error("topology/network node mismatch must fail")
	}
	if _, err := netsim.New(transducer.Network{}, tr, pol, core.Broadcast.RequiredModel(), in,
		netsim.Options{}); err == nil {
		t.Error("empty network must fail")
	}

	for _, r := range []netsim.Routing{netsim.RouteBroadcast, netsim.RouteNeighbors} {
		got, err := netsim.ParseRouting(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRouting round trip %v: got %v, err %v", r, got, err)
		}
	}
	if _, err := netsim.ParseRouting("carrier-pigeon"); err == nil {
		t.Error("ParseRouting accepted an unknown mode")
	}
}

// TestMaxEventsBound: an unreasonably small event budget must abort
// with ErrNoQuiescence rather than loop.
func TestMaxEventsBound(t *testing.T) {
	topo := generate.MustTopology(generate.TopoRing, 32, 2)
	s := buildTopoSim(t, topo, sixGraph(), netsim.Options{MaxEvents: 10})
	if _, err := s.Run(); !errors.Is(err, transducer.ErrNoQuiescence) {
		t.Fatalf("want ErrNoQuiescence, got %v", err)
	}
}

// TestPublishTo: the run's counters land in the registry under the
// netsim.* vocabulary.
func TestPublishTo(t *testing.T) {
	topo := generate.MustTopology(generate.TopoStar, 16, 4)
	s := buildTopoSim(t, topo, sixGraph(), netsim.Options{})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.PublishTo(reg)
	if reg.Counter(obs.NetsimEvents).Value() != int64(s.Events()) {
		t.Fatal("netsim.events counter not published")
	}
	if reg.Counter(obs.NetsimSchedOps).Value() != int64(s.SchedOps()) {
		t.Fatal("netsim.sched_ops counter not published")
	}
	if reg.Gauge(obs.NetsimHeapMax).Value() != int64(s.HeapMax()) {
		t.Fatal("netsim.heap_max gauge not published")
	}
}

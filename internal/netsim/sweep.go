package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/obs"
	"repro/internal/transducer"
)

// This file is the large-network counterpart of the transducer
// package's ExploreSchedules: a seeded sweep of event-driven runs over
// one generated topology, each under a topology-aware fault plan,
// checking the same property — no reachable output outside Q(I), and
// convergence to Q(I) at quiescence — plus the message conservation
// invariant after every run. The tick explorer enumerates adversarial
// schedules on small networks; this sweep varies the event queue's
// tiebreak seed and the fault plan instead, which is the scheduling
// nondeterminism that remains meaningful at 10^3–10^4 nodes.

// SweepOptions tunes a topology sweep.
type SweepOptions struct {
	// Seeds is how many seeded faulty runs to execute (default 20).
	Seeds int
	// BaseSeed is the first seed (default 1); run k uses BaseSeed+k.
	BaseSeed int64
	// Faults bounds the per-seed fault plans. The zero value injects
	// no faults (pure tiebreak-seed variation).
	Faults transducer.FaultConfig
	// MaxEvents bounds each run; 0 scales with the network.
	MaxEvents int
	// Sink receives one explore.schedule event per run and an
	// explore.violation event on failure.
	Sink *obs.Sink
}

// SweepStats reports how much a sweep explored.
type SweepStats struct {
	// Runs counts event-driven runs executed (the fault-free baseline
	// included); Aborted counts runs cut short by a violation or an
	// error; Violations counts property breaks (at most 1 — the sweep
	// stops at the first).
	Runs, Aborted, Violations int
	// Events and SchedOps total the scheduler work across all runs.
	Events, SchedOps int
	// HeapMax is the deepest event queue any run saw.
	HeapMax int
	// Sim folds every run's simulation Metrics into one total.
	Sim transducer.Metrics
}

// Publish adds the stats into the registry (explore.*, sim.* and
// netsim.* vocabularies). Safe on a nil registry.
func (st SweepStats) Publish(reg *obs.Registry) {
	reg.Counter(obs.ExploreSchedules).Add(int64(st.Runs))
	reg.Counter(obs.ExploreAborted).Add(int64(st.Aborted))
	reg.Counter(obs.ExploreViolations).Add(int64(st.Violations))
	reg.Counter(obs.NetsimEvents).Add(int64(st.Events))
	reg.Counter(obs.NetsimSchedOps).Add(int64(st.SchedOps))
	reg.Gauge(obs.NetsimHeapMax).SetMax(int64(st.HeapMax))
	st.Sim.Publish(reg)
}

// TopologyFaultPlan derives a seeded fault plan whose partitions
// respect the topology: random duplication/delay/stall/crash placement
// from the transducer generator, plus cfg.Partitions topology-aware
// cuts (a whole WAN cluster, or a contiguous arc elsewhere) in seeded
// windows. Reproducible from (topo, net, seed, cfg) alone.
func TopologyFaultPlan(topo *generate.Topology, net transducer.Network, seed int64, cfg transducer.FaultConfig) *transducer.FaultPlan {
	cuts := cfg.Partitions
	cfg.Partitions = 0
	p := transducer.RandomFaultPlan(net, seed, cfg)
	if topo == nil || cuts == 0 {
		return p
	}
	rng := rand.New(rand.NewSource(seed ^ 0x70b0))
	win := cfg.Window
	if win <= 0 {
		win = 30
	}
	for i := 0; i < cuts; i++ {
		group := topo.Cut(rng.Int63())
		if len(group) == 0 || len(group) >= topo.Len() {
			continue
		}
		from := 1 + rng.Intn(win)
		p.Partitions = append(p.Partitions, transducer.Partition{
			From:  from,
			To:    from + 1 + rng.Intn(win/2+1),
			Group: group,
		})
	}
	return p
}

// Sweep runs the event-driven explorer on one topology: a fault-free
// baseline run, then opts.Seeds seeded runs under topology-aware fault
// plans, each checked for soundness (no output fact outside want),
// convergence (final output equals want) and message conservation. It
// returns the first violation found, or nil when every run converges.
func Sweep(topo *generate.Topology, routing Routing, t *transducer.Transducer, pol transducer.Policy, mod transducer.Model, input, want *fact.Instance, opts SweepOptions) (*transducer.ScheduleViolation, SweepStats, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 20
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 1
	}
	net := NetworkOf(topo)
	var stats SweepStats

	oneRun := func(label string, seed int64, plan *transducer.FaultPlan) (*transducer.ScheduleViolation, error) {
		s, err := New(net, t, pol, mod, input, Options{
			Topo:      topo,
			Routing:   routing,
			Seed:      seed,
			MaxEvents: opts.MaxEvents,
			Want:      want,
		})
		if err != nil {
			return nil, err
		}
		if plan != nil && !plan.Empty() {
			label = fmt.Sprintf("%s faults[%s]", label, plan)
			s.SetFaults(plan)
		}
		out, runErr := s.Run()

		m := s.RunMetrics()
		stats.Runs++
		stats.Events += s.Events()
		stats.SchedOps += s.SchedOps()
		if s.HeapMax() > stats.HeapMax {
			stats.HeapMax = s.HeapMax()
		}
		stats.Sim.Merge(m)

		var v *transducer.ScheduleViolation
		switch {
		case runErr != nil:
			v = &transducer.ScheduleViolation{
				Kind: transducer.NoQuiescence, Schedule: label,
				Step: m.Transitions, Output: s.Output(), Want: want,
			}
		case len(s.WrongFacts) > 0:
			bad := s.WrongFacts[0]
			v = &transducer.ScheduleViolation{
				Kind: transducer.WrongFact, Schedule: label,
				Step: m.Transitions, Bad: &bad, Output: s.Output(), Want: want,
			}
		case !out.Equal(want):
			v = &transducer.ScheduleViolation{
				Kind: transducer.Divergence, Schedule: label,
				Step: m.Transitions, Output: out, Want: want,
			}
		}
		if v == nil && !s.Conserved() {
			return nil, fmt.Errorf("netsim: %s broke conservation: sent=%d delivered=%d buffered=%d held=%d inflight=%d dropped=%d",
				label, m.MessagesSent, m.MessagesDelivered, s.TotalBuffered(), s.TotalHeld(), s.Inflight(), m.MessagesDropped)
		}
		aborted := v != nil
		if aborted {
			stats.Aborted++
			stats.Violations++
		}
		if sink := opts.Sink; sink != nil {
			sink.Emit(obs.EvSchedule,
				obs.F("label", label),
				obs.F("transitions", m.Transitions),
				obs.F("sent", m.MessagesSent),
				obs.F("delivered", m.MessagesDelivered),
				obs.F("aborted", aborted))
			if v != nil {
				bad := ""
				if v.Bad != nil {
					bad = v.Bad.String()
				}
				sink.Emit(obs.EvViolation,
					obs.F("kind", v.Kind.String()),
					obs.F("schedule", v.Schedule),
					obs.F("step", v.Step),
					obs.F("bad", bad),
					obs.F("output", v.Output.Len()),
					obs.F("want", v.Want.Len()))
			}
		}
		return v, nil
	}

	// Fault-free baseline on the default tiebreak seed.
	if v, err := oneRun("event-fair", opts.BaseSeed, nil); v != nil || err != nil {
		return v, stats, err
	}
	for k := 0; k < opts.Seeds; k++ {
		seed := opts.BaseSeed + int64(k)
		plan := TopologyFaultPlan(topo, net, seed, opts.Faults)
		if v, err := oneRun(fmt.Sprintf("event-seed:%d", seed), seed, plan); v != nil || err != nil {
			return v, stats, err
		}
	}
	return nil, stats, nil
}
